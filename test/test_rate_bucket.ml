(* Unit tests for per-flow rate buckets and TAS flow-state arithmetic. *)

module Sim = Tas_engine.Sim
module RB = Tas_core.Rate_bucket
module FS = Tas_core.Flow_state
module Seq32 = Tas_proto.Seq32
module Ring = Tas_buffers.Ring_buffer

let test_rate_refill () =
  let sim = Sim.create () in
  (* 8 Mbps = 1 byte/us; burst 1000 bytes. *)
  let b = RB.create sim (RB.Rate 8e6) ~burst_bytes:1000 in
  Alcotest.(check int) "initial burst available" 1000
    (RB.tx_budget b ~in_flight:0 ~want:1000);
  Alcotest.(check int) "empty after drain" 0
    (RB.tx_budget b ~in_flight:0 ~want:1000);
  (match RB.ns_until_bytes b 500 with
  | Some ns ->
    Alcotest.(check bool)
      (Printf.sprintf "refill time ~500us (got %dns)" ns)
      true
      (abs (ns - 500_000) < 2_000)
  | None -> Alcotest.fail "expected a wait");
  ignore (Sim.schedule sim 500_000 (fun () ->
      Alcotest.(check int) "tokens refilled" 500
        (RB.tx_budget b ~in_flight:0 ~want:10_000)));
  Sim.run sim

let test_rate_burst_cap () =
  let sim = Sim.create () in
  let b = RB.create sim (RB.Rate 1e9) ~burst_bytes:2000 in
  ignore (RB.tx_budget b ~in_flight:0 ~want:2000);
  (* After a long idle period, tokens cap at the burst size. *)
  ignore (Sim.schedule sim 1_000_000_000 (fun () ->
      Alcotest.(check int) "burst cap respected" 2000
        (RB.tx_budget b ~in_flight:0 ~want:1_000_000)));
  Sim.run sim

let test_window_mode () =
  let sim = Sim.create () in
  let b = RB.create sim (RB.Window 10_000) ~burst_bytes:0 in
  Alcotest.(check int) "window minus in-flight" 4_000
    (RB.tx_budget b ~in_flight:6_000 ~want:100_000);
  Alcotest.(check int) "window exhausted" 0
    (RB.tx_budget b ~in_flight:10_000 ~want:100);
  Alcotest.(check bool) "no timer in window mode" true
    (RB.ns_until_bytes b 1000 = None)

let test_set_control_switches_mode () =
  let sim = Sim.create () in
  let b = RB.create sim (RB.Rate 1e9) ~burst_bytes:1000 in
  RB.set_control b (Tas_tcp.Interval_cc.Window_bytes 5000);
  (match RB.mode b with
  | RB.Window 5000 -> ()
  | _ -> Alcotest.fail "expected window mode");
  RB.set_control b (Tas_tcp.Interval_cc.Rate_bps 2e9);
  match RB.mode b with
  | RB.Rate r -> Alcotest.(check (float 1.0)) "rate installed" 2e9 r
  | _ -> Alcotest.fail "expected rate mode"

(* --- Flow_state arithmetic -------------------------------------------------- *)

let mk_flow ~tx_iss ~rx_next =
  let sim = Sim.create () in
  let bucket = RB.create sim (RB.Window 65536) ~burst_bytes:0 in
  FS.create ~opaque:1 ~context:0 ~bucket ~rx_buf_size:4096 ~tx_buf_size:4096
    ~local_port:80 ~peer_ip:2 ~peer_port:9 ~peer_mac:3 ~tx_iss ~rx_next
    ~window:65535 ~peer_wscale:0 ()

let test_snd_una_tracks_tx_sent () =
  let flow = mk_flow ~tx_iss:(Seq32.of_int 1000) ~rx_next:0 in
  Alcotest.(check int) "snd_una = seq initially" 1000 (FS.snd_una flow);
  ignore (Ring.push (FS.tx_buf flow) (Bytes.create 500) ~off:0 ~len:500);
  Alcotest.(check int) "500 available" 500 (FS.tx_available flow);
  (* Simulate sending 300 of them. *)
  FS.set_seq flow (Seq32.add (FS.seq flow) 300);
  FS.set_tx_sent flow 300;
  Alcotest.(check int) "snd_una unchanged while unacked" 1000 (FS.snd_una flow);
  Alcotest.(check int) "200 still sendable" 200 (FS.tx_available flow)

let test_seq_wraparound_offsets () =
  (* tx_iss near the 32-bit wrap point. *)
  let flow = mk_flow ~tx_iss:(Seq32.of_int 0xFFFF_FFF0) ~rx_next:(Seq32.of_int 0xFFFF_FFF8) in
  FS.set_seq flow (Seq32.add (FS.seq flow) 0x20);
  FS.set_tx_sent flow 0x20;
  Alcotest.(check int) "snd_una wraps correctly" 0xFFFF_FFF0 (FS.snd_una flow);
  (* rx offsets relative to a wrapping expected seq. *)
  let off = FS.rx_offset_of_seq flow (Seq32.add (FS.ack flow) 100) in
  Alcotest.(check int) "rx offset across wrap" 100 off

let test_rx_offset_mapping () =
  let flow = mk_flow ~tx_iss:0 ~rx_next:(Seq32.of_int 5000) in
  Alcotest.(check int) "next expected at ring head" (Ring.head (FS.rx_buf flow))
    (FS.rx_offset_of_seq flow (Seq32.of_int 5000));
  Alcotest.(check int) "inverse mapping" 5100
    (FS.seq_of_rx_offset flow (FS.rx_offset_of_seq flow (Seq32.of_int 5100)))

let suite =
  [
    Alcotest.test_case "rate bucket refill" `Quick test_rate_refill;
    Alcotest.test_case "rate bucket burst cap" `Quick test_rate_burst_cap;
    Alcotest.test_case "window mode" `Quick test_window_mode;
    Alcotest.test_case "set_control switches mode" `Quick
      test_set_control_switches_mode;
    Alcotest.test_case "snd_una tracks tx_sent" `Quick
      test_snd_una_tracks_tx_sent;
    Alcotest.test_case "flow seq wrap-around" `Quick test_seq_wraparound_offsets;
    Alcotest.test_case "rx offset mapping" `Quick test_rx_offset_mapping;
  ]
