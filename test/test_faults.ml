(* Fault-injection tests, consolidated: stage unit semantics
   (Gilbert–Elliott burst statistics, dup/reorder/blackout), corruption-drop
   accounting, RST generation/handling, SYN retry exhaustion, FIN retry cap,
   plus end-to-end wire behaviour under injected faults (reordering and
   duplication into TAS, tap-based handshake observation, ACK accounting). *)

module Sim = Tas_engine.Sim
module Time_ns = Tas_engine.Time_ns
module Rng = Tas_engine.Rng
module Core = Tas_cpu.Core
module Addr = Tas_proto.Addr
module Packet = Tas_proto.Packet
module Tcp = Tas_proto.Tcp_header
module Port = Tas_netsim.Port
module Nic = Tas_netsim.Nic
module Tap = Tas_netsim.Tap
module Fault = Tas_netsim.Fault
module Topology = Tas_netsim.Topology
module Config = Tas_core.Config
module Tas = Tas_core.Tas
module Libtas = Tas_core.Libtas
module Slow_path = Tas_core.Slow_path
module Fast_path = Tas_core.Fast_path
module E = Tas_baseline.Tcp_engine

let mk_packet ?(payload_len = 100) ?(flags = Tcp.data_flags) ?(src = 9)
    ?(dst = 8) () =
  let tcp =
    {
      Tcp.src_port = 1234;
      dst_port = 80;
      seq = 1000;
      ack = 2000;
      flags;
      window = 65535;
      options = Tcp.no_options;
    }
  in
  Packet.make ~src_mac:(Addr.host_mac src) ~dst_mac:(Addr.host_mac dst)
    ~src_ip:(Addr.host_ip src) ~dst_ip:(Addr.host_ip dst) ~tcp
    ~payload:(Bytes.create payload_len) ()

(* --- Gilbert–Elliott loss -------------------------------------------------- *)

(* Offer [n] packets to a fresh stage and record, in order, whether each was
   delivered (no reorder/dup in the specs used here, so delivery is
   synchronous). *)
let ge_run ~seed ~n spec =
  let sim = Sim.create () in
  let stage = Fault.create sim (Rng.create seed) spec in
  let pkt = mk_packet () in
  let pattern =
    Array.init n (fun _ ->
        let delivered = ref false in
        Fault.wrap stage (fun _ -> delivered := true) pkt;
        !delivered)
  in
  (stage, pattern)

let mean_drop_burst pattern =
  let bursts = ref 0 and dropped = ref 0 and in_burst = ref false in
  Array.iter
    (fun delivered ->
      if delivered then in_burst := false
      else begin
        incr dropped;
        if not !in_burst then incr bursts;
        in_burst := true
      end)
    pattern;
  if !bursts = 0 then 0.0 else float_of_int !dropped /. float_of_int !bursts

let test_ge_deterministic_and_bursty () =
  let spec = Fault.bursty_of_rate ~rate:0.05 ~mean_burst_pkts:4.0 in
  let n = 20_000 in
  let s1, p1 = ge_run ~seed:11 ~n spec in
  let s2, p2 = ge_run ~seed:11 ~n spec in
  Alcotest.(check bool) "same seed, same drop pattern" true (p1 = p2);
  let c1 = Fault.counters s1 and c2 = Fault.counters s2 in
  Alcotest.(check int) "same burst_drops" c1.Fault.burst_drops
    c2.Fault.burst_drops;
  Alcotest.(check int) "offered" n c1.Fault.offered;
  Alcotest.(check int) "conservation" c1.Fault.offered
    (c1.Fault.forwarded + c1.Fault.burst_drops);
  (* Stationary rate ~5%, and drops arrive in multi-packet bursts. *)
  let rate = float_of_int c1.Fault.burst_drops /. float_of_int n in
  Alcotest.(check bool) "stationary loss rate near 5%" true
    (rate > 0.03 && rate < 0.07);
  let burst = mean_drop_burst p1 in
  Alcotest.(check bool)
    (Printf.sprintf "mean drop-burst length %.2f > 2 (uniform would be ~1)"
       burst)
    true (burst > 2.0);
  (* A different seed yields a different schedule. *)
  let _, p3 = ge_run ~seed:12 ~n spec in
  Alcotest.(check bool) "different seed, different pattern" false (p1 = p3)

(* --- Stage unit semantics: dup, reorder hold, blackout --------------------- *)

let test_dup_counting () =
  let sim = Sim.create () in
  let stage =
    Fault.create sim (Rng.create 3)
      { Fault.passthrough with Fault.dup_rate = 1.0 }
  in
  let delivered = ref 0 in
  let pkt = mk_packet () in
  for _ = 1 to 10 do
    Fault.wrap stage (fun _ -> incr delivered) pkt
  done;
  let c = Fault.counters stage in
  Alcotest.(check int) "every packet delivered twice" 20 !delivered;
  Alcotest.(check int) "dups counted" 10 c.Fault.dups;
  Alcotest.(check int) "forwarded counts both copies" 20 c.Fault.forwarded

let test_reorder_hold_and_flush () =
  let sim = Sim.create () in
  let stage =
    Fault.create sim (Rng.create 3)
      {
        Fault.passthrough with
        Fault.reorder =
          Some
            { Fault.reorder_rate = 1.0; reorder_window = 4;
              max_hold_ns = 1_000_000 };
      }
  in
  let delivered = ref 0 in
  let pkt = mk_packet () in
  for _ = 1 to 3 do
    Fault.wrap stage (fun _ -> incr delivered) pkt
  done;
  Alcotest.(check int) "all held, none delivered" 0 !delivered;
  Alcotest.(check int) "held" 3 (Fault.held stage);
  Fault.flush stage;
  Alcotest.(check int) "flush delivers everything" 3 !delivered;
  Alcotest.(check int) "nothing held after flush" 0 (Fault.held stage);
  let c = Fault.counters stage in
  Alcotest.(check int) "holds counted" 3 c.Fault.reorder_holds;
  Alcotest.(check int) "forwarded after flush" 3 c.Fault.forwarded

let test_reorder_timer_release () =
  let sim = Sim.create () in
  let stage =
    Fault.create sim (Rng.create 3)
      {
        Fault.passthrough with
        Fault.reorder =
          Some
            { Fault.reorder_rate = 1.0; reorder_window = 100;
              max_hold_ns = 1_000 };
      }
  in
  let delivered_at = ref (-1) in
  Fault.wrap stage (fun _ -> delivered_at := Sim.now sim) (mk_packet ());
  Alcotest.(check int) "held initially" 1 (Fault.held stage);
  Sim.run sim;
  Alcotest.(check int) "released by timer at max_hold_ns" 1_000 !delivered_at;
  Alcotest.(check int) "no longer held" 0 (Fault.held stage)

let test_blackout_window () =
  let sim = Sim.create () in
  let stage =
    Fault.create sim (Rng.create 3)
      { Fault.passthrough with Fault.blackouts = [ (100, 200) ] }
  in
  let delivered = ref 0 in
  let offer () = Fault.wrap stage (fun _ -> incr delivered) (mk_packet ()) in
  offer ();
  ignore (Sim.schedule sim 150 offer);
  ignore (Sim.schedule sim 250 offer);
  Sim.run sim;
  let c = Fault.counters stage in
  Alcotest.(check int) "delivered outside the window" 2 !delivered;
  Alcotest.(check int) "dropped inside the window" 1 c.Fault.blackout_drops

(* --- Corruption-drop accounting through a TAS receiver --------------------- *)

(* Engine client on host a sends through an a->b fault stage into a TAS
   echo server on host b: every injected corruption must re-appear as
   exactly one receiver-side validation drop (NIC checksum for payload
   bit-flips, fast-path length check for header manglings). *)
let corruption_run spec =
  let sim = Sim.create () in
  let net =
    Topology.point_to_point sim ~fault_ab:spec ~rng:(Rng.create 5)
      ~queues_per_nic:4 ()
  in
  let tas = Tas.create sim ~nic:net.Topology.b.Topology.nic
      ~config:Config.default ()
  in
  let lt =
    Tas.app tas ~app_cores:[| Core.create sim ~id:300 () |] ~api:Libtas.Sockets
  in
  Libtas.listen lt ~port:80 ~ctx_of_tuple:(fun _ -> 0) (fun _ ->
      {
        Libtas.null_handlers with
        Libtas.on_data = (fun sock d -> ignore (Libtas.send sock d));
      });
  let peer = E.create sim net.Topology.a.Topology.nic E.default_config in
  E.attach peer;
  ignore
    (E.connect peer ~dst_ip:(Nic.ip net.Topology.b.Topology.nic) ~dst_port:80
       {
         E.null_callbacks with
         E.on_connected = (fun c -> ignore (E.send c (Bytes.create 4000)));
       });
  Sim.run ~until:(Time_ns.ms 200) sim;
  let c = Fault.counters (Option.get net.Topology.fault_ab) in
  let malformed =
    (Fast_path.stats (Tas.fast_path tas)).Fast_path.malformed_drops
  in
  (c, Nic.rx_csum_drops net.Topology.b.Topology.nic, malformed)

let test_payload_corruption_accounting () =
  let c, csum_drops, malformed =
    corruption_run { Fault.passthrough with Fault.corrupt_rate = 0.3 }
  in
  Alcotest.(check bool) "some corruptions injected" true
    (c.Fault.payload_corrupts > 0);
  Alcotest.(check int) "each caught by NIC checksum validation"
    c.Fault.payload_corrupts csum_drops;
  Alcotest.(check int) "no header corruptions" 0 c.Fault.header_corrupts;
  Alcotest.(check int) "no length-validation drops" 0 malformed

let test_header_corruption_accounting () =
  let c, csum_drops, malformed =
    corruption_run
      {
        Fault.passthrough with
        Fault.corrupt_rate = 0.3;
        corrupt_header_fraction = 1.0;
      }
  in
  Alcotest.(check bool) "some corruptions injected" true
    (c.Fault.header_corrupts > 0);
  Alcotest.(check int) "each caught by fast-path length validation"
    c.Fault.header_corrupts malformed;
  Alcotest.(check int) "no payload corruptions" 0 c.Fault.payload_corrupts;
  Alcotest.(check int) "no checksum drops" 0 csum_drops

(* --- RST generation and connection-error surfacing ------------------------- *)

let tas_pair ?fault_ab ?rng sim =
  let net = Topology.point_to_point sim ?fault_ab ?rng ~queues_per_nic:4 () in
  let host endpoint base =
    let t =
      Tas.create sim ~nic:endpoint.Topology.nic ~config:Config.default ()
    in
    let lt =
      Tas.app t ~app_cores:[| Core.create sim ~id:base () |]
        ~api:Libtas.Sockets
    in
    (t, lt)
  in
  let a = host net.Topology.a 400 in
  let b = host net.Topology.b 500 in
  (net, a, b)

let test_rst_on_unknown_tuple () =
  (* A well-formed data segment for a tuple the host has never seen must be
     answered with RST (and must not crash anything). *)
  let sim = Sim.create () in
  let net, (tas_a, _), _ = tas_pair sim in
  let pkt =
    mk_packet ~payload_len:50
      ~src:net.Topology.b.Topology.host_id
      ~dst:net.Topology.a.Topology.host_id ()
  in
  Nic.input net.Topology.a.Topology.nic pkt;
  Sim.run ~until:(Time_ns.ms 5) sim;
  Alcotest.(check int) "one RST sent" 1
    (Slow_path.rsts_sent (Tas.slow_path tas_a));
  Alcotest.(check int) "no flow installed" 0
    (Slow_path.flow_count (Tas.slow_path tas_a))

let test_connect_refused_by_rst () =
  (* TAS-to-TAS connect to a port with no listener: the peer refuses with
     RST and the client surfaces [Refused] (not a retry-until-timeout). *)
  let sim = Sim.create () in
  let net, (_, lt_a), (tas_b, _) = tas_pair sim in
  let err = ref None in
  ignore
    (Libtas.connect lt_a ~ctx:0
       ~dst_ip:(Nic.ip net.Topology.b.Topology.nic) ~dst_port:4242
       {
         Libtas.null_handlers with
         Libtas.on_connect_failed = (fun _ e -> err := Some e);
       });
  Sim.run ~until:(Time_ns.ms 50) sim;
  Alcotest.(check bool) "refused" true (!err = Some Slow_path.Refused);
  Alcotest.(check bool) "peer sent the RST" true
    (Slow_path.rsts_sent (Tas.slow_path tas_b) >= 1)

let test_syn_retry_exhaustion () =
  (* Every SYN (a->b) is dropped: the connect must fail with [Timeout]
     after the configured retries, not hang forever. *)
  let sim = Sim.create () in
  let net, (_, lt_a), _ =
    tas_pair ~fault_ab:(Fault.uniform_loss 1.0) ~rng:(Rng.create 6) sim
  in
  let err = ref None and failed_at = ref 0 in
  ignore
    (Libtas.connect lt_a ~ctx:0
       ~dst_ip:(Nic.ip net.Topology.b.Topology.nic) ~dst_port:80
       {
         Libtas.null_handlers with
         Libtas.on_connect_failed =
           (fun _ e ->
             err := Some e;
             failed_at := Sim.now sim);
       });
  Sim.run ~until:(Time_ns.sec 2) sim;
  Alcotest.(check bool) "failed with Timeout" true
    (!err = Some Slow_path.Timeout);
  (* 5 retries x 20 ms handshake RTO. *)
  Alcotest.(check bool) "after the full retry budget" true
    (!failed_at >= Time_ns.ms 100 && !failed_at <= Time_ns.ms 300)

let test_fin_retry_cap () =
  (* The a->b link goes dark before the TAS side closes: its FINs are never
     acked, and after [fin_retries] attempts the flow must be forcibly torn
     down (counted) instead of re-arming forever. *)
  let sim = Sim.create () in
  let net =
    Topology.point_to_point sim
      ~fault_ab:
        { Fault.passthrough with
          Fault.blackouts = [ (Time_ns.ms 50, Time_ns.sec 100) ] }
      ~rng:(Rng.create 7) ~queues_per_nic:4 ()
  in
  let tas =
    Tas.create sim ~nic:net.Topology.a.Topology.nic ~config:Config.default ()
  in
  let lt =
    Tas.app tas ~app_cores:[| Core.create sim ~id:600 () |] ~api:Libtas.Sockets
  in
  let sref = ref None in
  let closed = ref false in
  Libtas.listen lt ~port:80 ~ctx_of_tuple:(fun _ -> 0) (fun _ ->
      {
        Libtas.null_handlers with
        Libtas.on_connected = (fun sock -> sref := Some sock);
        Libtas.on_closed = (fun _ -> closed := true);
      });
  let peer = E.create sim net.Topology.b.Topology.nic E.default_config in
  E.attach peer;
  ignore
    (E.connect peer ~dst_ip:(Nic.ip net.Topology.a.Topology.nic) ~dst_port:80
       E.null_callbacks);
  (* Close the TAS side after the link has gone dark. *)
  ignore
    (Sim.schedule sim (Time_ns.ms 60) (fun () ->
         match !sref with
         | Some sock -> Libtas.close sock
         | None -> Alcotest.fail "connection never established"));
  Sim.run ~until:(Time_ns.sec 1) sim;
  Alcotest.(check int) "fin retries exhausted once" 1
    (Slow_path.fin_retry_exhausted (Tas.slow_path tas));
  Alcotest.(check int) "flow state reclaimed" 0
    (Slow_path.flow_count (Tas.slow_path tas));
  Alcotest.(check bool) "app saw the close" true !closed

(* --- Wire behaviour under injected faults ---------------------------------- *)

let bulk_through_tas _sim net tas lt peer ~n =
  ignore tas;
  let received = Buffer.create n in
  Libtas.listen lt ~port:7 ~ctx_of_tuple:(fun _ -> 0) (fun _ ->
      {
        Libtas.null_handlers with
        Libtas.on_data = (fun _ d -> Buffer.add_bytes received d);
      });
  let payload = Bytes.init n (fun i -> Char.chr ((i * 11) land 0xff)) in
  let sent = ref 0 in
  let push c =
    while
      !sent < n
      &&
      let k = E.send c (Bytes.sub payload !sent (min 4096 (n - !sent))) in
      sent := !sent + k;
      k > 0
    do
      ()
    done
  in
  ignore
    (E.connect peer ~dst_ip:(Nic.ip net.Topology.a.Topology.nic) ~dst_port:7
       {
         E.null_callbacks with
         E.on_connected = (fun c -> push c);
         E.on_sendable = (fun c _ -> push c);
       });
  (received, payload)

let test_reordering_into_tas () =
  (* 10% of packets towards TAS are delayed by 60us: heavy reordering, no
     loss. The OOO interval plus duplicate-ACK-driven retransmission must
     still deliver the exact stream. *)
  let sim = Sim.create () in
  let net = Topology.point_to_point sim ~queues_per_nic:4 () in
  let tas =
    Tas.create sim ~nic:net.Topology.a.Topology.nic ~config:Config.default ()
  in
  let lt =
    Tas.app tas ~app_cores:[| Core.create sim ~id:100 () |] ~api:Libtas.Sockets
  in
  let peer = E.create sim net.Topology.b.Topology.nic E.default_config in
  E.attach peer;
  let rng = Rng.create 31 in
  let stage =
    Fault.create sim rng
      { Fault.passthrough with
        Fault.reorder =
          Some
            { Fault.reorder_rate = 0.1; reorder_window = 4;
              max_hold_ns = 60_000 } }
  in
  Port.set_deliver net.Topology.b.Topology.uplink
    (Fault.wrap stage (fun pkt -> Nic.input net.Topology.a.Topology.nic pkt));
  let n = 200_000 in
  let received, payload = bulk_through_tas sim net tas lt peer ~n in
  Sim.run ~until:(Time_ns.sec 5) sim;
  Alcotest.(check int) "stream complete under reordering" n
    (Buffer.length received);
  Alcotest.(check string) "stream intact" (Bytes.to_string payload)
    (Buffer.contents received)

let test_duplication_into_tas () =
  (* Every 10th packet is delivered twice: duplicates must be absorbed. *)
  let sim = Sim.create () in
  let net = Topology.point_to_point sim ~queues_per_nic:4 () in
  let tas =
    Tas.create sim ~nic:net.Topology.a.Topology.nic ~config:Config.default ()
  in
  let lt =
    Tas.app tas ~app_cores:[| Core.create sim ~id:100 () |] ~api:Libtas.Sockets
  in
  let peer = E.create sim net.Topology.b.Topology.nic E.default_config in
  E.attach peer;
  let count = ref 0 in
  Port.set_deliver net.Topology.b.Topology.uplink (fun pkt ->
      incr count;
      Nic.input net.Topology.a.Topology.nic pkt;
      if !count mod 10 = 0 then Nic.input net.Topology.a.Topology.nic pkt);
  let n = 100_000 in
  let received, payload = bulk_through_tas sim net tas lt peer ~n in
  Sim.run ~until:(Time_ns.sec 5) sim;
  Alcotest.(check int) "no duplicate delivery to the app" n
    (Buffer.length received);
  Alcotest.(check string) "stream intact" (Bytes.to_string payload)
    (Buffer.contents received)

let test_tap_observes_handshake () =
  (* The tap must see exactly one SYN and one handshake ACK from the client,
     and TAS's SYN-ACK in the other direction. *)
  let sim = Sim.create () in
  let net = Topology.point_to_point sim ~queues_per_nic:4 () in
  let tas =
    Tas.create sim ~nic:net.Topology.a.Topology.nic ~config:Config.default ()
  in
  let lt =
    Tas.app tas ~app_cores:[| Core.create sim ~id:100 () |] ~api:Libtas.Sockets
  in
  Libtas.listen lt ~port:7 ~ctx_of_tuple:(fun _ -> 0) (fun _ ->
      Libtas.null_handlers);
  let peer = E.create sim net.Topology.b.Topology.nic E.default_config in
  E.attach peer;
  let to_tas = Tap.create () and from_tas = Tap.create () in
  Port.set_deliver net.Topology.b.Topology.uplink
    (Tap.wrap to_tas sim (fun p -> Nic.input net.Topology.a.Topology.nic p));
  Port.set_deliver net.Topology.a.Topology.uplink
    (Tap.wrap from_tas sim (fun p -> Nic.input net.Topology.b.Topology.nic p));
  ignore
    (E.connect peer ~dst_ip:(Nic.ip net.Topology.a.Topology.nic) ~dst_port:7
       E.null_callbacks);
  Sim.run ~until:(Time_ns.ms 10) sim;
  let syns =
    Tap.matching to_tas (fun p ->
        p.Packet.tcp.Tcp.flags.Tcp.syn && not p.Packet.tcp.Tcp.flags.Tcp.ack)
  in
  let synacks =
    Tap.matching from_tas (fun p ->
        p.Packet.tcp.Tcp.flags.Tcp.syn && p.Packet.tcp.Tcp.flags.Tcp.ack)
  in
  Alcotest.(check int) "one SYN" 1 (List.length syns);
  Alcotest.(check int) "one SYN-ACK" 1 (List.length synacks);
  (* The SYN carries MSS, wscale and timestamp options. *)
  (match syns with
  | [ { Tap.pkt; _ } ] ->
    let opts = pkt.Packet.tcp.Tcp.options in
    Alcotest.(check bool) "SYN has mss" true (opts.Tcp.mss <> None);
    Alcotest.(check bool) "SYN has wscale" true (opts.Tcp.wscale <> None);
    Alcotest.(check bool) "SYN has timestamp" true (opts.Tcp.timestamp <> None)
  | _ -> Alcotest.fail "expected one SYN");
  (* pp_record renders without raising. *)
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Tap.dump fmt to_tas;
  Format.pp_print_flush fmt ();
  Alcotest.(check bool) "dump produced text" true (Buffer.length buf > 0)

let test_tap_ring_limit () =
  let sim = Sim.create () in
  let tap = Tap.create ~limit:5 () in
  let deliver = Tap.wrap tap sim ignore in
  let tcp =
    { Tcp.src_port = 1; dst_port = 2; seq = 0; ack = 0;
      flags = Tcp.data_flags; window = 0; options = Tcp.no_options }
  in
  for _ = 1 to 12 do
    deliver
      (Packet.make ~src_mac:1 ~dst_mac:2 ~src_ip:(Tas_proto.Addr.host_ip 1)
         ~dst_ip:(Tas_proto.Addr.host_ip 2) ~tcp ~payload:Bytes.empty ())
  done;
  Alcotest.(check int) "bounded at limit" 5 (Tap.count tap);
  Tap.clear tap;
  Alcotest.(check int) "cleared" 0 (Tap.count tap)

let test_tas_acks_every_data_packet () =
  (* Wire-level check: for N data packets in, TAS emits N ACKs. *)
  let sim = Sim.create () in
  let net = Topology.point_to_point sim ~queues_per_nic:4 () in
  let tas =
    Tas.create sim ~nic:net.Topology.a.Topology.nic ~config:Config.default ()
  in
  let lt =
    Tas.app tas ~app_cores:[| Core.create sim ~id:100 () |] ~api:Libtas.Sockets
  in
  let peer = E.create sim net.Topology.b.Topology.nic E.default_config in
  E.attach peer;
  let n = 64_000 in
  let received, _ = bulk_through_tas sim net tas lt peer ~n in
  Sim.run ~until:(Time_ns.sec 2) sim;
  Alcotest.(check int) "delivered" n (Buffer.length received);
  let stats = Fast_path.stats (Tas.fast_path tas) in
  Alcotest.(check int) "one ACK per data packet"
    stats.Fast_path.rx_data_packets stats.Fast_path.acks_sent

let suite =
  [
    Alcotest.test_case "GE loss: deterministic and bursty" `Quick
      test_ge_deterministic_and_bursty;
    Alcotest.test_case "duplication counting" `Quick test_dup_counting;
    Alcotest.test_case "reorder hold + flush" `Quick
      test_reorder_hold_and_flush;
    Alcotest.test_case "reorder timer release" `Quick
      test_reorder_timer_release;
    Alcotest.test_case "blackout window" `Quick test_blackout_window;
    Alcotest.test_case "payload corruption accounting" `Quick
      test_payload_corruption_accounting;
    Alcotest.test_case "header corruption accounting" `Quick
      test_header_corruption_accounting;
    Alcotest.test_case "RST on unknown tuple" `Quick test_rst_on_unknown_tuple;
    Alcotest.test_case "connect refused via RST" `Quick
      test_connect_refused_by_rst;
    Alcotest.test_case "SYN retry exhaustion" `Quick test_syn_retry_exhaustion;
    Alcotest.test_case "FIN retry cap" `Quick test_fin_retry_cap;
    Alcotest.test_case "reordering into TAS" `Quick test_reordering_into_tas;
    Alcotest.test_case "duplication into TAS" `Quick test_duplication_into_tas;
    Alcotest.test_case "tap observes handshake + options" `Quick
      test_tap_observes_handshake;
    Alcotest.test_case "tap ring limit" `Quick test_tap_ring_limit;
    Alcotest.test_case "TAS acks every data packet" `Quick
      test_tas_acks_every_data_packet;
  ]
