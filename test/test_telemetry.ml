(* Unit tests of the telemetry subsystem: registry semantics (closures,
   labels, duplicates, get-or-create), exporter formats, JSON rendering,
   and the bounded trace ring. *)

module Metrics = Tas_telemetry.Metrics
module Trace = Tas_telemetry.Trace
module Span = Tas_telemetry.Span
module Json = Tas_telemetry.Json
module Stats = Tas_engine.Stats

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let test_counter_fn_reads_through () =
  let m = Metrics.create () in
  let cell = ref 0 in
  Metrics.counter_fn m "requests_total" (fun () -> !cell);
  cell := 41;
  incr cell;
  match Metrics.snapshot m with
  | [ { Metrics.s_name = "requests_total"; s_value = Metrics.Counter 42; _ } ]
    -> ()
  | _ -> Alcotest.fail "expected one counter sample reading 42"

let test_duplicate_raises () =
  let m = Metrics.create () in
  Metrics.counter_fn m "x_total" (fun () -> 0);
  Alcotest.check_raises "duplicate (name, labels)"
    (Invalid_argument "Metrics: duplicate registration of \"x_total\"")
    (fun () -> Metrics.counter_fn m "x_total" (fun () -> 1));
  (* Same name under different labels is a distinct series. *)
  Metrics.counter_fn m ~labels:[ ("core", "0") ] "x_total" (fun () -> 2);
  Alcotest.(check int) "two series" 2 (List.length (Metrics.snapshot m))

let test_label_order_normalized () =
  let m = Metrics.create () in
  Metrics.counter_fn m ~labels:[ ("b", "2"); ("a", "1") ] "y_total" (fun () -> 7);
  (* Registering the same label set in the other order is the same series. *)
  Alcotest.check_raises "label order irrelevant"
    (Invalid_argument "Metrics: duplicate registration of \"y_total\"")
    (fun () ->
      Metrics.counter_fn m ~labels:[ ("a", "1"); ("b", "2") ] "y_total"
        (fun () -> 8));
  match Metrics.snapshot m with
  | [ { Metrics.s_labels = [ ("a", "1"); ("b", "2") ]; _ } ] -> ()
  | _ -> Alcotest.fail "labels not sorted by key in snapshot"

let test_invalid_name_raises () =
  let m = Metrics.create () in
  Alcotest.check_raises "space in name"
    (Invalid_argument "Metrics: invalid metric name \"bad name\"") (fun () ->
      Metrics.gauge_fn m "bad name" (fun () -> 0.0))

let test_hist_get_or_create () =
  let m = Metrics.create () in
  let h1 = Metrics.hist m "latency_us" in
  let h2 = Metrics.hist m "latency_us" in
  Stats.Hist.add h1 10.0;
  Alcotest.(check int) "same histogram instance" 1 (Stats.Hist.count h2)

let test_prometheus_format () =
  let m = Metrics.create () in
  Metrics.counter_fn m ~help:"packets received" ~labels:[ ("core", "3") ]
    "rx_total" (fun () -> 12);
  Metrics.gauge_fn m "depth" (fun () -> 2.5);
  let h = Metrics.hist m "lat_us" in
  List.iter (Stats.Hist.add h) [ 1.0; 2.0; 3.0 ];
  let text = Metrics.to_prometheus m in
  List.iter
    (fun needle ->
      if not (contains text needle) then
        Alcotest.failf "prometheus output missing %S in:\n%s" needle text)
    [
      "# TYPE rx_total counter";
      "# HELP rx_total packets received";
      "rx_total{core=\"3\"} 12";
      "# TYPE depth gauge";
      "depth 2.5";
      "lat_us{quantile=\"0.5\"}";
      "lat_us_count 3";
    ]

let test_snapshot_sorted_deterministic () =
  (* Insertion order must not leak into exports. *)
  let build order =
    let m = Metrics.create () in
    List.iter (fun (name, v) -> Metrics.counter_fn m name (fun () -> v)) order;
    Metrics.to_json_string m
  in
  let a = build [ ("zz_total", 1); ("aa_total", 2); ("mm_total", 3) ] in
  let b = build [ ("mm_total", 3); ("zz_total", 1); ("aa_total", 2) ] in
  Alcotest.(check string) "insertion order invisible" a b

let test_json_rendering () =
  let j =
    Json.Obj
      [
        ("int_like", Json.Float 3.0);
        ("frac", Json.Float 0.25);
        ("nan", Json.Float nan);
        ("inf", Json.Float infinity);
        ("s", Json.Str "a\"b\n");
        ("l", Json.List [ Json.Int 1; Json.Bool true; Json.Null ]);
      ]
  in
  Alcotest.(check string) "compact rendering"
    "{\"int_like\":3.0,\"frac\":0.25,\"nan\":null,\"inf\":null,\
     \"s\":\"a\\\"b\\n\",\"l\":[1,true,null]}"
    (Json.to_string j)

let test_trace_bounded_drop () =
  let tr = Trace.create ~capacity:4 () in
  for i = 1 to 10 do
    Trace.record tr ~ts:i ~kind:Trace.Rx_data ~core:0 ~flow:i
  done;
  Alcotest.(check int) "recorded counts all offers" 10 (Trace.recorded tr);
  Alcotest.(check int) "dropped the overflow" 6 (Trace.dropped tr);
  let events = Trace.drain tr in
  Alcotest.(check (list int)) "oldest events kept, record order" [ 1; 2; 3; 4 ]
    (List.map (fun e -> e.Trace.flow) events);
  Alcotest.(check int) "drain consumes" 0 (List.length (Trace.drain tr))

let test_trace_disabled_noop () =
  let tr = Trace.disabled () in
  Trace.record tr ~ts:1 ~kind:Trace.Conn_setup ~core:0 ~flow:1;
  Alcotest.(check bool) "disabled" false (Trace.enabled tr);
  Alcotest.(check int) "nothing recorded" 0 (Trace.recorded tr);
  Alcotest.(check int) "nothing buffered" 0 (List.length (Trace.drain tr))

let test_trace_counts_by_kind () =
  let tr = Trace.create ~capacity:16 () in
  List.iter
    (fun k -> Trace.record tr ~ts:0 ~kind:k ~core:0 ~flow:0)
    [ Trace.Rx_data; Trace.Tx_data; Trace.Rx_data; Trace.Conn_setup ];
  let counts = Trace.counts_by_kind (Trace.drain tr) in
  Alcotest.(check (list (pair string int)))
    "kinds in declaration order, zeros omitted"
    [ ("rx_data", 2); ("tx_data", 1); ("conn_setup", 1) ]
    (List.map (fun (k, n) -> (Trace.kind_name k, n)) counts)

(* --- spans --------------------------------------------------------------- *)

(* Record one full-path span and check the analysis reconstructs hop order
   and that segment durations sum to the end-to-end latency. *)
let test_span_roundtrip_hop_order () =
  let sp = Span.create ~enabled:true ~capacity:64 () in
  let id = Span.start sp ~ts:100 ~hop:Span.App_send ~core:0 ~flow:7 in
  Alcotest.(check bool) "sampled" true (id >= 0);
  (* Remaining hops of the path, deliberately with distinct deltas. *)
  let rest = List.tl Span.all_hops in
  List.iteri
    (fun i hop ->
      Span.record sp ~ts:(100 + ((i + 1) * 10)) ~id ~hop ~core:1 ~flow:7)
    rest;
  let events = Span.drain sp in
  Alcotest.(check int) "all events buffered" (List.length Span.all_hops)
    (List.length events);
  (match Span.group events with
  | [ (gid, evs) ] ->
    Alcotest.(check int) "grouped under the span id" id gid;
    Alcotest.(check (list string)) "hops in record (path) order"
      (List.map Span.hop_name Span.all_hops)
      (List.map (fun e -> Span.hop_name e.Span.hop) evs)
  | gs -> Alcotest.failf "expected one span group, got %d" (List.length gs));
  let b = Span.breakdown events in
  Alcotest.(check int) "one span" 1 b.Span.spans;
  Alcotest.(check int) "complete app-to-app" 1 b.Span.complete;
  let seg_sum =
    List.fold_left
      (fun acc s -> acc +. Stats.Hist.mean s.Span.seg_hist)
      0.0 b.Span.segments
  in
  Alcotest.(check (float 1e-6)) "segments sum to end-to-end"
    (Stats.Hist.mean b.Span.end_to_end)
    seg_sum

(* Counter-based sampling: every 4th origin attempt starts a span, with
   fresh ids, independent of timestamps — rerunning the same sequence
   yields the identical decision stream. *)
let test_span_sampling_deterministic () =
  let run () =
    let sp = Span.create ~enabled:true ~sample_every:4 ~capacity:64 () in
    let ids =
      List.init 12 (fun i ->
          Span.start sp ~ts:(1000 * i) ~hop:Span.App_send ~core:0 ~flow:i)
    in
    (ids, Span.offered sp, Span.started sp)
  in
  let ids, offered, started = run () in
  Alcotest.(check int) "offered counts every attempt" 12 offered;
  Alcotest.(check int) "one in four sampled" 3 started;
  Alcotest.(check int) "unsampled attempts return -1" 9
    (List.length (List.filter (fun id -> id = -1) ids));
  let ids', _, _ = run () in
  Alcotest.(check (list int)) "same-seed rerun: identical decisions" ids ids'

let test_span_dropped_accounting () =
  let sp = Span.create ~enabled:true ~capacity:4 () in
  let id = Span.start sp ~ts:0 ~hop:Span.App_send ~core:0 ~flow:0 in
  for i = 1 to 9 do
    Span.record sp ~ts:i ~id ~hop:Span.Fp_rx ~core:0 ~flow:0
  done;
  Alcotest.(check int) "recorded counts all offers" 10 (Span.recorded sp);
  Alcotest.(check int) "overflow dropped, not grown" 6 (Span.dropped sp);
  Alcotest.(check int) "ring holds capacity" 4 (List.length (Span.drain sp));
  Alcotest.(check int) "drain consumes" 0 (Span.length sp)

let test_span_disabled_noop () =
  let sp = Span.disabled () in
  let id = Span.start sp ~ts:0 ~hop:Span.App_send ~core:0 ~flow:0 in
  Alcotest.(check int) "disabled origin: unsampled" (-1) id;
  Span.record sp ~ts:1 ~id:5 ~hop:Span.Fp_rx ~core:0 ~flow:0;
  Alcotest.(check bool) "disabled" false (Span.enabled sp);
  Alcotest.(check int) "no origins counted" 0 (Span.offered sp);
  Alcotest.(check int) "no events" 0 (List.length (Span.drain sp))

(* Chrome trace-event export: a JSON object with a traceEvents list of
   complete ("X") slices carrying name/ts/dur/pid/tid, parseable by our
   own renderer (and hence by chrome://tracing). *)
let test_span_chrome_json () =
  let sp = Span.create ~enabled:true ~capacity:64 () in
  let id = Span.start sp ~ts:100 ~hop:Span.App_send ~core:0 ~flow:3 in
  Span.record sp ~ts:400 ~id ~hop:Span.Fp_tx ~core:1 ~flow:3;
  Span.record sp ~ts:900 ~id ~hop:Span.Nic_tx ~core:(-1) ~flow:3;
  let events = Span.drain sp in
  (match Span.to_chrome_json events with
  | Json.Obj fields ->
    (match List.assoc_opt "traceEvents" fields with
    | Some (Json.List slices) ->
      Alcotest.(check int) "one slice per adjacent hop pair" 2
        (List.length slices);
      List.iter
        (fun slice ->
          match slice with
          | Json.Obj f ->
            List.iter
              (fun key ->
                if not (List.mem_assoc key f) then
                  Alcotest.failf "slice missing %S" key)
              [ "name"; "ph"; "ts"; "dur"; "pid"; "tid" ];
            Alcotest.(check bool) "complete-slice phase" true
              (List.assoc "ph" f = Json.Str "X")
          | _ -> Alcotest.fail "slice is not an object")
        slices
    | _ -> Alcotest.fail "no traceEvents list")
  | _ -> Alcotest.fail "chrome export is not an object");
  (* The rendered string must survive a render->parse sanity check: our
     renderer never emits NaN/Inf and escapes strings, so the output is
     plain ASCII JSON; spot-check framing. *)
  let s = Span.to_chrome_string events in
  Alcotest.(check bool) "object framing" true
    (String.length s > 2 && s.[0] = '{' && s.[String.length s - 1] = '}');
  Alcotest.(check bool) "mentions segment name" true
    (contains s "app_send->fp_tx")

let suite =
  [
    Alcotest.test_case "counter closure reads through" `Quick
      test_counter_fn_reads_through;
    Alcotest.test_case "duplicate registration raises" `Quick
      test_duplicate_raises;
    Alcotest.test_case "label order normalized" `Quick
      test_label_order_normalized;
    Alcotest.test_case "invalid name raises" `Quick test_invalid_name_raises;
    Alcotest.test_case "hist get-or-create" `Quick test_hist_get_or_create;
    Alcotest.test_case "prometheus exposition format" `Quick
      test_prometheus_format;
    Alcotest.test_case "snapshot order deterministic" `Quick
      test_snapshot_sorted_deterministic;
    Alcotest.test_case "json rendering" `Quick test_json_rendering;
    Alcotest.test_case "trace ring bounded + drop count" `Quick
      test_trace_bounded_drop;
    Alcotest.test_case "disabled trace is a no-op" `Quick
      test_trace_disabled_noop;
    Alcotest.test_case "trace counts by kind" `Quick test_trace_counts_by_kind;
    Alcotest.test_case "span round-trip keeps hop order" `Quick
      test_span_roundtrip_hop_order;
    Alcotest.test_case "span sampling deterministic" `Quick
      test_span_sampling_deterministic;
    Alcotest.test_case "span ring drop accounting" `Quick
      test_span_dropped_accounting;
    Alcotest.test_case "disabled span is a no-op" `Quick
      test_span_disabled_noop;
    Alcotest.test_case "chrome trace export well-formed" `Quick
      test_span_chrome_json;
  ]
