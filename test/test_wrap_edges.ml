(* Edge-case tests at the wrap boundaries: Seq32 arithmetic across the
   2^32 wrap, Ring_buffer behaviour when the stream offset crosses the
   physical end of the buffer, and Spsc_queue full/empty/wrap transitions. *)

module Seq32 = Tas_proto.Seq32
module Ring = Tas_buffers.Ring_buffer
module Spsc = Tas_buffers.Spsc_queue

let top = 0xFFFF_FFFF (* 2^32 - 1 *)

let test_seq32_wrap_compare () =
  let near_top = Seq32.of_int (top - 0xFF) in
  let wrapped = Seq32.add near_top 0x200 in
  Alcotest.(check int) "wraps modulo 2^32" 0x100 wrapped;
  Alcotest.(check bool) "after wrap still greater" true
    (Seq32.gt wrapped near_top);
  Alcotest.(check bool) "before wrap still less" true
    (Seq32.lt near_top wrapped);
  Alcotest.(check int) "signed distance across wrap" 0x200
    (Seq32.diff wrapped near_top);
  Alcotest.(check int) "negative distance the other way" (-0x200)
    (Seq32.diff near_top wrapped);
  Alcotest.(check int) "max_s picks the later" wrapped
    (Seq32.max_s near_top wrapped)

let test_seq32_add_negative () =
  Alcotest.(check int) "subtract across zero" (top - 9)
    (Seq32.add (Seq32.of_int 10) (-20));
  Alcotest.(check int) "of_int masks" 0x1234
    (Seq32.of_int (0x1_0000_1234))

let test_seq32_between_wrap () =
  let low = Seq32.of_int (top - 100) in
  let high = Seq32.of_int 100 in
  (* The [low, high) window spans the wrap point. *)
  Alcotest.(check bool) "inside before wrap" true
    (Seq32.between (Seq32.of_int (top - 50)) ~low ~high);
  Alcotest.(check bool) "inside after wrap" true
    (Seq32.between (Seq32.of_int 50) ~low ~high);
  Alcotest.(check bool) "low inclusive" true (Seq32.between low ~low ~high);
  Alcotest.(check bool) "high exclusive" false (Seq32.between high ~low ~high);
  Alcotest.(check bool) "outside" false
    (Seq32.between (Seq32.of_int 200) ~low ~high)

let test_seq32_equal_ordering () =
  let s = Seq32.of_int 42 in
  Alcotest.(check bool) "leq reflexive" true (Seq32.leq s s);
  Alcotest.(check bool) "geq reflexive" true (Seq32.geq s s);
  Alcotest.(check bool) "lt irreflexive" false (Seq32.lt s s);
  Alcotest.(check bool) "gt irreflexive" false (Seq32.gt s s)

let push_str r s = Ring.push r (Bytes.of_string s) ~off:0 ~len:(String.length s)

let pop_str r len =
  let dst = Bytes.create len in
  let n = Ring.pop r ~dst ~dst_off:0 ~len in
  Bytes.sub_string dst 0 n

let test_ring_full_empty () =
  let r = Ring.create 8 in
  Alcotest.(check string) "pop on empty" "" (pop_str r 4);
  Alcotest.(check int) "fill to capacity" 8 (push_str r "abcdefgh");
  Alcotest.(check bool) "full" true (Ring.free r = 0);
  Alcotest.(check int) "push on full accepts nothing" 0 (push_str r "x");
  Alcotest.(check string) "drain returns everything in order" "abcdefgh"
    (pop_str r 8);
  Alcotest.(check int) "empty again" 0 (Ring.used r)

let test_ring_wrap_content () =
  let r = Ring.create 8 in
  ignore (push_str r "abcdef");
  Alcotest.(check string) "first chunk" "abcdef" (pop_str r 6);
  (* head/tail are now at physical offset 6; the next 8 bytes span the
     physical end of the 8-byte buffer. *)
  Alcotest.(check int) "wrap-spanning push accepted" 8 (push_str r "12345678");
  Alcotest.(check int) "stream offsets keep growing" 14 (Ring.head r);
  Alcotest.(check int) "tail offset" 6 (Ring.tail r);
  Alcotest.(check string) "wrap-spanning content intact" "12345678"
    (pop_str r 8)

let test_ring_write_at_across_wrap () =
  let r = Ring.create 8 in
  ignore (push_str r "abcdef");
  ignore (pop_str r 6);
  (* Out-of-order deposit of [10,14) while [6,10) is still missing; the
     deposited range crosses the physical boundary. *)
  Ring.write_at r ~pos:10 (Bytes.of_string "WXYZ") ~off:0 ~len:4;
  Alcotest.(check int) "head unmoved by write_at" 6 (Ring.head r);
  Ring.write_at r ~pos:6 (Bytes.of_string "stuv") ~off:0 ~len:4;
  Ring.advance_head r 8;
  Alcotest.(check string) "ooo-completed bytes in order" "stuvWXYZ"
    (pop_str r 8)

let test_ring_bounds_raise () =
  let r = Ring.create 8 in
  ignore (push_str r "abcd");
  Alcotest.(check bool) "write_at beyond window raises" true
    (match Ring.write_at r ~pos:9 (Bytes.of_string "zz") ~off:0 ~len:2 with
    | () -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "advance_tail past used raises" true
    (match Ring.advance_tail r 5 with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_spsc_full_empty_wrap () =
  let q = Spsc.create 4 in
  Alcotest.(check bool) "empty at creation" true (Spsc.is_empty q);
  Alcotest.(check (option int)) "pop on empty" None (Spsc.try_pop q);
  for i = 1 to 4 do
    Alcotest.(check bool) "push succeeds" true (Spsc.try_push q i)
  done;
  Alcotest.(check bool) "full" true (Spsc.is_full q);
  Alcotest.(check bool) "push on full fails" false (Spsc.try_push q 5);
  Alcotest.(check (option int)) "peek oldest" (Some 1) (Spsc.peek q);
  (* Pop two, push two: indices wrap past the physical end. *)
  Alcotest.(check (option int)) "fifo 1" (Some 1) (Spsc.try_pop q);
  Alcotest.(check (option int)) "fifo 2" (Some 2) (Spsc.try_pop q);
  Alcotest.(check bool) "wrap push a" true (Spsc.try_push q 5);
  Alcotest.(check bool) "wrap push b" true (Spsc.try_push q 6);
  Alcotest.(check bool) "full after wrap" true (Spsc.is_full q);
  let order = ref [] in
  let n = Spsc.drain q (fun x -> order := x :: !order) in
  Alcotest.(check int) "drain count" 4 n;
  Alcotest.(check (list int)) "fifo across wrap" [ 3; 4; 5; 6 ]
    (List.rev !order);
  Alcotest.(check bool) "empty after drain" true (Spsc.is_empty q)

let test_spsc_repeated_wrap () =
  (* Many cycles of fill/drain: length stays consistent and order holds. *)
  let q = Spsc.create 3 in
  let next = ref 0 and expect = ref 0 and ok = ref true in
  for _round = 1 to 50 do
    while not (Spsc.is_full q) do
      ignore (Spsc.try_push q !next);
      incr next
    done;
    match Spsc.try_pop q with
    | Some v ->
      if v <> !expect then ok := false;
      incr expect
    | None -> ok := false
  done;
  Alcotest.(check bool) "fifo preserved over 50 wraps" true !ok;
  Alcotest.(check int) "length consistent" 2 (Spsc.length q)

let suite =
  [
    Alcotest.test_case "seq32 compare across wrap" `Quick
      test_seq32_wrap_compare;
    Alcotest.test_case "seq32 negative add + masking" `Quick
      test_seq32_add_negative;
    Alcotest.test_case "seq32 between across wrap" `Quick
      test_seq32_between_wrap;
    Alcotest.test_case "seq32 ordering on equality" `Quick
      test_seq32_equal_ordering;
    Alcotest.test_case "ring full/empty boundaries" `Quick test_ring_full_empty;
    Alcotest.test_case "ring wrap-spanning content" `Quick
      test_ring_wrap_content;
    Alcotest.test_case "ring ooo write across wrap" `Quick
      test_ring_write_at_across_wrap;
    Alcotest.test_case "ring out-of-bounds raises" `Quick test_ring_bounds_raise;
    Alcotest.test_case "spsc full/empty/wrap" `Quick test_spsc_full_empty_wrap;
    Alcotest.test_case "spsc repeated wrap fifo" `Quick test_spsc_repeated_wrap;
  ]
