(* Determinism of the telemetry subsystem: two identically-seeded runs of a
   full TAS stack must export byte-identical metrics (JSON and Prometheus)
   and identical trace-event streams. This pins down the registry's sorted
   snapshots and the simulation's virtual-time determinism end to end. *)

module Sim = Tas_engine.Sim
module Time_ns = Tas_engine.Time_ns
module Rng = Tas_engine.Rng
module Core = Tas_cpu.Core
module Topology = Tas_netsim.Topology
module E = Tas_baseline.Tcp_engine
module Tas = Tas_core.Tas
module Libtas = Tas_core.Libtas
module Config = Tas_core.Config
module Metrics = Tas_telemetry.Metrics
module Trace = Tas_telemetry.Trace

type observation = {
  json : string;
  prometheus : string;
  events : Trace.event list;
  breakdown : (string * int) list;
}

(* One full client/server exchange-heavy run, returning every telemetry
   export. [loss_rate]/[seed] exercise the RNG-dependent paths. *)
let observe ?loss_rate ~seed () =
  let sim = Sim.create () in
  let rng = Rng.create seed in
  let net = Topology.point_to_point sim ?loss_rate ~rng ~queues_per_nic:8 () in
  let config =
    { Config.default with Config.trace_enabled = true; trace_capacity = 4096 }
  in
  let tas = Tas.create sim ~nic:net.Topology.a.Topology.nic ~config () in
  let app_core = Core.create sim ~id:100 () in
  let lt = Tas.app tas ~app_cores:[| app_core |] ~api:Libtas.Sockets in
  Libtas.listen lt ~port:7 ~ctx_of_tuple:(fun _ -> 0) (fun _sock ->
      {
        Libtas.null_handlers with
        Libtas.on_data = (fun sock data -> ignore (Libtas.send sock data));
      });
  let client = E.create sim net.Topology.b.Topology.nic E.default_config in
  E.attach client;
  for i = 0 to 7 do
    let remaining = ref (20 + i) in
    let cb =
      {
        E.null_callbacks with
        E.on_connected =
          (fun c -> ignore (E.send c (Bytes.make 600 (Char.chr (65 + i)))));
        E.on_receive =
          (fun c d ->
            ignore d;
            decr remaining;
            if !remaining > 0 then
              ignore (E.send c (Bytes.make 600 (Char.chr (65 + i)))));
      }
    in
    ignore
      (E.connect client ~dst_ip:(Tas_netsim.Nic.ip net.Topology.a.Topology.nic)
         ~dst_port:7 cb)
  done;
  Sim.run ~until:(Time_ns.ms 80) sim;
  {
    json = Metrics.to_json_string ~pretty:true (Tas.metrics tas);
    prometheus = Metrics.to_prometheus (Tas.metrics tas);
    events = Trace.drain (Tas.trace tas);
    breakdown =
      List.map
        (fun (cat, ns) -> (Core.category_name cat, ns))
        (Tas.cycle_breakdown tas);
  }

let event =
  Alcotest.testable
    (fun fmt e ->
      Format.fprintf fmt "%d:%s:core%d:flow%d" e.Trace.ts
        (Trace.kind_name e.Trace.kind) e.Trace.core e.Trace.flow)
    ( = )

let check_identical a b =
  Alcotest.(check string) "metrics JSON byte-identical" a.json b.json;
  Alcotest.(check string) "prometheus export byte-identical" a.prometheus
    b.prometheus;
  Alcotest.(check (list event)) "trace event streams identical" a.events
    b.events;
  Alcotest.(check (list (pair string int)))
    "cycle breakdown identical" a.breakdown b.breakdown

let test_same_seed_identical () =
  let a = observe ~seed:7 () in
  let b = observe ~seed:7 () in
  check_identical a b;
  (* Sanity: the run actually produced telemetry worth comparing. *)
  Alcotest.(check bool) "some trace events" true (List.length a.events > 100)

let test_same_seed_identical_with_loss () =
  let a = observe ~loss_rate:0.02 ~seed:11 () in
  let b = observe ~loss_rate:0.02 ~seed:11 () in
  check_identical a b

let test_different_seed_diverges_under_loss () =
  (* Loss draws come from the seeded RNG, so different seeds must yield
     observably different packet counts somewhere in the export. *)
  let a = observe ~loss_rate:0.05 ~seed:1 () in
  let b = observe ~loss_rate:0.05 ~seed:2 () in
  Alcotest.(check bool) "exports differ" true (a.json <> b.json)

(* --- span streams -------------------------------------------------------- *)

module Span = Tas_telemetry.Span
module Diagnostics = Tas_experiments.Diagnostics

let span_event =
  Alcotest.testable
    (fun fmt e ->
      Format.fprintf fmt "%d:#%d:%s:core%d:flow%d" e.Span.ts e.Span.id
        (Span.hop_name e.Span.hop) e.Span.core e.Span.flow)
    ( = )

let observe_spans () =
  let d = Diagnostics.build ~sample_every:8 ~n_conns:4 () in
  Diagnostics.run d ~duration_ns:(Time_ns.ms 3);
  (Span.drain d.Diagnostics.span, d)

(* Counter-based sampling + virtual-time scheduling: two identically
   parameterized runs must produce byte-identical span event streams. *)
let test_same_seed_identical_spans () =
  let a, da = observe_spans () in
  let b, _ = observe_spans () in
  Alcotest.(check (list span_event)) "span streams identical" a b;
  Alcotest.(check bool) "spans actually produced" true
    (Span.started da.Diagnostics.span > 10);
  Alcotest.(check string) "chrome export byte-identical"
    (Span.to_chrome_string a) (Span.to_chrome_string b)

(* At least one sampled packet must be observed at every crossing point of
   the app-to-app path, and complete spans must exist. *)
let test_span_full_hop_coverage () =
  let events, d = observe_spans () in
  let seen hop = List.exists (fun e -> e.Span.hop = hop) events in
  List.iter
    (fun hop ->
      if not (seen hop) then
        Alcotest.failf "no span event at hop %s" (Span.hop_name hop))
    Span.all_hops;
  let b = Span.breakdown events in
  Alcotest.(check bool) "complete app-to-app spans" true (b.Span.complete > 0);
  Alcotest.(check int) "no ring drops in a short run" 0
    (Span.dropped d.Diagnostics.span);
  (* Per-span segment durations sum exactly to end-to-end latency, so the
     histogram totals must match (mean * count on both sides). *)
  let total h =
    Tas_engine.Stats.Hist.mean h
    *. float_of_int (Tas_engine.Stats.Hist.count h)
  in
  let seg_sum =
    List.fold_left
      (fun acc s -> acc +. total s.Span.seg_hist)
      0.0 b.Span.segments
  in
  let e2e_total = total b.Span.end_to_end in
  Alcotest.(check bool) "hop durations decompose end-to-end latency" true
    (e2e_total > 0.0 && abs_float (seg_sum -. e2e_total) /. e2e_total < 1e-9)

let suite =
  [
    Alcotest.test_case "same seed => identical telemetry" `Quick
      test_same_seed_identical;
    Alcotest.test_case "same seed + loss => identical telemetry" `Quick
      test_same_seed_identical_with_loss;
    Alcotest.test_case "different seed + loss => diverges" `Quick
      test_different_seed_diverges_under_loss;
    Alcotest.test_case "same seed => identical span streams" `Quick
      test_same_seed_identical_spans;
    Alcotest.test_case "spans cover every hop of the path" `Quick
      test_span_full_hop_coverage;
  ]
