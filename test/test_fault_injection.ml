(* Fault-injection tests: reordering, duplication, corruption-by-dropping at
   higher layers; plus packet tracing assertions on wire behaviour. *)

module Sim = Tas_engine.Sim
module Time_ns = Tas_engine.Time_ns
module Rng = Tas_engine.Rng
module Core = Tas_cpu.Core
module Topology = Tas_netsim.Topology
module Port = Tas_netsim.Port
module Nic = Tas_netsim.Nic
module Tap = Tas_netsim.Tap
module Fault = Tas_netsim.Fault
module Config = Tas_core.Config
module Tas = Tas_core.Tas
module Libtas = Tas_core.Libtas
module E = Tas_baseline.Tcp_engine
module Packet = Tas_proto.Packet
module Tcp = Tas_proto.Tcp_header

let bulk_through_tas _sim net tas lt peer ~n =
  ignore tas;
  let received = Buffer.create n in
  Libtas.listen lt ~port:7 ~ctx_of_tuple:(fun _ -> 0) (fun _ ->
      {
        Libtas.null_handlers with
        Libtas.on_data = (fun _ d -> Buffer.add_bytes received d);
      });
  let payload = Bytes.init n (fun i -> Char.chr ((i * 11) land 0xff)) in
  let sent = ref 0 in
  let push c =
    while
      !sent < n
      &&
      let k = E.send c (Bytes.sub payload !sent (min 4096 (n - !sent))) in
      sent := !sent + k;
      k > 0
    do
      ()
    done
  in
  ignore
    (E.connect peer ~dst_ip:(Nic.ip net.Topology.a.Topology.nic) ~dst_port:7
       {
         E.null_callbacks with
         E.on_connected = (fun c -> push c);
         E.on_sendable = (fun c _ -> push c);
       });
  (received, payload)

let test_reordering_into_tas () =
  (* 10% of packets towards TAS are delayed by 60us: heavy reordering, no
     loss. The OOO interval plus duplicate-ACK-driven retransmission must
     still deliver the exact stream. *)
  let sim = Sim.create () in
  let net = Topology.point_to_point sim ~queues_per_nic:4 () in
  let tas =
    Tas.create sim ~nic:net.Topology.a.Topology.nic ~config:Config.default ()
  in
  let lt =
    Tas.app tas ~app_cores:[| Core.create sim ~id:100 () |] ~api:Libtas.Sockets
  in
  let peer = E.create sim net.Topology.b.Topology.nic E.default_config in
  E.attach peer;
  let rng = Rng.create 31 in
  let stage =
    Fault.create sim rng
      { Fault.passthrough with
        Fault.reorder =
          Some
            { Fault.reorder_rate = 0.1; reorder_window = 4;
              max_hold_ns = 60_000 } }
  in
  Port.set_deliver net.Topology.b.Topology.uplink
    (Fault.wrap stage (fun pkt -> Nic.input net.Topology.a.Topology.nic pkt));
  let n = 200_000 in
  let received, payload = bulk_through_tas sim net tas lt peer ~n in
  Sim.run ~until:(Time_ns.sec 5) sim;
  Alcotest.(check int) "stream complete under reordering" n
    (Buffer.length received);
  Alcotest.(check string) "stream intact" (Bytes.to_string payload)
    (Buffer.contents received)

let test_duplication_into_tas () =
  (* Every 10th packet is delivered twice: duplicates must be absorbed. *)
  let sim = Sim.create () in
  let net = Topology.point_to_point sim ~queues_per_nic:4 () in
  let tas =
    Tas.create sim ~nic:net.Topology.a.Topology.nic ~config:Config.default ()
  in
  let lt =
    Tas.app tas ~app_cores:[| Core.create sim ~id:100 () |] ~api:Libtas.Sockets
  in
  let peer = E.create sim net.Topology.b.Topology.nic E.default_config in
  E.attach peer;
  let count = ref 0 in
  Port.set_deliver net.Topology.b.Topology.uplink (fun pkt ->
      incr count;
      Nic.input net.Topology.a.Topology.nic pkt;
      if !count mod 10 = 0 then Nic.input net.Topology.a.Topology.nic pkt);
  let n = 100_000 in
  let received, payload = bulk_through_tas sim net tas lt peer ~n in
  Sim.run ~until:(Time_ns.sec 5) sim;
  Alcotest.(check int) "no duplicate delivery to the app" n
    (Buffer.length received);
  Alcotest.(check string) "stream intact" (Bytes.to_string payload)
    (Buffer.contents received)

let test_tap_observes_handshake () =
  (* The tap must see exactly one SYN and one handshake ACK from the client,
     and TAS's SYN-ACK in the other direction. *)
  let sim = Sim.create () in
  let net = Topology.point_to_point sim ~queues_per_nic:4 () in
  let tas =
    Tas.create sim ~nic:net.Topology.a.Topology.nic ~config:Config.default ()
  in
  let lt =
    Tas.app tas ~app_cores:[| Core.create sim ~id:100 () |] ~api:Libtas.Sockets
  in
  Libtas.listen lt ~port:7 ~ctx_of_tuple:(fun _ -> 0) (fun _ ->
      Libtas.null_handlers);
  let peer = E.create sim net.Topology.b.Topology.nic E.default_config in
  E.attach peer;
  let to_tas = Tap.create () and from_tas = Tap.create () in
  Port.set_deliver net.Topology.b.Topology.uplink
    (Tap.wrap to_tas sim (fun p -> Nic.input net.Topology.a.Topology.nic p));
  Port.set_deliver net.Topology.a.Topology.uplink
    (Tap.wrap from_tas sim (fun p -> Nic.input net.Topology.b.Topology.nic p));
  ignore
    (E.connect peer ~dst_ip:(Nic.ip net.Topology.a.Topology.nic) ~dst_port:7
       E.null_callbacks);
  Sim.run ~until:(Time_ns.ms 10) sim;
  let syns =
    Tap.matching to_tas (fun p ->
        p.Packet.tcp.Tcp.flags.Tcp.syn && not p.Packet.tcp.Tcp.flags.Tcp.ack)
  in
  let synacks =
    Tap.matching from_tas (fun p ->
        p.Packet.tcp.Tcp.flags.Tcp.syn && p.Packet.tcp.Tcp.flags.Tcp.ack)
  in
  Alcotest.(check int) "one SYN" 1 (List.length syns);
  Alcotest.(check int) "one SYN-ACK" 1 (List.length synacks);
  (* The SYN carries MSS, wscale and timestamp options. *)
  (match syns with
  | [ { Tap.pkt; _ } ] ->
    let opts = pkt.Packet.tcp.Tcp.options in
    Alcotest.(check bool) "SYN has mss" true (opts.Tcp.mss <> None);
    Alcotest.(check bool) "SYN has wscale" true (opts.Tcp.wscale <> None);
    Alcotest.(check bool) "SYN has timestamp" true (opts.Tcp.timestamp <> None)
  | _ -> Alcotest.fail "expected one SYN");
  (* pp_record renders without raising. *)
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Tap.dump fmt to_tas;
  Format.pp_print_flush fmt ();
  Alcotest.(check bool) "dump produced text" true (Buffer.length buf > 0)

let test_tap_ring_limit () =
  let sim = Sim.create () in
  let tap = Tap.create ~limit:5 () in
  let deliver = Tap.wrap tap sim ignore in
  let tcp =
    { Tcp.src_port = 1; dst_port = 2; seq = 0; ack = 0;
      flags = Tcp.data_flags; window = 0; options = Tcp.no_options }
  in
  for _ = 1 to 12 do
    deliver
      (Packet.make ~src_mac:1 ~dst_mac:2 ~src_ip:(Tas_proto.Addr.host_ip 1)
         ~dst_ip:(Tas_proto.Addr.host_ip 2) ~tcp ~payload:Bytes.empty ())
  done;
  Alcotest.(check int) "bounded at limit" 5 (Tap.count tap);
  Tap.clear tap;
  Alcotest.(check int) "cleared" 0 (Tap.count tap)

let test_tas_acks_every_data_packet () =
  (* Wire-level check: for N data packets in, TAS emits N ACKs. *)
  let sim = Sim.create () in
  let net = Topology.point_to_point sim ~queues_per_nic:4 () in
  let tas =
    Tas.create sim ~nic:net.Topology.a.Topology.nic ~config:Config.default ()
  in
  let lt =
    Tas.app tas ~app_cores:[| Core.create sim ~id:100 () |] ~api:Libtas.Sockets
  in
  let peer = E.create sim net.Topology.b.Topology.nic E.default_config in
  E.attach peer;
  let n = 64_000 in
  let received, _ = bulk_through_tas sim net tas lt peer ~n in
  Sim.run ~until:(Time_ns.sec 2) sim;
  Alcotest.(check int) "delivered" n (Buffer.length received);
  let stats = Tas_core.Fast_path.stats (Tas.fast_path tas) in
  Alcotest.(check int) "one ACK per data packet"
    stats.Tas_core.Fast_path.rx_data_packets
    stats.Tas_core.Fast_path.acks_sent

let suite =
  [
    Alcotest.test_case "reordering into TAS" `Quick test_reordering_into_tas;
    Alcotest.test_case "duplication into TAS" `Quick test_duplication_into_tas;
    Alcotest.test_case "tap observes handshake + options" `Quick
      test_tap_observes_handshake;
    Alcotest.test_case "tap ring limit" `Quick test_tap_ring_limit;
    Alcotest.test_case "TAS acks every data packet" `Quick
      test_tas_acks_every_data_packet;
  ]
