(* Randomized end-to-end stream properties: under arbitrary combinations of
   loss, reordering and duplication, TCP (both the baseline engine and TAS)
   must deliver exactly the bytes that were sent, in order, exactly once. *)

module Sim = Tas_engine.Sim
module Time_ns = Tas_engine.Time_ns
module Rng = Tas_engine.Rng
module Core = Tas_cpu.Core
module Topology = Tas_netsim.Topology
module Port = Tas_netsim.Port
module Nic = Tas_netsim.Nic
module Fault = Tas_netsim.Fault
module Config = Tas_core.Config
module Tas = Tas_core.Tas
module Libtas = Tas_core.Libtas
module E = Tas_baseline.Tcp_engine

type net_fault = {
  loss : float;
  reorder_rate : float;
  reorder_delay_us : int;
  dup_every : int;  (* 0 = no duplication *)
}

let apply_faults sim rng fault deliver =
  let count = ref 0 in
  let with_dup pkt =
    deliver pkt;
    incr count;
    if fault.dup_every > 0 && !count mod fault.dup_every = 0 then deliver pkt
  in
  let spec =
    {
      Fault.passthrough with
      Fault.uniform_loss = fault.loss;
      reorder =
        (if fault.reorder_rate > 0.0 then
           Some
             { Fault.reorder_rate = fault.reorder_rate;
               reorder_window = 4;
               max_hold_ns = fault.reorder_delay_us * 1000 }
         else None);
    }
  in
  Fault.wrap (Fault.create sim rng spec) with_dup

(* Send [n] bytes from an engine client into a server of the given kind
   through a faulty link; return delivered bytes. *)
let run_stream ~tas_receiver ~fault ~seed ~n =
  let sim = Sim.create () in
  let rng = Rng.create seed in
  let net = Topology.point_to_point sim ~queues_per_nic:4 () in
  let received = Buffer.create n in
  (* Receiver on host a. *)
  if tas_receiver then begin
    let t =
      Tas.create sim ~nic:net.Topology.a.Topology.nic ~config:Config.default ()
    in
    let lt =
      Tas.app t ~app_cores:[| Core.create sim ~id:100 () |] ~api:Libtas.Sockets
    in
    Libtas.listen lt ~port:7 ~ctx_of_tuple:(fun _ -> 0) (fun _ ->
        {
          Libtas.null_handlers with
          Libtas.on_data = (fun _ d -> Buffer.add_bytes received d);
        })
  end
  else begin
    let engine = E.create sim net.Topology.a.Topology.nic E.default_config in
    E.attach engine;
    E.listen engine ~port:7 (fun _ ->
        {
          E.null_callbacks with
          E.on_receive = (fun _ d -> Buffer.add_bytes received d);
        })
  end;
  (* Fault injection on the client -> server direction. *)
  Port.set_deliver net.Topology.b.Topology.uplink
    (apply_faults sim (Rng.split rng) fault (fun p ->
         Nic.input net.Topology.a.Topology.nic p));
  let client = E.create sim net.Topology.b.Topology.nic E.default_config in
  E.attach client;
  let payload = Bytes.init n (fun i -> Char.chr ((i * 7) land 0xff)) in
  let sent = ref 0 in
  let push c =
    while
      !sent < n
      &&
      let k = E.send c (Bytes.sub payload !sent (min 4096 (n - !sent))) in
      sent := !sent + k;
      k > 0
    do
      ()
    done
  in
  ignore
    (E.connect client ~dst_ip:(Nic.ip net.Topology.a.Topology.nic) ~dst_port:7
       {
         E.null_callbacks with
         E.on_connected = (fun c -> push c);
         E.on_sendable = (fun c _ -> push c);
       });
  Sim.run ~until:(Time_ns.sec 60) sim;
  (payload, Buffer.to_bytes received)

let fault_gen =
  QCheck.Gen.(
    let* loss = oneofl [ 0.0; 0.005; 0.02 ] in
    let* reorder_rate = oneofl [ 0.0; 0.05; 0.15 ] in
    let* reorder_delay_us = int_range 10 200 in
    let* dup_every = oneofl [ 0; 7; 23 ] in
    return { loss; reorder_rate; reorder_delay_us; dup_every })

let print_fault f =
  Printf.sprintf "loss=%.3f reorder=%.2f/%dus dup=%d" f.loss f.reorder_rate
    f.reorder_delay_us f.dup_every

let prop_engine_stream_exact =
  QCheck.Test.make ~name:"engine delivers exact stream under any faults"
    ~count:12
    (QCheck.make ~print:(fun (f, s) -> print_fault f ^ " seed=" ^ string_of_int s)
       QCheck.Gen.(pair fault_gen (int_bound 10_000)))
    (fun (fault, seed) ->
      let payload, got = run_stream ~tas_receiver:false ~fault ~seed ~n:60_000 in
      Bytes.equal payload got)

let prop_tas_stream_exact =
  QCheck.Test.make ~name:"TAS delivers exact stream under any faults"
    ~count:12
    (QCheck.make ~print:(fun (f, s) -> print_fault f ^ " seed=" ^ string_of_int s)
       QCheck.Gen.(pair fault_gen (int_bound 10_000)))
    (fun (fault, seed) ->
      let payload, got = run_stream ~tas_receiver:true ~fault ~seed ~n:60_000 in
      Bytes.equal payload got)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_engine_stream_exact;
    QCheck_alcotest.to_alcotest prop_tas_stream_exact;
  ]
