(* Unit tests of the timeline flight recorder and the health watchdog:
   ring bounding/wraparound, JSON round-trips, merge stability, every
   watchdog rule firing (and staying silent) on synthetic frames, the
   Chrome counter export shape, exact histogram merging from raw buckets,
   and same-seed / serial-vs-parallel timeline determinism on the
   diagnostics scenario. *)

module Timeline = Tas_telemetry.Timeline
module Health = Tas_telemetry.Health
module Metrics = Tas_telemetry.Metrics
module Trace = Tas_telemetry.Trace
module Json = Tas_telemetry.Json
module Stats = Tas_engine.Stats
module Diagnostics = Tas_experiments.Diagnostics
module Tas = Tas_core.Tas

(* A recorder over a live registry: one counter cell, one gauge cell, one
   synthetic core probe, shard + arena probes. *)
let make_recorded () =
  let m = Metrics.create () in
  let pkts = ref 0 and depth = ref 0.0 in
  Metrics.counter_fn m "pkts_total" (fun () -> !pkts);
  Metrics.gauge_fn m "queue_depth" (fun () -> !depth);
  let tl = Timeline.create ~interval_ns:1000 ~capacity:8 ~metrics:m () in
  let busy = ref [||] in
  Timeline.add_core tl ~role:"fp" ~id:0
    ~busy_in:(fun b -> if b < Array.length !busy then !busy.(b) else 0)
    ~backlog:(fun () -> 42);
  Timeline.set_shard_probe tl (fun () -> [| 3; 1 |]);
  Timeline.set_arena_probe tl (fun () -> Some (5, 16));
  (tl, pkts, depth, busy)

let test_capture_deltas_and_probes () =
  let tl, pkts, depth, busy = make_recorded () in
  pkts := 10;
  depth := 2.5;
  busy := [| 600 |];
  Timeline.capture tl ~ts:1000;
  pkts := 25;
  Timeline.capture tl ~ts:2000;
  match Timeline.frames tl with
  | [ f1; f2 ] ->
    Alcotest.(check int) "first delta" 10
      (match f1.Timeline.counters with [ (_, _, d) ] -> d | _ -> -1);
    Alcotest.(check int) "second delta" 15
      (match f2.Timeline.counters with [ (_, _, d) ] -> d | _ -> -1);
    (match f1.Timeline.cores with
    | [ c ] ->
      Alcotest.(check string) "role" "fp" c.Timeline.c_role;
      Alcotest.(check int) "busy ns in bucket 0" 600 c.Timeline.c_busy_ns;
      Alcotest.(check (float 1e-9)) "util" 0.6 c.Timeline.c_util;
      Alcotest.(check int) "backlog" 42 c.Timeline.c_backlog_ns
    | _ -> Alcotest.fail "expected one core sample");
    Alcotest.(check (array int)) "shards" [| 3; 1 |] f1.Timeline.shard_flows;
    Alcotest.(check bool) "arena probed" true (f1.Timeline.arena = Some (5, 16))
  | fs -> Alcotest.failf "expected 2 frames, got %d" (List.length fs)

let test_ring_wraparound () =
  let m = Metrics.create () in
  let tl = Timeline.create ~interval_ns:1000 ~capacity:4 ~metrics:m () in
  for i = 1 to 7 do
    Timeline.capture tl ~ts:(i * 1000)
  done;
  Alcotest.(check int) "length bounded" 4 (Timeline.length tl);
  Alcotest.(check int) "captured" 7 (Timeline.captured tl);
  Alcotest.(check int) "evicted" 3 (Timeline.evicted tl);
  let seqs = List.map (fun f -> f.Timeline.seq) (Timeline.frames tl) in
  Alcotest.(check (list int)) "oldest dropped, order kept" [ 3; 4; 5; 6 ] seqs;
  let ts = List.map (fun f -> f.Timeline.ts) (Timeline.frames tl) in
  Alcotest.(check (list int)) "timestamps" [ 4000; 5000; 6000; 7000 ] ts

let test_json_roundtrip () =
  let tl, pkts, depth, busy = make_recorded () in
  pkts := 3;
  depth := 1.25;
  busy := [| 100; 900 |];
  Timeline.capture tl ~ts:1000;
  pkts := 9;
  Timeline.capture tl ~ts:2000;
  let doc = Timeline.to_json tl in
  (* Serialize, reparse, and re-extract: frames survive byte-identically. *)
  let reparsed = Json.of_string (Json.to_string doc) in
  let back = Timeline.frames_of_json reparsed in
  let render fs =
    Json.to_string (Json.List (List.map Timeline.frame_to_json fs))
  in
  Alcotest.(check string) "frames round-trip" (render (Timeline.frames tl))
    (render back);
  (* frames_of_json also accepts the bare frames list. *)
  match Json.member "frames" reparsed with
  | Some l ->
    Alcotest.(check int) "bare list accepted" 2
      (List.length (Timeline.frames_of_json l))
  | None -> Alcotest.fail "to_json lost the frames member"

let mk_frame ?(seq = 0) ?(ts = 1000) ?(counters = []) ?(gauges = [])
    ?(cores = []) ?(shard_flows = [||]) ?arena () =
  { Timeline.seq; ts; counters; gauges; cores; shard_flows; arena }

let test_merge_stable () =
  let a = [ mk_frame ~seq:1 ~ts:1000 (); mk_frame ~seq:2 ~ts:3000 () ] in
  let b = [ mk_frame ~seq:10 ~ts:1000 (); mk_frame ~seq:11 ~ts:2000 () ] in
  let merged = Timeline.merge [ a; b ] in
  Alcotest.(check (list int)) "ts-ordered, stable on ties" [ 1; 10; 11; 2 ]
    (List.map (fun f -> f.Timeline.seq) merged)

(* --- watchdog rules ------------------------------------------------------ *)

let sp_core backlog =
  {
    Timeline.c_role = "sp";
    c_id = 100;
    c_busy_ns = 0;
    c_util = 0.0;
    c_backlog_ns = backlog;
  }

let fired report rule =
  List.exists (fun v -> v.Health.v_rule = rule) report.Health.violations

let test_rule_rexmit_storm () =
  let quiet =
    mk_frame ~counters:[ ("fp_fast_retransmits", [], 7) ] ()
  in
  let storm =
    mk_frame ~ts:2000
      ~counters:
        [ ("fp_fast_retransmits", [], 5); ("sp_timeout_retransmits", [], 4) ]
      ()
  in
  let r = Health.check [ quiet; storm ] in
  Alcotest.(check bool) "fires on 9" true (fired r Health.Rexmit_storm);
  Alcotest.(check int) "once" 1 (List.length r.Health.violations);
  Alcotest.(check bool) "quiet frame passes alone" true
    (Health.check [ quiet ]).Health.passed

let test_rule_arena_pressure () =
  let ok = mk_frame ~arena:(8, 16) () in
  let hot = mk_frame ~ts:2000 ~arena:(15, 16) () in
  let r = Health.check [ ok; hot ] in
  Alcotest.(check bool) "fires at 15/16" true (fired r Health.Arena_pressure);
  Alcotest.(check int) "once" 1 (List.length r.Health.violations)

let test_rule_shard_imbalance () =
  let skewed = mk_frame ~shard_flows:[| 30; 2; 2; 2 |] () in
  let even = mk_frame ~ts:2000 ~shard_flows:[| 10; 10; 10; 6 |] () in
  let tiny = mk_frame ~ts:3000 ~shard_flows:[| 5; 0; 0; 0 |] () in
  let r = Health.check [ skewed; even; tiny ] in
  Alcotest.(check bool) "fires on skew" true (fired r Health.Shard_imbalance);
  (* [tiny] is just as skewed but under the minimum population. *)
  Alcotest.(check int) "small populations exempt" 1
    (List.length r.Health.violations)

let test_rule_backlog_growth () =
  let growth =
    [
      mk_frame ~ts:1000 ~cores:[ sp_core 400_000 ] ();
      mk_frame ~ts:2000 ~cores:[ sp_core 800_000 ] ();
      mk_frame ~ts:3000 ~cores:[ sp_core 1_500_000 ] ();
    ]
  in
  let r = Health.check growth in
  Alcotest.(check bool) "fires on 3-frame growth" true
    (fired r Health.Backlog_growth);
  (* Same shape but ending under the floor: silent. *)
  let small =
    [
      mk_frame ~ts:1000 ~cores:[ sp_core 100 ] ();
      mk_frame ~ts:2000 ~cores:[ sp_core 200 ] ();
      mk_frame ~ts:3000 ~cores:[ sp_core 300 ] ();
    ]
  in
  Alcotest.(check bool) "small backlog passes" true
    (Health.check small).Health.passed;
  (* Non-monotone growth: silent. *)
  let wobble =
    [
      mk_frame ~ts:1000 ~cores:[ sp_core 400_000 ] ();
      mk_frame ~ts:2000 ~cores:[ sp_core 300_000 ] ();
      mk_frame ~ts:3000 ~cores:[ sp_core 1_500_000 ] ();
    ]
  in
  Alcotest.(check bool) "wobble passes" true (Health.check wobble).Health.passed

let test_rule_ring_drops_and_trace () =
  let drop = mk_frame ~counters:[ ("span_dropped_events", [], 2) ] () in
  let trace = Trace.create ~capacity:64 () in
  let r = Health.check ~trace [ drop ] in
  Alcotest.(check bool) "fires on drops" true (fired r Health.Ring_drops);
  (* The violation is mirrored as a structured Health_* trace event. *)
  match Trace.drain trace with
  | [ e ] ->
    Alcotest.(check string) "trace kind" "health_ring_drops"
      (Trace.kind_name e.Trace.kind);
    Alcotest.(check int) "at frame ts" 1000 e.Trace.ts
  | es -> Alcotest.failf "expected 1 trace event, got %d" (List.length es)

let test_report_json () =
  let storm = mk_frame ~counters:[ ("fp_fast_retransmits", [], 20) ] () in
  let r = Health.check [ storm ] in
  let j = Json.to_string (Health.report_to_json r) in
  Alcotest.(check bool) "marks failure" true
    (Json.member "passed" (Health.report_to_json r) = Some (Json.Bool false));
  Alcotest.(check bool) "names the rule" true
    (let rec contains i =
       i + 12 <= String.length j
       && (String.sub j i 12 = "rexmit_storm" || contains (i + 1))
     in
     contains 0)

(* --- Chrome counter export ----------------------------------------------- *)

let test_chrome_counters_shape () =
  let tl, pkts, _, busy = make_recorded () in
  pkts := 1;
  busy := [| 250 |];
  Timeline.capture tl ~ts:1000;
  let events =
    Timeline.to_chrome_counters ~pid:3 ~prefix:"x " ~interval_ns:1000
      (Timeline.frames tl)
  in
  Alcotest.(check bool) "has events" true (events <> []);
  List.iter
    (fun e ->
      Alcotest.(check bool) "counter phase" true
        (Json.member "ph" e = Some (Json.Str "C"));
      Alcotest.(check bool) "pid" true (Json.member "pid" e = Some (Json.Int 3));
      (match Json.member "ts" e with
      | Some ts ->
        Alcotest.(check (float 1e-9)) "ts in us" 1.0
          (Option.get (Json.to_float_opt ts))
      | None -> Alcotest.fail "no ts");
      match Json.member "name" e with
      | Some (Json.Str n) ->
        Alcotest.(check bool) "prefixed" true
          (String.length n > 2 && String.sub n 0 2 = "x ")
      | _ -> Alcotest.fail "no name")
    events;
  (* One util series for the registered core, plus shard + arena series. *)
  let names =
    List.filter_map (fun e -> Json.member "name" e) events
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "three series" 3 (List.length names)

(* --- exact histogram merge from raw buckets ------------------------------ *)

let test_hist_merge_exact () =
  let values_a = [ 3.0; 17.0; 120.0; 120.0; 4096.0 ] in
  let values_b = [ 1.0; 17.0; 90.0; 2.0e6 ] in
  let reg values =
    let m = Metrics.create () in
    let h = Metrics.hist m "lat_us" in
    List.iter (Stats.Hist.add h) values;
    Metrics.snapshot m
  in
  let merged = Metrics.merge [ reg values_a; reg values_b ] in
  let direct = Stats.Hist.create () in
  List.iter (Stats.Hist.add direct) (values_a @ values_b);
  match merged with
  | [ { Metrics.s_value = Metrics.Hist h; _ } ] ->
    Alcotest.(check int) "count" 9 h.Metrics.count;
    (* The raw buckets travel with the summary, so merged quantiles equal
       the single-histogram quantiles exactly — not approximately. *)
    List.iter
      (fun p ->
        Alcotest.(check (float 0.0))
          (Printf.sprintf "p%g exact" p)
          (Stats.Hist.percentile direct p)
          (Metrics.quantile h p))
      [ 50.0; 90.0; 99.0; 99.9 ];
    Alcotest.(check (float 0.0)) "max exact" (Stats.Hist.max_v direct)
      h.Metrics.max_v
  | _ -> Alcotest.fail "expected one merged hist sample"

let test_quantile_configuration () =
  Alcotest.(check bool) "p99.9 is a default" true
    (List.mem 99.9 Metrics.default_quantiles);
  let m = Metrics.create ~quantiles:[ 50.0; 99.9 ] () in
  let h = Metrics.hist m "lat" in
  for i = 1 to 1000 do
    Stats.Hist.add h (float_of_int i)
  done;
  match Metrics.snapshot m with
  | [ ({ Metrics.s_value = Metrics.Hist s; _ } as sample) ] ->
    Alcotest.(check int) "two points" 2 (List.length s.Metrics.quantiles);
    let j = Json.to_string (Metrics.sample_to_json sample) in
    let contains needle =
      let ln = String.length needle and lh = String.length j in
      let rec go i = i + ln <= lh && (String.sub j i ln = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "p999 key" true (contains "\"p999\"");
    Alcotest.(check bool) "raw buckets exported" true (contains "\"buckets\"")
  | _ -> Alcotest.fail "expected one hist sample"

(* --- determinism on the real scenario ------------------------------------ *)

let diag_timeline_bytes n_conns =
  let d = Diagnostics.build ~n_conns ~timeline_ns:500_000 () in
  Diagnostics.run d ~duration_ns:(Tas_engine.Time_ns.ms 5);
  match Tas.timeline d.Diagnostics.server with
  | Some tl -> Json.to_string (Timeline.to_json tl)
  | None -> Alcotest.fail "diagnostics recorded no timeline"

let test_same_seed_identical () =
  Alcotest.(check bool) "byte-identical timelines" true
    (String.equal (diag_timeline_bytes 6) (diag_timeline_bytes 6))

let test_parallel_matches_serial () =
  let idx = Array.init 4 (fun i -> 4 + i) in
  let serial = Array.map diag_timeline_bytes idx in
  let parallel =
    Tas_parallel.Domain_pool.with_pool ~jobs:4 (fun pool ->
        Tas_parallel.Domain_pool.map pool ~f:diag_timeline_bytes idx)
  in
  Alcotest.(check bool) "4 members identical across -j4" true
    (serial = parallel)

let suite =
  [
    Alcotest.test_case "capture: deltas, gauges, probes" `Quick
      test_capture_deltas_and_probes;
    Alcotest.test_case "ring wraparound bounds memory" `Quick
      test_ring_wraparound;
    Alcotest.test_case "timeline JSON round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "merge is ts-ordered and stable" `Quick
      test_merge_stable;
    Alcotest.test_case "rule: retransmit storm" `Quick test_rule_rexmit_storm;
    Alcotest.test_case "rule: arena pressure" `Quick test_rule_arena_pressure;
    Alcotest.test_case "rule: shard imbalance" `Quick
      test_rule_shard_imbalance;
    Alcotest.test_case "rule: backlog growth" `Quick test_rule_backlog_growth;
    Alcotest.test_case "rule: ring drops + trace mirror" `Quick
      test_rule_ring_drops_and_trace;
    Alcotest.test_case "health report JSON" `Quick test_report_json;
    Alcotest.test_case "chrome counter export shape" `Quick
      test_chrome_counters_shape;
    Alcotest.test_case "hist merge exact from buckets" `Quick
      test_hist_merge_exact;
    Alcotest.test_case "quantile list configurable, p999 default" `Quick
      test_quantile_configuration;
    Alcotest.test_case "same-seed timeline byte-identical" `Quick
      test_same_seed_identical;
    Alcotest.test_case "serial vs -j4 timelines identical" `Slow
      test_parallel_matches_serial;
  ]
