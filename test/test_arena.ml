(* Arena differential battery: the off-heap {!Flow_arena} backing must be
   observationally indistinguishable from the boxed reference records.
   Three parts:

   - A/B differential runs — the same seeded workloads (bulk echo, a
     chaos-style fault schedule, a sharded scale-down) executed once with
     [Config.flow_arena_enabled] and once without must produce
     byte-identical metrics exports, trace streams, cycle breakdowns and
     flow dumps.
   - Property/fuzz tests on the arena itself — alloc/free interleavings
     against a model (no slot aliasing, clean exhaustion, double-free
     rejection), Table-3 field round-trips at the declared offset/width
     including wraparound near 2^32, and random
     install/remove/lookup/migrate interleavings over a sharded fast path.
   - Burst semantics — [Fast_path.process_burst] over N packets must be
     equivalent to N single-packet passes (same ACKs, retransmits, flow
     state), preserve per-flow payload ordering for interleaved flows, and
     handle empty/oversized bursts.

   Plus a JSON-shape regression pinning the [tas_run flows] output. *)

module Sim = Tas_engine.Sim
module Time_ns = Tas_engine.Time_ns
module Rng = Tas_engine.Rng
module Stats = Tas_engine.Stats
module Core = Tas_cpu.Core
module Addr = Tas_proto.Addr
module Four_tuple = Addr.Four_tuple
module Packet = Tas_proto.Packet
module Tcp = Tas_proto.Tcp_header
module Ring = Tas_buffers.Ring_buffer
module Nic = Tas_netsim.Nic
module Fault = Tas_netsim.Fault
module Topology = Tas_netsim.Topology
module E = Tas_baseline.Tcp_engine
module Config = Tas_core.Config
module Tas = Tas_core.Tas
module Libtas = Tas_core.Libtas
module Fast_path = Tas_core.Fast_path
module Flow_table = Tas_core.Flow_table
module Flow_state = Tas_core.Flow_state
module Flow_arena = Tas_core.Flow_arena
module Rate_bucket = Tas_core.Rate_bucket
module Scenario = Tas_experiments.Scenario
module Rpc_echo = Tas_apps.Rpc_echo
module Metrics = Tas_telemetry.Metrics
module Trace = Tas_telemetry.Trace
module J = Tas_telemetry.Json

(* --- A/B differential runs ------------------------------------------------ *)

type observation = {
  json : string;
  prometheus : string;
  events : Trace.event list;
  breakdown : (string * int) list;
  flows_dump : string;
}

let event =
  Alcotest.testable
    (fun fmt e ->
      Format.fprintf fmt "%d:%s:core%d:flow%d" e.Trace.ts
        (Trace.kind_name e.Trace.kind) e.Trace.core e.Trace.flow)
    ( = )

let check_identical a b =
  Alcotest.(check string) "metrics JSON byte-identical" a.json b.json;
  Alcotest.(check string) "prometheus export byte-identical" a.prometheus
    b.prometheus;
  Alcotest.(check (list event)) "trace event streams identical" a.events
    b.events;
  Alcotest.(check (list (pair string int)))
    "cycle breakdown identical" a.breakdown b.breakdown;
  Alcotest.(check string) "flow dump byte-identical" a.flows_dump b.flows_dump

let snap tas =
  {
    json = Metrics.to_json_string ~pretty:true (Tas.metrics tas);
    prometheus = Metrics.to_prometheus (Tas.metrics tas);
    events = Trace.drain (Tas.trace tas);
    breakdown =
      List.map
        (fun (cat, ns) -> (Core.category_name cat, ns))
        (Tas.cycle_breakdown tas);
    flows_dump = J.to_string (Tas.flows tas);
  }

(* Bulk echo workload (the determinism suite's exchange-heavy run), with
   the backing selected by [arena]; optional fault stages make it the
   chaos-style schedule. *)
let observe ?fault_ab ?fault_ba ?loss_rate ~arena ~seed () =
  let sim = Sim.create () in
  let rng = Rng.create seed in
  let net =
    Topology.point_to_point sim ?fault_ab ?fault_ba ?loss_rate ~rng
      ~queues_per_nic:8 ()
  in
  let config =
    {
      Config.default with
      Config.trace_enabled = true;
      trace_capacity = 4096;
      flow_arena_enabled = arena;
    }
  in
  let tas = Tas.create sim ~nic:net.Topology.a.Topology.nic ~config () in
  let app_core = Core.create sim ~id:100 () in
  let lt = Tas.app tas ~app_cores:[| app_core |] ~api:Libtas.Sockets in
  Libtas.listen lt ~port:7 ~ctx_of_tuple:(fun _ -> 0) (fun _sock ->
      {
        Libtas.null_handlers with
        Libtas.on_data = (fun sock data -> ignore (Libtas.send sock data));
      });
  let client = E.create sim net.Topology.b.Topology.nic E.default_config in
  E.attach client;
  for i = 0 to 7 do
    let remaining = ref (20 + i) in
    let cb =
      {
        E.null_callbacks with
        E.on_connected =
          (fun c -> ignore (E.send c (Bytes.make 600 (Char.chr (65 + i)))));
        E.on_receive =
          (fun c d ->
            ignore d;
            decr remaining;
            if !remaining > 0 then
              ignore (E.send c (Bytes.make 600 (Char.chr (65 + i)))));
      }
    in
    ignore
      (E.connect client ~dst_ip:(Tas_netsim.Nic.ip net.Topology.a.Topology.nic)
         ~dst_port:7 cb)
  done;
  Sim.run ~until:(Time_ns.ms 80) sim;
  snap tas

let test_bulk_differential () =
  let a = observe ~arena:true ~seed:7 () in
  let b = observe ~arena:false ~seed:7 () in
  check_identical a b;
  Alcotest.(check bool) "some trace events" true (List.length a.events > 100)

let test_bulk_differential_with_loss () =
  let a = observe ~loss_rate:0.02 ~arena:true ~seed:11 () in
  let b = observe ~loss_rate:0.02 ~arena:false ~seed:11 () in
  check_identical a b

(* Chaos-style schedule: bursty loss toward TAS, duplication + reordering
   on the return path — the `ch` experiment's "everything at once" shape,
   scaled down to a unit test. *)
let test_chaos_differential () =
  let fault_ab =
    {
      (Fault.bursty_of_rate ~rate:0.03 ~mean_burst_pkts:3.0) with
      Fault.dup_rate = 0.01;
    }
  in
  let fault_ba =
    {
      Fault.passthrough with
      Fault.dup_rate = 0.02;
      reorder =
        Some
          {
            Fault.reorder_rate = 0.05;
            reorder_window = 3;
            max_hold_ns = 200_000;
          };
    }
  in
  let a = observe ~fault_ab ~fault_ba ~arena:true ~seed:23 () in
  let b = observe ~fault_ab ~fault_ba ~arena:false ~seed:23 () in
  check_identical a b

(* Sharded scale-down: a saturated RPC-echo server on 4 active cores,
   scaled down to 1 mid-run (drain-in-place migration of every live flow),
   with the backing selected by [arena]. *)
let observe_sharded ~arena () =
  let sim = Sim.create () in
  let net = Topology.star sim ~n_clients:1 ~queues_per_nic:4 () in
  let server =
    Scenario.build_server sim ~nic:net.Topology.server.Topology.nic
      ~kind:Scenario.Tas_ll ~total_cores:6 ~split:(2, 4)
      ~tas_patch:(fun c ->
        {
          c with
          Config.flow_shards_enabled = true;
          flow_arena_enabled = arena;
        })
      ()
  in
  let tas = Option.get server.Scenario.tas in
  Fast_path.set_active_cores (Tas.fast_path tas) 4;
  Rpc_echo.server server.Scenario.transport ~port:7 ~msg_size:64
    ~app_cycles:300;
  let stats = Rpc_echo.make_stats () in
  let transport = Scenario.client_transport sim net.Topology.clients.(0) () in
  Rpc_echo.closed_loop_clients sim transport ~n:16 ~dst_ip:server.Scenario.ip
    ~dst_port:7 ~msg_size:64 ~pipeline:4 ~stagger_ns:2_000 ~stats ();
  ignore
    (Sim.schedule_at sim (Time_ns.ms 4) (fun () ->
         Fast_path.set_active_cores (Tas.fast_path tas) 1));
  Sim.run ~until:(Time_ns.ms 8) sim;
  let s = Tas.snapshot tas in
  let ft = Fast_path.flows (Tas.fast_path tas) in
  ( Printf.sprintf "%d|%d|%d|%d|%d|%d|%d|%d|%d|%d" s.Tas.flows s.Tas.conn_setups
      s.Tas.rx_data_packets s.Tas.rx_ack_packets s.Tas.tx_data_packets
      s.Tas.acks_sent s.Tas.ooo_stored s.Tas.exceptions_forwarded
      (Flow_table.migrated_flows ft)
      (Stats.Counter.value stats.Rpc_echo.completed),
    J.to_string (Tas.flows tas),
    ft )

let test_sharded_scale_down_differential () =
  let d1, flows1, ft1 = observe_sharded ~arena:true () in
  let d2, flows2, _ = observe_sharded ~arena:false () in
  Alcotest.(check string) "operational counters identical" d2 d1;
  Alcotest.(check string) "flows snapshot identical" flows2 flows1;
  (* The scale-down actually migrated live flows onto shard 0. *)
  Alcotest.(check bool) "flows migrated" true
    (Flow_table.migrated_flows ft1 > 0);
  Alcotest.(check int) "all flows on shard 0" (Flow_table.count ft1)
    (Flow_table.shard_count ft1 0)

(* --- Arena properties ----------------------------------------------------- *)

(* Random alloc/free interleavings against a model set: allocated slots are
   distinct, exhaustion yields [None] exactly at capacity, live/available
   and [in_use] track the model. *)
let prop_alloc_free_model =
  QCheck.Test.make ~count:200 ~name:"arena alloc/free matches model"
    (QCheck.make
       ~print:(fun ops ->
         String.concat ";"
           (List.map
              (fun (a, k) -> Printf.sprintf "%s%d" (if a then "A" else "F") k)
              ops))
       QCheck.Gen.(list_size (int_bound 60) (pair bool (int_bound 31))))
    (fun ops ->
      let cap = 8 in
      let a = Flow_arena.create ~capacity:cap () in
      let live = Hashtbl.create 16 in
      List.iter
        (fun (is_alloc, k) ->
          if is_alloc then
            match Flow_arena.alloc a with
            | Some s ->
              if Hashtbl.mem live s then
                QCheck.Test.fail_reportf "slot %d aliased" s;
              if s < 0 || s >= cap then
                QCheck.Test.fail_reportf "slot %d out of range" s;
              Hashtbl.replace live s ()
            | None ->
              if Hashtbl.length live <> cap then
                QCheck.Test.fail_reportf "spurious exhaustion at %d live"
                  (Hashtbl.length live)
          else
            let n = Hashtbl.length live in
            if n > 0 then begin
              let slots =
                List.sort compare
                  (Hashtbl.fold (fun s () acc -> s :: acc) live [])
              in
              let s = List.nth slots (k mod n) in
              Flow_arena.free a s;
              Hashtbl.remove live s
            end)
        ops;
      Flow_arena.live a = Hashtbl.length live
      && Flow_arena.available a = cap - Hashtbl.length live
      && List.for_all
           (fun s -> Flow_arena.in_use a s = Hashtbl.mem live s)
           (List.init cap Fun.id))

(* Getter/setter pairs for every field in {!Flow_arena.field_layout} except
   [generation] (no setter; maintained by alloc/free). *)
let accessors :
    (string * (Flow_arena.t -> int -> int) * (Flow_arena.t -> int -> int -> unit))
    list =
  Flow_arena.
    [
      ("opaque", get_opaque, set_opaque);
      ("seq", get_seq, set_seq);
      ("ack", get_ack, set_ack);
      ("tx_sent", get_tx_sent, set_tx_sent);
      ("window", get_window, set_window);
      ("cnt_ackb", get_cnt_ackb, set_cnt_ackb);
      ("cnt_ecnb", get_cnt_ecnb, set_cnt_ecnb);
      ("rtt_est", get_rtt_est, set_rtt_est);
      ("ts_recent", get_ts_recent, set_ts_recent);
      ("tx_span", get_tx_span, set_tx_span);
      ("rx_span", get_rx_span, set_rx_span);
      ("ooo_start", get_ooo_start, set_ooo_start);
      ("ooo_len", get_ooo_len, set_ooo_len);
      ("peer_ip", get_peer_ip, set_peer_ip);
      ("local_port", get_local_port, set_local_port);
      ("peer_port", get_peer_port, set_peer_port);
      ("context", get_context, set_context);
      ("dupack_cnt", get_dupack_cnt, set_dupack_cnt);
      ("cnt_frexmits", get_cnt_frexmits, set_cnt_frexmits);
      ("peer_mac", get_peer_mac, set_peer_mac);
      ("peer_wscale", get_peer_wscale, set_peer_wscale);
      ("flags", get_flags, set_flags);
      ("rx_head", get_rx_head, set_rx_head);
      ("rx_tail", get_rx_tail, set_rx_tail);
      ("tx_head", get_tx_head, set_tx_head);
      ("tx_tail", get_tx_tail, set_tx_tail);
      ("rx_size", get_rx_size, set_rx_size);
      ("tx_size", get_tx_size, set_tx_size);
    ]

let lookup_accessor name =
  List.find_opt (fun (n, _, _) -> n = name) accessors

(* What a write of [v] must read back as, given the field's declared byte
   width: wrap at the width, except the signed span fields which
   sign-extend their 32 bits. *)
let expected_after_write name width v =
  match name with
  | "tx_span" | "rx_span" ->
    let m = v land 0xFFFF_FFFF in
    if m land 0x8000_0000 <> 0 then m - 0x1_0000_0000 else m
  | _ -> if width >= 8 then v else v land ((1 lsl (width * 8)) - 1)

(* The layout table is complete and really is the 102-byte Table-3 record:
   fields sorted by offset, non-overlapping, covering [0, slot_bytes). *)
let test_layout_is_table3 () =
  let l = Flow_arena.field_layout in
  Alcotest.(check int) "102-byte record" 102 Flow_arena.slot_bytes;
  Alcotest.(check int)
    "state_bytes agrees" Flow_arena.slot_bytes Flow_state.state_bytes;
  let covered = ref 0 in
  let last_end = ref 0 in
  List.iter
    (fun (name, off, width) ->
      if off < !last_end then
        Alcotest.failf "field %s at %d overlaps previous (ends %d)" name off
          !last_end;
      if off > !last_end then
        Alcotest.failf "gap before field %s at %d (previous ends %d)" name off
          !last_end;
      last_end := off + width;
      covered := !covered + width;
      if name <> "generation" && Option.is_none (lookup_accessor name) then
        Alcotest.failf "field %s has no accessor pair under test" name)
    l;
  Alcotest.(check int) "fields tile the whole slot" Flow_arena.slot_bytes
    !covered

(* Exhaustive neighbour-isolation check: write a distinct pattern into
   every field of two adjacent slots, then verify every field of both slots
   reads back its own pattern — any offset/width error clobbers a
   neighbour and fails. *)
let test_field_isolation () =
  let a = Flow_arena.create ~capacity:4 () in
  let s0 = Option.get (Flow_arena.alloc a) in
  let s1 = Option.get (Flow_arena.alloc a) in
  let pattern slot i = 0x0101_0101_0101 * (i + 1) + slot in
  let each f =
    List.iteri
      (fun i (name, _, width) ->
        match lookup_accessor name with
        | None -> ()
        | Some (_, get, set) -> f i name width get set)
      Flow_arena.field_layout
  in
  List.iter
    (fun slot -> each (fun i _ _ _ set -> set a slot (pattern slot i)))
    [ s0; s1 ];
  List.iter
    (fun slot ->
      each (fun i name width get _ ->
          Alcotest.(check int)
            (Printf.sprintf "slot %d field %s" slot name)
            (expected_after_write name width (pattern slot i))
            (get a slot)))
    [ s0; s1 ]

(* Random single-field round-trips, weighted toward the 2^31/2^32
   wrap boundary. *)
let prop_field_roundtrip =
  let n_fields = List.length accessors in
  let interesting =
    QCheck.Gen.oneof
      [
        QCheck.Gen.(map abs nat);
        QCheck.Gen.oneofl
          [
            0;
            1;
            0x7FFF_FFFE;
            0x7FFF_FFFF;
            0x8000_0000;
            0xFFFF_FFFE;
            0xFFFF_FFFF;
            0x1_0000_0000;
            0x1_0000_0001;
            0xFFFF;
            0x1_0000;
            max_int;
          ];
      ]
  in
  QCheck.Test.make ~count:500 ~name:"field round-trip at declared width"
    (QCheck.make
       ~print:(fun (f, v) ->
         let name, _, _ = List.nth accessors f in
         Printf.sprintf "%s <- %d" name v)
       QCheck.Gen.(pair (int_bound (n_fields - 1)) interesting))
    (fun (f, v) ->
      let name, get, set = List.nth accessors f in
      let _, _, width =
        List.find (fun (n, _, _) -> n = name) Flow_arena.field_layout
      in
      let a = Flow_arena.create ~capacity:2 () in
      let s0 = Option.get (Flow_arena.alloc a) in
      let s1 = Option.get (Flow_arena.alloc a) in
      set a s1 0;
      set a s0 v;
      get a s0 = expected_after_write name width v && get a s1 = 0)

let test_span_sign_extension () =
  let a = Flow_arena.create ~capacity:1 () in
  let s = Option.get (Flow_arena.alloc a) in
  Flow_arena.set_tx_span a s (-1);
  Alcotest.(check int) "tx_span -1 round-trips" (-1)
    (Flow_arena.get_tx_span a s);
  Flow_arena.set_rx_span a s (-1);
  Alcotest.(check int) "rx_span -1 round-trips" (-1)
    (Flow_arena.get_rx_span a s)

let test_flag_bits_independent () =
  let a = Flow_arena.create ~capacity:1 () in
  let s = Option.get (Flow_arena.alloc a) in
  for bit = 0 to 7 do
    Flow_arena.set_flag a s ~bit true;
    for other = 0 to 7 do
      Alcotest.(check bool)
        (Printf.sprintf "bit %d after setting %d" other bit)
        (other = bit)
        (Flow_arena.get_flag a s ~bit:other)
    done;
    Flow_arena.set_flag a s ~bit false
  done;
  Alcotest.(check int) "all clear" 0 (Flow_arena.get_flags a s)

let test_generation_and_reuse () =
  let a = Flow_arena.create ~capacity:1 () in
  let s = Option.get (Flow_arena.alloc a) in
  let g0 = Flow_arena.generation a s in
  Flow_arena.set_seq a s 42;
  Flow_arena.free a s;
  Alcotest.(check int) "generation bumped" (g0 + 1) (Flow_arena.generation a s);
  let s' = Option.get (Flow_arena.alloc a) in
  Alcotest.(check int) "single slot reused" s s';
  Alcotest.(check int) "slot zeroed on realloc" 0 (Flow_arena.get_seq a s');
  Alcotest.(check int)
    "generation survives realloc" (g0 + 1)
    (Flow_arena.generation a s')

let test_free_errors () =
  let a = Flow_arena.create ~capacity:2 () in
  let s = Option.get (Flow_arena.alloc a) in
  Flow_arena.free a s;
  Alcotest.check_raises "double free rejected"
    (Invalid_argument "Flow_arena.free: double free") (fun () ->
      Flow_arena.free a s);
  Alcotest.check_raises "out of range rejected"
    (Invalid_argument "Flow_arena.free: slot out of range") (fun () ->
      Flow_arena.free a 99)

(* Exhaustion through the [Flow_state] layer: creation refuses cleanly
   (no heap fallback) and release makes the slot available again. *)
let test_flow_state_exhaustion () =
  let sim = Sim.create () in
  let arena = Flow_arena.create ~capacity:2 () in
  let mk i =
    let bucket =
      Rate_bucket.create sim (Rate_bucket.Rate 10e9) ~burst_bytes:65536
    in
    Flow_state.create ~arena ~opaque:i ~context:0 ~bucket ~rx_buf_size:4096
      ~tx_buf_size:4096 ~local_port:(5000 + i) ~peer_ip:(Addr.host_ip 9)
      ~peer_port:9000 ~peer_mac:(Addr.host_mac 9) ~tx_iss:1000 ~rx_next:2000
      ~window:65535 ~peer_wscale:0 ()
  in
  let f1 = mk 1 in
  let _f2 = mk 2 in
  Alcotest.(check bool) "arena-backed" true (Flow_state.is_arena_backed f1);
  Alcotest.(check int) "exhausted" 0 (Flow_arena.available arena);
  (try
     ignore (mk 3);
     Alcotest.fail "third create should raise Arena_exhausted"
   with Flow_state.Arena_exhausted -> ());
  Flow_state.release f1;
  Alcotest.(check bool) "handle degrades to boxed" false
    (Flow_state.is_arena_backed f1);
  Alcotest.(check int) "slot returned" 1 (Flow_arena.available arena);
  let f4 = mk 4 in
  Alcotest.(check bool) "slot reusable" true (Flow_state.is_arena_backed f4);
  (* The released handle still reads its final state coherently. *)
  Alcotest.(check int) "released handle keeps opaque" 1 (Flow_state.opaque f1);
  Alcotest.(check int) "released handle keeps seq" 1000 (Flow_state.seq f1)

(* Random install/remove/lookup/migrate interleavings over a sharded fast
   path with arena-backed flows: table count, arena occupancy, slot
   distinctness and lookup identity must hold after every scale change
   (drain-in-place migration included). *)
let prop_sharded_migration =
  let op_gen =
    QCheck.Gen.(
      frequency
        [
          (4, map (fun i -> `Install i) (int_bound 23));
          (2, map (fun i -> `Remove i) (int_bound 23));
          (2, map (fun i -> `Lookup i) (int_bound 23));
          (1, map (fun n -> `Scale (1 + (n mod 4))) (int_bound 3));
        ])
  in
  let print_op = function
    | `Install i -> Printf.sprintf "I%d" i
    | `Remove i -> Printf.sprintf "R%d" i
    | `Lookup i -> Printf.sprintf "L%d" i
    | `Scale n -> Printf.sprintf "S%d" n
  in
  QCheck.Test.make ~count:60 ~name:"sharded migrate keeps arena flows intact"
    (QCheck.make
       ~print:(fun ops -> String.concat ";" (List.map print_op ops))
       QCheck.Gen.(list_size (int_bound 80) op_gen))
    (fun ops ->
      let sim = Sim.create () in
      let net = Topology.point_to_point sim ~queues_per_nic:4 () in
      let nic = net.Topology.a.Topology.nic in
      let cores = Array.init 4 (fun i -> Core.create sim ~id:i ()) in
      let config =
        { Config.default with Config.flow_shards_enabled = true }
      in
      let fp = Fast_path.create sim ~nic ~cores ~config in
      let arena = Flow_arena.create ~capacity:32 () in
      let table = Fast_path.flows fp in
      let model : (int, Flow_state.t) Hashtbl.t = Hashtbl.create 32 in
      let tuple i =
        {
          Four_tuple.local_ip = Nic.ip nic;
          local_port = 7;
          peer_ip = Addr.host_ip 50;
          peer_port = 1024 + i;
        }
      in
      let check_invariants () =
        if Flow_table.count table <> Hashtbl.length model then
          QCheck.Test.fail_reportf "table count %d <> model %d"
            (Flow_table.count table) (Hashtbl.length model);
        if Flow_arena.live arena <> Hashtbl.length model then
          QCheck.Test.fail_reportf "arena live %d <> model %d"
            (Flow_arena.live arena) (Hashtbl.length model);
        let slots = Hashtbl.create 32 in
        Hashtbl.iter
          (fun i f ->
            (match Flow_state.slot f with
            | None -> QCheck.Test.fail_reportf "flow %d lost its slot" i
            | Some s ->
              if Hashtbl.mem slots s then
                QCheck.Test.fail_reportf "slot %d aliased" s;
              Hashtbl.replace slots s ());
            match Flow_table.find table (tuple i) with
            | Some f' when f' == f -> ()
            | Some _ -> QCheck.Test.fail_reportf "lookup %d found wrong flow" i
            | None -> QCheck.Test.fail_reportf "flow %d missing from table" i)
          model
      in
      List.iter
        (fun op ->
          (match op with
          | `Install i ->
            if not (Hashtbl.mem model i) then begin
              let bucket =
                Rate_bucket.create sim (Rate_bucket.Rate 10e9)
                  ~burst_bytes:65536
              in
              let f =
                Flow_state.create ~arena ~opaque:i ~context:0 ~bucket
                  ~rx_buf_size:1024 ~tx_buf_size:1024 ~local_port:7
                  ~peer_ip:(Addr.host_ip 50) ~peer_port:(1024 + i)
                  ~peer_mac:(Addr.host_mac 50) ~tx_iss:0 ~rx_next:0
                  ~window:65535 ~peer_wscale:0 ()
              in
              Fast_path.install_flow fp ~tuple:(tuple i) f;
              Hashtbl.replace model i f
            end
          | `Remove i -> begin
            match Hashtbl.find_opt model i with
            | None -> ()
            | Some f ->
              Fast_path.remove_flow fp ~tuple:(tuple i);
              Flow_state.release f;
              Hashtbl.remove model i
          end
          | `Lookup i ->
            let found = Flow_table.find table (tuple i) <> None in
            if found <> Hashtbl.mem model i then
              QCheck.Test.fail_reportf "lookup %d disagrees with model" i
          | `Scale n -> Fast_path.set_active_cores fp n);
          check_invariants ())
        ops;
      true)

(* --- Burst semantics ------------------------------------------------------ *)

(* A standalone fast path with manually installed flows, so bursts can be
   driven through [process_burst] directly and compared against
   single-packet passes on a twin stack. *)
type burst_stack = {
  bsim : Sim.t;
  bnic : Nic.t;
  bfp : Fast_path.t;
  bcore : Core.t;
}

let mk_stack () =
  let sim = Sim.create () in
  let net = Topology.point_to_point sim ~queues_per_nic:1 () in
  let nic = net.Topology.a.Topology.nic in
  let cores = [| Core.create sim ~id:0 () |] in
  let fp = Fast_path.create sim ~nic ~cores ~config:Config.default in
  { bsim = sim; bnic = nic; bfp = fp; bcore = cores.(0) }

let install_flow ?arena st ~opaque ~local_port ~rx_next ~tx_iss =
  let bucket =
    Rate_bucket.create st.bsim (Rate_bucket.Rate 10e9) ~burst_bytes:65536
  in
  let flow =
    Flow_state.create ?arena ~opaque ~context:0 ~bucket ~rx_buf_size:65536
      ~tx_buf_size:65536 ~local_port ~peer_ip:(Addr.host_ip 99)
      ~peer_port:9000 ~peer_mac:(Addr.host_mac 99) ~tx_iss ~rx_next
      ~window:65535 ~peer_wscale:0 ()
  in
  let tuple =
    {
      Four_tuple.local_ip = Nic.ip st.bnic;
      local_port;
      peer_ip = Addr.host_ip 99;
      peer_port = 9000;
    }
  in
  Fast_path.install_flow st.bfp ~tuple flow;
  flow

let mk_pkt st ~dst_port ~seq ~ack ~flags ~payload =
  Packet.make ~src_mac:(Addr.host_mac 99) ~dst_mac:(Nic.mac st.bnic)
    ~src_ip:(Addr.host_ip 99) ~dst_ip:(Nic.ip st.bnic)
    ~tcp:
      {
        Tcp.src_port = 9000;
        dst_port;
        seq;
        ack;
        flags;
        window = 65535;
        options =
          { Tcp.mss = None; wscale = None; timestamp = Some (1, 1); sack = [] };
      }
    ~payload ()

(* Everything single-vs-burst equivalence must agree on, excluding the
   burst-shape counters themselves (rx_bursts/rx_burst_packets are the one
   legitimate difference). *)
let burst_digest st flows =
  let s = Fast_path.stats st.bfp in
  Printf.sprintf
    "rxd=%d rxa=%d txd=%d acks=%d ooo=%d drops=%d frex=%d exc=%d mal=%d \
     nic_tx=%d | %s"
    s.Fast_path.rx_data_packets s.Fast_path.rx_ack_packets
    s.Fast_path.tx_data_packets s.Fast_path.acks_sent s.Fast_path.ooo_stored
    s.Fast_path.payload_drops s.Fast_path.fast_retransmits
    s.Fast_path.exceptions_forwarded s.Fast_path.malformed_drops
    (Nic.tx_packets st.bnic)
    (String.concat ","
       (List.map (fun f -> J.to_string (Flow_state.to_json f)) flows))

(* The shared scenario: two interleaved flows with in-order data, an
   out-of-order segment and its gap-filler, a stale duplicate, and a
   dup-ACK run that must trigger exactly one fast retransmit. [packets]
   rebuilds the identical arrival sequence on any stack. *)
let scenario_packets st =
  let seg port base i = mk_pkt st ~dst_port:port ~seq:(base + (i * 500)) ~ack:1000
      ~flags:Tcp.data_flags ~payload:(Bytes.make 500 (Char.chr (65 + i)))
  in
  let pure_ack = mk_pkt st ~dst_port:5001 ~seq:3000 ~ack:1000
      ~flags:Tcp.ack_flags ~payload:Bytes.empty
  in
  [|
    seg 5001 100_000 0;
    seg 5002 200_000 0;
    seg 5001 100_000 1;
    seg 5002 200_000 1;
    seg 5001 100_000 0 (* stale duplicate *);
    seg 5001 100_000 3 (* out of order: skips segment 2 *);
    seg 5001 100_000 2 (* fills the gap *);
    seg 5002 200_000 2;
    pure_ack;
    pure_ack;
    pure_ack;
    pure_ack (* 3 duplicate ACKs -> one fast retransmit *);
  |]

(* Builds the stack, preloads flow A's transmit buffer (so the dup-ACK run
   has sent-but-unacked bytes to retransmit), then lets [drive] feed the
   scenario packets. *)
let run_scenario ?arena drive =
  let st = mk_stack () in
  let a = install_flow ?arena st ~opaque:1 ~local_port:5001 ~rx_next:100_000
      ~tx_iss:1000
  in
  let b = install_flow ?arena st ~opaque:2 ~local_port:5002 ~rx_next:200_000
      ~tx_iss:2000
  in
  ignore
    (Ring.push (Flow_state.tx_buf a) (Bytes.make 2000 'T') ~off:0 ~len:2000);
  Fast_path.notify_tx st.bfp a;
  Sim.run st.bsim;
  drive st (scenario_packets st);
  Sim.run st.bsim;
  (burst_digest st [ a; b ], st, a, b)

let one_burst st pkts =
  Fast_path.process_burst st.bfp pkts ~count:(Array.length pkts) st.bcore

let singles st pkts =
  Array.iter
    (fun p -> Fast_path.process_burst st.bfp [| p |] ~count:1 st.bcore)
    pkts

let test_burst_equals_singles backing () =
  let arena () =
    match backing with
    | `Boxed -> None
    | `Arena -> Some (Flow_arena.create ~capacity:8 ())
  in
  let d_burst, st_burst, _, _ = run_scenario ?arena:(arena ()) one_burst in
  let d_single, st_single, _, _ = run_scenario ?arena:(arena ()) singles in
  Alcotest.(check string) "burst == N singles" d_single d_burst;
  (* The scenario really exercised the interesting paths. *)
  let s = Fast_path.stats st_burst.bfp in
  Alcotest.(check int) "one ooo store" 1 s.Fast_path.ooo_stored;
  Alcotest.(check int) "one fast retransmit" 1 s.Fast_path.fast_retransmits;
  Alcotest.(check bool) "acks generated" true (s.Fast_path.acks_sent >= 8);
  (* And the burst run took a single vector pass where the singles run
     took one per packet. *)
  Alcotest.(check int) "one vector pass" 1 s.Fast_path.rx_bursts;
  Alcotest.(check int) "singles: one pass per packet"
    (Array.length (scenario_packets st_single))
    (Fast_path.stats st_single.bfp).Fast_path.rx_bursts

(* Per-flow payload ordering under an interleaved burst: each flow's
   receive ring must hold its own segments in send order. *)
let test_burst_interleave_ordering () =
  let st = mk_stack () in
  let a = install_flow st ~opaque:1 ~local_port:5001 ~rx_next:100_000
      ~tx_iss:1000
  in
  let b = install_flow st ~opaque:2 ~local_port:5002 ~rx_next:200_000
      ~tx_iss:2000
  in
  let seg port base i = mk_pkt st ~dst_port:port ~seq:(base + (i * 4)) ~ack:1000
      ~flags:Tcp.data_flags ~payload:(Bytes.make 4 (Char.chr (97 + i)))
  in
  let pkts =
    Array.init 12 (fun k ->
        if k mod 2 = 0 then seg 5001 100_000 (k / 2)
        else seg 5002 200_000 (k / 2))
  in
  Fast_path.process_burst st.bfp pkts ~count:12 st.bcore;
  Sim.run st.bsim;
  let drain flow =
    let ring = Flow_state.rx_buf flow in
    let n = Ring.used ring in
    let buf = Bytes.create n in
    ignore (Ring.pop ring ~dst:buf ~dst_off:0 ~len:n);
    Bytes.to_string buf
  in
  Alcotest.(check string) "flow A in order" "aaaabbbbccccddddeeeeffff"
    (drain a);
  Alcotest.(check string) "flow B in order" "aaaabbbbccccddddeeeeffff"
    (drain b)

let test_burst_empty_and_oversized () =
  let st = mk_stack () in
  let _ = install_flow st ~opaque:1 ~local_port:5001 ~rx_next:100_000
      ~tx_iss:1000
  in
  let before = burst_digest st [] in
  Fast_path.process_burst st.bfp [||] ~count:0 st.bcore;
  Alcotest.(check string) "empty burst is a no-op" before (burst_digest st []);
  Alcotest.(check int) "no vector pass counted" 0
    (Fast_path.stats st.bfp).Fast_path.rx_bursts;
  let pkt = mk_pkt st ~dst_port:5001 ~seq:100_000 ~ack:1000
      ~flags:Tcp.data_flags ~payload:(Bytes.make 4 'x')
  in
  Alcotest.check_raises "oversized count rejected"
    (Invalid_argument "Fast_path.process_burst: count out of range") (fun () ->
      Fast_path.process_burst st.bfp [| pkt |] ~count:2 st.bcore);
  Alcotest.check_raises "negative count rejected"
    (Invalid_argument "Fast_path.process_burst: count out of range") (fun () ->
      Fast_path.process_burst st.bfp [| pkt |] ~count:(-1) st.bcore)

(* --- JSON shape regression ------------------------------------------------ *)

let obj_keys = function
  | J.Obj fields -> List.map fst fields
  | _ -> Alcotest.fail "expected a JSON object"

let test_flows_json_shape () =
  let st = mk_stack () in
  let flow = install_flow st ~opaque:1 ~local_port:5001 ~rx_next:100_000
      ~tx_iss:1000
  in
  Alcotest.(check (list string))
    "Flow_state.to_json key order pinned"
    [
      "opaque"; "context"; "peer"; "local_port"; "seq"; "ack"; "snd_una";
      "tx_sent"; "tx_avail"; "tx_buf_used"; "tx_buf_free"; "rx_buf_used";
      "rx_buf_free"; "window"; "dupack_cnt"; "in_recovery"; "bucket"; "ooo";
      "cnt_ackb"; "cnt_ecnb"; "cnt_frexmits"; "rtt_est_ns"; "fin_received";
      "fin_sent";
    ]
    (obj_keys (Flow_state.to_json flow));
  (* Full-stack snapshot: top-level shape of `tas_run flows`. *)
  let sim = Sim.create () in
  let net = Topology.point_to_point sim ~queues_per_nic:2 () in
  let tas =
    Tas.create sim ~nic:net.Topology.a.Topology.nic ~config:Config.default ()
  in
  Alcotest.(check (list string))
    "Tas.flows top-level keys pinned"
    [ "now_ns"; "recovery_policy"; "count"; "shards"; "flows"; "lifecycle" ]
    (obj_keys (Tas.flows tas))

let suite =
  [
    Alcotest.test_case "bulk: arena == boxed" `Quick test_bulk_differential;
    Alcotest.test_case "bulk + loss: arena == boxed" `Quick
      test_bulk_differential_with_loss;
    Alcotest.test_case "chaos schedule: arena == boxed" `Quick
      test_chaos_differential;
    Alcotest.test_case "sharded scale-down: arena == boxed" `Quick
      test_sharded_scale_down_differential;
    QCheck_alcotest.to_alcotest prop_alloc_free_model;
    Alcotest.test_case "layout tiles the 102-byte record" `Quick
      test_layout_is_table3;
    Alcotest.test_case "adjacent-slot field isolation" `Quick
      test_field_isolation;
    QCheck_alcotest.to_alcotest prop_field_roundtrip;
    Alcotest.test_case "span fields sign-extend" `Quick
      test_span_sign_extension;
    Alcotest.test_case "flag bits independent" `Quick
      test_flag_bits_independent;
    Alcotest.test_case "generation bump and slot reuse" `Quick
      test_generation_and_reuse;
    Alcotest.test_case "double free / out of range rejected" `Quick
      test_free_errors;
    Alcotest.test_case "exhaustion refuses cleanly via Flow_state" `Quick
      test_flow_state_exhaustion;
    QCheck_alcotest.to_alcotest prop_sharded_migration;
    Alcotest.test_case "burst == N singles (boxed)" `Quick
      (test_burst_equals_singles `Boxed);
    Alcotest.test_case "burst == N singles (arena)" `Quick
      (test_burst_equals_singles `Arena);
    Alcotest.test_case "interleaved burst preserves per-flow order" `Quick
      test_burst_interleave_ordering;
    Alcotest.test_case "empty and oversized bursts" `Quick
      test_burst_empty_and_oversized;
    Alcotest.test_case "flows JSON shape pinned" `Quick test_flows_json_shape;
  ]
