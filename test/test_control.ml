(* Elastic core controller tests: policy decision tables at their exact
   thresholds, cooldown and confirmation damping, the SLO core-count
   mapping, controller clamping and actuation accounting, fast-path
   actuation idempotence (no spurious RSS rewrites), flow conservation
   through a controller-driven shrink under live traffic, and the health
   watchdog's core-flap rule. *)

module Sim = Tas_engine.Sim
module Time_ns = Tas_engine.Time_ns
module Core = Tas_cpu.Core
module Topology = Tas_netsim.Topology
module Nic = Tas_netsim.Nic
module Rss_table = Tas_shard.Rss_table
module Config = Tas_core.Config
module Tas = Tas_core.Tas
module Libtas = Tas_core.Libtas
module Fast_path = Tas_core.Fast_path
module Slow_path = Tas_core.Slow_path
module Flow_table = Tas_core.Flow_table
module Policy = Tas_control.Policy
module Controller = Tas_control.Controller
module Timeline = Tas_telemetry.Timeline
module Health = Tas_telemetry.Health
module E = Tas_baseline.Tcp_engine

(* A signals record with every field defaulted; tests override the few
   inputs a policy actually reads. *)
let signals ?(ts = 0) ?(active = 2) ?(max_cores = 4) ?(idle = 0.5)
    ?(p99 = -1.0) () =
  {
    Policy.s_ts = ts;
    s_active = active;
    s_max_cores = max_cores;
    s_idle_cores = idle;
    s_core_idle = Array.make max_cores 0.0;
    s_sp_backlog_ns = 0;
    s_flows = 0;
    s_arena_occupancy = 0.0;
    s_shard_imbalance = 1.0;
    s_p99_us = p99;
  }

let verdict = Alcotest.testable (Fmt.of_to_string Policy.verdict_name) ( = )

(* --- Paper_threshold ------------------------------------------------------ *)

let test_paper_decision_table () =
  let st = Policy.create_state () in
  let decide ~active ~idle =
    let t, v, _ =
      Policy.decide Policy.paper_default st (signals ~active ~idle ())
    in
    (t, v)
  in
  (* Both thresholds are strict: the boundary values themselves hold. *)
  Alcotest.(check (pair int verdict)) "idle exactly 1.25 holds"
    (3, Policy.Hold) (decide ~active:3 ~idle:1.25);
  Alcotest.(check (pair int verdict)) "idle just above 1.25 shrinks one"
    (2, Policy.Shrink) (decide ~active:3 ~idle:1.2500001);
  Alcotest.(check (pair int verdict)) "idle exactly 0.2 holds"
    (3, Policy.Hold) (decide ~active:3 ~idle:0.2);
  Alcotest.(check (pair int verdict)) "idle just below 0.2 grows one"
    (4, Policy.Grow) (decide ~active:3 ~idle:0.1999999);
  (* Edge guards: never below 1 core, never above the ceiling. *)
  Alcotest.(check (pair int verdict)) "no shrink below 1 core"
    (1, Policy.Hold) (decide ~active:1 ~idle:5.0);
  Alcotest.(check (pair int verdict)) "no grow past max_cores"
    (4, Policy.Hold) (decide ~active:4 ~idle:0.0);
  (* Memoryless: alternating signals alternate the verdict every tick —
     the F15 flap the damped policies exist to remove. *)
  Alcotest.(check (pair int verdict)) "flap down" (2, Policy.Shrink)
    (decide ~active:3 ~idle:2.0);
  Alcotest.(check (pair int verdict)) "flap up" (3, Policy.Grow)
    (decide ~active:2 ~idle:0.1)

(* --- Hysteresis ----------------------------------------------------------- *)

let hyst ~up_cooldown ~down_cooldown ~up_step ~down_confirm =
  Policy.Hysteresis
    {
      up_idle = 0.2;
      down_idle = 1.25;
      up_cooldown_ticks = up_cooldown;
      down_cooldown_ticks = down_cooldown;
      up_step;
      down_confirm_ticks = down_confirm;
    }

let test_hysteresis_grow_step_and_cooldown () =
  let spec = hyst ~up_cooldown:3 ~down_cooldown:10 ~up_step:2 ~down_confirm:3 in
  let st = Policy.create_state () in
  let decide ~active ~idle =
    let t, v, _ = Policy.decide spec st (signals ~active ~idle ()) in
    (t, v)
  in
  (* First grow fires immediately and adds up_step cores. *)
  Alcotest.(check (pair int verdict)) "grow adds up_step" (3, Policy.Grow)
    (decide ~active:1 ~idle:0.0);
  (* A second grow inside the cooldown is denied... *)
  Alcotest.(check (pair int verdict)) "grow denied inside cooldown"
    (3, Policy.Denied_cooldown)
    (decide ~active:3 ~idle:0.0);
  Alcotest.(check (pair int verdict)) "still denied"
    (3, Policy.Denied_cooldown)
    (decide ~active:3 ~idle:0.0);
  (* ...and allowed once the cooldown expires, clamped to the ceiling. *)
  Alcotest.(check (pair int verdict)) "grow resumes, clamped to max"
    (4, Policy.Grow) (decide ~active:3 ~idle:0.0)

let test_hysteresis_shrink_confirm_window () =
  let spec = hyst ~up_cooldown:1 ~down_cooldown:4 ~up_step:1 ~down_confirm:3 in
  let st = Policy.create_state () in
  let decide ~idle =
    let t, v, _ = Policy.decide spec st (signals ~active:4 ~idle ()) in
    (t, v)
  in
  (* Two high-idle ticks only fill the confirmation window. *)
  Alcotest.(check (pair int verdict)) "confirm 1/3" (4, Policy.Held_confirm)
    (decide ~idle:2.0);
  Alcotest.(check (pair int verdict)) "confirm 2/3" (4, Policy.Held_confirm)
    (decide ~idle:2.0);
  (* A dip back into the band resets the streak... *)
  Alcotest.(check (pair int verdict)) "band tick resets streak"
    (4, Policy.Hold) (decide ~idle:0.5);
  Alcotest.(check (pair int verdict)) "confirm restarts at 1/3"
    (4, Policy.Held_confirm) (decide ~idle:2.0);
  Alcotest.(check (pair int verdict)) "confirm 2/3 again"
    (4, Policy.Held_confirm) (decide ~idle:2.0);
  (* ...and only a full streak shrinks. *)
  Alcotest.(check (pair int verdict)) "third consecutive tick shrinks"
    (3, Policy.Shrink) (decide ~idle:2.0);
  (* The next shrink needs both a fresh streak and the cooldown. *)
  Alcotest.(check (pair int verdict)) "streak refills" (4, Policy.Held_confirm)
    (decide ~idle:2.0);
  Alcotest.(check (pair int verdict)) "streak 2/3" (4, Policy.Held_confirm)
    (decide ~idle:2.0);
  Alcotest.(check (pair int verdict)) "cooldown denies the next shrink"
    (4, Policy.Denied_cooldown) (decide ~idle:2.0)

(* --- Slo ------------------------------------------------------------------ *)

let test_slo_target_mapping () =
  let map = Policy.slo_target_cores ~p99_target_us:60.0 ~headroom:0.5 in
  Alcotest.(check int) "p99 unavailable keeps active" 3
    (map ~active:3 ~p99_us:(-1.0));
  Alcotest.(check int) "p99 above target grows" 4 (map ~active:3 ~p99_us:61.0);
  Alcotest.(check int) "p99 at target holds" 3 (map ~active:3 ~p99_us:60.0);
  Alcotest.(check int) "p99 in suppression band holds" 3
    (map ~active:3 ~p99_us:30.0);
  Alcotest.(check int) "p99 below headroom shrinks" 2
    (map ~active:3 ~p99_us:29.9)

let test_slo_flap_suppression () =
  let spec =
    Policy.Slo
      {
        p99_target_us = 60.0;
        headroom = 0.5;
        up_cooldown_ticks = 1;
        down_cooldown_ticks = 2;
        min_idle_to_shrink = 0.8;
        down_confirm_ticks = 2;
      }
  in
  let st = Policy.create_state () in
  let decide ~idle ~p99 =
    let t, v, _ = Policy.decide spec st (signals ~active:3 ~idle ~p99 ()) in
    (t, v)
  in
  (* No latency samples: hold, never shrink blind. *)
  Alcotest.(check (pair int verdict)) "p99 unavailable holds"
    (3, Policy.Hold)
    (decide ~idle:2.0 ~p99:(-1.0));
  (* Inside the [headroom*target, target] band: suppressed. *)
  Alcotest.(check (pair int verdict)) "suppression band holds"
    (3, Policy.Hold) (decide ~idle:2.0 ~p99:45.0);
  (* Low p99 without idle headroom must not shrink. *)
  Alcotest.(check (pair int verdict)) "low p99 but busy cores holds"
    (3, Policy.Hold) (decide ~idle:0.3 ~p99:10.0);
  (* Low p99 + idle: confirmation window, then shrink. *)
  Alcotest.(check (pair int verdict)) "low p99 confirm 1/2"
    (3, Policy.Held_confirm) (decide ~idle:2.0 ~p99:10.0);
  Alcotest.(check (pair int verdict)) "low p99 confirmed shrinks"
    (2, Policy.Shrink) (decide ~idle:2.0 ~p99:10.0);
  (* Above target: grow. *)
  Alcotest.(check (pair int verdict)) "p99 over target grows"
    (4, Policy.Grow) (decide ~idle:0.1 ~p99:90.0)

(* --- Controller ----------------------------------------------------------- *)

let test_controller_clamps_and_audits () =
  let actuations = ref [] in
  let ctl =
    Controller.create ~policy:Policy.paper_default ~min_cores:2 ~max_cores:3
      ~actuate:(fun n -> actuations := n :: !actuations)
      ()
  in
  Alcotest.(check int) "target starts at min_cores" 2
    (Controller.target_cores ctl);
  (* Grow within bounds actuates. *)
  let d =
    Controller.tick ctl (signals ~active:2 ~max_cores:3 ~idle:0.0 ())
  in
  Alcotest.(check verdict) "grow recorded" Policy.Grow d.Policy.d_verdict;
  Alcotest.(check (list int)) "actuated to 3" [ 3 ] !actuations;
  (* A shrink proposal below min_cores is clamped back to a no-op Hold:
     no actuation, no scale_downs count. *)
  let d =
    Controller.tick ctl (signals ~active:2 ~max_cores:3 ~idle:5.0 ())
  in
  Alcotest.(check verdict) "clamped shrink demoted to hold" Policy.Hold
    d.Policy.d_verdict;
  Alcotest.(check (list int)) "no extra actuation" [ 3 ] !actuations;
  Alcotest.(check int) "one scale-up counted" 1 (Controller.scale_ups ctl);
  Alcotest.(check int) "no scale-down counted" 0 (Controller.scale_downs ctl);
  Alcotest.(check int) "two ticks counted" 2 (Controller.ticks ctl);
  Alcotest.(check int) "two decisions in history" 2
    (List.length (Controller.decisions ctl));
  (* Invalid bounds are rejected at construction. *)
  Alcotest.check_raises "min_cores < 1 rejected"
    (Invalid_argument "Controller.create: need 1 <= min_cores <= max_cores")
    (fun () ->
      ignore
        (Controller.create ~min_cores:0 ~max_cores:2 ~actuate:ignore ()))

let test_controller_history_bounded () =
  let ctl =
    Controller.create ~history_limit:4 ~min_cores:1 ~max_cores:2
      ~actuate:ignore ()
  in
  for i = 1 to 10 do
    ignore (Controller.tick ctl (signals ~ts:i ~active:1 ~idle:0.5 ()))
  done;
  let ds = Controller.decisions ctl in
  Alcotest.(check int) "history capped" 4 (List.length ds);
  Alcotest.(check int) "oldest dropped"
    7 (List.hd ds).Policy.d_ts

(* --- Fast-path actuation idempotence -------------------------------------- *)

let make_tas ?(config = Config.default) () =
  let sim = Sim.create () in
  let net = Topology.point_to_point sim ~queues_per_nic:4 () in
  let tas = Tas.create sim ~nic:net.Topology.a.Topology.nic ~config () in
  (sim, net, tas)

let test_set_active_cores_idempotent () =
  (* Raw fast path: the table starts spread over all queues, so the very
     first actuation must sync it even when the core count is unchanged. *)
  let sim = Sim.create () in
  let net = Topology.point_to_point sim ~queues_per_nic:4 () in
  let nic = net.Topology.a.Topology.nic in
  let cores = Array.init 4 (fun i -> Core.create sim ~id:i ()) in
  let fp = Fast_path.create sim ~nic ~cores ~config:Config.default in
  let rss = Nic.rss nic in
  let r0 = Rss_table.rewrites rss in
  Fast_path.set_active_cores fp (Fast_path.active_cores fp);
  Alcotest.(check int) "first call syncs the table" (r0 + 1)
    (Rss_table.rewrites rss);
  (* Repeating the same target is a no-op. *)
  Fast_path.set_active_cores fp (Fast_path.active_cores fp);
  Fast_path.set_active_cores fp (Fast_path.active_cores fp);
  Alcotest.(check int) "unchanged target rewrites nothing" (r0 + 1)
    (Rss_table.rewrites rss);
  (* A changed target rewrites exactly once, then goes quiet again. *)
  Fast_path.set_active_cores fp 2;
  Fast_path.set_active_cores fp 2;
  Alcotest.(check int) "changed target rewrites once" (r0 + 2)
    (Rss_table.rewrites rss);
  Alcotest.(check int) "active follows" 2 (Fast_path.active_cores fp);
  (* Out-of-range requests clamp instead of raising. *)
  Fast_path.set_active_cores fp 0;
  Alcotest.(check int) "clamped to 1 core" 1 (Fast_path.active_cores fp);
  Fast_path.set_active_cores fp 99;
  Alcotest.(check int) "clamped to the queue count" 4
    (Fast_path.active_cores fp);
  (* Through Tas.create the init actuation has already synced the table:
     repeated controller ticks at an unchanged target stay silent. *)
  let _, net2, tas = make_tas () in
  let rss2 = Nic.rss net2.Topology.a.Topology.nic in
  let fp2 = Tas.fast_path tas in
  let r2 = Rss_table.rewrites rss2 in
  Alcotest.(check bool) "create performed the initial sync" true (r2 >= 1);
  Fast_path.set_active_cores fp2 (Fast_path.active_cores fp2);
  Alcotest.(check int) "post-create unchanged target is silent" r2
    (Rss_table.rewrites rss2)

(* --- Controller-driven shrink under live traffic --------------------------- *)

let test_controller_shrink_conserves_flows () =
  (* The dynamic-scaling path end to end: saturating load grows the core
     count through the controller; quiescing shrinks it back to 1, which
     must drain-in-place migrate every live flow without losing any. *)
  let config =
    {
      Config.default with
      Config.max_fast_path_cores = 4;
      dynamic_scaling = true;
      flow_shards_enabled = true;
      scale_check_interval_ns = Time_ns.ms 5;
      fp_rx_cycles = 20_000;
      fp_tx_cycles = 10_000;
      fp_ack_rx_cycles = 5_000;
    }
  in
  let sim, net, tas = make_tas ~config () in
  let app_core = Core.create sim ~id:100 () in
  let lt = Tas.app tas ~app_cores:[| app_core |] ~api:Libtas.Sockets in
  let peer = E.create sim net.Topology.b.Topology.nic E.default_config in
  E.attach peer;
  Alcotest.(check bool) "controller wired when dynamic_scaling" true
    (Option.is_some (Slow_path.controller (Tas.slow_path tas)));
  Libtas.listen lt ~port:7 ~ctx_of_tuple:(fun _ -> 0) (fun _ ->
      {
        Libtas.null_handlers with
        Libtas.on_data = (fun s d -> ignore (Libtas.send s d));
      });
  let stop = ref false in
  let n_conns = 32 in
  for _ = 1 to n_conns do
    let cb =
      {
        E.null_callbacks with
        E.on_connected = (fun c -> ignore (E.send c (Bytes.make 64 'x')));
        E.on_receive =
          (fun c _ -> if not !stop then ignore (E.send c (Bytes.make 64 'x')));
      }
    in
    ignore
      (E.connect peer ~dst_ip:(Nic.ip net.Topology.a.Topology.nic) ~dst_port:7
         cb)
  done;
  Sim.run ~until:(Time_ns.ms 100) sim;
  let fp = Tas.fast_path tas in
  let ft = Fast_path.flows fp in
  Alcotest.(check bool) "scaled up under load" true
    (Fast_path.active_cores fp >= 2);
  Alcotest.(check int) "all connections installed" n_conns
    (Flow_table.count ft);
  (* Quiesce; the controller must shrink back and migrate the flows. *)
  stop := true;
  Sim.run ~until:(Sim.now sim + Time_ns.ms 200) sim;
  Alcotest.(check int) "controller shrank to 1 core" 1
    (Fast_path.active_cores fp);
  Alcotest.(check int) "no flow lost across migrations" n_conns
    (Flow_table.count ft);
  Alcotest.(check int) "all flows drained onto shard 0" n_conns
    (Flow_table.shard_count ft 0);
  Alcotest.(check bool) "migration actually moved flows" true
    (Flow_table.migrated_flows ft > 0);
  let ctl = Option.get (Slow_path.controller (Tas.slow_path tas)) in
  Alcotest.(check bool) "controller counted the scale-ups" true
    (Controller.scale_ups ctl >= 1);
  Alcotest.(check bool) "controller counted the scale-downs" true
    (Controller.scale_downs ctl >= 1)

(* --- Health core-flap rule ------------------------------------------------ *)

let frame ~seq ~cores =
  {
    Timeline.seq;
    ts = seq * 1_000_000;
    counters = [];
    gauges = [ ("fp_active_cores", [], float_of_int cores) ];
    cores = [];
    shard_flows = [||];
    arena = None;
  }

let flap_count frames =
  let r = Health.check frames in
  List.length
    (List.filter (fun v -> v.Health.v_rule = Health.Core_flap) r.Health.violations)

let test_health_core_flap_rule () =
  let mk counts = List.mapi (fun seq c -> frame ~seq ~cores:c) counts in
  (* A monotonic ramp up and back down has one reversal: silent. *)
  Alcotest.(check int) "ramp up/down never fires" 0
    (flap_count (mk [ 1; 2; 3; 4; 4; 4; 3; 2; 1; 1; 1; 1; 1; 1; 1; 1 ]));
  (* A constant series is silent. *)
  Alcotest.(check int) "steady state never fires" 0
    (flap_count (mk (List.init 32 (fun _ -> 3))));
  (* Oscillation fires, and the window reset makes one episode fire once. *)
  let oscillating = mk [ 2; 3; 2; 3; 2; 3; 2; 2; 2; 2; 2; 2; 2; 2; 2; 2 ] in
  Alcotest.(check int) "oscillation fires exactly once" 1
    (flap_count oscillating);
  (* Frames without the gauge must not synthesize phantom transitions. *)
  let no_gauge =
    List.init 32 (fun seq ->
        { (frame ~seq ~cores:0) with Timeline.gauges = [] })
  in
  Alcotest.(check int) "gauge-less frames are ignored" 0 (flap_count no_gauge)

let suite =
  [
    Alcotest.test_case "paper threshold decision table" `Quick
      test_paper_decision_table;
    Alcotest.test_case "hysteresis grow step + cooldown" `Quick
      test_hysteresis_grow_step_and_cooldown;
    Alcotest.test_case "hysteresis shrink confirm window" `Quick
      test_hysteresis_shrink_confirm_window;
    Alcotest.test_case "slo target-core mapping" `Quick test_slo_target_mapping;
    Alcotest.test_case "slo flap suppression" `Quick test_slo_flap_suppression;
    Alcotest.test_case "controller clamps + audits" `Quick
      test_controller_clamps_and_audits;
    Alcotest.test_case "controller history bounded" `Quick
      test_controller_history_bounded;
    Alcotest.test_case "set_active_cores idempotent" `Quick
      test_set_active_cores_idempotent;
    Alcotest.test_case "controller shrink conserves flows" `Slow
      test_controller_shrink_conserves_flows;
    Alcotest.test_case "health core-flap rule" `Quick
      test_health_core_flap_rule;
  ]
