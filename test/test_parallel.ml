(* Multicore execution subsystem: work-stealing deque semantics, domain-pool
   ordered map and fault containment, the -j1 vs -jN determinism contract of
   the experiment runner, and the hot-path allocation machinery it pairs
   with (buffer pool, packet payload refcounting). *)

module Work_deque = Tas_parallel.Work_deque
module Domain_pool = Tas_parallel.Domain_pool
module Registry = Tas_experiments.Registry
module Run_opts = Tas_experiments.Run_opts
module Buf_pool = Tas_buffers.Buf_pool
module Packet = Tas_proto.Packet
module Addr = Tas_proto.Addr
module Tcp = Tas_proto.Tcp_header
module Sim = Tas_engine.Sim

(* --- Work_deque ------------------------------------------------------------ *)

let test_deque_lifo_pop_fifo_steal () =
  let d = Work_deque.create () in
  List.iter (Work_deque.push d) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "size" 5 (Work_deque.size d);
  Alcotest.(check (option int)) "pop takes newest" (Some 5) (Work_deque.pop d);
  Alcotest.(check (option int)) "steal takes oldest" (Some 1)
    (Work_deque.steal d);
  Alcotest.(check (option int)) "steal next oldest" (Some 2)
    (Work_deque.steal d);
  Alcotest.(check (option int)) "pop next newest" (Some 4) (Work_deque.pop d);
  Alcotest.(check (option int)) "last element" (Some 3) (Work_deque.pop d);
  Alcotest.(check (option int)) "pop empty" None (Work_deque.pop d);
  Alcotest.(check (option int)) "steal empty" None (Work_deque.steal d)

let test_deque_grows_past_capacity_hint () =
  let d = Work_deque.create ~capacity:2 () in
  let n = 1000 in
  for i = 1 to n do
    Work_deque.push d i
  done;
  let sum = ref 0 and count = ref 0 in
  let rec drain () =
    match Work_deque.pop d with
    | Some v ->
      sum := !sum + v;
      incr count;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "every push popped" n !count;
  Alcotest.(check int) "values intact" (n * (n + 1) / 2) !sum

let test_deque_concurrent_steal_exactly_once () =
  (* All pushes happen before the thieves start (the pool's batch
     discipline); then 3 stealers race the owner's pops. Every element must
     surface exactly once across all four participants. *)
  let d = Work_deque.create () in
  let n = 20_000 in
  for i = 1 to n do
    Work_deque.push d i
  done;
  let go = Atomic.make false in
  let stealer () =
    while not (Atomic.get go) do
      Domain.cpu_relax ()
    done;
    let got = ref [] in
    let rec loop () =
      match Work_deque.steal d with
      | Some v ->
        got := v :: !got;
        loop ()
      | None -> if Work_deque.size d > 0 then loop ()
    in
    loop ();
    !got
  in
  let thieves = Array.init 3 (fun _ -> Domain.spawn stealer) in
  Atomic.set go true;
  let mine = ref [] in
  let rec pop_all () =
    match Work_deque.pop d with
    | Some v ->
      mine := v :: !mine;
      pop_all ()
    | None -> ()
  in
  pop_all ();
  let stolen = Array.to_list (Array.map Domain.join thieves) in
  let all = List.concat (!mine :: stolen) in
  Alcotest.(check int) "element count conserved" n (List.length all);
  let sorted = List.sort compare all in
  Alcotest.(check bool) "each element exactly once" true
    (List.equal ( = ) sorted (List.init n (fun i -> i + 1)))

(* --- Domain_pool ----------------------------------------------------------- *)

let test_pool_map_submission_order () =
  Domain_pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check int) "pool size" 4 (Domain_pool.jobs pool);
      let inputs = Array.init 100 (fun i -> i) in
      let out = Domain_pool.map pool ~f:(fun i -> i * i) inputs in
      Alcotest.(check bool) "results at submission indices" true
        (out = Array.init 100 (fun i -> i * i));
      (* A second batch on the same pool works: workers return to idle. *)
      let out2 = Domain_pool.map pool ~f:(fun i -> i + 1) inputs in
      Alcotest.(check bool) "pool reusable across batches" true
        (out2 = Array.init 100 (fun i -> i + 1)))

let test_pool_jobs_one_runs_inline () =
  Domain_pool.with_pool ~jobs:1 (fun pool ->
      let out = Domain_pool.map pool ~f:(fun i -> 2 * i) [| 1; 2; 3 |] in
      Alcotest.(check bool) "inline map" true (out = [| 2; 4; 6 |]))

exception Boom of int

let test_pool_exceptions_contained () =
  Domain_pool.with_pool ~jobs:4 (fun pool ->
      let inputs = Array.init 32 (fun i -> i) in
      let out =
        Domain_pool.map_result pool
          ~f:(fun i -> if i mod 2 = 1 then raise (Boom i) else i * 10)
          inputs
      in
      Array.iteri
        (fun i r ->
          match r with
          | Ok v ->
            Alcotest.(check bool) "even index ok" true (i mod 2 = 0 && v = i * 10)
          | Error (Boom j) ->
            Alcotest.(check bool) "odd index raised its own error" true
              (i mod 2 = 1 && j = i)
          | Error e -> raise e)
        out;
      (* [map] re-raises the first error by submission order... *)
      (match Domain_pool.map pool ~f:(fun i -> raise (Boom i)) inputs with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom 0 -> ()
      | exception e -> raise e);
      (* ...and the pool survives both faulty batches without deadlock. *)
      let out2 = Domain_pool.map pool ~f:(fun i -> i + 1) [| 1; 2; 3; 4 |] in
      Alcotest.(check bool) "pool alive after exceptions" true
        (out2 = [| 2; 3; 4; 5 |]))

(* --- Experiment-runner determinism: -j1 vs -j4 ----------------------------- *)

(* Cheap experiments keep the test fast; the contract is the same for all. *)
let determinism_ids = [ "tm"; "sp"; "x3" ]

let run_into_dir ~jobs dir =
  let entries =
    List.filter_map Registry.find determinism_ids |> fun es ->
    Alcotest.(check int) "test ids resolve" (List.length determinism_ids)
      (List.length es);
    es
  in
  Run_opts.set_bench_dir dir;
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  Registry.run_selection ~quick:true ~jobs entries fmt;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Everything before the trailing ["timing"] key falls under the determinism
   contract; timing carries wall-clock and may differ. *)
let stable_prefix artifact =
  match Str.search_forward (Str.regexp_string "\"timing\"") artifact 0 with
  | i -> String.sub artifact 0 i
  | exception Not_found -> artifact

let strip_wall_clock text =
  (* Per-entry "  (1.2s)" lines and the batch summary line are wall-clock;
     artifact paths differ because each run writes to its own temp dir. *)
  Str.global_replace (Str.regexp "([0-9.]+s)") "(T)" text
  |> Str.global_replace
       (Str.regexp "Ran [0-9]+ experiments in .*$")
       "Ran (summary)"
  |> Str.global_replace
       (Str.regexp "# artifact: .*/\\(BENCH_[a-z0-9]+\\.json\\)")
       "# artifact: \\1"

let test_parallel_output_matches_serial () =
  let tmp tag =
    let d = Filename.temp_file ("tas_par_" ^ tag) "" in
    Sys.remove d;
    Unix.mkdir d 0o755;
    d
  in
  let dir1 = tmp "j1" and dir4 = tmp "j4" in
  let out1 = run_into_dir ~jobs:1 dir1 in
  let out4 = run_into_dir ~jobs:4 dir4 in
  Run_opts.set_bench_dir ".";
  Alcotest.(check string) "captured text identical up to wall-clock"
    (strip_wall_clock out1) (strip_wall_clock out4);
  List.iter
    (fun id ->
      let name = Printf.sprintf "BENCH_%s.json" id in
      let a1 = read_file (Filename.concat dir1 name) in
      let a4 = read_file (Filename.concat dir4 name) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: timing key present" name)
        true
        (stable_prefix a1 <> a1);
      Alcotest.(check string)
        (Printf.sprintf "%s: artifact identical before timing" name)
        (stable_prefix a1) (stable_prefix a4))
    determinism_ids

(* --- Buf_pool -------------------------------------------------------------- *)

let test_buf_pool_exact_length_reuse () =
  let p = Buf_pool.create () in
  let b = Buf_pool.take p 512 in
  Alcotest.(check int) "requested length" 512 (Bytes.length b);
  Buf_pool.give p b;
  let b' = Buf_pool.take p 300 in
  Alcotest.(check bool) "different length misses the 512 class" false (b == b');
  let b'' = Buf_pool.take p 512 in
  Alcotest.(check bool) "exact length hits" true (b == b'');
  let s = Buf_pool.stats p in
  Alcotest.(check int) "one hit" 1 s.Buf_pool.hits;
  Alcotest.(check int) "three takes" 3 s.Buf_pool.takes

let test_buf_pool_small_buffers_bypass () =
  let p = Buf_pool.create () in
  Alcotest.(check bool) "min_len sane" true (Buf_pool.min_len > 0);
  let small = Buf_pool.take p (Buf_pool.min_len - 1) in
  Buf_pool.give p small;
  let small' = Buf_pool.take p (Buf_pool.min_len - 1) in
  Alcotest.(check bool) "small buffers never recycled" false (small == small');
  let s = Buf_pool.stats p in
  Alcotest.(check int) "small gives not recorded" 0 s.Buf_pool.gives;
  Alcotest.(check bool) "take 0 is the empty buffer" true
    (Buf_pool.take p 0 == Bytes.empty)

let test_buf_pool_reuse_toggle () =
  let p = Buf_pool.create () in
  Buf_pool.set_reuse false;
  Fun.protect
    ~finally:(fun () -> Buf_pool.set_reuse true)
    (fun () ->
      let b = Buf_pool.take p 512 in
      Buf_pool.give p b;
      let b' = Buf_pool.take p 512 in
      Alcotest.(check bool) "no reuse with the switch off" false (b == b'))

(* --- Packet payload refcounting -------------------------------------------- *)

let mk_pkt payload =
  let tcp =
    { Tcp.src_port = 1; dst_port = 2; seq = 0; ack = 0;
      flags = Tcp.data_flags; window = 0; options = Tcp.no_options }
  in
  Packet.make ~src_mac:1 ~dst_mac:2 ~src_ip:(Addr.host_ip 1)
    ~dst_ip:(Addr.host_ip 2) ~tcp ~payload ()

let test_packet_refcount () =
  let payload = Bytes.create 512 in
  let pkt = mk_pkt payload in
  Alcotest.(check (option string)) "unpooled release surfaces nothing" None
    (Option.map Bytes.to_string (Packet.release pkt))
  ;
  let pkt = mk_pkt payload in
  Packet.mark_pooled pkt;
  Packet.retain pkt;
  Alcotest.(check bool) "first release keeps the buffer" true
    (Packet.release pkt = None);
  (match Packet.release pkt with
  | Some b -> Alcotest.(check bool) "last release surfaces the payload" true
      (b == payload)
  | None -> Alcotest.fail "expected the payload back");
  let empty = mk_pkt Bytes.empty in
  Packet.mark_pooled empty;
  Alcotest.(check bool) "empty payloads never pooled" true
    (Packet.release empty = None)

(* --- Sim post -------------------------------------------------------------- *)

let test_sim_post_ordering () =
  let sim = Sim.create () in
  let order = ref [] in
  let note tag () = order := tag :: !order in
  Sim.post sim 10 (note "a");
  ignore (Sim.schedule sim 10 (note "b"));
  Sim.post_at sim 10 (note "c");
  Sim.post sim 5 (note "d");
  Sim.run sim;
  Alcotest.(check (list string)) "same-time events fire in scheduling order"
    [ "d"; "a"; "b"; "c" ]
    (List.rev !order);
  Alcotest.(check int) "fired counter" 4 (Sim.events_fired sim);
  Alcotest.check_raises "negative delay rejected"
    (Invalid_argument "Sim.post: negative delay") (fun () ->
      Sim.post sim (-1) ignore)

let suite =
  [
    Alcotest.test_case "deque: LIFO pop, FIFO steal" `Quick
      test_deque_lifo_pop_fifo_steal;
    Alcotest.test_case "deque: grows past capacity hint" `Quick
      test_deque_grows_past_capacity_hint;
    Alcotest.test_case "deque: concurrent steal exactly-once" `Quick
      test_deque_concurrent_steal_exactly_once;
    Alcotest.test_case "pool: map in submission order" `Quick
      test_pool_map_submission_order;
    Alcotest.test_case "pool: jobs=1 inline" `Quick test_pool_jobs_one_runs_inline;
    Alcotest.test_case "pool: exceptions contained, pool survives" `Quick
      test_pool_exceptions_contained;
    Alcotest.test_case "runner: -j4 output identical to -j1" `Quick
      test_parallel_output_matches_serial;
    Alcotest.test_case "buf pool: exact-length reuse" `Quick
      test_buf_pool_exact_length_reuse;
    Alcotest.test_case "buf pool: small-buffer bypass" `Quick
      test_buf_pool_small_buffers_bypass;
    Alcotest.test_case "buf pool: reuse toggle" `Quick test_buf_pool_reuse_toggle;
    Alcotest.test_case "packet: payload refcount" `Quick test_packet_refcount;
    Alcotest.test_case "sim: post ordering + fired counter" `Quick
      test_sim_post_ordering;
  ]
