(* Unit tests for the network simulator: ports, switches, NIC/RSS,
   topologies. *)

module Sim = Tas_engine.Sim
module Time_ns = Tas_engine.Time_ns
module Rng = Tas_engine.Rng
module Addr = Tas_proto.Addr
module Packet = Tas_proto.Packet
module Tcp = Tas_proto.Tcp_header
module Ipv4 = Tas_proto.Ipv4_header
module Port = Tas_netsim.Port
module Switch = Tas_netsim.Switch
module Nic = Tas_netsim.Nic
module Topology = Tas_netsim.Topology
module Fault = Tas_netsim.Fault

let mk_packet ?(src = 1) ?(dst = 2) ?(sport = 1000) ?(dport = 80)
    ?(payload_len = 1000) ?(ecn = Ipv4.Ect0) () =
  let tcp =
    {
      Tcp.src_port = sport;
      dst_port = dport;
      seq = 0;
      ack = 0;
      flags = Tcp.data_flags;
      window = 65535;
      options = Tcp.no_options;
    }
  in
  Packet.make ~src_mac:(Addr.host_mac src) ~dst_mac:(Addr.host_mac dst)
    ~src_ip:(Addr.host_ip src) ~dst_ip:(Addr.host_ip dst) ~ecn ~tcp
    ~payload:(Bytes.create payload_len) ()

let test_port_serialization_delay () =
  let sim = Sim.create () in
  let port = Port.create sim ~rate_bps:1e9 ~delay:1000 () in
  let arrivals = ref [] in
  Port.set_deliver port (fun _ -> arrivals := Sim.now sim :: !arrivals);
  let pkt = mk_packet ~payload_len:986 () in
  (* wire size = 14 + 20 + 20 + 986 = 1040B = 8320 bits -> 8320ns at 1G. *)
  Alcotest.(check int) "wire size" 1040 (Packet.wire_size pkt);
  Port.enqueue port pkt;
  Sim.run sim;
  Alcotest.(check (list int)) "arrival = serialization + delay" [ 9320 ]
    !arrivals

let test_port_fifo_backlog () =
  let sim = Sim.create () in
  let port = Port.create sim ~rate_bps:1e9 ~delay:0 () in
  let arrivals = ref [] in
  Port.set_deliver port (fun _ -> arrivals := Sim.now sim :: !arrivals);
  for _ = 1 to 3 do
    Port.enqueue port (mk_packet ~payload_len:986 ())
  done;
  Alcotest.(check int) "3 queued" 3 (Port.queue_len port);
  Sim.run sim;
  Alcotest.(check (list int)) "back-to-back serialization"
    [ 8320; 16640; 24960 ]
    (List.rev !arrivals)

let test_port_tail_drop () =
  let sim = Sim.create () in
  let port = Port.create sim ~rate_bps:1e9 ~delay:0 ~capacity_pkts:2 () in
  Port.set_deliver port ignore;
  for _ = 1 to 5 do
    Port.enqueue port (mk_packet ())
  done;
  Alcotest.(check int) "3 dropped" 3 (Port.drops port);
  Sim.run sim;
  Alcotest.(check int) "2 transmitted" 2 (Port.tx_packets port)

let test_port_ecn_marking () =
  let sim = Sim.create () in
  let port = Port.create sim ~rate_bps:1e9 ~delay:0 ~ecn_threshold:2 () in
  let ce = ref 0 in
  Port.set_deliver port (fun p ->
      if p.Packet.ip.Ipv4.ecn = Ipv4.Ce then incr ce);
  for _ = 1 to 5 do
    Port.enqueue port (mk_packet ~ecn:Ipv4.Ect0 ())
  done;
  Sim.run sim;
  (* Queue occupancies at enqueue: 0,1,2,3,4 -> marked above threshold 2. *)
  Alcotest.(check int) "marks counted" 3 (Port.marks port);
  Alcotest.(check int) "CE delivered" 3 !ce

let test_ecn_not_marked_when_not_capable () =
  let sim = Sim.create () in
  let port = Port.create sim ~rate_bps:1e9 ~delay:0 ~ecn_threshold:0 () in
  Port.set_deliver port ignore;
  Port.enqueue port (mk_packet ~ecn:Ipv4.Not_ect ());
  Sim.run sim;
  Alcotest.(check int) "Not-ECT never marked" 0 (Port.marks port)

let test_switch_routing () =
  let sim = Sim.create () in
  let sw = Switch.create sim ~forwarding_delay:0 () in
  let got_a = ref 0 and got_b = ref 0 in
  let port_a = Port.create sim ~rate_bps:1e10 ~delay:0 () in
  let port_b = Port.create sim ~rate_bps:1e10 ~delay:0 () in
  Port.set_deliver port_a (fun _ -> incr got_a);
  Port.set_deliver port_b (fun _ -> incr got_b);
  let ida = Switch.add_port sw port_a and idb = Switch.add_port sw port_b in
  Switch.add_route sw (Addr.host_ip 1) ida;
  Switch.add_route sw (Addr.host_ip 2) idb;
  Switch.input sw (mk_packet ~dst:1 ());
  Switch.input sw (mk_packet ~dst:2 ());
  Switch.input sw (mk_packet ~dst:3 ());
  Sim.run sim;
  Alcotest.(check int) "to a" 1 !got_a;
  Alcotest.(check int) "to b" 1 !got_b;
  Alcotest.(check int) "unroutable dropped" 1 (Switch.no_route_drops sw)

let test_switch_ecmp_stable () =
  let sim = Sim.create () in
  let sw = Switch.create sim ~forwarding_delay:0 () in
  let counts = Array.make 4 0 in
  let ids =
    List.init 4 (fun i ->
        let p = Port.create sim ~rate_bps:1e10 ~delay:0 () in
        Port.set_deliver p (fun _ -> counts.(i) <- counts.(i) + 1);
        Switch.add_port sw p)
  in
  Switch.add_ecmp_route sw (Addr.host_ip 9) ids;
  (* Same flow repeatedly: must always take the same path. *)
  for _ = 1 to 20 do
    Switch.input sw (mk_packet ~dst:9 ~sport:5555 ())
  done;
  Sim.run sim;
  let used = Array.to_list counts |> List.filter (fun c -> c > 0) in
  Alcotest.(check (list int)) "one path, all 20 packets" [ 20 ] used;
  (* Different flows spread across paths. *)
  for sport = 1 to 64 do
    Switch.input sw (mk_packet ~dst:9 ~sport ())
  done;
  Sim.run sim;
  let spread = Array.to_list counts |> List.filter (fun c -> c > 0) in
  Alcotest.(check bool) "multiple paths used" true (List.length spread > 1)

let test_nic_rss_steering () =
  let sim = Sim.create () in
  let tx = Port.create sim ~rate_bps:1e10 ~delay:0 () in
  let nic =
    Nic.create sim ~ip:(Addr.host_ip 1) ~mac:(Addr.host_mac 1) ~num_queues:4
      ~tx_port:tx ()
  in
  let per_queue = Array.make 4 0 in
  Nic.set_rx_handler nic (fun ~queue _ ->
      per_queue.(queue) <- per_queue.(queue) + 1);
  (* Same flow always lands on the same queue. *)
  for _ = 1 to 10 do
    Nic.input nic (mk_packet ~dst:1 ~sport:7777 ())
  done;
  let used = Array.to_list per_queue |> List.filter (fun c -> c > 0) in
  Alcotest.(check (list int)) "flow pinned to one queue" [ 10 ] used;
  (* Restrict to 2 active queues: traffic only lands on queues 0-1. *)
  Nic.set_active_queues nic 2;
  Array.fill per_queue 0 4 0;
  for sport = 1 to 100 do
    Nic.input nic (mk_packet ~dst:1 ~sport ())
  done;
  Alcotest.(check int) "queue 2 unused after rescale" 0 per_queue.(2);
  Alcotest.(check int) "queue 3 unused after rescale" 0 per_queue.(3);
  Alcotest.(check bool) "both active queues used" true
    (per_queue.(0) > 0 && per_queue.(1) > 0)

let test_loss_rate () =
  let sim = Sim.create () in
  let rng = Rng.create 5 in
  let delivered = ref 0 in
  let stage = Fault.create sim rng (Fault.uniform_loss 0.3) in
  let deliver = Fault.wrap stage (fun _ -> incr delivered) in
  let n = 20_000 in
  for _ = 1 to n do
    deliver (mk_packet ())
  done;
  let rate = 1.0 -. (float_of_int !delivered /. float_of_int n) in
  Alcotest.(check bool)
    (Printf.sprintf "loss rate ~0.3 (got %.3f)" rate)
    true
    (abs_float (rate -. 0.3) < 0.02);
  let c = Fault.counters stage in
  Alcotest.(check int) "offered counted" n c.Fault.offered;
  Alcotest.(check int) "drops + delivered = offered" n
    (c.Fault.uniform_drops + !delivered);
  Alcotest.(check int) "forwarded matches deliveries" !delivered
    c.Fault.forwarded

let test_fat_tree_connectivity () =
  (* Every host can reach every other host across the fat tree. *)
  let sim = Sim.create () in
  let net = Topology.fat_tree sim ~k:4 ~queues_per_nic:1 () in
  let hosts = net.Topology.ft_hosts in
  let n = Array.length hosts in
  Alcotest.(check int) "k=4 -> 16 hosts" 16 n;
  let received = Array.make n 0 in
  Array.iteri
    (fun i ep ->
      Nic.set_rx_handler ep.Topology.nic (fun ~queue:_ _ ->
          received.(i) <- received.(i) + 1))
    hosts;
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then
        Nic.transmit hosts.(src).Topology.nic
          (mk_packet ~src:src ~dst:dst ~sport:(1000 + src)
             ~dport:(2000 + dst) ())
    done
  done;
  Sim.run sim;
  Array.iteri
    (fun i count ->
      Alcotest.(check int)
        (Printf.sprintf "host %d receives from all others" i)
        (n - 1) count)
    received

let test_star_connectivity () =
  let sim = Sim.create () in
  let net = Topology.star sim ~n_clients:3 ~queues_per_nic:2 () in
  let at_server = ref 0 in
  Nic.set_rx_handler net.Topology.server.Topology.nic (fun ~queue:_ _ ->
      incr at_server);
  Array.iter
    (fun client ->
      Nic.transmit client.Topology.nic
        (mk_packet ~src:client.Topology.host_id ~dst:0 ()))
    net.Topology.clients;
  Sim.run sim;
  Alcotest.(check int) "server hears all clients" 3 !at_server

let suite =
  [
    Alcotest.test_case "port: serialization + delay" `Quick
      test_port_serialization_delay;
    Alcotest.test_case "port: FIFO backlog" `Quick test_port_fifo_backlog;
    Alcotest.test_case "port: tail drop" `Quick test_port_tail_drop;
    Alcotest.test_case "port: ECN marking" `Quick test_port_ecn_marking;
    Alcotest.test_case "port: Not-ECT unmarked" `Quick
      test_ecn_not_marked_when_not_capable;
    Alcotest.test_case "switch: routing + no-route drop" `Quick
      test_switch_routing;
    Alcotest.test_case "switch: ECMP is flow-stable" `Quick
      test_switch_ecmp_stable;
    Alcotest.test_case "nic: RSS steering + rescale" `Quick
      test_nic_rss_steering;
    Alcotest.test_case "loss injector rate" `Quick test_loss_rate;
    Alcotest.test_case "fat tree all-pairs connectivity" `Quick
      test_fat_tree_connectivity;
    Alcotest.test_case "star connectivity" `Quick test_star_connectivity;
  ]
