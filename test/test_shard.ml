(* Shard subsystem: RSS redirection-table rewrites, per-queue flow-table
   shards with drain-in-place migration, the accounting-only spinlock cost
   model, the sharded-vs-single-table determinism contract, and the
   cross-domain telemetry merges ([Metrics.merge] / [Trace.merge]) plus the
   parallel consumers built on them (chaos -jN, [Diagnostics.batch_stats]). *)

module Sim = Tas_engine.Sim
module Time_ns = Tas_engine.Time_ns
module Stats = Tas_engine.Stats
module Addr = Tas_proto.Addr
module Four_tuple = Addr.Four_tuple
module Spinlock = Tas_shard.Spinlock
module Rss_table = Tas_shard.Rss_table
module Flow_shards = Tas_shard.Flow_shards
module Flow_table = Tas_core.Flow_table
module Fast_path = Tas_core.Fast_path
module Config = Tas_core.Config
module Tas = Tas_core.Tas
module Topology = Tas_netsim.Topology
module Rpc_echo = Tas_apps.Rpc_echo
module Scenario = Tas_experiments.Scenario
module Metrics = Tas_telemetry.Metrics
module Trace = Tas_telemetry.Trace
module J = Tas_telemetry.Json

let tuple i =
  {
    Four_tuple.local_ip = 0x0a000001;
    local_port = 7;
    peer_ip = 0x0a000100 + (i lsr 12);
    peer_port = 1024 + (i land 0xfff);
  }

(* --- Spinlock -------------------------------------------------------------- *)

let test_spinlock_accounting () =
  let l = Spinlock.create () in
  Alcotest.(check int) "local charge" 24 (Spinlock.acquire l ~remote:false);
  Alcotest.(check int) "remote charge" 96 (Spinlock.acquire l ~remote:true);
  Alcotest.(check int) "acquisitions" 2 (Spinlock.acquisitions l);
  Alcotest.(check int) "remote acquisitions" 1 (Spinlock.remote_acquisitions l);
  Alcotest.(check int) "total cycles" 120 (Spinlock.cycles l);
  Alcotest.(check int) "remote cycles" 96 (Spinlock.remote_cycles l);
  Alcotest.check_raises "negative cost rejected"
    (Invalid_argument "Spinlock.create: negative cycle cost") (fun () ->
      ignore (Spinlock.create ~local_cycles:(-1) ()))

(* --- Rss_table ------------------------------------------------------------- *)

let test_rss_initial_spread () =
  let t = Rss_table.create ~num_queues:4 () in
  Alcotest.(check int) "size" 128 (Rss_table.size t);
  Alcotest.(check int) "all queues active" 4 (Rss_table.active t);
  for g = 0 to Rss_table.size t - 1 do
    Alcotest.(check int)
      (Printf.sprintf "group %d" g)
      (g mod 4)
      (Rss_table.queue_of_group t g)
  done;
  (* hash reduction is non-negative even for negative hashes *)
  Alcotest.(check bool) "negative hash ok" true
    (Rss_table.group_of_hash t (-7) >= 0)

let test_rss_rewrite_moves_groups_in_order () =
  let t = Rss_table.create ~num_queues:4 () in
  let moves = ref [] in
  Rss_table.set_on_move t (fun ~group ~from_q ~to_q ->
      (* the entry is already rewritten when the hook runs *)
      Alcotest.(check int) "entry updated first" to_q
        (Rss_table.queue_of_group t group);
      moves := (group, from_q, to_q) :: !moves);
  Rss_table.set_active t 2;
  let moves = List.rev !moves in
  Alcotest.(check int) "active" 2 (Rss_table.active t);
  (* groups 0,1 keep their queue under mod 2; every remapped group fires *)
  List.iter
    (fun (g, from_q, to_q) ->
      Alcotest.(check int) "old queue" (g mod 4) from_q;
      Alcotest.(check int) "new queue" (g mod 2) to_q;
      Alcotest.(check bool) "actually moved" true (from_q <> to_q))
    moves;
  Alcotest.(check (list int)) "ascending group order"
    (List.sort compare (List.map (fun (g, _, _) -> g) moves))
    (List.map (fun (g, _, _) -> g) moves);
  Alcotest.(check int) "counter" (List.length moves) (Rss_table.groups_moved t);
  Alcotest.(check int) "rewrites" 1 (Rss_table.rewrites t);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Rss_table.set_active: out of range") (fun () ->
      Rss_table.set_active t 5)

(* --- Flow_shards ----------------------------------------------------------- *)

let test_shards_route_and_sum () =
  let rss = Rss_table.create ~num_queues:4 () in
  let s : int Flow_shards.t = Flow_shards.create ~rss () in
  let n = 64 in
  for i = 0 to n - 1 do
    Flow_shards.add s (tuple i) i
  done;
  Alcotest.(check int) "count" n (Flow_shards.count s);
  let sum = ref 0 in
  for q = 0 to Flow_shards.num_shards s - 1 do
    sum := !sum + Flow_shards.shard_count s q
  done;
  Alcotest.(check int) "shard counts sum to count" n !sum;
  for i = 0 to n - 1 do
    (match Flow_shards.find s (tuple i) with
    | Some v -> Alcotest.(check int) "payload" i v
    | None -> Alcotest.fail "flow missing");
    (* each flow sits on the shard the redirection table names *)
    let q = Flow_shards.shard_of s (tuple i) in
    let on_shard = ref false in
    Flow_shards.iter_shard s q (fun t _ ->
        if Four_tuple.equal t (tuple i) then on_shard := true);
    Alcotest.(check bool) "on its RSS shard" true !on_shard
  done;
  (* find charges local, add charges remote *)
  Alcotest.(check int) "remote lock cycles" (n * 96)
    (Flow_shards.remote_lock_cycles s);
  Alcotest.(check int) "local lock cycles" (n * 24)
    (Flow_shards.lock_cycles s - Flow_shards.remote_lock_cycles s);
  Flow_shards.remove s (tuple 0);
  Alcotest.(check int) "removed" (n - 1) (Flow_shards.count s);
  Alcotest.(check bool) "gone" true (Flow_shards.find s (tuple 0) = None)

let test_shards_migration_conserves_flows () =
  let rss = Rss_table.create ~num_queues:4 () in
  let s : int Flow_shards.t = Flow_shards.create ~rss () in
  let n = 96 in
  for i = 0 to n - 1 do
    Flow_shards.add s (tuple i) i
  done;
  let spread q = Flow_shards.shard_count s q in
  Alcotest.(check bool) "initially spread past queue 0" true
    (spread 1 + spread 2 + spread 3 > 0);
  let hook_moved = ref 0 in
  Flow_shards.set_on_migrate s (fun ~group:_ ~from_q:_ ~to_q ~moved ->
      Alcotest.(check int) "scale-down target" 0 to_q;
      hook_moved := !hook_moved + moved);
  Rss_table.set_active rss 1;
  Alcotest.(check int) "no flow dropped" n (Flow_shards.count s);
  Alcotest.(check int) "all on shard 0" n (spread 0);
  Alcotest.(check int) "hook saw every move" !hook_moved
    (Flow_shards.migrated_flows s);
  for i = 0 to n - 1 do
    match Flow_shards.find s (tuple i) with
    | Some v -> Alcotest.(check int) "payload survives" i v
    | None -> Alcotest.fail "flow lost in migration"
  done;
  (* per-shard migration counters balance *)
  let inn = ref 0 and out = ref 0 in
  for q = 0 to 3 do
    let st = Flow_shards.shard_stats s q in
    inn := !inn + st.Flow_shards.migrations_in;
    out := !out + st.Flow_shards.migrations_out
  done;
  Alcotest.(check int) "in = out" !out !inn;
  Alcotest.(check int) "in = migrated" (Flow_shards.migrated_flows s) !inn;
  (* scale back up: flows respread, still none lost *)
  Flow_shards.set_on_migrate s (fun ~group:_ ~from_q:_ ~to_q:_ ~moved:_ -> ());
  Rss_table.set_active rss 4;
  Alcotest.(check int) "respread keeps all" n (Flow_shards.count s);
  Alcotest.(check int) "spread again" (spread 0 + spread 1 + spread 2 + spread 3)
    n

let test_shard_metrics_registered () =
  let rss = Rss_table.create ~num_queues:2 () in
  let s : int Flow_shards.t = Flow_shards.create ~rss () in
  Flow_shards.add s (tuple 0) 0;
  let m = Metrics.create () in
  Flow_shards.register s m ();
  Rss_table.register rss m ();
  let names =
    List.map (fun smp -> smp.Metrics.s_name) (Metrics.snapshot m)
  in
  List.iter
    (fun n ->
      Alcotest.(check bool) n true (List.mem n names))
    [
      "fp_shard_flows"; "fp_shard_lookups"; "fp_shard_installs";
      "fp_shard_removes"; "fp_shard_migrations_in";
      "fp_shard_migrations_out"; "fp_shard_lock_cycles"; "nic_rss_rewrites";
      "nic_rss_groups_moved";
    ]

(* --- Sharded vs single-table determinism ----------------------------------- *)

(* A small saturated RPC-echo server; returns the non-timing operational
   counters plus the sorted flow dump. The sharded and single-table builds
   must agree byte for byte: the lock model is accounting-only and RSS
   steering is identical either way. *)
let workload_digest ~sharded ~active_cores () =
  let sim = Sim.create () in
  let net = Topology.star sim ~n_clients:1 ~queues_per_nic:4 () in
  let server =
    Scenario.build_server sim ~nic:net.Topology.server.Topology.nic
      ~kind:Scenario.Tas_ll ~total_cores:6 ~split:(2, 4)
      ~tas_patch:(fun c -> { c with Config.flow_shards_enabled = sharded })
      ()
  in
  let tas = Option.get server.Scenario.tas in
  Fast_path.set_active_cores (Tas.fast_path tas) active_cores;
  Rpc_echo.server server.Scenario.transport ~port:7 ~msg_size:64
    ~app_cycles:300;
  let stats = Rpc_echo.make_stats () in
  let transport = Scenario.client_transport sim net.Topology.clients.(0) () in
  Rpc_echo.closed_loop_clients sim transport ~n:16 ~dst_ip:server.Scenario.ip
    ~dst_port:7 ~msg_size:64 ~pipeline:4 ~stagger_ns:2_000 ~stats ();
  Sim.run ~until:(Time_ns.ms 8) sim;
  let s = Tas.snapshot tas in
  let ft = Fast_path.flows (Tas.fast_path tas) in
  ( Printf.sprintf "%d|%d|%d|%d|%d|%d|%d|%d|%d" s.Tas.flows s.Tas.conn_setups
      s.Tas.rx_data_packets s.Tas.rx_ack_packets s.Tas.tx_data_packets
      s.Tas.acks_sent s.Tas.ooo_stored s.Tas.exceptions_forwarded
      (Stats.Counter.value stats.Rpc_echo.completed),
    J.to_string (Flow_table.dump ft),
    tas )

let test_sharded_equals_single_table () =
  let d1, dump1, tas1 = workload_digest ~sharded:true ~active_cores:4 () in
  let d2, dump2, tas2 = workload_digest ~sharded:false ~active_cores:4 () in
  let ft1 = Fast_path.flows (Tas.fast_path tas1) in
  let ft2 = Fast_path.flows (Tas.fast_path tas2) in
  Alcotest.(check string) "operational counters identical" d2 d1;
  Alcotest.(check string) "flow dump identical" dump2 dump1;
  Alcotest.(check int) "sharded table really sharded" 4
    (Flow_table.num_shards ft1);
  Alcotest.(check int) "single table really single" 1
    (Flow_table.num_shards ft2);
  (* per-shard occupancy sums to the table count *)
  let sum = ref 0 in
  for q = 0 to Flow_table.num_shards ft1 - 1 do
    sum := !sum + Flow_table.shard_count ft1 q
  done;
  Alcotest.(check int) "shard occupancy sums" (Flow_table.count ft1) !sum

(* Scale a live, populated fast path down to one core: every established
   flow must land on shard 0 exactly once, and the id-sorted dump must not
   change at all. *)
let test_live_scale_down_migrates () =
  let _, dump_before, tas = workload_digest ~sharded:true ~active_cores:4 () in
  let ft = Fast_path.flows (Tas.fast_path tas) in
  let before = Flow_table.count ft in
  Alcotest.(check bool) "has flows" true (before > 0);
  Fast_path.set_active_cores (Tas.fast_path tas) 1;
  Alcotest.(check int) "no flow dropped or duplicated" before
    (Flow_table.count ft);
  Alcotest.(check int) "all on shard 0" before (Flow_table.shard_count ft 0);
  Alcotest.(check bool) "flows actually moved" true
    (Flow_table.migrated_flows ft > 0);
  Alcotest.(check string) "dump unchanged" dump_before
    (J.to_string (Flow_table.dump ft))

(* --- Metrics.merge --------------------------------------------------------- *)

let test_metrics_merge () =
  let mk v g =
    let m = Metrics.create () in
    let c = Metrics.counter m "reqs" in
    Stats.Counter.add c v;
    Metrics.gauge_fn m "depth" (fun () -> g);
    let h = Metrics.hist m "lat" in
    Stats.Hist.add h (float_of_int (10 * v));
    Metrics.snapshot m
  in
  let merged = Metrics.merge [ mk 3 1.5; mk 5 2.5 ] in
  let find name =
    List.find (fun s -> s.Metrics.s_name = name) merged
  in
  (match (find "reqs").Metrics.s_value with
  | Metrics.Counter n -> Alcotest.(check int) "counters sum" 8 n
  | _ -> Alcotest.fail "reqs not a counter");
  (match (find "depth").Metrics.s_value with
  | Metrics.Gauge g -> Alcotest.(check (float 1e-9)) "gauges sum" 4.0 g
  | _ -> Alcotest.fail "depth not a gauge");
  (match (find "lat").Metrics.s_value with
  | Metrics.Hist h ->
    Alcotest.(check int) "hist counts sum" 2 h.Metrics.count;
    Alcotest.(check bool) "max of max" true (h.Metrics.max_v >= 49.0)
  | _ -> Alcotest.fail "lat not a hist");
  (* sorted output, like snapshot *)
  let names = List.map (fun s -> s.Metrics.s_name) merged in
  Alcotest.(check (list string)) "sorted" (List.sort compare names) names;
  (* mismatched types refuse to merge *)
  let a = Metrics.create () and b = Metrics.create () in
  ignore (Metrics.counter a "x");
  Metrics.gauge_fn b "x" (fun () -> 1.0);
  Alcotest.check_raises "type mismatch"
    (Invalid_argument "Metrics.merge: mismatched sample types") (fun () ->
      ignore (Metrics.merge [ Metrics.snapshot a; Metrics.snapshot b ]))

let test_trace_merge_stable () =
  let ev ts flow = { Trace.ts; kind = Trace.Rx_data; core = 0; flow } in
  let s1 = [ ev 10 1; ev 20 2; ev 30 3 ] in
  let s2 = [ ev 10 4; ev 25 5 ] in
  let merged = Trace.merge [ s1; s2 ] in
  Alcotest.(check (list int)) "stable ts order (stream 1 wins ties)"
    [ 1; 4; 2; 5; 3 ]
    (List.map (fun e -> e.Trace.flow) merged);
  Alcotest.(check (list int)) "sorted by ts" [ 10; 10; 20; 25; 30 ]
    (List.map (fun e -> e.Trace.ts) merged)

(* --- Parallel consumers ---------------------------------------------------- *)

module Exp_chaos = Tas_experiments.Exp_chaos
module Run_opts = Tas_experiments.Run_opts
module Diagnostics = Tas_experiments.Diagnostics

let test_chaos_parallel_matches_serial () =
  let capture jobs =
    Run_opts.set_jobs jobs;
    let buf = Buffer.create 4096 in
    let fmt = Format.formatter_of_buffer buf in
    Exp_chaos.run ~quick:true ~only:[ "bursty-loss"; "dup-reorder" ] fmt;
    Format.pp_print_flush fmt ();
    Run_opts.set_jobs 1;
    Buffer.contents buf
  in
  let serial = capture 1 in
  let parallel = capture 2 in
  Alcotest.(check bool) "produced output" true (String.length serial > 0);
  Alcotest.(check string) "ch -j2 identical to serial" serial parallel

let test_batch_stats_parallel_matches_serial () =
  let snap jobs =
    Run_opts.set_jobs jobs;
    let b = Diagnostics.batch_stats ~runs:2 ~duration_ns:(Time_ns.ms 2) () in
    Run_opts.set_jobs 1;
    b
  in
  let s = snap 1 and p = snap 2 in
  Alcotest.(check int) "completed" s.Diagnostics.completed
    p.Diagnostics.completed;
  Alcotest.(check int) "trace events" s.Diagnostics.trace_events
    p.Diagnostics.trace_events;
  Alcotest.(check bool) "nonempty" true (s.Diagnostics.trace_events > 0);
  Alcotest.(check string) "merged metrics identical"
    (J.to_string
       (J.List (List.map Metrics.sample_to_json s.Diagnostics.metrics)))
    (J.to_string
       (J.List (List.map Metrics.sample_to_json p.Diagnostics.metrics)));
  Alcotest.(check int) "jobs recorded" 2 p.Diagnostics.jobs

let suite =
  [
    Alcotest.test_case "spinlock: accounting-only cost model" `Quick
      test_spinlock_accounting;
    Alcotest.test_case "rss: initial mod-n spread" `Quick
      test_rss_initial_spread;
    Alcotest.test_case "rss: rewrite fires on_move in group order" `Quick
      test_rss_rewrite_moves_groups_in_order;
    Alcotest.test_case "shards: route, sum, lock charges" `Quick
      test_shards_route_and_sum;
    Alcotest.test_case "shards: scale-down migration conserves flows" `Quick
      test_shards_migration_conserves_flows;
    Alcotest.test_case "shards: per-shard metrics registered" `Quick
      test_shard_metrics_registered;
    Alcotest.test_case "fast path: sharded == single-table" `Quick
      test_sharded_equals_single_table;
    Alcotest.test_case "fast path: live scale-down migrates in place" `Quick
      test_live_scale_down_migrates;
    Alcotest.test_case "metrics: merge counters/gauges/hists" `Quick
      test_metrics_merge;
    Alcotest.test_case "trace: merge is a stable ts sort" `Quick
      test_trace_merge_stable;
    Alcotest.test_case "chaos: -j2 output identical to serial" `Quick
      test_chaos_parallel_matches_serial;
    Alcotest.test_case "diagnostics: batch merge jobs-invariant" `Quick
      test_batch_stats_parallel_matches_serial;
  ]
