(* Property tests of the statistics primitives backing the telemetry
   registry: Hist quantile accuracy against exact order statistics (the
   log-bucketing promises ~2% relative bucket width), and Summary/Hist
   merge invariants (Chan parallel combination, bucket-wise sums). *)

module Stats = Tas_engine.Stats

(* Log-uniform samples over ~6 decades, all >= 1 so every sample lands in a
   real log bucket (values below 1 are clamped into bucket 0). *)
let sample_gen = QCheck.Gen.(map (fun e -> 2.0 ** e) (float_range 0.0 20.0))

let samples_arb =
  QCheck.make
    ~print:(fun l ->
      String.concat ";" (List.map (Printf.sprintf "%.3f") l))
    QCheck.Gen.(list_size (int_range 1 400) sample_gen)

(* Same rank definition as Hist.percentile: 1-based ceil(p/100 * n). *)
let exact_percentile sorted p =
  let n = Array.length sorted in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  let rank = if rank < 1 then 1 else if rank > n then n else rank in
  sorted.(rank - 1)

(* A bucket spans a 2^(1/32) =~ 2.2% ratio and the reported value is its
   geometric midpoint, so the estimate is within half a bucket (~1.1%) of
   the exact order statistic; 3% leaves slack for edge rounding. *)
let quantile_tolerance = 0.03

let hist_of values =
  let h = Stats.Hist.create () in
  List.iter (Stats.Hist.add h) values;
  h

let test_quantile_accuracy =
  QCheck.Test.make ~name:"hist percentile within bucket width" ~count:300
    samples_arb (fun values ->
      let h = hist_of values in
      let sorted = Array.of_list values in
      Array.sort compare sorted;
      List.for_all
        (fun p ->
          let est = Stats.Hist.percentile h p in
          let exact = exact_percentile sorted p in
          abs_float (est -. exact) /. exact <= quantile_tolerance)
        [ 10.0; 50.0; 90.0; 99.0; 100.0 ])

let test_hist_mean_max =
  QCheck.Test.make ~name:"hist mean/max/count exact" ~count:200 samples_arb
    (fun values ->
      let h = hist_of values in
      let n = List.length values in
      let sum = List.fold_left ( +. ) 0.0 values in
      let mx = List.fold_left Float.max neg_infinity values in
      Stats.Hist.count h = n
      && abs_float (Stats.Hist.mean h -. (sum /. float_of_int n))
         <= 1e-9 *. abs_float sum
      && Stats.Hist.max_v h = mx)

let pair_arb = QCheck.pair samples_arb samples_arb

let test_hist_merge =
  QCheck.Test.make ~name:"hist merge = hist of concatenation" ~count:200
    pair_arb (fun (xs, ys) ->
      let merged = Stats.Hist.merge (hist_of xs) (hist_of ys) in
      let direct = hist_of (xs @ ys) in
      Stats.Hist.count merged = Stats.Hist.count direct
      && List.for_all
           (fun p ->
             Stats.Hist.percentile merged p = Stats.Hist.percentile direct p)
           [ 1.0; 25.0; 50.0; 75.0; 90.0; 99.0 ]
      && abs_float (Stats.Hist.mean merged -. Stats.Hist.mean direct) <= 1e-9
      && Stats.Hist.max_v merged = Stats.Hist.max_v direct)

let summary_of values =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) values;
  s

let close ?(tol = 1e-9) a b = abs_float (a -. b) <= tol *. (1.0 +. abs_float b)

let test_summary_merge =
  QCheck.Test.make ~name:"summary merge = summary of concatenation" ~count:300
    pair_arb (fun (xs, ys) ->
      let merged = Stats.Summary.merge (summary_of xs) (summary_of ys) in
      let direct = summary_of (xs @ ys) in
      Stats.Summary.count merged = Stats.Summary.count direct
      && close (Stats.Summary.mean merged) (Stats.Summary.mean direct)
      && close ~tol:1e-6 (Stats.Summary.stddev merged)
           (Stats.Summary.stddev direct)
      && Stats.Summary.min_v merged = Stats.Summary.min_v direct
      && Stats.Summary.max_v merged = Stats.Summary.max_v direct
      && close (Stats.Summary.total merged) (Stats.Summary.total direct))

let test_summary_merge_empty =
  QCheck.Test.make ~name:"summary merge with empty is identity" ~count:100
    samples_arb (fun xs ->
      let s = summary_of xs in
      let e = Stats.Summary.create () in
      let check m =
        Stats.Summary.count m = Stats.Summary.count s
        && Stats.Summary.mean m = Stats.Summary.mean s
        && Stats.Summary.max_v m = Stats.Summary.max_v s
        && Stats.Summary.total m = Stats.Summary.total s
      in
      check (Stats.Summary.merge s e) && check (Stats.Summary.merge e s))

let test_summary_merge_no_alias () =
  (* merge with an empty side must copy, not alias: mutating the result
     must not disturb the input. *)
  let s = summary_of [ 1.0; 2.0; 3.0 ] in
  let m = Stats.Summary.merge s (Stats.Summary.create ()) in
  Stats.Summary.add m 100.0;
  Alcotest.(check int) "input count untouched" 3 (Stats.Summary.count s);
  Alcotest.(check (float 1e-9)) "input mean untouched" 2.0 (Stats.Summary.mean s)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      test_quantile_accuracy;
      test_hist_mean_max;
      test_hist_merge;
      test_summary_merge;
      test_summary_merge_empty;
    ]
  @ [
      Alcotest.test_case "summary merge copies empty side" `Quick
        test_summary_merge_no_alias;
    ]
