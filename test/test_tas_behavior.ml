(* Behavioral tests of TAS internals: out-of-order receive handling, fast
   recovery, slow-path timeouts, dynamic core scaling, context-queue
   coalescing, and the Table 6 core-split heuristic. *)

module Sim = Tas_engine.Sim
module Time_ns = Tas_engine.Time_ns
module Rng = Tas_engine.Rng
module Core = Tas_cpu.Core
module Topology = Tas_netsim.Topology
module Port = Tas_netsim.Port
module Config = Tas_core.Config
module Tas = Tas_core.Tas
module Libtas = Tas_core.Libtas
module Fast_path = Tas_core.Fast_path
module Slow_path = Tas_core.Slow_path
module E = Tas_baseline.Tcp_engine
module Scenario = Tas_experiments.Scenario

(* TAS host + ideal engine peer over a lossy/able link. *)
let make ?(config = Config.default) ?loss_rate ?rng () =
  let sim = Sim.create () in
  let net = Topology.point_to_point sim ?loss_rate ?rng ~queues_per_nic:4 () in
  let tas = Tas.create sim ~nic:net.Topology.a.Topology.nic ~config () in
  let core = Core.create sim ~id:100 () in
  let lt = Tas.app tas ~app_cores:[| core |] ~api:Libtas.Sockets in
  let peer = E.create sim net.Topology.b.Topology.nic E.default_config in
  E.attach peer;
  (sim, net, tas, lt, peer)

let test_ooo_interval_on_receive () =
  (* Drop exactly one data packet towards TAS; later segments must be
     buffered in the OOO interval, and the retransmission must fill the gap
     so the stream arrives intact. *)
  let sim, net, tas, lt, peer = make () in
  let received = Buffer.create 1024 in
  Libtas.listen lt ~port:7 ~ctx_of_tuple:(fun _ -> 0) (fun _ ->
      {
        Libtas.null_handlers with
        Libtas.on_data = (fun _ d -> Buffer.add_bytes received d);
      });
  (* Drop the 5th data packet from peer -> TAS, once. *)
  let count = ref 0 in
  let dropped = ref false in
  Port.set_deliver net.Topology.b.Topology.uplink (fun pkt ->
      if
        Bytes.length pkt.Tas_proto.Packet.payload > 0
        && (incr count;
            !count = 5)
        && not !dropped
      then dropped := true
      else Tas_netsim.Nic.input net.Topology.a.Topology.nic pkt);
  let n = 50_000 in
  let payload = Bytes.init n (fun i -> Char.chr (i land 0xff)) in
  let sent = ref 0 in
  let push c =
    while
      !sent < n
      &&
      let k = E.send c (Bytes.sub payload !sent (min 4096 (n - !sent))) in
      sent := !sent + k;
      k > 0
    do
      ()
    done
  in
  ignore
    (E.connect peer ~dst_ip:(Tas_netsim.Nic.ip net.Topology.a.Topology.nic)
       ~dst_port:7
       {
         E.null_callbacks with
         E.on_connected = (fun c -> push c);
         E.on_sendable = (fun c _ -> push c);
       });
  Sim.run ~until:(Time_ns.sec 2) sim;
  Alcotest.(check bool) "a data packet was dropped" true !dropped;
  let stats = Fast_path.stats (Tas.fast_path tas) in
  Alcotest.(check bool) "segments were stored out of order" true
    (stats.Fast_path.ooo_stored > 0);
  Alcotest.(check int) "stream complete" n (Buffer.length received);
  Alcotest.(check string) "stream intact" (Bytes.to_string payload)
    (Buffer.contents received)

let test_fast_recovery_on_dupacks () =
  (* Drop one packet TAS -> peer: the peer's duplicate ACKs must trigger
     exactly one fast-path recovery (counted in stats). *)
  let sim, net, tas, lt, peer = make () in
  let received = Buffer.create 1024 in
  E.listen peer ~port:9 (fun _ ->
      {
        E.null_callbacks with
        E.on_receive = (fun _ d -> Buffer.add_bytes received d);
      });
  let count = ref 0 and dropped = ref false in
  Port.set_deliver net.Topology.a.Topology.uplink (fun pkt ->
      if
        Bytes.length pkt.Tas_proto.Packet.payload > 0
        && (incr count;
            !count = 7)
        && not !dropped
      then dropped := true
      else Tas_netsim.Nic.input net.Topology.b.Topology.nic pkt);
  let n = 80_000 in
  let payload = Bytes.init n (fun i -> Char.chr ((i * 3) land 0xff)) in
  let sent = ref 0 in
  let push sock =
    while
      !sent < n
      &&
      let k = Libtas.send sock (Bytes.sub payload !sent (min 4096 (n - !sent))) in
      sent := !sent + k;
      k > 0
    do
      ()
    done
  in
  ignore
    (Libtas.connect lt ~ctx:0
       ~dst_ip:(Tas_netsim.Nic.ip net.Topology.b.Topology.nic) ~dst_port:9
       {
         Libtas.null_handlers with
         Libtas.on_connected = (fun s -> push s);
         Libtas.on_sendable = (fun s -> push s);
       });
  Sim.run ~until:(Time_ns.sec 2) sim;
  let stats = Fast_path.stats (Tas.fast_path tas) in
  Alcotest.(check bool) "fast recovery triggered" true
    (stats.Fast_path.fast_retransmits >= 1);
  Alcotest.(check int) "stream complete" n (Buffer.length received);
  Alcotest.(check string) "stream intact" (Bytes.to_string payload)
    (Buffer.contents received)

let test_slow_path_timeout_retransmit () =
  (* Blackhole data from TAS entirely for a while: the slow path must
     detect the stall and trigger retransmission; after the hole heals the
     stream completes. *)
  let sim, net, tas, lt, peer = make () in
  let received = Buffer.create 1024 in
  E.listen peer ~port:9 (fun _ ->
      {
        E.null_callbacks with
        E.on_receive = (fun _ d -> Buffer.add_bytes received d);
      });
  let blackhole = ref false in
  Port.set_deliver net.Topology.a.Topology.uplink (fun pkt ->
      if !blackhole && Bytes.length pkt.Tas_proto.Packet.payload > 0 then ()
      else Tas_netsim.Nic.input net.Topology.b.Topology.nic pkt);
  let n = 20_000 in
  let payload = Bytes.init n (fun i -> Char.chr ((i * 5) land 0xff)) in
  let sent = ref 0 in
  let push sock =
    while
      !sent < n
      &&
      let k = Libtas.send sock (Bytes.sub payload !sent (min 4096 (n - !sent))) in
      sent := !sent + k;
      k > 0
    do
      ()
    done
  in
  ignore
    (Libtas.connect lt ~ctx:0
       ~dst_ip:(Tas_netsim.Nic.ip net.Topology.b.Topology.nic) ~dst_port:9
       {
         Libtas.null_handlers with
         Libtas.on_connected =
           (fun s ->
             blackhole := true;
             push s);
         Libtas.on_sendable = (fun s -> push s);
       });
  (* Heal the link after 30 ms. *)
  ignore (Sim.schedule sim (Time_ns.ms 30) (fun () -> blackhole := false));
  Sim.run ~until:(Time_ns.sec 2) sim;
  Alcotest.(check bool) "slow path fired timeout retransmissions" true
    (Slow_path.timeout_retransmits (Tas.slow_path tas) >= 1);
  Alcotest.(check int) "stream complete after healing" n
    (Buffer.length received)

let test_simple_recovery_mode_drops_ooo () =
  (* With rx_ooo_enabled = false, out-of-order segments are not buffered. *)
  let config = { Config.default with Config.rx_ooo_enabled = false } in
  let sim, net, tas, lt, peer = make ~config () in
  let received = Buffer.create 1024 in
  Libtas.listen lt ~port:7 ~ctx_of_tuple:(fun _ -> 0) (fun _ ->
      {
        Libtas.null_handlers with
        Libtas.on_data = (fun _ d -> Buffer.add_bytes received d);
      });
  let count = ref 0 and dropped = ref false in
  Port.set_deliver net.Topology.b.Topology.uplink (fun pkt ->
      if
        Bytes.length pkt.Tas_proto.Packet.payload > 0
        && (incr count;
            !count = 5)
        && not !dropped
      then dropped := true
      else Tas_netsim.Nic.input net.Topology.a.Topology.nic pkt);
  let n = 50_000 in
  let payload = Bytes.init n (fun i -> Char.chr (i land 0xff)) in
  let sent = ref 0 in
  let push c =
    while
      !sent < n
      &&
      let k = E.send c (Bytes.sub payload !sent (min 4096 (n - !sent))) in
      sent := !sent + k;
      k > 0
    do
      ()
    done
  in
  ignore
    (E.connect peer ~dst_ip:(Tas_netsim.Nic.ip net.Topology.a.Topology.nic)
       ~dst_port:7
       {
         E.null_callbacks with
         E.on_connected = (fun c -> push c);
         E.on_sendable = (fun c _ -> push c);
       });
  Sim.run ~until:(Time_ns.sec 3) sim;
  let stats = Fast_path.stats (Tas.fast_path tas) in
  Alcotest.(check int) "nothing stored out of order" 0
    stats.Fast_path.ooo_stored;
  Alcotest.(check bool) "payload drops instead" true
    (stats.Fast_path.payload_drops > 0);
  Alcotest.(check int) "stream still completes (go-back-N)" n
    (Buffer.length received);
  Alcotest.(check string) "stream intact" (Bytes.to_string payload)
    (Buffer.contents received)

let test_dynamic_scaling_up_down () =
  let config =
    {
      Config.default with
      Config.max_fast_path_cores = 4;
      dynamic_scaling = true;
      scale_check_interval_ns = Time_ns.ms 5;
      (* Inflate costs so modest load saturates a core. *)
      fp_rx_cycles = 20_000;
      fp_tx_cycles = 10_000;
      fp_ack_rx_cycles = 5_000;
    }
  in
  let sim, net, tas, lt, peer = make ~config () in
  Alcotest.(check int) "starts with 1 core" 1
    (Fast_path.active_cores (Tas.fast_path tas));
  Libtas.listen lt ~port:7 ~ctx_of_tuple:(fun _ -> 0) (fun _ ->
      {
        Libtas.null_handlers with
        Libtas.on_data = (fun s d -> ignore (Libtas.send s d));
      });
  (* 32 closed-loop connections at full tilt. *)
  let stop = ref false in
  for _ = 1 to 32 do
    let cb =
      {
        E.null_callbacks with
        E.on_connected = (fun c -> ignore (E.send c (Bytes.make 64 'x')));
        E.on_receive =
          (fun c _ -> if not !stop then ignore (E.send c (Bytes.make 64 'x')));
      }
    in
    ignore
      (E.connect peer ~dst_ip:(Tas_netsim.Nic.ip net.Topology.a.Topology.nic)
         ~dst_port:7 cb)
  done;
  Sim.run ~until:(Time_ns.ms 100) sim;
  let peak = Fast_path.active_cores (Tas.fast_path tas) in
  Alcotest.(check bool)
    (Printf.sprintf "scaled up under load (%d cores)" peak)
    true (peak >= 2);
  (* Quiesce: cores must be released again. *)
  stop := true;
  Sim.run ~until:(Sim.now sim + Time_ns.ms 200) sim;
  Alcotest.(check int) "scaled back down when idle" 1
    (Fast_path.active_cores (Tas.fast_path tas))

let test_core_split_matches_table6 () =
  (* Paper Table 6: sockets splits 2->1/1, 4->2/2, 8->5/3, 12->7/5, 16->9/7;
     low-level splits evenly. *)
  List.iter
    (fun (total, expected) ->
      Alcotest.(check (pair int int))
        (Printf.sprintf "SO split at %d cores" total)
        expected
        (Scenario.core_split Scenario.Tas_so ~total ~app_cycles:680))
    [ (2, (1, 1)); (4, (2, 2)); (8, (5, 3)); (12, (7, 5)); (16, (9, 7)) ];
  List.iter
    (fun (total, expected) ->
      Alcotest.(check (pair int int))
        (Printf.sprintf "LL split at %d cores" total)
        expected
        (Scenario.core_split Scenario.Tas_ll ~total ~app_cycles:680))
    [ (2, (1, 1)); (4, (2, 2)); (8, (4, 4)); (12, (6, 6)); (16, (8, 8)) ]

let test_context_event_coalescing () =
  (* Multiple payload deposits while the app is busy produce a single
     Readable event per flow. *)
  let ctx = Tas_core.Context.create ~id:0 ~capacity:8 in
  let sim = Sim.create () in
  let bucket =
    Tas_core.Rate_bucket.create sim (Tas_core.Rate_bucket.Window 65536)
      ~burst_bytes:0
  in
  let flow =
    Tas_core.Flow_state.create ~opaque:1 ~context:0 ~bucket ~rx_buf_size:1024
      ~tx_buf_size:1024 ~local_port:1 ~peer_ip:2 ~peer_port:3 ~peer_mac:4
      ~tx_iss:0 ~rx_next:0 ~window:1000 ~peer_wscale:0 ()
  in
  let wakes = ref 0 in
  Tas_core.Context.set_waker ctx (fun () -> incr wakes);
  Tas_core.Context.post_readable ctx flow;
  Tas_core.Context.post_readable ctx flow;
  Tas_core.Context.post_readable ctx flow;
  Alcotest.(check int) "coalesced to one event" 1
    (Tas_core.Context.pending ctx);
  Alcotest.(check int) "single wake" 1 !wakes;
  (match Tas_core.Context.pop ctx with
  | Some (Tas_core.Context.Readable f) ->
    Alcotest.(check bool) "same flow" true (f == flow)
  | _ -> Alcotest.fail "expected Readable");
  (* After consumption, a new deposit re-notifies. *)
  Tas_core.Context.post_readable ctx flow;
  Alcotest.(check int) "re-armed after pop" 1 (Tas_core.Context.pending ctx)

let suite =
  [
    Alcotest.test_case "receiver OOO interval heals a drop" `Quick
      test_ooo_interval_on_receive;
    Alcotest.test_case "dup-ACK fast recovery" `Quick
      test_fast_recovery_on_dupacks;
    Alcotest.test_case "slow-path timeout retransmit" `Quick
      test_slow_path_timeout_retransmit;
    Alcotest.test_case "simple recovery drops OOO" `Quick
      test_simple_recovery_mode_drops_ooo;
    Alcotest.test_case "dynamic core scaling up and down" `Quick
      test_dynamic_scaling_up_down;
    Alcotest.test_case "core split matches Table 6" `Quick
      test_core_split_matches_table6;
    Alcotest.test_case "context event coalescing" `Quick
      test_context_event_coalescing;
  ]
