(* Unit tests for the CPU model, cost profiles, RTT estimation and the
   congestion-control algorithms. *)

module Sim = Tas_engine.Sim
module Core = Tas_cpu.Core
module Cost_model = Tas_cpu.Cost_model
module Rtt = Tas_tcp.Rtt
module Window_cc = Tas_tcp.Window_cc
module Interval_cc = Tas_tcp.Interval_cc

(* --- Core ------------------------------------------------------------------ *)

let test_core_serializes_work () =
  let sim = Sim.create () in
  let core = Core.create sim ~freq_ghz:2.0 ~id:0 () in
  let finish_times = ref [] in
  (* 2000 cycles at 2 GHz = 1000 ns each; three items queue up. *)
  for _ = 1 to 3 do
    Core.run core ~cycles:2000 (fun () ->
        finish_times := Sim.now sim :: !finish_times)
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "FIFO completion" [ 1000; 2000; 3000 ]
    (List.rev !finish_times);
  Alcotest.(check int) "busy accounting" 3000 (Core.busy_ns core)

let test_core_idle_gap () =
  let sim = Sim.create () in
  let core = Core.create sim ~freq_ghz:1.0 ~id:0 () in
  Core.run core ~cycles:100 ignore;
  ignore
    (Sim.schedule sim 1000 (fun () ->
         Core.run core ~cycles:100 (fun () ->
             Alcotest.(check int) "starts when submitted, not backlogged" 1100
               (Sim.now sim))));
  Sim.run sim;
  Alcotest.(check int) "busy excludes the idle gap" 200 (Core.busy_ns core)

let test_core_run_after () =
  let sim = Sim.create () in
  let core = Core.create sim ~freq_ghz:1.0 ~id:0 () in
  let fired = ref 0 in
  Core.run_after core ~delay:500 ~cycles:100 (fun () -> fired := Sim.now sim);
  Sim.run sim;
  Alcotest.(check int) "delay + execution" 600 !fired

let test_backlog () =
  let sim = Sim.create () in
  let core = Core.create sim ~freq_ghz:1.0 ~id:0 () in
  Core.run core ~cycles:5000 ignore;
  Alcotest.(check int) "backlog visible" 5000 (Core.backlog_ns core);
  Sim.run sim;
  Alcotest.(check int) "backlog drains" 0 (Core.backlog_ns core)

(* --- Cost model ------------------------------------------------------------- *)

let test_cache_extra_zero_within_cache () =
  let extra =
    Cost_model.cache_extra_cycles Cost_model.linux ~conns:1000
      ~cache_bytes:Cost_model.l3_cache_bytes
  in
  Alcotest.(check int) "fits in cache: no penalty" 0 extra

let test_cache_extra_monotone () =
  let extra_at conns =
    Cost_model.cache_extra_cycles Cost_model.linux ~conns
      ~cache_bytes:Cost_model.l3_cache_bytes
  in
  Alcotest.(check bool) "grows with conns" true
    (extra_at 32_000 > 0
    && extra_at 96_000 > extra_at 32_000
    && extra_at 96_000 > extra_at 64_000)

let test_tas_state_small () =
  Alcotest.(check int) "paper Table 3 record size" 102
    Tas_core.Flow_state.state_bytes;
  (* 96K flows of TAS state fit in a few cores' L2/L3. *)
  let footprint = 96_000 * Cost_model.tas_fast_path.Cost_model.state_bytes_per_conn in
  Alcotest.(check bool) "96K flows < 5 cores of cache" true
    (footprint < 5 * Cost_model.l23_cache_bytes_per_core)

let test_table1_totals () =
  (* Base (uncached) per-request stack cycles of each profile, against the
     paper's Table 1 (Linux's measured value includes ~6.6kc of stalls that
     our cache model adds back at 32K connections). *)
  let ix = Cost_model.stack_request_cycles Cost_model.ix in
  Alcotest.(check bool)
    (Printf.sprintf "IX ~1.97kc stack (got %d)" ix)
    true
    (ix > 1800 && ix < 2100);
  let linux_base = Cost_model.stack_request_cycles Cost_model.linux in
  let linux_32k =
    linux_base
    + Cost_model.cache_extra_cycles Cost_model.linux ~conns:32_000
        ~cache_bytes:Cost_model.l3_cache_bytes
  in
  Alcotest.(check bool)
    (Printf.sprintf "Linux at 32K conns ~15.7kc stack (got %d)" linux_32k)
    true
    (linux_32k > 14_000 && linux_32k < 17_500)

(* --- RTT estimator ------------------------------------------------------------ *)

let test_rtt_convergence () =
  let rtt = Rtt.create () in
  for _ = 1 to 50 do
    Rtt.sample rtt 100_000
  done;
  Alcotest.(check bool) "srtt converges to sample" true
    (abs (Rtt.srtt_ns rtt - 100_000) < 2_000);
  Alcotest.(check bool) "rto >= srtt" true (Rtt.rto_ns rtt >= Rtt.srtt_ns rtt)

let test_rtt_backoff () =
  let rtt = Rtt.create () in
  Rtt.sample rtt 1_000_000;
  let base = Rtt.rto_ns rtt in
  Rtt.backoff rtt;
  Alcotest.(check int) "doubles" (min 4_000_000_000 (base * 2)) (Rtt.rto_ns rtt);
  Rtt.reset_backoff rtt;
  Alcotest.(check int) "reset" base (Rtt.rto_ns rtt)

let test_rtt_min_clamp () =
  let rtt = Rtt.create () in
  Rtt.sample rtt 1_000;
  Alcotest.(check bool) "clamped to min 1ms" true (Rtt.rto_ns rtt >= 1_000_000)

let test_rtt_configurable_floor () =
  (* A raised floor binds even after tiny samples... *)
  let rtt = Rtt.create ~min_rto_ns:5_000_000 () in
  for _ = 1 to 50 do
    Rtt.sample rtt 1_000
  done;
  Alcotest.(check bool) "raised floor binds" true (Rtt.rto_ns rtt >= 5_000_000);
  (* ...and a floor below the hard 1 ms minimum is ignored. *)
  let rtt = Rtt.create ~min_rto_ns:10 () in
  for _ = 1 to 50 do
    Rtt.sample rtt 1_000
  done;
  Alcotest.(check bool) "hard floor still binds" true
    (Rtt.rto_ns rtt >= 1_000_000)

let test_rtt_karn_discards_retransmit_samples () =
  let rtt = Rtt.create () in
  for _ = 1 to 20 do
    Rtt.sample rtt 100_000
  done;
  let srtt = Rtt.srtt_ns rtt and var = Rtt.rttvar_ns rtt in
  let rto = Rtt.rto_ns rtt in
  (* A wildly wrong sample measured against a retransmitted segment must
     leave the estimator completely untouched (Karn's algorithm). *)
  Rtt.sample ~retransmitted:true rtt 900_000_000;
  Alcotest.(check int) "srtt unchanged" srtt (Rtt.srtt_ns rtt);
  Alcotest.(check int) "rttvar unchanged" var (Rtt.rttvar_ns rtt);
  Alcotest.(check int) "rto unchanged" rto (Rtt.rto_ns rtt);
  (* Karn also applies before the first sample: the estimator stays unseeded. *)
  let fresh = Rtt.create () in
  Rtt.sample ~retransmitted:true fresh 900_000_000;
  Alcotest.(check int) "no first sample taken" 0 (Rtt.srtt_ns fresh)

(* --- Window CC ----------------------------------------------------------------- *)

let test_newreno_slow_start_doubles () =
  let cc = Window_cc.create Window_cc.Newreno ~mss:1000 ~initial_window:10_000 in
  Alcotest.(check bool) "starts in slow start" true (Window_cc.in_slow_start cc);
  Window_cc.on_ack cc ~acked:10_000 ~ecn:false;
  Alcotest.(check int) "cwnd grows by acked in slow start" 20_000
    (Window_cc.cwnd cc)

let test_newreno_fast_retransmit_halves () =
  let cc = Window_cc.create Window_cc.Newreno ~mss:1000 ~initial_window:40_000 in
  Window_cc.on_fast_retransmit cc;
  Alcotest.(check int) "halved" 20_000 (Window_cc.cwnd cc);
  Alcotest.(check bool) "out of slow start" false (Window_cc.in_slow_start cc)

let test_newreno_timeout_collapses () =
  let cc = Window_cc.create Window_cc.Newreno ~mss:1000 ~initial_window:40_000 in
  Window_cc.on_timeout cc;
  Alcotest.(check int) "one segment" 1000 (Window_cc.cwnd cc)

let test_newreno_congestion_avoidance_linear () =
  let cc = Window_cc.create Window_cc.Newreno ~mss:1000 ~initial_window:10_000 in
  Window_cc.on_fast_retransmit cc (* exit slow start at 5000 *);
  let w0 = Window_cc.cwnd cc in
  (* One full window of acks adds ~1 MSS. *)
  Window_cc.on_ack cc ~acked:w0 ~ecn:false;
  Alcotest.(check int) "+1 MSS per window" (w0 + 1000) (Window_cc.cwnd cc)

let test_dctcp_proportional_decrease () =
  let cc = Window_cc.create Window_cc.Dctcp ~mss:1000 ~initial_window:100_000 in
  (* Saturate alpha with fully-marked windows, then expect ~cwnd/2 cuts. *)
  for _ = 1 to 30 do
    Window_cc.on_ack cc ~acked:(Window_cc.cwnd cc) ~ecn:true
  done;
  Alcotest.(check bool)
    (Printf.sprintf "alpha ~1 (got %.2f)" (Window_cc.alpha cc))
    true
    (Window_cc.alpha cc > 0.7);
  let w = Window_cc.cwnd cc in
  Window_cc.on_ack cc ~acked:w ~ecn:true;
  Alcotest.(check bool) "window cut towards half" true
    (Window_cc.cwnd cc <= w)

let test_dctcp_unmarked_grows () =
  let cc = Window_cc.create Window_cc.Dctcp ~mss:1000 ~initial_window:10_000 in
  let w0 = Window_cc.cwnd cc in
  Window_cc.on_ack cc ~acked:10_000 ~ecn:false;
  Alcotest.(check bool) "grows when unmarked" true (Window_cc.cwnd cc > w0);
  Alcotest.(check (float 1e-9)) "alpha stays 0" 0.0 (Window_cc.alpha cc)

(* --- Interval CC (TAS slow path) -------------------------------------------------- *)

let fb ?(acked = 100_000) ?(ecn = 0) ?(frexmit = 0) ?(timeouts = 0)
    ?(rtt = 100_000) ?(interval = 1_000_000) () =
  {
    Interval_cc.acked_bytes = acked;
    ecn_bytes = ecn;
    fast_retransmits = frexmit;
    timeouts;
    rtt_ns = rtt;
    interval_ns = interval;
  }

let rate t =
  match Interval_cc.current t with
  | Interval_cc.Rate_bps r -> r
  | Interval_cc.Window_bytes _ -> Alcotest.fail "expected rate"

let test_dctcp_rate_slow_start () =
  let t =
    Interval_cc.create
      (Interval_cc.Dctcp_rate { step_bps = 10e6 })
      ~initial:(Interval_cc.Rate_bps 100e6)
  in
  (* Achieved matches rate: doubling, uncapped. *)
  ignore (Interval_cc.update t (fb ~acked:12_500_000 ~interval:1_000_000_000 ()));
  Alcotest.(check bool)
    (Printf.sprintf "slow start doubles (got %.0f)" (rate t))
    true
    (abs_float (rate t -. 200e6) < 1e6)

let test_dctcp_rate_cap_at_achieved () =
  let t =
    Interval_cc.create
      (Interval_cc.Dctcp_rate { step_bps = 10e6 })
      ~initial:(Interval_cc.Rate_bps 10e9)
  in
  (* Achieved only 1 Gbps: the cap pulls the rate towards 1.2x achieved. *)
  ignore (Interval_cc.update t (fb ~acked:125_000_000 ~interval:1_000_000_000 ()));
  Alcotest.(check bool)
    (Printf.sprintf "capped near 1.2x achieved (got %.2fG)" (rate t /. 1e9))
    true
    (rate t <= 1.2 *. 1e9 *. 2.0 +. 1e7)

let test_dctcp_rate_ecn_decrease () =
  let t =
    Interval_cc.create
      (Interval_cc.Dctcp_rate { step_bps = 10e6 })
      ~initial:(Interval_cc.Rate_bps 1e9)
  in
  let r0 = rate t in
  ignore
    (Interval_cc.update t
       (fb ~acked:125_000_000 ~ecn:125_000_000 ~interval:1_000_000_000 ()));
  Alcotest.(check bool) "rate decreases under full marking" true (rate t < r0)

let test_dctcp_rate_frexmit_halves () =
  let t =
    Interval_cc.create
      (Interval_cc.Dctcp_rate { step_bps = 10e6 })
      ~initial:(Interval_cc.Rate_bps 1e9)
  in
  ignore
    (Interval_cc.update t
       (fb ~acked:125_000_000 ~frexmit:1 ~interval:1_000_000_000 ()));
  Alcotest.(check bool)
    (Printf.sprintf "halved (got %.2fG)" (rate t /. 1e9))
    true
    (rate t <= 0.51e9)

let test_dctcp_rate_starved_holds () =
  let t =
    Interval_cc.create
      (Interval_cc.Dctcp_rate { step_bps = 10e6 })
      ~initial:(Interval_cc.Rate_bps 1e9)
  in
  ignore (Interval_cc.update t (fb ~acked:0 ()));
  Alcotest.(check (float 1.0)) "no growth without feedback" 1e9 (rate t)

let test_rate_floor () =
  let t =
    Interval_cc.create
      (Interval_cc.Dctcp_rate { step_bps = 10e6 })
      ~initial:(Interval_cc.Rate_bps 2e6)
  in
  for _ = 1 to 20 do
    ignore (Interval_cc.update t (fb ~acked:1000 ~frexmit:1 ()))
  done;
  Alcotest.(check bool) "floor at 1 Mbps" true (rate t >= 1e6)

let test_timely_rtt_gradient () =
  let t =
    Interval_cc.create
      (Interval_cc.Timely
         { t_low_ns = 50_000; t_high_ns = 500_000; addstep_bps = 10e6 })
      ~initial:(Interval_cc.Rate_bps 1e9)
  in
  (* Low RTT: grow. *)
  ignore (Interval_cc.update t (fb ~rtt:20_000 ()));
  Alcotest.(check bool) "grows below t_low" true (rate t >= 1e9);
  (* Very high RTT: multiplicative decrease. *)
  let r0 = rate t in
  ignore (Interval_cc.update t (fb ~rtt:2_000_000 ()));
  Alcotest.(check bool) "cuts above t_high" true (rate t < r0)

let test_window_dctcp_interval () =
  let t =
    Interval_cc.create
      (Interval_cc.Window_dctcp { mss = 1460 })
      ~initial:(Interval_cc.Window_bytes 14_600)
  in
  ignore (Interval_cc.update t (fb ~acked:14_600 ()));
  (match Interval_cc.current t with
  | Interval_cc.Window_bytes w ->
    Alcotest.(check int) "slow start doubles window" 29_200 w
  | _ -> Alcotest.fail "expected window");
  ignore (Interval_cc.update t (fb ~acked:29_200 ~timeouts:1 ()));
  match Interval_cc.current t with
  | Interval_cc.Window_bytes w ->
    Alcotest.(check int) "timeout collapses to 1 MSS" 1460 w
  | _ -> Alcotest.fail "expected window"

let suite =
  [
    Alcotest.test_case "core serializes work" `Quick test_core_serializes_work;
    Alcotest.test_case "core idle gap" `Quick test_core_idle_gap;
    Alcotest.test_case "core run_after" `Quick test_core_run_after;
    Alcotest.test_case "core backlog" `Quick test_backlog;
    Alcotest.test_case "cache: no penalty in cache" `Quick
      test_cache_extra_zero_within_cache;
    Alcotest.test_case "cache: monotone growth" `Quick test_cache_extra_monotone;
    Alcotest.test_case "TAS per-flow state is small" `Quick test_tas_state_small;
    Alcotest.test_case "Table 1 calibration" `Quick test_table1_totals;
    Alcotest.test_case "rtt convergence" `Quick test_rtt_convergence;
    Alcotest.test_case "rtt backoff" `Quick test_rtt_backoff;
    Alcotest.test_case "rtt min clamp" `Quick test_rtt_min_clamp;
    Alcotest.test_case "rtt configurable rto floor" `Quick
      test_rtt_configurable_floor;
    Alcotest.test_case "rtt karn discards retransmit samples" `Quick
      test_rtt_karn_discards_retransmit_samples;
    Alcotest.test_case "newreno slow start" `Quick test_newreno_slow_start_doubles;
    Alcotest.test_case "newreno fast retransmit" `Quick
      test_newreno_fast_retransmit_halves;
    Alcotest.test_case "newreno timeout" `Quick test_newreno_timeout_collapses;
    Alcotest.test_case "newreno congestion avoidance" `Quick
      test_newreno_congestion_avoidance_linear;
    Alcotest.test_case "dctcp proportional decrease" `Quick
      test_dctcp_proportional_decrease;
    Alcotest.test_case "dctcp grows unmarked" `Quick test_dctcp_unmarked_grows;
    Alcotest.test_case "rate dctcp slow start" `Quick test_dctcp_rate_slow_start;
    Alcotest.test_case "rate dctcp achieved cap" `Quick
      test_dctcp_rate_cap_at_achieved;
    Alcotest.test_case "rate dctcp ecn decrease" `Quick
      test_dctcp_rate_ecn_decrease;
    Alcotest.test_case "rate dctcp frexmit halves" `Quick
      test_dctcp_rate_frexmit_halves;
    Alcotest.test_case "rate dctcp starvation hold" `Quick
      test_dctcp_rate_starved_holds;
    Alcotest.test_case "rate floor" `Quick test_rate_floor;
    Alcotest.test_case "timely gradient" `Quick test_timely_rtt_gradient;
    Alcotest.test_case "window dctcp interval" `Quick test_window_dctcp_interval;
  ]
