(* pcap export round-trip, and slow-path edge cases: listener refusal and
   connect() to a dead port. *)

module Sim = Tas_engine.Sim
module Time_ns = Tas_engine.Time_ns
module Core = Tas_cpu.Core
module Topology = Tas_netsim.Topology
module Port = Tas_netsim.Port
module Nic = Tas_netsim.Nic
module Tap = Tas_netsim.Tap
module Pcap = Tas_netsim.Pcap
module Packet = Tas_proto.Packet
module Config = Tas_core.Config
module Tas = Tas_core.Tas
module Libtas = Tas_core.Libtas
module Slow_path = Tas_core.Slow_path
module E = Tas_baseline.Tcp_engine

let test_pcap_roundtrip () =
  let sim = Sim.create () in
  let tap = Tap.create () in
  let deliver = Tap.wrap tap sim ignore in
  let tcp =
    {
      Tas_proto.Tcp_header.src_port = 80;
      dst_port = 12345;
      seq = 42;
      ack = 7;
      flags = Tas_proto.Tcp_header.data_flags;
      window = 1000;
      options = Tas_proto.Tcp_header.no_options;
    }
  in
  let mk len =
    Packet.make ~src_mac:1 ~dst_mac:2 ~src_ip:(Tas_proto.Addr.host_ip 1)
      ~dst_ip:(Tas_proto.Addr.host_ip 2) ~tcp ~payload:(Bytes.create len) ()
  in
  ignore (Sim.schedule sim 1_500 (fun () -> deliver (mk 10)));
  ignore (Sim.schedule sim 2_000_000_001 (fun () -> deliver (mk 100)));
  Sim.run sim;
  let image = Pcap.to_bytes (Tap.records tap) in
  let parsed = Pcap.parse image in
  Alcotest.(check int) "two records" 2 (List.length parsed);
  (match parsed with
  | [ a; b ] ->
    Alcotest.(check int) "first timestamp" 1_500 a.Pcap.ts_ns;
    Alcotest.(check int) "second timestamp (past 1s)" 2_000_000_001
      b.Pcap.ts_ns;
    (* Frames re-parse into the original packets with valid checksums. *)
    let p = Packet.of_wire a.Pcap.frame in
    Alcotest.(check bool) "checksum valid" true
      (Packet.tcp_checksum_ok a.Pcap.frame);
    Alcotest.(check int) "payload preserved" 10 (Packet.payload_len p)
  | _ -> Alcotest.fail "expected two records");
  (* File writing works too. *)
  let path = Filename.temp_file "tas" ".pcap" in
  Pcap.write_file path (Tap.records tap);
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let buf = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  Alcotest.(check int) "file image identical" (Bytes.length image) len;
  Alcotest.(check bool) "file parses" true
    (List.length (Pcap.parse (Bytes.of_string buf)) = 2)

let test_pcap_rejects_garbage () =
  Alcotest.(check bool) "short file rejected" true
    (try
       ignore (Pcap.parse (Bytes.create 10));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad magic rejected" true
    (try
       ignore (Pcap.parse (Bytes.make 24 'x'));
       false
     with Invalid_argument _ -> true)

let make_tas_pair () =
  let sim = Sim.create () in
  let net = Topology.point_to_point sim ~queues_per_nic:4 () in
  let tas =
    Tas.create sim ~nic:net.Topology.a.Topology.nic ~config:Config.default ()
  in
  let lt =
    Tas.app tas ~app_cores:[| Core.create sim ~id:100 () |] ~api:Libtas.Sockets
  in
  let peer = E.create sim net.Topology.b.Topology.nic E.default_config in
  E.attach peer;
  (sim, net, tas, lt, peer)

let test_connect_to_dead_port_fails () =
  (* TAS connecting to a port nobody listens on: SYN retries, then the
     failure callback fires. *)
  let sim, net, _tas, lt, _peer = make_tas_pair () in
  let failed = ref false in
  ignore
    (Libtas.connect lt ~ctx:0
       ~dst_ip:(Nic.ip net.Topology.b.Topology.nic) ~dst_port:4444
       {
         Libtas.null_handlers with
         Libtas.on_connect_failed = (fun _ _ -> failed := true);
       });
  Sim.run ~until:(Time_ns.sec 2) sim;
  Alcotest.(check bool) "connect eventually fails" true !failed

let test_listener_refusal () =
  (* A slow-path listener that refuses connections: the client must not
     establish. *)
  let sim, net, tas, _lt, peer = make_tas_pair () in
  Slow_path.listen (Tas.slow_path tas) ~port:7 (fun _ -> None);
  let connected = ref false in
  ignore
    (E.connect peer ~dst_ip:(Nic.ip net.Topology.a.Topology.nic) ~dst_port:7
       {
         E.null_callbacks with
         E.on_connected = (fun _ -> connected := true);
       });
  Sim.run ~until:(Time_ns.ms 300) sim;
  Alcotest.(check bool) "refused connection never establishes" false
    !connected;
  Alcotest.(check int) "no flow installed" 0
    (Slow_path.flow_count (Tas.slow_path tas))

let test_half_close_data_still_flows () =
  (* Client closes its sending side; TAS app can still send until it closes
     (half-close). *)
  let sim, net, _tas, lt, peer = make_tas_pair () in
  let got_at_peer = Buffer.create 64 in
  E.listen peer ~port:1 (fun _ -> E.null_callbacks);
  ignore peer;
  (* TAS listens; when the peer closes, the TAS app sends a final message
     before closing. *)
  Libtas.listen lt ~port:7 ~ctx_of_tuple:(fun _ -> 0) (fun _ ->
      {
        Libtas.null_handlers with
        Libtas.on_peer_closed =
          (fun sock ->
            ignore (Libtas.send sock (Bytes.of_string "goodbye"));
            Libtas.close sock);
      });
  ignore
    (E.connect peer ~dst_ip:(Nic.ip net.Topology.a.Topology.nic) ~dst_port:7
       {
         E.null_callbacks with
         E.on_connected = (fun c -> E.close c);
         E.on_receive = (fun _ d -> Buffer.add_bytes got_at_peer d);
       });
  Sim.run ~until:(Time_ns.sec 1) sim;
  Alcotest.(check string) "data delivered after half-close" "goodbye"
    (Buffer.contents got_at_peer)

let test_multi_context_app () =
  (* Connections spread across several application threads (contexts). *)
  let sim = Sim.create () in
  let net = Topology.point_to_point sim ~queues_per_nic:4 () in
  let tas =
    Tas.create sim ~nic:net.Topology.a.Topology.nic ~config:Config.default ()
  in
  let cores = Array.init 3 (fun i -> Core.create sim ~id:(100 + i) ()) in
  let lt = Tas.app tas ~app_cores:cores ~api:Libtas.Sockets in
  let peer = E.create sim net.Topology.b.Topology.nic E.default_config in
  E.attach peer;
  let next = ref 0 in
  Libtas.listen lt ~port:7
    ~ctx_of_tuple:(fun _ ->
      incr next;
      !next mod 3)
    (fun _ ->
      {
        Libtas.null_handlers with
        Libtas.on_data = (fun sock d -> ignore (Libtas.send sock d));
      });
  let echoes = ref 0 in
  for _ = 1 to 30 do
    ignore
      (E.connect peer ~dst_ip:(Nic.ip net.Topology.a.Topology.nic) ~dst_port:7
         {
           E.null_callbacks with
           E.on_connected = (fun c -> ignore (E.send c (Bytes.make 32 'm')));
           E.on_receive = (fun _ _ -> incr echoes);
         })
  done;
  Sim.run ~until:(Time_ns.ms 100) sim;
  Alcotest.(check int) "all connections served" 30 !echoes;
  (* All three app cores did work. *)
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "core %d busy" i)
        true
        (Core.busy_ns c > 0))
    cores

let suite =
  [
    Alcotest.test_case "pcap round-trip" `Quick test_pcap_roundtrip;
    Alcotest.test_case "pcap rejects garbage" `Quick test_pcap_rejects_garbage;
    Alcotest.test_case "connect to dead port fails" `Quick
      test_connect_to_dead_port_fails;
    Alcotest.test_case "listener refusal" `Quick test_listener_refusal;
    Alcotest.test_case "half-close still delivers" `Quick
      test_half_close_data_still_flows;
    Alcotest.test_case "multi-context application" `Quick test_multi_context_app;
  ]
