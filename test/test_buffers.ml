(* Unit and property tests for ring buffers, SPSC queues, and the
   out-of-order interval tracker. *)

module Ring = Tas_buffers.Ring_buffer
module Spsc = Tas_buffers.Spsc_queue
module Ooo = Tas_buffers.Ooo_interval
module Seq32 = Tas_proto.Seq32

(* --- Ring buffer ------------------------------------------------------------ *)

let test_ring_basic () =
  let r = Ring.create 16 in
  Alcotest.(check int) "initially empty" 0 (Ring.used r);
  let n = Ring.push r (Bytes.of_string "hello") ~off:0 ~len:5 in
  Alcotest.(check int) "pushed 5" 5 n;
  Alcotest.(check int) "used 5" 5 (Ring.used r);
  let dst = Bytes.create 5 in
  let m = Ring.pop r ~dst ~dst_off:0 ~len:5 in
  Alcotest.(check int) "popped 5" 5 m;
  Alcotest.(check string) "content" "hello" (Bytes.to_string dst);
  Alcotest.(check int) "empty again" 0 (Ring.used r)

let test_ring_wrap () =
  let r = Ring.create 8 in
  ignore (Ring.push r (Bytes.of_string "abcdef") ~off:0 ~len:6);
  let dst = Bytes.create 4 in
  ignore (Ring.pop r ~dst ~dst_off:0 ~len:4);
  (* Now physically wrapped: push 6 more across the boundary. *)
  let n = Ring.push r (Bytes.of_string "ghijkl") ~off:0 ~len:6 in
  Alcotest.(check int) "pushed 6 across wrap" 6 n;
  let dst = Bytes.create 8 in
  let m = Ring.pop r ~dst ~dst_off:0 ~len:8 in
  Alcotest.(check int) "popped all" 8 m;
  Alcotest.(check string) "wrapped content in order" "efghijkl"
    (Bytes.to_string dst)

let test_ring_partial_push () =
  let r = Ring.create 4 in
  let n = Ring.push r (Bytes.of_string "abcdef") ~off:0 ~len:6 in
  Alcotest.(check int) "accepts only capacity" 4 n;
  Alcotest.(check int) "full" 0 (Ring.free r)

let test_ring_write_at_ooo () =
  (* Out-of-order deposit beyond head, then fill the gap. *)
  let r = Ring.create 16 in
  Ring.write_at r ~pos:4 (Bytes.of_string "heyo") ~off:0 ~len:4;
  Ring.write_at r ~pos:0 (Bytes.of_string "gap!") ~off:0 ~len:4;
  Ring.advance_head r 8;
  let dst = Bytes.create 8 in
  ignore (Ring.pop r ~dst ~dst_off:0 ~len:8);
  Alcotest.(check string) "gap filled in order" "gap!heyo" (Bytes.to_string dst)

let test_ring_bounds_checks () =
  let r = Ring.create 8 in
  Alcotest.(check bool) "write beyond window rejected" true
    (try
       Ring.write_at r ~pos:5 (Bytes.make 8 'x') ~off:0 ~len:8;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "advance_tail beyond head rejected" true
    (try
       Ring.advance_tail r 1;
       false
     with Invalid_argument _ -> true)

let prop_ring_fifo =
  (* Interleaved pushes and pops preserve byte order (reference: Buffer). *)
  QCheck.Test.make ~name:"ring buffer is FIFO under random ops" ~count:200
    QCheck.(list (pair bool (int_range 1 32)))
    (fun ops ->
      let r = Ring.create 64 in
      let reference = Queue.create () in
      let next = ref 0 in
      let ok = ref true in
      List.iter
        (fun (is_push, len) ->
          if is_push then begin
            let data =
              Bytes.init len (fun _ ->
                  incr next;
                  Char.chr (!next land 0xff))
            in
            let accepted = Ring.push r data ~off:0 ~len in
            for i = 0 to accepted - 1 do
              Queue.add (Bytes.get data i) reference
            done;
            (* Rewind [next] for bytes not accepted so streams agree. *)
            next := !next - (len - accepted)
          end
          else begin
            let dst = Bytes.create len in
            let got = Ring.pop r ~dst ~dst_off:0 ~len in
            for i = 0 to got - 1 do
              match Queue.take_opt reference with
              | Some c -> if c <> Bytes.get dst i then ok := false
              | None -> ok := false
            done
          end)
        ops;
      !ok && Ring.used r = Queue.length reference)

(* --- SPSC queue ------------------------------------------------------------- *)

let test_spsc_fifo () =
  let q = Spsc.create 4 in
  Alcotest.(check bool) "push 1" true (Spsc.try_push q 1);
  Alcotest.(check bool) "push 2" true (Spsc.try_push q 2);
  Alcotest.(check (option int)) "peek" (Some 1) (Spsc.peek q);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Spsc.try_pop q);
  Alcotest.(check (option int)) "pop 2" (Some 2) (Spsc.try_pop q);
  Alcotest.(check (option int)) "empty" None (Spsc.try_pop q)

let test_spsc_full () =
  let q = Spsc.create 2 in
  Alcotest.(check bool) "push a" true (Spsc.try_push q 'a');
  Alcotest.(check bool) "push b" true (Spsc.try_push q 'b');
  Alcotest.(check bool) "full rejects" false (Spsc.try_push q 'c');
  ignore (Spsc.try_pop q);
  Alcotest.(check bool) "slot freed" true (Spsc.try_push q 'c')

let test_spsc_drain () =
  let q = Spsc.create 8 in
  List.iter (fun x -> ignore (Spsc.try_push q x)) [ 1; 2; 3; 4; 5 ];
  let acc = ref [] in
  let n = Spsc.drain q (fun x -> acc := x :: !acc) in
  Alcotest.(check int) "drained all" 5 n;
  Alcotest.(check (list int)) "in order" [ 1; 2; 3; 4; 5 ] (List.rev !acc)

let prop_spsc_conservation =
  QCheck.Test.make ~name:"spsc: pops = accepted pushes, in order" ~count:200
    QCheck.(list (option (int_bound 1000)))
    (fun ops ->
      (* Some x = push x, None = pop. *)
      let q = Spsc.create 8 in
      let model = Queue.create () in
      List.for_all
        (fun op ->
          match op with
          | Some x ->
            let pushed = Spsc.try_push q x in
            if pushed then Queue.add x model;
            Spsc.length q = Queue.length model
          | None -> (
            match (Spsc.try_pop q, Queue.take_opt model) with
            | Some a, Some b -> a = b
            | None, None -> true
            | _ -> false))
        ops)

(* --- Out-of-order interval --------------------------------------------------- *)

let test_ooo_in_order () =
  let o = Ooo.create () in
  match Ooo.handle o ~exp:1000 ~window:4096 ~seg_start:1000 ~seg_len:100 with
  | Ooo.Deliver { write_at; write_len; advance } ->
    Alcotest.(check int) "write at exp" 1000 write_at;
    Alcotest.(check int) "full segment" 100 write_len;
    Alcotest.(check int) "advance" 100 advance;
    Alcotest.(check bool) "no interval stored" true (Ooo.is_empty o)
  | _ -> Alcotest.fail "expected Deliver"

let test_ooo_store_and_merge () =
  let o = Ooo.create () in
  (* Segment beyond the expected seq: stored. *)
  (match Ooo.handle o ~exp:1000 ~window:4096 ~seg_start:1100 ~seg_len:100 with
  | Ooo.Store { write_at; write_len } ->
    Alcotest.(check int) "stored at" 1100 write_at;
    Alcotest.(check int) "stored len" 100 write_len
  | _ -> Alcotest.fail "expected Store");
  (* Adjacent extension. *)
  (match Ooo.handle o ~exp:1000 ~window:4096 ~seg_start:1200 ~seg_len:50 with
  | Ooo.Store _ -> ()
  | _ -> Alcotest.fail "expected Store for adjacent extension");
  Alcotest.(check (option (pair int int))) "interval grew"
    (Some (1100, 150)) (Ooo.interval o);
  (* Gap fill: delivers through the stored interval. *)
  match Ooo.handle o ~exp:1000 ~window:4096 ~seg_start:1000 ~seg_len:100 with
  | Ooo.Deliver { advance; _ } ->
    Alcotest.(check int) "advance covers merged interval" 250 advance;
    Alcotest.(check bool) "interval consumed" true (Ooo.is_empty o)
  | _ -> Alcotest.fail "expected Deliver"

let test_ooo_second_interval_dropped () =
  let o = Ooo.create () in
  ignore (Ooo.handle o ~exp:0 ~window:65536 ~seg_start:1000 ~seg_len:100);
  (* A segment in a *different* hole is dropped (single-interval limit). *)
  match Ooo.handle o ~exp:0 ~window:65536 ~seg_start:5000 ~seg_len:100 with
  | Ooo.Drop -> ()
  | _ -> Alcotest.fail "expected Drop for disjoint second interval"

let test_ooo_duplicate () =
  let o = Ooo.create () in
  match Ooo.handle o ~exp:500 ~window:4096 ~seg_start:100 ~seg_len:200 with
  | Ooo.Duplicate -> ()
  | _ -> Alcotest.fail "expected Duplicate for fully-old segment"

let test_ooo_window_clip () =
  let o = Ooo.create () in
  (* Only 50 bytes of window: in-order segment clipped. *)
  (match Ooo.handle o ~exp:0 ~window:50 ~seg_start:0 ~seg_len:100 with
  | Ooo.Deliver { write_len; advance; _ } ->
    Alcotest.(check int) "clipped to window" 50 write_len;
    Alcotest.(check int) "advance clipped" 50 advance
  | _ -> Alcotest.fail "expected clipped Deliver");
  (* Beyond-window OOO segment dropped outright. *)
  let o = Ooo.create () in
  match Ooo.handle o ~exp:0 ~window:50 ~seg_start:60 ~seg_len:10 with
  | Ooo.Drop -> ()
  | _ -> Alcotest.fail "expected Drop beyond window"

let test_ooo_partial_overlap_trim () =
  let o = Ooo.create () in
  (* Partially old: the prefix below exp must be trimmed. *)
  match Ooo.handle o ~exp:100 ~window:4096 ~seg_start:50 ~seg_len:100 with
  | Ooo.Deliver { write_at; write_len; advance } ->
    Alcotest.(check int) "trimmed to exp" 100 write_at;
    Alcotest.(check int) "only fresh bytes" 50 write_len;
    Alcotest.(check int) "advance" 50 advance
  | _ -> Alcotest.fail "expected trimmed Deliver"

(* --- Multi-range OOO (the SACK receiver configuration) ----------------- *)

let test_ooo_multi_disjoint_holes () =
  let o = Ooo.create ~max_ranges:4 () in
  (* Three disjoint holes all stored. *)
  List.iter
    (fun (s, l) ->
      match Ooo.handle o ~exp:0 ~window:65536 ~seg_start:s ~seg_len:l with
      | Ooo.Store _ -> ()
      | _ -> Alcotest.failf "expected Store at %d" s)
    [ (1000, 100); (3000, 100); (5000, 100) ];
  Alcotest.(check (list (pair int int)))
    "ranges ascending"
    [ (1000, 100); (3000, 100); (5000, 100) ]
    (Ooo.ranges o);
  Alcotest.(check (option (pair int int)))
    "interval is the lowest range" (Some (1000, 100)) (Ooo.interval o);
  (* SACK blocks: most recently touched first, as (start, end). *)
  Alcotest.(check (list (pair int int)))
    "sack order most-recent-first"
    [ (5000, 5100); (3000, 3100); (1000, 1100) ]
    (Ooo.sack_blocks o ~limit:3);
  Alcotest.(check int) "sack limit respected" 2
    (List.length (Ooo.sack_blocks o ~limit:2))

let test_ooo_adjacent_coalescing_across_ranges () =
  let o = Ooo.create ~max_ranges:4 () in
  ignore (Ooo.handle o ~exp:0 ~window:65536 ~seg_start:1000 ~seg_len:100);
  ignore (Ooo.handle o ~exp:0 ~window:65536 ~seg_start:1200 ~seg_len:100);
  (* The middle segment abuts both neighbours: one fused range remains. *)
  (match Ooo.handle o ~exp:0 ~window:65536 ~seg_start:1100 ~seg_len:100 with
  | Ooo.Store _ -> ()
  | _ -> Alcotest.fail "expected Store for bridging segment");
  Alcotest.(check (list (pair int int)))
    "bridged into one range" [ (1000, 300) ] (Ooo.ranges o);
  (* Gap fill delivers the whole fused run in one advance. *)
  match Ooo.handle o ~exp:0 ~window:65536 ~seg_start:0 ~seg_len:1000 with
  | Ooo.Deliver { advance; _ } ->
    Alcotest.(check int) "advance through fused range" 1300 advance;
    Alcotest.(check bool) "all consumed" true (Ooo.is_empty o)
  | _ -> Alcotest.fail "expected Deliver"

let test_ooo_seq_wraparound () =
  let open Tas_proto in
  let exp = Seq32.of_int 0xFFFF_FF80 in
  (* 128 bytes below the wrap point. *)
  let o = Ooo.create ~max_ranges:4 () in
  (* A hole that straddles 2^32: starts below the wrap, ends above it. *)
  let s1 = Seq32.add exp 256 in
  (* 0xFFFF_FF80 + 256 wraps to 0x80 *)
  (match Ooo.handle o ~exp ~window:65536 ~seg_start:s1 ~seg_len:512 with
  | Ooo.Store { write_at; write_len } ->
    Alcotest.(check int) "stored across wrap" (Seq32.add exp 256) write_at;
    Alcotest.(check int) "full length kept" 512 write_len
  | _ -> Alcotest.fail "expected Store across the wrap");
  (* Extend it with a segment entirely past the wrap point. *)
  (match
     Ooo.handle o ~exp ~window:65536 ~seg_start:(Seq32.add exp 768) ~seg_len:64
   with
  | Ooo.Store _ -> ()
  | _ -> Alcotest.fail "expected adjacent Store past the wrap");
  Alcotest.(check (list (pair int int)))
    "one range spanning the wrap"
    [ (Seq32.add exp 256, 576) ]
    (Ooo.ranges o);
  (* Filling the gap delivers through the wrap in one go. *)
  match Ooo.handle o ~exp ~window:65536 ~seg_start:exp ~seg_len:256 with
  | Ooo.Deliver { write_at; advance; _ } ->
    Alcotest.(check int) "write at pre-wrap exp" exp write_at;
    Alcotest.(check int) "advance through wrapped range" 832 advance
  | _ -> Alcotest.fail "expected Deliver through the wrap"

let test_ooo_eviction_at_capacity () =
  let o = Ooo.create ~max_ranges:2 () in
  ignore (Ooo.handle o ~exp:0 ~window:1_000_000 ~seg_start:10_000 ~seg_len:100);
  ignore (Ooo.handle o ~exp:0 ~window:1_000_000 ~seg_start:50_000 ~seg_len:100);
  (* Table full. A *closer* hole evicts the range furthest from exp. *)
  (match Ooo.handle o ~exp:0 ~window:1_000_000 ~seg_start:2_000 ~seg_len:100 with
  | Ooo.Store _ -> ()
  | _ -> Alcotest.fail "expected Store with eviction");
  Alcotest.(check (list (pair int int)))
    "furthest range evicted"
    [ (2_000, 100); (10_000, 100) ]
    (Ooo.ranges o);
  (* A *further* hole than everything tracked is dropped, not stored. *)
  match Ooo.handle o ~exp:0 ~window:1_000_000 ~seg_start:90_000 ~seg_len:100 with
  | Ooo.Drop -> ()
  | _ -> Alcotest.fail "expected Drop for furthest new hole at capacity"

(* Property: a random segment arrival sequence through the OOO tracker always
   delivers a prefix of the stream, never duplicates or reorders delivered
   bytes, and advance >= write_len only when merging. *)
let prop_ooo_stream_consistency =
  QCheck.Test.make
    ~name:"ooo: delivered stream advances monotonically and within bounds"
    ~count:300
    QCheck.(list (pair (int_bound 2000) (int_range 1 300)))
    (fun segs ->
      let o = Ooo.create () in
      let exp = ref 0 in
      let window = 1024 in
      List.for_all
        (fun (start, len) ->
          match
            Ooo.handle o ~exp:!exp ~window ~seg_start:(Seq32.of_int start)
              ~seg_len:len
          with
          | Ooo.Deliver { write_at; write_len; advance } ->
            let ok =
              write_at = !exp && write_len <= len && advance >= write_len
              && advance <= window
            in
            exp := Seq32.add !exp advance;
            ok
          | Ooo.Store { write_at; write_len } ->
            Seq32.gt write_at !exp && write_len > 0
            && Seq32.diff write_at !exp + write_len <= window
          | Ooo.Duplicate | Ooo.Drop -> true)
        segs)

let suite =
  [
    Alcotest.test_case "ring basic" `Quick test_ring_basic;
    Alcotest.test_case "ring wrap" `Quick test_ring_wrap;
    Alcotest.test_case "ring partial push" `Quick test_ring_partial_push;
    Alcotest.test_case "ring out-of-order deposit" `Quick test_ring_write_at_ooo;
    Alcotest.test_case "ring bounds checks" `Quick test_ring_bounds_checks;
    Alcotest.test_case "spsc fifo" `Quick test_spsc_fifo;
    Alcotest.test_case "spsc full" `Quick test_spsc_full;
    Alcotest.test_case "spsc drain" `Quick test_spsc_drain;
    Alcotest.test_case "ooo in-order" `Quick test_ooo_in_order;
    Alcotest.test_case "ooo store and merge" `Quick test_ooo_store_and_merge;
    Alcotest.test_case "ooo single-interval limit" `Quick
      test_ooo_second_interval_dropped;
    Alcotest.test_case "ooo duplicate" `Quick test_ooo_duplicate;
    Alcotest.test_case "ooo window clipping" `Quick test_ooo_window_clip;
    Alcotest.test_case "ooo partial overlap trim" `Quick
      test_ooo_partial_overlap_trim;
    Alcotest.test_case "ooo multi-range disjoint holes" `Quick
      test_ooo_multi_disjoint_holes;
    Alcotest.test_case "ooo adjacent coalescing across ranges" `Quick
      test_ooo_adjacent_coalescing_across_ranges;
    Alcotest.test_case "ooo 2^32 sequence wraparound" `Quick
      test_ooo_seq_wraparound;
    Alcotest.test_case "ooo eviction at capacity" `Quick
      test_ooo_eviction_at_capacity;
    QCheck_alcotest.to_alcotest prop_ring_fifo;
    QCheck_alcotest.to_alcotest prop_spsc_conservation;
    QCheck_alcotest.to_alcotest prop_ooo_stream_consistency;
  ]
