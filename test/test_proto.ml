(* Unit and property tests for the protocol layer: headers, checksums,
   sequence arithmetic, wire round-trips. *)

module Addr = Tas_proto.Addr
module Seq32 = Tas_proto.Seq32
module Checksum = Tas_proto.Checksum
module Eth = Tas_proto.Eth_header
module Ipv4 = Tas_proto.Ipv4_header
module Tcp = Tas_proto.Tcp_header
module Packet = Tas_proto.Packet

(* --- Addresses ------------------------------------------------------------ *)

let test_ipv4_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check string) s s (Addr.ipv4_to_string (Addr.ipv4_of_string s)))
    [ "0.0.0.0"; "10.0.0.1"; "192.168.1.255"; "255.255.255.255" ]

let test_ipv4_malformed () =
  List.iter
    (fun s ->
      Alcotest.(check bool) ("rejects " ^ s) true
        (try
           ignore (Addr.ipv4_of_string s);
           false
         with Invalid_argument _ -> true))
    [ "1.2.3"; "1.2.3.4.5"; "1.2.3.256"; "a.b.c.d"; "" ]

let test_host_addressing () =
  Alcotest.(check int) "host ip inverse" 1234
    (Addr.host_id_of_ip (Addr.host_ip 1234));
  Alcotest.(check bool) "distinct hosts distinct ips" true
    (Addr.host_ip 1 <> Addr.host_ip 2)

let test_four_tuple_flip () =
  let t =
    {
      Addr.Four_tuple.local_ip = Addr.host_ip 1;
      local_port = 80;
      peer_ip = Addr.host_ip 2;
      peer_port = 45000;
    }
  in
  let f = Addr.Four_tuple.flip t in
  Alcotest.(check bool) "flip . flip = id" true
    (Addr.Four_tuple.equal t (Addr.Four_tuple.flip f));
  Alcotest.(check bool) "flip differs" false (Addr.Four_tuple.equal t f);
  Alcotest.(check int) "sym_hash invariant under flip"
    (Addr.Four_tuple.sym_hash t) (Addr.Four_tuple.sym_hash f)

(* --- Seq32 ----------------------------------------------------------------- *)

let test_seq_wraparound () =
  let near_max = Seq32.of_int 0xFFFF_FFF0 in
  let wrapped = Seq32.add near_max 0x20 in
  Alcotest.(check int) "wraps modulo 2^32" 0x10 wrapped;
  Alcotest.(check bool) "wrapped value is after" true (Seq32.gt wrapped near_max);
  Alcotest.(check int) "diff across wrap" 0x20 (Seq32.diff wrapped near_max);
  Alcotest.(check int) "negative diff across wrap" (-0x20)
    (Seq32.diff near_max wrapped)

let test_seq_between () =
  Alcotest.(check bool) "in window" true
    (Seq32.between 150 ~low:100 ~high:200);
  Alcotest.(check bool) "below window" false
    (Seq32.between 50 ~low:100 ~high:200);
  Alcotest.(check bool) "at high edge excluded" false
    (Seq32.between 200 ~low:100 ~high:200);
  (* Window spanning the wrap point. *)
  let low = Seq32.of_int 0xFFFF_FF00 in
  let high = Seq32.add low 0x200 in
  Alcotest.(check bool) "wrap window contains 0" true
    (Seq32.between 0 ~low ~high)

let prop_seq_add_diff =
  QCheck.Test.make ~name:"seq32: diff (add s n) s = n" ~count:1000
    QCheck.(pair (int_bound 0xFFFFFFF) (int_range (-1_000_000) 1_000_000))
    (fun (s, n) ->
      let s = Seq32.of_int s in
      Seq32.diff (Seq32.add s n) s = n)

let prop_seq_ordering_antisym =
  QCheck.Test.make ~name:"seq32: lt is antisymmetric" ~count:1000
    QCheck.(pair (int_bound 0xFFFFFFF) (int_bound 0xFFFFFFF))
    (fun (a, b) ->
      let a = Seq32.of_int a and b = Seq32.of_int b in
      if a = b then (not (Seq32.lt a b)) && not (Seq32.gt a b)
      else not (Seq32.lt a b && Seq32.lt b a))

(* --- Checksum --------------------------------------------------------------- *)

let test_checksum_verify () =
  let buf = Bytes.of_string "\x45\x00\x00\x28\x00\x01\x00\x00\x40\x06\x00\x00\x0a\x00\x00\x01\x0a\x00\x00\x02" in
  let csum = Checksum.compute buf ~off:0 ~len:(Bytes.length buf) in
  Bytes.set buf 10 (Char.chr (csum lsr 8));
  Bytes.set buf 11 (Char.chr (csum land 0xff));
  Alcotest.(check bool) "self-verifies" true
    (Checksum.verify buf ~off:0 ~len:(Bytes.length buf))

let test_checksum_detects_corruption () =
  let buf = Bytes.make 40 '\x2a' in
  let csum = Checksum.compute buf ~off:0 ~len:40 in
  Bytes.set buf 10 (Char.chr (csum lsr 8));
  Bytes.set buf 11 (Char.chr (csum land 0xff));
  Bytes.set buf 20 '\x2b';
  Alcotest.(check bool) "corruption detected" false
    (Checksum.verify buf ~off:0 ~len:40)

let test_checksum_odd_length () =
  let buf = Bytes.of_string "abc" in
  let c = Checksum.compute buf ~off:0 ~len:3 in
  Alcotest.(check bool) "odd length yields a 16-bit value" true
    (c >= 0 && c <= 0xffff)

(* --- Header round-trips ------------------------------------------------------ *)

let test_eth_roundtrip () =
  let h = { Eth.dst = Addr.host_mac 5; src = Addr.host_mac 9;
            ethertype = Eth.ethertype_ipv4 } in
  let buf = Bytes.create Eth.size in
  ignore (Eth.write h buf ~off:0);
  let h' = Eth.read buf ~off:0 in
  Alcotest.(check bool) "eth round-trip" true (h = h')

let test_ipv4_header_roundtrip () =
  let h =
    {
      Ipv4.src = Addr.host_ip 3;
      dst = Addr.host_ip 4;
      protocol = Ipv4.protocol_tcp;
      ttl = 64;
      ecn = Ipv4.Ect0;
      dscp = 0;
      ident = 777;
      total_length = 1500;
    }
  in
  let buf = Bytes.create Ipv4.size in
  ignore (Ipv4.write h buf ~off:0);
  Alcotest.(check bool) "checksum valid" true (Ipv4.checksum_ok buf ~off:0);
  let h' = Ipv4.read buf ~off:0 in
  Alcotest.(check bool) "ipv4 round-trip" true (h = h')

let test_ecn_codepoints () =
  List.iter
    (fun ecn ->
      let h =
        {
          Ipv4.src = 1; dst = 2; protocol = 6; ttl = 1; ecn; dscp = 5;
          ident = 0; total_length = 20;
        }
      in
      let buf = Bytes.create Ipv4.size in
      ignore (Ipv4.write h buf ~off:0);
      let h' = Ipv4.read buf ~off:0 in
      Alcotest.(check bool) "ecn preserved" true (h'.Ipv4.ecn = ecn);
      Alcotest.(check int) "dscp preserved" 5 h'.Ipv4.dscp)
    [ Ipv4.Not_ect; Ipv4.Ect0; Ipv4.Ect1; Ipv4.Ce ]

let tcp_gen =
  QCheck.Gen.(
    let* src_port = int_range 1 65535 in
    let* dst_port = int_range 1 65535 in
    let* seq = int_bound 0xFFFFFFF in
    let* ack = int_bound 0xFFFFFFF in
    let* window = int_bound 65535 in
    let* syn = bool and* ackf = bool and* fin = bool and* psh = bool
    and* ece = bool in
    let* with_mss = bool and* with_ts = bool and* with_ws = bool in
    let* mss = int_range 536 9000 in
    let* ts1 = int_bound 0xFFFFFFF and* ts2 = int_bound 0xFFFFFFF in
    let* ws = int_range 0 14 in
    (* Up to two SACK blocks beside the other options (2 + 8n bytes stays
       inside the 40-byte option budget even with mss + ws + ts). *)
    let* n_sack = int_bound 2 in
    let* sack =
      list_repeat n_sack
        (let* start = int_bound 0xFFFFFFFF in
         let* len = int_range 1 65535 in
         return (Seq32.of_int start, Seq32.add (Seq32.of_int start) len))
    in
    return
      {
        Tcp.src_port;
        dst_port;
        seq;
        ack;
        flags = { Tcp.no_flags with syn; ack = ackf; fin; psh; ece };
        window;
        options =
          {
            Tcp.mss = (if with_mss then Some mss else None);
            wscale = (if with_ws then Some ws else None);
            timestamp = (if with_ts then Some (ts1, ts2) else None);
            sack;
          };
      })

let prop_tcp_header_roundtrip =
  QCheck.Test.make ~name:"tcp header: read . write = id" ~count:500
    (QCheck.make tcp_gen) (fun h ->
      let buf = Bytes.make 64 '\x00' in
      let n = Tcp.write h buf ~off:0 in
      let h', n' = Tcp.read buf ~off:0 in
      n = n' && h = h')

let prop_packet_wire_roundtrip =
  QCheck.Test.make ~name:"packet: of_wire . to_wire = id, checksum valid"
    ~count:300
    QCheck.(pair (QCheck.make tcp_gen) (string_of_size Gen.(int_bound 1460)))
    (fun (tcp, payload) ->
      let pkt =
        Packet.make ~src_mac:(Addr.host_mac 1) ~dst_mac:(Addr.host_mac 2)
          ~src_ip:(Addr.host_ip 1) ~dst_ip:(Addr.host_ip 2) ~tcp
          ~payload:(Bytes.of_string payload) ()
      in
      let wire = Packet.to_wire pkt in
      let pkt' = Packet.of_wire wire in
      Packet.tcp_checksum_ok wire
      && pkt'.Packet.tcp = pkt.Packet.tcp
      && Bytes.equal pkt'.Packet.payload pkt.Packet.payload
      && pkt'.Packet.ip = pkt.Packet.ip
      && pkt'.Packet.eth = pkt.Packet.eth)

let test_sack_option_full_budget () =
  (* Three SACK blocks (26 bytes) beside a timestamp (10 bytes) is the RFC
     2018 maximum layout — it must fit the 40-byte option budget and
     round-trip exactly, including a block spanning the 2^32 wrap. *)
  let wrap_start = Seq32.of_int 0xFFFF_FF00 in
  let sack =
    [
      (Seq32.of_int 9000, Seq32.of_int 10448);
      (wrap_start, Seq32.add wrap_start 512);
      (Seq32.of_int 4000, Seq32.of_int 5448);
    ]
  in
  let h =
    {
      Tcp.src_port = 1; dst_port = 2; seq = 100; ack = 200;
      flags = { Tcp.no_flags with Tcp.ack = true };
      window = 65535;
      options =
        { Tcp.mss = None; wscale = None; timestamp = Some (7, 9); sack };
    }
  in
  let buf = Bytes.make 64 '\x00' in
  let n = Tcp.write h buf ~off:0 in
  Alcotest.(check bool) "within the 60-byte header maximum" true (n <= 60);
  let h', n' = Tcp.read buf ~off:0 in
  Alcotest.(check int) "read length agrees" n n';
  Alcotest.(check bool) "blocks and order preserved" true (h = h')

let test_sack_empty_is_free () =
  (* The default path advertises no SACK blocks; that must cost zero wire
     bytes — the header encodes exactly as the seed did. *)
  let base options =
    let h =
      {
        Tcp.src_port = 1; dst_port = 2; seq = 1; ack = 2;
        flags = Tcp.data_flags; window = 1000; options;
      }
    in
    Tcp.write h (Bytes.make 64 '\x00') ~off:0
  in
  Alcotest.(check int) "no-options size unchanged" (base Tcp.no_options)
    (base { Tcp.no_options with Tcp.sack = [] })

let test_wire_checksum_detects_payload_corruption () =
  let tcp =
    { Tcp.src_port = 1; dst_port = 2; seq = 3; ack = 4;
      flags = Tcp.data_flags; window = 100; options = Tcp.no_options }
  in
  let pkt =
    Packet.make ~src_mac:1 ~dst_mac:2 ~src_ip:(Addr.host_ip 1)
      ~dst_ip:(Addr.host_ip 2) ~tcp ~payload:(Bytes.of_string "hello world") ()
  in
  let wire = Packet.to_wire pkt in
  let len = Bytes.length wire in
  Bytes.set wire (len - 1) 'X';
  Alcotest.(check bool) "corrupted payload fails checksum" false
    (Packet.tcp_checksum_ok wire)

let test_flow_hash_symmetric () =
  let tcp =
    { Tcp.src_port = 1111; dst_port = 22; seq = 0; ack = 0;
      flags = Tcp.data_flags; window = 0; options = Tcp.no_options }
  in
  let fwd =
    Packet.make ~src_mac:1 ~dst_mac:2 ~src_ip:(Addr.host_ip 1)
      ~dst_ip:(Addr.host_ip 2) ~tcp ~payload:Bytes.empty ()
  in
  let rev_tcp = { tcp with Tcp.src_port = 22; dst_port = 1111 } in
  let rev =
    Packet.make ~src_mac:2 ~dst_mac:1 ~src_ip:(Addr.host_ip 2)
      ~dst_ip:(Addr.host_ip 1) ~tcp:rev_tcp ~payload:Bytes.empty ()
  in
  Alcotest.(check int) "both directions hash alike" (Packet.flow_hash fwd)
    (Packet.flow_hash rev)

let suite =
  [
    Alcotest.test_case "ipv4 string round-trip" `Quick test_ipv4_roundtrip;
    Alcotest.test_case "ipv4 malformed rejected" `Quick test_ipv4_malformed;
    Alcotest.test_case "host addressing" `Quick test_host_addressing;
    Alcotest.test_case "four-tuple flip & sym hash" `Quick test_four_tuple_flip;
    Alcotest.test_case "seq32 wrap-around" `Quick test_seq_wraparound;
    Alcotest.test_case "seq32 between" `Quick test_seq_between;
    Alcotest.test_case "checksum verify" `Quick test_checksum_verify;
    Alcotest.test_case "checksum detects corruption" `Quick
      test_checksum_detects_corruption;
    Alcotest.test_case "checksum odd length" `Quick test_checksum_odd_length;
    Alcotest.test_case "eth round-trip" `Quick test_eth_roundtrip;
    Alcotest.test_case "ipv4 header round-trip" `Quick test_ipv4_header_roundtrip;
    Alcotest.test_case "ecn codepoints" `Quick test_ecn_codepoints;
    Alcotest.test_case "sack option at full budget" `Quick
      test_sack_option_full_budget;
    Alcotest.test_case "empty sack list costs no wire bytes" `Quick
      test_sack_empty_is_free;
    Alcotest.test_case "wire checksum catches corruption" `Quick
      test_wire_checksum_detects_payload_corruption;
    Alcotest.test_case "flow hash symmetric" `Quick test_flow_hash_symmetric;
    QCheck_alcotest.to_alcotest prop_seq_add_diff;
    QCheck_alcotest.to_alcotest prop_seq_ordering_antisym;
    QCheck_alcotest.to_alcotest prop_tcp_header_roundtrip;
    QCheck_alcotest.to_alcotest prop_packet_wire_roundtrip;
  ]
