(* The pluggable loss-recovery subsystem (lib/recovery): scoreboard and
   engine units, the seed-equivalence differential battery (the extracted
   Reno policy must reproduce the pre-extraction fast path byte for byte),
   and end-to-end SACK / RACK-TLP behaviour under injected loss. *)

module Sim = Tas_engine.Sim
module Time_ns = Tas_engine.Time_ns
module Rng = Tas_engine.Rng
module Core = Tas_cpu.Core
module Topology = Tas_netsim.Topology
module Nic = Tas_netsim.Nic
module Port = Tas_netsim.Port
module Fault = Tas_netsim.Fault
module Config = Tas_core.Config
module Tas = Tas_core.Tas
module Libtas = Tas_core.Libtas
module Fast_path = Tas_core.Fast_path
module Transport = Tas_apps.Transport
module Packet = Tas_proto.Packet
module Rec = Tas_recovery
module Policy = Rec.Policy
module Scoreboard = Rec.Scoreboard
module State = Rec.State
module Sack = Rec.Sack
module Rack = Rec.Rack_tlp
module Reno = Rec.Reno

(* --- Policy / Reno units ------------------------------------------------ *)

let test_policy_names () =
  Alcotest.(check string) "reno" "reno" (Policy.name Policy.Reno);
  Alcotest.(check string) "sack" "sack" (Policy.name Policy.Sack);
  Alcotest.(check string) "rack" "rack-tlp" (Policy.name Policy.Rack_tlp);
  List.iter
    (fun (s, k) ->
      Alcotest.(check bool) ("of_string " ^ s) true (Policy.of_string s = Some k))
    [
      ("reno", Policy.Reno);
      ("sack", Policy.Sack);
      ("rack", Policy.Rack_tlp);
      ("rack-tlp", Policy.Rack_tlp);
      ("rack_tlp", Policy.Rack_tlp);
    ];
  Alcotest.(check bool) "unknown rejected" true (Policy.of_string "cubic" = None)

let test_reno_decision_table () =
  (* Counting below the threshold. *)
  (match Reno.on_dup_ack ~dupack_cnt:0 ~in_recovery:false with
  | Reno.Count 1 -> ()
  | _ -> Alcotest.fail "expected Count 1");
  (match Reno.on_dup_ack ~dupack_cnt:1 ~in_recovery:false with
  | Reno.Count 2 -> ()
  | _ -> Alcotest.fail "expected Count 2");
  (* Third duplicate triggers recovery... *)
  (match Reno.on_dup_ack ~dupack_cnt:2 ~in_recovery:false with
  | Reno.Enter_recovery -> ()
  | _ -> Alcotest.fail "expected Enter_recovery");
  (* ...but not while already recovering. *)
  match Reno.on_dup_ack ~dupack_cnt:5 ~in_recovery:true with
  | Reno.Count 6 -> ()
  | _ -> Alcotest.fail "expected Count 6 while in recovery"

(* --- Scoreboard units --------------------------------------------------- *)

let fill_sb segs =
  let sb = Scoreboard.create () in
  List.iter (fun (seq, len, tx) -> Scoreboard.on_transmit sb ~seq ~len ~now_ns:tx) segs;
  sb

let test_scoreboard_ack_trim () =
  let sb = fill_sb [ (1000, 100, 10); (1100, 100, 20); (1200, 100, 30) ] in
  (* una = 1150: seg1 fully acked (karn-eligible tx 10), seg2 clipped. *)
  Alcotest.(check int) "delivered tx" 10 (Scoreboard.ack_to sb ~una:1150);
  Alcotest.(check int) "two live segs" 2 (Scoreboard.live_segs sb);
  (match Scoreboard.last_unsacked sb with
  | Some (seq, len) ->
    Alcotest.(check int) "tail seq" 1200 seq;
    Alcotest.(check int) "tail len" 100 len
  | None -> Alcotest.fail "expected a live tail");
  (* Retransmitted segments never feed the delivery clock (Karn). *)
  Alcotest.(check bool) "retx found" true
    (Scoreboard.on_retransmit sb ~seq:1150 ~now_ns:40);
  Alcotest.(check int) "karn filters retx" (-1) (Scoreboard.ack_to sb ~una:1200);
  (* ...but a clean tail still samples. *)
  Alcotest.(check int) "clean tail samples" 30 (Scoreboard.ack_to sb ~una:1300);
  Alcotest.(check bool) "drained" true (Scoreboard.is_empty sb)

let test_scoreboard_sack_and_dupthresh () =
  let sb =
    fill_sb [ (0, 100, 1); (100, 100, 2); (200, 100, 3); (300, 100, 4); (400, 100, 5) ]
  in
  (* SACK 200-500: three segments above the front hole. *)
  let newly, txmax = Scoreboard.apply_sacks sb ~blocks:[ (200, 500) ] in
  Alcotest.(check int) "newly sacked" 3 newly;
  Alcotest.(check int) "karn max tx" 5 txmax;
  (* Re-applying the same blocks marks nothing new. *)
  let again, _ = Scoreboard.apply_sacks sb ~blocks:[ (200, 500) ] in
  Alcotest.(check int) "idempotent" 0 again;
  (* dupthresh 3: both unsacked segments below have >= 3 sacked above. *)
  Alcotest.(check int) "dupthresh marks holes" 2
    (Scoreboard.mark_lost_dupthresh sb ~dupthresh:3);
  (match Scoreboard.next_lost sb with
  | Some (seq, _) -> Alcotest.(check int) "lowest hole first" 0 seq
  | None -> Alcotest.fail "expected a lost segment");
  (* A retransmission clears the marking and is skipped by the dup rule. *)
  ignore (Scoreboard.on_retransmit sb ~seq:0 ~now_ns:50);
  Alcotest.(check int) "retx not re-marked by dupthresh" 0
    (Scoreboard.mark_lost_dupthresh sb ~dupthresh:3);
  (match Scoreboard.next_lost sb with
  | Some (seq, _) -> Alcotest.(check int) "second hole remains" 100 seq
  | None -> Alcotest.fail "expected the second hole");
  Alcotest.(check int) "cumulative lost counter" 2 (Scoreboard.cum_lost sb);
  Alcotest.(check int) "cumulative retx counter" 1 (Scoreboard.cum_retx sb)

let test_scoreboard_rack_time_rule () =
  let sb = fill_sb [ (0, 100, 10); (100, 100, 20); (200, 100, 30) ] in
  ignore (Scoreboard.apply_sacks sb ~blocks:[ (200, 300) ]);
  (* Threshold 25: both unsacked holes (tx 10 and 20) are old enough. *)
  Alcotest.(check int) "older-than marks both holes" 2
    (Scoreboard.mark_lost_older_than sb ~threshold_ns:25);
  Alcotest.(check int) "idempotent" 0
    (Scoreboard.mark_lost_older_than sb ~threshold_ns:25);
  (* The time rule re-detects a lost retransmission once its refreshed
     timestamp ages past the threshold — dupthresh cannot. *)
  ignore (Scoreboard.on_retransmit sb ~seq:0 ~now_ns:40);
  Alcotest.(check int) "fresh retx not old enough" 0
    (Scoreboard.mark_lost_older_than sb ~threshold_ns:35);
  Alcotest.(check int) "aged retx re-marked" 1
    (Scoreboard.mark_lost_older_than sb ~threshold_ns:45);
  (* Reordering-timer anchor: oldest unsacked candidate below the edge. *)
  let sb2 = fill_sb [ (0, 50, 7); (50, 50, 9); (100, 50, 11) ] in
  Alcotest.(check bool) "no anchor before any sack" true
    (Scoreboard.oldest_unsacked_tx sb2 = None);
  ignore (Scoreboard.apply_sacks sb2 ~blocks:[ (100, 150) ]);
  Alcotest.(check bool) "anchor is oldest candidate" true
    (Scoreboard.oldest_unsacked_tx sb2 = Some 7)

(* --- Engine units ------------------------------------------------------- *)

let transmit_n st ~n ~len ~base_ts =
  for i = 0 to n - 1 do
    Scoreboard.on_transmit st.State.sb ~seq:(i * len) ~len ~now_ns:(base_ts + i)
  done

let test_sack_episode_bracket () =
  let st = State.create Policy.Sack in
  transmit_n st ~n:5 ~len:100 ~base_ts:10;
  (* SACK evidence above the front hole accumulates over duplicates. *)
  let o1 = Sack.on_ack st ~una:0 ~snd_nxt:500 ~blocks:[ (200, 300) ] ~dup_acks:1 in
  Alcotest.(check bool) "no episode yet" false o1.Sack.entered;
  let o2 =
    Sack.on_ack st ~una:0 ~snd_nxt:500 ~blocks:[ (200, 400) ] ~dup_acks:2
  in
  Alcotest.(check bool) "still counting" false o2.Sack.entered;
  let o3 =
    Sack.on_ack st ~una:0 ~snd_nxt:500 ~blocks:[ (200, 500) ] ~dup_acks:3
  in
  Alcotest.(check bool) "dupthresh enters recovery" true o3.Sack.entered;
  Alcotest.(check int) "both holes marked" 2 o3.Sack.newly_lost;
  Alcotest.(check bool) "episode flag" true st.State.in_rec;
  Alcotest.(check int) "recovery point at snd_nxt" 500 st.State.recovery_point;
  (* More duplicates inside the episode do not re-enter (one rate cut). *)
  let o4 =
    Sack.on_ack st ~una:0 ~snd_nxt:500 ~blocks:[ (200, 500) ] ~dup_acks:4
  in
  Alcotest.(check bool) "no re-entry" false o4.Sack.entered;
  (* Partial progress keeps the episode; reaching the point exits. *)
  let o5 = Sack.on_ack st ~una:200 ~snd_nxt:500 ~blocks:[] ~dup_acks:0 in
  Alcotest.(check bool) "partial ack stays in" false o5.Sack.exited;
  let o6 = Sack.on_ack st ~una:500 ~snd_nxt:500 ~blocks:[] ~dup_acks:0 in
  Alcotest.(check bool) "cumulative past point exits" true o6.Sack.exited;
  Alcotest.(check bool) "flag cleared" false st.State.in_rec

let test_sack_front_hole_rule () =
  (* Small flight: three duplicate ACKs with no SACK evidence above still
     pin the front segment (RFC 6675 at small flights). *)
  let st = State.create Policy.Sack in
  transmit_n st ~n:2 ~len:100 ~base_ts:10;
  let o =
    Sack.on_ack st ~una:0 ~snd_nxt:200 ~blocks:[] ~dup_acks:3
  in
  Alcotest.(check int) "front segment marked" 1 o.Sack.newly_lost;
  Alcotest.(check bool) "entered" true o.Sack.entered

let test_rack_defaults_and_clock () =
  Alcotest.(check int) "reo_wnd = srtt/4" 2_500
    (Rack.reo_wnd_ns ~srtt_ns:10_000 ~configured:0);
  Alcotest.(check int) "reo_wnd floor" 1_000
    (Rack.reo_wnd_ns ~srtt_ns:0 ~configured:0);
  Alcotest.(check int) "reo_wnd configured wins" 77
    (Rack.reo_wnd_ns ~srtt_ns:10_000 ~configured:77);
  Alcotest.(check int) "pto = 2*srtt" 20_000_000
    (Rack.pto_ns ~srtt_ns:10_000_000 ~configured:0);
  Alcotest.(check int) "pto floor 1ms" 1_000_000
    (Rack.pto_ns ~srtt_ns:1_000 ~configured:0);
  let st = State.create Policy.Rack_tlp in
  Scoreboard.on_transmit st.State.sb ~seq:0 ~len:100 ~now_ns:1_000;
  Scoreboard.on_transmit st.State.sb ~seq:100 ~len:100 ~now_ns:200_000;
  (* SACK of the late segment advances the delivery clock far enough past
     the early hole that the time rule marks it without any dup count. *)
  let o =
    Rack.on_ack st ~una:0 ~snd_nxt:200 ~blocks:[ (100, 200) ] ~dup_acks:1
      ~reo_wnd:10_000
  in
  Alcotest.(check int) "rack_ts from sacked tx" 200_000 st.State.rack_ts;
  Alcotest.(check int) "time rule marked the hole" 1 o.Rack.rack_lost;
  Alcotest.(check bool) "entered on rack loss" true o.Rack.entered

let test_rack_reo_timer () =
  let st = State.create Policy.Rack_tlp in
  Scoreboard.on_transmit st.State.sb ~seq:0 ~len:100 ~now_ns:1_000;
  Scoreboard.on_transmit st.State.sb ~seq:100 ~len:100 ~now_ns:2_000;
  (* Evidence exists but the hole is too fresh for the window... *)
  let o =
    Rack.on_ack st ~una:0 ~snd_nxt:200 ~blocks:[ (100, 200) ] ~dup_acks:1
      ~reo_wnd:5_000
  in
  Alcotest.(check int) "within reo_wnd: nothing marked" 0 o.Rack.newly_lost;
  (* ...the reordering timer catches it once reo_wnd + srtt elapse. *)
  Alcotest.(check int) "timer before expiry" 0
    (Rack.on_reo_timer st ~now_ns:3_000 ~reo_wnd:5_000 ~srtt_ns:1_000);
  Alcotest.(check int) "timer after expiry" 1
    (Rack.on_reo_timer st ~now_ns:8_000 ~reo_wnd:5_000 ~srtt_ns:1_000)

let test_state_reset () =
  let st = State.create Policy.Rack_tlp in
  transmit_n st ~n:3 ~len:100 ~base_ts:10;
  ignore
    (Rack.on_ack st ~una:0 ~snd_nxt:300 ~blocks:[ (100, 300) ] ~dup_acks:3
       ~reo_wnd:1);
  Alcotest.(check bool) "episode open" true st.State.in_rec;
  let gen_before = st.State.gen in
  State.reset st;
  Alcotest.(check bool) "scoreboard cleared" true (Scoreboard.is_empty st.State.sb);
  Alcotest.(check bool) "episode closed" false st.State.in_rec;
  Alcotest.(check int) "rack clock reset" (-1) st.State.rack_ts;
  Alcotest.(check bool) "timers invalidated" true (st.State.gen > gen_before);
  Alcotest.(check bool) "cumulative counters survive" true
    (Scoreboard.cum_lost st.State.sb > 0)

(* --- Seed-equivalence differential battery ------------------------------ *)

(* Digests captured from the seed (commit 570fea9, before the dup-ACK logic
   was extracted into lib/recovery): md5 over the full printed report of the
   chaos schedules, and the Fig. 7 goodputs at 9 decimal places. The
   refactored fast path under the default Reno policy must reproduce every
   one exactly — extraction, SACK header support, and the multi-range
   out-of-order rewrite must be invisible at max_ranges = 1. *)

let test_seed_chaos_digests () =
  List.iter
    (fun (only, expect) ->
      let buf = Buffer.create 4096 in
      let fmt = Format.formatter_of_buffer buf in
      Tas_experiments.Exp_chaos.run ~quick:true ~only:[ only ] fmt;
      Format.pp_print_flush fmt ();
      Alcotest.(check string)
        ("chaos schedule " ^ only)
        expect
        (Digest.to_hex (Digest.string (Buffer.contents buf))))
    [
      ("bursty-loss", "d40f890d5c5c4433f34a4725a09399b3");
      ("hellscape", "69513b7f617d097bb8822349e4af0831");
    ]

let test_seed_f7_goodputs () =
  List.iter
    (fun (vname, v, sname, s, expect) ->
      let g = Tas_experiments.Exp_loss.goodput_gbps v ~shape:s in
      Alcotest.(check string)
        (Printf.sprintf "f7 %s %s" vname sname)
        expect
        (Printf.sprintf "%.9f" g))
    [
      ("tas", Tas_experiments.Exp_loss.Tas_ooo, "none",
       Tas_experiments.Exp_loss.No_loss, "9.399966667");
      ("tas", Tas_experiments.Exp_loss.Tas_ooo, "uni1",
       Tas_experiments.Exp_loss.Uniform 0.01, "9.306916000");
      ("tas", Tas_experiments.Exp_loss.Tas_ooo, "ge1",
       Tas_experiments.Exp_loss.Bursty 0.01, "9.304677333");
      ("simple", Tas_experiments.Exp_loss.Tas_simple, "none",
       Tas_experiments.Exp_loss.No_loss, "9.399966667");
      ("simple", Tas_experiments.Exp_loss.Tas_simple, "uni1",
       Tas_experiments.Exp_loss.Uniform 0.01, "9.049128667");
      ("simple", Tas_experiments.Exp_loss.Tas_simple, "ge1",
       Tas_experiments.Exp_loss.Bursty 0.01, "9.053800667");
    ]

(* --- End-to-end: two TAS hosts under injected loss ---------------------- *)

let tas_pair ?control_interval_ns ?timeout_intervals sim net ~policy ~rate_bps =
  let mk nic core_base =
    let base =
      {
        Config.default with
        Config.max_fast_path_cores = 2;
        rx_buf_size = 131072;
        tx_buf_size = 131072;
        cc = Tas_tcp.Interval_cc.Fixed_rate;
        initial_rate_bps = rate_bps;
        recovery_policy = policy;
      }
    in
    let config =
      {
        base with
        Config.control_interval_fixed_ns =
          (match control_interval_ns with
          | None -> base.Config.control_interval_fixed_ns
          | some -> some);
        timeout_intervals =
          (match timeout_intervals with
          | None -> base.Config.timeout_intervals
          | Some n -> n);
      }
    in
    let tas = Tas.create sim ~nic ~config () in
    let cores =
      [|
        Core.create sim ~id:core_base ();
        Core.create sim ~id:(core_base + 1) ();
      |]
    in
    let lt = Tas.app tas ~app_cores:cores ~api:Libtas.Sockets in
    (tas, Transport.of_libtas lt ~ctx_of_conn:(fun i -> i mod 2))
  in
  let a = mk net.Topology.a.Topology.nic 500 in
  let b = mk net.Topology.b.Topology.nic 600 in
  (a, b)

(* Bulk goodput under a symmetric loss shape, exp_loss-style but with the
   recovery policy under test on both hosts. *)
let goodput ~policy ~shape ~flows =
  let sim = Sim.create () in
  let rng = Rng.create 1234 in
  let spec = Topology.link_10g ~ecn_threshold:65 () in
  let net =
    Topology.point_to_point sim ~spec ~fault_ab:shape ~fault_ba:shape ~rng
      ~queues_per_nic:8 ()
  in
  let (_sender_tas, sender), (_recv_tas, receiver) =
    tas_pair sim net ~policy ~rate_bps:94e6
  in
  let received = ref 0 in
  Transport.listen receiver ~port:5001 (fun _ ->
      {
        Transport.null_handlers with
        Transport.on_data = (fun _ d -> received := !received + Bytes.length d);
      });
  let chunk = Bytes.create 16384 in
  for _ = 1 to flows do
    let rec push conn = if Transport.send conn chunk > 0 then push conn in
    Transport.connect sender
      ~dst_ip:(Nic.ip net.Topology.b.Topology.nic) ~dst_port:5001
      (fun _ ->
        {
          Transport.null_handlers with
          Transport.on_connected = (fun conn -> push conn);
          Transport.on_sendable = (fun conn -> push conn);
        })
  done;
  Sim.run ~until:(Time_ns.ms 40) sim;
  let before = !received in
  Sim.run ~until:(Time_ns.ms 160) sim;
  float_of_int ((!received - before) * 8) /. 0.12 /. 1e9

let test_sack_goodput_vs_reno () =
  List.iter
    (fun (name, shape) ->
      let reno = goodput ~policy:Policy.Reno ~shape ~flows:30 in
      let sack = goodput ~policy:Policy.Sack ~shape ~flows:30 in
      Alcotest.(check bool)
        (Printf.sprintf "sack (%.3f) >= reno (%.3f) under %s" sack reno name)
        true
        (sack >= reno *. 0.99))
    [
      ("uniform 1%", Fault.uniform_loss 0.01);
      ("bursty 1%", Fault.bursty_of_rate ~rate:0.01 ~mean_burst_pkts:4.0);
    ]

(* Stream integrity: a patterned transfer through bursty loss must arrive
   complete and byte-exact — selective retransmission fills every hole with
   the right bytes (offset bugs in the scoreboard/tx-buffer mapping cannot
   hide from this). *)
let integrity_run policy =
  let total = 262144 in
  let sim = Sim.create () in
  let rng = Rng.create 99 in
  (* A real RTT (2 ms) so dozens of segments are in flight — losses then
     draw SACK evidence instead of being papered over by the stall rewind
     (whose timeout is pinned well above the repair timescale). *)
  let spec =
    {
      Topology.rate_bps = 1e9;
      delay = Time_ns.ms 1;
      capacity_pkts = 1024;
      ecn_threshold = None;
    }
  in
  let shape = Fault.bursty_of_rate ~rate:0.05 ~mean_burst_pkts:4.0 in
  let net =
    Topology.point_to_point sim ~spec ~fault_ab:shape ~fault_ba:shape ~rng
      ~queues_per_nic:8 ()
  in
  let (sender_tas, sender), (_recv_tas, receiver) =
    tas_pair sim net ~policy ~rate_bps:1e9 ~control_interval_ns:10_000_000
      ~timeout_intervals:10
  in
  let acc = Buffer.create total in
  Transport.listen receiver ~port:7001 (fun _ ->
      {
        Transport.null_handlers with
        Transport.on_data = (fun _ d -> Buffer.add_bytes acc d);
      });
  let pattern = Bytes.init total (fun i -> Char.chr (((i * 31) + 7) land 0xff)) in
  let sent = ref 0 in
  let push conn =
    let rec go () =
      if !sent < total then begin
        let n =
          Transport.send conn (Bytes.sub pattern !sent (min 8192 (total - !sent)))
        in
        if n > 0 then begin
          sent := !sent + n;
          go ()
        end
      end
    in
    go ()
  in
  Transport.connect sender
    ~dst_ip:(Nic.ip net.Topology.b.Topology.nic) ~dst_port:7001
    (fun _ ->
      {
        Transport.null_handlers with
        Transport.on_connected = push;
        Transport.on_sendable = push;
      });
  Sim.run ~until:(Time_ns.ms 500) sim;
  (match net.Topology.fault_ab with
  | Some f ->
    Alcotest.(check bool) "losses actually injected" true
      (Fault.total_drops (Fault.counters f) > 0)
  | None -> Alcotest.fail "fault stage missing");
  ignore !sent;
  Alcotest.(check int) "all bytes delivered" total (Buffer.length acc);
  Alcotest.(check bool) "byte-exact stream" true
    (Bytes.equal (Buffer.to_bytes acc) pattern);
  sender_tas

let test_sack_stream_integrity () =
  let tas = integrity_run Policy.Sack in
  let r = Fast_path.rec_stats (Tas.fast_path tas) in
  Alcotest.(check bool) "recovery episodes happened" true
    (r.Fast_path.rec_episodes > 0);
  Alcotest.(check bool) "selective retransmissions happened" true
    (r.Fast_path.rec_selective_retransmits > 0);
  Alcotest.(check bool) "sack evidence consumed" true
    (r.Fast_path.rec_sacked_segments > 0)

let test_rack_stream_integrity () =
  let tas = integrity_run Policy.Rack_tlp in
  let r = Fast_path.rec_stats (Tas.fast_path tas) in
  Alcotest.(check bool) "recovery episodes happened" true
    (r.Fast_path.rec_episodes > 0);
  Alcotest.(check bool) "selective retransmissions happened" true
    (r.Fast_path.rec_selective_retransmits > 0)

(* Tail loss: deterministically swallow the first copy of the segment that
   carries the final byte of a bounded transfer. Without a tail-loss probe
   the only repair is the slow path's stall rewind (4 x 50 ms control
   intervals here); RACK-TLP's probe timer must repair at PTO timescale. *)
let tail_completion policy =
  let total = 32768 in
  let sim = Sim.create () in
  let spec =
    {
      Topology.rate_bps = 1e9;
      delay = Time_ns.ms 5;
      capacity_pkts = 1024;
      ecn_threshold = None;
    }
  in
  let net = Topology.point_to_point sim ~spec ~queues_per_nic:8 () in
  (* Re-wire a -> b with the deterministic tail dropper. *)
  let seen = ref 0 and dropped = ref false in
  Port.set_deliver net.Topology.a.Topology.uplink (fun pkt ->
      let len = Bytes.length pkt.Packet.payload in
      if len > 0 && (not !dropped) && !seen + len >= total then
        dropped := true (* swallow the tail segment's first copy *)
      else begin
        if len > 0 then seen := !seen + len;
        Nic.input net.Topology.b.Topology.nic pkt
      end);
  let mk nic core_base =
    let config =
      {
        Config.default with
        Config.max_fast_path_cores = 2;
        cc = Tas_tcp.Interval_cc.Fixed_rate;
        initial_rate_bps = 1e9;
        control_interval_fixed_ns = Some 50_000_000;
        timeout_intervals = 4;
        recovery_policy = policy;
      }
    in
    let tas = Tas.create sim ~nic ~config () in
    let cores =
      [|
        Core.create sim ~id:core_base ();
        Core.create sim ~id:(core_base + 1) ();
      |]
    in
    let lt = Tas.app tas ~app_cores:cores ~api:Libtas.Sockets in
    (tas, Transport.of_libtas lt ~ctx_of_conn:(fun i -> i mod 2))
  in
  let sender_tas, sender = mk net.Topology.a.Topology.nic 500 in
  let _recv_tas, receiver = mk net.Topology.b.Topology.nic 600 in
  let got = ref 0 and done_at = ref None in
  Transport.listen receiver ~port:9001 (fun _ ->
      {
        Transport.null_handlers with
        Transport.on_data =
          (fun _ d ->
            got := !got + Bytes.length d;
            if !got >= total && !done_at = None then done_at := Some (Sim.now sim));
      });
  let payload = Bytes.create total in
  Transport.connect sender
    ~dst_ip:(Nic.ip net.Topology.b.Topology.nic) ~dst_port:9001
    (fun _ ->
      {
        Transport.null_handlers with
        Transport.on_connected =
          (fun conn -> ignore (Transport.send conn payload));
      });
  Sim.run ~until:(Time_ns.ms 400) sim;
  Alcotest.(check bool) "tail segment was dropped" true !dropped;
  match !done_at with
  | None -> Alcotest.failf "transfer never completed under %s" (Policy.name policy)
  | Some t -> (t, sender_tas)

let test_tlp_repairs_tail_loss () =
  let sack_t, _ = tail_completion Policy.Sack in
  let rack_t, rack_tas = tail_completion Policy.Rack_tlp in
  let r = Fast_path.rec_stats (Tas.fast_path rack_tas) in
  Alcotest.(check bool) "a tail-loss probe fired" true
    (r.Fast_path.rec_tlp_probes > 0);
  Alcotest.(check bool)
    (Printf.sprintf "rack (%.1f ms) beats sack (%.1f ms) on the tail"
       (float_of_int rack_t /. 1e6)
       (float_of_int sack_t /. 1e6))
    true
    (rack_t < sack_t);
  (* The probe repairs at PTO timescale; the stall rewind waits out 4
     control intervals. Generous bounds so scheduler drift cannot flake. *)
  Alcotest.(check bool) "rack repairs before 120 ms" true
    (rack_t < Time_ns.ms 120);
  Alcotest.(check bool) "sack waits for the stall rewind" true
    (sack_t > Time_ns.ms 120)

let suite =
  [
    Alcotest.test_case "policy names round-trip" `Quick test_policy_names;
    Alcotest.test_case "reno dup-ACK decision table" `Quick
      test_reno_decision_table;
    Alcotest.test_case "scoreboard: cumulative trim + karn" `Quick
      test_scoreboard_ack_trim;
    Alcotest.test_case "scoreboard: sack marking + dupthresh" `Quick
      test_scoreboard_sack_and_dupthresh;
    Alcotest.test_case "scoreboard: rack time rule" `Quick
      test_scoreboard_rack_time_rule;
    Alcotest.test_case "sack engine: episode bracket" `Quick
      test_sack_episode_bracket;
    Alcotest.test_case "sack engine: front-hole rule" `Quick
      test_sack_front_hole_rule;
    Alcotest.test_case "rack engine: defaults + delivery clock" `Quick
      test_rack_defaults_and_clock;
    Alcotest.test_case "rack engine: reordering timer" `Quick
      test_rack_reo_timer;
    Alcotest.test_case "state reset invalidates timers" `Quick
      test_state_reset;
    Alcotest.test_case "seed digests: chaos schedules" `Quick
      test_seed_chaos_digests;
    Alcotest.test_case "seed digests: fig. 7 goodputs" `Quick
      test_seed_f7_goodputs;
    Alcotest.test_case "sack goodput >= reno under loss" `Quick
      test_sack_goodput_vs_reno;
    Alcotest.test_case "sack stream integrity under bursty loss" `Quick
      test_sack_stream_integrity;
    Alcotest.test_case "rack stream integrity under bursty loss" `Quick
      test_rack_stream_integrity;
    Alcotest.test_case "tlp repairs tail loss at probe timescale" `Quick
      test_tlp_repairs_tail_loss;
  ]
