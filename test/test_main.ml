let () =
  Alcotest.run "tas"
    [
      ("engine", Test_engine.suite);
      ("proto", Test_proto.suite);
      ("buffers", Test_buffers.suite);
      ("netsim", Test_netsim.suite);
      ("cpu_cc", Test_cpu_cc.suite);
      ("tcp_engine", Test_tcp_engine.suite);
      ("tas", Test_tas.suite);
      ("apps", Test_apps.suite);
      ("tas_behavior", Test_tas_behavior.suite);
      ("faults", Test_faults.suite);
      ("stream_properties", Test_stream_properties.suite);
      ("harness", Test_harness.suite);
      ("pcap_edge", Test_pcap_edge.suite);
      ("framing", Test_framing.suite);
      ("rate_bucket", Test_rate_bucket.suite);
      ("multi_app", Test_multi_app.suite);
      ("cc_properties", Test_cc_properties.suite);
      ("stats_properties", Test_stats_properties.suite);
      ("telemetry", Test_telemetry.suite);
      ("timeline", Test_timeline.suite);
      ("wrap_edges", Test_wrap_edges.suite);
      ("determinism", Test_determinism.suite);
      ("parallel", Test_parallel.suite);
      ("shard", Test_shard.suite);
      ("arena", Test_arena.suite);
      ("control", Test_control.suite);
      ("recovery", Test_recovery.suite);
    ]
