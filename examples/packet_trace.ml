(* Packet tracing demo: tcpdump + latency spans for the simulator. Watch
   the three-way handshake, data exchange, ACK generation and FIN teardown
   between a legacy TCP client and a TAS host on the wire; then introspect
   the TAS flow table (ss -ti style and as JSON), decompose per-packet
   latency into per-hop spans, and export the capture as a pcap file.

   Run with:  dune exec examples/packet_trace.exe *)

module Sim = Tas_engine.Sim
module Time_ns = Tas_engine.Time_ns
module Stats = Tas_engine.Stats
module Core = Tas_cpu.Core
module Topology = Tas_netsim.Topology
module Port = Tas_netsim.Port
module Nic = Tas_netsim.Nic
module Tap = Tas_netsim.Tap
module Pcap = Tas_netsim.Pcap
module Packet = Tas_proto.Packet
module Span = Tas_telemetry.Span
module Json = Tas_telemetry.Json
module Tas = Tas_core.Tas
module Libtas = Tas_core.Libtas
module E = Tas_baseline.Tcp_engine

let () =
  let sim = Sim.create () in
  let net = Topology.point_to_point sim ~queues_per_nic:4 () in

  (* Span collector sampling every packet origin, wired into the TAS
     instance, both NICs (RX-origin, so client-sent packets get spans too)
     and both directions of the wire. *)
  let span = Span.create ~enabled:true ~sample_every:1 ~capacity:4096 () in
  List.iter
    (fun ep ->
      Nic.set_span ~origin:true ep.Topology.nic span;
      Port.set_span ep.Topology.uplink span)
    [ net.Topology.a; net.Topology.b ];

  let tas =
    Tas.create sim ~nic:net.Topology.a.Topology.nic
      ~config:Tas_core.Config.default ~span ()
  in
  let lt =
    Tas.app tas ~app_cores:[| Core.create sim ~id:100 () |] ~api:Libtas.Sockets
  in
  Libtas.listen lt ~port:7 ~ctx_of_tuple:(fun _ -> 0) (fun _ ->
      {
        Libtas.null_handlers with
        Libtas.on_data = (fun sock d -> ignore (Libtas.send sock d));
        Libtas.on_peer_closed = (fun sock -> Libtas.close sock);
      });
  let client = E.create sim net.Topology.b.Topology.nic E.default_config in
  E.attach client;

  (* Tap both directions of the wire. *)
  let trace = Tap.create () in
  Port.set_deliver net.Topology.b.Topology.uplink
    (Tap.wrap trace sim (fun p -> Nic.input net.Topology.a.Topology.nic p));
  Port.set_deliver net.Topology.a.Topology.uplink
    (Tap.wrap trace sim (fun p -> Nic.input net.Topology.b.Topology.nic p));

  let done_rpcs = ref 0 in
  ignore
    (E.connect client ~dst_ip:(Nic.ip net.Topology.a.Topology.nic) ~dst_port:7
       {
         E.null_callbacks with
         E.on_connected = (fun c -> ignore (E.send c (Bytes.make 64 'a')));
         E.on_receive =
           (fun c _ ->
             incr done_rpcs;
             if !done_rpcs < 2 then ignore (E.send c (Bytes.make 64 'b'))
             else E.close c);
       });

  (* Snapshot flow state mid-connection, before the FIN teardown empties
     the table. *)
  let mid_flows = ref "" and mid_text = ref "" in
  ignore
    (Sim.schedule sim (Time_ns.us 50) (fun () ->
         mid_flows := Json.to_string ~pretty:true (Tas.flows tas);
         mid_text := Format.asprintf "%a" Tas.pp_flows tas));
  Sim.run ~until:(Time_ns.ms 50) sim;

  print_endline "Wire trace (host 10.0.0.0 = TAS, 10.0.0.1 = legacy client):\n";
  (* Filter the dump to the RPC connection's 4-tuple — both directions —
     exactly like a tcpdump host/port filter. *)
  let tuple =
    match Tap.records trace with
    | r :: _ -> Packet.four_tuple_at_receiver r.Tap.pkt
    | [] -> failwith "no packets captured"
  in
  Tap.dump ~tuple Format.std_formatter trace;
  Format.print_flush ();
  Printf.printf "\n%d packets total (%d on the filtered connection).\n"
    (Tap.count trace)
    (List.length (Tap.matching_tuple trace tuple));

  (* Export the same (filtered) capture as a pcap file for wireshark. *)
  let pcap_path =
    Filename.concat (Filename.get_temp_dir_name ()) "packet_trace.pcap"
  in
  Pcap.write_tap pcap_path ~tuple trace;
  Printf.printf "# artifact: %s (open in wireshark/tcpdump)\n\n" pcap_path;

  (* Flow-state introspection: the paper's Table-3 record, ss-style and as
     JSON (what `tas_run flows` prints). *)
  print_endline "TAS flow table mid-connection (ss -ti style):";
  print_string !mid_text;
  print_endline "\nSame state as JSON (paper Table 3 fields):";
  print_endline !mid_flows;

  (* Per-hop latency decomposition from the span collector. *)
  let b = Span.breakdown (Span.drain span) in
  Printf.printf "\nPer-hop latency over %d spans:\n" b.Span.spans;
  List.iter
    (fun s ->
      let h = s.Span.seg_hist in
      Printf.printf "  %-24s count %-4d mean %6.2fus  p99 %6.2fus\n"
        (Span.hop_name s.Span.seg_from ^ "->" ^ Span.hop_name s.Span.seg_to)
        (Stats.Hist.count h)
        (Stats.Hist.mean h /. 1e3)
        (Stats.Hist.percentile h 99. /. 1e3))
    b.Span.segments;
  if Stats.Hist.count b.Span.end_to_end > 0 then
    Printf.printf "  %-24s count %-4d mean %6.2fus  p99 %6.2fus\n" "end-to-end"
      (Stats.Hist.count b.Span.end_to_end)
      (Stats.Hist.mean b.Span.end_to_end /. 1e3)
      (Stats.Hist.percentile b.Span.end_to_end 99. /. 1e3);

  Format.printf "@.TAS state at the end:@.%a@." Tas.pp_snapshot
    (Tas.snapshot tas)
