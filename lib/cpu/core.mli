(** A simulated CPU core.

    Work items are charged in cycles and execute in FIFO order; a core is a
    serial resource, so queueing delay emerges naturally when offered work
    exceeds capacity. This is the mechanism behind every CPU-bound
    throughput result in the paper: a stack's efficiency (cycles/request)
    and its placement (which cores run stack vs. application code) determine
    saturation throughput.

    Every work item carries a {!category}, and busy time accumulates per
    category as well as in total — the raw material for the paper-style
    per-module cycle breakdowns (Tables 1/2) that the telemetry registry
    exports per core. *)

type t

(** Where a work item's cycles are attributed, mirroring the paper's
    per-module breakdown: fast-path receive (driver + TCP RX), ACK
    processing, segmentation/transmit, slow-path connection handling,
    slow-path congestion control, the libTAS API layer, application code,
    and everything unattributed. *)
type category = Driver_rx | Ack_rx | Tx | Conn | Cc | Api | App | Other

val categories : category list
(** All categories, in a fixed declaration order. *)

val category_name : category -> string

val create : Tas_engine.Sim.t -> ?freq_ghz:float -> id:int -> unit -> t
(** Default frequency 2.1 GHz (the paper's Xeon Platinum 8160). *)

val id : t -> int
val freq_ghz : t -> float

val run : t -> ?cat:category -> cycles:int -> (unit -> unit) -> unit
(** [run t ~cycles f] enqueues a work item consuming [cycles], then calls
    [f] at its completion time. [cat] defaults to [Other]. *)

val run_after :
  t -> ?cat:category -> delay:Tas_engine.Time_ns.t -> cycles:int -> (unit -> unit) -> unit
(** Work item that becomes runnable only after [delay] (e.g. wakeup IPI). *)

val charge : t -> cat:category -> cycles:int -> unit
(** Account [cycles] of busy time (extending [busy_until] exactly as {!run}
    would) without scheduling a completion event. For batched processing
    where one already-scheduled pass will perform the work of many charged
    items — the accounting stays per-item while the events amortize. *)

val busy_ns : t -> int
(** Cumulative busy nanoseconds. Diff snapshots for windowed utilization. *)

val busy_ns_of : t -> category -> int
(** Cumulative busy nanoseconds attributed to one category. *)

val breakdown : t -> (category * int) list
(** Per-category busy nanoseconds, in {!categories} order; sums to
    {!busy_ns}. *)

val enable_util_buckets : t -> interval_ns:int -> unit
(** Turn on per-interval busy-time accounting: from now on every charged
    work item spreads its duration over fixed [interval_ns] buckets of sim
    time (bucket [b] covers [[b*interval, (b+1)*interval)]). Work queued
    behind a backlog is attributed to the interval(s) it actually occupies,
    so a bucket never exceeds [interval_ns] — utilization of interval [b]
    is exactly [util_busy_ns ~bucket:b / interval_ns], the signal the
    workload-proportionality controller thresholds (1.25/0.2 idle cores)
    are defined over.
    @raise Invalid_argument when [interval_ns <= 0]. *)

val util_interval_ns : t -> int
(** The configured interval, 0 when per-interval accounting is off. *)

val util_busy_ns : t -> bucket:int -> int
(** Busy nanoseconds attributed to interval [bucket]; 0 out of range. *)

val busy_until : t -> Tas_engine.Time_ns.t
(** Completion time of the last queued item ([now] when idle). *)

val backlog_ns : t -> int
(** How far the core is behind: [busy_until - now], 0 when idle. *)

val cycles_to_ns : t -> int -> int
