module Sim = Tas_engine.Sim

type category = Driver_rx | Ack_rx | Tx | Conn | Cc | Api | App | Other

let categories = [ Driver_rx; Ack_rx; Tx; Conn; Cc; Api; App; Other ]

let category_name = function
  | Driver_rx -> "rx"
  | Ack_rx -> "ack_rx"
  | Tx -> "tx"
  | Conn -> "conn"
  | Cc -> "cc"
  | Api -> "api"
  | App -> "app"
  | Other -> "other"

let cat_index = function
  | Driver_rx -> 0
  | Ack_rx -> 1
  | Tx -> 2
  | Conn -> 3
  | Cc -> 4
  | Api -> 5
  | App -> 6
  | Other -> 7

type t = {
  sim : Sim.t;
  id : int;
  freq_ghz : float;
  mutable busy_until : int;
  mutable busy_ns : int;
  busy_by : int array;  (* ns per category, indexed by cat_index *)
  mutable util_interval : int;  (* 0 = per-interval accounting off *)
  mutable util_buckets : int array;  (* busy ns per interval, growable *)
}

let create sim ?(freq_ghz = 2.1) ~id () =
  {
    sim;
    id;
    freq_ghz;
    busy_until = 0;
    busy_ns = 0;
    busy_by = Array.make (List.length categories) 0;
    util_interval = 0;
    util_buckets = [||];
  }

let enable_util_buckets t ~interval_ns =
  if interval_ns <= 0 then invalid_arg "Core.enable_util_buckets: interval <= 0";
  t.util_interval <- interval_ns;
  if Array.length t.util_buckets = 0 then t.util_buckets <- Array.make 64 0

let util_interval_ns t = t.util_interval

let util_busy_ns t ~bucket =
  if bucket < 0 || bucket >= Array.length t.util_buckets then 0
  else t.util_buckets.(bucket)

(* Spread [dur] ns of busy time starting at [start] over the interval
   buckets it occupies. [start] can be in the future (queueing backlog), so
   attribution lands in the interval(s) the core actually spends busy. *)
let account_util t ~start ~dur =
  if t.util_interval > 0 && dur > 0 then begin
    let iv = t.util_interval in
    let last = (start + dur - 1) / iv in
    let cap = Array.length t.util_buckets in
    if last >= cap then begin
      let cap' = max (last + 1) (cap * 2) in
      let a = Array.make cap' 0 in
      Array.blit t.util_buckets 0 a 0 cap;
      t.util_buckets <- a
    end;
    let pos = ref start and left = ref dur in
    while !left > 0 do
      let b = !pos / iv in
      let room = ((b + 1) * iv) - !pos in
      let take = min room !left in
      t.util_buckets.(b) <- t.util_buckets.(b) + take;
      pos := !pos + take;
      left := !left - take
    done
  end

let id t = t.id
let freq_ghz t = t.freq_ghz

let cycles_to_ns t cycles =
  int_of_float (ceil (float_of_int cycles /. t.freq_ghz))

let start_no_earlier_than t ~cat ready cycles f =
  let start = max ready t.busy_until in
  let dur = cycles_to_ns t cycles in
  t.busy_until <- start + dur;
  t.busy_ns <- t.busy_ns + dur;
  let i = cat_index cat in
  t.busy_by.(i) <- t.busy_by.(i) + dur;
  account_util t ~start ~dur;
  (* Handle-free: core dispatch is one event per packet-processing step and
     is never cancelled, so the queue entry can be recycled. *)
  Sim.post_at t.sim t.busy_until f

let run t ?(cat = Other) ~cycles f =
  start_no_earlier_than t ~cat (Sim.now t.sim) cycles f

(* Busy-time accounting without an event: the caller already has a pass
   scheduled that will cover this work (burst receive), so only the cost
   needs to land on the core. Identical arithmetic to
   [start_no_earlier_than] minus the [Sim.post_at]. *)
let charge t ~cat ~cycles =
  let start = max (Sim.now t.sim) t.busy_until in
  let dur = cycles_to_ns t cycles in
  t.busy_until <- start + dur;
  t.busy_ns <- t.busy_ns + dur;
  let i = cat_index cat in
  t.busy_by.(i) <- t.busy_by.(i) + dur;
  account_util t ~start ~dur

let run_after t ?(cat = Other) ~delay ~cycles f =
  start_no_earlier_than t ~cat (Sim.now t.sim + delay) cycles f

let busy_ns t = t.busy_ns
let busy_ns_of t cat = t.busy_by.(cat_index cat)
let breakdown t = List.map (fun c -> (c, busy_ns_of t c)) categories
let busy_until t = max t.busy_until (Sim.now t.sim)
let backlog_ns t = max 0 (t.busy_until - Sim.now t.sim)
