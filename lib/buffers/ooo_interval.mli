(** Out-of-order receive tracking (paper §3.1, Exceptions).

    The TAS fast path keeps a bounded set of out-of-order intervals per
    flow. In the paper's (default) configuration the bound is one —
    [ooo_start|len] in Table 3: a new out-of-order segment is accepted
    only if it fits the receive window and touches (overlaps or abuts) a
    tracked interval — or a table slot is free. When the in-order stream
    reaches the lowest interval, the whole contiguous run is delivered as
    one big segment.

    With [max_ranges > 1] (the SACK receiver configuration) several
    disjoint intervals are tracked; they double as the flow's SACK blocks
    ({!sack_blocks}), and a full table evicts the interval furthest from
    the expected edge when a closer segment arrives (the sender's
    retransmission machinery re-covers evicted data). [max_ranges = 1]
    preserves the paper's drop-only semantics exactly. *)

type t

(** What the fast path should do with an arriving segment. Ranges are given
    in sequence space, already trimmed to the acceptable window. *)
type verdict =
  | Deliver of { write_at : Tas_proto.Seq32.t; write_len : int; advance : int }
      (** In-order (possibly after trimming a duplicated prefix): deposit
          [write_len] bytes at [write_at] and advance the contiguous stream
          by [advance] bytes — [advance >= write_len] when the segment
          bridges the gap to stored interval(s). *)
  | Store of { write_at : Tas_proto.Seq32.t; write_len : int }
      (** Out-of-order but buffered: deposit without advancing the stream. *)
  | Duplicate  (** Entirely old data: just (re-)acknowledge. *)
  | Drop  (** Unbufferable out-of-order data: drop, triggering dup-ACKs. *)

val create : ?max_ranges:int -> unit -> t
(** [max_ranges] (default 1) bounds the tracked intervals.
    @raise Invalid_argument if [max_ranges < 1]. *)

val is_empty : t -> bool

val interval : t -> (Tas_proto.Seq32.t * int) option
(** The lowest tracked [(start, length)] interval, if any (the Table-3
    shadow field). *)

val ranges : t -> (Tas_proto.Seq32.t * int) list
(** Every tracked [(start, length)] interval, ascending. *)

val sack_blocks :
  t -> limit:int -> (Tas_proto.Seq32.t * Tas_proto.Seq32.t) list
(** Up to [limit] [(start, end)] blocks, most recently updated first —
    the RFC 2018 ordering for the ACK's SACK option. *)

val handle :
  t ->
  exp:Tas_proto.Seq32.t ->
  window:int ->
  seg_start:Tas_proto.Seq32.t ->
  seg_len:int ->
  verdict
(** [handle t ~exp ~window ~seg_start ~seg_len] decides the fate of a
    segment given the next expected sequence number [exp] and [window] free
    receive-buffer bytes starting at [exp]. Updates the interval state. *)

val reset : t -> unit
(** Forget any stored intervals (connection reset / reassignment). *)
