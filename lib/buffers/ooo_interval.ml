module Seq32 = Tas_proto.Seq32

type range = {
  mutable r_start : Seq32.t;
  mutable r_len : int;
  mutable r_touch : int;  (* stamp of the last update; SACK block order *)
}

type t = {
  mutable ranges : range list;
      (* ascending sequence order, pairwise disjoint and non-adjacent *)
  max_ranges : int;
  mutable stamp : int;
}

type verdict =
  | Deliver of { write_at : Seq32.t; write_len : int; advance : int }
  | Store of { write_at : Seq32.t; write_len : int }
  | Duplicate
  | Drop

let create ?(max_ranges = 1) () =
  if max_ranges < 1 then invalid_arg "Ooo_interval.create: max_ranges < 1";
  { ranges = []; max_ranges; stamp = 0 }

let is_empty t = t.ranges = []

let interval t =
  match t.ranges with [] -> None | r :: _ -> Some (r.r_start, r.r_len)

let ranges t = List.map (fun r -> (r.r_start, r.r_len)) t.ranges

let reset t = t.ranges <- []

let sack_blocks t ~limit =
  (* Most recently updated first (RFC 2018's ordering hint), capped at the
     option-space limit. *)
  let by_recency =
    List.sort (fun a b -> compare b.r_touch a.r_touch) t.ranges
  in
  let rec take n = function
    | r :: rest when n > 0 ->
      (r.r_start, Seq32.add r.r_start r.r_len) :: take (n - 1) rest
    | _ -> []
  in
  take limit by_recency

let range_end r = Seq32.add r.r_start r.r_len

let insert_sorted r ranges =
  let rec go = function
    | r' :: rest when Seq32.lt r'.r_start r.r_start -> r' :: go rest
    | rest -> r :: rest
  in
  go ranges

let handle t ~exp ~window ~seg_start ~seg_len =
  (* Trim any prefix that duplicates already-delivered data. *)
  let s, l =
    if Seq32.lt seg_start exp then begin
      let dup = Seq32.diff exp seg_start in
      if dup >= seg_len then (exp, 0) else (exp, seg_len - dup)
    end
    else (seg_start, seg_len)
  in
  if l = 0 then Duplicate
  else if s = exp then begin
    (* In-order: clip to the receive window. *)
    let l = min l window in
    if l = 0 then Drop
    else begin
      (* The stream advances through every stored range the new edge
         touches (gap closed): deliver the whole contiguous run. *)
      let new_exp = ref (Seq32.add exp l) in
      let rec consume = function
        | r :: rest when Seq32.geq !new_exp r.r_start ->
          if Seq32.gt (range_end r) !new_exp then new_exp := range_end r;
          consume rest
        | rest -> rest
      in
      t.ranges <- consume t.ranges;
      Deliver { write_at = s; write_len = l; advance = Seq32.diff !new_exp exp }
    end
  end
  else begin
    (* Out-of-order: s is beyond exp. Must fit within the window. *)
    let offset = Seq32.diff s exp in
    if offset >= window then Drop
    else begin
      let l = min l (window - offset) in
      let seg_end = Seq32.add s l in
      (* Ranges the segment overlaps or abuts merge with it (the paper's
         "segments of the same interval"); merging can chain several
         stored ranges into one. *)
      let touching, others =
        List.partition
          (fun r ->
            not (Seq32.gt s (range_end r) || Seq32.gt r.r_start seg_end))
          t.ranges
      in
      match touching with
      | _ :: _ ->
        let ns =
          List.fold_left
            (fun acc r -> if Seq32.lt r.r_start acc then r.r_start else acc)
            s touching
        in
        let ne =
          List.fold_left
            (fun acc r ->
              if Seq32.gt (range_end r) acc then range_end r else acc)
            seg_end touching
        in
        t.stamp <- t.stamp + 1;
        t.ranges <-
          insert_sorted
            { r_start = ns; r_len = Seq32.diff ne ns; r_touch = t.stamp }
            others;
        Store { write_at = s; write_len = l }
      | [] ->
        if List.length t.ranges < t.max_ranges then begin
          t.stamp <- t.stamp + 1;
          t.ranges <-
            insert_sorted
              { r_start = s; r_len = l; r_touch = t.stamp }
              t.ranges;
          Store { write_at = s; write_len = l }
        end
        else if t.max_ranges >= 2 then begin
          (* Multi-range mode, table full: evict the range furthest from
             the expected edge when the new segment sits closer (the
             evicted data is still covered by the sender's
             retransmission machinery); otherwise drop the newcomer.
             Single-interval mode keeps the paper's drop-only rule. *)
          let furthest =
            List.fold_left
              (fun acc r ->
                match acc with
                | None -> Some r
                | Some m ->
                  if Seq32.diff r.r_start exp > Seq32.diff m.r_start exp then
                    Some r
                  else acc)
              None t.ranges
          in
          match furthest with
          | Some f when Seq32.diff f.r_start exp > offset ->
            t.ranges <- List.filter (fun r -> r != f) t.ranges;
            t.stamp <- t.stamp + 1;
            t.ranges <-
              insert_sorted
                { r_start = s; r_len = l; r_touch = t.stamp }
                t.ranges;
            Store { write_at = s; write_len = l }
          | _ -> Drop
        end
        else Drop
    end
  end
