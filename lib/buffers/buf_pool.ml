(* Exact-length payload buffer pool.

   The fast path allocates one payload buffer per transmitted segment; under
   a bulk workload that is the single largest allocation on the packet hot
   path (an MSS-sized Bytes per packet). Workloads send a small set of
   distinct sizes (MSS-sized bulk segments, fixed RPC sizes), so free lists
   are keyed by exact length: a recycled buffer is returned only for a
   request of exactly its size, which keeps [Bytes.length payload] an exact
   segment length everywhere — no slack, no slicing.

   Recycled buffers contain stale bytes; every taker must overwrite the full
   buffer (the fast path fills it with [Ring.read_at ~len]). Reuse is
   therefore invisible to simulation results: pooling on/off, hit or miss,
   the simulated behaviour is bit-identical.

   [local ()] is the per-domain instance: every host of a simulation running
   on one domain shares it, so a receiver recycling a sender's payload
   returns the buffer to the pool the sender draws from. Parallel experiment
   jobs on different domains get disjoint pools — no cross-domain traffic,
   no locks. *)

type stats = {
  takes : int;
  hits : int;
  gives : int;
  drops : int;  (* gives refused because the size class was full *)
}

type t = {
  classes : (int, bytes list ref) Hashtbl.t;
  max_per_class : int;
  mutable counts : (int, int) Hashtbl.t;
  mutable takes : int;
  mutable hits : int;
  mutable gives : int;
  mutable drops : int;
}

let create ?(max_per_class = 256) () =
  {
    classes = Hashtbl.create 16;
    max_per_class;
    counts = Hashtbl.create 16;
    takes = 0;
    hits = 0;
    gives = 0;
    drops = 0;
  }

(* Global A/B switch for perf measurement: with reuse off, [take] always
   allocates and [give] always drops, reproducing pre-pool allocation
   behaviour without a separate build. Toggle only while no simulation is
   running (the perf harness is serial). *)
let reuse = ref true
let set_reuse v = reuse := v

(* Below this size a fresh [Bytes.create] is cheaper than the two hashtable
   operations a pooled round trip costs; small-RPC payloads skip the pool
   entirely. *)
let min_len = 256

let take t len =
  t.takes <- t.takes + 1;
  if len < min_len then (if len = 0 then Bytes.empty else Bytes.create len)
  else if not !reuse then Bytes.create len
  else
    match Hashtbl.find_opt t.classes len with
    | Some ({ contents = buf :: rest } as cell) ->
      cell := rest;
      Hashtbl.replace t.counts len (Hashtbl.find t.counts len - 1);
      t.hits <- t.hits + 1;
      buf
    | _ -> Bytes.create len

let give t buf =
  let len = Bytes.length buf in
  if len >= min_len then begin
    t.gives <- t.gives + 1;
    let count = Option.value ~default:0 (Hashtbl.find_opt t.counts len) in
    if (not !reuse) || count >= t.max_per_class then t.drops <- t.drops + 1
    else begin
      (match Hashtbl.find_opt t.classes len with
      | Some cell -> cell := buf :: !cell
      | None -> Hashtbl.replace t.classes len (ref [ buf ]));
      Hashtbl.replace t.counts len (count + 1)
    end
  end

let stats t = { takes = t.takes; hits = t.hits; gives = t.gives; drops = t.drops }

let reset_stats t =
  t.takes <- 0;
  t.hits <- 0;
  t.gives <- 0;
  t.drops <- 0

let key = Domain.DLS.new_key (fun () -> create ())
let local () = Domain.DLS.get key
