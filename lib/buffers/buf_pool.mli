(** Exact-length payload buffer pool for the packet hot path.

    Free lists are keyed by exact buffer length, so a recycled buffer is
    only handed out for a request of precisely its size and
    [Bytes.length payload] stays an exact segment length. Recycled buffers
    hold stale bytes — takers must overwrite the full buffer. Reuse is
    invisible to simulation results.

    {!local} is the per-domain instance shared by all hosts of a simulation
    running on that domain (parallel experiment jobs on other domains get
    their own). *)

type t

type stats = {
  takes : int;  (** allocation requests *)
  hits : int;  (** requests served from a free list *)
  gives : int;  (** buffers offered back *)
  drops : int;  (** gives refused because the size class was full *)
}

val create : ?max_per_class:int -> unit -> t
(** Fresh pool. Each size class keeps at most [max_per_class] (default 256)
    free buffers; surplus gives fall through to the GC. *)

val min_len : int
(** Buffers shorter than this (256 B) bypass the pool in both directions: a
    fresh allocation is cheaper than the hashtable round trip. *)

val take : t -> int -> bytes
(** [take t len] is a buffer of exactly [len] bytes, recycled when one is
    free and freshly allocated otherwise. Contents are unspecified for
    recycled buffers. [take t 0] is [Bytes.empty]. *)

val give : t -> bytes -> unit
(** Return a buffer to the pool. The caller must not touch it afterwards. *)

val stats : t -> stats
val reset_stats : t -> unit

val local : unit -> t
(** The calling domain's pool instance. *)

val set_reuse : bool -> unit
(** Global A/B switch (default [true]). With reuse off, {!take} always
    allocates fresh and {!give} drops — the pre-pool allocation behaviour,
    for perf comparison. Toggle only while no simulation is running. *)
