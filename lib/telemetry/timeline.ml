type labels = (string * string) list

type core_sample = {
  c_role : string;
  c_id : int;
  c_busy_ns : int;
  c_util : float;
  c_backlog_ns : int;
}

type frame = {
  seq : int;
  ts : int;
  counters : (string * labels * int) list;
  gauges : (string * labels * float) list;
  cores : core_sample list;
  shard_flows : int array;
  arena : (int * int) option;
}

type core_probe = {
  p_role : string;
  p_id : int;
  p_busy_in : int -> int;
  p_backlog : unit -> int;
}

type t = {
  interval_ns : int;
  capacity : int;
  metrics : Metrics.t;
  prev : (string * labels, int) Hashtbl.t;  (* last counter values *)
  mutable rev_cores : core_probe list;
  mutable shard_probe : (unit -> int array) option;
  mutable arena_probe : (unit -> (int * int) option) option;
  ring : frame option array;
  mutable head : int;  (* index of oldest frame *)
  mutable len : int;
  mutable captured : int;
  mutable evicted : int;
}

let create ~interval_ns ~capacity ~metrics () =
  if interval_ns <= 0 then invalid_arg "Timeline.create: interval_ns <= 0";
  if capacity <= 0 then invalid_arg "Timeline.create: capacity <= 0";
  {
    interval_ns;
    capacity;
    metrics;
    prev = Hashtbl.create 64;
    rev_cores = [];
    shard_probe = None;
    arena_probe = None;
    ring = Array.make capacity None;
    head = 0;
    len = 0;
    captured = 0;
    evicted = 0;
  }

let interval_ns t = t.interval_ns
let capacity t = t.capacity
let length t = t.len
let captured t = t.captured
let evicted t = t.evicted

let add_core t ~role ~id ~busy_in ~backlog =
  t.rev_cores <-
    { p_role = role; p_id = id; p_busy_in = busy_in; p_backlog = backlog }
    :: t.rev_cores

let set_shard_probe t f = t.shard_probe <- Some f
let set_arena_probe t f = t.arena_probe <- Some f

let push t frame =
  if t.len = t.capacity then begin
    (* Full: overwrite the oldest frame. *)
    t.ring.(t.head) <- Some frame;
    t.head <- (t.head + 1) mod t.capacity;
    t.evicted <- t.evicted + 1
  end
  else begin
    t.ring.((t.head + t.len) mod t.capacity) <- Some frame;
    t.len <- t.len + 1
  end;
  t.captured <- t.captured + 1

let capture t ~ts =
  let bucket = if ts <= 0 then 0 else (ts - 1) / t.interval_ns in
  let counters = ref [] and gauges = ref [] in
  List.iter
    (fun s ->
      match s.Metrics.s_value with
      | Metrics.Counter v ->
        let key = (s.Metrics.s_name, s.Metrics.s_labels) in
        let prev = Option.value ~default:0 (Hashtbl.find_opt t.prev key) in
        Hashtbl.replace t.prev key v;
        counters := (s.Metrics.s_name, s.Metrics.s_labels, v - prev) :: !counters
      | Metrics.Gauge v ->
        gauges := (s.Metrics.s_name, s.Metrics.s_labels, v) :: !gauges
      | Metrics.Hist _ -> ())
    (Metrics.snapshot t.metrics);
  let cores =
    List.rev_map
      (fun p ->
        let busy = p.p_busy_in bucket in
        {
          c_role = p.p_role;
          c_id = p.p_id;
          c_busy_ns = busy;
          c_util = float_of_int busy /. float_of_int t.interval_ns;
          c_backlog_ns = p.p_backlog ();
        })
      t.rev_cores
  in
  let frame =
    {
      seq = t.captured;
      ts;
      counters = List.rev !counters;
      gauges = List.rev !gauges;
      cores;
      shard_flows =
        (match t.shard_probe with Some f -> f () | None -> [||]);
      arena = (match t.arena_probe with Some f -> f () | None -> None);
    }
  in
  push t frame

let frames t =
  let out = ref [] in
  for i = t.len - 1 downto 0 do
    match t.ring.((t.head + i) mod t.capacity) with
    | Some f -> out := f :: !out
    | None -> ()
  done;
  !out

(* Stable ts sort, mirroring [Trace.merge]: frames of one stream keep their
   order, equal-ts frames across streams order by stream position. *)
let merge streams =
  List.stable_sort (fun a b -> compare a.ts b.ts) (List.concat streams)

(* --- JSON ---------------------------------------------------------------- *)

let labels_to_json ls = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) ls)

let frame_to_json f =
  Json.Obj
    [
      ("seq", Json.Int f.seq);
      ("ts", Json.Int f.ts);
      ( "counters",
        Json.List
          (List.map
             (fun (n, ls, d) ->
               Json.Obj
                 [
                   ("name", Json.Str n);
                   ("labels", labels_to_json ls);
                   ("delta", Json.Int d);
                 ])
             f.counters) );
      ( "gauges",
        Json.List
          (List.map
             (fun (n, ls, v) ->
               Json.Obj
                 [
                   ("name", Json.Str n);
                   ("labels", labels_to_json ls);
                   ("value", Json.Float v);
                 ])
             f.gauges) );
      ( "cores",
        Json.List
          (List.map
             (fun c ->
               Json.Obj
                 [
                   ("role", Json.Str c.c_role);
                   ("id", Json.Int c.c_id);
                   ("busy_ns", Json.Int c.c_busy_ns);
                   ("util", Json.Float c.c_util);
                   ("backlog_ns", Json.Int c.c_backlog_ns);
                 ])
             f.cores) );
      ( "shard_flows",
        Json.List (Array.to_list (Array.map (fun n -> Json.Int n) f.shard_flows))
      );
      ( "arena",
        match f.arena with
        | None -> Json.Null
        | Some (live, cap) ->
          Json.Obj [ ("live", Json.Int live); ("capacity", Json.Int cap) ] );
    ]

let to_json t =
  Json.Obj
    [
      ("interval_ns", Json.Int t.interval_ns);
      ("capacity", Json.Int t.capacity);
      ("captured", Json.Int t.captured);
      ("evicted", Json.Int t.evicted);
      ("frames", Json.List (List.map frame_to_json (frames t)));
    ]

(* --- Parsing (artifact import for the CLI) ------------------------------- *)

let fail msg = raise (Json.Parse_error ("Timeline.frames_of_json: " ^ msg))

let get_int = function
  | Json.Int n -> n
  | _ -> fail "expected int"

let get_float = function
  | Json.Int n -> float_of_int n
  | Json.Float f -> f
  | _ -> fail "expected number"

let get_str = function
  | Json.Str s -> s
  | _ -> fail "expected string"

let get_list = function
  | Json.List l -> l
  | _ -> fail "expected list"

let get_mem key j =
  match Json.member key j with
  | Some v -> v
  | None -> fail (Printf.sprintf "missing key %S" key)

let labels_of_json = function
  | Json.Obj fields ->
    List.map (fun (k, v) -> (k, get_str v)) fields
  | _ -> fail "labels: expected object"

let frame_of_json j =
  {
    seq = get_int (get_mem "seq" j);
    ts = get_int (get_mem "ts" j);
    counters =
      List.map
        (fun c ->
          ( get_str (get_mem "name" c),
            labels_of_json (get_mem "labels" c),
            get_int (get_mem "delta" c) ))
        (get_list (get_mem "counters" j));
    gauges =
      List.map
        (fun g ->
          ( get_str (get_mem "name" g),
            labels_of_json (get_mem "labels" g),
            get_float (get_mem "value" g) ))
        (get_list (get_mem "gauges" j));
    cores =
      List.map
        (fun c ->
          {
            c_role = get_str (get_mem "role" c);
            c_id = get_int (get_mem "id" c);
            c_busy_ns = get_int (get_mem "busy_ns" c);
            c_util = get_float (get_mem "util" c);
            c_backlog_ns = get_int (get_mem "backlog_ns" c);
          })
        (get_list (get_mem "cores" j));
    shard_flows =
      Array.of_list (List.map get_int (get_list (get_mem "shard_flows" j)));
    arena =
      (match get_mem "arena" j with
      | Json.Null -> None
      | a -> Some (get_int (get_mem "live" a), get_int (get_mem "capacity" a)));
  }

let frames_of_json j =
  let frame_list =
    match Json.member "frames" j with
    | Some l -> get_list l
    | None -> get_list j
  in
  List.map frame_of_json frame_list

(* --- Chrome counter events ----------------------------------------------- *)

(* "C"-phase counter samples: one event per series per frame, timestamped in
   microseconds like [Span.to_chrome_json], so timelines render as counter
   tracks above the span slices in the same trace document. *)
let to_chrome_counters ?(pid = 1) ?(prefix = "") ~interval_ns frames =
  ignore interval_ns;
  let ev ~ts ~name args =
    Json.Obj
      [
        ("name", Json.Str (prefix ^ name));
        ("ph", Json.Str "C");
        ("ts", Json.Float (float_of_int ts /. 1000.0));
        ("pid", Json.Int pid);
        ("args", Json.Obj args);
      ]
  in
  List.concat_map
    (fun f ->
      let core_evs =
        List.map
          (fun c ->
            ev ~ts:f.ts
              ~name:(Printf.sprintf "util %s%d" c.c_role c.c_id)
              [ ("util", Json.Float c.c_util) ])
          f.cores
      in
      let shard_ev =
        if Array.length f.shard_flows = 0 then []
        else
          [
            ev ~ts:f.ts ~name:"shard flows"
              [ ("flows", Json.Int (Array.fold_left ( + ) 0 f.shard_flows)) ];
          ]
      in
      let arena_ev =
        match f.arena with
        | None -> []
        | Some (live, cap) ->
          [
            ev ~ts:f.ts ~name:"arena"
              [
                ("live", Json.Int live);
                ( "free",
                  Json.Int (max 0 (cap - live)) );
              ];
          ]
      in
      core_evs @ shard_ev @ arena_ev)
    frames
