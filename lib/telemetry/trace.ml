module Spsc = Tas_buffers.Spsc_queue

type kind =
  | Rx_data
  | Rx_ack
  | Tx_data
  | Ack_tx
  | Ooo_store
  | Payload_drop
  | Fast_rexmit
  | Timeout_rexmit
  | Conn_setup
  | Conn_teardown
  | Exception_fwd
  | Core_scale
  | Fault_drop
  | Fault_dup
  | Fault_corrupt
  | Fault_hold
  | Malformed_drop
  | Csum_drop
  | Rst_tx
  | Shard_migrate
  | Ctl_scale
  | Health_rexmit_storm
  | Health_arena_pressure
  | Health_shard_imbalance
  | Health_backlog_growth
  | Health_ring_drops
  | Health_core_flap
  | Rec_enter
  | Rec_exit
  | Rec_mark_lost
  | Rec_retransmit
  | Rec_tlp_probe
  | Rec_reo_timeout

let kind_name = function
  | Rx_data -> "rx_data"
  | Rx_ack -> "rx_ack"
  | Tx_data -> "tx_data"
  | Ack_tx -> "ack_tx"
  | Ooo_store -> "ooo_store"
  | Payload_drop -> "payload_drop"
  | Fast_rexmit -> "fast_rexmit"
  | Timeout_rexmit -> "timeout_rexmit"
  | Conn_setup -> "conn_setup"
  | Conn_teardown -> "conn_teardown"
  | Exception_fwd -> "exception_fwd"
  | Core_scale -> "core_scale"
  | Fault_drop -> "fault_drop"
  | Fault_dup -> "fault_dup"
  | Fault_corrupt -> "fault_corrupt"
  | Fault_hold -> "fault_hold"
  | Malformed_drop -> "malformed_drop"
  | Csum_drop -> "csum_drop"
  | Rst_tx -> "rst_tx"
  | Shard_migrate -> "shard_migrate"
  | Ctl_scale -> "ctl_scale"
  | Health_rexmit_storm -> "health_rexmit_storm"
  | Health_arena_pressure -> "health_arena_pressure"
  | Health_shard_imbalance -> "health_shard_imbalance"
  | Health_backlog_growth -> "health_backlog_growth"
  | Health_ring_drops -> "health_ring_drops"
  | Health_core_flap -> "health_core_flap"
  | Rec_enter -> "rec_enter"
  | Rec_exit -> "rec_exit"
  | Rec_mark_lost -> "rec_mark_lost"
  | Rec_retransmit -> "rec_retransmit"
  | Rec_tlp_probe -> "rec_tlp_probe"
  | Rec_reo_timeout -> "rec_reo_timeout"

let all_kinds =
  [
    Rx_data; Rx_ack; Tx_data; Ack_tx; Ooo_store; Payload_drop; Fast_rexmit;
    Timeout_rexmit; Conn_setup; Conn_teardown; Exception_fwd; Core_scale;
    Fault_drop; Fault_dup; Fault_corrupt; Fault_hold; Malformed_drop;
    Csum_drop; Rst_tx; Shard_migrate; Ctl_scale; Health_rexmit_storm;
    Health_arena_pressure; Health_shard_imbalance; Health_backlog_growth;
    Health_ring_drops; Health_core_flap; Rec_enter; Rec_exit; Rec_mark_lost;
    Rec_retransmit; Rec_tlp_probe; Rec_reo_timeout;
  ]

type event = {
  ts : Tas_engine.Time_ns.t;
  kind : kind;
  core : int;
  flow : int;
}

type t = {
  enabled : bool;
  ring : event Spsc.t;
  mutable dropped : int;
  mutable recorded : int;
}

let create ?(enabled = true) ~capacity () =
  { enabled; ring = Spsc.create (max 1 capacity); dropped = 0; recorded = 0 }

let disabled () = create ~enabled:false ~capacity:1 ()

let enabled t = t.enabled
let capacity t = Spsc.capacity t.ring
let length t = Spsc.length t.ring
let dropped t = t.dropped
let recorded t = t.recorded

let record t ~ts ~kind ~core ~flow =
  if t.enabled then begin
    t.recorded <- t.recorded + 1;
    if not (Spsc.try_push t.ring { ts; kind; core; flow }) then
      t.dropped <- t.dropped + 1
  end

let drain t =
  let out = ref [] in
  ignore (Spsc.drain t.ring (fun e -> out := e :: !out));
  List.rev !out

(* Deterministic cross-ring merge: stable sort by timestamp, so events from
   the same ring keep their record order and equal-timestamp events from
   different rings order by the position of their ring in the argument. *)
let merge streams =
  List.stable_sort (fun a b -> compare a.ts b.ts) (List.concat streams)

let event_to_json e =
  Json.Obj
    [
      ("ts", Json.Int e.ts);
      ("kind", Json.Str (kind_name e.kind));
      ("core", Json.Int e.core);
      ("flow", Json.Int e.flow);
    ]

let to_json t events =
  Json.Obj
    [
      ("enabled", Json.Bool t.enabled);
      ("capacity", Json.Int (capacity t));
      ("recorded", Json.Int t.recorded);
      ("dropped", Json.Int t.dropped);
      ("events", Json.List (List.map event_to_json events));
    ]

let counts_by_kind events =
  List.map
    (fun k ->
      (k, List.length (List.filter (fun e -> e.kind = k) events)))
    all_kinds
  |> List.filter (fun (_, n) -> n > 0)
