(** Bounded structured trace-event ring.

    A flight recorder for the simulated stack: every interesting data-path or
    control-path step can log a fixed-shape event (sim timestamp, event kind,
    core id, flow id). The ring is a bounded SPSC queue
    ({!Tas_buffers.Spsc_queue}, the same structure as the shared-memory
    context queues); when full, new events are dropped and counted rather
    than blocking or growing — tracing must never perturb the simulation.

    Cost when disabled: {!record} tests one immutable boolean and returns.
    Constructing the event record only happens on the enabled path. *)

type kind =
  | Rx_data         (** fast path received a data segment *)
  | Rx_ack          (** fast path received a pure ACK *)
  | Tx_data         (** fast path transmitted a data segment *)
  | Ack_tx          (** fast path generated an ACK *)
  | Ooo_store       (** out-of-order segment buffered *)
  | Payload_drop    (** receive payload dropped (window/ooo limits) *)
  | Fast_rexmit     (** triple-duplicate-ACK fast retransmit *)
  | Timeout_rexmit  (** slow-path timeout retransmit *)
  | Conn_setup      (** slow path established a connection *)
  | Conn_teardown   (** slow path removed a connection *)
  | Exception_fwd   (** fast path forwarded a packet to the slow path *)
  | Core_scale      (** workload-proportionality changed the core count *)
  | Fault_drop      (** fault stage dropped a packet (loss/blackout) *)
  | Fault_dup       (** fault stage delivered a duplicate copy *)
  | Fault_corrupt   (** fault stage damaged a payload or header *)
  | Fault_hold      (** fault stage held a packet back for reordering *)
  | Malformed_drop  (** fast path dropped a length-inconsistent packet *)
  | Csum_drop       (** NIC dropped a checksum-failing frame *)
  | Rst_tx          (** slow path generated an RST *)
  | Shard_migrate   (** RSS rewrite moved a flow group between shards *)
  | Ctl_scale       (** elastic controller actuated a core-count change
                        ([core] = new count, [flow] = verdict code) *)
  | Health_rexmit_storm    (** watchdog: retransmit burst above threshold *)
  | Health_arena_pressure  (** watchdog: flow arena near exhaustion *)
  | Health_shard_imbalance (** watchdog: shard occupancy skew above bound *)
  | Health_backlog_growth  (** watchdog: slow-path backlog growing frames in a row *)
  | Health_ring_drops      (** watchdog: trace/span ring dropped events *)
  | Health_core_flap       (** watchdog: active-core count oscillating *)
  | Rec_enter       (** SACK/RACK recovery episode began *)
  | Rec_exit        (** recovery episode completed (cum. ACK past point) *)
  | Rec_mark_lost   (** scoreboard marked one or more segments lost *)
  | Rec_retransmit  (** selective retransmission of a lost segment *)
  | Rec_tlp_probe   (** tail-loss probe fired *)
  | Rec_reo_timeout (** RACK reordering timer fired and marked losses *)

val kind_name : kind -> string
val all_kinds : kind list

type event = {
  ts : Tas_engine.Time_ns.t;
  kind : kind;
  core : int;  (** simulated core id, -1 when not core-attributed *)
  flow : int;  (** application-opaque flow id, -1 when not flow-attributed *)
}

type t

val create : ?enabled:bool -> capacity:int -> unit -> t
val disabled : unit -> t
(** A permanently-off ring (capacity 1); the default wired into components
    when no tracing is requested. *)

val enabled : t -> bool
val capacity : t -> int
val length : t -> int

val record : t -> ts:Tas_engine.Time_ns.t -> kind:kind -> core:int -> flow:int -> unit
(** O(1); a single boolean test when disabled; drops (and counts) when the
    ring is full. *)

val dropped : t -> int
(** Events discarded because the ring was full. *)

val recorded : t -> int
(** Events offered while enabled (accepted + dropped). *)

val drain : t -> event list
(** Pop all buffered events in record order (consuming). *)

val merge : event list list -> event list
(** Merge several drained streams into one timestamp-ordered stream.
    Deterministic: the sort is stable, so events of one stream keep their
    record order and equal-timestamp events across streams order by their
    stream's position in the argument. *)

val event_to_json : event -> Json.t

val to_json : t -> event list -> Json.t
(** Ring metadata plus the given (previously drained) events. *)

val counts_by_kind : event list -> (kind * int) list
(** Histogram of event kinds, in declaration order, zero entries omitted. *)
