module Stats = Tas_engine.Stats

type labels = (string * string) list

type instrument =
  | Counter_fn of (unit -> int)
  | Gauge_fn of (unit -> float)
  | Histogram of Stats.Hist.t

type entry = {
  name : string;
  labels : labels;
  help : string;
  instrument : instrument;
}

type t = {
  tbl : (string * labels, entry) Hashtbl.t;
  mutable rev_order : entry list;  (* insertion order, for iteration *)
  q_points : float list;  (* percentile points for hist summaries *)
}

let default_quantiles = [ 50.0; 90.0; 99.0; 99.9 ]

let create ?(quantiles = default_quantiles) () =
  { tbl = Hashtbl.create 64; rev_order = []; q_points = quantiles }

let norm_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let validate_name name =
  if name = "" then invalid_arg "Metrics: empty metric name";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ()
      | _ -> invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" name))
    name

let add t ~name ~labels ~help instrument =
  validate_name name;
  let labels = norm_labels labels in
  let key = (name, labels) in
  if Hashtbl.mem t.tbl key then
    invalid_arg
      (Printf.sprintf "Metrics: duplicate registration of %S" name);
  let e = { name; labels; help; instrument } in
  Hashtbl.replace t.tbl key e;
  t.rev_order <- e :: t.rev_order

let find t ~name ~labels = Hashtbl.find_opt t.tbl (name, norm_labels labels)

let counter_fn t ?(labels = []) ?(help = "") name f =
  add t ~name ~labels ~help (Counter_fn f)

let gauge_fn t ?(labels = []) ?(help = "") name f =
  add t ~name ~labels ~help (Gauge_fn f)

let counter t ?(labels = []) ?(help = "") name =
  match find t ~name ~labels with
  | Some { instrument = Counter_fn _; _ } ->
    invalid_arg
      (Printf.sprintf "Metrics.counter: %S already registered as a closure" name)
  | Some _ -> invalid_arg (Printf.sprintf "Metrics.counter: %S is not a counter" name)
  | None ->
    let c = Stats.Counter.create () in
    add t ~name ~labels ~help (Counter_fn (fun () -> Stats.Counter.value c));
    c

let hist t ?(labels = []) ?(help = "") name =
  match find t ~name ~labels with
  | Some { instrument = Histogram h; _ } -> h
  | Some _ ->
    invalid_arg (Printf.sprintf "Metrics.hist: %S is not a histogram" name)
  | None ->
    let h = Stats.Hist.create () in
    add t ~name ~labels ~help (Histogram h);
    h

(* --- Snapshots ---------------------------------------------------------- *)

type hist_summary = {
  count : int;
  mean : float;
  max_v : float;
  quantiles : (float * float) list;
  buckets : (int * int) list;
}

let hist_of_summary h =
  Stats.Hist.of_buckets
    ~sum:(h.mean *. float_of_int h.count)
    ~max_v:h.max_v h.buckets

let quantile h p =
  match List.assoc_opt p h.quantiles with
  | Some v -> v
  | None -> Stats.Hist.percentile (hist_of_summary h) p

type value =
  | Counter of int
  | Gauge of float
  | Hist of hist_summary

type sample = {
  s_name : string;
  s_labels : labels;
  s_help : string;
  s_value : value;
}

let summarize ~points h =
  {
    count = Stats.Hist.count h;
    mean = Stats.Hist.mean h;
    max_v = Stats.Hist.max_v h;
    quantiles = List.map (fun p -> (p, Stats.Hist.percentile h p)) points;
    buckets = Stats.Hist.buckets h;
  }

let read ~points = function
  | Counter_fn f -> Counter (f ())
  | Gauge_fn f -> Gauge (f ())
  | Histogram h -> Hist (summarize ~points h)

let compare_entry a b =
  match String.compare a.name b.name with
  | 0 -> compare a.labels b.labels
  | c -> c

let snapshot t =
  List.rev t.rev_order
  |> List.stable_sort compare_entry
  |> List.map (fun e ->
         {
           s_name = e.name;
           s_labels = e.labels;
           s_help = e.help;
           s_value = read ~points:t.q_points e.instrument;
         })

(* --- Cross-registry merge ----------------------------------------------- *)

(* Exact merge: sum the raw buckets, rebuild a histogram, and re-query the
   quantile points of the first summary on the combined distribution. *)
let merge_hist a b =
  if a.count + b.count = 0 then a
  else begin
    let h = Stats.Hist.merge (hist_of_summary a) (hist_of_summary b) in
    let points =
      if a.quantiles <> [] then List.map fst a.quantiles
      else List.map fst b.quantiles
    in
    summarize ~points h
  end

let merge_value a b =
  match (a, b) with
  | Counter x, Counter y -> Counter (x + y)
  | Gauge x, Gauge y -> Gauge (x +. y)
  | Hist x, Hist y -> Hist (merge_hist x y)
  | _ -> invalid_arg "Metrics.merge: mismatched sample types"

let merge snapshots =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (List.iter (fun s ->
         let key = (s.s_name, s.s_labels) in
         match Hashtbl.find_opt tbl key with
         | None ->
           Hashtbl.replace tbl key s;
           order := key :: !order
         | Some prev ->
           Hashtbl.replace tbl key
             {
               prev with
               s_value = merge_value prev.s_value s.s_value;
               s_help = (if prev.s_help = "" then s.s_help else prev.s_help);
             }))
    snapshots;
  List.rev_map (Hashtbl.find tbl) !order
  |> List.stable_sort (fun a b ->
         match String.compare a.s_name b.s_name with
         | 0 -> compare a.s_labels b.s_labels
         | c -> c)

(* --- Exporters ---------------------------------------------------------- *)

let prom_labels = function
  | [] -> ""
  | labels ->
    let body =
      List.map
        (fun (k, v) ->
          let b = Buffer.create 16 in
          Buffer.add_string b k;
          Buffer.add_string b "=\"";
          String.iter
            (function
              | '"' -> Buffer.add_string b "\\\""
              | '\\' -> Buffer.add_string b "\\\\"
              | '\n' -> Buffer.add_string b "\\n"
              | c -> Buffer.add_char b c)
            v;
          Buffer.add_char b '"';
          Buffer.contents b)
        labels
    in
    "{" ^ String.concat "," body ^ "}"

let to_prometheus t =
  let b = Buffer.create 1024 in
  let last_name = ref "" in
  let header name help typ =
    if name <> !last_name then begin
      last_name := name;
      if help <> "" then
        Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name typ)
    end
  in
  List.iter
    (fun s ->
      let ls = prom_labels s.s_labels in
      match s.s_value with
      | Counter v ->
        header s.s_name s.s_help "counter";
        Buffer.add_string b (Printf.sprintf "%s%s %d\n" s.s_name ls v)
      | Gauge v ->
        header s.s_name s.s_help "gauge";
        Buffer.add_string b
          (Printf.sprintf "%s%s %s\n" s.s_name ls (Json.float_repr v))
      | Hist h ->
        header s.s_name s.s_help "summary";
        let q quant v =
          let labels = s.s_labels @ [ ("quantile", quant) ] in
          Buffer.add_string b
            (Printf.sprintf "%s%s %s\n" s.s_name (prom_labels labels)
               (Json.float_repr v))
        in
        List.iter
          (fun (p, v) -> q (Printf.sprintf "%g" (p /. 100.0)) v)
          h.quantiles;
        Buffer.add_string b
          (Printf.sprintf "%s_count%s %d\n" s.s_name ls h.count);
        Buffer.add_string b
          (Printf.sprintf "%s_max%s %s\n" s.s_name ls (Json.float_repr h.max_v)))
    (snapshot t);
  Buffer.contents b

let sample_to_json s =
  let base =
    [
      ("name", Json.Str s.s_name);
      ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.s_labels));
    ]
  in
  let value =
    match s.s_value with
    | Counter v -> [ ("type", Json.Str "counter"); ("value", Json.Int v) ]
    | Gauge v -> [ ("type", Json.Str "gauge"); ("value", Json.Float v) ]
    | Hist h ->
      (* 50. -> "p50", 99.9 -> "p999": drop the decimal point so quantile
         keys stay bare identifiers. *)
      let pkey p =
        "p"
        ^ String.concat ""
            (String.split_on_char '.' (Printf.sprintf "%g" p))
      in
      let qs = List.map (fun (p, v) -> (pkey p, Json.Float v)) h.quantiles in
      let bks =
        Json.List
          (List.map
             (fun (i, c) -> Json.List [ Json.Int i; Json.Int c ])
             h.buckets)
      in
      [
        ("type", Json.Str "histogram");
        ( "value",
          Json.Obj
            ([
               ("count", Json.Int h.count);
               ("mean", Json.Float h.mean);
               ("max", Json.Float h.max_v);
             ]
            @ qs
            @ [ ("buckets", bks) ]) );
      ]
  in
  Json.Obj (base @ value)

let to_json t = Json.List (List.map sample_to_json (snapshot t))
let to_json_string ?pretty t = Json.to_string ?pretty (to_json t)
