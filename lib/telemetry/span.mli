(** Causal span tracing: per-packet latency decomposition across the stack.

    A span follows one sampled packet from its origin (a libTAS send or a
    NIC receive) through every crossing point of the simulated stack —
    context queues, fast-path TX, NIC, switch/port queues, fast-path RX,
    context queue, application — as a sequence of timestamped hop events
    sharing a trace id. Adjacent hop deltas decompose the packet's
    end-to-end latency into per-stage queueing and processing components,
    the span-level analogue of the paper's per-module cycle tables
    (Tables 1–3).

    Sampling is deterministic: every [sample_every]-th origin attempt
    starts a span (counter-based, no RNG), so two same-seed simulation runs
    produce byte-identical span streams. The event ring is bounded
    ({!Tas_buffers.Spsc_queue}); when full, events are dropped and counted,
    never blocking or growing.

    Cost when disabled: {!record} tests one boolean (and callers typically
    guard on a packet's span id, [-1] when unsampled — a single integer
    test on the hot path). *)

(** Crossing points, in path order for a libTAS-originated packet. *)
type hop =
  | App_send  (** libTAS accepted payload from the application *)
  | Fp_tx  (** fast path segmented and committed the packet for TX *)
  | Nic_tx  (** NIC handed the packet to its egress port *)
  | Port_q  (** packet entered a link's egress queue *)
  | Port_out  (** packet finished serialization and left the queue *)
  | Switch_fwd  (** switch made its forwarding decision *)
  | Nic_rx  (** destination NIC delivered the packet to the host *)
  | Fp_rx  (** fast-path core processed the packet *)
  | Ctx_notify  (** readable notification posted to a context queue *)
  | App_deliver  (** application consumed the payload *)

val hop_name : hop -> string
val all_hops : hop list

val hop_index : hop -> int
(** Position in {!all_hops} (path order). *)

type event = {
  ts : Tas_engine.Time_ns.t;
  id : int;  (** span (trace) id, unique per collector *)
  hop : hop;
  core : int;  (** simulated core id, -1 when not core-attributed *)
  flow : int;  (** application-opaque flow id, -1 when unknown *)
}

type t

val create : ?enabled:bool -> ?sample_every:int -> capacity:int -> unit -> t
(** [sample_every] (default 1) samples every n-th origin attempt. *)

val disabled : unit -> t
(** A permanently-off collector (capacity 1); the default wired into
    components when span tracing is not requested. *)

val enabled : t -> bool
val sample_every : t -> int
val capacity : t -> int
val length : t -> int

val start :
  t -> ts:Tas_engine.Time_ns.t -> hop:hop -> core:int -> flow:int -> int
(** Origin attempt: returns a fresh span id (recording [hop] as the span's
    first event) when this attempt is sampled, and -1 otherwise. Always -1
    when disabled. *)

val record :
  t -> ts:Tas_engine.Time_ns.t -> id:int -> hop:hop -> core:int -> flow:int -> unit
(** Append a hop to span [id]; no-op when disabled or [id < 0]. Drops (and
    counts) when the ring is full. *)

val offered : t -> int
(** Origin attempts seen while enabled (sampled or not). *)

val started : t -> int
(** Spans begun (= sampled origins). *)

val recorded : t -> int
(** Hop events offered to the ring (accepted + dropped). *)

val dropped : t -> int
(** Hop events discarded because the ring was full. *)

val drain : t -> event list
(** Pop all buffered events in record order (consuming). *)

(** {2 Analysis} *)

val group : event list -> (int * event list) list
(** Events grouped by span id (ascending); within a span, by timestamp
    (stable, so record order breaks ties). *)

type segment = {
  seg_from : hop;
  seg_to : hop;
  seg_hist : Tas_engine.Stats.Hist.t;  (** per-hop latency, nanoseconds *)
}

type breakdown = {
  segments : segment list;
      (** adjacent-hop latency histograms, ordered by path position *)
  end_to_end : Tas_engine.Stats.Hist.t;
      (** first-hop → last-hop latency per span (ns), spans with ≥ 2 events *)
  spans : int;  (** distinct span ids in the input *)
  complete : int;  (** spans covering App_send → App_deliver *)
}

val breakdown : event list -> breakdown
(** Per-span segment durations sum exactly to that span's end-to-end
    latency, so segment histogram totals decompose the end-to-end
    histogram total (within histogram quantization). *)

(** {2 Exporters} *)

val event_to_json : event -> Json.t
val to_json : t -> event list -> Json.t
(** Collector metadata plus the given (previously drained) events. *)

val to_chrome_json : event list -> Json.t
(** Chrome trace-event format (chrome://tracing, Perfetto): one "X"
    (complete) slice per adjacent hop pair, with the span id as the track
    ([tid]) and timestamps in microseconds; single-event spans export as
    "i" (instant) events. *)

val to_chrome_string : ?pretty:bool -> event list -> string
