(** Minimal JSON document type and deterministic serializer.

    Hand-rolled (no external dependency) because the telemetry exporters only
    need emission, never parsing. Serialization is deterministic: field order
    is the construction order, floats render via a fixed format, and
    non-finite floats become [null]. Determinism matters — the byte-identical
    telemetry snapshots of two same-seed runs are a test invariant. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** [to_string t] is the compact encoding; [~pretty:true] indents with two
    spaces for human-readable artifact files. *)

val float_repr : float -> string
(** The serializer's float rendering (exposed for exporters that format
    numbers outside a document, e.g. Prometheus text). *)
