(** Minimal JSON document type and deterministic serializer.

    Hand-rolled (no external dependency) because the telemetry exporters only
    need emission, never parsing. Serialization is deterministic: field order
    is the construction order, floats render via a fixed format, and
    non-finite floats become [null]. Determinism matters — the byte-identical
    telemetry snapshots of two same-seed runs are a test invariant. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** [to_string t] is the compact encoding; [~pretty:true] indents with two
    spaces for human-readable artifact files. *)

val float_repr : float -> string
(** The serializer's float rendering (exposed for exporters that format
    numbers outside a document, e.g. Prometheus text). *)

exception Parse_error of string

val of_string : string -> t
(** Parse a JSON document (the dual of {!to_string}; also reads the
    committed perf baselines back in for the regression gate). Integral
    numbers parse as [Int], others as [Float].
    @raise Parse_error on malformed input. *)

val member : string -> t -> t option
(** [member key (Obj fields)] is the first field named [key]; [None] for
    missing keys and non-objects. *)

val to_float_opt : t -> float option
(** Numeric coercion: [Int] and [Float] yield the value, everything else
    [None]. *)
