(** Sim-clock-driven flight recorder: time-resolved telemetry frames.

    End-of-run snapshots ({!Metrics.snapshot}) answer "how much, in total";
    the timeline answers "when". Every [interval_ns] of simulated time a
    {e frame} is captured into a bounded ring: the per-interval {e delta} of
    every registered counter, the current value of every gauge, per-core
    busy/idle utilization over exactly that interval (from
    {!Tas_cpu.Core.enable_util_buckets}-style per-interval accounting,
    probed through closures so this module stays below the cpu/core
    layers), per-shard flow occupancy, and flow-arena occupancy. When the
    ring is full the oldest frame is evicted and counted — recording never
    grows without bound and never perturbs the simulation.

    Determinism: frames hold only sim-time data, counters are emitted in
    the sorted (name, labels) order of {!Metrics.snapshot}, and probe
    registration order is construction order — two same-seed runs produce
    byte-identical timeline JSON, and {!merge} makes a parallel batch's
    timelines identical to the serial run's. *)

type labels = (string * string) list

type core_sample = {
  c_role : string;  (** "fp" | "sp" | app role, as registered *)
  c_id : int;
  c_busy_ns : int;  (** busy ns inside the sampled interval *)
  c_util : float;   (** [c_busy_ns / interval_ns], in [0, 1] *)
  c_backlog_ns : int;  (** queue depth behind the core at frame time *)
}

type frame = {
  seq : int;  (** capture sequence number (survives ring eviction) *)
  ts : int;   (** sim time at capture — the interval [[ts - interval, ts)] *)
  counters : (string * labels * int) list;
      (** per-interval deltas, sorted by (name, labels); zero deltas kept so
          every frame has the same series — consumers index, not search *)
  gauges : (string * labels * float) list;  (** current values, sorted *)
  cores : core_sample list;  (** in probe registration order *)
  shard_flows : int array;  (** per-shard live flows, [] when unprobed *)
  arena : (int * int) option;  (** (live, capacity) when an arena is probed *)
}

type t

val create : interval_ns:int -> capacity:int -> metrics:Metrics.t -> unit -> t
(** A recorder sampling [metrics] every [interval_ns]; the ring holds the
    last [capacity] frames.
    @raise Invalid_argument when [interval_ns <= 0] or [capacity <= 0]. *)

val interval_ns : t -> int
val capacity : t -> int

val add_core :
  t -> role:string -> id:int -> busy_in:(int -> int) -> backlog:(unit -> int) -> unit
(** Register a core probe: [busy_in bucket] returns busy ns inside interval
    [bucket] (see {!Tas_cpu.Core.util_busy_ns}), [backlog ()] the current
    backlog. Sampled in registration order. *)

val set_shard_probe : t -> (unit -> int array) -> unit
val set_arena_probe : t -> (unit -> (int * int) option) -> unit

val capture : t -> ts:int -> unit
(** Record the frame for the interval ending at [ts] (so core utilization
    reads bucket [(ts - 1) / interval_ns]). Call from a sim-periodic
    event. *)

val frames : t -> frame list
(** Buffered frames, oldest first (non-consuming). *)

val length : t -> int
val captured : t -> int
(** Total frames ever captured (buffered + evicted). *)

val evicted : t -> int
(** Frames dropped off the old end of the full ring. *)

val merge : frame list list -> frame list
(** Merge per-instance frame streams into one timestamp-ordered stream.
    Stable like {!Trace.merge}: equal-[ts] frames order by their stream's
    position in the argument, so a parallel batch merged in submission
    order is byte-identical to the serial run. *)

(** {2 Export / import} *)

val frame_to_json : frame -> Json.t

val to_json : t -> Json.t
(** [{"interval_ns", "capacity", "captured", "evicted", "frames": [...]}] —
    deterministic, the shape stored in [TIMELINE_<id>.json] artifacts. *)

val frames_of_json : Json.t -> frame list
(** Parse frames back from {!to_json} output (or its ["frames"] list) —
    the CLI reads artifacts with this.
    @raise Json.Parse_error on a shape mismatch. *)

val to_chrome_counters :
  ?pid:int -> ?prefix:string -> interval_ns:int -> frame list -> Json.t list
(** Chrome trace-event counter samples ("ph":"C", ts in microseconds) for
    per-core utilization, arena occupancy and total shard flows — one
    series per core plus aggregates, renderable beside {!Span.to_chrome_json}
    slices in the same document. *)
