(** Process-wide metrics registry: named counters, gauges and log-bucketed
    histograms with label support.

    Design constraints, in order:

    - {b Zero hot-path overhead.} Components keep mutating their existing
      plain [int] stat fields; the registry holds {e closures} that read
      them on demand ([counter_fn]/[gauge_fn]). Registration happens once at
      construction time; the data path never touches the registry.
    - {b Determinism.} Snapshots and both exporters order samples by
      (name, sorted labels), so two same-seed simulation runs export
      byte-identical telemetry.
    - {b One registry per stack instance} (not a global): experiments build
      many TAS instances per process and each gets an isolated namespace.

    Histograms reuse {!Tas_engine.Stats.Hist} (log-bucketed, ~2% relative
    bucket width). *)

type t

type labels = (string * string) list
(** Label sets are normalized (sorted by key) at registration. *)

val default_quantiles : float list
(** [[50.; 90.; 99.; 99.9]] — the percentile points histogram summaries
    report unless overridden at {!create}. *)

val create : ?quantiles:float list -> unit -> t
(** [quantiles] sets the percentile points (in [0,100]) that every
    histogram summary of this registry reports; defaults to
    {!default_quantiles}. *)

val counter_fn : t -> ?labels:labels -> ?help:string -> string -> (unit -> int) -> unit
(** Register a monotonic counter read through a closure.
    @raise Invalid_argument on duplicate (name, labels) or invalid name
    (allowed: [[A-Za-z0-9_:]]). *)

val gauge_fn : t -> ?labels:labels -> ?help:string -> string -> (unit -> float) -> unit
(** Register a point-in-time gauge read through a closure. *)

val counter : t -> ?labels:labels -> ?help:string -> string -> Tas_engine.Stats.Counter.t
(** Create, register and return an owned counter cell. *)

val hist : t -> ?labels:labels -> ?help:string -> string -> Tas_engine.Stats.Hist.t
(** Get-or-create a registered histogram: calling again with the same
    (name, labels) returns the same histogram. *)

(** {2 Snapshots} *)

type hist_summary = {
  count : int;
  mean : float;
  max_v : float;
  quantiles : (float * float) list;
      (** [(percentile point, value)] pairs in the registry's quantile
          order, e.g. [(50., v50); ...; (99.9, v999)]. *)
  buckets : (int * int) list;
      (** Sparse raw histogram buckets ([Stats.Hist.buckets]): the lossless
          transport that makes merged quantiles exact. *)
}

val quantile : hist_summary -> float -> float
(** [quantile h p] returns the reported value at percentile point [p],
    recomputing from [h.buckets] when [p] is not among [h.quantiles]. *)

type value = Counter of int | Gauge of float | Hist of hist_summary

type sample = {
  s_name : string;
  s_labels : labels;
  s_help : string;
  s_value : value;
}

val snapshot : t -> sample list
(** Current values, sorted by (name, labels) — deterministic. *)

val merge : sample list list -> sample list
(** Aggregate snapshots from several registries (e.g. one per domain of a
    parallel batch) into one: samples sharing (name, labels) combine —
    counters sum, gauges sum, and histogram summaries merge {e exactly}:
    raw buckets are summed and the quantile points re-queried on the
    combined distribution, so the merged summary equals what one histogram
    over all samples would report (no count-weighted approximation).
    Output is sorted by (name, labels) like {!snapshot}, so merging is
    deterministic and independent of input order up to equal keys.
    @raise Invalid_argument when the same key carries different sample
    types in different snapshots. *)

(** {2 Exporters} *)

val to_prometheus : t -> string
(** Prometheus text exposition format; histograms export as summaries with
    one quantile series per configured point (default
    0.5/0.9/0.99/0.999) plus [_count] and [_max] series. *)

val sample_to_json : sample -> Json.t
(** One snapshot (or merged) sample as the same JSON shape {!to_json}
    emits per entry. *)

val to_json : t -> Json.t
val to_json_string : ?pretty:bool -> t -> string
