type rule =
  | Rexmit_storm
  | Arena_pressure
  | Shard_imbalance
  | Backlog_growth
  | Ring_drops
  | Core_flap

let rule_name = function
  | Rexmit_storm -> "rexmit_storm"
  | Arena_pressure -> "arena_pressure"
  | Shard_imbalance -> "shard_imbalance"
  | Backlog_growth -> "backlog_growth"
  | Ring_drops -> "ring_drops"
  | Core_flap -> "core_flap"

let all_rules =
  [
    Rexmit_storm; Arena_pressure; Shard_imbalance; Backlog_growth; Ring_drops;
    Core_flap;
  ]

let trace_kind = function
  | Rexmit_storm -> Trace.Health_rexmit_storm
  | Arena_pressure -> Trace.Health_arena_pressure
  | Shard_imbalance -> Trace.Health_shard_imbalance
  | Backlog_growth -> Trace.Health_backlog_growth
  | Ring_drops -> Trace.Health_ring_drops
  | Core_flap -> Trace.Health_core_flap

type thresholds = {
  retransmit_burst : int;
  arena_occupancy : float;
  shard_imbalance : float;
  shard_min_flows : int;
  backlog_frames : int;
  backlog_min_ns : int;
  ring_drops : int;
  flap_window : int;
  flap_changes : int;
}

let default_thresholds =
  {
    retransmit_burst = 8;
    arena_occupancy = 0.9;
    shard_imbalance = 3.0;
    shard_min_flows = 16;
    backlog_frames = 3;
    backlog_min_ns = 1_000_000;
    ring_drops = 1;
    flap_window = 16;
    flap_changes = 3;
  }

type violation = {
  v_rule : rule;
  v_seq : int;
  v_ts : int;
  v_value : float;
  v_limit : float;
  v_detail : string;
}

type report = {
  frames : int;
  violations : violation list;
  by_rule : (rule * int) list;
  passed : bool;
}

(* Sum the per-interval deltas of every counter series named [name]
   (across label sets — e.g. per-core variants all contribute). *)
let delta_sum (f : Timeline.frame) name =
  List.fold_left
    (fun acc (n, _, d) -> if n = name then acc + d else acc)
    0 f.Timeline.counters

(* Sum of every gauge series named [name] in the frame; [None] when the
   frame carries no such gauge (frames from instances without that
   component must not feed the rule a phantom zero). *)
let gauge_sum (f : Timeline.frame) name =
  List.fold_left
    (fun acc (n, _, v) ->
      if n = name then Some (Option.value acc ~default:0.0 +. v) else acc)
    None f.Timeline.gauges

(* Direction reversals in a chronological series: deltas between
   consecutive readings, zeros ignored, count sign changes between
   consecutive nonzero moves. A monotonic ramp has zero reversals. *)
let count_reversals chrono =
  let rec deltas acc = function
    | a :: (b :: _ as rest) ->
      let d = b - a in
      deltas (if d = 0 then acc else d :: acc) rest
    | _ -> List.rev acc
  in
  let rec flips acc = function
    | a :: (b :: _ as rest) ->
      flips (if (a > 0) <> (b > 0) then acc + 1 else acc) rest
    | _ -> acc
  in
  flips 0 (deltas [] chrono)

let check ?(thresholds = default_thresholds) ?trace frames =
  let th = thresholds in
  let violations = ref [] in
  (* Recent slow-path backlog readings, newest first, for growth tracking. *)
  let sp_backlogs = ref [] in
  (* Recent active-core counts, newest first, for flap detection. *)
  let core_counts = ref [] in
  let fire (f : Timeline.frame) rule ~value ~limit detail =
    let v =
      {
        v_rule = rule;
        v_seq = f.Timeline.seq;
        v_ts = f.Timeline.ts;
        v_value = value;
        v_limit = limit;
        v_detail = detail;
      }
    in
    violations := v :: !violations;
    match trace with
    | Some t ->
      Trace.record t ~ts:f.Timeline.ts ~kind:(trace_kind rule) ~core:(-1)
        ~flow:(-1)
    | None -> ()
  in
  List.iter
    (fun (f : Timeline.frame) ->
      (* Rexmit storm: fast + timeout retransmits inside one interval. *)
      let rexmits =
        delta_sum f "fp_fast_retransmits" + delta_sum f "sp_timeout_retransmits"
      in
      if rexmits >= th.retransmit_burst then
        fire f Rexmit_storm ~value:(float_of_int rexmits)
          ~limit:(float_of_int th.retransmit_burst)
          (Printf.sprintf "%d retransmits in one interval" rexmits);
      (* Arena pressure. *)
      (match f.Timeline.arena with
      | Some (live, cap) when cap > 0 ->
        let occ = float_of_int live /. float_of_int cap in
        if occ >= th.arena_occupancy then
          fire f Arena_pressure ~value:occ ~limit:th.arena_occupancy
            (Printf.sprintf "arena %d/%d slots live (%.0f%%)" live cap
               (occ *. 100.0))
      | _ -> ());
      (* Shard imbalance: max/mean occupancy over a non-trivial population. *)
      let shards = f.Timeline.shard_flows in
      let n_shards = Array.length shards in
      if n_shards > 1 then begin
        let total = Array.fold_left ( + ) 0 shards in
        if total >= th.shard_min_flows then begin
          let mean = float_of_int total /. float_of_int n_shards in
          let max_s = Array.fold_left max 0 shards in
          let ratio = float_of_int max_s /. mean in
          if ratio >= th.shard_imbalance then
            fire f Shard_imbalance ~value:ratio ~limit:th.shard_imbalance
              (Printf.sprintf "max shard %d vs mean %.1f (%d flows)" max_s mean
                 total)
        end
      end;
      (* Backlog growth: sp core backlog strictly increasing over a window. *)
      let sp_backlog =
        List.fold_left
          (fun acc c ->
            if c.Timeline.c_role = "sp" then acc + c.Timeline.c_backlog_ns
            else acc)
          0 f.Timeline.cores
      in
      sp_backlogs := sp_backlog :: !sp_backlogs;
      (if List.length !sp_backlogs >= th.backlog_frames then begin
         let window =
           List.filteri (fun i _ -> i < th.backlog_frames) !sp_backlogs
         in
         (* newest first: strictly decreasing list = strictly growing time series *)
         let rec strictly_desc = function
           | a :: (b :: _ as rest) -> a > b && strictly_desc rest
           | _ -> true
         in
         if sp_backlog >= th.backlog_min_ns && strictly_desc window then
           fire f Backlog_growth ~value:(float_of_int sp_backlog)
             ~limit:(float_of_int th.backlog_min_ns)
             (Printf.sprintf "sp backlog grew %d frames to %d ns"
                th.backlog_frames sp_backlog)
       end);
      (* Ring drops: the flight recorder itself losing events. *)
      let drops =
        delta_sum f "trace_dropped_events" + delta_sum f "span_dropped_events"
      in
      if drops >= th.ring_drops then
        fire f Ring_drops ~value:(float_of_int drops)
          ~limit:(float_of_int th.ring_drops)
          (Printf.sprintf "%d trace/span events dropped in one interval" drops);
      (* Core flapping: the active-core count reversing direction too often
         inside a trailing window — the controller is oscillating instead
         of converging. Monotonic ramps never fire. *)
      (match gauge_sum f "fp_active_cores" with
      | None -> ()
      | Some active ->
        core_counts :=
          int_of_float (Float.round active)
          :: List.filteri (fun i _ -> i < th.flap_window - 1) !core_counts;
        let reversals = count_reversals (List.rev !core_counts) in
        if reversals >= th.flap_changes then begin
          fire f Core_flap
            ~value:(float_of_int reversals)
            ~limit:(float_of_int th.flap_changes)
            (Printf.sprintf "core count reversed direction %d times in %d frames"
               reversals (List.length !core_counts));
          (* Restart the window so one oscillation episode fires once. *)
          core_counts := []
        end))
    frames;
  let violations = List.rev !violations in
  let by_rule =
    List.filter_map
      (fun r ->
        match List.length (List.filter (fun v -> v.v_rule = r) violations) with
        | 0 -> None
        | n -> Some (r, n))
      all_rules
  in
  {
    frames = List.length frames;
    violations;
    by_rule;
    passed = violations = [];
  }

let violation_to_json v =
  Json.Obj
    [
      ("rule", Json.Str (rule_name v.v_rule));
      ("seq", Json.Int v.v_seq);
      ("ts", Json.Int v.v_ts);
      ("value", Json.Float v.v_value);
      ("limit", Json.Float v.v_limit);
      ("detail", Json.Str v.v_detail);
    ]

let report_to_json r =
  Json.Obj
    [
      ("frames", Json.Int r.frames);
      ("passed", Json.Bool r.passed);
      ( "by_rule",
        Json.Obj
          (List.map (fun (rule, n) -> (rule_name rule, Json.Int n)) r.by_rule)
      );
      ("violations", Json.List (List.map violation_to_json r.violations));
    ]

let pp_report fmt r =
  Format.fprintf fmt "health: %s (%d frames, %d violations)@."
    (if r.passed then "PASS" else "FAIL")
    r.frames
    (List.length r.violations);
  List.iter
    (fun (rule, n) ->
      Format.fprintf fmt "  %-16s %d@." (rule_name rule) n)
    r.by_rule;
  List.iter
    (fun v ->
      Format.fprintf fmt "  [%d] t=%dns %s: %s@." v.v_seq v.v_ts
        (rule_name v.v_rule) v.v_detail)
    r.violations
