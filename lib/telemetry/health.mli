(** Rule-based health watchdog over timeline frames.

    Runs a fixed set of rules across a {!Timeline.frame} stream and reports
    every violation with the frame it fired on. Pure over its input —
    deterministic given the same frames — and optionally mirrors each
    violation into a {!Trace.t} as a structured [Health_*] event so
    watchdog findings interleave with data-path events in trace dumps.

    The rules, with their default thresholds:
    - {b Retransmit storm}: fast + slow path retransmits in one frame
      ≥ [retransmit_burst] (8).
    - {b Arena pressure}: flow-arena occupancy ≥ [arena_occupancy] (0.9)
      of capacity.
    - {b Shard imbalance}: max/mean per-shard flows ≥ [shard_imbalance]
      (3.0) while at least [shard_min_flows] (16) flows are live — small
      populations are inherently lumpy.
    - {b Backlog growth}: slow-path core backlog strictly grows over
      [backlog_frames] (3) consecutive frames ending ≥ [backlog_min_ns]
      (1 ms) — the precursor of slow-path convoy collapse.
    - {b Ring drops}: trace/span rings dropped ≥ [ring_drops] (1) events
      in a frame — the flight recorder itself is losing data.
    - {b Core flap}: the summed [fp_active_cores] gauge reversed direction
      ≥ [flap_changes] (3) times within a trailing window of
      [flap_window] (16) frames — the elastic controller is oscillating
      instead of converging. Monotonic ramps never fire; each oscillation
      episode fires once (the window restarts after a violation). *)

type rule =
  | Rexmit_storm
  | Arena_pressure
  | Shard_imbalance
  | Backlog_growth
  | Ring_drops
  | Core_flap

val rule_name : rule -> string
val all_rules : rule list

type thresholds = {
  retransmit_burst : int;
  arena_occupancy : float;
  shard_imbalance : float;
  shard_min_flows : int;
  backlog_frames : int;
  backlog_min_ns : int;
  ring_drops : int;
  flap_window : int;
  flap_changes : int;
}

val default_thresholds : thresholds

type violation = {
  v_rule : rule;
  v_seq : int;  (** frame sequence number the rule fired on *)
  v_ts : int;   (** frame timestamp *)
  v_value : float;  (** observed value (burst size, occupancy, ratio…) *)
  v_limit : float;  (** the threshold it crossed *)
  v_detail : string;  (** human-readable one-liner *)
}

type report = {
  frames : int;  (** frames examined *)
  violations : violation list;  (** in frame order, then rule order *)
  by_rule : (rule * int) list;  (** firing counts, zero entries omitted *)
  passed : bool;  (** no violations *)
}

val check : ?thresholds:thresholds -> ?trace:Trace.t -> Timeline.frame list -> report
(** Evaluate every rule on every frame (in order). When [trace] is given,
    each violation records a [Health_*] event at the frame's timestamp
    (core -1, flow -1). *)

val report_to_json : report -> Json.t
val pp_report : Format.formatter -> report -> unit
