module Spsc = Tas_buffers.Spsc_queue
module Hist = Tas_engine.Stats.Hist

type hop =
  | App_send
  | Fp_tx
  | Nic_tx
  | Port_q
  | Port_out
  | Switch_fwd
  | Nic_rx
  | Fp_rx
  | Ctx_notify
  | App_deliver

let hop_name = function
  | App_send -> "app_send"
  | Fp_tx -> "fp_tx"
  | Nic_tx -> "nic_tx"
  | Port_q -> "port_q"
  | Port_out -> "port_out"
  | Switch_fwd -> "switch_fwd"
  | Nic_rx -> "nic_rx"
  | Fp_rx -> "fp_rx"
  | Ctx_notify -> "ctx_notify"
  | App_deliver -> "app_deliver"

let all_hops =
  [
    App_send; Fp_tx; Nic_tx; Port_q; Port_out; Switch_fwd; Nic_rx; Fp_rx;
    Ctx_notify; App_deliver;
  ]

let hop_index = function
  | App_send -> 0
  | Fp_tx -> 1
  | Nic_tx -> 2
  | Port_q -> 3
  | Port_out -> 4
  | Switch_fwd -> 5
  | Nic_rx -> 6
  | Fp_rx -> 7
  | Ctx_notify -> 8
  | App_deliver -> 9

type event = {
  ts : Tas_engine.Time_ns.t;
  id : int;
  hop : hop;
  core : int;
  flow : int;
}

type t = {
  enabled : bool;
  sample_every : int;
  ring : event Spsc.t;
  mutable next_id : int;
  mutable tick : int;
  mutable offered : int;
  mutable recorded : int;
  mutable dropped : int;
}

let create ?(enabled = true) ?(sample_every = 1) ~capacity () =
  {
    enabled;
    sample_every = max 1 sample_every;
    ring = Spsc.create (max 1 capacity);
    next_id = 0;
    tick = 0;
    offered = 0;
    recorded = 0;
    dropped = 0;
  }

let disabled () = create ~enabled:false ~capacity:1 ()

let enabled t = t.enabled
let sample_every t = t.sample_every
let capacity t = Spsc.capacity t.ring
let length t = Spsc.length t.ring
let offered t = t.offered
let started t = t.next_id
let recorded t = t.recorded
let dropped t = t.dropped

let push t ev =
  t.recorded <- t.recorded + 1;
  if not (Spsc.try_push t.ring ev) then t.dropped <- t.dropped + 1

let start t ~ts ~hop ~core ~flow =
  if not t.enabled then -1
  else begin
    let tick = t.tick in
    t.tick <- tick + 1;
    t.offered <- t.offered + 1;
    if tick mod t.sample_every <> 0 then -1
    else begin
      let id = t.next_id in
      t.next_id <- id + 1;
      push t { ts; id; hop; core; flow };
      id
    end
  end

let record t ~ts ~id ~hop ~core ~flow =
  if t.enabled && id >= 0 then push t { ts; id; hop; core; flow }

let drain t =
  let out = ref [] in
  ignore (Spsc.drain t.ring (fun e -> out := e :: !out));
  List.rev !out

(* --- Analysis ----------------------------------------------------------- *)

let group events =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let prev = try Hashtbl.find tbl e.id with Not_found -> [] in
      Hashtbl.replace tbl e.id (e :: prev))
    events;
  Hashtbl.fold (fun id evs acc -> (id, evs) :: acc) tbl []
  |> List.map (fun (id, evs) ->
         (id, List.stable_sort (fun a b -> compare a.ts b.ts) (List.rev evs)))
  |> List.sort (fun (a, _) (b, _) -> compare a b)

type segment = { seg_from : hop; seg_to : hop; seg_hist : Hist.t }

type breakdown = {
  segments : segment list;
  end_to_end : Hist.t;
  spans : int;
  complete : int;
}

let breakdown events =
  let spans = group events in
  let segs = Hashtbl.create 16 in
  let e2e = Hist.create () in
  let complete = ref 0 in
  List.iter
    (fun (_, evs) ->
      match evs with
      | [] | [ _ ] -> ()
      | first :: _ ->
        let rec walk = function
          | a :: (b :: _ as rest) ->
            let key = (hop_index a.hop, hop_index b.hop) in
            let h =
              match Hashtbl.find_opt segs key with
              | Some (_, _, h) -> h
              | None ->
                let h = Hist.create () in
                Hashtbl.add segs key (a.hop, b.hop, h);
                h
            in
            Hist.add h (float_of_int (b.ts - a.ts));
            walk rest
          | [ last ] ->
            Hist.add e2e (float_of_int (last.ts - first.ts));
            if first.hop = App_send && last.hop = App_deliver then
              incr complete
          | [] -> ()
        in
        walk evs)
    spans;
  let segments =
    Hashtbl.fold (fun key (f, t, h) acc -> (key, f, t, h) :: acc) segs []
    |> List.sort (fun (ka, _, _, _) (kb, _, _, _) -> compare ka kb)
    |> List.map (fun (_, f, t, h) ->
           { seg_from = f; seg_to = t; seg_hist = h })
  in
  { segments; end_to_end = e2e; spans = List.length spans; complete = !complete }

(* --- Exporters ----------------------------------------------------------- *)

let event_to_json e =
  Json.Obj
    [
      ("ts", Json.Int e.ts);
      ("span", Json.Int e.id);
      ("hop", Json.Str (hop_name e.hop));
      ("core", Json.Int e.core);
      ("flow", Json.Int e.flow);
    ]

let to_json t events =
  Json.Obj
    [
      ("enabled", Json.Bool t.enabled);
      ("sample_every", Json.Int t.sample_every);
      ("capacity", Json.Int (capacity t));
      ("offered", Json.Int t.offered);
      ("started", Json.Int t.next_id);
      ("recorded", Json.Int t.recorded);
      ("dropped", Json.Int t.dropped);
      ("events", Json.List (List.map event_to_json events));
    ]

(* Chrome trace-event JSON: timestamps/durations in microseconds (floats),
   one track ("tid") per span so Perfetto draws each packet's journey as a
   lane of adjacent slices. *)
let to_chrome_json events =
  let us ns = float_of_int ns /. 1e3 in
  let slice a b =
    Json.Obj
      [
        ("name", Json.Str (hop_name a.hop ^ "->" ^ hop_name b.hop));
        ("cat", Json.Str "tas_span");
        ("ph", Json.Str "X");
        ("ts", Json.Float (us a.ts));
        ("dur", Json.Float (us (b.ts - a.ts)));
        ("pid", Json.Int 1);
        ("tid", Json.Int a.id);
        ( "args",
          Json.Obj
            [
              ("flow", Json.Int a.flow);
              ("from_core", Json.Int a.core);
              ("to_core", Json.Int b.core);
            ] );
      ]
  in
  let instant e =
    Json.Obj
      [
        ("name", Json.Str (hop_name e.hop));
        ("cat", Json.Str "tas_span");
        ("ph", Json.Str "i");
        ("s", Json.Str "t");
        ("ts", Json.Float (us e.ts));
        ("pid", Json.Int 1);
        ("tid", Json.Int e.id);
        ("args", Json.Obj [ ("flow", Json.Int e.flow) ]);
      ]
  in
  let trace_events =
    List.concat_map
      (fun (_, evs) ->
        match evs with
        | [] -> []
        | [ e ] -> [ instant e ]
        | evs ->
          let rec walk = function
            | a :: (b :: _ as rest) -> slice a b :: walk rest
            | _ -> []
          in
          walk evs)
      (group events)
  in
  Json.Obj
    [
      ("traceEvents", Json.List trace_events);
      ("displayTimeUnit", Json.Str "ns");
    ]

let to_chrome_string ?pretty events =
  Json.to_string ?pretty (to_chrome_json events)
