type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* Compact shortest-ish float rendering: integers print without an exponent,
   everything else with enough digits to round-trip visibly. Non-finite
   values have no JSON encoding; emit null. *)
let float_repr f =
  if Float.is_nan f || f = infinity || f = neg_infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec emit b ~indent ~level t =
  let pad n = if indent then Buffer.add_string b (String.make (2 * n) ' ') in
  let newline () = if indent then Buffer.add_char b '\n' in
  match t with
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | Str s -> escape b s
  | List [] -> Buffer.add_string b "[]"
  | List items ->
    Buffer.add_char b '[';
    newline ();
    List.iteri
      (fun i item ->
        if i > 0 then begin
          Buffer.add_char b ',';
          newline ()
        end;
        pad (level + 1);
        emit b ~indent ~level:(level + 1) item)
      items;
    newline ();
    pad level;
    Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
    Buffer.add_char b '{';
    newline ();
    List.iteri
      (fun i (k, v) ->
        if i > 0 then begin
          Buffer.add_char b ',';
          newline ()
        end;
        pad (level + 1);
        escape b k;
        Buffer.add_string b (if indent then ": " else ":");
        emit b ~indent ~level:(level + 1) v)
      fields;
    newline ();
    pad level;
    Buffer.add_char b '}'

let to_string ?(pretty = false) t =
  let b = Buffer.create 256 in
  emit b ~indent:pretty ~level:0 t;
  Buffer.contents b
