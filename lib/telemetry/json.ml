type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* Compact shortest-ish float rendering: integers print without an exponent,
   everything else with enough digits to round-trip visibly. Non-finite
   values have no JSON encoding; emit null. *)
let float_repr f =
  if Float.is_nan f || f = infinity || f = neg_infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec emit b ~indent ~level t =
  let pad n = if indent then Buffer.add_string b (String.make (2 * n) ' ') in
  let newline () = if indent then Buffer.add_char b '\n' in
  match t with
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | Str s -> escape b s
  | List [] -> Buffer.add_string b "[]"
  | List items ->
    Buffer.add_char b '[';
    newline ();
    List.iteri
      (fun i item ->
        if i > 0 then begin
          Buffer.add_char b ',';
          newline ()
        end;
        pad (level + 1);
        emit b ~indent ~level:(level + 1) item)
      items;
    newline ();
    pad level;
    Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
    Buffer.add_char b '{';
    newline ();
    List.iteri
      (fun i (k, v) ->
        if i > 0 then begin
          Buffer.add_char b ',';
          newline ()
        end;
        pad (level + 1);
        escape b k;
        Buffer.add_string b (if indent then ": " else ":");
        emit b ~indent ~level:(level + 1) v)
      fields;
    newline ();
    pad level;
    Buffer.add_char b '}'

let to_string ?(pretty = false) t =
  let b = Buffer.create 256 in
  emit b ~indent:pretty ~level:0 t;
  Buffer.contents b

(* --- Parsing ------------------------------------------------------------ *)

(* Recursive-descent parser for the documents this module emits (plus the
   committed perf baselines the regression gate reads back). Numbers that
   are integral and in range parse as [Int], everything else as [Float]. *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      true
    | _ -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> parse_error "expected '%c' at offset %d, found '%c'" ch c.pos x
  | None -> parse_error "expected '%c' at offset %d, found end of input" ch c.pos

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else parse_error "invalid literal at offset %d" c.pos

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> parse_error "unterminated string at offset %d" c.pos
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some '"' -> Buffer.add_char b '"'
      | Some '\\' -> Buffer.add_char b '\\'
      | Some '/' -> Buffer.add_char b '/'
      | Some 'n' -> Buffer.add_char b '\n'
      | Some 'r' -> Buffer.add_char b '\r'
      | Some 't' -> Buffer.add_char b '\t'
      | Some 'b' -> Buffer.add_char b '\b'
      | Some 'f' -> Buffer.add_char b '\012'
      | Some 'u' ->
        if c.pos + 4 >= String.length c.src then
          parse_error "truncated \\u escape at offset %d" c.pos;
        let hex = String.sub c.src (c.pos + 1) 4 in
        let code =
          try int_of_string ("0x" ^ hex)
          with _ -> parse_error "bad \\u escape at offset %d" c.pos
        in
        (* Only BMP code points below 0x80 round-trip as single bytes; the
           emitter only escapes control characters, so this suffices. *)
        if code < 0x80 then Buffer.add_char b (Char.chr code)
        else Buffer.add_string b (Printf.sprintf "\\u%04x" code);
        c.pos <- c.pos + 4
      | _ -> parse_error "bad escape at offset %d" c.pos);
      advance c;
      go ()
    | Some ch ->
      advance c;
      Buffer.add_char b ch;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek c with Some ch when is_num_char ch -> true | _ -> false do
    advance c
  done;
  let s = String.sub c.src start (c.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> parse_error "bad number %S at offset %d" s start)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> parse_error "unexpected end of input at offset %d" c.pos
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> Str (parse_string c)
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> parse_error "expected ',' or ']' at offset %d" c.pos
      in
      List (items [])
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else
      let rec fields acc =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields ((k, v) :: acc)
        | Some '}' ->
          advance c;
          List.rev ((k, v) :: acc)
        | _ -> parse_error "expected ',' or '}' at offset %d" c.pos
      in
      Obj (fields [])
  | Some _ -> parse_number c

let of_string s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then
    parse_error "trailing garbage at offset %d" c.pos;
  v

(* --- Accessors ----------------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None
