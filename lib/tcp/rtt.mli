(** RTT estimation (RFC 6298): smoothed RTT, variance, and the derived
    retransmission timeout. TAS feeds this from fast-path TCP timestamps;
    the baseline engine feeds it from ACK round trips. *)

type t

val create : ?initial_rto_ns:int -> ?min_rto_ns:int -> unit -> t
(** Default initial RTO: 10 ms (datacenter-tuned, not the RFC's 1 s).
    [min_rto_ns] raises the RTO lower bound above the hard 1 ms floor
    (WAN profiles use a higher floor so spurious timeouts do not defeat
    time-based loss detection); values below the floor are ignored. *)

val sample : ?retransmitted:bool -> t -> int -> unit
(** [sample t rtt_ns] folds in a new RTT measurement.
    [~retransmitted:true] marks a round trip measured against a segment
    that was retransmitted: per Karn's algorithm the sample is ambiguous
    and is discarded entirely (estimator and RTO unchanged). *)

val srtt_ns : t -> int
(** Smoothed RTT; 0 before the first sample. *)

val rttvar_ns : t -> int

val rto_ns : t -> int
(** Current retransmission timeout, clamped to [\[min_rto, max_rto\]]. *)

val backoff : t -> unit
(** Double the RTO (exponential backoff after a timeout). *)

val reset_backoff : t -> unit
