type t = {
  mutable srtt : int;
  mutable rttvar : int;
  mutable rto : int;
  mutable backoff_factor : int;
  initial_rto : int;
  min_rto : int;
}

let min_rto_floor = 1_000_000 (* 1 ms *)
let max_rto = 4_000_000_000 (* 4 s *)

let create ?(initial_rto_ns = 10_000_000) ?(min_rto_ns = min_rto_floor) () =
  (* The configurable lower bound can only raise the floor, never sink the
     RTO below the hard 1 ms clamp. *)
  let min_rto = max min_rto_floor min_rto_ns in
  { srtt = 0; rttvar = 0; rto = initial_rto_ns; backoff_factor = 1;
    initial_rto = initial_rto_ns; min_rto }

let clamp_rto t v = max t.min_rto (min max_rto v)

let sample ?(retransmitted = false) t rtt_ns =
  (* Karn's algorithm: an ACK that may acknowledge a retransmission gives
     an ambiguous round trip — take no sample (the backoff factor, reset
     separately on unambiguous progress, keeps the RTO inflated). *)
  if not retransmitted then begin
    if t.srtt = 0 then begin
      t.srtt <- rtt_ns;
      t.rttvar <- rtt_ns / 2
    end
    else begin
      (* RFC 6298 with alpha = 1/8, beta = 1/4. *)
      let err = abs (t.srtt - rtt_ns) in
      t.rttvar <- ((3 * t.rttvar) + err) / 4;
      t.srtt <- ((7 * t.srtt) + rtt_ns) / 8
    end;
    t.rto <- clamp_rto t (t.srtt + max 1000 (4 * t.rttvar))
  end

let srtt_ns t = t.srtt
let rttvar_ns t = t.rttvar

let rto_ns t =
  if t.srtt = 0 then clamp_rto t (t.initial_rto * t.backoff_factor)
  else clamp_rto t (t.rto * t.backoff_factor)

let backoff t = if t.backoff_factor < 64 then t.backoff_factor <- t.backoff_factor * 2
let reset_backoff t = t.backoff_factor <- 1
