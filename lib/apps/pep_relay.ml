type stats = {
  mutable accepted : int;
  mutable active : int;
  mutable c2s_in : int;
  mutable c2s_out : int;
  mutable s2c_in : int;
  mutable s2c_out : int;
  mutable peak_buffered : int;
  mutable closed_pairs : int;
}

let conserved s = s.c2s_in = s.c2s_out && s.s2c_in = s.s2c_out

(* One direction of a relayed pair: bytes from the source connection are
   parked here until the destination accepts them. [off] marks the consumed
   prefix of [q]; the buffer is recycled whenever it fully drains, so a
   pump that keeps up stays at zero retained bytes. *)
type pump = {
  q : Buffer.t;
  mutable off : int;
  mutable dst : Transport.conn option;  (* None until the leg is connected *)
  mutable src_done : bool;  (* source peer closed: drain, then close dst *)
  mutable dst_closed : bool;
  count_out : int -> unit;
}

let buffered p = Buffer.length p.q - p.off

let make_pump ?dst count_out =
  { q = Buffer.create 4096; off = 0; dst; src_done = false;
    dst_closed = false; count_out }

(* Push what the destination will take; park the rest for [on_sendable].
   Once the source is done and the queue is dry, propagate the close. *)
let rec flush p =
  match p.dst with
  | None -> ()
  | Some dst ->
    if p.dst_closed then begin
      (* Destination went away first: any parked bytes are undeliverable;
         drop them so the pair can tear down (counted via peak_buffered). *)
      Buffer.clear p.q;
      p.off <- 0
    end
    else begin
      let avail = buffered p in
      if avail = 0 then begin
        if Buffer.length p.q > 0 then begin
          Buffer.clear p.q;
          p.off <- 0
        end;
        if p.src_done then begin
          p.src_done <- false;
          Transport.close dst
        end
      end
      else begin
        let n_try = min avail 16384 in
        let chunk = Bytes.of_string (Buffer.sub p.q p.off n_try) in
        let n = Transport.send dst chunk in
        if n > 0 then begin
          p.off <- p.off + n;
          p.count_out n;
          flush p
        end
      end
    end

let feed st p data =
  Buffer.add_bytes p.q data;
  if buffered p > st.peak_buffered then st.peak_buffered <- buffered p;
  flush p

let src_closed p =
  p.src_done <- true;
  flush p

let attach ~front ~listen_port ~back ~dst_ip ~dst_port () =
  let st =
    { accepted = 0; active = 0; c2s_in = 0; c2s_out = 0; s2c_in = 0;
      s2c_out = 0; peak_buffered = 0; closed_pairs = 0 }
  in
  Transport.listen front ~port:listen_port (fun client ->
      st.accepted <- st.accepted + 1;
      st.active <- st.active + 1;
      let c2s = make_pump (fun n -> st.c2s_out <- st.c2s_out + n) in
      let s2c =
        make_pump ~dst:client (fun n -> st.s2c_out <- st.s2c_out + n)
      in
      (* Each side that fully closes retires half the pair. *)
      let halves_down = ref 0 in
      let half_down () =
        incr halves_down;
        if !halves_down = 2 then begin
          st.active <- st.active - 1;
          st.closed_pairs <- st.closed_pairs + 1
        end
      in
      Transport.connect back ~dst_ip ~dst_port (fun server ->
          {
            Transport.on_connected =
              (fun server ->
                c2s.dst <- Some server;
                flush c2s);
            on_data =
              (fun _ d ->
                st.s2c_in <- st.s2c_in + Bytes.length d;
                feed st s2c d);
            on_sendable = (fun _ -> flush c2s);
            on_peer_closed = (fun _ -> src_closed s2c);
            on_closed =
              (fun _ ->
                c2s.dst_closed <- true;
                ignore server;
                half_down ());
          });
      {
        Transport.on_connected = (fun _ -> ());
        on_data =
          (fun _ d ->
            st.c2s_in <- st.c2s_in + Bytes.length d;
            feed st c2s d);
        on_sendable = (fun _ -> flush s2c);
        on_peer_closed = (fun _ -> src_closed c2s);
        on_closed =
          (fun _ ->
            s2c.dst_closed <- true;
            half_down ());
      });
  st
