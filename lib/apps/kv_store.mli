(** Key-value store modeled after memcached (paper §5.3), with a
    memslap-like closed-loop client.

    Wire format (binary, length-prefixed):
    - request: op(1) keylen(2) key vallen(2) value — vallen=0 for GET;
    - response: status(1) vallen(2) value.

    The optional serialized section models the paper's non-scalable
    workload (Table 7): every request must additionally pass through a
    single lock core, capping scalability Amdahl-style. *)

type t

val create_server :
  Transport.t ->
  port:int ->
  app_cycles:int ->
  ?serial:(Tas_cpu.Core.t * int) ->
  unit ->
  t
(** [app_cycles] is per-request application work charged on the
    connection's core; [serial] adds a (core, cycles) critical section. *)

val encode_request : op:int -> key:string -> value:string -> bytes
(** Wire encoding of one request (op 0 = GET, 1 = SET) — exposed for load
    drivers that manage connection lifecycles themselves (the chaos
    experiment). *)

val gets : t -> int
val sets : t -> int
val misses : t -> int
val stored_keys : t -> int

(** Closed-loop load generator over a zipf-distributed key space. *)
module Client : sig
  type workload = {
    n_keys : int;
    key_size : int;
    value_size : int;
    get_fraction : float;  (** 0.9 in the paper's workload *)
    zipf_s : float;  (** 0.9 in the paper's workload *)
  }

  val default_workload : workload
  (** 100 K keys, 32 B keys, 64 B values, 90% GETs, zipf s=0.9. *)

  val run :
    Tas_engine.Sim.t ->
    Transport.t ->
    rng:Tas_engine.Rng.t ->
    n_conns:int ->
    dst_ip:Tas_proto.Addr.ipv4 ->
    dst_port:int ->
    workload:workload ->
    stats:Rpc_echo.stats ->
    ?think_ns:int ->
    ?start_at:Tas_engine.Time_ns.t ->
    unit ->
    unit
  (** One outstanding request per connection; [think_ns] inserts client-side
      idle time between response and next request (for load control in the
      latency experiment). *)
end
