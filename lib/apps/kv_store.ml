module Sim = Tas_engine.Sim
module Rng = Tas_engine.Rng
module Stats = Tas_engine.Stats
module Core = Tas_cpu.Core

type t = {
  table : (string, string) Hashtbl.t;
  mutable gets : int;
  mutable sets : int;
  mutable misses : int;
}

let gets t = t.gets
let sets t = t.sets
let misses t = t.misses
let stored_keys t = Hashtbl.length t.table

(* --- Wire format ----------------------------------------------------------- *)

let put16 buf off v =
  Bytes.set buf off (Char.chr ((v lsr 8) land 0xff));
  Bytes.set buf (off + 1) (Char.chr (v land 0xff))

let get16 buf off =
  (Char.code (Bytes.get buf off) lsl 8) lor Char.code (Bytes.get buf (off + 1))

let encode_request ~op ~key ~value =
  let klen = String.length key and vlen = String.length value in
  let buf = Bytes.create (5 + klen + vlen) in
  Bytes.set buf 0 (Char.chr op);
  put16 buf 1 klen;
  Bytes.blit_string key 0 buf 3 klen;
  put16 buf (3 + klen) vlen;
  Bytes.blit_string value 0 buf (5 + klen) vlen;
  buf

let encode_response ~status ~value =
  let vlen = String.length value in
  let buf = Bytes.create (3 + vlen) in
  Bytes.set buf 0 (Char.chr status);
  put16 buf 1 vlen;
  Bytes.blit_string value 0 buf 3 vlen;
  buf

(* Incremental stream parser: returns the list of complete requests and
   retains the remainder. *)
type parser_state = { mutable buf : Bytes.t }

let make_parser () = { buf = Bytes.empty }

let feed_requests p data =
  p.buf <- Bytes.cat p.buf data;
  let requests = ref [] in
  let continue = ref true in
  while !continue do
    let available = Bytes.length p.buf in
    if available < 5 then continue := false
    else begin
      let klen = get16 p.buf 1 in
      if available < 3 + klen + 2 then continue := false
      else begin
        let vlen = get16 p.buf (3 + klen) in
        let total = 5 + klen + vlen in
        if available < total then continue := false
        else begin
          let op = Char.code (Bytes.get p.buf 0) in
          let key = Bytes.sub_string p.buf 3 klen in
          let value = Bytes.sub_string p.buf (5 + klen) vlen in
          requests := (op, key, value) :: !requests;
          p.buf <- Bytes.sub p.buf total (available - total)
        end
      end
    end
  done;
  List.rev !requests

let feed_responses p data =
  p.buf <- Bytes.cat p.buf data;
  let responses = ref [] in
  let continue = ref true in
  while !continue do
    let available = Bytes.length p.buf in
    if available < 3 then continue := false
    else begin
      let vlen = get16 p.buf 1 in
      let total = 3 + vlen in
      if available < total then continue := false
      else begin
        let status = Char.code (Bytes.get p.buf 0) in
        let value = Bytes.sub_string p.buf 3 vlen in
        responses := (status, value) :: !responses;
        p.buf <- Bytes.sub p.buf total (available - total)
      end
    end
  done;
  List.rev !responses

(* --- Server ----------------------------------------------------------------- *)

let create_server transport ~port ~app_cycles ?serial () =
  let t = { table = Hashtbl.create 4096; gets = 0; sets = 0; misses = 0 } in
  Transport.listen transport ~port (fun _conn ->
      let parser = make_parser () in
      let respond conn (op, key, value) =
        let finish () =
          let response =
            match op with
            | 0 -> begin
              t.gets <- t.gets + 1;
              match Hashtbl.find_opt t.table key with
              | Some v -> encode_response ~status:0 ~value:v
              | None ->
                t.misses <- t.misses + 1;
                encode_response ~status:1 ~value:""
            end
            | _ ->
              t.sets <- t.sets + 1;
              Hashtbl.replace t.table key value;
              encode_response ~status:0 ~value:""
          in
          ignore (Transport.send conn response)
        in
        match serial with
        | None -> Transport.charge_app conn app_cycles finish
        | Some (lock_core, serial_cycles) ->
          (* Parallel part on the connection's core, then the serialized
             critical section on the shared lock core. *)
          Transport.charge_app conn app_cycles (fun () ->
              Core.run lock_core ~cycles:serial_cycles finish)
      in
      {
        Transport.null_handlers with
        Transport.on_data =
          (fun conn data ->
            List.iter (respond conn) (feed_requests parser data));
        (* memcached-style: when the client stops sending, close our side
           too so the connection tears down instead of idling half-open. *)
        Transport.on_peer_closed = (fun conn -> Transport.close conn);
      });
  t

(* --- Client ----------------------------------------------------------------- *)

module Client = struct
  type workload = {
    n_keys : int;
    key_size : int;
    value_size : int;
    get_fraction : float;
    zipf_s : float;
  }

  let default_workload =
    {
      n_keys = 100_000;
      key_size = 32;
      value_size = 64;
      get_fraction = 0.9;
      zipf_s = 0.9;
    }

  let key_of workload i =
    let base = Printf.sprintf "key-%08x" i in
    if String.length base >= workload.key_size then
      String.sub base 0 workload.key_size
    else base ^ String.make (workload.key_size - String.length base) 'k'

  let value_of workload rng =
    String.init workload.value_size (fun _ ->
        Char.chr (97 + Rng.int rng 26))

  let run sim transport ~rng ~n_conns ~dst_ip ~dst_port ~workload ~stats
      ?(think_ns = 0) ?(start_at = 0) () =
    let sampler = Rng.Zipf.create ~n:workload.n_keys ~s:workload.zipf_s in
    (* Spread gated first requests over ~10 ms: a synchronized burst from
       tens of thousands of connections would take the server many
       milliseconds to chew through before steady state. *)
    let jitter () = if start_at = 0 then 0 else Rng.int rng 10_000_000 in
    for _ = 1 to n_conns do
      let parser = make_parser () in
      let sent_at = ref 0 in
      let fire conn =
        sent_at := Sim.now sim;
        let key = key_of workload (Rng.Zipf.draw rng sampler) in
        let request =
          if Rng.float rng 1.0 < workload.get_fraction then
            encode_request ~op:0 ~key ~value:""
          else encode_request ~op:1 ~key ~value:(value_of workload rng)
        in
        ignore (Transport.send conn request)
      in
      let next conn =
        if think_ns = 0 then fire conn
        else ignore (Sim.schedule sim think_ns (fun () -> fire conn))
      in
      Transport.connect transport ~dst_ip ~dst_port (fun _ ->
          {
            Transport.null_handlers with
            Transport.on_connected =
              (fun conn ->
                Stats.Counter.incr stats.Rpc_echo.connects;
                (* Hold fire until the start gate so connection setup stays
                   cheap to simulate. *)
                let go_at = start_at + jitter () in
                if Sim.now sim >= go_at then fire conn
                else
                  ignore
                    (Sim.schedule sim (go_at - Sim.now sim) (fun () ->
                         fire conn)));
            Transport.on_data =
              (fun conn data ->
                let responses = feed_responses parser data in
                List.iter
                  (fun _ ->
                    Stats.Hist.add stats.Rpc_echo.latency_us
                      (float_of_int (Sim.now sim - !sent_at) /. 1000.0);
                    Stats.Counter.incr stats.Rpc_echo.completed;
                    next conn)
                  responses);
          })
    done
end
