(** Split-TCP performance-enhancing proxy (RFC 3135).

    A PEP host terminates each client connection locally and opens a
    separate onward connection to the real server, pumping bytes between
    the two with backpressure: data that the onward side will not yet
    accept is parked in a bounded-growth byte queue and drained on
    [on_sendable], so a slow leg throttles the fast one instead of being
    overrun. Each leg runs its own loss recovery over its own RTT — the
    WAN leg's retransmissions never traverse the LAN leg.

    Close handling is relay-shaped: when one side's peer closes, the relay
    finishes draining that direction's queue and then closes the onward
    side, so no accepted byte is lost. (True half-close is not modeled —
    matching {!Transport.close}'s full-close semantics.) *)

type stats = {
  mutable accepted : int;  (** client connections accepted *)
  mutable active : int;  (** pairs with at least one side still open *)
  mutable c2s_in : int;  (** bytes received from clients *)
  mutable c2s_out : int;  (** bytes forwarded to the server *)
  mutable s2c_in : int;  (** bytes received from the server *)
  mutable s2c_out : int;  (** bytes forwarded to clients *)
  mutable peak_buffered : int;
      (** high-water mark of bytes parked in any one direction's queue *)
  mutable closed_pairs : int;  (** pairs fully torn down *)
}

val conserved : stats -> bool
(** Every byte accepted from one side was forwarded to the other: the
    relay's conservation invariant once traffic has drained. *)

val attach :
  front:Transport.t ->
  listen_port:int ->
  back:Transport.t ->
  dst_ip:Tas_proto.Addr.ipv4 ->
  dst_port:int ->
  unit ->
  stats
(** Start relaying: listen on [front]'s [listen_port]; for every accepted
    connection, connect through [back] to [dst_ip:dst_port] and pump both
    directions until either side closes. Returns the live counters. *)
