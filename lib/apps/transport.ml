module E = Tas_baseline.Tcp_engine
module SM = Tas_baseline.Server_model
module Libtas = Tas_core.Libtas

type conn = {
  id : int;
  send : bytes -> int;
  close : unit -> unit;
  charge : int -> (unit -> unit) -> unit;
}

type handlers = {
  on_connected : conn -> unit;
  on_data : conn -> bytes -> unit;
  on_sendable : conn -> unit;
  on_peer_closed : conn -> unit;
  on_closed : conn -> unit;
}

let null_handlers =
  {
    on_connected = ignore;
    on_data = (fun _ _ -> ());
    on_sendable = ignore;
    on_peer_closed = ignore;
    on_closed = ignore;
  }

type t = {
  listen_impl : port:int -> (conn -> handlers) -> unit;
  connect_impl : dst_ip:Tas_proto.Addr.ipv4 -> dst_port:int ->
    (conn -> handlers) -> unit;
}

let listen t = t.listen_impl
let connect t = t.connect_impl
let send c = c.send
let close c = c.close ()
let conn_id c = c.id
let charge_app c = c.charge

(* --- Ideal engine host (clients) ---------------------------------------- *)

let of_engine engine =
  let next_id = ref 0 in
  let wrap econn =
    incr next_id;
    {
      id = !next_id;
      send = (fun data -> E.send econn data);
      close = (fun () -> E.close econn);
      charge = (fun _cycles k -> k ());
    }
  in
  let to_cb h c =
    {
      E.on_connected = (fun _ -> h.on_connected c);
      E.on_receive = (fun _ data -> h.on_data c data);
      E.on_sendable = (fun _ _ -> h.on_sendable c);
      E.on_closed = (fun _ -> h.on_peer_closed c);
    }
  in
  {
    listen_impl =
      (fun ~port gen ->
        E.listen engine ~port (fun econn ->
            let c = wrap econn in
            to_cb (gen c) c));
    connect_impl =
      (fun ~dst_ip ~dst_port gen ->
        (* Tie the knot: the conn wrapper needs the engine conn and the
           handlers need the wrapper. *)
        let cref = ref None in
        let href = ref null_handlers in
        let cb =
          {
            E.on_connected =
              (fun _ ->
                match !cref with Some c -> !href.on_connected c | None -> ());
            E.on_receive =
              (fun _ data ->
                match !cref with Some c -> !href.on_data c data | None -> ());
            E.on_sendable =
              (fun _ _ ->
                match !cref with Some c -> !href.on_sendable c | None -> ());
            E.on_closed =
              (fun _ ->
                match !cref with Some c -> !href.on_peer_closed c | None -> ());
          }
        in
        let econn = E.connect engine ~dst_ip ~dst_port cb in
        let c = wrap econn in
        cref := Some c;
        href := gen c);
  }

(* --- Cost-charged baseline server ---------------------------------------- *)

let of_server_model sm =
  let engine = SM.engine sm in
  let next_id = ref 0 in
  (* EPOLLOUT semantics: a sendable notification costs API cycles, so it is
     delivered only when the application armed it with a short send. *)
  let wrap econn =
    incr next_id;
    let want_sendable = ref false in
    let send data =
      let n = SM.send sm econn data in
      if n < Bytes.length data then want_sendable := true;
      n
    in
    ( {
        id = !next_id;
        send;
        close = (fun () -> E.close econn);
        charge = (fun cycles k -> SM.charge_app sm econn ~cycles k);
      },
      want_sendable )
  in
  let to_cb h c econn want_sendable =
    (* epoll-style batching: packets arriving while the app is busy are
       delivered in one wakeup, amortizing the API cost over the batch. *)
    let rx_pending = Buffer.create 256 in
    let rx_scheduled = ref false in
    {
      E.on_connected = (fun _ -> SM.deliver_to_app sm econn (fun () -> h.on_connected c));
      E.on_receive =
        (fun _ data ->
          Buffer.add_bytes rx_pending data;
          if not !rx_scheduled then begin
            rx_scheduled := true;
            SM.deliver_to_app sm econn (fun () ->
                rx_scheduled := false;
                let batch = Buffer.to_bytes rx_pending in
                Buffer.clear rx_pending;
                if Bytes.length batch > 0 then h.on_data c batch)
          end);
      E.on_sendable =
        (fun _ _ ->
          if !want_sendable then begin
            want_sendable := false;
            SM.deliver_to_app sm econn (fun () -> h.on_sendable c)
          end);
      E.on_closed =
        (fun _ -> SM.deliver_to_app sm econn (fun () -> h.on_peer_closed c));
    }
  in
  {
    listen_impl =
      (fun ~port gen ->
        E.listen engine ~port (fun econn ->
            let c, want_sendable = wrap econn in
            to_cb (gen c) c econn want_sendable));
    connect_impl =
      (fun ~dst_ip ~dst_port gen ->
        let cref = ref None and href = ref null_handlers in
        let deliver k =
          match !cref with None -> () | Some (c, econn, _) ->
            SM.deliver_to_app sm econn (fun () -> k c)
        in
        let rx_pending = Buffer.create 256 in
        let rx_scheduled = ref false in
        let cb =
          {
            E.on_connected = (fun _ -> deliver (fun c -> !href.on_connected c));
            E.on_receive =
              (fun _ data ->
                Buffer.add_bytes rx_pending data;
                if not !rx_scheduled then begin
                  rx_scheduled := true;
                  deliver (fun c ->
                      rx_scheduled := false;
                      let batch = Buffer.to_bytes rx_pending in
                      Buffer.clear rx_pending;
                      if Bytes.length batch > 0 then !href.on_data c batch)
                end);
            E.on_sendable =
              (fun _ _ ->
                match !cref with
                | Some (c, econn, want_sendable) when !want_sendable ->
                  want_sendable := false;
                  SM.deliver_to_app sm econn (fun () -> !href.on_sendable c)
                | _ -> ());
            E.on_closed = (fun _ -> deliver (fun c -> !href.on_peer_closed c));
          }
        in
        let econn = E.connect engine ~dst_ip ~dst_port cb in
        let c, want_sendable = wrap econn in
        cref := Some (c, econn, want_sendable);
        href := gen c)
  }

(* --- TAS via libTAS -------------------------------------------------------- *)

let of_libtas lt ~ctx_of_conn =
  let counter = ref 0 in
  let wrap sock =
    {
      id = Libtas.sock_id sock;
      send = (fun data -> Libtas.send sock data);
      close = (fun () -> Libtas.close sock);
      charge = (fun cycles k -> Libtas.app_cycles sock cycles k);
    }
  in
  let to_handlers h c =
    {
      Libtas.on_connected = (fun _ -> h.on_connected c);
      Libtas.on_data = (fun _ data -> h.on_data c data);
      Libtas.on_sendable = (fun _ -> h.on_sendable c);
      Libtas.on_peer_closed = (fun _ -> h.on_peer_closed c);
      Libtas.on_closed = (fun _ -> h.on_closed c);
      Libtas.on_connect_failed = (fun _ _err -> h.on_closed c);
      (* A reset is surfaced to transport users as the on_closed that
         follows when the flow is removed. *)
      Libtas.on_reset = (fun _ -> ());
    }
  in
  {
    listen_impl =
      (fun ~port gen ->
        Libtas.listen lt ~port
          ~ctx_of_tuple:(fun _ ->
            incr counter;
            ctx_of_conn !counter)
          (fun sock ->
            let c = wrap sock in
            to_handlers (gen c) c));
    connect_impl =
      (fun ~dst_ip ~dst_port gen ->
        incr counter;
        let ctx = ctx_of_conn !counter in
        let cref = ref None and href = ref null_handlers in
        let via k = match !cref with Some c -> k c | None -> () in
        let handlers =
          {
            Libtas.on_connected = (fun _ -> via (fun c -> !href.on_connected c));
            Libtas.on_data = (fun _ d -> via (fun c -> !href.on_data c d));
            Libtas.on_sendable = (fun _ -> via (fun c -> !href.on_sendable c));
            Libtas.on_peer_closed =
              (fun _ -> via (fun c -> !href.on_peer_closed c));
            Libtas.on_closed = (fun _ -> via (fun c -> !href.on_closed c));
            Libtas.on_connect_failed =
              (fun _ _err -> via (fun c -> !href.on_closed c));
            Libtas.on_reset = (fun _ -> ());
          }
        in
        let sock = Libtas.connect lt ~ctx ~dst_ip ~dst_port handlers in
        let c = wrap sock in
        cref := Some c;
        href := gen c)
  }
