(** The TAS fast path (paper §3.1).

    A set of dedicated cores receives packets from NIC queues via RSS. For
    each in-order data segment the fast path deposits payload directly into
    the flow's receive buffer, notifies the owning context queue, and
    generates the acknowledgement (with ECN echo and timestamps). For
    transmission it drains per-flow rate/window buckets, segmenting payload
    from the flow's transmit buffer. It handles exactly two exceptions
    inline — duplicate-ACK fast recovery and a single out-of-order receive
    interval — and forwards everything else (SYN/FIN/RST, unknown flows) to
    the slow path.

    Loss recovery is pluggable ([Config.recovery_policy]): the default
    [Reno] policy is the paper's go-back-N machinery, byte-identical to
    the seed; [Sack] and [Rack_tlp] flows instead advertise SACK blocks on
    their ACKs, feed a sender scoreboard ({!Tas_recovery.Scoreboard}) and
    repair losses selectively — plus, for [Rack_tlp], time-based loss
    marking and tail-loss probes on fire-and-forget simulator timers. *)

type t

type stats = {
  mutable rx_data_packets : int;
  mutable rx_ack_packets : int;
  mutable tx_data_packets : int;
  mutable acks_sent : int;
  mutable ooo_stored : int;
  mutable payload_drops : int;  (** receive payload buffer full *)
  mutable fast_retransmits : int;
  mutable exceptions_forwarded : int;
  mutable malformed_drops : int;
      (** packets whose IP total length disagrees with their actual
          header/payload sizes, dropped before any flow-state access *)
  mutable rx_bursts : int;  (** vector passes over a receive backlog *)
  mutable rx_burst_packets : int;
      (** packets that went through a vector pass; [/ rx_bursts] is the
          achieved mean burst depth *)
}

type rec_stats = {
  mutable rec_episodes : int;  (** SACK/RACK recovery episodes entered *)
  mutable rec_sacked_segments : int;
  mutable rec_lost_marked : int;
      (** segments marked lost by the dupthresh / RACK rules *)
  mutable rec_selective_retransmits : int;
  mutable rec_tlp_probes : int;
  mutable rec_reo_timeouts : int;
      (** RACK reordering timers that fired and marked losses *)
}
(** All zero under the default [Reno] policy (and the [rec_*] metrics are
    not registered then — the registry output stays identical to the
    pre-recovery seed). *)

val create :
  ?trace:Tas_telemetry.Trace.t ->
  ?span:Tas_telemetry.Span.t ->
  Tas_engine.Sim.t ->
  nic:Tas_netsim.Nic.t ->
  cores:Tas_cpu.Core.t array ->
  config:Config.t ->
  t
(** [trace] is the structured trace-event ring; defaults to a disabled
    ring (one boolean test per would-be event). [span] is the per-packet
    latency span collector, shared with the peer host and the network
    elements between them; defaults to disabled (one integer comparison
    per span hook). *)

val attach : t -> unit
(** Install the NIC receive handler: packets are charged and processed on
    the core owning their RSS queue. With [Config.fp_burst_enabled] each
    arrival is charged immediately but queued on a per-core backlog; one
    scheduled drain works the backlog off in vector passes of at most
    [Config.fp_burst_size] packets ({!process_burst}). *)

val process_burst :
  t -> Tas_proto.Packet.t array -> count:int -> Tas_cpu.Core.t -> unit
(** One vector pass over [pkts.(0 .. count-1)] on [core]: per-segment flow
    lookup, seq/ack update and ACK/data emission exactly as single-packet
    processing would do them, in array order — so a burst of N segments of
    one flow behaves identically to N single dispatches, and per-flow
    ordering is preserved for any interleaving of flows. A pass-local flow
    memo elides repeated flow-table lookups within same-flow runs. Consumes
    one packet reference per packet (like single-packet processing); an
    empty burst ([count = 0]) is a no-op.
    @raise Invalid_argument if [count] exceeds [Array.length pkts]. *)

val set_exception_handler : t -> (Tas_proto.Packet.t -> unit) -> unit
(** Where non-common-case packets go (the slow path). Runs after the fast
    path classified the packet (classification cost already charged). *)

val flows : t -> Flow_table.t
val stats : t -> stats
val rec_stats : t -> rec_stats
val config : t -> Config.t
val nic : t -> Tas_netsim.Nic.t
val trace : t -> Tas_telemetry.Trace.t
val span : t -> Tas_telemetry.Span.t

val register : t -> Tas_telemetry.Metrics.t -> unit
(** Register the fast path's counters ([fp_*]) plus active-core and
    flow-count gauges into a metrics registry. The counters remain the
    plain mutable fields of {!stats}; the registry reads them through
    closures, so the data path is untouched. *)

val active_cores : t -> int
val set_active_cores : t -> int -> unit
(** Scale the fast path up/down: updates the NIC RSS redirection table
    eagerly (§3.4). New work lands only on the first [n] cores; work already
    queued on a deactivated core completes there. Idempotent after the
    first call: a repeat with the unchanged (clamped) count is a no-op and
    does not rewrite the redirection table. *)

val core_of_flow : t -> Flow_state.t -> Tas_cpu.Core.t
(** The core currently owning the flow (RSS steering). *)

val install_flow :
  t -> tuple:Tas_proto.Addr.Four_tuple.t -> Flow_state.t -> unit
(** Slow path installs an established flow's state. *)

val remove_flow : t -> tuple:Tas_proto.Addr.Four_tuple.t -> unit

val fresh_context_id : t -> int
(** Allocate a unique context id (multiple applications attach to one fast
    path; each brings its own context queues, §3.3). *)

val register_context : t -> Context.t -> unit
(** Make a context queue addressable by its id from per-flow state.
    @raise Invalid_argument on a duplicate id. *)

val unregister_context : t -> int -> unit

val context : t -> int -> Context.t
val find_context : t -> int -> Context.t option

val notify_tx : t -> Flow_state.t -> unit
(** Application enqueued data into the flow's transmit buffer: wake the
    owning fast-path core and try to send (the TX command on a context
    queue of Fig. 2). *)

val trigger_retransmit : t -> Flow_state.t -> unit
(** Slow-path command after a retransmission timeout: rewind the flow as if
    the unacknowledged segments had never been sent, then transmit. *)

val release_pkt : Tas_proto.Packet.t -> unit
(** Drop one reference to [pkt], recycling its pooled payload buffer into
    the domain-local buffer pool when this was the last reference. Callers
    that keep a packet alive across a scheduling gap pair this with
    {!Tas_proto.Packet.retain}. *)

val reinject : t -> Tas_proto.Packet.t -> unit
(** Re-run fast-path processing for a packet that raced connection setup:
    the slow path calls this after installing a flow when the triggering
    packet carried payload. No-op if the flow is still unknown. *)

val send_raw : t -> Tas_proto.Packet.t -> unit
(** Transmit a packet built by the slow path (SYN/FIN handshakes) through
    this host's NIC. *)

val emit_fin : t -> Flow_state.t -> unit
(** Send a FIN for a drained flow (slow-path teardown); consumes one
    sequence number. *)

val core_idle_fractions : t -> window_ns:int -> float array
(** Per-core idle fraction over the last [window_ns], one entry per
    configured core (inactive cores read 1.0) — the elastic controller's
    per-core signal. Advances the shared per-core busy snapshots, so one
    consumer per instance: {!idle_core_total} is a sum over this. *)

val idle_core_total : t -> window_ns:int -> float
(** Aggregate idle cores over the last [window_ns] (sum of
    {!core_idle_fractions} over the active cores): the input to the
    workload-proportionality controller. Uses per-core busy time since the
    previous call. *)
