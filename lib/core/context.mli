(** Context queues: the shared-memory notification channel from the fast
    path to an application thread (paper §3.1/3.3).

    Each application thread typically owns one context, so it can poll a
    private queue instead of scanning shared payload buffers. Events are
    edge-triggered and coalesced per flow (at most one pending Readable and
    one pending Writable per flow), so a bounded queue of one slot per flow
    can never overflow — matching the paper's observation that context
    queues only fill when payload is queued for an application that will
    drain them soon. *)

type event =
  | Readable of Flow_state.t
      (** New in-order payload (or EOF) is available in the flow's receive
          buffer. *)
  | Writable of Flow_state.t
      (** ACKs freed transmit-buffer space. *)

type t

val create : id:int -> capacity:int -> t
val id : t -> int

val post_readable : t -> Flow_state.t -> unit
(** Enqueue a Readable notification unless one is already pending for this
    flow; fires the waker if the queue was empty. *)

val post_writable : t -> Flow_state.t -> unit

val set_waker : t -> (unit -> unit) -> unit
(** [waker] is invoked whenever an event is posted to an empty queue — the
    kernel eventfd wakeup for a thread blocked in epoll. *)

val pop : t -> event option
(** Dequeue the next event, clearing its coalescing flag. *)

val pending : t -> int

val is_empty : t -> bool
(** No events queued (cheaper than [pending t = 0]). *)
