(** Off-heap arena of per-flow state records.

    The paper's Table 3 keeps all per-flow fast-path state in a compact
    102-byte record so a flow's entire working set fits in two cache lines.
    This module is the literal analogue: a single [Bigarray] allocation
    outside the OCaml heap, divided into 102-byte slots at fixed field
    offsets, with a free list for slot reuse. The GC never scans or moves
    it, and a live flow costs exactly [slot_bytes] bytes of state.

    Accessors are unboxed [int] getters/setters at fixed offsets; widths
    match the wire/table widths (u8/u16/u24/u32/u48/u64), so every field
    silently wraps at its declared width exactly like the C struct would.

    Slots carry a generation counter bumped on [free]: a stale handle can
    detect (and tests can assert) that a slot was recycled. *)

type t

val slot_bytes : int
(** Bytes per record: 102 (Table 3). *)

val create : ?capacity:int -> unit -> t
(** [capacity] slots (default 4096), one contiguous off-heap allocation. *)

val capacity : t -> int

val live : t -> int
(** Slots currently allocated. *)

val available : t -> int
(** Slots left before {!alloc} returns [None]. *)

val alloc : t -> int option
(** Pop a slot off the free list, zeroed except its generation counter.
    [None] when the arena is exhausted — the caller refuses the flow rather
    than falling back to heap allocation. *)

val free : t -> int -> unit
(** Return a slot to the free list and bump its generation. Raises
    [Invalid_argument] on a double free or an out-of-range slot. *)

val in_use : t -> int -> bool

val generation : t -> int -> int
(** Recycling counter of a slot (u16, wraps). *)

(** {2 Field accessors}

    One getter/setter pair per Table-3 field, at the documented offset.
    Layout (byte offset, width):

    {v
      0  8  opaque        40  4  tx_span (i32)   66  2  dupack_cnt
      8  4  seq           44  4  rx_span (i32)   68  2  cnt_frexmits
     12  4  ack           48  4  ooo_start       70  6  peer_mac
     16  4  tx_sent       52  4  ooo_len         76  1  peer_wscale
     20  4  window        56  4  peer_ip         77  1  flags
     24  4  cnt_ackb      60  2  local_port      78  2  generation
     28  4  cnt_ecnb      62  2  peer_port       80  4  rx_head
     32  4  rtt_est       64  2  context         84  4  rx_tail
     36  4  ts_recent                            88  4  tx_head
                                                 92  4  tx_tail
                                                 96  3  rx_size
                                                 99  3  tx_size
    v} *)

val get_opaque : t -> int -> int
val set_opaque : t -> int -> int -> unit
val get_seq : t -> int -> int
val set_seq : t -> int -> int -> unit
val get_ack : t -> int -> int
val set_ack : t -> int -> int -> unit
val get_tx_sent : t -> int -> int
val set_tx_sent : t -> int -> int -> unit
val get_window : t -> int -> int
val set_window : t -> int -> int -> unit
val get_cnt_ackb : t -> int -> int
val set_cnt_ackb : t -> int -> int -> unit
val get_cnt_ecnb : t -> int -> int
val set_cnt_ecnb : t -> int -> int -> unit
val get_rtt_est : t -> int -> int
val set_rtt_est : t -> int -> int -> unit
val get_ts_recent : t -> int -> int
val set_ts_recent : t -> int -> int -> unit

val get_tx_span : t -> int -> int
(** Signed 32-bit: [-1] encodes "no span pending". *)

val set_tx_span : t -> int -> int -> unit
val get_rx_span : t -> int -> int
val set_rx_span : t -> int -> int -> unit
val get_ooo_start : t -> int -> int
val set_ooo_start : t -> int -> int -> unit
val get_ooo_len : t -> int -> int
val set_ooo_len : t -> int -> int -> unit
val get_peer_ip : t -> int -> int
val set_peer_ip : t -> int -> int -> unit
val get_local_port : t -> int -> int
val set_local_port : t -> int -> int -> unit
val get_peer_port : t -> int -> int
val set_peer_port : t -> int -> int -> unit
val get_context : t -> int -> int
val set_context : t -> int -> int -> unit
val get_dupack_cnt : t -> int -> int
val set_dupack_cnt : t -> int -> int -> unit
val get_cnt_frexmits : t -> int -> int
val set_cnt_frexmits : t -> int -> int -> unit
val get_peer_mac : t -> int -> int
val set_peer_mac : t -> int -> int -> unit
val get_peer_wscale : t -> int -> int
val set_peer_wscale : t -> int -> int -> unit

val get_flags : t -> int -> int
(** Packed booleans, bit layout: 0 in_recovery, 1 rx_notified,
    2 tx_notified, 3 tx_interest, 4 tx_timer_armed, 5 fin_received,
    6 fin_sent, 7 rx_closed. *)

val set_flags : t -> int -> int -> unit
val get_flag : t -> int -> bit:int -> bool
val set_flag : t -> int -> bit:int -> bool -> unit

val get_rx_head : t -> int -> int
val set_rx_head : t -> int -> int -> unit
val get_rx_tail : t -> int -> int
val set_rx_tail : t -> int -> int -> unit
val get_tx_head : t -> int -> int
val set_tx_head : t -> int -> int -> unit
val get_tx_tail : t -> int -> int
val set_tx_tail : t -> int -> int -> unit
val get_rx_size : t -> int -> int
val set_rx_size : t -> int -> int -> unit
val get_tx_size : t -> int -> int
val set_tx_size : t -> int -> int -> unit

val field_layout : (string * int * int) list
(** [(name, byte offset, byte width)] for every field above, in offset
    order — the machine-checkable Table-3 layout used by the docs and the
    round-trip property tests. *)
