module Sim = Tas_engine.Sim
module Core = Tas_cpu.Core
module Ring = Tas_buffers.Ring_buffer
module Buf_pool = Tas_buffers.Buf_pool
module Metrics = Tas_telemetry.Metrics
module Span = Tas_telemetry.Span

type api = Sockets | Lowlevel

type stats = {
  mutable events_dispatched : int;
  mutable sockets_opened : int;
  mutable rx_bytes : int;
  mutable tx_bytes : int;
}

type t = {
  sim : Sim.t;
  fp : Fast_path.t;
  sp : Slow_path.t;
  contexts : app_context array;
  api : api;
  api_cycles : int;  (* per context-queue event *)
  epoll_cycles : int;
  sockets : (int, socket) Hashtbl.t;
  mutable next_id : int;
  stats : stats;
}

and app_context = {
  ctx : Context.t;
  core : Core.t;
  mutable draining : bool;
  (* Persistent event-loop step: one closure per context for the lifetime
     of the app, not one per dispatched event. *)
  mutable step : unit -> unit;
}

and socket = {
  id : int;
  owner : t;
  ctx_index : int;  (* index into [contexts], not the global context id *)
  mutable flow : Flow_state.t option;
  mutable handlers : handlers;
  mutable eof_delivered : bool;
  mutable closed : bool;
}

and handlers = {
  on_connected : socket -> unit;
  on_data : socket -> bytes -> unit;
  on_sendable : socket -> unit;
  on_peer_closed : socket -> unit;
  on_closed : socket -> unit;
  on_connect_failed : socket -> Slow_path.conn_error -> unit;
  on_reset : socket -> unit;
}

let null_handlers =
  {
    on_connected = ignore;
    on_data = (fun _ _ -> ());
    on_sendable = ignore;
    on_peer_closed = ignore;
    on_closed = ignore;
    on_connect_failed = (fun _ _ -> ());
    on_reset = ignore;
  }

let sock_id s = s.id
let is_open s = (not s.closed) && s.flow <> None
let num_contexts t = Array.length t.contexts
let context_core t i = t.contexts.(i).core
let api_event_cycles t = t.api_cycles
let stats t = t.stats

let register t m ?(labels = []) () =
  let s = t.stats in
  let c name help f = Metrics.counter_fn m ~labels ~help name f in
  c "lt_events_dispatched" "context-queue events delivered to the app"
    (fun () -> s.events_dispatched);
  c "lt_sockets_opened" "sockets created" (fun () -> s.sockets_opened);
  c "lt_rx_bytes" "payload bytes delivered to the app" (fun () -> s.rx_bytes);
  c "lt_tx_bytes" "payload bytes accepted from the app" (fun () -> s.tx_bytes);
  Metrics.gauge_fn m ~labels ~help:"sockets currently open" "lt_open_sockets"
    (fun () -> float_of_int (Hashtbl.length t.sockets))

(* Table 1 calibration: the sockets layer costs 0.62 kc per request (one
   Readable event plus the send call it triggers); the low-level interface
   costs 168 cycles (§2.2). We charge the cost per context-queue event. *)
let cycles_of_api = function Sockets -> 620 | Lowlevel -> 168

(* --- Event-loop (epoll emulation) --------------------------------------- *)

(* One [Core.run] per context-queue event, but through the context's
   persistent [step] thunk: popping at fire time (rather than at schedule
   time) lets arrivals in between coalesce into the queued notification and
   keeps the loop allocation-free. *)
let rec drain_context t actx =
  if Context.is_empty actx.ctx then actx.draining <- false
  else Core.run actx.core ~cat:Core.Api ~cycles:t.api_cycles actx.step

and drain_step t actx =
  (match Context.pop actx.ctx with
  | None -> ()
  | Some event ->
    t.stats.events_dispatched <- t.stats.events_dispatched + 1;
    dispatch t event);
  drain_context t actx

and dispatch t event =
  match event with
  | Context.Readable flow -> begin
    match Hashtbl.find_opt t.sockets (Flow_state.opaque flow) with
    | None -> ()
    | Some sock ->
      let rx_buf = Flow_state.rx_buf flow in
      let available = Ring.used rx_buf in
      if available > 0 then begin
        (* Borrowed delivery buffer: recycled through the payload pool after
           [on_data] returns, so handlers must consume it synchronously (all
           in-tree handlers copy or parse before returning — see the
           contract on [handlers] in the interface). *)
        let buf = Buf_pool.take (Buf_pool.local ()) available in
        let n = Ring.pop rx_buf ~dst:buf ~dst_off:0 ~len:available in
        assert (n = available);
        t.stats.rx_bytes <- t.stats.rx_bytes + n;
        if Flow_state.rx_span flow >= 0 then begin
          Span.record (Fast_path.span t.fp) ~ts:(Sim.now t.sim)
            ~id:(Flow_state.rx_span flow) ~hop:Span.App_deliver
            ~core:(Core.id t.contexts.(sock.ctx_index).core)
            ~flow:(Flow_state.opaque flow);
          Flow_state.set_rx_span flow (-1)
        end;
        sock.handlers.on_data sock buf;
        Buf_pool.give (Buf_pool.local ()) buf
      end;
      if
        Flow_state.fin_received flow
        && Ring.used rx_buf = 0
        && not sock.eof_delivered
      then begin
        sock.eof_delivered <- true;
        sock.handlers.on_peer_closed sock
      end
  end
  | Context.Writable flow -> begin
    match Hashtbl.find_opt t.sockets (Flow_state.opaque flow) with
    | None -> ()
    | Some sock -> sock.handlers.on_sendable sock
  end

let wake t actx =
  if not actx.draining then begin
    actx.draining <- true;
    (* eventfd wakeup of a blocked application thread (~3 us) when the core
       is idle; a busy core is already polling its context queue. The step
       thunk pops nothing on this first firing beyond what [drain_step]
       always does: pop one event, dispatch, reschedule. The epoll charge
       lands through [cycles] here; each event still pays [api_cycles]. *)
    if Core.backlog_ns actx.core = 0 then
      Core.run_after actx.core ~cat:Core.Api ~delay:3_000
        ~cycles:(t.epoll_cycles + t.api_cycles) actx.step
    else
      Core.run actx.core ~cat:Core.Api
        ~cycles:(t.epoll_cycles + t.api_cycles) actx.step
  end

(* --- Construction -------------------------------------------------------- *)

let create sim ~fast_path ~slow_path ~app_cores ~api () =
  if Array.length app_cores = 0 then invalid_arg "Libtas.create: no app cores";
  let contexts =
    Array.map
      (fun core ->
        {
          ctx =
            Context.create
              ~id:(Fast_path.fresh_context_id fast_path)
              ~capacity:(Fast_path.config fast_path).Config.context_queue_capacity;
          core;
          draining = false;
          step = ignore;
        })
      app_cores
  in
  let t =
    {
      sim;
      fp = fast_path;
      sp = slow_path;
      contexts;
      api;
      api_cycles = cycles_of_api api;
      epoll_cycles = 150;
      sockets = Hashtbl.create 256;
      next_id = 1;
      stats =
        { events_dispatched = 0; sockets_opened = 0; rx_bytes = 0; tx_bytes = 0 };
    }
  in
  Array.iter
    (fun actx ->
      actx.step <- (fun () -> drain_step t actx);
      Fast_path.register_context fast_path actx.ctx;
      Context.set_waker actx.ctx (fun () -> wake t actx))
    contexts;
  t

(* --- Slow-path callback plumbing ----------------------------------------- *)

(* Slow-path events are re-scheduled onto the socket's application core with
   a wake + API charge, like any other notification. *)
let on_app_core ?(cat = Core.Api) sock cycles k =
  let core = sock.owner.contexts.(sock.ctx_index).core in
  Core.run core ~cat ~cycles k

let conn_callbacks t sock =
  ignore t;
  {
    Slow_path.established =
      (fun flow ->
        sock.flow <- Some flow;
        on_app_core sock sock.owner.api_cycles (fun () ->
            if not sock.closed then sock.handlers.on_connected sock));
    failed =
      (fun err ->
        on_app_core sock sock.owner.api_cycles (fun () ->
            sock.handlers.on_connect_failed sock err));
    reset =
      (fun _flow ->
        (* Abort notification; [closed] follows as the slow path removes the
           entry. *)
        on_app_core sock sock.owner.api_cycles (fun () ->
            if not sock.closed then sock.handlers.on_reset sock));
    peer_closed =
      (fun flow ->
        (* Order EOF behind any undelivered payload via the context queue;
           after shutdown the context is gone and the event is moot. *)
        match Fast_path.find_context sock.owner.fp (Flow_state.context flow) with
        | Some ctx -> Context.post_readable ctx flow
        | None -> ());
    closed =
      (fun _flow ->
        Hashtbl.remove sock.owner.sockets sock.id;
        sock.closed <- true;
        on_app_core sock 100 (fun () -> sock.handlers.on_closed sock));
  }

let fresh_socket t ~ctx_index ~handlers =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  let sock =
    {
      id;
      owner = t;
      ctx_index;
      flow = None;
      handlers;
      eof_delivered = false;
      closed = false;
    }
  in
  Hashtbl.replace t.sockets id sock;
  t.stats.sockets_opened <- t.stats.sockets_opened + 1;
  sock

let listen t ~port ~ctx_of_tuple handler_gen =
  Slow_path.listen t.sp ~port (fun tuple ->
      let ctx_index = ctx_of_tuple tuple mod Array.length t.contexts in
      let sock = fresh_socket t ~ctx_index ~handlers:null_handlers in
      sock.handlers <- handler_gen sock;
      Some (sock.id, Context.id t.contexts.(ctx_index).ctx, conn_callbacks t sock))

let connect t ~ctx ~dst_ip ~dst_port handlers =
  let ctx_index = ctx mod Array.length t.contexts in
  let sock = fresh_socket t ~ctx_index ~handlers in
  Slow_path.connect t.sp ~opaque:sock.id
    ~context_id:(Context.id t.contexts.(ctx_index).ctx)
    ~dst_ip ~dst_port (conn_callbacks t sock);
  sock

let send sock data =
  match sock.flow with
  | None -> 0
  | Some flow ->
    if sock.closed || Flow_state.fin_sent flow then 0
    else begin
      let n =
        Ring.push (Flow_state.tx_buf flow) data ~off:0 ~len:(Bytes.length data)
      in
      sock.owner.stats.tx_bytes <- sock.owner.stats.tx_bytes + n;
      if n > 0 then begin
        let sp = Fast_path.span sock.owner.fp in
        if Span.enabled sp && Flow_state.tx_span flow < 0 then
          Flow_state.set_tx_span flow
            (Span.start sp ~ts:(Sim.now sock.owner.sim) ~hop:Span.App_send
               ~core:(Core.id sock.owner.contexts.(sock.ctx_index).core)
               ~flow:(Flow_state.opaque flow));
        Fast_path.notify_tx sock.owner.fp flow
      end;
      if n < Bytes.length data then Flow_state.set_tx_interest flow true;
      n
    end

let tx_free sock =
  match sock.flow with
  | None -> 0
  | Some flow -> Ring.free (Flow_state.tx_buf flow)

let want_sendable sock =
  match sock.flow with
  | None -> ()
  | Some flow -> Flow_state.set_tx_interest flow true

let close sock =
  if not sock.closed then begin
    match sock.flow with
    | None -> sock.closed <- true
    | Some flow -> Slow_path.close sock.owner.sp flow
  end

let app_cycles sock cycles k = on_app_core ~cat:Core.App sock cycles k

(* Application exit: the slow path detects the hangup on the UNIX domain
   socket and cleans up every connection the application still holds
   (paper §4, "automatic cleanup"). *)
let shutdown t =
  let socks = Hashtbl.fold (fun _ s acc -> s :: acc) t.sockets [] in
  List.iter (fun sock -> close sock) socks;
  Array.iter
    (fun actx -> Fast_path.unregister_context t.fp (Context.id actx.ctx))
    t.contexts
