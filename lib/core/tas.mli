(** TAS host assembly: dedicated fast-path cores + a slow-path core wired to
    a NIC, ready for applications to attach via {!Libtas}. *)

type t

val create :
  Tas_engine.Sim.t ->
  nic:Tas_netsim.Nic.t ->
  config:Config.t ->
  ?span:Tas_telemetry.Span.t ->
  ?freq_ghz:float ->
  unit ->
  t
(** Creates [config.max_fast_path_cores] fast-path cores (threads exist for
    the maximum; inactive ones block, §3.4) and one slow-path core, attaches
    the fast path to the NIC, and starts the slow path.

    [span] supplies a latency-span collector shared with the peer host and
    the network path (two-host tracing needs one collector for the whole
    topology); when omitted, one is built from [config.span_enabled] /
    [span_sample_every] / [span_capacity] — disabled by default. *)

val fast_path : t -> Fast_path.t
val slow_path : t -> Slow_path.t
val config : t -> Config.t
val fp_cores : t -> Tas_cpu.Core.t array
val sp_core : t -> Tas_cpu.Core.t

val metrics : t -> Tas_telemetry.Metrics.t
(** The instance's metrics registry. Fast path, slow path, NIC, per-core
    busy breakdowns, and (as they attach) applications all register here;
    export with {!Tas_telemetry.Metrics.to_prometheus} or [to_json]. *)

val trace : t -> Tas_telemetry.Trace.t
(** The instance's trace ring (shared by fast and slow path). Disabled — a
    single boolean test per would-be event — unless
    [config.trace_enabled]. *)

val span : t -> Tas_telemetry.Span.t
(** The instance's latency-span collector (see {!create}). *)

val flows : t -> Tas_telemetry.Json.t
(** Point-in-time flow introspection: the simulated time, every per-flow
    Table-3 record ({!Flow_table.dump}) and the slow path's
    connection-lifecycle event log, as one JSON object — what [ss -ti]
    would show for this host. *)

val pp_flows : Format.formatter -> t -> unit
(** Human-readable one-line-per-flow rendering of the same snapshot. *)

val cycle_breakdown : t -> (Tas_cpu.Core.category * int) list
(** Busy nanoseconds per module category, summed over the fast-path cores
    and the slow-path core — the simulation's analogue of the paper's
    per-module cycle breakdown (Tables 1 and 2). *)

val app :
  t ->
  app_cores:Tas_cpu.Core.t array ->
  api:Libtas.api ->
  Libtas.t
(** Attach an application (registers its contexts with the fast path). *)

val fp_busy_ns : t -> int
(** Total busy time across fast-path cores (CPU accounting). *)

(** Operational snapshot: the counters an operator would scrape. *)
type snapshot = {
  flows : int;  (** established flows in the fast-path table *)
  active_fp_cores : int;
  conn_setups : int;
  conn_teardowns : int;
  timeout_retransmits : int;
  rx_data_packets : int;
  rx_ack_packets : int;
  tx_data_packets : int;
  acks_sent : int;
  ooo_stored : int;
  payload_drops : int;
  fast_retransmits : int;
  exceptions_forwarded : int;
  fp_busy_ms : float;
  sp_busy_ms : float;
}

val snapshot : t -> snapshot
val pp_snapshot : Format.formatter -> snapshot -> unit
