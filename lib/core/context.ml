module Spsc = Tas_buffers.Spsc_queue

type event = Readable of Flow_state.t | Writable of Flow_state.t

type t = {
  id : int;
  queue : event Spsc.t;
  mutable waker : unit -> unit;
}

let create ~id ~capacity = { id; queue = Spsc.create capacity; waker = ignore }
let id t = t.id
let set_waker t f = t.waker <- f

let post t event =
  let was_empty = Spsc.is_empty t.queue in
  if not (Spsc.try_push t.queue event) then
    (* Coalescing bounds the queue at two events per flow; hitting capacity
       means the context was sized too small for its flow count. *)
    failwith "Context: queue overflow (capacity < 2 * flows)";
  if was_empty then t.waker ()

let post_readable t flow =
  if not (Flow_state.rx_notified flow) then begin
    Flow_state.set_rx_notified flow true;
    post t (Readable flow)
  end

let post_writable t flow =
  if not (Flow_state.tx_notified flow) then begin
    Flow_state.set_tx_notified flow true;
    post t (Writable flow)
  end

let pop t =
  match Spsc.try_pop t.queue with
  | Some (Readable flow) as e ->
    Flow_state.set_rx_notified flow false;
    e
  | Some (Writable flow) as e ->
    Flow_state.set_tx_notified flow false;
    e
  | None -> None

let pending t = Spsc.length t.queue
let is_empty t = Spsc.is_empty t.queue
