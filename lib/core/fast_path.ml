module Sim = Tas_engine.Sim
module Nic = Tas_netsim.Nic
module Core = Tas_cpu.Core
module Addr = Tas_proto.Addr
module Seq32 = Tas_proto.Seq32
module Packet = Tas_proto.Packet
module Tcp_header = Tas_proto.Tcp_header
module Ipv4_header = Tas_proto.Ipv4_header
module Ring = Tas_buffers.Ring_buffer
module Ooo = Tas_buffers.Ooo_interval
module Buf_pool = Tas_buffers.Buf_pool
module Metrics = Tas_telemetry.Metrics
module Trace = Tas_telemetry.Trace
module Span = Tas_telemetry.Span

type stats = {
  mutable rx_data_packets : int;
  mutable rx_ack_packets : int;
  mutable tx_data_packets : int;
  mutable acks_sent : int;
  mutable ooo_stored : int;
  mutable payload_drops : int;
  mutable fast_retransmits : int;
  mutable exceptions_forwarded : int;
  mutable malformed_drops : int;
}

type t = {
  sim : Sim.t;
  nic : Nic.t;
  cores : Core.t array;
  config : Config.t;
  flows : Flow_table.t;
  contexts : (int, Context.t) Hashtbl.t;
  mutable next_context_id : int;
  mutable active : int;
  mutable exception_handler : Packet.t -> unit;
  stats : stats;
  trace : Trace.t;
  span : Span.t;
  mutable busy_snapshot : int array;
  mutable last_rx_time : int array;  (* per-core, for idle blocking *)
}

let create ?trace ?span sim ~nic ~cores ~config =
  if Array.length cores = 0 then invalid_arg "Fast_path.create: no cores";
  let flows =
    (* Sharded by RSS queue (one shard per queue, following the NIC's
       redirection table) unless explicitly configured as one table. *)
    if config.Config.flow_shards_enabled then
      Flow_table.create_sharded
        ~lock_cycles:config.Config.shard_lock_cycles
        ~remote_lock_cycles:config.Config.shard_lock_remote_cycles
        ~rss:(Nic.rss nic) ()
    else Flow_table.create ()
  in
  let t =
  {
    sim;
    nic;
    cores;
    config;
    flows;
    contexts = Hashtbl.create 16;
    next_context_id = 0;
    active = Array.length cores;
    exception_handler = ignore;
    stats =
      {
        rx_data_packets = 0;
        rx_ack_packets = 0;
        tx_data_packets = 0;
        acks_sent = 0;
        ooo_stored = 0;
        payload_drops = 0;
        fast_retransmits = 0;
        exceptions_forwarded = 0;
        malformed_drops = 0;
      };
    trace = (match trace with Some tr -> tr | None -> Trace.disabled ());
    span = (match span with Some sp -> sp | None -> Span.disabled ());
    busy_snapshot = Array.make (Array.length cores) 0;
    last_rx_time = Array.make (Array.length cores) 0;
  }
  in
  Flow_table.set_on_migrate t.flows (fun ~group ~from_q:_ ~to_q ~moved ->
      (* One event per flow group whose state actually moved shards; [core]
         is the destination queue, [flow] the group id. *)
      if moved > 0 && Trace.enabled t.trace then
        Trace.record t.trace ~ts:(Sim.now t.sim) ~kind:Trace.Shard_migrate
          ~core:to_q ~flow:group);
  t

let flows t = t.flows
let stats t = t.stats
let config t = t.config
let nic t = t.nic
let trace t = t.trace
let span t = t.span
let set_exception_handler t f = t.exception_handler <- f
let active_cores t = t.active

(* One boolean test when tracing is off; event construction only when on. *)
let trace_ev t kind ~core ~flow =
  if Trace.enabled t.trace then
    Trace.record t.trace ~ts:(Sim.now t.sim) ~kind ~core ~flow

let register t m =
  let s = t.stats in
  let c name help f = Metrics.counter_fn m ~help name f in
  c "fp_rx_data_packets" "data segments processed by the fast path" (fun () ->
      s.rx_data_packets);
  c "fp_rx_ack_packets" "pure ACKs processed by the fast path" (fun () ->
      s.rx_ack_packets);
  c "fp_tx_data_packets" "data segments transmitted" (fun () ->
      s.tx_data_packets);
  c "fp_acks_sent" "ACKs generated" (fun () -> s.acks_sent);
  c "fp_ooo_stored" "out-of-order segments buffered" (fun () -> s.ooo_stored);
  c "fp_payload_drops" "receive payload drops" (fun () -> s.payload_drops);
  c "fp_fast_retransmits" "triple-dupACK fast retransmits" (fun () ->
      s.fast_retransmits);
  c "fp_exceptions_forwarded" "packets punted to the slow path" (fun () ->
      s.exceptions_forwarded);
  c "fp_malformed_drops" "length-inconsistent packets dropped on receive"
    (fun () -> s.malformed_drops);
  Metrics.gauge_fn m ~help:"fast-path cores currently active" "fp_active_cores"
    (fun () -> float_of_int t.active);
  Metrics.gauge_fn m ~help:"flows installed in the fast-path flow table"
    "fp_flows" (fun () -> float_of_int (Flow_table.count t.flows));
  c "fp_lock_cycles"
    "flow-table spinlock cycles charged across all shards (cost model only)"
    (fun () -> Flow_table.lock_cycles t.flows);
  c "fp_flow_migrations" "flows moved between shards by RSS rewrites"
    (fun () -> Flow_table.migrated_flows t.flows);
  Flow_table.register t.flows m ()

let set_active_cores t n =
  (* Bounded by both the configured cores and the NIC's RSS queues. *)
  let n = max 1 (min n (min (Array.length t.cores) (Nic.num_queues t.nic))) in
  t.active <- n;
  Nic.set_active_queues t.nic n

let fresh_context_id t =
  let id = t.next_context_id in
  t.next_context_id <- id + 1;
  id

let register_context t ctx =
  let id = Context.id ctx in
  if Hashtbl.mem t.contexts id then
    invalid_arg "Fast_path.register_context: duplicate context id";
  Hashtbl.replace t.contexts id ctx

let unregister_context t id = Hashtbl.remove t.contexts id

let find_context t id = Hashtbl.find_opt t.contexts id

let context t id =
  match Hashtbl.find_opt t.contexts id with
  | Some ctx -> ctx
  | None -> invalid_arg "Fast_path.context: unknown context id"

let core_of_flow t flow =
  let tuple = Flow_state.tuple flow ~local_ip:(Nic.ip t.nic) in
  let queue = Nic.queue_for_hash t.nic (Addr.Four_tuple.sym_hash tuple) in
  t.cores.(queue mod Array.length t.cores)

let install_flow t ~tuple flow = Flow_table.add t.flows tuple flow
let remove_flow t ~tuple = Flow_table.remove t.flows tuple

let now_us t = Sim.now t.sim / 1000

(* --- Packet construction ---------------------------------------------- *)

let build_packet t flow ~(flags : Tcp_header.flags) ~seq ~payload =
  let tcp =
    {
      Tcp_header.src_port = flow.Flow_state.local_port;
      dst_port = flow.Flow_state.peer_port;
      seq;
      ack = (if flags.Tcp_header.ack then flow.Flow_state.ack else 0);
      flags;
      window =
        min 65535 (Ring.free flow.Flow_state.rx_buf asr t.config.Config.wscale);
      options =
        {
          Tcp_header.mss = None;
          wscale = None;
          timestamp =
            Some (now_us t land 0xFFFF_FFFF, flow.Flow_state.ts_recent);
        };
    }
  in
  let ecn =
    if Bytes.length payload > 0 then Ipv4_header.Ect0 else Ipv4_header.Not_ect
  in
  Packet.make ~src_mac:(Nic.mac t.nic) ~dst_mac:flow.Flow_state.peer_mac
    ~src_ip:(Nic.ip t.nic) ~dst_ip:flow.Flow_state.peer_ip ~ecn ~tcp ~payload
    ()

let send_raw t pkt = Nic.transmit t.nic pkt

let send_ack t flow ~ece =
  let flags = { Tcp_header.ack_flags with ece } in
  t.stats.acks_sent <- t.stats.acks_sent + 1;
  if Trace.enabled t.trace then
    Trace.record t.trace ~ts:(Sim.now t.sim) ~kind:Trace.Ack_tx
      ~core:(Core.id (core_of_flow t flow))
      ~flow:flow.Flow_state.opaque;
  Nic.transmit t.nic
    (build_packet t flow ~flags ~seq:flow.Flow_state.seq ~payload:Bytes.empty)

let emit_fin t flow =
  flow.Flow_state.fin_sent <- true;
  let flags = { Tcp_header.ack_flags with fin = true } in
  Nic.transmit t.nic
    (build_packet t flow ~flags ~seq:flow.Flow_state.seq ~payload:Bytes.empty)

(* --- Transmission ------------------------------------------------------ *)

let tx_cycles t = t.config.Config.fp_driver_cycles + t.config.Config.fp_tx_cycles

(* Drain the flow's bucket: segment and transmit as much buffered payload as
   congestion/flow control allows; in rate mode arm a pacing timer when the
   bucket runs dry. Runs on [core]. *)
let rec maybe_send t flow core =
  let avail = Flow_state.tx_available flow in
  if avail > 0 && not flow.Flow_state.fin_sent then begin
    let peer_budget = flow.Flow_state.window - flow.Flow_state.tx_sent in
    if peer_budget > 0 then begin
      let want = min t.config.Config.mss (min avail peer_budget) in
      (* Pace whole segments: a rate bucket with only a few tokens must not
         emit tiny packets — wait until a full [want] accumulates. *)
      let granted =
        match Rate_bucket.ns_until_bytes flow.Flow_state.bucket want with
        | Some _ -> 0
        | None ->
          Rate_bucket.tx_budget flow.Flow_state.bucket
            ~in_flight:flow.Flow_state.tx_sent ~want
      in
      if granted > 0 then begin
        (* Pool-recycled payload staging: [Ring.read_at ~len:granted] below
           overwrites the full (exact-length) buffer, so stale contents of a
           recycled buffer are never observable. *)
        let payload = Buf_pool.take (Buf_pool.local ()) granted in
        Ring.read_at flow.Flow_state.tx_buf
          ~pos:(Ring.tail flow.Flow_state.tx_buf + flow.Flow_state.tx_sent)
          ~dst:payload ~dst_off:0 ~len:granted;
        let seq = flow.Flow_state.seq in
        flow.Flow_state.seq <- Seq32.add seq granted;
        flow.Flow_state.tx_sent <- flow.Flow_state.tx_sent + granted;
        t.stats.tx_data_packets <- t.stats.tx_data_packets + 1;
        trace_ev t Trace.Tx_data ~core:(Core.id core)
          ~flow:flow.Flow_state.opaque;
        let pkt =
          build_packet t flow ~flags:Tcp_header.data_flags ~seq ~payload
        in
        (* Small payloads bypassed the pool; marking them would only make
           the final release allocate a pointless [Some]. *)
        if granted >= Buf_pool.min_len then Packet.mark_pooled pkt;
        if flow.Flow_state.tx_span >= 0 then begin
          let id = flow.Flow_state.tx_span in
          flow.Flow_state.tx_span <- -1;
          pkt.Packet.span <- id;
          Span.record t.span ~ts:(Sim.now t.sim) ~id ~hop:Span.Fp_tx
            ~core:(Core.id core) ~flow:flow.Flow_state.opaque
        end;
        Core.run core ~cat:Core.Tx ~cycles:(tx_cycles t) (fun () ->
            Nic.transmit t.nic pkt);
        maybe_send t flow core
      end
      else arm_pacing_timer t flow core ~want
    end
  end

and arm_pacing_timer t flow core ~want =
  if not flow.Flow_state.tx_timer_armed then begin
    match Rate_bucket.ns_until_bytes flow.Flow_state.bucket want with
    | None -> () (* window mode: an ACK will reopen the window *)
    | Some delay when delay = max_int -> () (* rate is zero; slow path will update *)
    | Some delay ->
      flow.Flow_state.tx_timer_armed <- true;
      Sim.post t.sim (max delay 1) (fun () ->
          flow.Flow_state.tx_timer_armed <- false;
          maybe_send t flow core)
  end

let notify_tx t flow =
  let core = core_of_flow t flow in
  (* The TX command costs a few cycles of fast-path attention. *)
  Core.run core ~cat:Core.Tx ~cycles:50 (fun () -> maybe_send t flow core)

let trigger_retransmit t flow =
  let core = core_of_flow t flow in
  Core.run core ~cat:Core.Tx ~cycles:100 (fun () ->
      (* Reset sender state as if the unacked segments were never sent. *)
      flow.Flow_state.seq <- Flow_state.snd_una flow;
      flow.Flow_state.tx_sent <- 0;
      flow.Flow_state.dupack_cnt <- 0;
      flow.Flow_state.in_recovery <- false;
      maybe_send t flow core)

(* --- Receive processing ------------------------------------------------ *)

let sample_rtt t flow (tcp : Tcp_header.t) =
  match tcp.Tcp_header.options.Tcp_header.timestamp with
  | Some (_, ecr) when ecr > 0 ->
    let rtt = (now_us t - ecr) * 1000 in
    if rtt >= 0 then
      flow.Flow_state.rtt_est <-
        (if flow.Flow_state.rtt_est = 0 then rtt
         else ((7 * flow.Flow_state.rtt_est) + rtt) / 8)
  | _ -> ()

let process_ack t flow pkt core =
  let tcp = pkt.Packet.tcp in
  let acked = Seq32.diff tcp.Tcp_header.ack (Flow_state.snd_una flow) in
  flow.Flow_state.window <-
    tcp.Tcp_header.window lsl flow.Flow_state.peer_wscale;
  if acked > 0 then begin
    (* Accept any ACK covering bytes still in the transmit buffer. After a
       fast-retransmit rewind the receiver can cumulatively ACK past
       snd_nxt (it had the later segments buffered); fast-forward. *)
    if acked <= Ring.used flow.Flow_state.tx_buf then begin
      Ring.advance_tail flow.Flow_state.tx_buf acked;
      if acked >= flow.Flow_state.tx_sent then begin
        flow.Flow_state.seq <- tcp.Tcp_header.ack;
        flow.Flow_state.tx_sent <- 0
      end
      else flow.Flow_state.tx_sent <- flow.Flow_state.tx_sent - acked;
      flow.Flow_state.dupack_cnt <- 0;
      flow.Flow_state.in_recovery <- false;
      flow.Flow_state.cnt_ackb <- flow.Flow_state.cnt_ackb + acked;
      if tcp.Tcp_header.flags.Tcp_header.ece then
        flow.Flow_state.cnt_ecnb <- flow.Flow_state.cnt_ecnb + acked;
      sample_rtt t flow tcp;
      if flow.Flow_state.tx_interest then begin
        flow.Flow_state.tx_interest <- false;
        match find_context t flow.Flow_state.context with
        | Some ctx -> Context.post_writable ctx flow
        | None -> () (* application exited; flow teardown in progress *)
      end;
      maybe_send t flow core
    end
    else begin
      (* ACK beyond what the fast path sent (e.g. of a slow-path FIN). *)
      t.stats.exceptions_forwarded <- t.stats.exceptions_forwarded + 1;
      t.exception_handler pkt
    end
  end
  else if
    acked = 0
    && flow.Flow_state.tx_sent > 0
    && Bytes.length pkt.Packet.payload = 0
  then begin
    flow.Flow_state.dupack_cnt <- flow.Flow_state.dupack_cnt + 1;
    if flow.Flow_state.dupack_cnt >= 3 && not flow.Flow_state.in_recovery
    then begin
      flow.Flow_state.in_recovery <- true;
      (* Fast recovery: rewind the sender as if the segments beyond the
         duplicate ACK had not been sent (§3.1 exception 1); the slow path
         sees cnt_frexmits and cuts the flow's rate. *)
      flow.Flow_state.cnt_frexmits <- flow.Flow_state.cnt_frexmits + 1;
      t.stats.fast_retransmits <- t.stats.fast_retransmits + 1;
      trace_ev t Trace.Fast_rexmit ~core:(Core.id core)
        ~flow:flow.Flow_state.opaque;
      flow.Flow_state.seq <- Flow_state.snd_una flow;
      flow.Flow_state.tx_sent <- 0;
      flow.Flow_state.dupack_cnt <- 0;
      maybe_send t flow core
    end
  end

let process_data t flow pkt core =
  let tcp = pkt.Packet.tcp in
  let payload = pkt.Packet.payload in
  let seg_len = Bytes.length payload in
  let ce = pkt.Packet.ip.Ipv4_header.ecn = Ipv4_header.Ce in
  let window = Ring.free flow.Flow_state.rx_buf in
  let verdict =
    if t.config.Config.rx_ooo_enabled then
      Ooo.handle flow.Flow_state.ooo ~exp:flow.Flow_state.ack ~window
        ~seg_start:tcp.Tcp_header.seq ~seg_len
    else begin
      (* Simple go-back-N receive: only the exact next segment is accepted
         (the Fig. 7 "TAS simple recovery" ablation). *)
      let exp = flow.Flow_state.ack in
      if Seq32.lt tcp.Tcp_header.seq exp then begin
        let dup = Seq32.diff exp tcp.Tcp_header.seq in
        if dup >= seg_len then Ooo.Duplicate
        else
          Ooo.Deliver
            {
              write_at = exp;
              write_len = min (seg_len - dup) window;
              advance = min (seg_len - dup) window;
            }
      end
      else if tcp.Tcp_header.seq = exp then begin
        let n = min seg_len window in
        if n = 0 then Ooo.Drop
        else Ooo.Deliver { write_at = exp; write_len = n; advance = n }
      end
      else Ooo.Drop
    end
  in
  match verdict with
  | Ooo.Deliver { write_at; write_len; advance } ->
    if write_len > 0 then begin
      let src_off = Seq32.diff write_at tcp.Tcp_header.seq in
      Ring.write_at flow.Flow_state.rx_buf
        ~pos:(Flow_state.rx_offset_of_seq flow write_at)
        payload ~off:src_off ~len:write_len
    end;
    Ring.advance_head flow.Flow_state.rx_buf advance;
    flow.Flow_state.ack <- Seq32.add flow.Flow_state.ack advance;
    if pkt.Packet.span >= 0 then begin
      Span.record t.span ~ts:(Sim.now t.sim) ~id:pkt.Packet.span
        ~hop:Span.Ctx_notify ~core:(Core.id core)
        ~flow:flow.Flow_state.opaque;
      (* Carry the span across the coalesced context queue to the app's
         read; first sampled packet wins until delivery clears it. *)
      if flow.Flow_state.rx_span < 0 then
        flow.Flow_state.rx_span <- pkt.Packet.span
    end;
    (match find_context t flow.Flow_state.context with
    | Some ctx -> Context.post_readable ctx flow
    | None -> () (* application exited; flow teardown in progress *));
    send_ack t flow ~ece:ce
  | Ooo.Store { write_at; write_len } ->
    let src_off = Seq32.diff write_at tcp.Tcp_header.seq in
    Ring.write_at flow.Flow_state.rx_buf
      ~pos:(Flow_state.rx_offset_of_seq flow write_at)
      payload ~off:src_off ~len:write_len;
    t.stats.ooo_stored <- t.stats.ooo_stored + 1;
    trace_ev t Trace.Ooo_store ~core:(Core.id core)
      ~flow:flow.Flow_state.opaque;
    (* Duplicate ACK tells the sender what we are still waiting for. *)
    send_ack t flow ~ece:ce
  | Ooo.Duplicate -> send_ack t flow ~ece:ce
  | Ooo.Drop ->
    t.stats.payload_drops <- t.stats.payload_drops + 1;
    trace_ev t Trace.Payload_drop ~core:(Core.id core)
      ~flow:flow.Flow_state.opaque;
    send_ack t flow ~ece:ce

(* Last consumer of an RX packet recycles its pooled payload. Safe only
   because every delivery path out of [process] — ring writes, exception
   handling, reinjection — either copies the bytes out or takes its own
   reference before this runs. *)
let release_pkt pkt =
  match Packet.release pkt with
  | Some buf -> Buf_pool.give (Buf_pool.local ()) buf
  | None -> ()

let rec process t pkt core =
  (if not (Packet.well_formed pkt) then begin
     (* Header-corrupted frame (IP length inconsistent with the actual
        headers + payload): drop before touching any flow state. *)
     t.stats.malformed_drops <- t.stats.malformed_drops + 1;
     trace_ev t Trace.Malformed_drop ~core:(Core.id core) ~flow:(-1)
   end
   else process_valid t pkt core);
  release_pkt pkt

and process_valid t pkt core =
  if pkt.Packet.span >= 0 then
    Span.record t.span ~ts:(Sim.now t.sim) ~id:pkt.Packet.span
      ~hop:Span.Fp_rx ~core:(Core.id core) ~flow:(-1);
  let tcp = pkt.Packet.tcp in
  let flags = tcp.Tcp_header.flags in
  if flags.Tcp_header.syn || flags.Tcp_header.rst || flags.Tcp_header.fin then begin
    t.stats.exceptions_forwarded <- t.stats.exceptions_forwarded + 1;
    trace_ev t Trace.Exception_fwd ~core:(Core.id core) ~flow:(-1);
    t.exception_handler pkt
  end
  else begin
    match Flow_table.find t.flows (Packet.four_tuple_at_receiver pkt) with
    | None ->
      t.stats.exceptions_forwarded <- t.stats.exceptions_forwarded + 1;
      trace_ev t Trace.Exception_fwd ~core:(Core.id core) ~flow:(-1);
      t.exception_handler pkt
    | Some flow ->
      (match tcp.Tcp_header.options.Tcp_header.timestamp with
      | Some (ts_val, _) -> flow.Flow_state.ts_recent <- ts_val
      | None -> ());
      if Bytes.length pkt.Packet.payload = 0 then begin
        t.stats.rx_ack_packets <- t.stats.rx_ack_packets + 1;
        trace_ev t Trace.Rx_ack ~core:(Core.id core)
          ~flow:flow.Flow_state.opaque;
        process_ack t flow pkt core
      end
      else begin
        t.stats.rx_data_packets <- t.stats.rx_data_packets + 1;
        trace_ev t Trace.Rx_data ~core:(Core.id core)
          ~flow:flow.Flow_state.opaque;
        process_ack t flow pkt core;
        process_data t flow pkt core
      end
  end

let rx_cost t pkt =
  let c = t.config in
  if Bytes.length pkt.Packet.payload = 0 then
    c.Config.fp_driver_cycles + c.Config.fp_ack_rx_cycles
  else c.Config.fp_driver_cycles + c.Config.fp_rx_cycles

let attach t =
  Nic.set_rx_handler t.nic (fun ~queue pkt ->
      let idx = queue mod Array.length t.cores in
      let core = t.cores.(idx) in
      let now = Sim.now t.sim in
      (* A core that has been idle long enough has blocked (§3.4); charge
         the kernel wakeup latency before it starts polling again. *)
      let asleep = now - t.last_rx_time.(idx) > t.config.Config.idle_block_ns in
      t.last_rx_time.(idx) <- now;
      let cycles = rx_cost t pkt in
      let cat =
        if Bytes.length pkt.Packet.payload = 0 then Core.Ack_rx
        else Core.Driver_rx
      in
      if asleep then
        Core.run_after core ~cat ~delay:t.config.Config.wakeup_ns ~cycles
          (fun () -> process t pkt core)
      else Core.run core ~cat ~cycles (fun () -> process t pkt core))

let reinject t pkt =
  let tuple = Packet.four_tuple_at_receiver pkt in
  match Flow_table.find t.flows tuple with
  | None -> ()
  | Some flow ->
    let core = core_of_flow t flow in
    let cat =
      if Bytes.length pkt.Packet.payload = 0 then Core.Ack_rx
      else Core.Driver_rx
    in
    (* The reinjected packet goes through [process] (and its release) a
       second time; hold a reference across the scheduling gap. *)
    Packet.retain pkt;
    Core.run core ~cat ~cycles:(rx_cost t pkt) (fun () -> process t pkt core)

let idle_core_total t ~window_ns =
  let total = ref 0.0 in
  for i = 0 to t.active - 1 do
    let busy = Core.busy_ns t.cores.(i) in
    let delta = busy - t.busy_snapshot.(i) in
    t.busy_snapshot.(i) <- busy;
    let idle = 1.0 -. (float_of_int delta /. float_of_int window_ns) in
    total := !total +. max 0.0 (min 1.0 idle)
  done;
  (* Refresh snapshots for inactive cores too, so reactivation starts clean. *)
  for i = t.active to Array.length t.cores - 1 do
    t.busy_snapshot.(i) <- Core.busy_ns t.cores.(i)
  done;
  !total
