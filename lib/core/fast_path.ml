module Sim = Tas_engine.Sim
module Nic = Tas_netsim.Nic
module Core = Tas_cpu.Core
module Addr = Tas_proto.Addr
module Seq32 = Tas_proto.Seq32
module Packet = Tas_proto.Packet
module Tcp_header = Tas_proto.Tcp_header
module Ipv4_header = Tas_proto.Ipv4_header
module Ring = Tas_buffers.Ring_buffer
module Ooo = Tas_buffers.Ooo_interval
module Buf_pool = Tas_buffers.Buf_pool
module Metrics = Tas_telemetry.Metrics
module Trace = Tas_telemetry.Trace
module Span = Tas_telemetry.Span
module Rec = Tas_recovery

type stats = {
  mutable rx_data_packets : int;
  mutable rx_ack_packets : int;
  mutable tx_data_packets : int;
  mutable acks_sent : int;
  mutable ooo_stored : int;
  mutable payload_drops : int;
  mutable fast_retransmits : int;
  mutable exceptions_forwarded : int;
  mutable malformed_drops : int;
  mutable rx_bursts : int;
  mutable rx_burst_packets : int;
}

(* Loss-recovery subsystem counters, live only under a SACK-class policy
   ([Config.recovery_policy] <> [Reno]); all zero — and their metrics not
   even registered — under the default Reno policy, keeping the seed's
   telemetry byte-identical. *)
type rec_stats = {
  mutable rec_episodes : int;
  mutable rec_sacked_segments : int;
  mutable rec_lost_marked : int;
  mutable rec_selective_retransmits : int;
  mutable rec_tlp_probes : int;
  mutable rec_reo_timeouts : int;
}

(* Per-core receive backlog: packets accepted from the NIC queue but not
   yet run through the vector pass. A plain circular buffer so enqueueing
   a packet allocates nothing. *)
type backlog = {
  mutable bl_buf : Packet.t array;
  mutable bl_head : int;
  mutable bl_len : int;
}

(* One-entry flow memo for the duration of a single vector pass: bursts are
   dominated by runs of segments of the same flow, so the common case skips
   the hash lookup (and its modeled lock acquisition) entirely. Reset at
   every pass; flow installs/removes are deferred events and cannot land
   mid-pass. *)
type memo = {
  mutable m_flow : Flow_state.t option;
  mutable m_src_ip : int;
  mutable m_src_port : int;
  mutable m_dst_ip : int;
  mutable m_dst_port : int;
}

type t = {
  sim : Sim.t;
  nic : Nic.t;
  cores : Core.t array;
  config : Config.t;
  flows : Flow_table.t;
  contexts : (int, Context.t) Hashtbl.t;
  mutable next_context_id : int;
  mutable active : int;
  (* Whether [set_active_cores] has pushed [active] into the NIC's RSS
     table at least once. The fast path starts with [active] = core count
     while the RSS table starts spread over all queues; the first
     actuation must always apply even when the counts coincide, after
     which unchanged counts are no-ops (no spurious nic_rss_rewrites). *)
  mutable rss_synced : bool;
  mutable exception_handler : Packet.t -> unit;
  stats : stats;
  rec_stats : rec_stats;
  trace : Trace.t;
  span : Span.t;
  mutable busy_snapshot : int array;
  mutable last_rx_time : int array;  (* per-core, for idle blocking *)
  backlogs : backlog array;
  drain_armed : bool array;
  mutable drain_thunks : (unit -> unit) array;
  (* Per-core transmit staging: a data segment is pushed here and handed to
     the NIC by the core's persistent tx thunk. Per-core FIFO order means
     each thunk firing pops exactly the packet whose [Core.run] scheduled
     it — identical behaviour to capturing the packet in a closure, minus
     the per-packet closure. *)
  tx_queues : backlog array;
  mutable tx_thunks : (unit -> unit) array;
  memo : memo;
  scratch : Packet.t array;  (* vector-pass staging, fp_burst_size slots *)
  dummy_pkt : Packet.t;
}

(* Circular-FIFO helpers shared by the receive backlogs and the transmit
   staging queues. *)
let backlog_push b pkt =
  let cap = Array.length b.bl_buf in
  if b.bl_len = cap then begin
    let bigger = Array.make (2 * cap) b.bl_buf.(0) in
    for i = 0 to b.bl_len - 1 do
      bigger.(i) <- b.bl_buf.((b.bl_head + i) mod cap)
    done;
    b.bl_buf <- bigger;
    b.bl_head <- 0
  end;
  b.bl_buf.((b.bl_head + b.bl_len) mod Array.length b.bl_buf) <- pkt;
  b.bl_len <- b.bl_len + 1

let backlog_shift b dummy =
  if b.bl_len = 0 then invalid_arg "Fast_path: empty backlog";
  let pkt = b.bl_buf.(b.bl_head) in
  b.bl_buf.(b.bl_head) <- dummy;
  b.bl_head <- (b.bl_head + 1) mod Array.length b.bl_buf;
  b.bl_len <- b.bl_len - 1;
  pkt

let make_dummy_packet () =
  Packet.make ~src_mac:0 ~dst_mac:0 ~src_ip:0 ~dst_ip:0
    ~tcp:
      {
        Tcp_header.src_port = 0;
        dst_port = 0;
        seq = 0;
        ack = 0;
        flags = Tcp_header.no_flags;
        window = 0;
        options = Tcp_header.no_options;
      }
    ~payload:Bytes.empty ()

let create ?trace ?span sim ~nic ~cores ~config =
  if Array.length cores = 0 then invalid_arg "Fast_path.create: no cores";
  let flows =
    (* Sharded by RSS queue (one shard per queue, following the NIC's
       redirection table) unless explicitly configured as one table. *)
    if config.Config.flow_shards_enabled then
      Flow_table.create_sharded
        ~lock_cycles:config.Config.shard_lock_cycles
        ~remote_lock_cycles:config.Config.shard_lock_remote_cycles
        ~rss:(Nic.rss nic) ()
    else Flow_table.create ()
  in
  let dummy_pkt = make_dummy_packet () in
  let n = Array.length cores in
  let t =
  {
    sim;
    nic;
    cores;
    config;
    flows;
    contexts = Hashtbl.create 16;
    next_context_id = 0;
    active = n;
    rss_synced = false;
    exception_handler = ignore;
    stats =
      {
        rx_data_packets = 0;
        rx_ack_packets = 0;
        tx_data_packets = 0;
        acks_sent = 0;
        ooo_stored = 0;
        payload_drops = 0;
        fast_retransmits = 0;
        exceptions_forwarded = 0;
        malformed_drops = 0;
        rx_bursts = 0;
        rx_burst_packets = 0;
      };
    rec_stats =
      {
        rec_episodes = 0;
        rec_sacked_segments = 0;
        rec_lost_marked = 0;
        rec_selective_retransmits = 0;
        rec_tlp_probes = 0;
        rec_reo_timeouts = 0;
      };
    trace = (match trace with Some tr -> tr | None -> Trace.disabled ());
    span = (match span with Some sp -> sp | None -> Span.disabled ());
    busy_snapshot = Array.make n 0;
    last_rx_time = Array.make n 0;
    backlogs =
      Array.init n (fun _ ->
          { bl_buf = Array.make 64 dummy_pkt; bl_head = 0; bl_len = 0 });
    drain_armed = Array.make n false;
    drain_thunks = [||];
    tx_queues =
      Array.init n (fun _ ->
          { bl_buf = Array.make 64 dummy_pkt; bl_head = 0; bl_len = 0 });
    tx_thunks = [||];
    memo =
      {
        m_flow = None;
        m_src_ip = -1;
        m_src_port = -1;
        m_dst_ip = -1;
        m_dst_port = -1;
      };
    scratch = Array.make (max 1 config.Config.fp_burst_size) dummy_pkt;
    dummy_pkt;
  }
  in
  Flow_table.set_on_migrate t.flows (fun ~group ~from_q:_ ~to_q ~moved ->
      (* One event per flow group whose state actually moved shards; [core]
         is the destination queue, [flow] the group id. *)
      if moved > 0 && Trace.enabled t.trace then
        Trace.record t.trace ~ts:(Sim.now t.sim) ~kind:Trace.Shard_migrate
          ~core:to_q ~flow:group);
  t.tx_thunks <-
    Array.init n (fun idx ->
        fun () -> Nic.transmit t.nic (backlog_shift t.tx_queues.(idx) t.dummy_pkt));
  t

let flows t = t.flows
let stats t = t.stats
let rec_stats t = t.rec_stats
let config t = t.config
let nic t = t.nic
let trace t = t.trace
let span t = t.span
let set_exception_handler t f = t.exception_handler <- f
let active_cores t = t.active

(* One boolean test when tracing is off; event construction only when on. *)
let trace_ev t kind ~core ~flow =
  if Trace.enabled t.trace then
    Trace.record t.trace ~ts:(Sim.now t.sim) ~kind ~core ~flow

let register t m =
  let s = t.stats in
  let c name help f = Metrics.counter_fn m ~help name f in
  c "fp_rx_data_packets" "data segments processed by the fast path" (fun () ->
      s.rx_data_packets);
  c "fp_rx_ack_packets" "pure ACKs processed by the fast path" (fun () ->
      s.rx_ack_packets);
  c "fp_tx_data_packets" "data segments transmitted" (fun () ->
      s.tx_data_packets);
  c "fp_acks_sent" "ACKs generated" (fun () -> s.acks_sent);
  c "fp_ooo_stored" "out-of-order segments buffered" (fun () -> s.ooo_stored);
  c "fp_payload_drops" "receive payload drops" (fun () -> s.payload_drops);
  c "fp_fast_retransmits" "triple-dupACK fast retransmits" (fun () ->
      s.fast_retransmits);
  c "fp_exceptions_forwarded" "packets punted to the slow path" (fun () ->
      s.exceptions_forwarded);
  c "fp_malformed_drops" "length-inconsistent packets dropped on receive"
    (fun () -> s.malformed_drops);
  c "fp_rx_bursts" "vector passes over the receive backlog" (fun () ->
      s.rx_bursts);
  c "fp_rx_burst_packets" "packets processed through vector passes" (fun () ->
      s.rx_burst_packets);
  Metrics.gauge_fn m ~help:"fast-path cores currently active" "fp_active_cores"
    (fun () -> float_of_int t.active);
  Metrics.gauge_fn m ~help:"flows installed in the fast-path flow table"
    "fp_flows" (fun () -> float_of_int (Flow_table.count t.flows));
  c "fp_lock_cycles"
    "flow-table spinlock cycles charged across all shards (cost model only)"
    (fun () -> Flow_table.lock_cycles t.flows);
  c "fp_flow_migrations" "flows moved between shards by RSS rewrites"
    (fun () -> Flow_table.migrated_flows t.flows);
  (* Recovery-subsystem counters exist only when a SACK-class policy is
     configured; under the default Reno policy the registry output stays
     byte-identical to the pre-recovery seed. *)
  if t.config.Config.recovery_policy <> Rec.Policy.Reno then begin
    let r = t.rec_stats in
    c "rec_episodes" "SACK/RACK recovery episodes entered" (fun () ->
        r.rec_episodes);
    c "rec_sacked_segments" "segments newly marked sacked by ACK blocks"
      (fun () -> r.rec_sacked_segments);
    c "rec_lost_marked" "segments marked lost (dupthresh + RACK rules)"
      (fun () -> r.rec_lost_marked);
    c "rec_selective_retransmits" "lost segments selectively retransmitted"
      (fun () -> r.rec_selective_retransmits);
    c "rec_tlp_probes" "tail-loss probes transmitted" (fun () ->
        r.rec_tlp_probes);
    c "rec_reo_timeouts" "RACK reordering timers that marked losses"
      (fun () -> r.rec_reo_timeouts)
  end;
  Flow_table.register t.flows m ()

let set_active_cores t n =
  (* Bounded by both the configured cores and the NIC's RSS queues. *)
  let n = max 1 (min n (min (Array.length t.cores) (Nic.num_queues t.nic))) in
  (* Idempotent after the first sync: repeated controller ticks with an
     unchanged target must not rewrite the redirection table (every
     [Rss_table.set_active] bumps nic_rss_rewrites). *)
  if n <> t.active || not t.rss_synced then begin
    t.active <- n;
    t.rss_synced <- true;
    Nic.set_active_queues t.nic n
  end

let fresh_context_id t =
  let id = t.next_context_id in
  t.next_context_id <- id + 1;
  id

let register_context t ctx =
  let id = Context.id ctx in
  if Hashtbl.mem t.contexts id then
    invalid_arg "Fast_path.register_context: duplicate context id";
  Hashtbl.replace t.contexts id ctx

let unregister_context t id = Hashtbl.remove t.contexts id

let find_context t id = Hashtbl.find_opt t.contexts id

let context t id =
  match Hashtbl.find_opt t.contexts id with
  | Some ctx -> ctx
  | None -> invalid_arg "Fast_path.context: unknown context id"

let core_of_flow t flow =
  let tuple = Flow_state.tuple flow ~local_ip:(Nic.ip t.nic) in
  let queue = Nic.queue_for_hash t.nic (Addr.Four_tuple.sym_hash tuple) in
  t.cores.(queue mod Array.length t.cores)

let install_flow t ~tuple flow = Flow_table.add t.flows tuple flow
let remove_flow t ~tuple = Flow_table.remove t.flows tuple

let now_us t = Sim.now t.sim / 1000

(* --- Packet construction ---------------------------------------------- *)

let build_packet ?(sack = []) t flow ~(flags : Tcp_header.flags) ~seq ~payload =
  let tcp =
    {
      Tcp_header.src_port = Flow_state.local_port flow;
      dst_port = Flow_state.peer_port flow;
      seq;
      ack = (if flags.Tcp_header.ack then Flow_state.ack flow else 0);
      flags;
      window =
        min 65535 (Ring.free (Flow_state.rx_buf flow) asr t.config.Config.wscale);
      options =
        {
          Tcp_header.mss = None;
          wscale = None;
          timestamp =
            Some (now_us t land 0xFFFF_FFFF, Flow_state.ts_recent flow);
          sack;
        };
    }
  in
  let ecn =
    if Bytes.length payload > 0 then Ipv4_header.Ect0 else Ipv4_header.Not_ect
  in
  Packet.make ~src_mac:(Nic.mac t.nic) ~dst_mac:(Flow_state.peer_mac flow)
    ~src_ip:(Nic.ip t.nic) ~dst_ip:(Flow_state.peer_ip flow) ~ecn ~tcp ~payload
    ()

let send_raw t pkt = Nic.transmit t.nic pkt

(* [maybe_send]'s core is always an element of [t.cores] ([core_of_flow] or
   the drain pass's core); the scan is over at most a handful of cores. *)
let core_index t core =
  let n = Array.length t.cores in
  let rec go i = if i >= n - 1 || t.cores.(i) == core then i else go (i + 1) in
  go 0

(* Both ACK-flag shapes, precomputed: the per-ACK [{ack_flags with ece}]
   record allocation used to show up in the bulk words/packet profile. *)
let ack_flags_ece = { Tcp_header.ack_flags with Tcp_header.ece = true }

let send_ack t flow ~ece =
  let flags = if ece then ack_flags_ece else Tcp_header.ack_flags in
  t.stats.acks_sent <- t.stats.acks_sent + 1;
  if Trace.enabled t.trace then
    Trace.record t.trace ~ts:(Sim.now t.sim) ~kind:Trace.Ack_tx
      ~core:(Core.id (core_of_flow t flow))
      ~flow:(Flow_state.opaque flow);
  (* Under a SACK-class policy advertise the out-of-order intervals (at
     most 3 blocks beside the 10-byte timestamp option); Reno flows emit
     no SACK bytes and the ACK stays byte-identical to the seed. *)
  let sack =
    match Flow_state.recovery_kind flow with
    | Rec.Policy.Reno -> []
    | Rec.Policy.Sack | Rec.Policy.Rack_tlp ->
      Ooo.sack_blocks (Flow_state.ooo flow) ~limit:3
  in
  Nic.transmit t.nic
    (build_packet ~sack t flow ~flags ~seq:(Flow_state.seq flow)
       ~payload:Bytes.empty)

let fin_ack_flags = { Tcp_header.ack_flags with Tcp_header.fin = true }

let emit_fin t flow =
  Flow_state.set_fin_sent flow true;
  Nic.transmit t.nic
    (build_packet t flow ~flags:fin_ack_flags ~seq:(Flow_state.seq flow)
       ~payload:Bytes.empty)

(* --- Transmission ------------------------------------------------------ *)

let tx_cycles t = t.config.Config.fp_driver_cycles + t.config.Config.fp_tx_cycles

(* Scoreboard bookkeeping for fresh transmissions: only SACK-class flows
   track per-segment state; Reno pays one variant test. *)
let rec_on_transmit t flow ~seq ~len =
  let st = Flow_state.recovery flow in
  match st.Rec.State.kind with
  | Rec.Policy.Reno -> ()
  | Rec.Policy.Sack | Rec.Policy.Rack_tlp ->
    Rec.Scoreboard.on_transmit st.Rec.State.sb ~seq ~len ~now_ns:(Sim.now t.sim)

(* Drain the flow's bucket: segment and transmit as much buffered payload as
   congestion/flow control allows; in rate mode arm a pacing timer when the
   bucket runs dry. Runs on [core]. *)
let rec maybe_send t flow core =
  let avail = Flow_state.tx_available flow in
  if avail > 0 && not (Flow_state.fin_sent flow) then begin
    let peer_budget = Flow_state.window flow - Flow_state.tx_sent flow in
    if peer_budget > 0 then begin
      let want = min t.config.Config.mss (min avail peer_budget) in
      (* Pace whole segments: a rate bucket with only a few tokens must not
         emit tiny packets — wait until a full [want] accumulates. *)
      let granted =
        if Rate_bucket.ns_until_bytes_int (Flow_state.bucket flow) want >= 0
        then 0
        else
          Rate_bucket.tx_budget (Flow_state.bucket flow)
            ~in_flight:(Flow_state.tx_sent flow) ~want
      in
      if granted > 0 then begin
        (* Pool-recycled payload staging: [Ring.read_at ~len:granted] below
           overwrites the full (exact-length) buffer, so stale contents of a
           recycled buffer are never observable. *)
        let payload = Buf_pool.take (Buf_pool.local ()) granted in
        let tx_buf = Flow_state.tx_buf flow in
        Ring.read_at tx_buf
          ~pos:(Ring.tail tx_buf + Flow_state.tx_sent flow)
          ~dst:payload ~dst_off:0 ~len:granted;
        let seq = Flow_state.seq flow in
        Flow_state.set_seq flow (Seq32.add seq granted);
        Flow_state.set_tx_sent flow (Flow_state.tx_sent flow + granted);
        rec_on_transmit t flow ~seq ~len:granted;
        t.stats.tx_data_packets <- t.stats.tx_data_packets + 1;
        trace_ev t Trace.Tx_data ~core:(Core.id core)
          ~flow:(Flow_state.opaque flow);
        let pkt =
          build_packet t flow ~flags:Tcp_header.data_flags ~seq ~payload
        in
        (* Small payloads bypassed the pool; marking them would only make
           the final release allocate a pointless [Some]. *)
        if granted >= Buf_pool.min_len then Packet.mark_pooled pkt;
        if Flow_state.tx_span flow >= 0 then begin
          let id = Flow_state.tx_span flow in
          Flow_state.set_tx_span flow (-1);
          pkt.Packet.span <- id;
          Span.record t.span ~ts:(Sim.now t.sim) ~id ~hop:Span.Fp_tx
            ~core:(Core.id core) ~flow:(Flow_state.opaque flow)
        end;
        let idx = core_index t core in
        backlog_push t.tx_queues.(idx) pkt;
        Core.run core ~cat:Core.Tx ~cycles:(tx_cycles t) t.tx_thunks.(idx);
        maybe_send t flow core
      end
      else arm_pacing_timer t flow core ~want
    end
  end

and arm_pacing_timer t flow core ~want =
  if not (Flow_state.tx_timer_armed flow) then begin
    let delay = Rate_bucket.ns_until_bytes_int (Flow_state.bucket flow) want in
    if delay < 0 then () (* window mode / available now: an ACK reopens *)
    else if delay = max_int then () (* rate is zero; slow path will update *)
    else begin
      Flow_state.set_tx_timer_armed flow true;
      Sim.post t.sim (max delay 1) (fun () ->
          Flow_state.set_tx_timer_armed flow false;
          maybe_send t flow core)
    end
  end

(* --- SACK / RACK-TLP recovery engine ----------------------------------- *)

(* Re-read a still-unacked segment out of the transmit buffer and emit it
   without rewinding [seq]/[tx_sent] — the selective retransmission the
   Reno path cannot do. Bypasses the rate bucket: recovery traffic replaces
   segments whose tokens were already spent, so re-pacing it would only
   delay repair (the slow path still sees the episode via cnt_frexmits and
   cuts the rate). *)
let send_segment t flow core ~seq ~len =
  let tx_buf = Flow_state.tx_buf flow in
  let off = Seq32.diff seq (Flow_state.snd_una flow) in
  if len > 0 && off >= 0 && off + len <= Ring.used tx_buf then begin
    let payload = Buf_pool.take (Buf_pool.local ()) len in
    Ring.read_at tx_buf ~pos:(Ring.tail tx_buf + off) ~dst:payload ~dst_off:0
      ~len;
    t.stats.tx_data_packets <- t.stats.tx_data_packets + 1;
    trace_ev t Trace.Tx_data ~core:(Core.id core)
      ~flow:(Flow_state.opaque flow);
    let pkt = build_packet t flow ~flags:Tcp_header.data_flags ~seq ~payload in
    if len >= Buf_pool.min_len then Packet.mark_pooled pkt;
    let idx = core_index t core in
    backlog_push t.tx_queues.(idx) pkt;
    Core.run core ~cat:Core.Tx ~cycles:(tx_cycles t) t.tx_thunks.(idx);
    true
  end
  else false

(* Retransmit every segment the scoreboard currently marks lost, lowest
   first. [on_retransmit] clears the marking (and refreshes the RACK
   timestamp) before the send, so the scan always terminates. *)
let retransmit_lost t flow core =
  let st = Flow_state.recovery flow in
  let sb = st.Rec.State.sb in
  let continue = ref true in
  while !continue do
    match Rec.Scoreboard.next_lost sb with
    | None -> continue := false
    | Some (seq, len) ->
      ignore (Rec.Scoreboard.on_retransmit sb ~seq ~now_ns:(Sim.now t.sim));
      if send_segment t flow core ~seq ~len then begin
        t.rec_stats.rec_selective_retransmits <-
          t.rec_stats.rec_selective_retransmits + 1;
        trace_ev t Trace.Rec_retransmit ~core:(Core.id core)
          ~flow:(Flow_state.opaque flow)
      end
      else continue := false
  done

let reo_wnd_of t flow =
  Rec.Rack_tlp.reo_wnd_ns ~srtt_ns:(Flow_state.rtt_est flow)
    ~configured:t.config.Config.rack_reo_wnd_ns

(* Tail-loss probe: one PTO hangs over the connection while data is in
   flight; on expiry the highest unsacked segment is re-sent to
   manufacture the ACK/SACK feedback RACK needs. Timers are fire-and-
   forget [Sim.post] events validated against the flow's recovery
   generation — cumulative progress or an RTO rewind bumps [gen] and the
   stale timer dissolves without touching the flow. *)
let rec arm_tlp t flow core =
  let st = Flow_state.recovery flow in
  if
    st.Rec.State.kind = Rec.Policy.Rack_tlp
    && (not st.Rec.State.tlp_armed)
    && Flow_state.tx_sent flow > 0
  then begin
    st.Rec.State.tlp_armed <- true;
    let gen = st.Rec.State.gen in
    let pto =
      (* Before the first RTT sample the 2*srtt formula would collapse to
         its 1 ms floor and probe ahead of the genuine first ACK; fall
         back to the handshake RTO until the estimator warms up. *)
      let srtt = Flow_state.rtt_est flow in
      if srtt = 0 && t.config.Config.tlp_pto_ns = 0 then
        t.config.Config.handshake_rto_ns
      else Rec.Rack_tlp.pto_ns ~srtt_ns:srtt ~configured:t.config.Config.tlp_pto_ns
    in
    Sim.post t.sim pto (fun () ->
        if st.Rec.State.gen = gen then begin
          st.Rec.State.tlp_armed <- false;
          if Flow_state.tx_sent flow > 0 then fire_tlp t flow core
        end)
  end

and fire_tlp t flow core =
  let st = Flow_state.recovery flow in
  (match Rec.Scoreboard.last_unsacked st.Rec.State.sb with
  | Some (seq, len) ->
    t.rec_stats.rec_tlp_probes <- t.rec_stats.rec_tlp_probes + 1;
    trace_ev t Trace.Rec_tlp_probe ~core:(Core.id core)
      ~flow:(Flow_state.opaque flow);
    if send_segment t flow core ~seq ~len then
      ignore
        (Rec.Scoreboard.on_retransmit st.Rec.State.sb ~seq
           ~now_ns:(Sim.now t.sim))
  | None -> ());
  arm_tlp t flow core

(* RACK reordering timer: loss evidence exists (something above the hole
   was sacked) but the reordering window has not elapsed yet; wake up when
   the oldest candidate crosses it and mark whatever still qualifies. *)
let arm_reo t flow core =
  let st = Flow_state.recovery flow in
  if st.Rec.State.kind = Rec.Policy.Rack_tlp && not st.Rec.State.reo_armed
  then
    match Rec.Scoreboard.oldest_unsacked_tx st.Rec.State.sb with
    | None -> ()
    | Some tx ->
      st.Rec.State.reo_armed <- true;
      let gen = st.Rec.State.gen in
      let srtt = max 1 (Flow_state.rtt_est flow) in
      let due = tx + reo_wnd_of t flow + srtt in
      let delay = max 1 (due - Sim.now t.sim) in
      Sim.post t.sim delay (fun () ->
          if st.Rec.State.gen = gen then begin
            st.Rec.State.reo_armed <- false;
            let srtt = Flow_state.rtt_est flow in
            let n =
              Rec.Rack_tlp.on_reo_timer st ~now_ns:(Sim.now t.sim)
                ~reo_wnd:(reo_wnd_of t flow) ~srtt_ns:srtt
            in
            if n > 0 then begin
              t.rec_stats.rec_reo_timeouts <- t.rec_stats.rec_reo_timeouts + 1;
              t.rec_stats.rec_lost_marked <- t.rec_stats.rec_lost_marked + n;
              trace_ev t Trace.Rec_reo_timeout ~core:(Core.id core)
                ~flow:(Flow_state.opaque flow);
              retransmit_lost t flow core
            end
          end)

(* Digest one ACK through the configured recovery engine and act on the
   verdict: mirror the episode flag into the Table-3 record, signal the
   slow path's rate cut once per episode (cnt_frexmits, like Reno), and
   selectively retransmit whatever was marked lost. *)
let recovery_on_ack t flow core ~una ~blocks ~dup_acks =
  let st = Flow_state.recovery flow in
  let snd_nxt = Flow_state.seq flow in
  let newly_sacked, newly_lost, entered, exited =
    match st.Rec.State.kind with
    | Rec.Policy.Reno -> (0, 0, false, false)
    | Rec.Policy.Sack ->
      let o = Rec.Sack.on_ack st ~una ~snd_nxt ~blocks ~dup_acks in
      (o.Rec.Sack.newly_sacked, o.Rec.Sack.newly_lost, o.Rec.Sack.entered,
       o.Rec.Sack.exited)
    | Rec.Policy.Rack_tlp ->
      let o =
        Rec.Rack_tlp.on_ack st ~una ~snd_nxt ~blocks ~dup_acks
          ~reo_wnd:(reo_wnd_of t flow)
      in
      (o.Rec.Rack_tlp.newly_sacked, o.Rec.Rack_tlp.newly_lost,
       o.Rec.Rack_tlp.entered, o.Rec.Rack_tlp.exited)
  in
  Flow_state.set_in_recovery flow st.Rec.State.in_rec;
  if exited then
    trace_ev t Trace.Rec_exit ~core:(Core.id core)
      ~flow:(Flow_state.opaque flow);
  if entered then begin
    (* One rate-cut signal per episode: the slow path reads cnt_frexmits
       exactly as it does for Reno fast retransmits. *)
    Flow_state.set_cnt_frexmits flow (Flow_state.cnt_frexmits flow + 1);
    t.stats.fast_retransmits <- t.stats.fast_retransmits + 1;
    t.rec_stats.rec_episodes <- t.rec_stats.rec_episodes + 1;
    trace_ev t Trace.Rec_enter ~core:(Core.id core)
      ~flow:(Flow_state.opaque flow)
  end;
  if newly_sacked > 0 then
    t.rec_stats.rec_sacked_segments <-
      t.rec_stats.rec_sacked_segments + newly_sacked;
  if newly_lost > 0 then begin
    t.rec_stats.rec_lost_marked <- t.rec_stats.rec_lost_marked + newly_lost;
    trace_ev t Trace.Rec_mark_lost ~core:(Core.id core)
      ~flow:(Flow_state.opaque flow)
  end;
  retransmit_lost t flow core

let notify_tx t flow =
  let core = core_of_flow t flow in
  (* The TX command costs a few cycles of fast-path attention. *)
  Core.run core ~cat:Core.Tx ~cycles:50 (fun () ->
      maybe_send t flow core;
      arm_tlp t flow core)

let trigger_retransmit t flow =
  let core = core_of_flow t flow in
  Core.run core ~cat:Core.Tx ~cycles:100 (fun () ->
      (* RTO-class rewind: forget the scoreboard (segments re-register as
         they are re-sent) and invalidate pending RACK/TLP timers. *)
      (match Flow_state.recovery_kind flow with
      | Rec.Policy.Reno -> ()
      | Rec.Policy.Sack | Rec.Policy.Rack_tlp ->
        Rec.State.reset (Flow_state.recovery flow));
      (* Reset sender state as if the unacked segments were never sent. *)
      Flow_state.set_seq flow (Flow_state.snd_una flow);
      Flow_state.set_tx_sent flow 0;
      Flow_state.set_dupack_cnt flow 0;
      Flow_state.set_in_recovery flow false;
      maybe_send t flow core;
      arm_tlp t flow core)

(* --- Receive processing ------------------------------------------------ *)

let sample_rtt t flow (tcp : Tcp_header.t) =
  match tcp.Tcp_header.options.Tcp_header.timestamp with
  | Some (_, ecr) when ecr > 0 ->
    let rtt = (now_us t - ecr) * 1000 in
    if rtt >= 0 then
      Flow_state.set_rtt_est flow
        (if Flow_state.rtt_est flow = 0 then rtt
         else ((7 * Flow_state.rtt_est flow) + rtt) / 8)
  | _ -> ()

(* The seed's ACK processing, verbatim: cumulative advance plus the
   triple-duplicate-ACK go-back-N rewind (§3.1 exception 1). The dup-ACK
   counting/threshold decision lives in {!Tas_recovery.Reno} — extracted,
   not changed; telemetry and packet behaviour are byte-identical to the
   pre-extraction fast path. *)
let process_ack_reno t flow pkt core =
  let tcp = pkt.Packet.tcp in
  let acked = Seq32.diff tcp.Tcp_header.ack (Flow_state.snd_una flow) in
  Flow_state.set_window flow
    (tcp.Tcp_header.window lsl Flow_state.peer_wscale flow);
  if acked > 0 then begin
    (* Accept any ACK covering bytes still in the transmit buffer. After a
       fast-retransmit rewind the receiver can cumulatively ACK past
       snd_nxt (it had the later segments buffered); fast-forward. *)
    if acked <= Ring.used (Flow_state.tx_buf flow) then begin
      Ring.advance_tail (Flow_state.tx_buf flow) acked;
      if acked >= Flow_state.tx_sent flow then begin
        Flow_state.set_seq flow tcp.Tcp_header.ack;
        Flow_state.set_tx_sent flow 0
      end
      else Flow_state.set_tx_sent flow (Flow_state.tx_sent flow - acked);
      Flow_state.set_dupack_cnt flow 0;
      Flow_state.set_in_recovery flow false;
      Flow_state.set_cnt_ackb flow (Flow_state.cnt_ackb flow + acked);
      if tcp.Tcp_header.flags.Tcp_header.ece then
        Flow_state.set_cnt_ecnb flow (Flow_state.cnt_ecnb flow + acked);
      sample_rtt t flow tcp;
      if Flow_state.tx_interest flow then begin
        Flow_state.set_tx_interest flow false;
        match find_context t (Flow_state.context flow) with
        | Some ctx -> Context.post_writable ctx flow
        | None -> () (* application exited; flow teardown in progress *)
      end;
      maybe_send t flow core
    end
    else begin
      (* ACK beyond what the fast path sent (e.g. of a slow-path FIN). *)
      t.stats.exceptions_forwarded <- t.stats.exceptions_forwarded + 1;
      t.exception_handler pkt
    end
  end
  else if
    acked = 0
    && Flow_state.tx_sent flow > 0
    && Bytes.length pkt.Packet.payload = 0
  then begin
    match
      Rec.Reno.on_dup_ack ~dupack_cnt:(Flow_state.dupack_cnt flow)
        ~in_recovery:(Flow_state.in_recovery flow)
    with
    | Rec.Reno.Count cnt -> Flow_state.set_dupack_cnt flow cnt
    | Rec.Reno.Enter_recovery ->
      Flow_state.set_dupack_cnt flow (Flow_state.dupack_cnt flow + 1);
      Flow_state.set_in_recovery flow true;
      (* Fast recovery: rewind the sender as if the segments beyond the
         duplicate ACK had not been sent (§3.1 exception 1); the slow path
         sees cnt_frexmits and cuts the flow's rate. *)
      Flow_state.set_cnt_frexmits flow (Flow_state.cnt_frexmits flow + 1);
      t.stats.fast_retransmits <- t.stats.fast_retransmits + 1;
      trace_ev t Trace.Fast_rexmit ~core:(Core.id core)
        ~flow:(Flow_state.opaque flow);
      Flow_state.set_seq flow (Flow_state.snd_una flow);
      Flow_state.set_tx_sent flow 0;
      Flow_state.set_dupack_cnt flow 0;
      maybe_send t flow core
  end

(* ACK processing for SACK-class policies: same cumulative machinery, but
   duplicate ACKs and SACK blocks feed the scoreboard engine instead of
   triggering a go-back-N rewind, and losses are repaired selectively. *)
let process_ack_modern t flow pkt core =
  let tcp = pkt.Packet.tcp in
  let st = Flow_state.recovery flow in
  let acked = Seq32.diff tcp.Tcp_header.ack (Flow_state.snd_una flow) in
  Flow_state.set_window flow
    (tcp.Tcp_header.window lsl Flow_state.peer_wscale flow);
  let blocks = tcp.Tcp_header.options.Tcp_header.sack in
  if acked > 0 then begin
    if acked <= Ring.used (Flow_state.tx_buf flow) then begin
      Ring.advance_tail (Flow_state.tx_buf flow) acked;
      if acked >= Flow_state.tx_sent flow then begin
        Flow_state.set_seq flow tcp.Tcp_header.ack;
        Flow_state.set_tx_sent flow 0
      end
      else Flow_state.set_tx_sent flow (Flow_state.tx_sent flow - acked);
      Flow_state.set_dupack_cnt flow 0;
      Flow_state.set_cnt_ackb flow (Flow_state.cnt_ackb flow + acked);
      if tcp.Tcp_header.flags.Tcp_header.ece then
        Flow_state.set_cnt_ecnb flow (Flow_state.cnt_ecnb flow + acked);
      sample_rtt t flow tcp;
      (* Cumulative progress restarts the probe/reorder clocks: bump the
         generation so pending timers dissolve, then re-arm below. *)
      Rec.State.bump_gen st;
      st.Rec.State.tlp_armed <- false;
      st.Rec.State.reo_armed <- false;
      recovery_on_ack t flow core ~una:tcp.Tcp_header.ack ~blocks ~dup_acks:0;
      (if Flow_state.tx_interest flow then begin
         Flow_state.set_tx_interest flow false;
         match find_context t (Flow_state.context flow) with
         | Some ctx -> Context.post_writable ctx flow
         | None -> () (* application exited; flow teardown in progress *)
       end);
      maybe_send t flow core;
      arm_tlp t flow core;
      arm_reo t flow core
    end
    else begin
      (* ACK beyond what the fast path sent (e.g. of a slow-path FIN). *)
      t.stats.exceptions_forwarded <- t.stats.exceptions_forwarded + 1;
      t.exception_handler pkt
    end
  end
  else if
    acked = 0
    && Flow_state.tx_sent flow > 0
    && Bytes.length pkt.Packet.payload = 0
  then begin
    Flow_state.set_dupack_cnt flow (Flow_state.dupack_cnt flow + 1);
    recovery_on_ack t flow core ~una:(Flow_state.snd_una flow) ~blocks
      ~dup_acks:(Flow_state.dupack_cnt flow);
    arm_tlp t flow core;
    arm_reo t flow core
  end

let process_ack t flow pkt core =
  match Flow_state.recovery_kind flow with
  | Rec.Policy.Reno -> process_ack_reno t flow pkt core
  | Rec.Policy.Sack | Rec.Policy.Rack_tlp -> process_ack_modern t flow pkt core

let process_data t flow pkt core =
  let tcp = pkt.Packet.tcp in
  let payload = pkt.Packet.payload in
  let seg_len = Bytes.length payload in
  let ce = pkt.Packet.ip.Ipv4_header.ecn = Ipv4_header.Ce in
  let rx_buf = Flow_state.rx_buf flow in
  let window = Ring.free rx_buf in
  let verdict =
    if t.config.Config.rx_ooo_enabled then
      Ooo.handle (Flow_state.ooo flow) ~exp:(Flow_state.ack flow) ~window
        ~seg_start:tcp.Tcp_header.seq ~seg_len
    else begin
      (* Simple go-back-N receive: only the exact next segment is accepted
         (the Fig. 7 "TAS simple recovery" ablation). *)
      let exp = Flow_state.ack flow in
      if Seq32.lt tcp.Tcp_header.seq exp then begin
        let dup = Seq32.diff exp tcp.Tcp_header.seq in
        if dup >= seg_len then Ooo.Duplicate
        else
          Ooo.Deliver
            {
              write_at = exp;
              write_len = min (seg_len - dup) window;
              advance = min (seg_len - dup) window;
            }
      end
      else if tcp.Tcp_header.seq = exp then begin
        let n = min seg_len window in
        if n = 0 then Ooo.Drop
        else Ooo.Deliver { write_at = exp; write_len = n; advance = n }
      end
      else Ooo.Drop
    end
  in
  match verdict with
  | Ooo.Deliver { write_at; write_len; advance } ->
    if write_len > 0 then begin
      let src_off = Seq32.diff write_at tcp.Tcp_header.seq in
      Ring.write_at rx_buf
        ~pos:(Flow_state.rx_offset_of_seq flow write_at)
        payload ~off:src_off ~len:write_len
    end;
    Ring.advance_head rx_buf advance;
    Flow_state.set_ack flow (Seq32.add (Flow_state.ack flow) advance);
    if pkt.Packet.span >= 0 then begin
      Span.record t.span ~ts:(Sim.now t.sim) ~id:pkt.Packet.span
        ~hop:Span.Ctx_notify ~core:(Core.id core)
        ~flow:(Flow_state.opaque flow);
      (* Carry the span across the coalesced context queue to the app's
         read; first sampled packet wins until delivery clears it. *)
      if Flow_state.rx_span flow < 0 then
        Flow_state.set_rx_span flow pkt.Packet.span
    end;
    (match find_context t (Flow_state.context flow) with
    | Some ctx -> Context.post_readable ctx flow
    | None -> () (* application exited; flow teardown in progress *));
    send_ack t flow ~ece:ce
  | Ooo.Store { write_at; write_len } ->
    let src_off = Seq32.diff write_at tcp.Tcp_header.seq in
    Ring.write_at rx_buf
      ~pos:(Flow_state.rx_offset_of_seq flow write_at)
      payload ~off:src_off ~len:write_len;
    t.stats.ooo_stored <- t.stats.ooo_stored + 1;
    trace_ev t Trace.Ooo_store ~core:(Core.id core)
      ~flow:(Flow_state.opaque flow);
    (* Duplicate ACK tells the sender what we are still waiting for. *)
    send_ack t flow ~ece:ce
  | Ooo.Duplicate -> send_ack t flow ~ece:ce
  | Ooo.Drop ->
    t.stats.payload_drops <- t.stats.payload_drops + 1;
    trace_ev t Trace.Payload_drop ~core:(Core.id core)
      ~flow:(Flow_state.opaque flow);
    send_ack t flow ~ece:ce

(* Last consumer of an RX packet recycles its pooled payload. Safe only
   because every delivery path out of [process] — ring writes, exception
   handling, reinjection — either copies the bytes out or takes its own
   reference before this runs. *)
let release_pkt pkt =
  match Packet.release pkt with
  | Some buf -> Buf_pool.give (Buf_pool.local ()) buf
  | None -> ()

(* Flow lookup with the vector-pass memo: consecutive same-flow segments
   hit the memoized entry and skip the table (and its lock cost) the way a
   batched DPDK loop keeps the previous flow's state hot. *)
let memo_reset t = t.memo.m_flow <- None

let lookup_flow t pkt =
  let m = t.memo in
  let ip = pkt.Packet.ip and tcp = pkt.Packet.tcp in
  match m.m_flow with
  | Some _ as r
    when
      m.m_src_ip = ip.Ipv4_header.src
      && m.m_src_port = tcp.Tcp_header.src_port
      && m.m_dst_ip = ip.Ipv4_header.dst
      && m.m_dst_port = tcp.Tcp_header.dst_port -> r
  | _ ->
    let r = Flow_table.find t.flows (Packet.four_tuple_at_receiver pkt) in
    (match r with
    | Some _ ->
      m.m_flow <- r;
      m.m_src_ip <- ip.Ipv4_header.src;
      m.m_src_port <- tcp.Tcp_header.src_port;
      m.m_dst_ip <- ip.Ipv4_header.dst;
      m.m_dst_port <- tcp.Tcp_header.dst_port
    | None -> m.m_flow <- None);
    r

let rec process t pkt core =
  (if not (Packet.well_formed pkt) then begin
     (* Header-corrupted frame (IP length inconsistent with the actual
        headers + payload): drop before touching any flow state. *)
     t.stats.malformed_drops <- t.stats.malformed_drops + 1;
     trace_ev t Trace.Malformed_drop ~core:(Core.id core) ~flow:(-1)
   end
   else process_valid t pkt core);
  release_pkt pkt

and process_valid t pkt core =
  if pkt.Packet.span >= 0 then
    Span.record t.span ~ts:(Sim.now t.sim) ~id:pkt.Packet.span
      ~hop:Span.Fp_rx ~core:(Core.id core) ~flow:(-1);
  let tcp = pkt.Packet.tcp in
  let flags = tcp.Tcp_header.flags in
  if flags.Tcp_header.syn || flags.Tcp_header.rst || flags.Tcp_header.fin then begin
    t.stats.exceptions_forwarded <- t.stats.exceptions_forwarded + 1;
    trace_ev t Trace.Exception_fwd ~core:(Core.id core) ~flow:(-1);
    t.exception_handler pkt
  end
  else begin
    match lookup_flow t pkt with
    | None ->
      t.stats.exceptions_forwarded <- t.stats.exceptions_forwarded + 1;
      trace_ev t Trace.Exception_fwd ~core:(Core.id core) ~flow:(-1);
      t.exception_handler pkt
    | Some flow ->
      (match tcp.Tcp_header.options.Tcp_header.timestamp with
      | Some (ts_val, _) -> Flow_state.set_ts_recent flow ts_val
      | None -> ());
      if Bytes.length pkt.Packet.payload = 0 then begin
        t.stats.rx_ack_packets <- t.stats.rx_ack_packets + 1;
        trace_ev t Trace.Rx_ack ~core:(Core.id core)
          ~flow:(Flow_state.opaque flow);
        process_ack t flow pkt core
      end
      else begin
        t.stats.rx_data_packets <- t.stats.rx_data_packets + 1;
        trace_ev t Trace.Rx_data ~core:(Core.id core)
          ~flow:(Flow_state.opaque flow);
        process_ack t flow pkt core;
        process_data t flow pkt core
      end
  end

(* --- Burst (vector) receive -------------------------------------------- *)

(* One vector pass over [count] packets of [pkts]: flow lookup, seq/ack
   update and emission run per segment as in [process], but the pass-local
   flow memo amortizes the table lookup across runs of same-flow segments —
   the DPDK-burst discipline of the paper's poll loop. Order within the
   burst is arrival order, so per-flow ordering is preserved for any
   interleaving of flows. *)
let process_burst t pkts ~count core =
  if count < 0 || count > Array.length pkts then
    invalid_arg "Fast_path.process_burst: count out of range";
  if count > 0 then begin
    memo_reset t;
    t.stats.rx_bursts <- t.stats.rx_bursts + 1;
    t.stats.rx_burst_packets <- t.stats.rx_burst_packets + count;
    for k = 0 to count - 1 do
      process t pkts.(k) core
    done;
    memo_reset t
  end

(* Drain the backlog in bursts of at most [fp_burst_size]: packets keep
   arriving while the core works off earlier ones, so under load each
   drain finds a naturally formed batch — exactly how a DPDK poll loop
   sees deeper bursts as it falls behind. *)
let drain_backlog t idx core =
  t.drain_armed.(idx) <- false;
  let b = t.backlogs.(idx) in
  let burst_cap = Array.length t.scratch in
  while b.bl_len > 0 do
    let n = min b.bl_len burst_cap in
    let cap = Array.length b.bl_buf in
    for i = 0 to n - 1 do
      let j = (b.bl_head + i) mod cap in
      t.scratch.(i) <- b.bl_buf.(j);
      b.bl_buf.(j) <- t.dummy_pkt
    done;
    b.bl_head <- (b.bl_head + n) mod cap;
    b.bl_len <- b.bl_len - n;
    process_burst t t.scratch ~count:n core;
    Array.fill t.scratch 0 n t.dummy_pkt
  done

let rx_cost t pkt =
  let c = t.config in
  if Bytes.length pkt.Packet.payload = 0 then
    c.Config.fp_driver_cycles + c.Config.fp_ack_rx_cycles
  else c.Config.fp_driver_cycles + c.Config.fp_rx_cycles

let attach t =
  t.drain_thunks <-
    Array.init (Array.length t.cores) (fun idx ->
        let core = t.cores.(idx) in
        fun () -> drain_backlog t idx core);
  Nic.set_rx_handler t.nic (fun ~queue pkt ->
      let idx = queue mod Array.length t.cores in
      let core = t.cores.(idx) in
      let now = Sim.now t.sim in
      (* A core that has been idle long enough has blocked (§3.4); charge
         the kernel wakeup latency before it starts polling again. *)
      let asleep = now - t.last_rx_time.(idx) > t.config.Config.idle_block_ns in
      t.last_rx_time.(idx) <- now;
      let cycles = rx_cost t pkt in
      let cat =
        if Bytes.length pkt.Packet.payload = 0 then Core.Ack_rx
        else Core.Driver_rx
      in
      if not t.config.Config.fp_burst_enabled then begin
        if asleep then
          Core.run_after core ~cat ~delay:t.config.Config.wakeup_ns ~cycles
            (fun () -> process t pkt core)
        else Core.run core ~cat ~cycles (fun () -> process t pkt core)
      end
      else begin
        (* Burst mode: enqueue, charge the packet's cycles, and make sure
           one drain pass is scheduled. Packets charged behind an armed
           drain are picked up by it — the cost model is unchanged while
           the processing pass is batched. *)
        backlog_push t.backlogs.(idx) pkt;
        if t.drain_armed.(idx) then Core.charge core ~cat ~cycles
        else begin
          t.drain_armed.(idx) <- true;
          if asleep then
            Core.run_after core ~cat ~delay:t.config.Config.wakeup_ns ~cycles
              t.drain_thunks.(idx)
          else Core.run core ~cat ~cycles t.drain_thunks.(idx)
        end
      end)

let reinject t pkt =
  let tuple = Packet.four_tuple_at_receiver pkt in
  match Flow_table.find t.flows tuple with
  | None -> ()
  | Some flow ->
    let core = core_of_flow t flow in
    let cat =
      if Bytes.length pkt.Packet.payload = 0 then Core.Ack_rx
      else Core.Driver_rx
    in
    (* The reinjected packet goes through [process] (and its release) a
       second time; hold a reference across the scheduling gap. *)
    Packet.retain pkt;
    Core.run core ~cat ~cycles:(rx_cost t pkt) (fun () -> process t pkt core)

(* Per-core idle fraction over the window since the previous call, for
   every configured core. Active cores report clamped [0,1] idle from
   their busy-ns delta; inactive cores read 1.0 (their snapshot still
   refreshes so reactivation starts clean). One consumer per instance:
   each call advances the shared snapshots. *)
let core_idle_fractions t ~window_ns =
  Array.init (Array.length t.cores) (fun i ->
      let busy = Core.busy_ns t.cores.(i) in
      let delta = busy - t.busy_snapshot.(i) in
      t.busy_snapshot.(i) <- busy;
      if i < t.active then
        max 0.0
          (min 1.0 (1.0 -. (float_of_int delta /. float_of_int window_ns)))
      else 1.0)

let idle_core_total t ~window_ns =
  let active = t.active in
  let fractions = core_idle_fractions t ~window_ns in
  let total = ref 0.0 in
  for i = 0 to active - 1 do
    total := !total +. fractions.(i)
  done;
  !total
