module Rss_table = Tas_shard.Rss_table
module Flow_shards = Tas_shard.Flow_shards

type t = Flow_state.t Flow_shards.t

(* Single-table mode: one shard behind a private single-queue redirection
   table (nothing ever migrates). Same code path as the sharded table, so
   behavior and counters differ only in shard granularity. *)
let create () =
  Flow_shards.create ~rss:(Rss_table.create ~num_queues:1 ()) ()

let create_sharded ?lock_cycles ?remote_lock_cycles ~rss () =
  Flow_shards.create ?lock_cycles ?remote_lock_cycles ~rss ()

let add = Flow_shards.add
let find = Flow_shards.find
let remove = Flow_shards.remove
let count = Flow_shards.count
let iter t f = Flow_shards.iter t f

let num_shards = Flow_shards.num_shards
let shard_count = Flow_shards.shard_count
let shard_of = Flow_shards.shard_of
let shard_stats = Flow_shards.shard_stats
let lock_cycles = Flow_shards.lock_cycles
let remote_lock_cycles = Flow_shards.remote_lock_cycles
let migrated_flows = Flow_shards.migrated_flows
let set_on_migrate = Flow_shards.set_on_migrate
let register = Flow_shards.register

let dump ?shard t =
  let module J = Tas_telemetry.Json in
  let rows = ref [] in
  let collect tuple fl =
    let j =
      match Flow_state.to_json fl with
      | J.Obj fields ->
        J.Obj
          (( "tuple",
             J.Str
               (Format.asprintf "%a" Tas_proto.Addr.Four_tuple.pp tuple) )
          :: fields)
      | j -> j
    in
    rows := (Flow_state.opaque fl, j) :: !rows
  in
  (match shard with
  | None -> Flow_shards.iter t collect
  | Some i -> Flow_shards.iter_shard t i collect);
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) !rows in
  J.List (List.map snd rows)
