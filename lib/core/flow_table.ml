module Tbl = Hashtbl.Make (struct
  type t = Tas_proto.Addr.Four_tuple.t

  let equal = Tas_proto.Addr.Four_tuple.equal
  let hash = Tas_proto.Addr.Four_tuple.hash
end)

type t = Flow_state.t Tbl.t

let create () = Tbl.create 1024
let add t k v = Tbl.replace t k v
let find t k = Tbl.find_opt t k
let remove t k = Tbl.remove t k
let count t = Tbl.length t
let iter t f = Tbl.iter f t

let dump t =
  let module J = Tas_telemetry.Json in
  let rows = ref [] in
  Tbl.iter
    (fun tuple fl ->
      let j =
        match Flow_state.to_json fl with
        | J.Obj fields ->
          J.Obj
            (( "tuple",
               J.Str
                 (Format.asprintf "%a" Tas_proto.Addr.Four_tuple.pp tuple) )
            :: fields)
        | j -> j
      in
      rows := (fl.Flow_state.opaque, j) :: !rows)
    t;
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) !rows in
  J.List (List.map snd rows)
