(** libTAS: the untrusted per-application user-space stack (paper §3.3).

    Presents a sockets-style interface over the fast path's context queues
    and per-flow payload buffers. Applications are event-driven: each
    application thread owns one context bound to one CPU core; notifications
    wake the thread, which drains its private context queue, paying the API
    cost per event. Two API flavours are modelled: POSIX-sockets emulation
    ([`Sockets`], the paper's unmodified-application path) and the IX-like
    low-level API ([`Lowlevel`], TAS LL in the evaluation), which differ in
    per-operation cycle cost. *)

type t
type socket

type handlers = {
  on_connected : socket -> unit;
  on_data : socket -> bytes -> unit;
      (** In-order payload, copied out of the flow's receive buffer. The
          buffer is borrowed: it is recycled through the payload pool as
          soon as the callback returns, so handlers must copy or fully
          parse it synchronously and must not retain a reference. *)
  on_sendable : socket -> unit;
      (** Space freed after a short [send]; armed by a partial send. *)
  on_peer_closed : socket -> unit;  (** EOF after all data was delivered. *)
  on_closed : socket -> unit;  (** Connection fully gone. *)
  on_connect_failed : socket -> Slow_path.conn_error -> unit;
      (** Connection attempt failed: handshake timeout, RST refusal, or a
          reset racing establishment (the errno of a failed [connect]). *)
  on_reset : socket -> unit;
      (** Established connection aborted (peer RST or dead-flow reaping) —
          the ECONNRESET notification. [on_closed] still follows. *)
}

val null_handlers : handlers

type api = Sockets | Lowlevel

val create :
  Tas_engine.Sim.t ->
  fast_path:Fast_path.t ->
  slow_path:Slow_path.t ->
  app_cores:Tas_cpu.Core.t array ->
  api:api ->
  unit ->
  t
(** One context (and context queue) per application core. *)

val num_contexts : t -> int
val context_core : t -> int -> Tas_cpu.Core.t

val listen : t -> port:int -> ctx_of_tuple:(Tas_proto.Addr.Four_tuple.t -> int)
  -> (socket -> handlers) -> unit
(** Listen and accept every connection; [ctx_of_tuple] places each accepted
    connection on a context (e.g. round-robin or hash — contexts are
    app-defined, §3.3). The callback supplies the socket's handlers. *)

val connect :
  t -> ctx:int -> dst_ip:Tas_proto.Addr.ipv4 -> dst_port:int -> handlers ->
  socket

val send : socket -> bytes -> int
(** Copy bytes into the flow's transmit payload buffer and post a TX command;
    returns bytes accepted. Arms [on_sendable] when short. *)

val tx_free : socket -> int
(** Free transmit-buffer bytes (0 when not connected). *)

val want_sendable : socket -> unit
(** Explicitly arm an [on_sendable] notification for the next ACK that frees
    transmit space (EPOLLOUT subscription without a short write). *)

val close : socket -> unit

val sock_id : socket -> int
val is_open : socket -> bool
val app_cycles : socket -> int -> (unit -> unit) -> unit
(** [app_cycles sock cycles k] charges application-level work on the
    socket's context core, then runs [k] — how applications account their
    own per-request processing. *)

val api_event_cycles : t -> int
(** Per-event API cost currently charged (sockets vs low-level). *)

type stats = {
  mutable events_dispatched : int;
  mutable sockets_opened : int;
  mutable rx_bytes : int;
  mutable tx_bytes : int;
}

val stats : t -> stats

val register :
  t -> Tas_telemetry.Metrics.t -> ?labels:Tas_telemetry.Metrics.labels ->
  unit -> unit
(** Register this application's counters ([lt_*]) and an open-sockets gauge.
    Pass distinguishing [labels] (e.g. [("app", "0")]) when several
    applications share one registry. *)

val shutdown : t -> unit
(** Application exit: closes every socket the application holds and
    releases its context queues — the automatic cleanup the TAS slow path
    performs when it sees the process's UNIX-socket hangup (paper §4). *)
