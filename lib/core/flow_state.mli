(** Per-flow fast-path state — the 102-byte record of paper Table 3.

    The record itself lives in one of two backings behind this abstract
    handle:

    - {b Arena} (default, [Config.flow_arena_enabled]): a 102-byte slot of
      a {!Flow_arena} — off-heap, fixed field offsets, free-list reuse.
      Every getter/setter below reads/writes the slot directly, so a flow's
      scalar state costs exactly [state_bytes] bytes and is invisible to
      the GC.
    - {b Boxed}: the pre-arena OCaml record, kept as the reference
      implementation for the arena-vs-boxed differential test battery.

    On {!release} the scalar state is copied back onto the heap and the
    slot returned to the arena, so handles retained past teardown (sockets,
    queued context events) keep reading coherent values and can never
    observe a recycled slot.

    Companion structures that are pointers in the paper's record (payload
    rings, the out-of-order interval, the rate bucket) remain OCaml values
    owned by the handle; their positions are mirrored into the slot's
    shadow fields by {!sync_shadow} at snapshot time. *)

type t

exception Arena_exhausted
(** Raised by {!create} when the arena free list is empty. Callers check
    {!Flow_arena.available} (or catch this) and refuse the connection —
    there is no silent heap fallback. *)

val create :
  ?arena:Flow_arena.t ->
  ?recovery:Tas_recovery.Policy.kind ->
  ?ooo_ranges:int ->
  opaque:int ->
  context:int ->
  bucket:Rate_bucket.t ->
  rx_buf_size:int ->
  tx_buf_size:int ->
  local_port:Tas_proto.Addr.port ->
  peer_ip:Tas_proto.Addr.ipv4 ->
  peer_port:Tas_proto.Addr.port ->
  peer_mac:Tas_proto.Addr.mac ->
  tx_iss:Tas_proto.Seq32.t ->
  rx_next:Tas_proto.Seq32.t ->
  window:int ->
  peer_wscale:int ->
  unit ->
  t
(** [tx_iss] is the sequence number of the first data byte to send (stream
    offset 0 of [tx_buf]); [rx_next] the first expected data byte. With
    [?arena] the record occupies an arena slot; without, a boxed record.
    [?recovery] selects the loss-recovery policy (default [Reno], the
    paper's go-back-N); [?ooo_ranges] sizes the receiver's out-of-order
    interval set (default 1, the paper's single interval). *)

val release : t -> unit
(** Return the arena slot (no-op for boxed flows); the handle transparently
    degrades to a boxed copy of its final state. *)

val is_arena_backed : t -> bool

val slot : t -> int option
(** Arena slot index while arena-backed; [None] for boxed handles. *)

(** {2 Table-3 fields} *)

val opaque : t -> int
(** Application-defined flow identifier, relayed verbatim. *)

val local_port : t -> Tas_proto.Addr.port
val peer_ip : t -> Tas_proto.Addr.ipv4
val peer_port : t -> Tas_proto.Addr.port

val peer_mac : t -> Tas_proto.Addr.mac
(** For segmentation without ARP lookups. *)

val peer_wscale : t -> int
(** Negotiated peer window-scale shift. *)

val context : t -> int
(** RX/TX context queue number. *)

val set_context : t -> int -> unit

val seq : t -> Tas_proto.Seq32.t
(** Next local sequence number to send. *)

val set_seq : t -> Tas_proto.Seq32.t -> unit

val ack : t -> Tas_proto.Seq32.t
(** Next expected peer sequence number. *)

val set_ack : t -> Tas_proto.Seq32.t -> unit

val tx_sent : t -> int
(** Sent-but-unacked bytes from the tx tail. *)

val set_tx_sent : t -> int -> unit

val window : t -> int
(** Remote TCP receive window (already scaled). *)

val set_window : t -> int -> unit
val dupack_cnt : t -> int
val set_dupack_cnt : t -> int -> unit

val in_recovery : t -> bool
(** Fast recovery triggered; further duplicate ACKs are ignored until
    snd_una advances. *)

val set_in_recovery : t -> bool -> unit

val cnt_ackb : t -> int
(** Acked bytes since last slow-path collection. *)

val set_cnt_ackb : t -> int -> unit

val cnt_ecnb : t -> int
(** ECN-marked acked bytes since collection. *)

val set_cnt_ecnb : t -> int -> unit

val cnt_frexmits : t -> int
(** Fast retransmits since collection. *)

val set_cnt_frexmits : t -> int -> unit

val rtt_est : t -> int
(** EWMA RTT estimate, ns. *)

val set_rtt_est : t -> int -> unit

(** {2 Implementation bookkeeping outside the paper's table} *)

val ts_recent : t -> int
(** Peer timestamp to echo. *)

val set_ts_recent : t -> int -> unit

val rx_notified : t -> bool
(** A Readable event is pending in the context queue. *)

val set_rx_notified : t -> bool -> unit
val tx_notified : t -> bool
val set_tx_notified : t -> bool -> unit

val tx_interest : t -> bool
(** The application wants a Writable notification (EPOLLOUT armed). *)

val set_tx_interest : t -> bool -> unit

val tx_timer_armed : t -> bool
(** A paced transmit event is scheduled. *)

val set_tx_timer_armed : t -> bool -> unit
val fin_received : t -> bool
val set_fin_received : t -> bool -> unit
val fin_sent : t -> bool
val set_fin_sent : t -> bool -> unit
val rx_closed : t -> bool
val set_rx_closed : t -> bool -> unit

val tx_span : t -> int
(** Pending latency-span id carried from the app's send across the
    coalesced context-queue boundary to the next data transmit; [-1] when
    none. *)

val set_tx_span : t -> int -> unit

val rx_span : t -> int
(** Likewise, fast-path delivery to app read. *)

val set_rx_span : t -> int -> unit

(** {2 Companion structures} *)

val rx_buf : t -> Tas_buffers.Ring_buffer.t
(** Table 3 [rx_start|size|head|tail]. *)

val tx_buf : t -> Tas_buffers.Ring_buffer.t
val ooo : t -> Tas_buffers.Ooo_interval.t
val bucket : t -> Rate_bucket.t
val set_bucket : t -> Rate_bucket.t -> unit

val recovery : t -> Tas_recovery.State.t
(** Loss-recovery companion: policy kind, episode flag, and (for SACK-class
    policies) the sender scoreboard. *)

val recovery_kind : t -> Tas_recovery.Policy.kind

(** {2 Derived views} *)

val tuple : t -> local_ip:Tas_proto.Addr.ipv4 -> Tas_proto.Addr.Four_tuple.t

val snd_una : t -> Tas_proto.Seq32.t
(** First unacknowledged sequence number. *)

val seq_of_rx_offset : t -> int -> Tas_proto.Seq32.t
val rx_offset_of_seq : t -> Tas_proto.Seq32.t -> int

val tx_available : t -> int
(** Bytes in the transmit buffer not yet (re)transmitted. *)

val state_bytes : int
(** Size of the paper's per-flow record: 102 bytes. *)

val sync_shadow : t -> unit
(** Mirror ring positions and the out-of-order interval into the arena
    slot's shadow fields (no-op for boxed flows). Called by dump paths so
    the slot is a complete Table-3 image; never on the packet hot path. *)

val to_json : t -> Tas_telemetry.Json.t
(** Snapshot of the Table-3 record (sequence/ack state, buffer occupancy,
    rate bucket, dup-ACK and recovery state, out-of-order interval,
    slow-path collection counters, RTT estimate) as a deterministic JSON
    object, read through the live backing — the arena itself for
    arena-backed flows. *)
