(** Per-flow fast-path state — the 102-byte record of paper Table 3.

    This is deliberately minimal: everything the fast path needs for
    common-case processing and nothing else. The slow path reads and writes
    the same record (shared memory in the paper; direct access here) for
    congestion control, timeouts and teardown. *)

type t = {
  opaque : int;  (** application-defined flow identifier, relayed verbatim *)
  mutable context : int;  (** RX/TX context queue number *)
  mutable bucket : Rate_bucket.t;  (** rate/window bucket (Table 3 [bucket]) *)
  rx_buf : Tas_buffers.Ring_buffer.t;  (** [rx_start|size|head|tail] *)
  tx_buf : Tas_buffers.Ring_buffer.t;  (** [tx_start|size|head|tail] *)
  mutable tx_sent : int;  (** sent-but-unacked bytes from the tx tail *)
  mutable seq : Tas_proto.Seq32.t;  (** next local sequence number to send *)
  mutable ack : Tas_proto.Seq32.t;  (** next expected peer sequence number *)
  mutable window : int;  (** remote TCP receive window (already scaled) *)
  mutable dupack_cnt : int;
  mutable in_recovery : bool;
      (** fast recovery triggered; further duplicate ACKs are ignored until
          snd_una advances *)
  peer_wscale : int;  (** negotiated peer window-scale shift *)
  local_port : Tas_proto.Addr.port;
  peer_ip : Tas_proto.Addr.ipv4;
  peer_port : Tas_proto.Addr.port;
  peer_mac : Tas_proto.Addr.mac;  (** for segmentation without ARP lookups *)
  ooo : Tas_buffers.Ooo_interval.t;  (** [ooo_start|len] *)
  mutable cnt_ackb : int;  (** acked bytes since last slow-path collection *)
  mutable cnt_ecnb : int;  (** ECN-marked acked bytes since collection *)
  mutable cnt_frexmits : int;  (** fast retransmits since collection *)
  mutable rtt_est : int;  (** EWMA RTT estimate, ns *)
  (* Implementation bookkeeping outside the paper's table: *)
  mutable ts_recent : int;  (** peer timestamp to echo *)
  mutable rx_notified : bool;  (** a Readable event is pending in the queue *)
  mutable tx_notified : bool;
  mutable tx_interest : bool;
      (** the application wants a Writable notification (EPOLLOUT armed) *)
  mutable tx_timer_armed : bool;  (** a paced transmit event is scheduled *)
  mutable fin_received : bool;
  mutable fin_sent : bool;
  mutable rx_closed : bool;
  mutable tx_span : int;
      (** pending latency-span id carried from the app's send across the
          coalesced context-queue boundary to the next data transmit;
          [-1] when none *)
  mutable rx_span : int;  (** likewise, fast-path delivery to app read *)
}

val create :
  opaque:int ->
  context:int ->
  bucket:Rate_bucket.t ->
  rx_buf_size:int ->
  tx_buf_size:int ->
  local_port:Tas_proto.Addr.port ->
  peer_ip:Tas_proto.Addr.ipv4 ->
  peer_port:Tas_proto.Addr.port ->
  peer_mac:Tas_proto.Addr.mac ->
  tx_iss:Tas_proto.Seq32.t ->
  rx_next:Tas_proto.Seq32.t ->
  window:int ->
  peer_wscale:int ->
  t
(** [tx_iss] is the sequence number of the first data byte to send (stream
    offset 0 of [tx_buf]); [rx_next] the first expected data byte. *)

val tuple : t -> local_ip:Tas_proto.Addr.ipv4 -> Tas_proto.Addr.Four_tuple.t

val snd_una : t -> Tas_proto.Seq32.t
(** First unacknowledged sequence number. *)

val seq_of_rx_offset : t -> int -> Tas_proto.Seq32.t
val rx_offset_of_seq : t -> Tas_proto.Seq32.t -> int
val tx_available : t -> int
(** Bytes in the transmit buffer not yet (re)transmitted. *)

val state_bytes : int
(** Size of the paper's per-flow record: 102 bytes. *)

val to_json : t -> Tas_telemetry.Json.t
(** Snapshot of the Table-3 record (sequence/ack state, buffer occupancy,
    rate bucket, dup-ACK and recovery state, out-of-order interval, slow-path
    collection counters, RTT estimate) as a deterministic JSON object. *)
