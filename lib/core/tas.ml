module Core = Tas_cpu.Core
module Metrics = Tas_telemetry.Metrics
module Trace = Tas_telemetry.Trace
module Span = Tas_telemetry.Span
module Json = Tas_telemetry.Json
module Timeline = Tas_telemetry.Timeline

type t = {
  sim : Tas_engine.Sim.t;
  config : Config.t;
  fp : Fast_path.t;
  sp : Slow_path.t;
  fp_cores : Core.t array;
  sp_core : Core.t;
  metrics : Metrics.t;
  tracer : Trace.t;
  spans : Span.t;
  timeline : Timeline.t option;
  mutable next_app : int;
}

(* Per-core busy gauges, broken down by the paper's per-module categories
   (Table 1/2): core_busy_ns{core=...,cat=...}. *)
let register_core_breakdown m ~role core =
  let labels_base = [ ("core", string_of_int (Core.id core)); ("role", role) ] in
  Metrics.gauge_fn m ~labels:labels_base
    ~help:"total busy time on this core (ns)" "core_busy_ns" (fun () ->
      float_of_int (Core.busy_ns core));
  List.iter
    (fun cat ->
      Metrics.gauge_fn m
        ~labels:(("cat", Core.category_name cat) :: labels_base)
        ~help:"busy time on this core attributed to one module category (ns)"
        "core_busy_cat_ns"
        (fun () -> float_of_int (Core.busy_ns_of core cat)))
    Core.categories

(* Per-interval utilization feeds the timeline as probe closures, keeping
   the telemetry layer free of any cpu/core dependency. *)
let timeline_add_core tl ~role ~interval_ns core =
  Core.enable_util_buckets core ~interval_ns;
  Timeline.add_core tl ~role ~id:(Core.id core)
    ~busy_in:(fun bucket -> Core.util_busy_ns core ~bucket)
    ~backlog:(fun () -> Core.backlog_ns core)

let create sim ~nic ~config ?span ?(freq_ghz = 2.1) () =
  let fp_cores =
    Array.init config.Config.max_fast_path_cores (fun i ->
        Core.create sim ~freq_ghz ~id:i ())
  in
  let sp_core = Core.create sim ~freq_ghz ~id:1000 () in
  let tracer =
    if config.Config.trace_enabled then
      Trace.create ~enabled:true ~capacity:config.Config.trace_capacity ()
    else Trace.disabled ()
  in
  let spans =
    match span with
    | Some sp -> sp
    | None ->
      if config.Config.span_enabled then
        Span.create ~enabled:true
          ~sample_every:config.Config.span_sample_every
          ~capacity:config.Config.span_capacity ()
      else Span.disabled ()
  in
  let fp =
    Fast_path.create ~trace:tracer ~span:spans sim ~nic ~cores:fp_cores ~config
  in
  Fast_path.attach fp;
  (* Checksum-validation drops on this host's NIC share the instance's
     trace ring. *)
  Tas_netsim.Nic.set_trace nic tracer;
  (* Start with a single active core when scaling dynamically; at the
     configured maximum otherwise. *)
  if config.Config.dynamic_scaling then Fast_path.set_active_cores fp 1
  else Fast_path.set_active_cores fp config.Config.max_fast_path_cores;
  let sp = Slow_path.create sim ~fast_path:fp ~core:sp_core ~config in
  let metrics = Metrics.create () in
  Fast_path.register fp metrics;
  Slow_path.register sp metrics;
  (* Controller audit counters, present iff dynamic scaling. *)
  (match Slow_path.controller sp with
  | Some ctl -> Tas_control.Controller.register ctl metrics
  | None -> ());
  Tas_netsim.Nic.register nic metrics ();
  Array.iter (register_core_breakdown metrics ~role:"fp") fp_cores;
  register_core_breakdown metrics ~role:"sp" sp_core;
  (* Ring self-observability: the watchdog's ring-drop rule reads these. *)
  Metrics.counter_fn metrics ~help:"trace events dropped (ring full)"
    "trace_dropped_events" (fun () -> Trace.dropped tracer);
  Metrics.counter_fn metrics ~help:"span hop events dropped (ring full)"
    "span_dropped_events" (fun () -> Span.dropped spans);
  let timeline =
    if config.Config.timeline_interval_ns <= 0 then None
    else begin
      let interval_ns = config.Config.timeline_interval_ns in
      let tl =
        Timeline.create ~interval_ns
          ~capacity:config.Config.timeline_capacity ~metrics ()
      in
      Array.iter (timeline_add_core tl ~role:"fp" ~interval_ns) fp_cores;
      timeline_add_core tl ~role:"sp" ~interval_ns sp_core;
      let ft = Fast_path.flows fp in
      Timeline.set_shard_probe tl (fun () ->
          Array.init (Flow_table.num_shards ft) (fun i ->
              (Flow_table.shard_stats ft i).Tas_shard.Flow_shards.flows));
      (match Slow_path.arena sp with
      | Some arena ->
        Timeline.set_arena_probe tl (fun () ->
            Some (Flow_arena.live arena, Flow_arena.capacity arena))
      | None -> ());
      ignore
        (Tas_engine.Sim.periodic sim interval_ns (fun () ->
             Timeline.capture tl ~ts:(Tas_engine.Sim.now sim)));
      Some tl
    end
  in
  { sim; config; fp; sp; fp_cores; sp_core; metrics; tracer; spans; timeline;
    next_app = 0 }

let fast_path t = t.fp
let slow_path t = t.sp
let config t = t.config
let fp_cores t = t.fp_cores
let sp_core t = t.sp_core
let metrics t = t.metrics
let trace t = t.tracer
let span t = t.spans
let timeline t = t.timeline

let app t ~app_cores ~api =
  let lt = Libtas.create t.sim ~fast_path:t.fp ~slow_path:t.sp ~app_cores ~api () in
  let idx = t.next_app in
  t.next_app <- t.next_app + 1;
  Libtas.register lt t.metrics ~labels:[ ("app", string_of_int idx) ] ();
  Array.iteri
    (fun i core ->
      let role = Printf.sprintf "app%d_%d" idx i in
      register_core_breakdown t.metrics ~role core;
      match t.timeline with
      | Some tl ->
        timeline_add_core tl ~role
          ~interval_ns:t.config.Config.timeline_interval_ns core
      | None -> ())
    app_cores;
  lt

let fp_busy_ns t =
  Array.fold_left (fun acc c -> acc + Core.busy_ns c) 0 t.fp_cores

let cycle_breakdown t =
  let acc = List.map (fun cat -> (cat, ref 0)) Core.categories in
  let add core =
    List.iter (fun (cat, r) -> r := !r + Core.busy_ns_of core cat) acc
  in
  Array.iter add t.fp_cores;
  add t.sp_core;
  List.map (fun (cat, r) -> (cat, !r)) acc

type snapshot = {
  flows : int;
  active_fp_cores : int;
  conn_setups : int;
  conn_teardowns : int;
  timeout_retransmits : int;
  rx_data_packets : int;
  rx_ack_packets : int;
  tx_data_packets : int;
  acks_sent : int;
  ooo_stored : int;
  payload_drops : int;
  fast_retransmits : int;
  exceptions_forwarded : int;
  malformed_drops : int;
  rsts_sent : int;
  fp_busy_ms : float;
  sp_busy_ms : float;
}

(* The snapshot is now a typed view over the metrics registry: every field
   below is also registered (fp_*, sp_*, core_busy_ns) and the two are read
   from the same underlying mutable counters. *)
let snapshot t =
  let s = Fast_path.stats t.fp in
  {
    flows = Flow_table.count (Fast_path.flows t.fp);
    active_fp_cores = Fast_path.active_cores t.fp;
    conn_setups = Slow_path.conn_setups t.sp;
    conn_teardowns = Slow_path.conn_teardowns t.sp;
    timeout_retransmits = Slow_path.timeout_retransmits t.sp;
    rx_data_packets = s.Fast_path.rx_data_packets;
    rx_ack_packets = s.Fast_path.rx_ack_packets;
    tx_data_packets = s.Fast_path.tx_data_packets;
    acks_sent = s.Fast_path.acks_sent;
    ooo_stored = s.Fast_path.ooo_stored;
    payload_drops = s.Fast_path.payload_drops;
    fast_retransmits = s.Fast_path.fast_retransmits;
    exceptions_forwarded = s.Fast_path.exceptions_forwarded;
    malformed_drops = s.Fast_path.malformed_drops;
    rsts_sent = Slow_path.rsts_sent t.sp;
    fp_busy_ms = float_of_int (fp_busy_ns t) /. 1e6;
    sp_busy_ms = float_of_int (Core.busy_ns t.sp_core) /. 1e6;
  }

(* --- Flow introspection -------------------------------------------------- *)

let shard_summary ft =
  Json.List
    (List.init (Flow_table.num_shards ft) (fun i ->
         let s = Flow_table.shard_stats ft i in
         Json.Obj
           [
             ("shard", Json.Int i);
             ("flows", Json.Int s.Tas_shard.Flow_shards.flows);
             ("lookups", Json.Int s.Tas_shard.Flow_shards.lookups);
             ("installs", Json.Int s.Tas_shard.Flow_shards.installs);
             ("removes", Json.Int s.Tas_shard.Flow_shards.removes);
             ( "migrations_in",
               Json.Int s.Tas_shard.Flow_shards.migrations_in );
             ( "migrations_out",
               Json.Int s.Tas_shard.Flow_shards.migrations_out );
             ("lock_cycles", Json.Int s.Tas_shard.Flow_shards.lock_cycles);
           ]))

let flows ?shard t =
  let ft = Fast_path.flows t.fp in
  Json.Obj
    [
      ("now_ns", Json.Int (Tas_engine.Sim.now t.sim));
      ( "recovery_policy",
        Json.Str
          (Tas_recovery.Policy.name t.config.Config.recovery_policy) );
      ("count", Json.Int (Flow_table.count ft));
      ("shards", shard_summary ft);
      ("flows", Flow_table.dump ?shard ft);
      ("lifecycle", Slow_path.lifecycle_json t.sp);
    ]

let pp_flows fmt t =
  let rows = ref [] in
  Flow_table.iter (Fast_path.flows t.fp) (fun tuple fl -> rows := (tuple, fl) :: !rows);
  let rows =
    List.sort
      (fun (_, a) (_, b) ->
        compare (Flow_state.opaque a) (Flow_state.opaque b))
      !rows
  in
  Format.fprintf fmt "@[<v>%d flows at t=%dns (recovery: %s)@,"
    (List.length rows)
    (Tas_engine.Sim.now t.sim)
    (Tas_recovery.Policy.name t.config.Config.recovery_policy);
  List.iter
    (fun (tuple, fl) ->
      let module Ring = Tas_buffers.Ring_buffer in
      let state =
        if Flow_state.fin_sent fl || Flow_state.fin_received fl then "CLOSING"
        else if Flow_state.in_recovery fl then "RECOVERY"
        else "ESTAB"
      in
      let rate =
        match Rate_bucket.mode (Flow_state.bucket fl) with
        | Rate_bucket.Rate bps -> Printf.sprintf "rate %.1fMbps" (bps /. 1e6)
        | Rate_bucket.Window w -> Printf.sprintf "cwnd %dB" w
      in
      let scoreboard =
        match Flow_state.recovery_kind fl with
        | Tas_recovery.Policy.Reno -> ""
        | Sack | Rack_tlp ->
          let sb = (Flow_state.recovery fl).Tas_recovery.State.sb in
          Printf.sprintf "  sb live %d sacked %d lost %d"
            (Tas_recovery.Scoreboard.live_segs sb)
            (Tas_recovery.Scoreboard.live_sacked sb)
            (Tas_recovery.Scoreboard.live_lost sb)
      in
      Format.fprintf fmt
        "%-8s %a  txq %d/%d inflight %d rxq %d  wnd %d  %s  rtt %dus \
         dupacks %d frexmits %d%s@,"
        state Tas_proto.Addr.Four_tuple.pp tuple
        (Ring.used (Flow_state.tx_buf fl))
        (Ring.capacity (Flow_state.tx_buf fl))
        (Flow_state.tx_sent fl)
        (Ring.used (Flow_state.rx_buf fl))
        (Flow_state.window fl) rate
        (Flow_state.rtt_est fl / 1000)
        (Flow_state.dupack_cnt fl) (Flow_state.cnt_frexmits fl) scoreboard)
    rows;
  Format.fprintf fmt "@]"

let pp_snapshot fmt s =
  Format.fprintf fmt
    "@[<v>flows: %d (setups %d, teardowns %d)@,fast path: %d active cores, \
     %.1f ms busy@,rx: %d data + %d ack packets; tx: %d data + %d acks@,\
     recovery: %d ooo stored, %d payload drops, %d fast rexmits, %d \
     timeouts@,hardening: %d malformed drops, %d rsts sent@,\
     slow path: %d exceptions, %.1f ms busy@]"
    s.flows s.conn_setups s.conn_teardowns s.active_fp_cores s.fp_busy_ms
    s.rx_data_packets s.rx_ack_packets s.tx_data_packets s.acks_sent
    s.ooo_stored s.payload_drops s.fast_retransmits s.timeout_retransmits
    s.malformed_drops s.rsts_sent s.exceptions_forwarded s.sp_busy_ms
