module Seq32 = Tas_proto.Seq32
module Ring = Tas_buffers.Ring_buffer
module A = Flow_arena

(* Flag-byte bit assignments, shared verbatim between the arena's packed
   flags field and the boxed fallback's int. *)
let bit_in_recovery = 0
let bit_rx_notified = 1
let bit_tx_notified = 2
let bit_tx_interest = 3
let bit_tx_timer_armed = 4
let bit_fin_received = 5
let bit_fin_sent = 6
let bit_rx_closed = 7

(* The boxed (pre-arena) backing: one GC-managed record per flow, kept as
   the reference implementation behind [Config.flow_arena_enabled = false]
   and as the landing pad for handles that outlive their arena slot. *)
type scalars = {
  s_opaque : int;
  s_local_port : int;
  s_peer_ip : int;
  s_peer_port : int;
  s_peer_mac : int;
  s_peer_wscale : int;
  mutable s_context : int;
  mutable s_tx_sent : int;
  mutable s_seq : int;
  mutable s_ack : int;
  mutable s_window : int;
  mutable s_dupack_cnt : int;
  mutable s_cnt_ackb : int;
  mutable s_cnt_ecnb : int;
  mutable s_cnt_frexmits : int;
  mutable s_rtt_est : int;
  mutable s_ts_recent : int;
  mutable s_flags : int;
  mutable s_tx_span : int;
  mutable s_rx_span : int;
}

type store = Boxed of scalars | Slot of A.t * int

type t = {
  rx_buf : Ring.t;
  tx_buf : Ring.t;
  ooo : Tas_buffers.Ooo_interval.t;
  mutable bucket : Rate_bucket.t;
  mutable store : store;
  (* Loss-recovery companion (policy kind + sender scoreboard): boxed in
     both backings, like the rings and the out-of-order interval — the
     recovery subsystem's documented boxed side-table. Reno never grows
     it beyond the kind tag. *)
  rec_state : Tas_recovery.State.t;
}

exception Arena_exhausted

let create ?arena ?(recovery = Tas_recovery.Policy.Reno) ?(ooo_ranges = 1)
    ~opaque ~context ~bucket ~rx_buf_size ~tx_buf_size
    ~local_port ~peer_ip ~peer_port ~peer_mac ~tx_iss ~rx_next ~window
    ~peer_wscale () =
  let store =
    match arena with
    | None ->
      Boxed
        {
          s_opaque = opaque;
          s_local_port = local_port;
          s_peer_ip = peer_ip;
          s_peer_port = peer_port;
          s_peer_mac = peer_mac;
          s_peer_wscale = peer_wscale;
          s_context = context;
          s_tx_sent = 0;
          s_seq = tx_iss;
          s_ack = rx_next;
          s_window = window;
          s_dupack_cnt = 0;
          s_cnt_ackb = 0;
          s_cnt_ecnb = 0;
          s_cnt_frexmits = 0;
          s_rtt_est = 0;
          s_ts_recent = 0;
          s_flags = 0;
          s_tx_span = -1;
          s_rx_span = -1;
        }
    | Some a -> (
      match A.alloc a with
      | None -> raise Arena_exhausted
      | Some i ->
        A.set_opaque a i opaque;
        A.set_local_port a i local_port;
        A.set_peer_ip a i peer_ip;
        A.set_peer_port a i peer_port;
        A.set_peer_mac a i peer_mac;
        A.set_peer_wscale a i peer_wscale;
        A.set_context a i context;
        A.set_seq a i tx_iss;
        A.set_ack a i rx_next;
        A.set_window a i window;
        A.set_tx_span a i (-1);
        A.set_rx_span a i (-1);
        A.set_rx_size a i rx_buf_size;
        A.set_tx_size a i tx_buf_size;
        Slot (a, i))
  in
  {
    rx_buf = Ring.create rx_buf_size;
    tx_buf = Ring.create tx_buf_size;
    ooo = Tas_buffers.Ooo_interval.create ~max_ranges:ooo_ranges ();
    bucket;
    store;
    rec_state = Tas_recovery.State.create recovery;
  }

let is_arena_backed t = match t.store with Slot _ -> true | Boxed _ -> false
let slot t = match t.store with Slot (_, i) -> Some i | Boxed _ -> None

(* Teardown: materialize the scalar state back onto the heap, then return
   the slot. Handles retained past teardown (sockets, queued context
   events) keep reading coherent state and can never alias a recycled
   slot. *)
let release t =
  match t.store with
  | Boxed _ -> ()
  | Slot (a, i) ->
    let s =
      {
        s_opaque = A.get_opaque a i;
        s_local_port = A.get_local_port a i;
        s_peer_ip = A.get_peer_ip a i;
        s_peer_port = A.get_peer_port a i;
        s_peer_mac = A.get_peer_mac a i;
        s_peer_wscale = A.get_peer_wscale a i;
        s_context = A.get_context a i;
        s_tx_sent = A.get_tx_sent a i;
        s_seq = A.get_seq a i;
        s_ack = A.get_ack a i;
        s_window = A.get_window a i;
        s_dupack_cnt = A.get_dupack_cnt a i;
        s_cnt_ackb = A.get_cnt_ackb a i;
        s_cnt_ecnb = A.get_cnt_ecnb a i;
        s_cnt_frexmits = A.get_cnt_frexmits a i;
        s_rtt_est = A.get_rtt_est a i;
        s_ts_recent = A.get_ts_recent a i;
        s_flags = A.get_flags a i;
        s_tx_span = A.get_tx_span a i;
        s_rx_span = A.get_rx_span a i;
      }
    in
    t.store <- Boxed s;
    A.free a i

(* --- Accessors ---------------------------------------------------------- *)

let opaque t =
  match t.store with Boxed s -> s.s_opaque | Slot (a, i) -> A.get_opaque a i

let local_port t =
  match t.store with
  | Boxed s -> s.s_local_port
  | Slot (a, i) -> A.get_local_port a i

let peer_ip t =
  match t.store with Boxed s -> s.s_peer_ip | Slot (a, i) -> A.get_peer_ip a i

let peer_port t =
  match t.store with
  | Boxed s -> s.s_peer_port
  | Slot (a, i) -> A.get_peer_port a i

let peer_mac t =
  match t.store with
  | Boxed s -> s.s_peer_mac
  | Slot (a, i) -> A.get_peer_mac a i

let peer_wscale t =
  match t.store with
  | Boxed s -> s.s_peer_wscale
  | Slot (a, i) -> A.get_peer_wscale a i

let context t =
  match t.store with Boxed s -> s.s_context | Slot (a, i) -> A.get_context a i

let set_context t v =
  match t.store with
  | Boxed s -> s.s_context <- v
  | Slot (a, i) -> A.set_context a i v

let tx_sent t =
  match t.store with Boxed s -> s.s_tx_sent | Slot (a, i) -> A.get_tx_sent a i

let set_tx_sent t v =
  match t.store with
  | Boxed s -> s.s_tx_sent <- v
  | Slot (a, i) -> A.set_tx_sent a i v

let seq t =
  match t.store with Boxed s -> s.s_seq | Slot (a, i) -> A.get_seq a i

let set_seq t v =
  match t.store with
  | Boxed s -> s.s_seq <- v
  | Slot (a, i) -> A.set_seq a i v

let ack t =
  match t.store with Boxed s -> s.s_ack | Slot (a, i) -> A.get_ack a i

let set_ack t v =
  match t.store with
  | Boxed s -> s.s_ack <- v
  | Slot (a, i) -> A.set_ack a i v

let window t =
  match t.store with Boxed s -> s.s_window | Slot (a, i) -> A.get_window a i

let set_window t v =
  match t.store with
  | Boxed s -> s.s_window <- v
  | Slot (a, i) -> A.set_window a i v

let dupack_cnt t =
  match t.store with
  | Boxed s -> s.s_dupack_cnt
  | Slot (a, i) -> A.get_dupack_cnt a i

let set_dupack_cnt t v =
  match t.store with
  | Boxed s -> s.s_dupack_cnt <- v
  | Slot (a, i) -> A.set_dupack_cnt a i v

let cnt_ackb t =
  match t.store with
  | Boxed s -> s.s_cnt_ackb
  | Slot (a, i) -> A.get_cnt_ackb a i

let set_cnt_ackb t v =
  match t.store with
  | Boxed s -> s.s_cnt_ackb <- v
  | Slot (a, i) -> A.set_cnt_ackb a i v

let cnt_ecnb t =
  match t.store with
  | Boxed s -> s.s_cnt_ecnb
  | Slot (a, i) -> A.get_cnt_ecnb a i

let set_cnt_ecnb t v =
  match t.store with
  | Boxed s -> s.s_cnt_ecnb <- v
  | Slot (a, i) -> A.set_cnt_ecnb a i v

let cnt_frexmits t =
  match t.store with
  | Boxed s -> s.s_cnt_frexmits
  | Slot (a, i) -> A.get_cnt_frexmits a i

let set_cnt_frexmits t v =
  match t.store with
  | Boxed s -> s.s_cnt_frexmits <- v
  | Slot (a, i) -> A.set_cnt_frexmits a i v

let rtt_est t =
  match t.store with
  | Boxed s -> s.s_rtt_est
  | Slot (a, i) -> A.get_rtt_est a i

let set_rtt_est t v =
  match t.store with
  | Boxed s -> s.s_rtt_est <- v
  | Slot (a, i) -> A.set_rtt_est a i v

let ts_recent t =
  match t.store with
  | Boxed s -> s.s_ts_recent
  | Slot (a, i) -> A.get_ts_recent a i

let set_ts_recent t v =
  match t.store with
  | Boxed s -> s.s_ts_recent <- v
  | Slot (a, i) -> A.set_ts_recent a i v

let tx_span t =
  match t.store with Boxed s -> s.s_tx_span | Slot (a, i) -> A.get_tx_span a i

let set_tx_span t v =
  match t.store with
  | Boxed s -> s.s_tx_span <- v
  | Slot (a, i) -> A.set_tx_span a i v

let rx_span t =
  match t.store with Boxed s -> s.s_rx_span | Slot (a, i) -> A.get_rx_span a i

let set_rx_span t v =
  match t.store with
  | Boxed s -> s.s_rx_span <- v
  | Slot (a, i) -> A.set_rx_span a i v

let get_flag t bit =
  match t.store with
  | Boxed s -> s.s_flags land (1 lsl bit) <> 0
  | Slot (a, i) -> A.get_flag a i ~bit

let set_flag t bit v =
  match t.store with
  | Boxed s ->
    s.s_flags <-
      (if v then s.s_flags lor (1 lsl bit)
       else s.s_flags land lnot (1 lsl bit))
  | Slot (a, i) -> A.set_flag a i ~bit v

let in_recovery t = get_flag t bit_in_recovery
let set_in_recovery t v = set_flag t bit_in_recovery v
let rx_notified t = get_flag t bit_rx_notified
let set_rx_notified t v = set_flag t bit_rx_notified v
let tx_notified t = get_flag t bit_tx_notified
let set_tx_notified t v = set_flag t bit_tx_notified v
let tx_interest t = get_flag t bit_tx_interest
let set_tx_interest t v = set_flag t bit_tx_interest v
let tx_timer_armed t = get_flag t bit_tx_timer_armed
let set_tx_timer_armed t v = set_flag t bit_tx_timer_armed v
let fin_received t = get_flag t bit_fin_received
let set_fin_received t v = set_flag t bit_fin_received v
let fin_sent t = get_flag t bit_fin_sent
let set_fin_sent t v = set_flag t bit_fin_sent v
let rx_closed t = get_flag t bit_rx_closed
let set_rx_closed t v = set_flag t bit_rx_closed v

let rx_buf t = t.rx_buf
let tx_buf t = t.tx_buf
let ooo t = t.ooo
let bucket t = t.bucket
let set_bucket t b = t.bucket <- b
let recovery t = t.rec_state
let recovery_kind t = t.rec_state.Tas_recovery.State.kind

(* --- Derived views ------------------------------------------------------ *)

let tuple t ~local_ip =
  {
    Tas_proto.Addr.Four_tuple.local_ip;
    local_port = local_port t;
    peer_ip = peer_ip t;
    peer_port = peer_port t;
  }

let snd_una t = Seq32.add (seq t) (-tx_sent t)

(* The next expected byte [ack] sits at the rx ring's head offset; later
   sequence numbers land deeper into the buffer window. *)
let seq_of_rx_offset t off = Seq32.add (ack t) (off - Ring.head t.rx_buf)
let rx_offset_of_seq t s = Ring.head t.rx_buf + Seq32.diff s (ack t)
let tx_available t = Ring.used t.tx_buf - tx_sent t

(* Table 3: 102 bytes. *)
let state_bytes = Flow_arena.slot_bytes

(* Refresh the arena's shadow of state operationally held in companion
   structures (ring positions, the out-of-order interval) so a slot is a
   complete Table-3 image at snapshot time. The hot path never calls this;
   dumps and tests do. *)
let sync_shadow t =
  match t.store with
  | Boxed _ -> ()
  | Slot (a, i) ->
    A.set_rx_head a i (Ring.head t.rx_buf);
    A.set_rx_tail a i (Ring.tail t.rx_buf);
    A.set_tx_head a i (Ring.head t.tx_buf);
    A.set_tx_tail a i (Ring.tail t.tx_buf);
    A.set_rx_size a i (Ring.capacity t.rx_buf);
    A.set_tx_size a i (Ring.capacity t.tx_buf);
    (match Tas_buffers.Ooo_interval.interval t.ooo with
    | None ->
      A.set_ooo_start a i 0;
      A.set_ooo_len a i 0
    | Some (start, len) ->
      A.set_ooo_start a i start;
      A.set_ooo_len a i len)

let to_json t =
  let module J = Tas_telemetry.Json in
  sync_shadow t;
  let bucket =
    match Rate_bucket.mode t.bucket with
    | Rate_bucket.Rate bps ->
      J.Obj [ ("mode", J.Str "rate"); ("rate_bps", J.Float bps) ]
    | Rate_bucket.Window w ->
      J.Obj [ ("mode", J.Str "window"); ("cwnd_bytes", J.Int w) ]
  in
  let ooo =
    match Tas_buffers.Ooo_interval.interval t.ooo with
    | None -> J.Null
    | Some (start, len) ->
      J.Obj [ ("start", J.Int start); ("len", J.Int len) ]
  in
  J.Obj
    ([
      ("opaque", J.Int (opaque t));
      ("context", J.Int (context t));
      ("peer", J.Str
         (Printf.sprintf "%s:%d" (Tas_proto.Addr.ipv4_to_string (peer_ip t))
            (peer_port t)));
      ("local_port", J.Int (local_port t));
      ("seq", J.Int (seq t));
      ("ack", J.Int (ack t));
      ("snd_una", J.Int (snd_una t));
      ("tx_sent", J.Int (tx_sent t));
      ("tx_avail", J.Int (tx_available t));
      ("tx_buf_used", J.Int (Ring.used t.tx_buf));
      ("tx_buf_free", J.Int (Ring.free t.tx_buf));
      ("rx_buf_used", J.Int (Ring.used t.rx_buf));
      ("rx_buf_free", J.Int (Ring.free t.rx_buf));
      ("window", J.Int (window t));
      ("dupack_cnt", J.Int (dupack_cnt t));
      ("in_recovery", J.Bool (in_recovery t));
      ("bucket", bucket);
      ("ooo", ooo);
      ("cnt_ackb", J.Int (cnt_ackb t));
      ("cnt_ecnb", J.Int (cnt_ecnb t));
      ("cnt_frexmits", J.Int (cnt_frexmits t));
      ("rtt_est_ns", J.Int (rtt_est t));
      ("fin_received", J.Bool (fin_received t));
      ("fin_sent", J.Bool (fin_sent t));
    ]
    @
    (* The recovery object appears only for SACK-class flows: Reno flows
       keep the seed's exact JSON shape (the arena-vs-boxed differential
       battery and the seed digests compare this output verbatim). *)
    (match t.rec_state.Tas_recovery.State.kind with
    | Tas_recovery.Policy.Reno -> []
    | Tas_recovery.Policy.Sack | Tas_recovery.Policy.Rack_tlp ->
      [ ("recovery", Tas_recovery.State.to_json t.rec_state) ]))
