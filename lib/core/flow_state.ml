module Seq32 = Tas_proto.Seq32
module Ring = Tas_buffers.Ring_buffer

type t = {
  opaque : int;
  mutable context : int;
  mutable bucket : Rate_bucket.t;
  rx_buf : Ring.t;
  tx_buf : Ring.t;
  mutable tx_sent : int;
  mutable seq : Seq32.t;
  mutable ack : Seq32.t;
  mutable window : int;
  mutable dupack_cnt : int;
  mutable in_recovery : bool;
  peer_wscale : int;
  local_port : Tas_proto.Addr.port;
  peer_ip : Tas_proto.Addr.ipv4;
  peer_port : Tas_proto.Addr.port;
  peer_mac : Tas_proto.Addr.mac;
  ooo : Tas_buffers.Ooo_interval.t;
  mutable cnt_ackb : int;
  mutable cnt_ecnb : int;
  mutable cnt_frexmits : int;
  mutable rtt_est : int;
  mutable ts_recent : int;
  mutable rx_notified : bool;
  mutable tx_notified : bool;
  mutable tx_interest : bool;
  mutable tx_timer_armed : bool;
  mutable fin_received : bool;
  mutable fin_sent : bool;
  mutable rx_closed : bool;
  mutable tx_span : int;
  mutable rx_span : int;
}

let create ~opaque ~context ~bucket ~rx_buf_size ~tx_buf_size ~local_port
    ~peer_ip ~peer_port ~peer_mac ~tx_iss ~rx_next ~window ~peer_wscale =
  {
    opaque;
    context;
    bucket;
    rx_buf = Ring.create rx_buf_size;
    tx_buf = Ring.create tx_buf_size;
    tx_sent = 0;
    seq = tx_iss;
    ack = rx_next;
    window;
    dupack_cnt = 0;
    in_recovery = false;
    peer_wscale;
    local_port;
    peer_ip;
    peer_port;
    peer_mac;
    ooo = Tas_buffers.Ooo_interval.create ();
    cnt_ackb = 0;
    cnt_ecnb = 0;
    cnt_frexmits = 0;
    rtt_est = 0;
    ts_recent = 0;
    rx_notified = false;
    tx_notified = false;
    tx_interest = false;
    tx_timer_armed = false;
    fin_received = false;
    fin_sent = false;
    rx_closed = false;
    tx_span = -1;
    rx_span = -1;
  }

let tuple t ~local_ip =
  {
    Tas_proto.Addr.Four_tuple.local_ip;
    local_port = t.local_port;
    peer_ip = t.peer_ip;
    peer_port = t.peer_port;
  }

let snd_una t = Seq32.add t.seq (-t.tx_sent)

(* The next expected byte [ack] sits at the rx ring's head offset; later
   sequence numbers land deeper into the buffer window. *)
let seq_of_rx_offset t off = Seq32.add t.ack (off - Ring.head t.rx_buf)
let rx_offset_of_seq t s = Ring.head t.rx_buf + Seq32.diff s t.ack
let tx_available t = Ring.used t.tx_buf - t.tx_sent

(* Table 3: 102 bytes. *)
let state_bytes = 102

let to_json t =
  let module J = Tas_telemetry.Json in
  let bucket =
    match Rate_bucket.mode t.bucket with
    | Rate_bucket.Rate bps ->
      J.Obj [ ("mode", J.Str "rate"); ("rate_bps", J.Float bps) ]
    | Rate_bucket.Window w ->
      J.Obj [ ("mode", J.Str "window"); ("cwnd_bytes", J.Int w) ]
  in
  let ooo =
    match Tas_buffers.Ooo_interval.interval t.ooo with
    | None -> J.Null
    | Some (start, len) ->
      J.Obj [ ("start", J.Int start); ("len", J.Int len) ]
  in
  J.Obj
    [
      ("opaque", J.Int t.opaque);
      ("context", J.Int t.context);
      ("peer", J.Str
         (Printf.sprintf "%s:%d" (Tas_proto.Addr.ipv4_to_string t.peer_ip)
            t.peer_port));
      ("local_port", J.Int t.local_port);
      ("seq", J.Int t.seq);
      ("ack", J.Int t.ack);
      ("snd_una", J.Int (snd_una t));
      ("tx_sent", J.Int t.tx_sent);
      ("tx_avail", J.Int (tx_available t));
      ("tx_buf_used", J.Int (Ring.used t.tx_buf));
      ("tx_buf_free", J.Int (Ring.free t.tx_buf));
      ("rx_buf_used", J.Int (Ring.used t.rx_buf));
      ("rx_buf_free", J.Int (Ring.free t.rx_buf));
      ("window", J.Int t.window);
      ("dupack_cnt", J.Int t.dupack_cnt);
      ("in_recovery", J.Bool t.in_recovery);
      ("bucket", bucket);
      ("ooo", ooo);
      ("cnt_ackb", J.Int t.cnt_ackb);
      ("cnt_ecnb", J.Int t.cnt_ecnb);
      ("cnt_frexmits", J.Int t.cnt_frexmits);
      ("rtt_est_ns", J.Int t.rtt_est);
      ("fin_received", J.Bool t.fin_received);
      ("fin_sent", J.Bool t.fin_sent);
    ]
