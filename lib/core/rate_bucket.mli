(** Per-flow rate buckets (paper §3.1: "the fast path fills a per-flow
    bucket with the amount of new data to send. Asynchronously, the fast
    path drains these buckets, depending on a slow path configured
    per-connection rate-limit or send window size").

    In rate mode this is a token bucket refilled continuously at the
    slow-path-configured rate with a small burst cap, giving per-flow paced
    transmission (the smoothing behind Fig. 13's fairness). In window mode
    the bucket is pass-through and the congestion window bounds in-flight
    data instead. *)

type mode = Rate of float  (** bytes refill from bits-per-second rate *)
          | Window of int  (** congestion window, bytes *)

type t

val create : Tas_engine.Sim.t -> mode -> burst_bytes:int -> t

val set_control : t -> Tas_tcp.Interval_cc.control -> unit
(** Install a new rate/window from the slow path's control loop. *)

val mode : t -> mode

val tx_budget : t -> in_flight:int -> want:int -> int
(** How many of [want] bytes may be sent now given tokens (rate mode) or
    remaining window minus [in_flight] (window mode). Consumes tokens for
    the granted amount. *)

val ns_until_bytes : t -> int -> Tas_engine.Time_ns.t option
(** Time until [n] bytes of tokens will be available; [None] in window mode
    (window opens on ACKs, not on a timer) or when available now. *)

val ns_until_bytes_int : t -> int -> int
(** Same, encoded allocation-free for the transmit hot path: [-1] where
    {!ns_until_bytes} is [None], the delay otherwise ([max_int] when the
    configured rate is zero). *)
