(** The TAS slow path (paper §3.2).

    Runs on its own core. Handles everything with non-constant per-packet
    cost: connection setup/teardown (TCP handshakes, port allocation),
    congestion-control policy (one control-loop iteration per flow per
    control interval, installing new rates/windows into fast-path state),
    retransmission timeouts (detected by observing stalled unacknowledged
    data across control intervals), and the workload-proportionality
    controller that grows and shrinks the fast path's core set (§3.4). *)

type t

val log_src : Logs.src
(** Connection-control event log (debug level): establishment, teardown,
    timeout retransmissions. The fast path never logs. *)

type conn_error =
  | Timeout  (** handshake retries exhausted with no answer *)
  | Refused  (** peer answered the SYN with an RST (nobody listening) *)
  | Reset  (** peer aborted the half-open handshake *)

val conn_error_name : conn_error -> string

(** Callbacks a connection owner (libTAS) registers for slow-path events.
    All fire in slow-path context; libTAS re-schedules onto app cores. *)
type conn_callbacks = {
  established : Flow_state.t -> unit;
  failed : conn_error -> unit;  (** connection attempt did not establish *)
  reset : Flow_state.t -> unit;
      (** established flow aborted by a peer RST or by dead-flow reaping;
          [closed] still fires as the state is removed *)
  peer_closed : Flow_state.t -> unit;  (** FIN received from the peer *)
  closed : Flow_state.t -> unit;  (** flow fully removed *)
}

val create :
  Tas_engine.Sim.t ->
  fast_path:Fast_path.t ->
  core:Tas_cpu.Core.t ->
  config:Config.t ->
  t
(** Registers itself as the fast path's exception handler and starts the
    control-loop and (if configured) core-scaling timers. *)

val listen :
  t ->
  port:int ->
  (Tas_proto.Addr.Four_tuple.t -> (int * int * conn_callbacks) option) ->
  unit
(** [listen t ~port accept] announces a listener. On an incoming SYN,
    [accept tuple] decides: [Some (opaque, context_id, callbacks)] accepts
    the connection, [None] refuses it. *)

val connect :
  t ->
  opaque:int ->
  context_id:int ->
  dst_ip:Tas_proto.Addr.ipv4 ->
  dst_port:int ->
  conn_callbacks ->
  unit
(** Open a connection ([new_flow] command, Fig. 3). *)

val close : t -> Flow_state.t -> unit
(** Graceful close: FIN is emitted once the transmit buffer drains. *)

val flow_count : t -> int

val conn_setups : t -> int
val conn_teardowns : t -> int
val timeout_retransmits : t -> int

val rsts_sent : t -> int
(** RSTs generated: segments for unknown tuples, refused SYNs, reaped
    flows. *)

val fin_retry_exhausted : t -> int
(** Flows forcibly torn down after [Config.fin_retries] unanswered FINs. *)

val flows_reaped : t -> int
(** Flows reaped by the dead-flow timeout ([Config.dead_flow_timeout_ns]). *)

val arena_refusals : t -> int
(** Connections refused (RST + [failed Refused]) because the flow arena had
    no free slot. Always 0 with the boxed backing. *)

val arena : t -> Flow_arena.t option
(** The off-heap flow-state arena, when [Config.flow_arena_enabled]. *)

val lifecycle_json : t -> Tas_telemetry.Json.t
(** The connection-lifecycle event log as JSON: a bounded FIFO (most recent
    1024 events) of timestamped [syn_sent] / [syn_received] / [established]
    / [close_requested] / [fin_acked] / [peer_fin] / [closed] /
    [handshake_failed] / [rst] / [rst_sent] / [fin_retry_exhausted] /
    [flow_reaped] transitions with their 4-tuples, plus a count of events
    discarded once the buffer filled. *)

val register : t -> Tas_telemetry.Metrics.t -> unit
(** Register the slow path's counters ([sp_*]) plus flow/handshake gauges
    into a metrics registry (read-through closures; the existing mutable
    fields stay the source of truth). Trace events go to the fast path's
    shared ring. *)

val set_scale_observer : t -> (Tas_engine.Time_ns.t -> int -> unit) -> unit
(** Observe fast-path core count changes (for the Fig. 14/15 series). *)

val controller : t -> Tas_control.Controller.t option
(** The elastic core controller driving all dynamic scaling
    ([Config.scale_policy] evaluated every [scale_check_interval_ns]);
    [None] unless [Config.dynamic_scaling]. Exposes the decision audit
    trail and accepts a p99 latency probe for the [Slo] policy. *)

val kick_control_loop : t -> unit
(** Force an immediate control-loop pass (testing). *)
