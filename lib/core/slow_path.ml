module Sim = Tas_engine.Sim
module Nic = Tas_netsim.Nic
module Core = Tas_cpu.Core
module Addr = Tas_proto.Addr
module Seq32 = Tas_proto.Seq32
module Packet = Tas_proto.Packet
module Tcp_header = Tas_proto.Tcp_header
module Ring = Tas_buffers.Ring_buffer
module Interval_cc = Tas_tcp.Interval_cc
module Metrics = Tas_telemetry.Metrics
module Trace = Tas_telemetry.Trace

(* Connection-control events are logged under this source (cold path only;
   the fast path stays log-free). Enable with
   [Logs.Src.set_level Slow_path.log_src (Some Logs.Debug)]. *)
let log_src = Logs.Src.create "tas.slow_path" ~doc:"TAS slow path"

module Log = (val Logs.src_log log_src : Logs.LOG)

type conn_error = Timeout | Refused | Reset

let conn_error_name = function
  | Timeout -> "timeout"
  | Refused -> "refused"
  | Reset -> "reset"

type conn_callbacks = {
  established : Flow_state.t -> unit;
  failed : conn_error -> unit;
  reset : Flow_state.t -> unit;
  peer_closed : Flow_state.t -> unit;
  closed : Flow_state.t -> unit;
}

module Tuple_tbl = Hashtbl.Make (struct
  type t = Addr.Four_tuple.t

  let equal = Addr.Four_tuple.equal
  let hash = Addr.Four_tuple.hash
end)

type pending_state = Syn_sent | Syn_received

type pending = {
  p_tuple : Addr.Four_tuple.t;
  p_opaque : int;
  p_context : int;
  p_iss : Seq32.t;
  mutable p_peer_isn : Seq32.t;
  mutable p_peer_window : int;
  mutable p_peer_wscale : int;
  mutable p_peer_ts : int;
  mutable p_state : pending_state;
  mutable p_retries : int;
  mutable p_timer : Sim.event option;
  p_cb : conn_callbacks;
}

type flow_entry = {
  flow : Flow_state.t;
  f_tuple : Addr.Four_tuple.t;
  cc : Interval_cc.t;
  f_cb : conn_callbacks;
  mutable last_una : Seq32.t;
  mutable stall_since : int;  (* -1 = not currently stalled *)
  mutable next_cc_due : int;
  mutable last_collect : int;
  mutable close_requested : bool;
  mutable fin_acked : bool;
  mutable fin_timer : Sim.event option;
  mutable fin_retries : int;
  mutable reap_una : Seq32.t;  (* snd_una at the last observed progress *)
  mutable reap_ack : Seq32.t;  (* rcv ack at the last observed progress *)
  mutable progress_since : int;  (* timestamp of the last observed progress *)
  mutable removed : bool;
}

type lifecycle_event = {
  lc_ts : Tas_engine.Time_ns.t;
  lc_event : string;
  lc_tuple : Addr.Four_tuple.t;
}

let lifecycle_limit = 1024

type t = {
  sim : Sim.t;
  fp : Fast_path.t;
  core : Core.t;
  config : Config.t;
  arena : Flow_arena.t option;
      (* off-heap Table-3 records; [None] = boxed reference backing *)
  listeners : (int, Addr.Four_tuple.t -> (int * int * conn_callbacks) option) Hashtbl.t;
  pending : pending Tuple_tbl.t;
  entries : flow_entry Tuple_tbl.t;
  lifecycle : lifecycle_event Queue.t;
  mutable lifecycle_dropped : int;
  mutable next_iss : int;
  mutable conn_setups : int;
  mutable conn_teardowns : int;
  mutable timeout_retransmits : int;
  mutable rsts_sent : int;
  mutable fin_retry_exhausted : int;
  mutable flows_reaped : int;
  mutable arena_refusals : int;
  mutable scale_observer : Tas_engine.Time_ns.t -> int -> unit;
  mutable controller : Tas_control.Controller.t option;
      (* the elastic core controller; [Some] iff [Config.dynamic_scaling] *)
}

(* Connection lifecycle log: a bounded FIFO of (timestamp, event, tuple).
   Oldest entries are discarded once full — recent history matters most for
   post-hoc diagnosis, and the slow path must stay allocation-bounded. *)
let lifecycle_ev t event tuple =
  if Queue.length t.lifecycle >= lifecycle_limit then begin
    ignore (Queue.pop t.lifecycle);
    t.lifecycle_dropped <- t.lifecycle_dropped + 1
  end;
  Queue.add { lc_ts = Sim.now t.sim; lc_event = event; lc_tuple = tuple }
    t.lifecycle

let lifecycle_json t =
  let module J = Tas_telemetry.Json in
  let evs =
    Queue.fold
      (fun acc e ->
        J.Obj
          [
            ("ts_ns", J.Int e.lc_ts);
            ("event", J.Str e.lc_event);
            ("tuple", J.Str (Format.asprintf "%a" Addr.Four_tuple.pp e.lc_tuple));
          ]
        :: acc)
      [] t.lifecycle
  in
  J.Obj
    [
      ("dropped", J.Int t.lifecycle_dropped);
      ("events", J.List (List.rev evs));
    ]

let flow_count t = Tuple_tbl.length t.entries
let conn_setups t = t.conn_setups
let conn_teardowns t = t.conn_teardowns
let timeout_retransmits t = t.timeout_retransmits
let rsts_sent t = t.rsts_sent
let fin_retry_exhausted t = t.fin_retry_exhausted
let flows_reaped t = t.flows_reaped
let arena_refusals t = t.arena_refusals
let arena t = t.arena
let set_scale_observer t f = t.scale_observer <- f
let controller t = t.controller

(* The slow path shares the fast path's trace ring: one totally-ordered
   event stream per TAS instance. *)
let trace_ev t kind ~flow =
  let tr = Fast_path.trace t.fp in
  if Trace.enabled tr then
    Trace.record tr ~ts:(Sim.now t.sim) ~kind ~core:(Core.id t.core) ~flow

let register t m =
  let c name help f = Metrics.counter_fn m ~help name f in
  c "sp_conn_setups" "connections established" (fun () -> t.conn_setups);
  c "sp_conn_teardowns" "connections removed" (fun () -> t.conn_teardowns);
  c "sp_timeout_retransmits" "slow-path timeout retransmissions" (fun () ->
      t.timeout_retransmits);
  c "sp_rsts_sent" "RST segments generated" (fun () -> t.rsts_sent);
  c "sp_fin_retry_exhausted" "flows torn down after the FIN retry cap"
    (fun () -> t.fin_retry_exhausted);
  c "sp_flows_reaped" "dead flows reaped for lack of sequence progress"
    (fun () -> t.flows_reaped);
  c "sp_arena_refusals" "connections refused because the flow arena was full"
    (fun () -> t.arena_refusals);
  c "sp_lock_cycles"
    "spinlock cycles charged for the slow path's cross-core flow-table \
     touches (installs, removals, migrations; cost model only)"
    (fun () -> Flow_table.remote_lock_cycles (Fast_path.flows t.fp));
  Metrics.gauge_fn m ~help:"established flows tracked by the slow path"
    "sp_flows" (fun () -> float_of_int (Tuple_tbl.length t.entries));
  Metrics.gauge_fn m ~help:"handshakes in progress" "sp_pending_handshakes"
    (fun () -> float_of_int (Tuple_tbl.length t.pending))

let now_us t = Sim.now t.sim / 1000

(* --- Slow-path packet construction ------------------------------------ *)

let build t ~tuple ~(flags : Tcp_header.flags) ~seq ~ack_no ~window ~with_mss
    ~ts_ecr =
  let nic = Fast_path.nic t.fp in
  let tcp =
    {
      Tcp_header.src_port = tuple.Addr.Four_tuple.local_port;
      dst_port = tuple.Addr.Four_tuple.peer_port;
      seq;
      ack = ack_no;
      flags;
      window;
      options =
        {
          Tcp_header.mss = (if with_mss then Some t.config.Config.mss else None);
          wscale =
            (if flags.Tcp_header.syn then Some t.config.Config.wscale else None);
          timestamp = Some (now_us t land 0xFFFF_FFFF, ts_ecr);
          sack = [];
        };
    }
  in
  let peer_id = Addr.host_id_of_ip tuple.Addr.Four_tuple.peer_ip in
  Packet.make ~src_mac:(Nic.mac nic) ~dst_mac:(Addr.host_mac peer_id)
    ~src_ip:tuple.Addr.Four_tuple.local_ip
    ~dst_ip:tuple.Addr.Four_tuple.peer_ip ~ecn:Tas_proto.Ipv4_header.Not_ect
    ~tcp ~payload:Bytes.empty ()

let syn_flags = { Tcp_header.no_flags with Tcp_header.syn = true }
let synack_flags = { Tcp_header.no_flags with Tcp_header.syn = true; ack = true }
let rst_flags = { Tcp_header.no_flags with Tcp_header.rst = true; ack = true }

(* Segments for tuples with no local state (no listener, no pending
   handshake, no flow) are answered with an RST so the peer aborts promptly
   instead of retransmitting into the void. *)
let send_rst t ~tuple ~seq ~ack_no =
  t.rsts_sent <- t.rsts_sent + 1;
  lifecycle_ev t "rst_sent" tuple;
  trace_ev t Trace.Rst_tx ~flow:(-1);
  Fast_path.send_raw t.fp
    (build t ~tuple ~flags:rst_flags ~seq ~ack_no ~window:0 ~with_mss:false
       ~ts_ecr:0)

let send_syn t p =
  Fast_path.send_raw t.fp
    (build t ~tuple:p.p_tuple ~flags:syn_flags ~seq:p.p_iss ~ack_no:0
       ~window:(min 65535 t.config.Config.rx_buf_size)
       ~with_mss:true ~ts_ecr:0)

let send_synack t p =
  Fast_path.send_raw t.fp
    (build t ~tuple:p.p_tuple ~flags:synack_flags ~seq:p.p_iss
       ~ack_no:(Seq32.add p.p_peer_isn 1)
       ~window:(min 65535 t.config.Config.rx_buf_size)
       ~with_mss:true ~ts_ecr:p.p_peer_ts)

(* --- Handshake timers --------------------------------------------------- *)

let cancel_pending_timer t p =
  match p.p_timer with
  | Some ev ->
    Sim.cancel t.sim ev;
    p.p_timer <- None
  | None -> ()

let rec arm_pending_timer t p =
  cancel_pending_timer t p;
  p.p_timer <-
    Some
      (Sim.schedule t.sim t.config.Config.handshake_rto_ns (fun () ->
           p.p_timer <- None;
           if Tuple_tbl.mem t.pending p.p_tuple then begin
             if p.p_retries >= t.config.Config.handshake_retries then begin
               Tuple_tbl.remove t.pending p.p_tuple;
               lifecycle_ev t "handshake_failed" p.p_tuple;
               p.p_cb.failed Timeout
             end
             else begin
               p.p_retries <- p.p_retries + 1;
               (match p.p_state with
               | Syn_sent -> send_syn t p
               | Syn_received -> send_synack t p);
               arm_pending_timer t p
             end
           end))

(* --- Establishment ------------------------------------------------------ *)

let fresh_iss t =
  t.next_iss <- t.next_iss + 1;
  Seq32.of_int (t.next_iss * 83777)

let make_bucket t =
  let initial =
    if Config.rate_mode t.config then
      Interval_cc.Rate_bps t.config.Config.initial_rate_bps
    else Interval_cc.Window_bytes (10 * t.config.Config.mss)
  in
  let bucket =
    Rate_bucket.create t.sim
      (match initial with
      | Interval_cc.Rate_bps r -> Rate_bucket.Rate r
      | Interval_cc.Window_bytes w -> Rate_bucket.Window w)
      ~burst_bytes:(2 * t.config.Config.mss)
  in
  (bucket, Interval_cc.create t.config.Config.cc ~initial)

let establish t p =
  cancel_pending_timer t p;
  Tuple_tbl.remove t.pending p.p_tuple;
  let exhausted =
    match t.arena with
    | Some a -> Flow_arena.available a = 0
    | None -> false
  in
  if exhausted then begin
    (* No slot for the flow's state: refuse cleanly rather than fall back
       to heap allocation — exactly what a full C flow-state array does. *)
    t.arena_refusals <- t.arena_refusals + 1;
    lifecycle_ev t "arena_exhausted" p.p_tuple;
    Log.debug (fun m ->
        m "arena exhausted, refusing %a" Addr.Four_tuple.pp p.p_tuple);
    send_rst t ~tuple:p.p_tuple ~seq:(Seq32.add p.p_iss 1)
      ~ack_no:(Seq32.add p.p_peer_isn 1);
    p.p_cb.failed Refused;
    None
  end
  else begin
    let bucket, cc = make_bucket t in
    let flow =
      Flow_state.create ?arena:t.arena
        ~recovery:t.config.Config.recovery_policy
        ~ooo_ranges:
          (match t.config.Config.recovery_policy with
          | Tas_recovery.Policy.Reno -> 1
          | Tas_recovery.Policy.Sack | Tas_recovery.Policy.Rack_tlp ->
            max 1 t.config.Config.sack_max_ranges)
        ~opaque:p.p_opaque ~context:p.p_context ~bucket
        ~rx_buf_size:t.config.Config.rx_buf_size
        ~tx_buf_size:t.config.Config.tx_buf_size
        ~local_port:p.p_tuple.Addr.Four_tuple.local_port
        ~peer_ip:p.p_tuple.Addr.Four_tuple.peer_ip
        ~peer_port:p.p_tuple.Addr.Four_tuple.peer_port
        ~peer_mac:
          (Addr.host_mac (Addr.host_id_of_ip p.p_tuple.Addr.Four_tuple.peer_ip))
        ~tx_iss:(Seq32.add p.p_iss 1)
        ~rx_next:(Seq32.add p.p_peer_isn 1)
        ~window:p.p_peer_window ~peer_wscale:p.p_peer_wscale ()
    in
    Flow_state.set_ts_recent flow p.p_peer_ts;
    let entry =
      {
        flow;
        f_tuple = p.p_tuple;
        cc;
        f_cb = p.p_cb;
        last_una = Flow_state.snd_una flow;
        stall_since = -1;
        next_cc_due = 0;
        last_collect = Sim.now t.sim;
        close_requested = false;
        fin_acked = false;
        fin_timer = None;
        fin_retries = 0;
        reap_una = Flow_state.snd_una flow;
        reap_ack = Flow_state.ack flow;
        progress_since = Sim.now t.sim;
        removed = false;
      }
    in
    Tuple_tbl.add t.entries p.p_tuple entry;
    Fast_path.install_flow t.fp ~tuple:p.p_tuple flow;
    t.conn_setups <- t.conn_setups + 1;
    trace_ev t Trace.Conn_setup ~flow:(Flow_state.opaque flow);
    lifecycle_ev t "established" p.p_tuple;
    Log.debug (fun m ->
        m "established %a" Addr.Four_tuple.pp p.p_tuple);
    p.p_cb.established flow;
    Some entry
  end

let remove_entry t entry =
  if not entry.removed then begin
    entry.removed <- true;
    (match entry.fin_timer with
    | Some ev -> Sim.cancel t.sim ev
    | None -> ());
    Fast_path.remove_flow t.fp ~tuple:entry.f_tuple;
    Tuple_tbl.remove t.entries entry.f_tuple;
    t.conn_teardowns <- t.conn_teardowns + 1;
    trace_ev t Trace.Conn_teardown ~flow:(Flow_state.opaque entry.flow);
    lifecycle_ev t "closed" entry.f_tuple;
    Log.debug (fun m -> m "removed %a" Addr.Four_tuple.pp entry.f_tuple);
    entry.f_cb.closed entry.flow;
    (* Return the flow's arena slot; stale handles (sockets, queued context
       events) keep a coherent boxed copy of the final state. *)
    Flow_state.release entry.flow
  end

(* --- Teardown ----------------------------------------------------------- *)

let fin_seq entry = Flow_state.seq entry.flow

let rec try_emit_fin t entry =
  let flow = entry.flow in
  if
    entry.close_requested
    && (not (Flow_state.fin_sent flow))
    && Ring.used (Flow_state.tx_buf flow) = 0
    && Flow_state.tx_sent flow = 0
  then begin
    Fast_path.emit_fin t.fp flow;
    arm_fin_timer t entry
  end

and arm_fin_timer t entry =
  (match entry.fin_timer with
  | Some ev -> Sim.cancel t.sim ev
  | None -> ());
  entry.fin_timer <-
    Some
      (Sim.schedule t.sim t.config.Config.fin_rto_ns (fun () ->
           entry.fin_timer <- None;
           if (not entry.removed) && not entry.fin_acked then begin
             if entry.fin_retries >= t.config.Config.fin_retries then begin
               (* The peer stopped acknowledging mid-close: force teardown
                  rather than retransmitting the FIN forever. *)
               t.fin_retry_exhausted <- t.fin_retry_exhausted + 1;
               lifecycle_ev t "fin_retry_exhausted" entry.f_tuple;
               Log.debug (fun m ->
                   m "fin retry exhausted %a" Addr.Four_tuple.pp entry.f_tuple);
               remove_entry t entry
             end
             else begin
               entry.fin_retries <- entry.fin_retries + 1;
               Flow_state.set_fin_sent entry.flow false;
               try_emit_fin t entry
             end
           end))

let maybe_finish_teardown t entry =
  if entry.fin_acked && Flow_state.fin_received entry.flow then
    (* Abbreviated TIME_WAIT (1 ms). *)
    ignore (Sim.schedule t.sim 1_000_000 (fun () -> remove_entry t entry))

(* --- Exception processing ----------------------------------------------- *)

let handle_syn t pkt tuple =
  let tcp = pkt.Packet.tcp in
  match Tuple_tbl.find_opt t.pending tuple with
  | Some p ->
    (* Duplicate SYN: resend the SYN-ACK. *)
    if p.p_state = Syn_received then send_synack t p
  | None ->
    if not (Tuple_tbl.mem t.entries tuple) then begin
      (* No listener (or the listener refused): RST so the connecting peer
         fails fast instead of retrying the SYN to exhaustion. *)
      let refuse () =
        send_rst t ~tuple ~seq:0 ~ack_no:(Seq32.add tcp.Tcp_header.seq 1)
      in
      match Hashtbl.find_opt t.listeners tuple.Addr.Four_tuple.local_port with
      | None -> refuse ()
      | Some accept_fn -> begin
        match accept_fn tuple with
        | None -> refuse ()
        | Some (opaque, context_id, cb) ->
          let p =
            {
              p_tuple = tuple;
              p_opaque = opaque;
              p_context = context_id;
              p_iss = fresh_iss t;
              p_peer_isn = tcp.Tcp_header.seq;
              p_peer_window = tcp.Tcp_header.window;
              p_peer_wscale =
                (match tcp.Tcp_header.options.Tcp_header.wscale with
                | Some w -> w
                | None -> 0);
              p_peer_ts =
                (match tcp.Tcp_header.options.Tcp_header.timestamp with
                | Some (v, _) -> v
                | None -> 0);
              p_state = Syn_received;
              p_retries = 0;
              p_timer = None;
              p_cb = cb;
            }
          in
          Tuple_tbl.add t.pending tuple p;
          lifecycle_ev t "syn_received" tuple;
          send_synack t p;
          arm_pending_timer t p
      end
    end

let handle_synack t pkt tuple =
  let tcp = pkt.Packet.tcp in
  match Tuple_tbl.find_opt t.pending tuple with
  | Some p
    when p.p_state = Syn_sent && tcp.Tcp_header.ack = Seq32.add p.p_iss 1 ->
    p.p_peer_isn <- tcp.Tcp_header.seq;
    p.p_peer_window <- tcp.Tcp_header.window;
    (match tcp.Tcp_header.options.Tcp_header.wscale with
    | Some w -> p.p_peer_wscale <- w
    | None -> p.p_peer_wscale <- 0);
    (match tcp.Tcp_header.options.Tcp_header.timestamp with
    | Some (v, _) -> p.p_peer_ts <- v
    | None -> ());
    (match establish t p with
    | None -> () (* arena full; the peer got an RST *)
    | Some entry ->
      (* Complete the handshake: ACK the SYN-ACK. *)
      Fast_path.send_raw t.fp
        (build t ~tuple ~flags:Tcp_header.ack_flags
           ~seq:(Flow_state.seq entry.flow)
           ~ack_no:(Flow_state.ack entry.flow)
           ~window:(min 65535 t.config.Config.rx_buf_size)
           ~with_mss:false ~ts_ecr:p.p_peer_ts);
      (* Data may already be queued by an eager application. *)
      if Flow_state.tx_available entry.flow > 0 then
        Fast_path.notify_tx t.fp entry.flow)
  | _ -> ()

let handle_handshake_ack t pkt tuple =
  let tcp = pkt.Packet.tcp in
  match Tuple_tbl.find_opt t.pending tuple with
  | Some p
    when p.p_state = Syn_received && tcp.Tcp_header.ack = Seq32.add p.p_iss 1
    ->
    p.p_peer_window <- tcp.Tcp_header.window lsl p.p_peer_wscale;
    (match establish t p with
    | None -> ()
    | Some _ ->
      if Bytes.length pkt.Packet.payload > 0 then Fast_path.reinject t.fp pkt)
  | _ -> begin
    (* Possibly an ACK of our FIN. *)
    match Tuple_tbl.find_opt t.entries tuple with
    | Some entry
      when Flow_state.fin_sent entry.flow
           && tcp.Tcp_header.ack = Seq32.add (fin_seq entry) 1 ->
      entry.fin_acked <- true;
      lifecycle_ev t "fin_acked" entry.f_tuple;
      if not (Flow_state.fin_received entry.flow) then
        (* Half-closed: wait for the peer's FIN. *)
        ()
      else maybe_finish_teardown t entry
    | Some _ -> ()
    | None ->
      (* Neither a handshake in progress nor an installed flow: the tuple is
         unknown here (e.g. state already reclaimed). RST so the peer stops
         retransmitting. *)
      if not (Tuple_tbl.mem t.pending tuple) then
        send_rst t ~tuple ~seq:tcp.Tcp_header.ack
          ~ack_no:
            (Seq32.add tcp.Tcp_header.seq (Bytes.length pkt.Packet.payload))
  end

let handle_fin t pkt tuple =
  let tcp = pkt.Packet.tcp in
  match Tuple_tbl.find_opt t.entries tuple with
  | None ->
    if not (Tuple_tbl.mem t.pending tuple) then
      send_rst t ~tuple ~seq:tcp.Tcp_header.ack
        ~ack_no:
          (Seq32.add tcp.Tcp_header.seq (Bytes.length pkt.Packet.payload + 1))
  | Some entry ->
    let flow = entry.flow in
    let fin_pos = Seq32.add tcp.Tcp_header.seq (Bytes.length pkt.Packet.payload) in
    (* Accept the FIN only when all preceding data has been received;
       otherwise the peer retransmits. *)
    if fin_pos = Flow_state.ack flow && not (Flow_state.fin_received flow)
    then begin
      Flow_state.set_fin_received flow true;
      Flow_state.set_ack flow (Seq32.add (Flow_state.ack flow) 1);
      Fast_path.send_raw t.fp
        (build t ~tuple ~flags:Tcp_header.ack_flags ~seq:(Flow_state.seq flow)
           ~ack_no:(Flow_state.ack flow)
           ~window:(min 65535 t.config.Config.rx_buf_size)
           ~with_mss:false ~ts_ecr:(Flow_state.ts_recent flow));
      lifecycle_ev t "peer_fin" entry.f_tuple;
      entry.f_cb.peer_closed flow;
      maybe_finish_teardown t entry
    end
    else if
      Flow_state.fin_received flow
      && fin_pos = Seq32.add (Flow_state.ack flow) (-1)
    then
      (* Duplicate FIN: re-ack. *)
      Fast_path.send_raw t.fp
        (build t ~tuple ~flags:Tcp_header.ack_flags ~seq:(Flow_state.seq flow)
           ~ack_no:(Flow_state.ack flow)
           ~window:(min 65535 t.config.Config.rx_buf_size)
           ~with_mss:false ~ts_ecr:(Flow_state.ts_recent flow))

let handle_rst t pkt tuple =
  let tcp = pkt.Packet.tcp in
  lifecycle_ev t "rst" tuple;
  (match Tuple_tbl.find_opt t.pending tuple with
  | Some p ->
    cancel_pending_timer t p;
    Tuple_tbl.remove t.pending tuple;
    (* An RST during SYN_SENT is a refusal (nobody listening); during
       SYN_RECEIVED the peer aborted its own half-open attempt. *)
    p.p_cb.failed (match p.p_state with Syn_sent -> Refused | Syn_received -> Reset)
  | None -> ());
  match Tuple_tbl.find_opt t.entries tuple with
  | Some entry ->
    (* Light in-window validation: an RST whose sequence is nowhere near
       what we expect next is a stray (or spoofed) segment and is ignored,
       the standard mitigation against blind-reset injection. *)
    let flow = entry.flow in
    let diff = Seq32.diff tcp.Tcp_header.seq (Flow_state.ack flow) in
    if diff >= -1 && diff <= t.config.Config.rx_buf_size then begin
      entry.f_cb.reset flow;
      remove_entry t entry
    end
  | None -> ()

let process_exception t pkt =
  let tcp = pkt.Packet.tcp in
  let flags = tcp.Tcp_header.flags in
  let tuple = Packet.four_tuple_at_receiver pkt in
  if flags.Tcp_header.rst then handle_rst t pkt tuple
  else if flags.Tcp_header.syn && flags.Tcp_header.ack then
    handle_synack t pkt tuple
  else if flags.Tcp_header.syn then handle_syn t pkt tuple
  else if flags.Tcp_header.fin then handle_fin t pkt tuple
  else if flags.Tcp_header.ack then begin
    if Bytes.length pkt.Packet.payload > 0 && Tuple_tbl.mem t.entries tuple
    then
      (* The flow was installed between fast-path lookup and now: a data
         packet racing connection setup. Put it back on the fast path. *)
      Fast_path.reinject t.fp pkt
    else handle_handshake_ack t pkt tuple
  end

(* --- Congestion-control loop -------------------------------------------- *)

let control_interval_ns t entry =
  match t.config.Config.control_interval_fixed_ns with
  | Some fixed -> fixed
  | None ->
    let rtt = Flow_state.rtt_est entry.flow in
    max t.config.Config.control_interval_min_ns
      (t.config.Config.control_interval_rtts * rtt)

(* A flow is only declared timed out when snd_una has been frozen for at
   least [timeout_intervals] control intervals AND longer than a few RTTs
   AND longer than its own pacing gap — otherwise a paced low-rate flow or
   queueing delay beyond tau triggers spurious retransmissions that halve
   the rate and spiral. *)
let stall_threshold_ns t entry =
  let flow = entry.flow in
  let base =
    t.config.Config.timeout_intervals * control_interval_ns t entry
  in
  (* New flows have no RTT estimate yet; assume a conservative 250 us so
     the effective minimum RTO is ~1 ms (datacenter-tuned Linux uses more). *)
  let rtt_guard = 4 * max (Flow_state.rtt_est flow) 250_000 in
  let pacing_guard =
    match Rate_bucket.mode (Flow_state.bucket flow) with
    | Rate_bucket.Rate r when r > 0.0 ->
      int_of_float (float_of_int (4 * t.config.Config.mss * 8) /. r *. 1e9)
    | _ -> 0
  in
  max base (max rtt_guard pacing_guard)

(* Dead-flow reaping: a flow with work outstanding (in-flight data, queued
   payload, or a close in progress) whose sequence state makes no progress
   for [dead_flow_timeout_ns] has lost its peer without so much as an RST.
   Reap it: reset the peer (in case it comes back), notify the owner, free
   the state. Quiescent-but-healthy flows refresh the timer and are never
   reaped. *)
let reap_check t entry now =
  match t.config.Config.dead_flow_timeout_ns with
  | None -> ()
  | Some dt ->
    let flow = entry.flow in
    let quiescent =
      Flow_state.tx_sent flow = 0
      && Ring.used (Flow_state.tx_buf flow) = 0
      && (not entry.close_requested)
      && (not (Flow_state.fin_sent flow))
      && not (Flow_state.fin_received flow)
    in
    let una = Flow_state.snd_una flow in
    let progressed =
      una <> entry.reap_una || Flow_state.ack flow <> entry.reap_ack
    in
    if quiescent || progressed then begin
      entry.reap_una <- una;
      entry.reap_ack <- Flow_state.ack flow;
      entry.progress_since <- now
    end
    else if now - entry.progress_since >= dt then begin
      t.flows_reaped <- t.flows_reaped + 1;
      lifecycle_ev t "flow_reaped" entry.f_tuple;
      Log.debug (fun m -> m "reaped %a" Addr.Four_tuple.pp entry.f_tuple);
      send_rst t ~tuple:entry.f_tuple ~seq:(Flow_state.seq flow)
        ~ack_no:(Flow_state.ack flow);
      entry.f_cb.reset flow;
      remove_entry t entry
    end

let run_control_iteration t entry =
  let flow = entry.flow in
  let now = Sim.now t.sim in
  let interval = now - entry.last_collect in
  entry.last_collect <- now;
  (* Timeout detection: unacked data stuck across control intervals. *)
  let una = Flow_state.snd_una flow in
  let timeouts =
    if Flow_state.tx_sent flow > 0 && una = entry.last_una then begin
      if entry.stall_since < 0 then entry.stall_since <- now;
      if now - entry.stall_since >= stall_threshold_ns t entry then begin
        entry.stall_since <- -1;
        t.timeout_retransmits <- t.timeout_retransmits + 1;
        trace_ev t Trace.Timeout_rexmit ~flow:(Flow_state.opaque flow);
        Log.debug (fun m ->
            m "timeout retransmit %a" Addr.Four_tuple.pp entry.f_tuple);
        Fast_path.trigger_retransmit t.fp flow;
        1
      end
      else 0
    end
    else begin
      entry.stall_since <- -1;
      0
    end
  in
  entry.last_una <- una;
  let fb =
    {
      Interval_cc.acked_bytes = Flow_state.cnt_ackb flow;
      ecn_bytes = Flow_state.cnt_ecnb flow;
      fast_retransmits = Flow_state.cnt_frexmits flow;
      timeouts;
      rtt_ns = Flow_state.rtt_est flow;
      interval_ns = interval;
    }
  in
  Flow_state.set_cnt_ackb flow 0;
  Flow_state.set_cnt_ecnb flow 0;
  Flow_state.set_cnt_frexmits flow 0;
  let control = Interval_cc.update entry.cc fb in
  Rate_bucket.set_control (Flow_state.bucket flow) control;
  (* A higher rate or wider window may unblock transmission. *)
  if Flow_state.tx_available flow > 0 && not (Flow_state.tx_timer_armed flow)
  then Fast_path.notify_tx t.fp flow;
  (* Teardown progress. *)
  if entry.close_requested && not (Flow_state.fin_sent flow) then
    try_emit_fin t entry;
  if not entry.removed then reap_check t entry now

let control_tick t =
  let now = Sim.now t.sim in
  let due = ref [] and n = ref 0 in
  Tuple_tbl.iter
    (fun _ entry ->
      if (not entry.removed) && entry.next_cc_due <= now then begin
        due := entry :: !due;
        incr n
      end)
    t.entries;
  if !n > 0 then begin
    let cycles = !n * t.config.Config.sp_flow_control_cycles in
    let entries = !due in
    Core.run t.core ~cat:Core.Cc ~cycles (fun () ->
        List.iter
          (fun entry ->
            if not entry.removed then begin
              run_control_iteration t entry;
              entry.next_cc_due <- Sim.now t.sim + control_interval_ns t entry
            end)
          entries)
  end

(* --- Workload proportionality -------------------------------------------- *)

(* All dynamic scaling routes through the elastic controller
   (lib/control): this tick only gathers the per-interval signals; the
   policy decides and the controller actuates via the closure wired in
   [create] (Fast_path.set_active_cores -> RSS rewrite -> migration). *)
let scale_tick t ctl =
  let window = t.config.Config.scale_check_interval_ns in
  let core_idle = Fast_path.core_idle_fractions t.fp ~window_ns:window in
  let active = Fast_path.active_cores t.fp in
  let idle = ref 0.0 in
  for i = 0 to active - 1 do
    idle := !idle +. core_idle.(i)
  done;
  let ft = Fast_path.flows t.fp in
  let arena_occupancy =
    match t.arena with
    | Some a when Flow_arena.capacity a > 0 ->
      float_of_int (Flow_arena.live a) /. float_of_int (Flow_arena.capacity a)
    | _ -> 0.0
  in
  let flows = Flow_table.count ft in
  let shard_imbalance =
    let n = Flow_table.num_shards ft in
    if n <= 1 || flows = 0 then 1.0
    else begin
      let max_s = ref 0 in
      for i = 0 to n - 1 do
        let s = (Flow_table.shard_stats ft i).Tas_shard.Flow_shards.flows in
        if s > !max_s then max_s := s
      done;
      float_of_int !max_s /. (float_of_int flows /. float_of_int n)
    end
  in
  let signals =
    {
      Tas_control.Policy.s_ts = Sim.now t.sim;
      s_active = active;
      s_max_cores = t.config.Config.max_fast_path_cores;
      s_idle_cores = !idle;
      s_core_idle = core_idle;
      s_sp_backlog_ns = Core.backlog_ns t.core;
      s_flows = flows;
      s_arena_occupancy = arena_occupancy;
      s_shard_imbalance = shard_imbalance;
      s_p99_us = -1.0 (* substituted by the controller's probe, if wired *);
    }
  in
  ignore (Tas_control.Controller.tick ctl signals)

(* --- Construction -------------------------------------------------------- *)

let create sim ~fast_path ~core ~config =
  let arena =
    if config.Config.flow_arena_enabled then
      Some (Flow_arena.create ~capacity:config.Config.flow_arena_capacity ())
    else None
  in
  let t =
    {
      sim;
      fp = fast_path;
      core;
      config;
      arena;
      listeners = Hashtbl.create 16;
      pending = Tuple_tbl.create 64;
      entries = Tuple_tbl.create 1024;
      lifecycle = Queue.create ();
      lifecycle_dropped = 0;
      next_iss = 7;
      conn_setups = 0;
      conn_teardowns = 0;
      timeout_retransmits = 0;
      rsts_sent = 0;
      fin_retry_exhausted = 0;
      flows_reaped = 0;
      arena_refusals = 0;
      scale_observer = (fun _ _ -> ());
      controller = None;
    }
  in
  Fast_path.set_exception_handler t.fp (fun pkt ->
      (* The handler returns before the deferred work runs; hold a reference
         so the fast path's own release cannot recycle the payload under the
         pending slow-path processing. *)
      Packet.retain pkt;
      Core.run t.core ~cat:Core.Conn ~cycles:config.Config.sp_conn_cycles
        (fun () ->
          process_exception t pkt;
          Fast_path.release_pkt pkt));
  let tick_interval =
    match config.Config.control_interval_fixed_ns with
    | Some fixed -> max fixed 10_000
    | None -> config.Config.control_interval_min_ns
  in
  ignore (Sim.periodic sim tick_interval (fun () -> control_tick t));
  if config.Config.dynamic_scaling then begin
    let ctl =
      Tas_control.Controller.create ~policy:config.Config.scale_policy
        ~trace:(Fast_path.trace fast_path) ~min_cores:1
        ~max_cores:config.Config.max_fast_path_cores
        ~actuate:(fun n ->
          Fast_path.set_active_cores t.fp n;
          trace_ev t Trace.Core_scale ~flow:(-1);
          t.scale_observer (Sim.now t.sim) n)
        ()
    in
    t.controller <- Some ctl;
    ignore
      (Sim.periodic sim config.Config.scale_check_interval_ns (fun () ->
           scale_tick t ctl))
  end;
  t

let listen t ~port accept_fn = Hashtbl.replace t.listeners port accept_fn

let connect t ~opaque ~context_id ~dst_ip ~dst_port cb =
  Core.run t.core ~cat:Core.Conn ~cycles:t.config.Config.sp_conn_cycles
    (fun () ->
      let nic = Fast_path.nic t.fp in
      (* Ephemeral port allocation: scan from a rotating base. *)
      let rec pick_port attempt =
        if attempt > 65535 then invalid_arg "Slow_path.connect: ports exhausted"
        else begin
          t.next_iss <- t.next_iss + 1;
          let port = 2048 + ((t.next_iss * 7919) mod 63000) in
          let tuple =
            {
              Addr.Four_tuple.local_ip = Nic.ip nic;
              local_port = port;
              peer_ip = dst_ip;
              peer_port = dst_port;
            }
          in
          if Tuple_tbl.mem t.pending tuple || Tuple_tbl.mem t.entries tuple
          then pick_port (attempt + 1)
          else tuple
        end
      in
      let tuple = pick_port 0 in
      let p =
        {
          p_tuple = tuple;
          p_opaque = opaque;
          p_context = context_id;
          p_iss = fresh_iss t;
          p_peer_isn = 0;
          p_peer_window = t.config.Config.mss;
          p_peer_wscale = 0;
          p_peer_ts = 0;
          p_state = Syn_sent;
          p_retries = 0;
          p_timer = None;
          p_cb = cb;
        }
      in
      Tuple_tbl.add t.pending tuple p;
      lifecycle_ev t "syn_sent" tuple;
      send_syn t p;
      arm_pending_timer t p)

let close t flow =
  Core.run t.core ~cat:Core.Conn ~cycles:t.config.Config.sp_conn_cycles
    (fun () ->
      match Tuple_tbl.find_opt t.entries (Flow_state.tuple flow ~local_ip:(Nic.ip (Fast_path.nic t.fp))) with
      | None -> ()
      | Some entry ->
        if not entry.close_requested then begin
          entry.close_requested <- true;
          lifecycle_ev t "close_requested" entry.f_tuple;
          try_emit_fin t entry
        end)

let kick_control_loop t = control_tick t
