(** TAS configuration knobs, with the paper's defaults. *)

type t = {
  mss : int;
  wscale : int;  (** window-scale shift advertised during handshakes *)
  rx_buf_size : int;  (** per-flow receive payload buffer (fixed, §4.1) *)
  tx_buf_size : int;
  max_fast_path_cores : int;
  cc : Tas_tcp.Interval_cc.algorithm;
  initial_rate_bps : float;  (** starting rate for new flows *)
  control_interval_rtts : int;  (** slow-path CC loop period, default 2 RTTs *)
  control_interval_min_ns : int;  (** floor when RTT is tiny/unknown *)
  control_interval_fixed_ns : int option;
      (** force a fixed control interval τ (the Fig. 11 sweep) *)
  timeout_intervals : int;
      (** control intervals without snd_una progress before the slow path
          triggers a retransmission (default 2, §3.2) *)
  handshake_retries : int;
      (** SYN / SYN-ACK retransmissions before the connection attempt is
          failed with [Timeout] (default 5) *)
  handshake_rto_ns : int;  (** handshake retransmission timeout (20 ms) *)
  fin_retries : int;
      (** FIN retransmissions before the flow is forcibly torn down
          (default 8); unbounded FIN retry would leak flow state when the
          peer vanishes mid-close *)
  fin_rto_ns : int;  (** FIN retransmission timeout (20 ms) *)
  dead_flow_timeout_ns : int option;
      (** reap established flows that have in-flight or queued data but make
          no sequence progress for this long (the peer is gone and not even
          RST-ing). [None] (default) disables reaping; idle-but-healthy
          flows are never reaped *)
  rx_ooo_enabled : bool;
      (** receiver out-of-order interval tracking; [false] = the "simple
          go-back-N recovery" ablation of Fig. 7 *)
  recovery_policy : Tas_recovery.Policy.kind;
      (** loss-recovery policy for both flow directions: [Reno] (default)
          is the paper's triple-dup-ACK go-back-N, byte-identical to the
          seed; [Sack] adds receiver SACK blocks + a sender scoreboard
          with selective retransmit; [Rack_tlp] adds time-based loss
          detection and tail-loss probes on top of [Sack] *)
  sack_max_ranges : int;
      (** out-of-order intervals tracked per flow under a SACK-class
          policy (default 4; at most 3 are advertised per ACK beside the
          timestamp option). [Reno] always keeps the paper's single
          interval *)
  rack_reo_wnd_ns : int;
      (** RACK reordering window; 0 (default) = srtt/4 *)
  tlp_pto_ns : int;
      (** tail-loss-probe timeout; 0 (default) = 2*srtt *)
  context_queue_capacity : int;
  dynamic_scaling : bool;  (** workload-proportional core scaling, §3.4 *)
  scale_check_interval_ns : int;
  scale_policy : Tas_control.Policy.spec;
      (** autoscaling policy evaluated every [scale_check_interval_ns] by
          the elastic controller; default {!Tas_control.Policy.paper_default}
          (the paper's 1.25/0.2 idle-core thresholds) *)
  idle_block_ns : int;  (** fast-path thread blocks after this idle time *)
  wakeup_ns : int;  (** cost of waking a blocked fast-path thread *)
  (* Fast-path per-packet CPU costs (cycles), calibrated to Table 1. *)
  fp_driver_cycles : int;
  fp_rx_cycles : int;  (** receive data segment, including ACK generation *)
  fp_tx_cycles : int;  (** segmentation + transmit *)
  fp_ack_rx_cycles : int;  (** process incoming ACK, reclaim tx buffer *)
  fp_burst_enabled : bool;
      (** batch fast-path receive into vector passes over each core's
          backlog (DPDK-burst style, default [true]); [false] processes one
          packet per dispatch event. Per-packet cycle charges are identical
          either way — batching amortizes event dispatch and flow lookup *)
  fp_burst_size : int;  (** max packets per vector pass (default 32) *)
  flow_arena_enabled : bool;
      (** back per-flow state with the off-heap {!Flow_arena} of 102-byte
          Table-3 records (default [true]); [false] keeps the boxed OCaml
          record — the reference backing the differential tests compare
          against *)
  flow_arena_capacity : int;
      (** arena slots; connections beyond this are refused (default 4096) *)
  sp_conn_cycles : int;  (** slow-path connection setup/teardown handling *)
  sp_flow_control_cycles : int;  (** slow-path CC loop, per flow *)
  flow_shards_enabled : bool;
      (** partition the flow table into per-RSS-queue shards that follow
          the NIC redirection table (default [true], §3.1); [false] keeps
          one shared table — byte-identical packet behavior, no per-shard
          occupancy/lock accounting *)
  shard_lock_cycles : int;
      (** per-flow spinlock cost model: cycles charged for an owner-core
          (local) acquisition. Accounting only — never posted to a
          simulated core (Table 2's lock line) *)
  shard_lock_remote_cycles : int;
      (** cycles charged for a cross-core acquisition (slow-path flow
          install/remove, shard migration) *)
  trace_enabled : bool;
      (** record structured telemetry trace events; when [false] (default)
          the trace ring costs one boolean test per would-be event *)
  trace_capacity : int;  (** bounded trace ring size (events) *)
  span_enabled : bool;
      (** per-packet latency span tracing; when [false] (default) every span
          hook costs a single integer comparison *)
  span_sample_every : int;  (** sample one packet in N at each origin *)
  span_capacity : int;  (** bounded span-event ring size *)
  timeline_interval_ns : int;
      (** capture a {!Tas_telemetry.Timeline} frame (counter deltas, gauges,
          per-core utilization, shard/arena occupancy) every this many ns of
          sim time; 0 (default) disables the flight recorder entirely — no
          periodic event, no per-interval core accounting *)
  timeline_capacity : int;
      (** bounded timeline ring size (frames); oldest evicted when full *)
}

val default : t

val rate_mode : t -> bool
(** Whether the configured congestion control is rate-based. *)
