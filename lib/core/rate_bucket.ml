module Sim = Tas_engine.Sim

type mode = Rate of float | Window of int

type t = {
  sim : Sim.t;
  mutable mode : mode;
  tokens : floatarray;  (* 1 cell, bytes: flat storage so refills on the
                           transmit path never box a float *)
  mutable last_refill : int;
  burst : float;
}

let create sim mode ~burst_bytes =
  let tokens = Float.Array.create 1 in
  Float.Array.set tokens 0 (float_of_int burst_bytes);
  {
    sim;
    mode;
    tokens;
    last_refill = Sim.now sim;
    burst = float_of_int burst_bytes;
  }

let set_control t control =
  match control with
  | Tas_tcp.Interval_cc.Rate_bps r -> t.mode <- Rate r
  | Tas_tcp.Interval_cc.Window_bytes w -> t.mode <- Window w

let mode t = t.mode

let refill t rate_bps =
  let now = Sim.now t.sim in
  let dt = now - t.last_refill in
  if dt > 0 then begin
    let tok =
      Float.Array.get t.tokens 0
      +. (rate_bps /. 8.0 *. (float_of_int dt /. 1e9))
    in
    Float.Array.set t.tokens 0 (if tok > t.burst then t.burst else tok);
    t.last_refill <- now
  end

let tx_budget t ~in_flight ~want =
  match t.mode with
  | Window w -> max 0 (min want (w - in_flight))
  | Rate r ->
    refill t r;
    let tok = Float.Array.get t.tokens 0 in
    let grant = min want (int_of_float tok) in
    if grant > 0 then Float.Array.set t.tokens 0 (tok -. float_of_int grant);
    max 0 grant

(* Allocation-free variant used on the transmit hot path: [-1] encodes
   "no timer needed" (window mode, or tokens already available). *)
let ns_until_bytes_int t n =
  match t.mode with
  | Window _ -> -1
  | Rate r ->
    refill t r;
    let deficit = float_of_int n -. Float.Array.get t.tokens 0 in
    if deficit <= 0.0 then -1
    else if r <= 0.0 then max_int
    else int_of_float (ceil (deficit *. 8.0 /. r *. 1e9))

let ns_until_bytes t n =
  let v = ns_until_bytes_int t n in
  if v < 0 then None else Some v
