(* One contiguous off-heap allocation, [capacity * slot_bytes] bytes.
   [int8_unsigned] elements keep every access an unboxed int. *)

type bytes_arr =
  (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

let slot_bytes = 102

type t = {
  data : bytes_arr;
  capacity : int;
  free_list : int array;  (* stack of free slot indices *)
  mutable free_top : int;  (* number of entries on the stack *)
  used : Bytes.t;  (* per-slot liveness bit, double-free detection *)
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Flow_arena.create: capacity must be > 0";
  let data =
    Bigarray.Array1.create Bigarray.int8_unsigned Bigarray.c_layout
      (capacity * slot_bytes)
  in
  Bigarray.Array1.fill data 0;
  (* Stack initialized so the first allocations come out in slot order. *)
  let free_list = Array.init capacity (fun i -> capacity - 1 - i) in
  { data; capacity; free_list; free_top = capacity;
    used = Bytes.make capacity '\x00' }

let capacity t = t.capacity
let live t = t.capacity - t.free_top
let available t = t.free_top
let in_use t slot =
  slot >= 0 && slot < t.capacity && Bytes.get t.used slot = '\x01'

(* --- Raw field access --------------------------------------------------- *)

let base slot = slot * slot_bytes

let get8 t off = Bigarray.Array1.unsafe_get t.data off

let set8 t off v =
  Bigarray.Array1.unsafe_set t.data off (v land 0xff)

let get16 t off = get8 t off lor (get8 t (off + 1) lsl 8)

let set16 t off v =
  set8 t off v;
  set8 t (off + 1) (v lsr 8)

let get24 t off = get16 t off lor (get8 t (off + 2) lsl 16)

let set24 t off v =
  set16 t off v;
  set8 t (off + 2) (v lsr 16)

let get32 t off = get16 t off lor (get16 t (off + 2) lsl 16)

let set32 t off v =
  set16 t off v;
  set16 t (off + 2) (v lsr 16)

let get48 t off = get32 t off lor (get16 t (off + 4) lsl 32)

let set48 t off v =
  set32 t off v;
  set16 t (off + 4) (v lsr 32)

(* OCaml ints are 63-bit; the top byte of a stored u64 carries bits 56-62. *)
let get64 t off =
  get32 t off lor (get24 t (off + 4) lsl 32) lor (get8 t (off + 7) lsl 56)

let set64 t off v =
  set32 t off v;
  set24 t (off + 4) (v lsr 32);
  set8 t (off + 7) (v lsr 56)

(* Sign-extend a u32 cell so [-1] round-trips: spans use -1 for "none". *)
let get32s t off =
  let v = get32 t off in
  if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v

(* --- Table-3 offsets ---------------------------------------------------- *)

let off_opaque = 0
let off_seq = 8
let off_ack = 12
let off_tx_sent = 16
let off_window = 20
let off_cnt_ackb = 24
let off_cnt_ecnb = 28
let off_rtt_est = 32
let off_ts_recent = 36
let off_tx_span = 40
let off_rx_span = 44
let off_ooo_start = 48
let off_ooo_len = 52
let off_peer_ip = 56
let off_local_port = 60
let off_peer_port = 62
let off_context = 64
let off_dupack_cnt = 66
let off_cnt_frexmits = 68
let off_peer_mac = 70
let off_peer_wscale = 76
let off_flags = 77
let off_generation = 78
let off_rx_head = 80
let off_rx_tail = 84
let off_tx_head = 88
let off_tx_tail = 92
let off_rx_size = 96
let off_tx_size = 99

let field_layout =
  [
    ("opaque", off_opaque, 8);
    ("seq", off_seq, 4);
    ("ack", off_ack, 4);
    ("tx_sent", off_tx_sent, 4);
    ("window", off_window, 4);
    ("cnt_ackb", off_cnt_ackb, 4);
    ("cnt_ecnb", off_cnt_ecnb, 4);
    ("rtt_est", off_rtt_est, 4);
    ("ts_recent", off_ts_recent, 4);
    ("tx_span", off_tx_span, 4);
    ("rx_span", off_rx_span, 4);
    ("ooo_start", off_ooo_start, 4);
    ("ooo_len", off_ooo_len, 4);
    ("peer_ip", off_peer_ip, 4);
    ("local_port", off_local_port, 2);
    ("peer_port", off_peer_port, 2);
    ("context", off_context, 2);
    ("dupack_cnt", off_dupack_cnt, 2);
    ("cnt_frexmits", off_cnt_frexmits, 2);
    ("peer_mac", off_peer_mac, 6);
    ("peer_wscale", off_peer_wscale, 1);
    ("flags", off_flags, 1);
    ("generation", off_generation, 2);
    ("rx_head", off_rx_head, 4);
    ("rx_tail", off_rx_tail, 4);
    ("tx_head", off_tx_head, 4);
    ("tx_tail", off_tx_tail, 4);
    ("rx_size", off_rx_size, 3);
    ("tx_size", off_tx_size, 3);
  ]

(* --- Allocation --------------------------------------------------------- *)

let generation t slot = get16 t (base slot + off_generation)

let alloc t =
  if t.free_top = 0 then None
  else begin
    t.free_top <- t.free_top - 1;
    let slot = t.free_list.(t.free_top) in
    Bytes.set t.used slot '\x01';
    (* Zero everything but the generation counter, which survives reuse. *)
    let b = base slot in
    let gen = get16 t (b + off_generation) in
    Bigarray.Array1.fill (Bigarray.Array1.sub t.data b slot_bytes) 0;
    set16 t (b + off_generation) gen;
    Some slot
  end

let free t slot =
  if slot < 0 || slot >= t.capacity then
    invalid_arg "Flow_arena.free: slot out of range";
  if Bytes.get t.used slot <> '\x01' then
    invalid_arg "Flow_arena.free: double free";
  Bytes.set t.used slot '\x00';
  let b = base slot in
  set16 t (b + off_generation) (generation t slot + 1);
  t.free_list.(t.free_top) <- slot;
  t.free_top <- t.free_top + 1

(* --- Typed accessors ---------------------------------------------------- *)

let get_opaque t s = get64 t (base s + off_opaque)
let set_opaque t s v = set64 t (base s + off_opaque) v
let get_seq t s = get32 t (base s + off_seq)
let set_seq t s v = set32 t (base s + off_seq) v
let get_ack t s = get32 t (base s + off_ack)
let set_ack t s v = set32 t (base s + off_ack) v
let get_tx_sent t s = get32 t (base s + off_tx_sent)
let set_tx_sent t s v = set32 t (base s + off_tx_sent) v
let get_window t s = get32 t (base s + off_window)
let set_window t s v = set32 t (base s + off_window) v
let get_cnt_ackb t s = get32 t (base s + off_cnt_ackb)
let set_cnt_ackb t s v = set32 t (base s + off_cnt_ackb) v
let get_cnt_ecnb t s = get32 t (base s + off_cnt_ecnb)
let set_cnt_ecnb t s v = set32 t (base s + off_cnt_ecnb) v
let get_rtt_est t s = get32 t (base s + off_rtt_est)
let set_rtt_est t s v = set32 t (base s + off_rtt_est) v
let get_ts_recent t s = get32 t (base s + off_ts_recent)
let set_ts_recent t s v = set32 t (base s + off_ts_recent) v
let get_tx_span t s = get32s t (base s + off_tx_span)
let set_tx_span t s v = set32 t (base s + off_tx_span) v
let get_rx_span t s = get32s t (base s + off_rx_span)
let set_rx_span t s v = set32 t (base s + off_rx_span) v
let get_ooo_start t s = get32 t (base s + off_ooo_start)
let set_ooo_start t s v = set32 t (base s + off_ooo_start) v
let get_ooo_len t s = get32 t (base s + off_ooo_len)
let set_ooo_len t s v = set32 t (base s + off_ooo_len) v
let get_peer_ip t s = get32 t (base s + off_peer_ip)
let set_peer_ip t s v = set32 t (base s + off_peer_ip) v
let get_local_port t s = get16 t (base s + off_local_port)
let set_local_port t s v = set16 t (base s + off_local_port) v
let get_peer_port t s = get16 t (base s + off_peer_port)
let set_peer_port t s v = set16 t (base s + off_peer_port) v
let get_context t s = get16 t (base s + off_context)
let set_context t s v = set16 t (base s + off_context) v
let get_dupack_cnt t s = get16 t (base s + off_dupack_cnt)
let set_dupack_cnt t s v = set16 t (base s + off_dupack_cnt) v
let get_cnt_frexmits t s = get16 t (base s + off_cnt_frexmits)
let set_cnt_frexmits t s v = set16 t (base s + off_cnt_frexmits) v
let get_peer_mac t s = get48 t (base s + off_peer_mac)
let set_peer_mac t s v = set48 t (base s + off_peer_mac) v
let get_peer_wscale t s = get8 t (base s + off_peer_wscale)
let set_peer_wscale t s v = set8 t (base s + off_peer_wscale) v
let get_flags t s = get8 t (base s + off_flags)
let set_flags t s v = set8 t (base s + off_flags) v

let get_flag t s ~bit = get_flags t s land (1 lsl bit) <> 0

let set_flag t s ~bit v =
  let f = get_flags t s in
  set_flags t s (if v then f lor (1 lsl bit) else f land lnot (1 lsl bit))

let get_rx_head t s = get32 t (base s + off_rx_head)
let set_rx_head t s v = set32 t (base s + off_rx_head) v
let get_rx_tail t s = get32 t (base s + off_rx_tail)
let set_rx_tail t s v = set32 t (base s + off_rx_tail) v
let get_tx_head t s = get32 t (base s + off_tx_head)
let set_tx_head t s v = set32 t (base s + off_tx_head) v
let get_tx_tail t s = get32 t (base s + off_tx_tail)
let set_tx_tail t s v = set32 t (base s + off_tx_tail) v
let get_rx_size t s = get24 t (base s + off_rx_size)
let set_rx_size t s v = set24 t (base s + off_rx_size) v
let get_tx_size t s = get24 t (base s + off_tx_size)
let set_tx_size t s v = set24 t (base s + off_tx_size) v
