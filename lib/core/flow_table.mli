(** The fast path's flow lookup table: 4-tuple → per-flow state.

    Shared by all fast-path cores and the slow path (per-flow spinlocks
    protect it in the real system; the simulator is single-threaded, so the
    lock is represented only by its cost model). *)

type t

val create : unit -> t
val add : t -> Tas_proto.Addr.Four_tuple.t -> Flow_state.t -> unit
val find : t -> Tas_proto.Addr.Four_tuple.t -> Flow_state.t option
val remove : t -> Tas_proto.Addr.Four_tuple.t -> unit
val count : t -> int
val iter : t -> (Tas_proto.Addr.Four_tuple.t -> Flow_state.t -> unit) -> unit

val dump : t -> Tas_telemetry.Json.t
(** All per-flow records as a JSON list (each {!Flow_state.to_json} plus its
    4-tuple), sorted by opaque id so output is deterministic regardless of
    hash-table iteration order. *)
