(** The fast path's flow lookup table: 4-tuple → per-flow state.

    Since the shard subsystem landed this is a thin instantiation of
    {!Tas_shard.Flow_shards} with {!Flow_state.t}: one hashtable shard per
    NIC receive queue, each operation routed to the shard the current RSS
    redirection table assigns the flow's hash, flows migrating between
    shards drain-in-place whenever the table is rewritten (core scaling,
    §3.4). Cross-core touches charge the accounting-only spinlock cost
    model (paper Table 2's lock line); the simulated timeline is never
    perturbed, so sharded and single-table instances behave
    packet-for-packet identically. *)

type t = Flow_state.t Tas_shard.Flow_shards.t

val create : unit -> t
(** A single-shard table behind a private one-queue redirection table — the
    pre-sharding behavior; used by components without a NIC (tests,
    microbenchmarks) and when [Config.flow_shards_enabled] is off. *)

val create_sharded :
  ?lock_cycles:int ->
  ?remote_lock_cycles:int ->
  rss:Tas_shard.Rss_table.t ->
  unit ->
  t
(** One shard per queue of [rss] (the NIC's redirection table); installs
    the shard set as the table's migration consumer. *)

val add : t -> Tas_proto.Addr.Four_tuple.t -> Flow_state.t -> unit
(** Slow-path install; charges one remote lock acquisition. *)

val find : t -> Tas_proto.Addr.Four_tuple.t -> Flow_state.t option
(** Owner-core lookup; charges one local lock acquisition. *)

val remove : t -> Tas_proto.Addr.Four_tuple.t -> unit
val count : t -> int
val iter : t -> (Tas_proto.Addr.Four_tuple.t -> Flow_state.t -> unit) -> unit

val num_shards : t -> int
val shard_count : t -> int -> int

val shard_of : t -> Tas_proto.Addr.Four_tuple.t -> int
(** The shard (= RSS queue) currently owning a tuple. *)

val shard_stats : t -> int -> Tas_shard.Flow_shards.shard_stats

val lock_cycles : t -> int
(** Spinlock cycles charged across all shards (accounting only). *)

val remote_lock_cycles : t -> int
(** The cross-core (install/remove/migration) share of {!lock_cycles}. *)

val migrated_flows : t -> int
(** Flows moved between shards by RSS rewrites. *)

val set_on_migrate :
  t -> (group:int -> from_q:int -> to_q:int -> moved:int -> unit) -> unit

val register :
  t -> Tas_telemetry.Metrics.t -> ?labels:Tas_telemetry.Metrics.labels ->
  unit -> unit
(** Per-shard [fp_shard_*] counters and [fp_shard_flows] gauges. *)

val dump : ?shard:int -> t -> Tas_telemetry.Json.t
(** All per-flow records as a JSON list (each {!Flow_state.to_json} plus its
    4-tuple), sorted by opaque id so output is deterministic regardless of
    hash-table iteration order — and therefore identical between sharded
    and single-table instances. [shard] restricts to one shard's flows. *)
