type t = {
  mss : int;
  wscale : int;
  rx_buf_size : int;
  tx_buf_size : int;
  max_fast_path_cores : int;
  cc : Tas_tcp.Interval_cc.algorithm;
  initial_rate_bps : float;
  control_interval_rtts : int;
  control_interval_min_ns : int;
  control_interval_fixed_ns : int option;
  timeout_intervals : int;
  handshake_retries : int;
  handshake_rto_ns : int;
  fin_retries : int;
  fin_rto_ns : int;
  dead_flow_timeout_ns : int option;
  rx_ooo_enabled : bool;
  recovery_policy : Tas_recovery.Policy.kind;
  sack_max_ranges : int;
  rack_reo_wnd_ns : int;
  tlp_pto_ns : int;
  context_queue_capacity : int;
  dynamic_scaling : bool;
  scale_check_interval_ns : int;
  scale_policy : Tas_control.Policy.spec;
  idle_block_ns : int;
  wakeup_ns : int;
  fp_driver_cycles : int;
  fp_rx_cycles : int;
  fp_tx_cycles : int;
  fp_ack_rx_cycles : int;
  fp_burst_enabled : bool;
  fp_burst_size : int;
  flow_arena_enabled : bool;
  flow_arena_capacity : int;
  sp_conn_cycles : int;
  sp_flow_control_cycles : int;
  flow_shards_enabled : bool;
  shard_lock_cycles : int;
  shard_lock_remote_cycles : int;
  trace_enabled : bool;
  trace_capacity : int;
  span_enabled : bool;
  span_sample_every : int;
  span_capacity : int;
  timeline_interval_ns : int;
  timeline_capacity : int;
}

let default =
  {
    mss = 1460;
    wscale = 4;
    rx_buf_size = 65536;
    tx_buf_size = 65536;
    max_fast_path_cores = 4;
    cc = Tas_tcp.Interval_cc.Dctcp_rate { step_bps = 10e6 };
    initial_rate_bps = 100e6;
    control_interval_rtts = 2;
    control_interval_min_ns = 50_000;
    control_interval_fixed_ns = None;
    timeout_intervals = 2;
    handshake_retries = 5;
    handshake_rto_ns = 20_000_000;
    fin_retries = 8;
    fin_rto_ns = 20_000_000;
    dead_flow_timeout_ns = None;
    rx_ooo_enabled = true;
    (* Loss recovery: [Reno] is the paper's dup-ACK go-back-N machinery,
       byte-identical to the seed; [Sack] / [Rack_tlp] grow the receiver
       to [sack_max_ranges] out-of-order intervals (advertised as SACK
       blocks, at most 3 on the wire) and drive the sender scoreboard.
       [rack_reo_wnd_ns] / [tlp_pto_ns] of 0 mean RTT-derived defaults
       (srtt/4 and 2*srtt). *)
    recovery_policy = Tas_recovery.Policy.Reno;
    sack_max_ranges = 4;
    rack_reo_wnd_ns = 0;
    tlp_pto_ns = 0;
    context_queue_capacity = 4096;
    dynamic_scaling = false;
    scale_check_interval_ns = 500_000_000;
    scale_policy = Tas_control.Policy.paper_default;
    idle_block_ns = 10_000_000;
    wakeup_ns = 5_000;
    (* Table 1: TAS spends 0.09 kc driver + 0.81 kc TCP per request (one
       data RX incl. ACK generation, one data TX, one ACK RX). *)
    fp_driver_cycles = 30;
    fp_rx_cycles = 450;
    fp_tx_cycles = 260;
    fp_ack_rx_cycles = 100;
    fp_burst_enabled = true;
    fp_burst_size = 32;
    flow_arena_enabled = true;
    flow_arena_capacity = 4096;
    sp_conn_cycles = 3000;
    sp_flow_control_cycles = 80;
    flow_shards_enabled = true;
    shard_lock_cycles = 24;
    shard_lock_remote_cycles = 96;
    trace_enabled = false;
    trace_capacity = 8192;
    span_enabled = false;
    span_sample_every = 16;
    span_capacity = 65536;
    timeline_interval_ns = 0;
    timeline_capacity = 4096;
  }

let rate_mode t =
  match t.cc with
  | Tas_tcp.Interval_cc.Fixed_rate | Tas_tcp.Interval_cc.Dctcp_rate _
  | Tas_tcp.Interval_cc.Timely _ ->
    true
  | Tas_tcp.Interval_cc.Window_dctcp _ -> false
