(** Discrete-event simulation core.

    A simulator holds a virtual clock and a priority queue of pending events.
    Events scheduled for the same instant fire in scheduling order, which
    keeps runs fully deterministic. Events may be cancelled; cancellation is
    O(1) (the event is skipped when popped). *)

type t
(** A simulator instance. *)

type event
(** Handle for a scheduled event, usable for cancellation. *)

val create : unit -> t
(** [create ()] is a fresh simulator with the clock at zero and no events. *)

val now : t -> Time_ns.t
(** [now sim] is the current virtual time. *)

val schedule : t -> Time_ns.t -> (unit -> unit) -> event
(** [schedule sim dt f] schedules [f] to run [dt] nanoseconds from now.
    [dt] must be non-negative.
    @raise Invalid_argument if [dt < 0]. *)

val schedule_at : t -> Time_ns.t -> (unit -> unit) -> event
(** [schedule_at sim time f] schedules [f] at absolute virtual [time], which
    must not be in the past.
    @raise Invalid_argument if [time < now sim]. *)

val post : t -> Time_ns.t -> (unit -> unit) -> unit
(** [post sim dt f] is {!schedule} without a cancellation handle, for the
    fire-and-forget event storm of the hot path (port serialization,
    propagation, core dispatch, pacing): callers that never cancel document
    that fact and skip binding a handle.
    @raise Invalid_argument if [dt < 0]. *)

val post_at : t -> Time_ns.t -> (unit -> unit) -> unit
(** [post_at sim time f] is {!schedule_at} without a cancellation handle;
    see {!post}.
    @raise Invalid_argument if [time < now sim]. *)

val events_fired : t -> int
(** Total events executed since [create] (the perf bench's events/sec
    numerator). *)

val cancel : t -> event -> unit
(** [cancel sim ev] prevents [ev] from firing. Cancelling an event that has
    already fired or been cancelled is a no-op. *)

val pending : t -> int
(** [pending sim] is the number of live (not cancelled, not fired) events. *)

val run : ?until:Time_ns.t -> t -> unit
(** [run sim] executes events in time order until the queue is empty, or — if
    [until] is given — until the clock would pass [until] (the clock is then
    set to exactly [until]; later events stay queued). *)

val step : t -> bool
(** [step sim] executes the single next event. Returns [false] if the queue
    was empty. *)

val periodic : t -> ?start:Time_ns.t -> Time_ns.t -> (unit -> unit) -> event ref
(** [periodic sim ~start interval f] runs [f] every [interval] ns, the first
    time at [start] from now (default [interval]). The returned ref always
    holds the handle of the next occurrence, so the series can be stopped
    with [cancel sim !handle]. *)
