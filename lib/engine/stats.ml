module Summary = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min_v : float;
    mutable max_v : float;
    mutable total : float;
  }

  let create () =
    { n = 0; mean = 0.0; m2 = 0.0; min_v = infinity; max_v = neg_infinity; total = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min_v then t.min_v <- x;
    if x > t.max_v then t.max_v <- x;
    t.total <- t.total +. x

  let count t = t.n
  let mean t = if t.n = 0 then 0.0 else t.mean

  let stddev t =
    if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1))

  let min_v t = if t.n = 0 then 0.0 else t.min_v
  let max_v t = if t.n = 0 then 0.0 else t.max_v
  let total t = t.total

  (* Chan et al. parallel combination of Welford aggregates. *)
  let merge a b =
    if a.n = 0 then { b with n = b.n }
    else if b.n = 0 then { a with n = a.n }
    else begin
      let n = a.n + b.n in
      let fa = float_of_int a.n and fb = float_of_int b.n in
      let delta = b.mean -. a.mean in
      let mean = a.mean +. (delta *. fb /. float_of_int n) in
      let m2 = a.m2 +. b.m2 +. (delta *. delta *. fa *. fb /. float_of_int n) in
      {
        n;
        mean;
        m2;
        min_v = Float.min a.min_v b.min_v;
        max_v = Float.max a.max_v b.max_v;
        total = a.total +. b.total;
      }
    end
end

module Hist = struct
  (* Buckets spaced by a factor of 2^(1/32) cover [1, 2^64) with ~2% relative
     width: bucket index = 32 * log2(x). Values below 1 land in bucket 0. *)

  let buckets_per_octave = 32
  let bucket_count = 64 * buckets_per_octave

  type t = {
    counts : int array;
    mutable n : int;
    mutable sum : float;
    mutable max_v : float;
  }

  let create () =
    { counts = Array.make bucket_count 0; n = 0; sum = 0.0; max_v = 0.0 }

  let bucket_of x =
    if x < 1.0 then 0
    else begin
      let b = int_of_float (float_of_int buckets_per_octave *. (log x /. log 2.0)) in
      if b >= bucket_count then bucket_count - 1 else b
    end

  let value_of_bucket b =
    (* Geometric midpoint of the bucket. *)
    2.0 ** ((float_of_int b +. 0.5) /. float_of_int buckets_per_octave)

  let add t x =
    let x = if x < 0.0 then 0.0 else x in
    t.counts.(bucket_of x) <- t.counts.(bucket_of x) + 1;
    t.n <- t.n + 1;
    t.sum <- t.sum +. x;
    if x > t.max_v then t.max_v <- x

  let count t = t.n
  let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n
  let max_v t = t.max_v

  let merge a b =
    {
      counts = Array.init bucket_count (fun i -> a.counts.(i) + b.counts.(i));
      n = a.n + b.n;
      sum = a.sum +. b.sum;
      max_v = Float.max a.max_v b.max_v;
    }

  let percentile t p =
    if t.n = 0 then 0.0
    else begin
      let rank = p /. 100.0 *. float_of_int t.n in
      let target = int_of_float (ceil rank) in
      let target = if target < 1 then 1 else if target > t.n then t.n else target in
      let acc = ref 0 and b = ref 0 and found = ref (-1) in
      while !found < 0 && !b < bucket_count do
        acc := !acc + t.counts.(!b);
        if !acc >= target then found := !b;
        incr b
      done;
      if !found < 0 then t.max_v else value_of_bucket !found
    end

  let buckets t =
    let out = ref [] in
    for b = bucket_count - 1 downto 0 do
      if t.counts.(b) > 0 then out := (b, t.counts.(b)) :: !out
    done;
    !out

  let of_buckets ?sum ?max_v pairs =
    let t = create () in
    List.iter
      (fun (b, c) ->
        if b < 0 || b >= bucket_count then
          invalid_arg (Printf.sprintf "Hist.of_buckets: bucket %d out of range" b);
        if c < 0 then
          invalid_arg (Printf.sprintf "Hist.of_buckets: negative count in bucket %d" b);
        t.counts.(b) <- t.counts.(b) + c;
        t.n <- t.n + c;
        t.sum <- t.sum +. (float_of_int c *. value_of_bucket b);
        let top = value_of_bucket b in
        if top > t.max_v then t.max_v <- top)
      pairs;
    (match sum with Some s -> t.sum <- s | None -> ());
    (match max_v with Some m -> t.max_v <- m | None -> ());
    t

  let bucket_mid = value_of_bucket

  let cdf_points t ?(points = 200) () =
    ignore points;
    if t.n = 0 then []
    else begin
      let acc = ref 0 and out = ref [] in
      for b = 0 to bucket_count - 1 do
        if t.counts.(b) > 0 then begin
          acc := !acc + t.counts.(b);
          out := (value_of_bucket b, float_of_int !acc /. float_of_int t.n) :: !out
        end
      done;
      List.rev !out
    end
end

module Series = struct
  type t = { mutable rev_points : (Time_ns.t * float) list; mutable n : int }

  let create () = { rev_points = []; n = 0 }

  let add t time v =
    t.rev_points <- (time, v) :: t.rev_points;
    t.n <- t.n + 1

  let points t = List.rev t.rev_points
  let length t = t.n
end

module Counter = struct
  type t = { mutable v : int }

  let create () = { v = 0 }
  let incr t = t.v <- t.v + 1
  let add t n = t.v <- t.v + n
  let value t = t.v
  let reset t = t.v <- 0
end
