(* Binary min-heap keyed by (time, seq). The sequence number breaks ties in
   scheduling order so simultaneous events run deterministically. *)

(* Handle-free entries ([post]/[post_at]) are recycled through a free list:
   they are fire-and-forget, so once fired the record can be reused without
   any ABA hazard. Handle-carrying entries ([schedule]/[schedule_at]) are
   never recycled — a caller may hold the handle indefinitely and cancel it
   late. The write barrier on storing a young action closure into a
   promoted recycled entry once made this a loss; the packet hot path now
   posts persistent (old) thunks, for which the barrier takes the cheap
   same-generation exit. *)
type entry = {
  mutable time : Time_ns.t;
  mutable seq : int;
  mutable action : unit -> unit;
  mutable cancelled : bool;
  recyclable : bool;
}

type event = entry

type t = {
  mutable clock : Time_ns.t;
  mutable heap : entry array;
  mutable size : int;
  mutable next_seq : int;
  mutable live : int;
  mutable fired : int;
  mutable free : entry array;  (* stack of fired recyclable entries *)
  mutable free_top : int;
}

let dummy =
  { time = 0; seq = -1; action = ignore; cancelled = true; recyclable = false }

(* Bounds the pool: a burst that briefly inflates the event population must
   not pin its entries forever. *)
let max_free = 4096

let create () =
  {
    clock = 0;
    heap = Array.make 64 dummy;
    size = 0;
    next_seq = 0;
    live = 0;
    fired = 0;
    free = Array.make 64 dummy;
    free_top = 0;
  }

let now t = t.clock
let events_fired t = t.fired

let precedes a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if precedes t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && precedes t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && precedes t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t entry =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) dummy in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  t.heap.(0) <- t.heap.(t.size);
  t.heap.(t.size) <- dummy;
  if t.size > 0 then sift_down t 0;
  top

let schedule_at t time action =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.schedule_at: time %d is before now %d" time t.clock);
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let entry = { time; seq; action; cancelled = false; recyclable = false } in
  t.live <- t.live + 1;
  push t entry;
  entry

let schedule t dt action =
  if dt < 0 then invalid_arg "Sim.schedule: negative delay";
  schedule_at t (t.clock + dt) action

let post_at t time action =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.post_at: time %d is before now %d" time t.clock);
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let entry =
    if t.free_top > 0 then begin
      t.free_top <- t.free_top - 1;
      let e = t.free.(t.free_top) in
      t.free.(t.free_top) <- dummy;
      e.time <- time;
      e.seq <- seq;
      e.action <- action;
      e.cancelled <- false;
      e
    end
    else { time; seq; action; cancelled = false; recyclable = true }
  in
  t.live <- t.live + 1;
  push t entry

let post t dt action =
  if dt < 0 then invalid_arg "Sim.post: negative delay";
  post_at t (t.clock + dt) action

let cancel t ev =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    t.live <- t.live - 1
  end

let pending t = t.live

let fire t entry =
  (* Mark fired entries as cancelled so a late [cancel] is a harmless no-op. *)
  entry.cancelled <- true;
  t.live <- t.live - 1;
  t.clock <- entry.time;
  t.fired <- t.fired + 1;
  let action = entry.action in
  if entry.recyclable then begin
    (* Recycle before running the action: no handle exists, so nothing can
       observe the entry, and the action itself may immediately reuse it.
       Dropping the closure reference keeps the pool from pinning it. *)
    entry.action <- ignore;
    if t.free_top < max_free then begin
      if t.free_top = Array.length t.free then begin
        let bigger = Array.make (2 * t.free_top) dummy in
        Array.blit t.free 0 bigger 0 t.free_top;
        t.free <- bigger
      end;
      t.free.(t.free_top) <- entry;
      t.free_top <- t.free_top + 1
    end
  end;
  action ()

let step t =
  let rec next () =
    if t.size = 0 then false
    else
      let entry = pop t in
      if entry.cancelled then next ()
      else begin
        fire t entry;
        true
      end
  in
  next ()

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some limit ->
    let continue = ref true in
    while !continue do
      if t.size = 0 then begin
        t.clock <- max t.clock limit;
        continue := false
      end
      else begin
        let top = t.heap.(0) in
        if top.cancelled then ignore (pop t)
        else if top.time > limit then begin
          t.clock <- limit;
          continue := false
        end
        else fire t (pop t)
      end
    done

let periodic t ?start interval f =
  let first = match start with Some s -> s | None -> interval in
  let handle = ref dummy in
  let rec occurrence () =
    f ();
    handle := schedule t interval occurrence
  in
  handle := schedule t first occurrence;
  handle
