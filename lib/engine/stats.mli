(** Measurement collection for experiments.

    [Summary] keeps O(1) running aggregates (Welford); [Hist] keeps a
    log-bucketed histogram for percentile queries over wide dynamic ranges
    (nanoseconds to seconds) with bounded error; [Series] records (time,
    value) points for figures plotted against time; [Counter] is a plain
    monotonic event counter. *)

(** Online mean / variance / extrema. *)
module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val stddev : t -> float
  val min_v : t -> float
  val max_v : t -> float
  val total : t -> float

  val merge : t -> t -> t
  (** [merge a b] aggregates as if every sample of [a] and [b] had been
      added to one summary (Chan's parallel variance combination). Inputs
      are not mutated. *)
end

(** Log-bucketed histogram: relative bucket error ~2%. Negative samples are
    clamped to zero. *)
module Hist : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val percentile : t -> float -> float
  (** [percentile h p] for [p] in [0,100]; 0 when empty. *)

  val mean : t -> float
  val max_v : t -> float

  val merge : t -> t -> t
  (** Bucket-wise sum; exact (histograms with identical bucketing). *)

  val cdf_points : t -> ?points:int -> unit -> (float * float) list
  (** [(value, cumulative_fraction)] pairs suitable for plotting a CDF. *)

  val buckets : t -> (int * int) list
  (** Sparse raw buckets: [(bucket index, count)] for every non-empty
      bucket, ascending by index. Together with {!of_buckets} this is a
      lossless transport of the distribution (up to bucket quantization),
      so merged quantiles computed from summed buckets are exactly what one
      histogram over all samples would report. *)

  val of_buckets : ?sum:float -> ?max_v:float -> (int * int) list -> t
  (** Reconstruct a histogram from sparse buckets (as {!buckets} emits).
      [sum] restores the exact mean, [max_v] the exact maximum; quantile
      queries on the result are bucket-exact.
      @raise Invalid_argument on an out-of-range index or negative count. *)

  val bucket_mid : int -> float
  (** The representative value (geometric midpoint) of a bucket index —
      what {!percentile} reports when that bucket holds the target rank. *)
end

(** Time-stamped samples. *)
module Series : sig
  type t

  val create : unit -> t
  val add : t -> Time_ns.t -> float -> unit
  val points : t -> (Time_ns.t * float) list
  (** In insertion (time) order. *)

  val length : t -> int
end

module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val reset : t -> unit
end
