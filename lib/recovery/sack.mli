(** SACK-based recovery engine (RFC 2018 blocks + RFC 6675 loss rules).

    Pure decision logic over {!State}/{!Scoreboard}: the fast path feeds
    every ACK (cumulative edge, SACK blocks, duplicate-ACK count) through
    {!on_ack} and then retransmits whatever the scoreboard marks lost —
    selectively, without rewinding the send sequence. Episodes are
    bracketed by [recovery_point]: one rate-cut signal per episode, ended
    when the cumulative ACK passes the [snd_nxt] recorded at entry. *)

type outcome = {
  newly_sacked : int;  (** segments first marked sacked by this ACK *)
  newly_lost : int;  (** segments first marked lost by this ACK *)
  entered : bool;  (** a new recovery episode began *)
  exited : bool;  (** the previous episode completed *)
}

val on_ack :
  State.t ->
  una:Tas_proto.Seq32.t ->
  snd_nxt:Tas_proto.Seq32.t ->
  blocks:(Tas_proto.Seq32.t * Tas_proto.Seq32.t) list ->
  dup_acks:int ->
  outcome
(** Digest one ACK: advance the scoreboard to [una], apply [blocks], run
    the dupthresh loss rule (plus the front-hole rule once [dup_acks]
    reaches {!Reno.dupthresh} without SACK evidence above the hole), and
    maintain the episode bracket against [snd_nxt]. *)
