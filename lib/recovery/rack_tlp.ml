module Seq32 = Tas_proto.Seq32

type outcome = {
  newly_sacked : int;
  newly_lost : int;
  rack_lost : int;
  entered : bool;
  exited : bool;
}

let reo_wnd_ns ~srtt_ns ~configured =
  if configured > 0 then configured else max (srtt_ns / 4) 1_000

let pto_ns ~srtt_ns ~configured =
  if configured > 0 then configured else max (2 * srtt_ns) 1_000_000

let on_ack (st : State.t) ~una ~snd_nxt ~blocks ~dup_acks ~reo_wnd =
  let d1 = Scoreboard.ack_to st.State.sb ~una in
  let newly_sacked, d2 = Scoreboard.apply_sacks st.State.sb ~blocks in
  let d = max d1 d2 in
  if d > st.State.rack_ts then st.State.rack_ts <- d;
  let exited = st.State.in_rec && Seq32.geq una st.State.recovery_point in
  if exited then st.State.in_rec <- false;
  let by_dup =
    Scoreboard.mark_lost_dupthresh st.State.sb ~dupthresh:Reno.dupthresh
  in
  let by_dup =
    if
      dup_acks >= Reno.dupthresh
      && (not st.State.in_rec)
      && Scoreboard.live_lost st.State.sb = 0
    then by_dup + Scoreboard.mark_front_lost st.State.sb
    else by_dup
  in
  let rack_lost =
    if st.State.rack_ts >= 0 then
      Scoreboard.mark_lost_older_than st.State.sb
        ~threshold_ns:(st.State.rack_ts - reo_wnd)
    else 0
  in
  let newly_lost = by_dup + rack_lost in
  let entered = (not st.State.in_rec) && newly_lost > 0 in
  if entered then begin
    st.State.in_rec <- true;
    st.State.recovery_point <- snd_nxt
  end;
  { newly_sacked; newly_lost; rack_lost; entered; exited }

let on_reo_timer (st : State.t) ~now_ns ~reo_wnd ~srtt_ns =
  Scoreboard.mark_lost_older_than st.State.sb
    ~threshold_ns:(now_ns - reo_wnd - srtt_ns)
