(** Loss-recovery policy selector.

    The fast path dispatches its ACK-clocked retransmission machinery on
    this kind (configured per stack instance via [Config.recovery_policy]):

    - [Reno]: the paper's §3.1 exception-1 behaviour — triple duplicate
      ACK triggers one go-back-N rewind ({!Reno}). The seed reference.
    - [Sack]: receiver advertises out-of-order runs as SACK blocks; the
      sender keeps a per-segment scoreboard and retransmits selectively
      ({!Sack} over {!Scoreboard}).
    - [Rack_tlp]: [Sack] plus RACK time-based loss detection (a segment is
      lost once something sent [reo_wnd] later was delivered) and tail-loss
      probes so a dropped final segment does not wait out a full RTO
      ({!Rack_tlp}). *)

type kind = Reno | Sack | Rack_tlp

val name : kind -> string
(** ["reno"], ["sack"], ["rack-tlp"]. *)

val of_string : string -> kind option
(** Case-insensitive; accepts ["rack"], ["rack_tlp"] and ["rack-tlp"] for
    {!Rack_tlp}. *)

val all : kind list
