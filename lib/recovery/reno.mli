(** Reno-style duplicate-ACK fast retransmit — the paper's §3.1
    exception 1, extracted verbatim from the fast path as the reference
    recovery policy.

    The decision is stateless over the flow's two recovery scalars
    (Table 3's [dupack_cnt] and the in-recovery flag): the third duplicate
    ACK outside recovery triggers exactly one go-back-N rewind; every
    other duplicate ACK just counts. The caller applies the rewind
    ([seq <- snd_una], [tx_sent <- 0]) and its accounting; byte-identical
    behaviour to the pre-extraction fast path is pinned by the seed
    digests in [test/test_recovery.ml]. *)

type verdict =
  | Count of int  (** store the new duplicate-ACK count; nothing else *)
  | Enter_recovery
      (** third duplicate ACK outside recovery: rewind the sender to
          [snd_una], zero [tx_sent] and [dupack_cnt], mark the flow
          in-recovery, and count one fast retransmit *)

val dupthresh : int
(** 3, the classic threshold (shared with the SACK scoreboard rules). *)

val on_dup_ack : dupack_cnt:int -> in_recovery:bool -> verdict
(** Decide what one duplicate ACK does, given the flow's current count of
    prior duplicate ACKs and its recovery flag. *)
