(** Per-flow recovery state: the configured policy plus the sender
    scoreboard and the episode/timer scalars shared by the SACK and
    RACK-TLP engines.

    This is a boxed companion of the flow (see {!Scoreboard}): identical
    for arena-backed and boxed flows, created once at connection
    establishment. The [Reno] policy never touches it beyond carrying the
    kind — Reno's two scalars stay in the Table-3 record itself. *)

type t = {
  kind : Policy.kind;
  sb : Scoreboard.t;
  mutable recovery_point : Tas_proto.Seq32.t;
      (** [snd_nxt] when the current episode began; the episode ends when
          the cumulative ACK reaches it *)
  mutable in_rec : bool;  (** inside a SACK/RACK recovery episode *)
  mutable rack_ts : int;
      (** transmit timestamp of the most recently delivered
          never-retransmitted segment (Karn-filtered); [-1] before any *)
  mutable reo_armed : bool;  (** a RACK reordering timer is pending *)
  mutable tlp_armed : bool;  (** a tail-loss-probe timer is pending *)
  mutable gen : int;
      (** timer generation: bumped on cumulative progress and on RTO
          reset, invalidating pending timers *)
}

val create : Policy.kind -> t

val bump_gen : t -> unit

val reset : t -> unit
(** RTO rewind: clear the scoreboard and the episode, invalidate timers.
    Cumulative counters survive (they feed telemetry). *)

val to_json : t -> Tas_telemetry.Json.t
