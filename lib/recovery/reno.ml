type verdict = Count of int | Enter_recovery

let dupthresh = 3

let on_dup_ack ~dupack_cnt ~in_recovery =
  let cnt = dupack_cnt + 1 in
  if cnt >= dupthresh && not in_recovery then Enter_recovery else Count cnt
