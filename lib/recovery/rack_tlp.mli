(** RACK time-based loss detection + tail-loss probes (RFC 8985 flavour,
    simplified for the simulated stack).

    RACK: every delivery (cumulative or SACK) of a never-retransmitted
    segment advances [rack_ts], the latest transmit timestamp proven
    delivered. Any unsacked segment transmitted more than a reordering
    window [reo_wnd] before [rack_ts] is lost — no duplicate-ACK count
    needed, and retransmissions are re-detectable because their timestamp
    refreshes. A reordering timer (armed by the fast path from
    {!Scoreboard.oldest_unsacked_tx}) catches segments whose loss
    evidence arrives but whose window has not yet elapsed.

    TLP: while data is in flight a probe timer of one PTO (default
    [2 * srtt]) hangs over the connection; if it fires with no forward
    progress the highest unsacked segment is retransmitted, manufacturing
    the SACK/ACK feedback that lets RACK repair genuine tail losses at
    probe-timescale instead of RTO-timescale. *)

type outcome = {
  newly_sacked : int;
  newly_lost : int;  (** total segments first marked lost by this ACK *)
  rack_lost : int;  (** subset marked by the RACK time rule *)
  entered : bool;
  exited : bool;
}

val reo_wnd_ns : srtt_ns:int -> configured:int -> int
(** The reordering window: [configured] when positive, else
    [max (srtt/4) 1µs] (the RFC's srtt/4 starting value). *)

val pto_ns : srtt_ns:int -> configured:int -> int
(** The probe timeout: [configured] when positive, else
    [max (2 * srtt) 1ms]. *)

val on_ack :
  State.t ->
  una:Tas_proto.Seq32.t ->
  snd_nxt:Tas_proto.Seq32.t ->
  blocks:(Tas_proto.Seq32.t * Tas_proto.Seq32.t) list ->
  dup_acks:int ->
  reo_wnd:int ->
  outcome
(** {!Sack.on_ack}'s digestion plus the RACK clock: update [rack_ts] from
    the delivered segments (Karn-filtered), then additionally mark lost
    everything older than [rack_ts - reo_wnd]. *)

val on_reo_timer : State.t -> now_ns:int -> reo_wnd:int -> srtt_ns:int -> int
(** The reordering timer fired: mark lost every candidate transmitted
    more than [reo_wnd + srtt] ago (one RTT of grace for feedback still
    in flight). Returns newly marked. *)
