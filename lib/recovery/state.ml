module J = Tas_telemetry.Json

type t = {
  kind : Policy.kind;
  sb : Scoreboard.t;
  mutable recovery_point : Tas_proto.Seq32.t;
  mutable in_rec : bool;
  mutable rack_ts : int;
  mutable reo_armed : bool;
  mutable tlp_armed : bool;
  mutable gen : int;
}

let create kind =
  {
    kind;
    sb = Scoreboard.create ();
    recovery_point = 0;
    in_rec = false;
    rack_ts = -1;
    reo_armed = false;
    tlp_armed = false;
    gen = 0;
  }

let bump_gen t = t.gen <- t.gen + 1

let reset t =
  Scoreboard.reset t.sb;
  t.in_rec <- false;
  t.rack_ts <- -1;
  bump_gen t

let to_json t =
  J.Obj
    [
      ("policy", J.Str (Policy.name t.kind));
      ("in_episode", J.Bool t.in_rec);
      ("scoreboard", Scoreboard.to_json t.sb);
    ]
