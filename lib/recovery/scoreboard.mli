(** Sender-side retransmission scoreboard (RFC 6675 / RFC 8985 flavour).

    One record per in-flight segment: sequence range, last transmit
    timestamp, and the sacked / lost / retransmitted markings that drive
    selective retransmission. The segment list spans
    [[snd_una, snd_nxt)] in transmit order; cumulative ACKs trim it from
    the front, SACK blocks mark runs inside it.

    Segments and markings live on the OCaml heap as a companion structure
    of the flow (like the payload rings and the out-of-order interval),
    identical for arena-backed and boxed flows — the documented boxed
    side-table of the recovery subsystem. Operations are O(in-flight
    segments); the in-flight count is bounded by the send window. *)

type t

val create : unit -> t

val reset : t -> unit
(** Forget every tracked segment (RTO rewind: the sender re-sends from
    [snd_una], re-registering segments as they go out). Cumulative
    counters survive. *)

val is_empty : t -> bool

(** {2 Transmit-side bookkeeping} *)

val on_transmit : t -> seq:Tas_proto.Seq32.t -> len:int -> now_ns:int -> unit
(** A fresh segment left the NIC: append it to the tracked tail. *)

val on_retransmit : t -> seq:Tas_proto.Seq32.t -> now_ns:int -> bool
(** A tracked segment (matched by its start sequence) was retransmitted:
    refresh its transmit timestamp, clear its lost marking and count the
    retransmission. [false] if no segment starts at [seq]. *)

(** {2 ACK-side updates} *)

val ack_to : t -> una:Tas_proto.Seq32.t -> int
(** Advance the cumulative-ACK edge: drop fully-acked segments (clipping
    one partially-acked straddler). Returns the latest transmit timestamp
    among the fully-acked never-retransmitted segments — the RACK
    delivery signal under Karn's rule — or [-1] when none qualify. *)

val apply_sacks : t -> blocks:(Tas_proto.Seq32.t * Tas_proto.Seq32.t) list -> int * int
(** Mark every tracked segment wholly inside a [(start, end)] block as
    sacked. Returns [(newly_sacked_segments, tx_ns_max)] where
    [tx_ns_max] is the latest transmit timestamp among the newly sacked
    never-retransmitted segments ([-1] when none; Karn again). *)

(** {2 Loss marking} *)

val mark_lost_dupthresh : t -> dupthresh:int -> int
(** RFC 6675: an unsacked, never-retransmitted segment with at least
    [dupthresh] sacked segments above it is lost. Returns newly marked. *)

val mark_front_lost : t -> int
(** [dupthresh] duplicate ACKs arrived without enough SACK evidence above
    the hole: mark the first unsacked segment lost (0 or 1 newly marked). *)

val mark_lost_older_than : t -> threshold_ns:int -> int
(** RACK: every unsacked segment below the highest sacked edge whose last
    transmission is at or before [threshold_ns] is lost (retransmitted
    segments included — their refreshed timestamp is what is compared).
    No-op unless something has been sacked. Returns newly marked. *)

(** {2 Retransmission scan} *)

val next_lost : t -> (Tas_proto.Seq32.t * int) option
(** Lowest segment currently marked lost, as [(seq, len)] — the next
    selective retransmission. {!on_retransmit} clears the marking. *)

val last_unsacked : t -> (Tas_proto.Seq32.t * int) option
(** Highest in-flight segment not yet sacked — the tail-loss-probe
    target. *)

val oldest_unsacked_tx : t -> int option
(** Earliest transmit timestamp among unsacked, unlost segments below the
    highest sacked edge — the RACK reordering-timer anchor. *)

(** {2 Observation} *)

val live_segs : t -> int
val live_sacked : t -> int
val live_lost : t -> int

val cum_sacked : t -> int
(** Segments ever marked sacked (cumulative, survives {!reset}). *)

val cum_lost : t -> int
val cum_retx : t -> int

val to_json : t -> Tas_telemetry.Json.t
