module Seq32 = Tas_proto.Seq32

type outcome = {
  newly_sacked : int;
  newly_lost : int;
  entered : bool;
  exited : bool;
}

let on_ack (st : State.t) ~una ~snd_nxt ~blocks ~dup_acks =
  ignore (Scoreboard.ack_to st.State.sb ~una);
  let newly_sacked, _ = Scoreboard.apply_sacks st.State.sb ~blocks in
  let exited = st.State.in_rec && Seq32.geq una st.State.recovery_point in
  if exited then st.State.in_rec <- false;
  let newly_lost =
    Scoreboard.mark_lost_dupthresh st.State.sb ~dupthresh:Reno.dupthresh
  in
  (* Classic dup-ACK evidence without enough SACKed segments above the
     hole still pins the front segment as lost (RFC 6675 at small
     flights). *)
  let newly_lost =
    if
      dup_acks >= Reno.dupthresh
      && (not st.State.in_rec)
      && Scoreboard.live_lost st.State.sb = 0
    then newly_lost + Scoreboard.mark_front_lost st.State.sb
    else newly_lost
  in
  let entered = (not st.State.in_rec) && newly_lost > 0 in
  if entered then begin
    st.State.in_rec <- true;
    st.State.recovery_point <- snd_nxt
  end;
  { newly_sacked; newly_lost; entered; exited }
