module Seq32 = Tas_proto.Seq32
module J = Tas_telemetry.Json

type seg = {
  mutable s_seq : Seq32.t;
  mutable s_len : int;
  mutable s_tx_ns : int;
  mutable s_sacked : bool;
  mutable s_lost : bool;
  mutable s_retx : int;
}

type t = {
  mutable segs : seg list;  (* ascending sequence order, disjoint *)
  mutable high_sacked : Seq32.t;  (* end of the highest sacked segment *)
  mutable any_sacked : bool;  (* [high_sacked] is meaningful *)
  mutable c_sacked : int;
  mutable c_lost : int;
  mutable c_retx : int;
}

let create () =
  {
    segs = [];
    high_sacked = 0;
    any_sacked = false;
    c_sacked = 0;
    c_lost = 0;
    c_retx = 0;
  }

let reset t =
  t.segs <- [];
  t.any_sacked <- false

let is_empty t = t.segs = []
let seg_end s = Seq32.add s.s_seq s.s_len

(* O(in-flight) append: the list is short (send-window bound) and the sim
   charges far more per packet elsewhere. *)
let on_transmit t ~seq ~len ~now_ns =
  t.segs <-
    t.segs
    @ [
        {
          s_seq = seq;
          s_len = len;
          s_tx_ns = now_ns;
          s_sacked = false;
          s_lost = false;
          s_retx = 0;
        };
      ]

let on_retransmit t ~seq ~now_ns =
  match List.find_opt (fun s -> s.s_seq = seq) t.segs with
  | Some s ->
    s.s_tx_ns <- now_ns;
    s.s_lost <- false;
    s.s_retx <- s.s_retx + 1;
    t.c_retx <- t.c_retx + 1;
    true
  | None -> false

let ack_to t ~una =
  let tx_max = ref (-1) in
  let rec go = function
    | s :: rest when Seq32.leq (seg_end s) una ->
      if s.s_retx = 0 && s.s_tx_ns > !tx_max then tx_max := s.s_tx_ns;
      go rest
    | s :: rest when Seq32.lt s.s_seq una ->
      (* Partially-acked straddler: keep the unacked suffix. *)
      let cut = Seq32.diff una s.s_seq in
      s.s_seq <- una;
      s.s_len <- s.s_len - cut;
      s :: rest
    | rest -> rest
  in
  t.segs <- go t.segs;
  if t.segs = [] then t.any_sacked <- false;
  !tx_max

let apply_sacks t ~blocks =
  let newly = ref 0 and tx_max = ref (-1) in
  List.iter
    (fun (bs, be) ->
      if Seq32.lt bs be then
        List.iter
          (fun s ->
            if
              (not s.s_sacked)
              && Seq32.geq s.s_seq bs
              && Seq32.leq (seg_end s) be
            then begin
              s.s_sacked <- true;
              s.s_lost <- false;
              incr newly;
              t.c_sacked <- t.c_sacked + 1;
              if s.s_retx = 0 && s.s_tx_ns > !tx_max then tx_max := s.s_tx_ns;
              if (not t.any_sacked) || Seq32.gt (seg_end s) t.high_sacked then
                t.high_sacked <- seg_end s;
              t.any_sacked <- true
            end)
          t.segs)
    blocks;
  (!newly, !tx_max)

let mark_lost_dupthresh t ~dupthresh =
  (* Walk from the highest segment down, counting sacked segments above. *)
  let newly = ref 0 in
  let above = ref 0 in
  List.iter
    (fun s ->
      if s.s_sacked then incr above
      else if !above >= dupthresh && (not s.s_lost) && s.s_retx = 0 then begin
        s.s_lost <- true;
        incr newly;
        t.c_lost <- t.c_lost + 1
      end)
    (List.rev t.segs);
  !newly

let mark_front_lost t =
  match t.segs with
  | s :: _ when (not s.s_sacked) && (not s.s_lost) && s.s_retx = 0 ->
    s.s_lost <- true;
    t.c_lost <- t.c_lost + 1;
    1
  | _ -> 0

let mark_lost_older_than t ~threshold_ns =
  if not t.any_sacked then 0
  else begin
    let newly = ref 0 in
    List.iter
      (fun s ->
        if
          (not s.s_sacked)
          && (not s.s_lost)
          && Seq32.lt s.s_seq t.high_sacked
          && s.s_tx_ns <= threshold_ns
        then begin
          s.s_lost <- true;
          incr newly;
          t.c_lost <- t.c_lost + 1
        end)
      t.segs;
    !newly
  end

let next_lost t =
  match List.find_opt (fun s -> s.s_lost) t.segs with
  | Some s -> Some (s.s_seq, s.s_len)
  | None -> None

let last_unsacked t =
  List.fold_left
    (fun acc s -> if s.s_sacked then acc else Some (s.s_seq, s.s_len))
    None t.segs

let oldest_unsacked_tx t =
  if not t.any_sacked then None
  else
    List.fold_left
      (fun acc s ->
        if (not s.s_sacked) && (not s.s_lost) && Seq32.lt s.s_seq t.high_sacked
        then
          match acc with
          | None -> Some s.s_tx_ns
          | Some m -> Some (min m s.s_tx_ns)
        else acc)
      None t.segs

let live_segs t = List.length t.segs
let live_sacked t = List.length (List.filter (fun s -> s.s_sacked) t.segs)
let live_lost t = List.length (List.filter (fun s -> s.s_lost) t.segs)
let cum_sacked t = t.c_sacked
let cum_lost t = t.c_lost
let cum_retx t = t.c_retx

let to_json t =
  J.Obj
    [
      ("live_segs", J.Int (live_segs t));
      ("live_sacked", J.Int (live_sacked t));
      ("live_lost", J.Int (live_lost t));
      ("sacked", J.Int t.c_sacked);
      ("lost", J.Int t.c_lost);
      ("retx", J.Int t.c_retx);
    ]
