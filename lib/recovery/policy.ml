type kind = Reno | Sack | Rack_tlp

let name = function Reno -> "reno" | Sack -> "sack" | Rack_tlp -> "rack-tlp"

let of_string s =
  match String.lowercase_ascii s with
  | "reno" -> Some Reno
  | "sack" -> Some Sack
  | "rack" | "rack-tlp" | "rack_tlp" -> Some Rack_tlp
  | _ -> None

let all = [ Reno; Sack; Rack_tlp ]
