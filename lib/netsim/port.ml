module Sim = Tas_engine.Sim
module Packet = Tas_proto.Packet
module Tcp_header = Tas_proto.Tcp_header
module Ipv4_header = Tas_proto.Ipv4_header
module Span = Tas_telemetry.Span

(* Allocation-free circular packet FIFO (grows by doubling when full). The
   port sits on every packet's path twice (serialization, then propagation),
   so per-packet queue cells would dominate the hot-path allocation profile. *)
type ring = {
  mutable r_buf : Packet.t array;
  mutable r_head : int;
  mutable r_len : int;
}

let ring_create dummy cap = { r_buf = Array.make cap dummy; r_head = 0; r_len = 0 }

let ring_push r dummy pkt =
  let cap = Array.length r.r_buf in
  if r.r_len = cap then begin
    let bigger = Array.make (2 * cap) dummy in
    for i = 0 to r.r_len - 1 do
      bigger.(i) <- r.r_buf.((r.r_head + i) mod cap)
    done;
    r.r_buf <- bigger;
    r.r_head <- 0
  end;
  r.r_buf.((r.r_head + r.r_len) mod Array.length r.r_buf) <- pkt;
  r.r_len <- r.r_len + 1

let ring_pop r dummy =
  if r.r_len = 0 then None
  else begin
    let pkt = r.r_buf.(r.r_head) in
    r.r_buf.(r.r_head) <- dummy;
    r.r_head <- (r.r_head + 1) mod Array.length r.r_buf;
    r.r_len <- r.r_len - 1;
    Some pkt
  end

type t = {
  mutable span : Span.t;
  sim : Sim.t;
  rate_bps : float;
  delay : int;
  capacity : int;
  ecn_threshold : int option;
  queue : ring;
  inflight : ring;  (* serialized, now propagating; delivery is FIFO *)
  dummy : Packet.t;
  mutable queued_bytes : int;
  mutable transmitting : bool;
  mutable tx_pkt : Packet.t;  (* the one packet currently serializing *)
  mutable deliver : Packet.t -> unit;
  mutable tx_done_thunk : unit -> unit;  (* persistent: no per-packet closures *)
  mutable deliver_thunk : unit -> unit;
  mutable drops : int;
  mutable marks : int;
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable busy_ns : int;
}

let make_dummy () =
  Packet.make ~src_mac:0 ~dst_mac:0 ~src_ip:0 ~dst_ip:0
    ~tcp:
      {
        Tcp_header.src_port = 0;
        dst_port = 0;
        seq = 0;
        ack = 0;
        flags = Tcp_header.no_flags;
        window = 0;
        options = Tcp_header.no_options;
      }
    ~payload:Bytes.empty ()

let rec create sim ~rate_bps ~delay ?(capacity_pkts = 1024) ?ecn_threshold () =
  let dummy = make_dummy () in
  let t =
    {
      span = Span.disabled ();
      sim;
      rate_bps;
      delay;
      capacity = capacity_pkts;
      ecn_threshold;
      queue = ring_create dummy 64;
      inflight = ring_create dummy 64;
      dummy;
      queued_bytes = 0;
      transmitting = false;
      tx_pkt = dummy;
      deliver = ignore;
      tx_done_thunk = ignore;
      deliver_thunk = ignore;
      drops = 0;
      marks = 0;
      tx_packets = 0;
      tx_bytes = 0;
      busy_ns = 0;
    }
  in
  t.tx_done_thunk <- (fun () -> tx_done t);
  t.deliver_thunk <-
    (fun () ->
      (* Constant propagation delay: deliveries complete in push order. *)
      match ring_pop t.inflight t.dummy with
      | Some pkt -> t.deliver pkt
      | None -> assert false);
  t

and tx_done t =
  let pkt = t.tx_pkt in
  t.tx_pkt <- t.dummy;
  t.queued_bytes <- t.queued_bytes - Packet.wire_size pkt;
  t.tx_packets <- t.tx_packets + 1;
  t.tx_bytes <- t.tx_bytes + Packet.wire_size pkt;
  span_hop t pkt Span.Port_out;
  (* Propagation delay, then hand to the far end. *)
  ring_push t.inflight t.dummy pkt;
  Sim.post t.sim t.delay t.deliver_thunk;
  start_transmission t

and span_hop t pkt hop =
  if pkt.Packet.span >= 0 then
    Span.record t.span ~ts:(Sim.now t.sim) ~id:pkt.Packet.span ~hop ~core:(-1)
      ~flow:(-1)

and tx_time_ns t pkt =
  let bits = float_of_int (Packet.wire_size pkt * 8) in
  int_of_float (ceil (bits /. t.rate_bps *. 1e9))

and start_transmission t =
  match ring_pop t.queue t.dummy with
  | None -> t.transmitting <- false
  | Some pkt ->
    t.transmitting <- true;
    t.tx_pkt <- pkt;
    let tx = tx_time_ns t pkt in
    t.busy_ns <- t.busy_ns + tx;
    (* Fire-and-forget events: [post] recycles the queue entries, and the
       two per-packet events of every link hop reuse the port's persistent
       thunks — a packet's full hop allocates nothing. *)
    Sim.post t.sim tx t.tx_done_thunk

let set_deliver t f = t.deliver <- f
let set_span t span = t.span <- span

let enqueue t pkt =
  let qlen = t.queue.r_len + if t.transmitting then 1 else 0 in
  if qlen >= t.capacity then t.drops <- t.drops + 1
  else begin
    (* DCTCP marking: set CE when the instantaneous queue exceeds K and the
       packet is ECN-capable. *)
    let pkt =
      match t.ecn_threshold with
      | Some k
        when qlen >= k
             && (pkt.Packet.ip.Ipv4_header.ecn = Ipv4_header.Ect0
                || pkt.Packet.ip.Ipv4_header.ecn = Ipv4_header.Ect1) ->
        t.marks <- t.marks + 1;
        { pkt with Packet.ip = Ipv4_header.with_ce pkt.Packet.ip }
      | _ -> pkt
    in
    span_hop t pkt Span.Port_q;
    ring_push t.queue t.dummy pkt;
    t.queued_bytes <- t.queued_bytes + Packet.wire_size pkt;
    if not t.transmitting then start_transmission t
  end

let queue_len t = t.queue.r_len + if t.transmitting then 1 else 0
let queue_bytes t = t.queued_bytes
let drops t = t.drops
let marks t = t.marks
let tx_packets t = t.tx_packets
let tx_bytes t = t.tx_bytes

let busy_ns t = t.busy_ns

let register t m ?(labels = []) () =
  let module Metrics = Tas_telemetry.Metrics in
  let c name help f = Metrics.counter_fn m ~labels ~help name f in
  let g name help f = Metrics.gauge_fn m ~labels ~help name f in
  c "port_tx_packets" "packets fully transmitted" (fun () -> t.tx_packets);
  c "port_tx_bytes" "bytes fully transmitted" (fun () -> t.tx_bytes);
  c "port_drops" "packets tail-dropped at enqueue" (fun () -> t.drops);
  c "port_ecn_marks" "packets CE-marked at enqueue" (fun () -> t.marks);
  c "port_busy_ns" "cumulative transmission time" (fun () -> t.busy_ns);
  g "port_queue_pkts" "instantaneous queue depth" (fun () ->
      float_of_int (queue_len t));
  g "port_queue_bytes" "instantaneous queued bytes" (fun () ->
      float_of_int t.queued_bytes)
