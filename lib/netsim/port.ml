module Sim = Tas_engine.Sim
module Packet = Tas_proto.Packet
module Ipv4_header = Tas_proto.Ipv4_header
module Span = Tas_telemetry.Span

type t = {
  mutable span : Span.t;
  sim : Sim.t;
  rate_bps : float;
  delay : int;
  capacity : int;
  ecn_threshold : int option;
  queue : Packet.t Queue.t;
  mutable queued_bytes : int;
  mutable transmitting : bool;
  mutable deliver : Packet.t -> unit;
  mutable drops : int;
  mutable marks : int;
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable busy_ns : int;
}

let create sim ~rate_bps ~delay ?(capacity_pkts = 1024) ?ecn_threshold () =
  {
    span = Span.disabled ();
    sim;
    rate_bps;
    delay;
    capacity = capacity_pkts;
    ecn_threshold;
    queue = Queue.create ();
    queued_bytes = 0;
    transmitting = false;
    deliver = ignore;
    drops = 0;
    marks = 0;
    tx_packets = 0;
    tx_bytes = 0;
    busy_ns = 0;
  }

let set_deliver t f = t.deliver <- f
let set_span t span = t.span <- span

let span_hop t pkt hop =
  if pkt.Packet.span >= 0 then
    Span.record t.span ~ts:(Sim.now t.sim) ~id:pkt.Packet.span ~hop ~core:(-1)
      ~flow:(-1)

let tx_time_ns t pkt =
  let bits = float_of_int (Packet.wire_size pkt * 8) in
  int_of_float (ceil (bits /. t.rate_bps *. 1e9))

let rec start_transmission t =
  match Queue.take_opt t.queue with
  | None -> t.transmitting <- false
  | Some pkt ->
    t.transmitting <- true;
    let tx = tx_time_ns t pkt in
    t.busy_ns <- t.busy_ns + tx;
    (* Fire-and-forget events: [post] recycles the queue entries, so the
       two per-packet events of every link hop cost no entry allocation. *)
    Sim.post t.sim tx (fun () ->
        t.queued_bytes <- t.queued_bytes - Packet.wire_size pkt;
        t.tx_packets <- t.tx_packets + 1;
        t.tx_bytes <- t.tx_bytes + Packet.wire_size pkt;
        span_hop t pkt Span.Port_out;
        (* Propagation delay, then hand to the far end. *)
        Sim.post t.sim t.delay (fun () -> t.deliver pkt);
        start_transmission t)

let enqueue t pkt =
  let qlen = Queue.length t.queue + if t.transmitting then 1 else 0 in
  if qlen >= t.capacity then t.drops <- t.drops + 1
  else begin
    (* DCTCP marking: set CE when the instantaneous queue exceeds K and the
       packet is ECN-capable. *)
    let pkt =
      match t.ecn_threshold with
      | Some k
        when qlen >= k
             && (pkt.Packet.ip.Ipv4_header.ecn = Ipv4_header.Ect0
                || pkt.Packet.ip.Ipv4_header.ecn = Ipv4_header.Ect1) ->
        t.marks <- t.marks + 1;
        { pkt with Packet.ip = Ipv4_header.with_ce pkt.Packet.ip }
      | _ -> pkt
    in
    span_hop t pkt Span.Port_q;
    Queue.add pkt t.queue;
    t.queued_bytes <- t.queued_bytes + Packet.wire_size pkt;
    if not t.transmitting then start_transmission t
  end

let queue_len t = Queue.length t.queue + if t.transmitting then 1 else 0
let queue_bytes t = t.queued_bytes
let drops t = t.drops
let marks t = t.marks
let tx_packets t = t.tx_packets
let tx_bytes t = t.tx_bytes

let busy_ns t = t.busy_ns

let register t m ?(labels = []) () =
  let module Metrics = Tas_telemetry.Metrics in
  let c name help f = Metrics.counter_fn m ~labels ~help name f in
  let g name help f = Metrics.gauge_fn m ~labels ~help name f in
  c "port_tx_packets" "packets fully transmitted" (fun () -> t.tx_packets);
  c "port_tx_bytes" "bytes fully transmitted" (fun () -> t.tx_bytes);
  c "port_drops" "packets tail-dropped at enqueue" (fun () -> t.drops);
  c "port_ecn_marks" "packets CE-marked at enqueue" (fun () -> t.marks);
  c "port_busy_ns" "cumulative transmission time" (fun () -> t.busy_ns);
  g "port_queue_pkts" "instantaneous queue depth" (fun () ->
      float_of_int (queue_len t));
  g "port_queue_bytes" "instantaneous queued bytes" (fun () ->
      float_of_int t.queued_bytes)
