(** Composable, deterministic network fault injection.

    A [Fault.t] is a seeded-RNG stage wrapped around any delivery function
    ([Port.set_deliver], a NIC input, a switch hop). Per offered packet it
    applies at most one fault — scheduled link blackout, loss (uniform i.i.d.
    or Gilbert–Elliott bursty), payload/header corruption, duplication, or a
    bounded reordering hold — so the per-type injected counters reconcile
    exactly against receiver-side drop counters and the stage's own
    forwarded count:

      forwarded = offered - drops + dups

    Corrupted packets are delivered mutated, not dropped: payload corruption
    sets {!Tas_proto.Packet.t.corrupt} (caught by the NIC's checksum-offload
    validation), header corruption mangles the IP total length (caught by
    the TAS fast path's length validation). Everything is driven by one
    {!Tas_engine.Rng.t}, so equal seeds and equal packet sequences yield
    identical fault schedules.

    This module subsumes the former [Loss] (uniform drop) and [Reorder]
    (one-shot delay) injectors, with counting that the uncounted
    [Loss.wrap] lacked. *)

type ge = {
  p_gb : float;  (** P(good -> bad) per packet *)
  p_bg : float;  (** P(bad -> good) per packet; mean burst = 1/p_bg *)
  loss_good : float;  (** drop probability in the good state *)
  loss_bad : float;  (** drop probability in the bad state *)
}
(** Gilbert–Elliott two-state Markov loss model. *)

type reorder = {
  reorder_rate : float;  (** probability of holding a packet back *)
  reorder_window : int;  (** released after this many later packets pass *)
  max_hold_ns : int;  (** released by timer when traffic dries up *)
}

type spec = {
  uniform_loss : float;  (** i.i.d. drop probability (ignored under [ge]) *)
  ge : ge option;  (** bursty loss; takes precedence over [uniform_loss] *)
  dup_rate : float;  (** probability of delivering a packet twice *)
  corrupt_rate : float;  (** probability of damaging a packet *)
  corrupt_header_fraction : float;
      (** fraction of corruptions that mangle the IP header length (caught
          by fast-path length validation) instead of flipping a payload bit
          (caught by NIC checksum validation) *)
  reorder : reorder option;
  blackouts : (Tas_engine.Time_ns.t * Tas_engine.Time_ns.t) list;
      (** absolute [\[start, stop)] windows during which every packet is
          dropped (link down) *)
}

val passthrough : spec
(** All faults off. Compose with record update:
    [{ (Fault.uniform_loss 0.01) with dup_rate = 0.001 }]. *)

val uniform_loss : float -> spec

val bursty_loss :
  ?loss_good:float -> ?loss_bad:float -> p_gb:float -> p_bg:float -> unit ->
  spec
(** Gilbert–Elliott spec; [loss_good] defaults to 0, [loss_bad] to 1. *)

val bursty_of_rate : rate:float -> mean_burst_pkts:float -> spec
(** GE parameters whose stationary loss rate is [rate] with mean bad-state
    burst length [mean_burst_pkts] (loss_good = 0, loss_bad = 1):
    p_bg = 1/mean_burst, p_gb = rate*p_bg/(1-rate). *)

val flaps :
  first_ns:int -> down_ns:int -> up_ns:int -> count:int -> (int * int) list
(** Periodic link flap schedule for [spec.blackouts]: [count] outages of
    [down_ns] separated by [up_ns], the first starting at [first_ns]. *)

type counters = {
  mutable offered : int;  (** packets presented to the stage *)
  mutable forwarded : int;  (** deliveries performed (incl. dup copies) *)
  mutable uniform_drops : int;
  mutable burst_drops : int;  (** Gilbert–Elliott drops (either state) *)
  mutable blackout_drops : int;
  mutable dups : int;
  mutable payload_corrupts : int;
  mutable header_corrupts : int;
  mutable reorder_holds : int;
}

val total_drops : counters -> int
(** uniform + burst + blackout. *)

val total_corrupts : counters -> int

type t

val create : ?trace:Tas_telemetry.Trace.t -> Tas_engine.Sim.t ->
  Tas_engine.Rng.t -> spec -> t
(** The stage owns [rng] from here on. Injected faults are recorded into
    [trace] (kinds [Fault_drop]/[Fault_dup]/[Fault_corrupt]/[Fault_hold])
    when one is supplied and enabled. *)

val spec : t -> spec
val counters : t -> counters

val wrap : t -> (Tas_proto.Packet.t -> unit) -> Tas_proto.Packet.t -> unit
(** [wrap t deliver] is the faulty delivery function. A held (reordered)
    packet is re-delivered through [deliver] after [reorder_window] later
    packets pass or [max_hold_ns] elapses, whichever comes first. *)

val held : t -> int
(** Packets currently held for reordering (not yet delivered). *)

val flush : t -> unit
(** Deliver every held packet immediately (end-of-run drain). *)

val register :
  t -> Tas_telemetry.Metrics.t -> ?labels:Tas_telemetry.Metrics.labels ->
  unit -> unit
(** Export the per-type injected counters as [fault_*] metrics; pass
    distinguishing [labels] (e.g. [("dir", "a2b")]) when several stages
    share one registry. *)
