module Sim = Tas_engine.Sim
module Packet = Tas_proto.Packet
module Span = Tas_telemetry.Span

type route = Single of int | Ecmp of int array

type t = {
  sim : Sim.t;
  forwarding_delay : int;
  mutable ports : Port.t option array;
  mutable port_count : int;
  routes : (Tas_proto.Addr.ipv4, route) Hashtbl.t;
  mutable no_route : int;
  mutable span : Span.t;
}

let create sim ?(forwarding_delay = 500) () =
  {
    sim;
    forwarding_delay;
    ports = Array.make 8 None;
    port_count = 0;
    routes = Hashtbl.create 64;
    no_route = 0;
    span = Span.disabled ();
  }

let set_span t span = t.span <- span

let add_port t port =
  if t.port_count = Array.length t.ports then begin
    let bigger = Array.make (2 * t.port_count) None in
    Array.blit t.ports 0 bigger 0 t.port_count;
    t.ports <- bigger
  end;
  t.ports.(t.port_count) <- Some port;
  t.port_count <- t.port_count + 1;
  t.port_count - 1

let port t i =
  match if i < 0 || i >= t.port_count then None else t.ports.(i) with
  | Some p -> p
  | None -> invalid_arg "Switch.port: bad port id"

let add_route t dst port_id = Hashtbl.replace t.routes dst (Single port_id)

let add_ecmp_route t dst port_ids =
  match port_ids with
  | [] -> invalid_arg "Switch.add_ecmp_route: empty group"
  | [ p ] -> add_route t dst p
  | ps -> Hashtbl.replace t.routes dst (Ecmp (Array.of_list ps))

let input t pkt =
  match Hashtbl.find_opt t.routes pkt.Packet.ip.Tas_proto.Ipv4_header.dst with
  | None -> t.no_route <- t.no_route + 1
  | Some route ->
    let port_id =
      match route with
      | Single p -> p
      | Ecmp ps -> ps.(Packet.flow_hash pkt mod Array.length ps)
    in
    (match t.ports.(port_id) with
    | None -> t.no_route <- t.no_route + 1
    | Some out ->
      if pkt.Packet.span >= 0 then
        Span.record t.span ~ts:(Sim.now t.sim) ~id:pkt.Packet.span
          ~hop:Span.Switch_fwd ~core:(-1) ~flow:(-1);
      if t.forwarding_delay = 0 then Port.enqueue out pkt
      else
        Sim.post t.sim t.forwarding_delay (fun () -> Port.enqueue out pkt))

let no_route_drops t = t.no_route

let register t m ?(labels = []) () =
  let module Metrics = Tas_telemetry.Metrics in
  Metrics.counter_fn m ~labels ~help:"packets dropped for lack of a route"
    "switch_no_route_drops" (fun () -> t.no_route);
  for i = 0 to t.port_count - 1 do
    match t.ports.(i) with
    | None -> ()
    | Some p ->
      Port.register p m ~labels:(labels @ [ ("port", string_of_int i) ]) ()
  done
