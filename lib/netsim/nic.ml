module Packet = Tas_proto.Packet
module Span = Tas_telemetry.Span
module Rss_table = Tas_shard.Rss_table

let rss_table_size = Rss_table.default_size

type t = {
  sim : Tas_engine.Sim.t;
  ip : Tas_proto.Addr.ipv4;
  mac : Tas_proto.Addr.mac;
  num_queues : int;
  tx_port : Port.t;
  rss : Rss_table.t;
  mutable rx_handler : queue:int -> Packet.t -> unit;
  mutable rx_packets : int;
  mutable tx_packets : int;
  mutable rx_bytes : int;
  mutable tx_bytes : int;
  mutable rx_csum_drops : int;
  mutable span : Span.t;
  mutable span_origin : bool;
  mutable trace : Tas_telemetry.Trace.t;
}

let create sim ~ip ~mac ~num_queues ~tx_port () =
  if num_queues <= 0 then invalid_arg "Nic.create: need at least one queue";
  let t =
    {
      sim;
      ip;
      mac;
      num_queues;
      tx_port;
      rss = Rss_table.create ~size:rss_table_size ~num_queues ();
      rx_handler = (fun ~queue:_ _ -> ());
      rx_packets = 0;
      tx_packets = 0;
      rx_bytes = 0;
      tx_bytes = 0;
      rx_csum_drops = 0;
      span = Span.disabled ();
      span_origin = false;
      trace = Tas_telemetry.Trace.disabled ();
    }
  in
  t

let ip t = t.ip
let mac t = t.mac
let num_queues t = t.num_queues
let set_rx_handler t f = t.rx_handler <- f

let set_span t ?(origin = false) span =
  t.span <- span;
  t.span_origin <- origin

let set_trace t trace = t.trace <- trace

let input_valid t pkt =
  t.rx_packets <- t.rx_packets + 1;
  t.rx_bytes <- t.rx_bytes + Packet.wire_size pkt;
  if Span.enabled t.span then begin
    let ts = Tas_engine.Sim.now t.sim in
    if pkt.Packet.span >= 0 then
      Span.record t.span ~ts ~id:pkt.Packet.span ~hop:Span.Nic_rx ~core:(-1)
        ~flow:(-1)
    else if t.span_origin then
      pkt.Packet.span <-
        Span.start t.span ~ts ~hop:Span.Nic_rx ~core:(-1) ~flow:(-1)
  end;
  let queue = Rss_table.queue_for_hash t.rss (Packet.flow_hash pkt) in
  t.rx_handler ~queue pkt

(* Hardware checksum-offload validation: frames whose simulated "checksum
   would not verify" flag is set never reach the host stack. *)
let input t pkt =
  if pkt.Packet.corrupt then begin
    t.rx_csum_drops <- t.rx_csum_drops + 1;
    Tas_telemetry.Trace.record t.trace ~ts:(Tas_engine.Sim.now t.sim)
      ~kind:Tas_telemetry.Trace.Csum_drop ~core:(-1) ~flow:(-1)
  end
  else input_valid t pkt

let transmit t pkt =
  t.tx_packets <- t.tx_packets + 1;
  t.tx_bytes <- t.tx_bytes + Packet.wire_size pkt;
  if pkt.Packet.span >= 0 then
    Span.record t.span ~ts:(Tas_engine.Sim.now t.sim) ~id:pkt.Packet.span
      ~hop:Span.Nic_tx ~core:(-1) ~flow:(-1);
  Port.enqueue t.tx_port pkt

let set_active_queues t n =
  if n < 1 || n > t.num_queues then
    invalid_arg "Nic.set_active_queues: out of range";
  Rss_table.set_active t.rss n

let rss t = t.rss
let active_queues t = Rss_table.active t.rss
let queue_for_hash t h = Rss_table.queue_for_hash t.rss h
let rx_packets t = t.rx_packets
let tx_packets t = t.tx_packets
let rx_bytes t = t.rx_bytes
let tx_bytes t = t.tx_bytes
let rx_csum_drops t = t.rx_csum_drops

let register t m ?(labels = []) () =
  let module Metrics = Tas_telemetry.Metrics in
  let c name help f = Metrics.counter_fn m ~labels ~help name f in
  c "nic_rx_packets" "packets delivered to the host" (fun () -> t.rx_packets);
  c "nic_tx_packets" "packets transmitted by the host" (fun () -> t.tx_packets);
  c "nic_rx_bytes" "wire bytes received" (fun () -> t.rx_bytes);
  c "nic_tx_bytes" "wire bytes transmitted" (fun () -> t.tx_bytes);
  c "nic_rx_csum_drops" "frames dropped by receive checksum validation"
    (fun () -> t.rx_csum_drops);
  Metrics.gauge_fn m ~labels ~help:"RSS queues currently in the redirection table"
    "nic_active_queues" (fun () -> float_of_int (Rss_table.active t.rss));
  Rss_table.register t.rss m ~labels ();
  Port.register t.tx_port m ~labels ()
