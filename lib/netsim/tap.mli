(** Packet tracing: wrap any delivery function to record or print packets
    flowing past a point in the simulated network — tcpdump for the
    simulator. Used by the debugging examples and by tests asserting on
    wire-level behaviour. *)

type record = {
  at : Tas_engine.Time_ns.t;
  pkt : Tas_proto.Packet.t;
}

type t

val create : ?limit:int -> unit -> t
(** Keep at most [limit] records (default 10_000; older records drop). *)

val wrap :
  t -> Tas_engine.Sim.t -> (Tas_proto.Packet.t -> unit) ->
  Tas_proto.Packet.t -> unit
(** [wrap t sim deliver] records then forwards each packet. *)

val records : t -> record list
(** In capture order. *)

val count : t -> int
val clear : t -> unit

val matching :
  t -> (Tas_proto.Packet.t -> bool) -> record list

val matching_tuple : t -> Tas_proto.Addr.Four_tuple.t -> record list
(** Records belonging to one connection, in either direction (the tuple or
    its {!Tas_proto.Addr.Four_tuple.flip}). *)

val pp_record : Format.formatter -> record -> unit
(** One tcpdump-style line: time, addresses, flags, seq/ack, length. *)

val dump : ?tuple:Tas_proto.Addr.Four_tuple.t -> Format.formatter -> t -> unit
(** Print the capture; [tuple] restricts output to one connection
    (both directions), like a tcpdump host/port filter. *)
