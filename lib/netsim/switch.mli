(** An output-queued Ethernet/IP switch.

    Forwarding is by destination IP: exact host routes, optionally ECMP
    groups (multiple candidate ports, selected by flow hash — the
    connection-stable multi-path routing the paper's fast path relies on for
    in-order delivery, §3.1). A small fixed pipeline latency models
    cut-through forwarding. *)

type t

val create :
  Tas_engine.Sim.t -> ?forwarding_delay:Tas_engine.Time_ns.t -> unit -> t
(** Default forwarding delay 500 ns. *)

val add_port : t -> Port.t -> int
(** Attach an output port; returns its port id. *)

val port : t -> int -> Port.t

val set_span : t -> Tas_telemetry.Span.t -> unit
(** Attach a span collector: span-annotated packets record a [Switch_fwd]
    hop when a route is found, before the forwarding-pipeline delay. *)

val add_route : t -> Tas_proto.Addr.ipv4 -> int -> unit
(** Route a destination host to an output port. Overwrites existing. *)

val add_ecmp_route : t -> Tas_proto.Addr.ipv4 -> int list -> unit
(** Route a destination over several ports; flows pick one by hash, so a
    given connection always takes the same path. *)

val input : t -> Tas_proto.Packet.t -> unit
(** Accept a packet for forwarding. Packets without a route are dropped and
    counted. *)

val no_route_drops : t -> int

val register :
  t -> Tas_telemetry.Metrics.t -> ?labels:Tas_telemetry.Metrics.labels -> unit -> unit
(** Register the no-route drop counter plus every attached output port's
    [port_*] metrics, each labelled with its port id. Ports attached after
    this call are not covered. *)
