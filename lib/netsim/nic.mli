(** Host network interface with receive-side scaling.

    Incoming packets are steered to one of [num_queues] receive queues via a
    128-entry RSS redirection table indexed by flow hash — the mechanism the
    TAS fast path uses both to pin flows to cores and to re-steer flows when
    the proportionality controller adds or removes cores (paper §3.4: "we
    eagerly update the NIC RSS redirection table"). *)

type t

val create :
  Tas_engine.Sim.t ->
  ip:Tas_proto.Addr.ipv4 ->
  mac:Tas_proto.Addr.mac ->
  num_queues:int ->
  tx_port:Port.t ->
  unit ->
  t

val ip : t -> Tas_proto.Addr.ipv4
val mac : t -> Tas_proto.Addr.mac
val num_queues : t -> int

val set_rx_handler : t -> (queue:int -> Tas_proto.Packet.t -> unit) -> unit
(** Install the host-side receive callback; invoked once per packet with the
    RSS-selected queue index. *)

val set_span : t -> ?origin:bool -> Tas_telemetry.Span.t -> unit
(** Attach a span collector: {!input} records a [Nic_rx] hop for annotated
    packets and — with [origin] (default false) — starts new spans for
    unannotated arrivals (the NIC-RX sampling origin); {!transmit} records
    [Nic_tx] for annotated packets. Defaults to a disabled collector. *)

val set_trace : t -> Tas_telemetry.Trace.t -> unit
(** Attach a trace ring; checksum-validation drops record [Csum_drop]
    events. Defaults to a disabled ring. *)

val input : t -> Tas_proto.Packet.t -> unit
(** Packet arriving from the network. Frames flagged as corrupt are dropped
    by the simulated hardware checksum-offload validation (counted in
    {!rx_csum_drops}) before touching RSS or the host receive handler. *)

val transmit : t -> Tas_proto.Packet.t -> unit
(** Packet leaving the host. *)

val rss : t -> Tas_shard.Rss_table.t
(** The NIC's RSS redirection table — shared with the host's per-queue
    flow-table shards, whose migration hook fires on every rewrite. *)

val set_active_queues : t -> int -> unit
(** Rewrite the RSS redirection table to spread flows over the first [n]
    queues (eager re-steering during fast-path core scale up/down). Fires
    the table's group-migration hook for every remapped flow group.
    @raise Invalid_argument if [n] is not within [1, num_queues]. *)

val active_queues : t -> int

val queue_for_hash : t -> int -> int
(** The RSS queue the current redirection table assigns to a flow hash —
    lets the host compute a flow's owning queue without a packet in hand. *)

val rx_packets : t -> int
val tx_packets : t -> int
val rx_bytes : t -> int
val tx_bytes : t -> int

val rx_csum_drops : t -> int
(** Frames discarded by receive checksum validation (fault-injected
    payload corruption). *)

val register :
  t -> Tas_telemetry.Metrics.t -> ?labels:Tas_telemetry.Metrics.labels -> unit -> unit
(** Register NIC packet/byte counters, the active-RSS-queue gauge, and the
    egress port's [port_*] metrics with the given labels. *)
