module Sim = Tas_engine.Sim
module Rng = Tas_engine.Rng
module Packet = Tas_proto.Packet
module Ipv4_header = Tas_proto.Ipv4_header
module Trace = Tas_telemetry.Trace
module Metrics = Tas_telemetry.Metrics

type ge = { p_gb : float; p_bg : float; loss_good : float; loss_bad : float }

type reorder = {
  reorder_rate : float;
  reorder_window : int;
  max_hold_ns : int;
}

type spec = {
  uniform_loss : float;
  ge : ge option;
  dup_rate : float;
  corrupt_rate : float;
  corrupt_header_fraction : float;
  reorder : reorder option;
  blackouts : (Tas_engine.Time_ns.t * Tas_engine.Time_ns.t) list;
}

let passthrough =
  {
    uniform_loss = 0.0;
    ge = None;
    dup_rate = 0.0;
    corrupt_rate = 0.0;
    corrupt_header_fraction = 0.0;
    reorder = None;
    blackouts = [];
  }

let uniform_loss rate = { passthrough with uniform_loss = rate }

let bursty_loss ?(loss_good = 0.0) ?(loss_bad = 1.0) ~p_gb ~p_bg () =
  { passthrough with ge = Some { p_gb; p_bg; loss_good; loss_bad } }

let bursty_of_rate ~rate ~mean_burst_pkts =
  if rate <= 0.0 || rate >= 1.0 then
    invalid_arg "Fault.bursty_of_rate: rate must be in (0, 1)";
  if mean_burst_pkts < 1.0 then
    invalid_arg "Fault.bursty_of_rate: mean_burst_pkts must be >= 1";
  let p_bg = 1.0 /. mean_burst_pkts in
  let p_gb = rate *. p_bg /. (1.0 -. rate) in
  bursty_loss ~p_gb ~p_bg ()

let flaps ~first_ns ~down_ns ~up_ns ~count =
  List.init count (fun i ->
      let start = first_ns + (i * (down_ns + up_ns)) in
      (start, start + down_ns))

type counters = {
  mutable offered : int;
  mutable forwarded : int;
  mutable uniform_drops : int;
  mutable burst_drops : int;
  mutable blackout_drops : int;
  mutable dups : int;
  mutable payload_corrupts : int;
  mutable header_corrupts : int;
  mutable reorder_holds : int;
}

let total_drops c = c.uniform_drops + c.burst_drops + c.blackout_drops
let total_corrupts c = c.payload_corrupts + c.header_corrupts

(* A packet held back for reordering. [remaining] counts subsequent
   first-pass deliveries that must overtake it; [released] guards against
   the count-based and timer-based release paths both firing. *)
type held_pkt = {
  h_pkt : Packet.t;
  h_deliver : Packet.t -> unit;
  mutable remaining : int;
  mutable released : bool;
}

type t = {
  sim : Sim.t;
  rng : Rng.t;
  spec : spec;
  trace : Trace.t;
  c : counters;
  mutable ge_bad : bool;
  mutable held : held_pkt list;  (* oldest first *)
}

let create ?trace sim rng spec =
  {
    sim;
    rng;
    spec;
    trace = (match trace with Some tr -> tr | None -> Trace.disabled ());
    c =
      {
        offered = 0;
        forwarded = 0;
        uniform_drops = 0;
        burst_drops = 0;
        blackout_drops = 0;
        dups = 0;
        payload_corrupts = 0;
        header_corrupts = 0;
        reorder_holds = 0;
      };
    ge_bad = false;
    held = [];
  }

let spec t = t.spec
let counters t = t.c

let trace_ev t kind =
  Trace.record t.trace ~ts:(Sim.now t.sim) ~kind ~core:(-1) ~flow:(-1)

let in_blackout t =
  let now = Sim.now t.sim in
  List.exists (fun (start, stop) -> now >= start && now < stop) t.spec.blackouts

(* Advance the Gilbert–Elliott chain one step, then draw a drop from the
   (possibly new) state's loss probability. *)
let ge_drop t g =
  (if t.ge_bad then begin
     if Rng.coin t.rng g.p_bg then t.ge_bad <- false
   end
   else if Rng.coin t.rng g.p_gb then t.ge_bad <- true);
  let p = if t.ge_bad then g.loss_bad else g.loss_good in
  p > 0.0 && Rng.coin t.rng p

(* Damage a functional-update copy so duplicate references to the original
   packet are not retroactively corrupted. *)
let corrupt_pkt t pkt =
  let as_header =
    t.spec.corrupt_header_fraction > 0.0
    && Rng.coin t.rng t.spec.corrupt_header_fraction
  in
  if as_header then begin
    t.c.header_corrupts <- t.c.header_corrupts + 1;
    let ip =
      { pkt.Packet.ip with
        Ipv4_header.total_length =
          pkt.Packet.ip.Ipv4_header.total_length + 1 + Rng.int t.rng 64 }
    in
    (* A fresh single-referent packet; it does not own the (shared) payload
       buffer, so its eventual release never recycles it under the held
       original. *)
    { pkt with Packet.ip; refs = 1; pooled = false }
  end
  else begin
    t.c.payload_corrupts <- t.c.payload_corrupts + 1;
    let payload =
      let src = pkt.Packet.payload in
      if Bytes.length src = 0 then src
      else begin
        let b = Bytes.copy src in
        let i = Rng.int t.rng (Bytes.length b) in
        let bit = 1 lsl Rng.int t.rng 8 in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor bit));
        b
      end
    in
    { pkt with Packet.payload; corrupt = true; refs = 1; pooled = false }
  end

let release t h =
  if not h.released then begin
    h.released <- true;
    t.c.forwarded <- t.c.forwarded + 1;
    h.h_deliver h.h_pkt
  end

(* Deliver a first-pass packet, then age held packets by one overtake and
   release any that are due. Releases do not recursively age other holds. *)
let pass t deliver pkt =
  t.c.forwarded <- t.c.forwarded + 1;
  deliver pkt;
  match t.held with
  | [] -> ()
  | held ->
      List.iter
        (fun h -> if not h.released then h.remaining <- h.remaining - 1)
        held;
      let due, rest =
        List.partition (fun h -> h.released || h.remaining <= 0) held
      in
      t.held <- rest;
      List.iter (release t) due

let held t = List.length (List.filter (fun h -> not h.released) t.held)

let flush t =
  let held = t.held in
  t.held <- [];
  List.iter (release t) held

let wrap t deliver pkt =
  t.c.offered <- t.c.offered + 1;
  if in_blackout t then begin
    t.c.blackout_drops <- t.c.blackout_drops + 1;
    trace_ev t Trace.Fault_drop
  end
  else
    let dropped =
      match t.spec.ge with
      | Some g ->
          let d = ge_drop t g in
          if d then t.c.burst_drops <- t.c.burst_drops + 1;
          d
      | None ->
          let d =
            t.spec.uniform_loss > 0.0 && Rng.coin t.rng t.spec.uniform_loss
          in
          if d then t.c.uniform_drops <- t.c.uniform_drops + 1;
          d
    in
    if dropped then trace_ev t Trace.Fault_drop
    else if t.spec.corrupt_rate > 0.0 && Rng.coin t.rng t.spec.corrupt_rate
    then begin
      trace_ev t Trace.Fault_corrupt;
      pass t deliver (corrupt_pkt t pkt)
    end
    else if t.spec.dup_rate > 0.0 && Rng.coin t.rng t.spec.dup_rate then begin
      t.c.dups <- t.c.dups + 1;
      trace_ev t Trace.Fault_dup;
      (* Two deliveries of the same packet: the extra reference keeps the
         first consumer's release from recycling the payload under the
         second copy. *)
      Packet.retain pkt;
      pass t deliver pkt;
      pass t deliver pkt
    end
    else
      match t.spec.reorder with
      | Some r when r.reorder_rate > 0.0 && Rng.coin t.rng r.reorder_rate ->
          t.c.reorder_holds <- t.c.reorder_holds + 1;
          trace_ev t Trace.Fault_hold;
          let h =
            { h_pkt = pkt; h_deliver = deliver;
              remaining = max 1 r.reorder_window; released = false }
          in
          t.held <- t.held @ [ h ];
          ignore
            (Sim.schedule t.sim r.max_hold_ns (fun () ->
                 if not h.released then begin
                   t.held <- List.filter (fun x -> x != h) t.held;
                   release t h
                 end))
      | _ -> pass t deliver pkt

let register t m ?labels () =
  let c = t.c in
  let cf name help read = Metrics.counter_fn m ?labels ~help name read in
  cf "fault_offered" "packets presented to the fault stage" (fun () ->
      c.offered);
  cf "fault_forwarded" "deliveries performed by the fault stage" (fun () ->
      c.forwarded);
  cf "fault_drops_uniform" "uniform random drops" (fun () -> c.uniform_drops);
  cf "fault_drops_burst" "Gilbert-Elliott bursty drops" (fun () ->
      c.burst_drops);
  cf "fault_drops_blackout" "drops during scheduled link blackouts" (fun () ->
      c.blackout_drops);
  cf "fault_dups" "duplicate deliveries injected" (fun () -> c.dups);
  cf "fault_corrupts_payload" "payload bit-flip corruptions injected"
    (fun () -> c.payload_corrupts);
  cf "fault_corrupts_header" "IP length manglings injected" (fun () ->
      c.header_corrupts);
  cf "fault_reorder_holds" "packets held back for reordering" (fun () ->
      c.reorder_holds)
