(** An output port: a finite FIFO feeding a serializing link.

    This models both a switch output port (finite queue, DCTCP-style ECN
    marking at a configurable threshold, tail drop) and a NIC egress (large
    queue, no marking). Packets are serialized at the link rate and delivered
    [delay] after serialization completes — the standard store-and-forward
    link model used by ns-3, which the paper's own simulations rely on. *)

type t

val create :
  Tas_engine.Sim.t ->
  rate_bps:float ->
  delay:Tas_engine.Time_ns.t ->
  ?capacity_pkts:int ->
  ?ecn_threshold:int ->
  unit ->
  t
(** [ecn_threshold] is in packets (the paper's switch marks at 65 packets);
    omitted means no marking. [capacity_pkts] defaults to 1024. *)

val set_deliver : t -> (Tas_proto.Packet.t -> unit) -> unit
(** Install the far-end delivery callback. Must be set before traffic flows
    (two-phase construction breaks the port/NIC wiring cycle). *)

val set_span : t -> Tas_telemetry.Span.t -> unit
(** Attach a span collector: span-annotated packets record [Port_q] at
    enqueue and [Port_out] when serialization completes, so the delta is
    the packet's queueing + serialization delay on this link. *)

val enqueue : t -> Tas_proto.Packet.t -> unit
(** Queue a packet for transmission; drops (tail-drop) when full and marks
    CE above the ECN threshold. *)

val queue_len : t -> int
(** Packets currently queued or in serialization. *)

val queue_bytes : t -> int
val drops : t -> int
val marks : t -> int
val tx_packets : t -> int
val tx_bytes : t -> int

val busy_ns : t -> int
(** Cumulative nanoseconds spent serializing since creation. Diff two
    snapshots to compute link utilization over a window. *)

val register :
  t -> Tas_telemetry.Metrics.t -> ?labels:Tas_telemetry.Metrics.labels -> unit -> unit
(** Register this port's counters (tx packets/bytes, drops, ECN marks, busy
    time) and queue-depth gauges under [port_*] metric names with the given
    labels. Read-through closures: no cost on the data path. *)
