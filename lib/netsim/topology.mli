(** Topology builders for the paper's experimental setups.

    - [point_to_point]: two hosts, one bidirectional link (compatibility and
      loss experiments, Fig. 7 / Table 4);
    - [star]: clients and a server behind one switch with DCTCP-style ECN
      marking (the testbed cluster: 10G client ports, 40G server port,
      marking threshold 65 packets);
    - [fat_tree]: 3-level k-ary fat tree with ECMP and bandwidth
      oversubscription (the large-cluster ns-3 simulation of §5.5, scaled
      down; oversubscription is expressed by slowing uplinks rather than
      removing them, which preserves the ECMP path structure). *)

type link_spec = {
  rate_bps : float;
  delay : Tas_engine.Time_ns.t;
  capacity_pkts : int;
  ecn_threshold : int option;
}

val link_10g : ?ecn_threshold:int -> unit -> link_spec
(** 10 Gbps, 2 µs propagation delay, 1024-packet queue. *)

val link_40g : ?ecn_threshold:int -> unit -> link_spec

type endpoint = {
  nic : Nic.t;
  host_id : int;
  uplink : Port.t;  (** host → network port (for utilization stats) *)
  downlink : Port.t;  (** network → host port *)
}

type point_to_point = {
  a : endpoint;
  b : endpoint;
  fault_ab : Fault.t option;  (** fault stage on the a→b direction *)
  fault_ba : Fault.t option;  (** fault stage on the b→a direction *)
}

val point_to_point :
  Tas_engine.Sim.t ->
  ?spec:link_spec ->
  ?loss_rate:float ->
  ?fault_ab:Fault.spec ->
  ?fault_ba:Fault.spec ->
  ?rng:Tas_engine.Rng.t ->
  ?trace:Tas_telemetry.Trace.t ->
  ?queues_per_nic:int ->
  unit ->
  point_to_point
(** Two directly-wired hosts (ids 0 and 1). [loss_rate] is shorthand for a
    symmetric uniform-loss {!Fault.spec} in both directions; [fault_ab] /
    [fault_ba] install arbitrary per-direction fault stages (and override
    [loss_rate] for their direction). Any fault requires [rng]; each
    direction draws from an independent split so the two streams do not
    perturb each other. [trace] is handed to the fault stages for
    fault-injection events. *)

type star = {
  switch : Switch.t;
  server : endpoint;
  clients : endpoint array;
}

val star :
  Tas_engine.Sim.t ->
  n_clients:int ->
  ?client_spec:link_spec ->
  ?server_spec:link_spec ->
  ?queues_per_nic:int ->
  unit ->
  star
(** Server is host id 0; clients are ids 1..n. Defaults: clients 10G,
    server 40G, ECN threshold 65 packets on switch ports. *)

type fat_tree = {
  ft_hosts : endpoint array;
  ft_all_ports : Port.t list;  (** every switch port, for queue statistics *)
  ft_core_ports : Port.t list;  (** aggregation→core and core→aggregation *)
}

val fat_tree :
  Tas_engine.Sim.t ->
  k:int ->
  ?host_spec:link_spec ->
  ?oversubscription:float ->
  ?queues_per_nic:int ->
  unit ->
  fat_tree
(** [k] must be even; yields [k^3/4] hosts. [oversubscription] (default 4.0)
    divides uplink bandwidth above the edge layer. *)
