(** Export captured packets in pcap format (the classic libpcap file
    format, readable by tcpdump/tshark/Wireshark), so simulated traces can
    be inspected with standard tooling.

    Timestamps use the capture's virtual nanoseconds (nanosecond-resolution
    pcap, magic 0xa1b23c4d). Packets are serialized through
    {!Tas_proto.Packet.to_wire}, i.e. with real checksums. *)

val to_bytes : Tap.record list -> bytes
(** A complete pcap file image for the given records. *)

val write_file : string -> Tap.record list -> unit
(** [write_file path records] writes the capture to [path]. *)

val of_tap : ?tuple:Tas_proto.Addr.Four_tuple.t -> Tap.t -> bytes
(** The tap's current capture as a pcap file image; [tuple] keeps only one
    connection's packets (both directions). *)

val write_tap :
  string -> ?tuple:Tas_proto.Addr.Four_tuple.t -> Tap.t -> unit
(** [write_tap path tap] = [write_file path] on the tap's (optionally
    tuple-filtered) records. *)

(** Reading back (for tests and inspection). *)
type parsed = {
  ts_ns : int;
  frame : bytes;
}

val parse : bytes -> parsed list
(** Parse a (nanosecond) pcap file image.
    @raise Invalid_argument on malformed input. *)
