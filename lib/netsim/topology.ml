module Sim = Tas_engine.Sim
module Time_ns = Tas_engine.Time_ns
module Addr = Tas_proto.Addr

type link_spec = {
  rate_bps : float;
  delay : Time_ns.t;
  capacity_pkts : int;
  ecn_threshold : int option;
}

let link_10g ?ecn_threshold () =
  { rate_bps = 10e9; delay = Time_ns.us 2; capacity_pkts = 1024; ecn_threshold }

let link_40g ?ecn_threshold () =
  { rate_bps = 40e9; delay = Time_ns.us 2; capacity_pkts = 1024; ecn_threshold }

type endpoint = {
  nic : Nic.t;
  host_id : int;
  uplink : Port.t;
  downlink : Port.t;
}

type point_to_point = {
  a : endpoint;
  b : endpoint;
  fault_ab : Fault.t option;
  fault_ba : Fault.t option;
}

let make_port sim spec =
  Port.create sim ~rate_bps:spec.rate_bps ~delay:spec.delay
    ~capacity_pkts:spec.capacity_pkts ?ecn_threshold:spec.ecn_threshold ()

let make_endpoint sim ~host_id ~queues ~uplink ~downlink =
  let nic =
    Nic.create sim ~ip:(Addr.host_ip host_id) ~mac:(Addr.host_mac host_id)
      ~num_queues:queues ~tx_port:uplink ()
  in
  Port.set_deliver downlink (fun pkt -> Nic.input nic pkt);
  { nic; host_id; uplink; downlink }

let point_to_point sim ?(spec = link_10g ()) ?(loss_rate = 0.0) ?fault_ab
    ?fault_ba ?rng ?trace ?(queues_per_nic = 4) () =
  let a_to_b = make_port sim spec in
  let b_to_a = make_port sim spec in
  let a = make_endpoint sim ~host_id:0 ~queues:queues_per_nic ~uplink:a_to_b ~downlink:b_to_a in
  let b = make_endpoint sim ~host_id:1 ~queues:queues_per_nic ~uplink:b_to_a ~downlink:a_to_b in
  (* A per-direction fault spec wins over the symmetric [loss_rate]
     shorthand; either way faults are injected by a counted Fault stage. *)
  let spec_for explicit =
    match explicit with
    | Some s -> Some s
    | None -> if loss_rate > 0.0 then Some (Fault.uniform_loss loss_rate) else None
  in
  let install fault_spec deliver port =
    match fault_spec with
    | None -> None
    | Some fs ->
        let rng =
          match rng with
          | Some r -> r
          | None -> invalid_arg "Topology.point_to_point: faults need an rng"
        in
        let stage = Fault.create ?trace sim (Tas_engine.Rng.split rng) fs in
        Port.set_deliver port (Fault.wrap stage deliver);
        Some stage
  in
  let fault_ab =
    install (spec_for fault_ab) (fun p -> Nic.input b.nic p) a_to_b
  in
  let fault_ba =
    install (spec_for fault_ba) (fun p -> Nic.input a.nic p) b_to_a
  in
  { a; b; fault_ab; fault_ba }

type star = {
  switch : Switch.t;
  server : endpoint;
  clients : endpoint array;
}

(* Attach a host to a switch: one port on the switch toward the host, and
   the host NIC's egress delivering into the switch. *)
let attach_host sim switch ~spec ~host_id ~queues =
  let downlink = make_port sim spec in
  let uplink = make_port sim spec in
  Port.set_deliver uplink (fun pkt -> Switch.input switch pkt);
  let ep = make_endpoint sim ~host_id ~queues ~uplink ~downlink in
  let port_id = Switch.add_port switch downlink in
  Switch.add_route switch (Nic.ip ep.nic) port_id;
  ep

let star sim ~n_clients ?client_spec ?server_spec ?(queues_per_nic = 16) () =
  let client_spec =
    match client_spec with Some s -> s | None -> link_10g ~ecn_threshold:65 ()
  in
  let server_spec =
    match server_spec with Some s -> s | None -> link_40g ~ecn_threshold:65 ()
  in
  let switch = Switch.create sim () in
  let server = attach_host sim switch ~spec:server_spec ~host_id:0 ~queues:queues_per_nic in
  let clients =
    Array.init n_clients (fun i ->
        attach_host sim switch ~spec:client_spec ~host_id:(i + 1)
          ~queues:queues_per_nic)
  in
  { switch; server; clients }

type fat_tree = {
  ft_hosts : endpoint array;
  ft_all_ports : Port.t list;
  ft_core_ports : Port.t list;
}

let fat_tree sim ~k ?host_spec ?(oversubscription = 4.0) ?(queues_per_nic = 4)
    () =
  if k < 2 || k mod 2 <> 0 then invalid_arg "Topology.fat_tree: k must be even";
  let host_spec =
    match host_spec with Some s -> s | None -> link_10g ~ecn_threshold:65 ()
  in
  let uplink_spec =
    { host_spec with rate_bps = host_spec.rate_bps /. oversubscription }
  in
  let half = k / 2 in
  let n_hosts = k * half * half in
  let all_ports = ref [] and core_ports = ref [] in
  (* Switch layers: per pod, [half] edge and [half] aggregation switches;
     globally [half*half] core switches. *)
  let edge = Array.init k (fun _ -> Array.init half (fun _ -> Switch.create sim ())) in
  let agg = Array.init k (fun _ -> Array.init half (fun _ -> Switch.create sim ())) in
  let core = Array.init (half * half) (fun _ -> Switch.create sim ()) in
  (* Connect two switches with a bidirectional pair of ports; returns the
     port ids on each side. *)
  let connect sw_a sw_b spec =
    let a_to_b = make_port sim spec and b_to_a = make_port sim spec in
    Port.set_deliver a_to_b (fun pkt -> Switch.input sw_b pkt);
    Port.set_deliver b_to_a (fun pkt -> Switch.input sw_a pkt);
    all_ports := a_to_b :: b_to_a :: !all_ports;
    (Switch.add_port sw_a a_to_b, Switch.add_port sw_b b_to_a)
  in
  (* Hosts: pod p, edge e, slot s -> host id p*half*half + e*half + s.
     [attach_host] installs the exact route for each host on its own edge
     switch. *)
  let hosts = Array.make n_hosts None in
  for p = 0 to k - 1 do
    for e = 0 to half - 1 do
      for s = 0 to half - 1 do
        let host_id = (p * half * half) + (e * half) + s in
        let ep = attach_host sim edge.(p).(e) ~spec:host_spec ~host_id ~queues:queues_per_nic in
        all_ports := ep.downlink :: !all_ports;
        hosts.(host_id) <- Some ep
      done
    done
  done;
  (* Edge <-> aggregation links within each pod. *)
  let edge_up = Array.init k (fun _ -> Array.make_matrix half half (0, 0)) in
  for p = 0 to k - 1 do
    for e = 0 to half - 1 do
      for a = 0 to half - 1 do
        edge_up.(p).(e).(a) <- connect edge.(p).(e) agg.(p).(a) uplink_spec
      done
    done
  done;
  (* Aggregation <-> core links: agg a of each pod connects to cores
     [a*half .. a*half+half-1]. *)
  let agg_up = Array.init k (fun _ -> Array.make_matrix half half (0, 0)) in
  for p = 0 to k - 1 do
    for a = 0 to half - 1 do
      for c = 0 to half - 1 do
        let core_id = (a * half) + c in
        let ids = connect agg.(p).(a) core.(core_id) uplink_spec in
        agg_up.(p).(a).(c) <- ids;
        (* Track core-layer ports for utilization measurements. *)
        let pa, pc = ids in
        core_ports := Switch.port agg.(p).(a) pa :: Switch.port core.(core_id) pc :: !core_ports
      done
    done
  done;
  (* Routing. For every destination host (pod pd, edge ed, slot sd): *)
  let host_ip id = Addr.host_ip id in
  for pd = 0 to k - 1 do
    for ed = 0 to half - 1 do
      for sd = 0 to half - 1 do
        let dst = (pd * half * half) + (ed * half) + sd in
        let ip = host_ip dst in
        ignore sd;
        (* Edge switches: the destination's own edge switch already has the
           exact host route from [attach_host]; all others go up via ECMP. *)
        for p = 0 to k - 1 do
          for e = 0 to half - 1 do
            if not (p = pd && e = ed) then
              Switch.add_ecmp_route edge.(p).(e) ip
                (List.init half (fun a -> fst edge_up.(p).(e).(a)))
          done
        done;
        (* Aggregation switches. *)
        for p = 0 to k - 1 do
          for a = 0 to half - 1 do
            if p = pd then
              Switch.add_route agg.(p).(a) ip (snd edge_up.(p).(ed).(a))
            else
              Switch.add_ecmp_route agg.(p).(a) ip
                (List.init half (fun c -> fst agg_up.(p).(a).(c)))
          done
        done;
        (* Core switches: core (a*half + c) port to pod p is the one created
           when pod p connected; its id equals p because ports are added in
           pod order. *)
        for a = 0 to half - 1 do
          for c = 0 to half - 1 do
            let core_id = (a * half) + c in
            ignore core_id;
            Switch.add_route core.(core_id) ip (snd agg_up.(pd).(a).(c))
          done
        done
      done
    done
  done;
  (* host_port entries were registered in attach_host; record them. *)
  let hosts =
    Array.map
      (function Some ep -> ep | None -> assert false)
      hosts
  in
  { ft_hosts = hosts; ft_all_ports = !all_ports; ft_core_ports = !core_ports }
