module Packet = Tas_proto.Packet
module Tcp = Tas_proto.Tcp_header

type record = { at : Tas_engine.Time_ns.t; pkt : Packet.t }

type t = {
  limit : int;
  queue : record Queue.t;
}

let create ?(limit = 10_000) () = { limit; queue = Queue.create () }

let wrap t sim deliver pkt =
  (* The ring holds the packet beyond its delivery; the reference keeps the
     consumer's release from recycling the payload under the record. *)
  Packet.retain pkt;
  Queue.add { at = Tas_engine.Sim.now sim; pkt } t.queue;
  if Queue.length t.queue > t.limit then ignore (Queue.take t.queue);
  deliver pkt

let records t = List.of_seq (Queue.to_seq t.queue)
let count t = Queue.length t.queue
let clear t = Queue.clear t.queue
let matching t pred = List.filter (fun r -> pred r.pkt) (records t)

(* A packet belongs to a connection regardless of direction: match the
   4-tuple as seen by the receiver, or its flip. *)
let packet_matches_tuple tuple pkt =
  let module Ft = Tas_proto.Addr.Four_tuple in
  let at_rx = Packet.four_tuple_at_receiver pkt in
  Ft.equal at_rx tuple || Ft.equal at_rx (Ft.flip tuple)

let matching_tuple t tuple = matching t (packet_matches_tuple tuple)

let pp_record fmt { at; pkt } =
  let tcp = pkt.Packet.tcp in
  let f = tcp.Tcp.flags in
  let flags =
    String.concat ""
      [
        (if f.Tcp.syn then "S" else "");
        (if f.Tcp.fin then "F" else "");
        (if f.Tcp.rst then "R" else "");
        (if f.Tcp.psh then "P" else "");
        (if f.Tcp.ack then "." else "");
        (if f.Tcp.ece then "E" else "");
      ]
  in
  Format.fprintf fmt "%a %a:%d > %a:%d [%s] seq %u ack %u win %d len %d"
    Tas_engine.Time_ns.pp at Tas_proto.Addr.pp_ipv4
    pkt.Packet.ip.Tas_proto.Ipv4_header.src tcp.Tcp.src_port
    Tas_proto.Addr.pp_ipv4 pkt.Packet.ip.Tas_proto.Ipv4_header.dst
    tcp.Tcp.dst_port flags tcp.Tcp.seq tcp.Tcp.ack tcp.Tcp.window
    (Bytes.length pkt.Packet.payload)

let dump ?tuple fmt t =
  let rs =
    match tuple with
    | None -> records t
    | Some tu -> matching_tuple t tu
  in
  List.iter (fun r -> Format.fprintf fmt "%a@." pp_record r) rs
