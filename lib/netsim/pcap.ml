module Packet = Tas_proto.Packet

(* Nanosecond pcap: magic 0xa1b23c4d, version 2.4, linktype 1 (Ethernet).
   All fields little-endian. *)

let set32 buf off v =
  Bytes.set buf off (Char.chr (v land 0xff));
  Bytes.set buf (off + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set buf (off + 2) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set buf (off + 3) (Char.chr ((v lsr 24) land 0xff))

let get32 buf off =
  Char.code (Bytes.get buf off)
  lor (Char.code (Bytes.get buf (off + 1)) lsl 8)
  lor (Char.code (Bytes.get buf (off + 2)) lsl 16)
  lor (Char.code (Bytes.get buf (off + 3)) lsl 24)

let set16 buf off v =
  Bytes.set buf off (Char.chr (v land 0xff));
  Bytes.set buf (off + 1) (Char.chr ((v lsr 8) land 0xff))

let file_header () =
  let h = Bytes.create 24 in
  set32 h 0 0xa1b23c4d (* nanosecond magic *);
  set16 h 4 2 (* major *);
  set16 h 6 4 (* minor *);
  set32 h 8 0 (* thiszone *);
  set32 h 12 0 (* sigfigs *);
  set32 h 16 65535 (* snaplen *);
  set32 h 20 1 (* LINKTYPE_ETHERNET *);
  h

let record_header ~ts_ns ~len =
  let h = Bytes.create 16 in
  set32 h 0 (ts_ns / 1_000_000_000);
  set32 h 4 (ts_ns mod 1_000_000_000);
  set32 h 8 len (* captured length *);
  set32 h 12 len (* original length *);
  h

let to_bytes records =
  let buf = Buffer.create 4096 in
  Buffer.add_bytes buf (file_header ());
  List.iter
    (fun { Tap.at; pkt } ->
      let frame = Packet.to_wire pkt in
      Buffer.add_bytes buf (record_header ~ts_ns:at ~len:(Bytes.length frame));
      Buffer.add_bytes buf frame)
    records;
  Buffer.to_bytes buf

let write_file path records =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc (to_bytes records))

let tap_records ?tuple tap =
  match tuple with
  | None -> Tap.records tap
  | Some tu -> Tap.matching_tuple tap tu

let of_tap ?tuple tap = to_bytes (tap_records ?tuple tap)
let write_tap path ?tuple tap = write_file path (tap_records ?tuple tap)

type parsed = { ts_ns : int; frame : bytes }

let parse buf =
  if Bytes.length buf < 24 then invalid_arg "Pcap.parse: short file";
  if get32 buf 0 <> 0xa1b23c4d then
    invalid_arg "Pcap.parse: not a nanosecond pcap file";
  let rec records off acc =
    if off = Bytes.length buf then List.rev acc
    else if Bytes.length buf - off < 16 then
      invalid_arg "Pcap.parse: truncated record header"
    else begin
      let sec = get32 buf off and nsec = get32 buf (off + 4) in
      let len = get32 buf (off + 8) in
      if Bytes.length buf - (off + 16) < len then
        invalid_arg "Pcap.parse: truncated record";
      let frame = Bytes.sub buf (off + 16) len in
      records (off + 16 + len)
        ({ ts_ns = (sec * 1_000_000_000) + nsec; frame } :: acc)
    end
  in
  records 24 []
