module Json = Tas_telemetry.Json

type signals = {
  s_ts : int;
  s_active : int;
  s_max_cores : int;
  s_idle_cores : float;
  s_core_idle : float array;
  s_sp_backlog_ns : int;
  s_flows : int;
  s_arena_occupancy : float;
  s_shard_imbalance : float;
  s_p99_us : float;
}

type spec =
  | Paper_threshold of { up_idle : float; down_idle : float }
  | Hysteresis of {
      up_idle : float;
      down_idle : float;
      up_cooldown_ticks : int;
      down_cooldown_ticks : int;
      up_step : int;
      down_confirm_ticks : int;
    }
  | Slo of {
      p99_target_us : float;
      headroom : float;
      up_cooldown_ticks : int;
      down_cooldown_ticks : int;
      min_idle_to_shrink : float;
      down_confirm_ticks : int;
    }

let paper_default = Paper_threshold { up_idle = 0.2; down_idle = 1.25 }

let hysteresis_default =
  Hysteresis
    {
      up_idle = 0.2;
      down_idle = 1.25;
      up_cooldown_ticks = 1;
      down_cooldown_ticks = 10;
      up_step = 2;
      down_confirm_ticks = 3;
    }

let slo_default ~p99_target_us =
  Slo
    {
      p99_target_us;
      headroom = 0.5;
      up_cooldown_ticks = 2;
      down_cooldown_ticks = 8;
      min_idle_to_shrink = 0.8;
      down_confirm_ticks = 3;
    }

let name = function
  | Paper_threshold _ -> "paper_threshold"
  | Hysteresis _ -> "hysteresis"
  | Slo _ -> "slo"

let spec_to_json spec =
  match spec with
  | Paper_threshold p ->
    Json.Obj
      [
        ("policy", Json.Str "paper_threshold");
        ("up_idle", Json.Float p.up_idle);
        ("down_idle", Json.Float p.down_idle);
      ]
  | Hysteresis p ->
    Json.Obj
      [
        ("policy", Json.Str "hysteresis");
        ("up_idle", Json.Float p.up_idle);
        ("down_idle", Json.Float p.down_idle);
        ("up_cooldown_ticks", Json.Int p.up_cooldown_ticks);
        ("down_cooldown_ticks", Json.Int p.down_cooldown_ticks);
        ("up_step", Json.Int p.up_step);
        ("down_confirm_ticks", Json.Int p.down_confirm_ticks);
      ]
  | Slo p ->
    Json.Obj
      [
        ("policy", Json.Str "slo");
        ("p99_target_us", Json.Float p.p99_target_us);
        ("headroom", Json.Float p.headroom);
        ("up_cooldown_ticks", Json.Int p.up_cooldown_ticks);
        ("down_cooldown_ticks", Json.Int p.down_cooldown_ticks);
        ("min_idle_to_shrink", Json.Float p.min_idle_to_shrink);
        ("down_confirm_ticks", Json.Int p.down_confirm_ticks);
      ]

let slo_target_cores ~p99_target_us ~headroom ~active ~p99_us =
  if p99_us < 0.0 then active
  else if p99_us > p99_target_us then active + 1
  else if p99_us < headroom *. p99_target_us then active - 1
  else active

type verdict = Grow | Shrink | Hold | Denied_cooldown | Held_confirm

let verdict_name = function
  | Grow -> "grow"
  | Shrink -> "shrink"
  | Hold -> "hold"
  | Denied_cooldown -> "denied_cooldown"
  | Held_confirm -> "held_confirm"

let verdict_code = function
  | Grow -> 0
  | Shrink -> 1
  | Hold -> 2
  | Denied_cooldown -> 3
  | Held_confirm -> 4

type decision = {
  d_ts : int;
  d_active : int;
  d_target : int;
  d_verdict : verdict;
  d_reason : string;
  d_signals : signals;
}

let decision_to_json d =
  Json.Obj
    [
      ("ts", Json.Int d.d_ts);
      ("active", Json.Int d.d_active);
      ("target", Json.Int d.d_target);
      ("verdict", Json.Str (verdict_name d.d_verdict));
      ("reason", Json.Str d.d_reason);
      ("idle_cores", Json.Float d.d_signals.s_idle_cores);
      ("sp_backlog_ns", Json.Int d.d_signals.s_sp_backlog_ns);
      ("flows", Json.Int d.d_signals.s_flows);
      ("p99_us", Json.Float d.d_signals.s_p99_us);
    ]

(* Cooldown/confirmation bookkeeping. [tick] counts decide calls;
   [last_grow]/[last_shrink] remember when the last action in each
   direction fired (very negative so the first action is never denied). *)
type state = {
  mutable tick : int;
  mutable last_grow : int;
  mutable last_shrink : int;
  mutable high_idle_streak : int;
  mutable low_p99_streak : int;
}

let never = min_int / 2

let create_state () =
  {
    tick = 0;
    last_grow = never;
    last_shrink = never;
    high_idle_streak = 0;
    low_p99_streak = 0;
  }

(* The legacy inline scaler, verbatim: shrink checked first, both
   conditions strict, one core per tick, no memory. *)
let decide_paper ~up_idle ~down_idle s =
  if s.s_idle_cores > down_idle && s.s_active > 1 then
    ( s.s_active - 1,
      Shrink,
      Printf.sprintf "idle %.2f > %.2f" s.s_idle_cores down_idle )
  else if s.s_idle_cores < up_idle && s.s_active < s.s_max_cores then
    ( s.s_active + 1,
      Grow,
      Printf.sprintf "idle %.2f < %.2f" s.s_idle_cores up_idle )
  else (s.s_active, Hold, Printf.sprintf "idle %.2f in band" s.s_idle_cores)

let decide_hysteresis ~up_idle ~down_idle ~up_cooldown_ticks
    ~down_cooldown_ticks ~up_step ~down_confirm_ticks st s =
  if s.s_idle_cores < up_idle && s.s_active < s.s_max_cores then begin
    (* Up-fast: a saturated fast path bleeds latency every tick we wait. *)
    st.high_idle_streak <- 0;
    if st.tick - st.last_grow >= up_cooldown_ticks then begin
      st.last_grow <- st.tick;
      let target = min (s.s_active + max 1 up_step) s.s_max_cores in
      ( target,
        Grow,
        Printf.sprintf "idle %.2f < %.2f: +%d" s.s_idle_cores up_idle
          (target - s.s_active) )
    end
    else
      ( s.s_active,
        Denied_cooldown,
        Printf.sprintf "grow cooldown %d/%d ticks" (st.tick - st.last_grow)
          up_cooldown_ticks )
  end
  else if s.s_idle_cores > down_idle && s.s_active > 1 then begin
    (* Down-slow: require the idle signal to persist, then rate-limit. *)
    st.high_idle_streak <- st.high_idle_streak + 1;
    if st.high_idle_streak < down_confirm_ticks then
      ( s.s_active,
        Held_confirm,
        Printf.sprintf "idle high %d/%d ticks" st.high_idle_streak
          down_confirm_ticks )
    else if st.tick - st.last_shrink >= down_cooldown_ticks then begin
      st.last_shrink <- st.tick;
      st.high_idle_streak <- 0;
      ( s.s_active - 1,
        Shrink,
        Printf.sprintf "idle %.2f > %.2f for %d ticks" s.s_idle_cores down_idle
          down_confirm_ticks )
    end
    else
      ( s.s_active,
        Denied_cooldown,
        Printf.sprintf "shrink cooldown %d/%d ticks" (st.tick - st.last_shrink)
          down_cooldown_ticks )
  end
  else begin
    st.high_idle_streak <- 0;
    (s.s_active, Hold, Printf.sprintf "idle %.2f in band" s.s_idle_cores)
  end

let decide_slo ~p99_target_us ~headroom ~up_cooldown_ticks
    ~down_cooldown_ticks ~min_idle_to_shrink ~down_confirm_ticks st s =
  if s.s_p99_us < 0.0 then begin
    st.low_p99_streak <- 0;
    (s.s_active, Hold, "p99 unavailable")
  end
  else begin
    let mapped =
      slo_target_cores ~p99_target_us ~headroom ~active:s.s_active
        ~p99_us:s.s_p99_us
    in
    if mapped > s.s_active && s.s_active < s.s_max_cores then begin
      st.low_p99_streak <- 0;
      if st.tick - st.last_grow >= up_cooldown_ticks then begin
        st.last_grow <- st.tick;
        ( min mapped s.s_max_cores,
          Grow,
          Printf.sprintf "p99 %.0fus > target %.0fus" s.s_p99_us p99_target_us
        )
      end
      else
        ( s.s_active,
          Denied_cooldown,
          Printf.sprintf "grow cooldown %d/%d ticks" (st.tick - st.last_grow)
            up_cooldown_ticks )
    end
    else if
      mapped < s.s_active && s.s_active > 1
      && s.s_idle_cores > min_idle_to_shrink
    then begin
      st.low_p99_streak <- st.low_p99_streak + 1;
      if st.low_p99_streak < down_confirm_ticks then
        ( s.s_active,
          Held_confirm,
          Printf.sprintf "p99 low %d/%d ticks" st.low_p99_streak
            down_confirm_ticks )
      else if st.tick - st.last_shrink >= down_cooldown_ticks then begin
        st.last_shrink <- st.tick;
        st.low_p99_streak <- 0;
        ( s.s_active - 1,
          Shrink,
          Printf.sprintf "p99 %.0fus < %.0f%% of target, idle %.2f" s.s_p99_us
            (headroom *. 100.0) s.s_idle_cores )
      end
      else
        ( s.s_active,
          Denied_cooldown,
          Printf.sprintf "shrink cooldown %d/%d ticks"
            (st.tick - st.last_shrink) down_cooldown_ticks )
    end
    else begin
      (* Inside the suppression band (or at a bound): flap suppression. *)
      st.low_p99_streak <- 0;
      ( s.s_active,
        Hold,
        Printf.sprintf "p99 %.0fus in [%.0f, %.0f]us band" s.s_p99_us
          (headroom *. p99_target_us) p99_target_us )
    end
  end

let decide spec st s =
  st.tick <- st.tick + 1;
  match spec with
  | Paper_threshold { up_idle; down_idle } -> decide_paper ~up_idle ~down_idle s
  | Hysteresis
      {
        up_idle;
        down_idle;
        up_cooldown_ticks;
        down_cooldown_ticks;
        up_step;
        down_confirm_ticks;
      } ->
    decide_hysteresis ~up_idle ~down_idle ~up_cooldown_ticks
      ~down_cooldown_ticks ~up_step ~down_confirm_ticks st s
  | Slo
      {
        p99_target_us;
        headroom;
        up_cooldown_ticks;
        down_cooldown_ticks;
        min_idle_to_shrink;
        down_confirm_ticks;
      } ->
    decide_slo ~p99_target_us ~headroom ~up_cooldown_ticks ~down_cooldown_ticks
      ~min_idle_to_shrink ~down_confirm_ticks st s
