module Json = Tas_telemetry.Json
module Trace = Tas_telemetry.Trace
module Metrics = Tas_telemetry.Metrics

type t = {
  policy : Policy.spec;
  state : Policy.state;
  min_cores : int;
  max_cores : int;
  trace : Trace.t;
  actuate : int -> unit;
  mutable p99_probe : (unit -> float) option;
  history : Policy.decision Queue.t;
  history_limit : int;
  mutable ticks : int;
  mutable scale_ups : int;
  mutable scale_downs : int;
  mutable denied_cooldown : int;
  mutable held_confirm : int;
  mutable target : int;
}

let create ?(policy = Policy.paper_default) ?(history_limit = 256)
    ?(trace = Trace.disabled ()) ~min_cores ~max_cores ~actuate () =
  if min_cores < 1 || max_cores < min_cores then
    invalid_arg "Controller.create: need 1 <= min_cores <= max_cores";
  {
    policy;
    state = Policy.create_state ();
    min_cores;
    max_cores;
    trace;
    actuate;
    p99_probe = None;
    history = Queue.create ();
    history_limit = max 1 history_limit;
    ticks = 0;
    scale_ups = 0;
    scale_downs = 0;
    denied_cooldown = 0;
    held_confirm = 0;
    target = min_cores;
  }

let set_p99_probe t probe = t.p99_probe <- Some probe

let tick t (signals : Policy.signals) =
  t.ticks <- t.ticks + 1;
  let signals =
    match t.p99_probe with
    | Some probe when signals.Policy.s_p99_us < 0.0 ->
      { signals with Policy.s_p99_us = probe () }
    | _ -> signals
  in
  let raw_target, verdict, reason = Policy.decide t.policy t.state signals in
  let clamped = max t.min_cores (min raw_target t.max_cores) in
  (* A target the clamp collapsed back to the current count is not a scale
     action — demote so the audit trail matches what actually happened. *)
  let verdict, reason =
    if clamped = signals.Policy.s_active then
      match verdict with
      | Policy.Grow | Policy.Shrink ->
        (Policy.Hold, reason ^ " (clamped to bounds)")
      | v -> (v, reason)
    else (verdict, reason)
  in
  let target =
    if clamped = signals.Policy.s_active then signals.Policy.s_active
    else clamped
  in
  (match verdict with
  | Policy.Grow -> t.scale_ups <- t.scale_ups + 1
  | Policy.Shrink -> t.scale_downs <- t.scale_downs + 1
  | Policy.Denied_cooldown -> t.denied_cooldown <- t.denied_cooldown + 1
  | Policy.Held_confirm -> t.held_confirm <- t.held_confirm + 1
  | Policy.Hold -> ());
  if target <> signals.Policy.s_active then begin
    t.actuate target;
    Trace.record t.trace ~ts:signals.Policy.s_ts ~kind:Trace.Ctl_scale
      ~core:target ~flow:(Policy.verdict_code verdict)
  end;
  t.target <- target;
  let decision =
    {
      Policy.d_ts = signals.Policy.s_ts;
      d_active = signals.Policy.s_active;
      d_target = target;
      d_verdict = verdict;
      d_reason = reason;
      d_signals = signals;
    }
  in
  if Queue.length t.history >= t.history_limit then ignore (Queue.pop t.history);
  Queue.push decision t.history;
  decision

let policy t = t.policy
let min_cores t = t.min_cores
let max_cores t = t.max_cores
let target_cores t = t.target
let ticks t = t.ticks
let scale_ups t = t.scale_ups
let scale_downs t = t.scale_downs
let denied_cooldown t = t.denied_cooldown
let held_confirm t = t.held_confirm
let decisions t = List.of_seq (Queue.to_seq t.history)

let register t metrics =
  Metrics.counter_fn metrics "ctl_ticks" ~help:"controller ticks evaluated"
    (fun () -> t.ticks);
  Metrics.counter_fn metrics "ctl_scale_ups" ~help:"controller scale-up actions"
    (fun () -> t.scale_ups);
  Metrics.counter_fn metrics "ctl_scale_downs"
    ~help:"controller scale-down actions" (fun () -> t.scale_downs);
  Metrics.counter_fn metrics "ctl_denied_cooldown"
    ~help:"scale actions denied by cooldown" (fun () -> t.denied_cooldown);
  Metrics.counter_fn metrics "ctl_held_confirm"
    ~help:"shrinks held for confirmation" (fun () -> t.held_confirm);
  Metrics.gauge_fn metrics "ctl_target_cores"
    ~help:"controller target core count" (fun () -> float_of_int t.target)

let to_json t =
  Json.Obj
    [
      ("policy", Policy.spec_to_json t.policy);
      ("min_cores", Json.Int t.min_cores);
      ("max_cores", Json.Int t.max_cores);
      ("ticks", Json.Int t.ticks);
      ("scale_ups", Json.Int t.scale_ups);
      ("scale_downs", Json.Int t.scale_downs);
      ("denied_cooldown", Json.Int t.denied_cooldown);
      ("held_confirm", Json.Int t.held_confirm);
      ("target_cores", Json.Int t.target);
      ("decisions", Json.List (List.map Policy.decision_to_json (decisions t)));
    ]
