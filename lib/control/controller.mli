(** The elastic core controller: closed-loop autoscaling (paper §3.4).

    One controller per TAS instance. On every slow-path scaling tick the
    caller gathers {!Policy.signals} (per-core idle, slow-path backlog,
    flow/arena/shard occupancy, optionally windowed p99 latency) and calls
    {!tick}; the configured {!Policy.spec} proposes a target core count,
    the controller clamps it to [[min_cores, max_cores]] and — only when
    the target differs from the current count — invokes the actuation
    callback (which drives [Fast_path.set_active_cores] → batched RSS
    rewrites with drain-in-place flow migration).

    Every decision is auditable: a bounded decision history (oldest
    dropped), [ctl_*] metrics, and a structured [Ctl_scale] trace event per
    actuation (core = new core count, flow = {!Policy.verdict_code}). *)

type t

val create :
  ?policy:Policy.spec ->
  ?history_limit:int ->
  ?trace:Tas_telemetry.Trace.t ->
  min_cores:int ->
  max_cores:int ->
  actuate:(int -> unit) ->
  unit ->
  t
(** [policy] defaults to {!Policy.paper_default}; [history_limit] to 256
    decisions; [trace] to a disabled ring. [actuate n] is called only when
    a tick changes the core count, with [n] already clamped to
    [[min_cores, max_cores]].
    @raise Invalid_argument when [min_cores < 1] or [max_cores < min_cores]. *)

val set_p99_probe : t -> (unit -> float) -> unit
(** Wire a latency probe (windowed p99 in microseconds, negative = no
    samples this window). Substituted into any tick whose signals carry a
    negative [s_p99_us] — how the [Slo] policy sees application latency
    without the slow path depending on application metrics. *)

val tick : t -> Policy.signals -> Policy.decision
(** Run one closed-loop iteration; returns the recorded decision. *)

val policy : t -> Policy.spec
val min_cores : t -> int
val max_cores : t -> int

val target_cores : t -> int
(** The last actuated/held target (initially [min_cores], updated by every
    tick). *)

val ticks : t -> int
val scale_ups : t -> int
val scale_downs : t -> int
val denied_cooldown : t -> int
val held_confirm : t -> int

val decisions : t -> Policy.decision list
(** Bounded history, oldest first (at most [history_limit]). *)

val register : t -> Tas_telemetry.Metrics.t -> unit
(** Register [ctl_ticks] / [ctl_scale_ups] / [ctl_scale_downs] /
    [ctl_denied_cooldown] / [ctl_held_confirm] counters and the
    [ctl_target_cores] gauge. *)

val to_json : t -> Tas_telemetry.Json.t
(** Policy spec, counters, and the decision history — the audit record
    experiments attach to BENCH artifacts. *)
