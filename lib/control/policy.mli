(** Pluggable autoscaling policies for the elastic core controller.

    A policy is a pure decision table plus a small mutable confirmation /
    cooldown state: given the per-interval {!signals} the controller
    gathered, it proposes a target fast-path core count and explains the
    verdict. Policies never actuate anything themselves — the
    {!Controller} clamps the target and drives
    [Fast_path.set_active_cores]. *)

(** Per-interval observations handed to a policy on every controller tick.
    Everything here is already aggregated by the caller (one snapshot per
    tick), so a decision is a pure function of this record plus the
    policy's own cooldown state. *)
type signals = {
  s_ts : int;  (** sim time of the tick (ns) *)
  s_active : int;  (** fast-path cores currently active *)
  s_max_cores : int;  (** configured ceiling ([Config.max_fast_path_cores]) *)
  s_idle_cores : float;
      (** summed idle fraction over the active cores in the last check
          window — the paper's §3.4 workload-proportionality signal *)
  s_core_idle : float array;
      (** per-core idle fraction in the window (all configured cores;
          inactive cores read 1.0) *)
  s_sp_backlog_ns : int;  (** work queued behind the slow-path core *)
  s_flows : int;  (** flows installed in the fast-path flow table *)
  s_arena_occupancy : float;  (** live/capacity of the flow arena, 0 when unbacked *)
  s_shard_imbalance : float;  (** max/mean per-shard flows, 1.0 when balanced or unknown *)
  s_p99_us : float;
      (** windowed p99 application latency (us); negative when no latency
          probe is wired (the controller substitutes its probe, if any) *)
}

(** Policy specifications (pure data, so configs stay comparable and
    printable). *)
type spec =
  | Paper_threshold of { up_idle : float; down_idle : float }
      (** The paper's §3.4 rule, verbatim: shrink one core when the summed
          idle over active cores exceeds [down_idle] (1.25), grow one when
          it falls below [up_idle] (0.2). No damping — reproduces the
          legacy inline scaler exactly, F15 latency blip included. *)
  | Hysteresis of {
      up_idle : float;
      down_idle : float;
      up_cooldown_ticks : int;  (** min ticks between grow actions *)
      down_cooldown_ticks : int;  (** min ticks between shrink actions *)
      up_step : int;  (** cores added per grow (shrink is always 1) *)
      down_confirm_ticks : int;
          (** consecutive high-idle ticks required before a shrink *)
    }
      (** Asymmetric damping: grow fast (optionally multiple cores, short
          cooldown), shrink slow (confirmation window + long cooldown) so
          scale-down happens after load has genuinely receded — tuned to
          shrink the F15 scale-down latency blip. *)
  | Slo of {
      p99_target_us : float;  (** grow whenever windowed p99 exceeds this *)
      headroom : float;
          (** shrink only when p99 < headroom * target (e.g. 0.5) — the
          flap-suppression band between grow and shrink triggers *)
      up_cooldown_ticks : int;
      down_cooldown_ticks : int;
      min_idle_to_shrink : float;
          (** additionally require this much summed idle before shrinking *)
      down_confirm_ticks : int;
    }
      (** Latency-target mode: map the windowed p99 to a core count via
          {!slo_target_cores}. Holds (never shrinks) while the latency
          probe has no samples. *)

val paper_default : spec
(** [Paper_threshold { up_idle = 0.2; down_idle = 1.25 }] — the paper's
    thresholds and the [Config.default] scaling policy. *)

val hysteresis_default : spec
val slo_default : p99_target_us:float -> spec

val name : spec -> string
(** ["paper_threshold" | "hysteresis" | "slo"]. *)

val spec_to_json : spec -> Tas_telemetry.Json.t

val slo_target_cores :
  p99_target_us:float -> headroom:float -> active:int -> p99_us:float -> int
(** The SLO core-count mapping: [active + 1] when p99 exceeds the target,
    [active - 1] when p99 is below [headroom * target], [active] inside
    the suppression band (or when [p99_us] is negative / unavailable). *)

type verdict =
  | Grow  (** target > active; the controller actuated a scale-up *)
  | Shrink  (** target < active; scale-down *)
  | Hold  (** signals inside the policy's dead band *)
  | Denied_cooldown  (** a scale action was due but its cooldown hasn't expired *)
  | Held_confirm  (** shrink signal present but the confirmation window is still filling *)

val verdict_name : verdict -> string

val verdict_code : verdict -> int
(** Stable small-int encoding ([Grow] = 0 …) — the [flow] field of
    [Ctl_scale] trace events (events are fixed-shape int records). *)

(** One controller tick, fully auditable: what was observed, what the
    policy said, what the controller did. *)
type decision = {
  d_ts : int;
  d_active : int;  (** cores before the tick *)
  d_target : int;  (** cores after (clamped); equals [d_active] unless Grow/Shrink *)
  d_verdict : verdict;
  d_reason : string;  (** the policy's one-line reasoning *)
  d_signals : signals;
}

val decision_to_json : decision -> Tas_telemetry.Json.t
(** Compact: ts/active/target/verdict/reason plus the load-bearing signals
    (idle, backlog, flows, p99). *)

type state
(** Mutable cooldown/confirmation bookkeeping, one per controller. *)

val create_state : unit -> state

val decide : spec -> state -> signals -> int * verdict * string
(** [(raw_target, verdict, reason)]. The target is not yet clamped to the
    controller's [min, max] bounds (policies already respect
    [s_active]/[s_max_cores], the clamp is defense in depth). *)
