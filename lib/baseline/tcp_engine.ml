module Sim = Tas_engine.Sim
module Nic = Tas_netsim.Nic
module Addr = Tas_proto.Addr
module Seq32 = Tas_proto.Seq32
module Packet = Tas_proto.Packet
module Tcp_header = Tas_proto.Tcp_header
module Ipv4_header = Tas_proto.Ipv4_header
module Window_cc = Tas_tcp.Window_cc
module Rtt = Tas_tcp.Rtt
module Ring = Tas_buffers.Ring_buffer

type recovery = Full_ooo | Go_back_n

type config = {
  mss : int;
  rx_buf : int;
  tx_buf : int;
  algorithm : Window_cc.algorithm;
  initial_window : int;
  recovery : recovery;
  initial_rto_ns : int;
  wscale : int;
}

let default_config =
  {
    mss = 1460;
    rx_buf = 65535;
    tx_buf = 65535;
    algorithm = Window_cc.Dctcp;
    initial_window = 10 * 1460;
    recovery = Full_ooo;
    initial_rto_ns = 10_000_000;
    wscale = 4;
  }

type state =
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Last_ack
  | Time_wait
  | Closed

module Tuple_tbl = Hashtbl.Make (struct
  type t = Addr.Four_tuple.t

  let equal = Addr.Four_tuple.equal
  let hash = Addr.Four_tuple.hash
end)

type conn = {
  stack : t;
  tuple : Addr.Four_tuple.t;
  mutable cb : callbacks;
  mutable state : state;
  (* Send side. *)
  iss : Seq32.t;
  tx : Ring.t;
  mutable snd_una : Seq32.t;
  mutable snd_nxt : Seq32.t;
  mutable snd_max : Seq32.t;  (* highest sequence ever sent *)
  mutable snd_wnd : int;
  cc : Window_cc.t;
  rtt : Rtt.t;
  mutable rto_event : Sim.event option;
  mutable dupacks : int;
  mutable in_recovery : bool;
  mutable recover_seq : Seq32.t;
  mutable fin_queued : bool;
  mutable fin_sent : bool;
  (* Receive side. *)
  mutable rcv_nxt : Seq32.t;
  mutable ooo : (Seq32.t * bytes) list;
  mutable ts_recent : int;
  mutable peer_wscale : int;
  (* Stats. *)
  mutable delivered : int;
  mutable acked_total : int;
  mutable retransmit_count : int;
}

and callbacks = {
  on_connected : conn -> unit;
  on_receive : conn -> bytes -> unit;
  on_sendable : conn -> int -> unit;
  on_closed : conn -> unit;
}

and t = {
  sim : Sim.t;
  nic : Nic.t;
  config : config;
  conns : conn Tuple_tbl.t;
  listeners : (int, conn -> callbacks) Hashtbl.t;
  mutable next_ephemeral : int;
  mutable next_iss : int;
  mutable total_retransmits : int;
  mutable tx_hook : (Packet.t -> unit) option;
}

let null_callbacks =
  {
    on_connected = (fun _ -> ());
    on_receive = (fun _ _ -> ());
    on_sendable = (fun _ _ -> ());
    on_closed = (fun _ -> ());
  }

let create sim nic config =
  {
    sim;
    nic;
    config;
    conns = Tuple_tbl.create 256;
    listeners = Hashtbl.create 16;
    next_ephemeral = 32768;
    next_iss = 1000;
    total_retransmits = 0;
    tx_hook = None;
  }

let set_tx_hook t hook = t.tx_hook <- hook
let tuple c = c.tuple
let is_established c = c.state = Established
let bytes_delivered c = c.delivered
let bytes_acked c = c.acked_total
let retransmits c = c.retransmit_count
let srtt_ns c = Rtt.srtt_ns c.rtt
let cwnd c = Window_cc.cwnd c.cc
let connection_count t = Tuple_tbl.length t.conns
let total_retransmits t = t.total_retransmits
let tx_free c = Ring.free c.tx

(* First data byte's stream offset 0 corresponds to sequence iss+1. *)
let offset_of_seq c seq = Seq32.diff seq (Seq32.add c.iss 1)

let now_us t = Sim.now t.sim / 1000

let ecn_capable t =
  match t.config.algorithm with Window_cc.Dctcp -> true | Window_cc.Newreno -> false

(* --- Packet emission ------------------------------------------------- *)

let emit c ?(flags = Tcp_header.ack_flags) ?(payload = Bytes.empty)
    ?(seq = c.snd_nxt) ?mss_opt () =
  let t = c.stack in
  (* SYN segments advertise the unscaled window and carry the wscale
     option; everything else advertises rx_buf >> wscale (RFC 1323). *)
  let window =
    if flags.Tcp_header.syn then min 65535 t.config.rx_buf
    else min 65535 (t.config.rx_buf asr t.config.wscale)
  in
  let tcp =
    {
      Tcp_header.src_port = c.tuple.Addr.Four_tuple.local_port;
      dst_port = c.tuple.Addr.Four_tuple.peer_port;
      seq;
      ack = (if flags.Tcp_header.ack then c.rcv_nxt else 0);
      flags;
      window;
      options =
        {
          Tcp_header.mss = mss_opt;
          wscale = (if flags.Tcp_header.syn then Some t.config.wscale else None);
          timestamp = Some (now_us t land 0xFFFF_FFFF, c.ts_recent);
          sack = [];
        };
    }
  in
  let peer_id = Addr.host_id_of_ip c.tuple.Addr.Four_tuple.peer_ip in
  let ecn =
    if Bytes.length payload > 0 && ecn_capable t then Ipv4_header.Ect0
    else Ipv4_header.Not_ect
  in
  let pkt =
    Packet.make ~src_mac:(Nic.mac t.nic) ~dst_mac:(Addr.host_mac peer_id)
      ~src_ip:c.tuple.Addr.Four_tuple.local_ip
      ~dst_ip:c.tuple.Addr.Four_tuple.peer_ip ~ecn ~tcp ~payload ()
  in
  (match t.tx_hook with Some hook -> hook pkt | None -> ());
  Nic.transmit t.nic pkt

(* CE marks observed on received data are echoed on the ACK for that data —
   per-packet echo, the behaviour DCTCP requires. *)
let send_ack ?(ece = false) c =
  emit c ~flags:{ Tcp_header.ack_flags with ece } ()

(* --- Timers ----------------------------------------------------------- *)

let cancel_rto c =
  match c.rto_event with
  | Some ev ->
    Sim.cancel c.stack.sim ev;
    c.rto_event <- None
  | None -> ()

let rec arm_rto c =
  cancel_rto c;
  c.rto_event <-
    Some (Sim.schedule c.stack.sim (Rtt.rto_ns c.rtt) (fun () -> rto_fire c))

and rto_fire c =
  c.rto_event <- None;
  match c.state with
  | Closed | Time_wait -> ()
  | Syn_sent ->
    Rtt.backoff c.rtt;
    emit c
      ~flags:{ Tcp_header.no_flags with syn = true }
      ~seq:c.iss ~mss_opt:c.stack.config.mss ();
    arm_rto c
  | Syn_received ->
    Rtt.backoff c.rtt;
    emit c
      ~flags:{ Tcp_header.no_flags with syn = true; ack = true }
      ~seq:c.iss ~mss_opt:c.stack.config.mss ();
    arm_rto c
  | _ ->
    if Seq32.lt c.snd_una c.snd_nxt then begin
      (* Timeout: collapse to go-back-N from snd_una. *)
      Window_cc.on_timeout c.cc;
      Rtt.backoff c.rtt;
      c.retransmit_count <- c.retransmit_count + 1;
      c.stack.total_retransmits <- c.stack.total_retransmits + 1;
      c.in_recovery <- false;
      c.dupacks <- 0;
      c.snd_nxt <- c.snd_una;
      if c.fin_sent then c.fin_sent <- false;
      try_send c;
      if c.rto_event = None then arm_rto c
    end

(* --- Send path --------------------------------------------------------- *)

and send_segment c seq len =
  let payload = Bytes.create len in
  Ring.read_at c.tx ~pos:(offset_of_seq c seq) ~dst:payload ~dst_off:0 ~len;
  emit c ~flags:Tcp_header.data_flags ~payload ~seq ()

and try_send c =
  match c.state with
  | Established | Close_wait | Fin_wait_1 | Closing | Last_ack ->
    let t = c.stack in
    let continue = ref true in
    while !continue do
      let in_flight = Seq32.diff c.snd_nxt c.snd_una in
      let wnd = min (Window_cc.cwnd c.cc) (max c.snd_wnd t.config.mss) in
      let budget = wnd - in_flight in
      let avail = Ring.head c.tx - offset_of_seq c c.snd_nxt in
      if avail > 0 && budget > 0 then begin
        let len = min t.config.mss (min avail budget) in
        send_segment c c.snd_nxt len;
        c.snd_nxt <- Seq32.add c.snd_nxt len;
        c.snd_max <- Seq32.max_s c.snd_max c.snd_nxt;
        if c.rto_event = None then arm_rto c
      end
      else begin
        continue := false;
        (* All data sent: emit a queued FIN if the window allows. *)
        if avail <= 0 && c.fin_queued && not c.fin_sent && budget > 0 then begin
          emit c ~flags:{ Tcp_header.ack_flags with fin = true } ();
          c.snd_nxt <- Seq32.add c.snd_nxt 1;
          c.snd_max <- Seq32.max_s c.snd_max c.snd_nxt;
          c.fin_sent <- true;
          if c.rto_event = None then arm_rto c
        end
      end
    done
  | Syn_sent | Syn_received | Fin_wait_2 | Time_wait | Closed -> ()

(* --- Connection teardown ---------------------------------------------- *)

let remove_conn c =
  cancel_rto c;
  c.state <- Closed;
  Tuple_tbl.remove c.stack.conns c.tuple

let enter_time_wait c =
  cancel_rto c;
  c.state <- Time_wait;
  (* Abbreviated TIME_WAIT: datacenter RTTs make 2MSL of 1 ms plenty for
     the simulation; keeps 96K-connection churn experiments bounded. *)
  ignore (Sim.schedule c.stack.sim 1_000_000 (fun () -> remove_conn c))

(* --- Receive path ------------------------------------------------------ *)

let deliver c payload =
  c.delivered <- c.delivered + Bytes.length payload;
  c.rcv_nxt <- Seq32.add c.rcv_nxt (Bytes.length payload);
  c.cb.on_receive c payload

(* Deliver any now-in-order segments held in the out-of-order list. *)
let drain_ooo c =
  let continue = ref true in
  while !continue do
    match c.ooo with
    | (seq, data) :: rest when Seq32.leq seq c.rcv_nxt ->
      c.ooo <- rest;
      let skip = Seq32.diff c.rcv_nxt seq in
      if skip < Bytes.length data then
        deliver c (Bytes.sub data skip (Bytes.length data - skip))
    | _ -> continue := false
  done

(* Insert an out-of-order segment, trimming overlap with the window, the
   delivered stream and existing segments. Keeps the list seq-sorted. *)
let store_ooo c seq data =
  let win_end = Seq32.add c.rcv_nxt c.stack.config.rx_buf in
  let seg_end = Seq32.add seq (Bytes.length data) in
  let seg_end = if Seq32.gt seg_end win_end then win_end else seg_end in
  let len = Seq32.diff seg_end seq in
  if len > 0 then begin
    let data = if len = Bytes.length data then data else Bytes.sub data 0 len in
    (* Insert keeping the list sorted and non-overlapping: segments already
       present win; only the parts of [data] not covered are kept. A
       leading part is cut against the next stored segment, a trailing part
       recurses past it. *)
    let rec insert_seq seq data l =
      if Bytes.length data = 0 then l
      else
        match l with
        | [] -> [ (seq, data) ]
        | (s, d) :: rest ->
          if Seq32.lt seq s then begin
            let keep = min (Bytes.length data) (Seq32.diff s seq) in
            if keep <= 0 then l
            else
              (seq, Bytes.sub data 0 keep)
              :: insert_seq (Seq32.add seq keep)
                   (Bytes.sub data keep (Bytes.length data - keep))
                   l
          end
          else begin
            let d_end = Seq32.add s (Bytes.length d) in
            if Seq32.geq seq d_end then (s, d) :: insert_seq seq data rest
            else begin
              let skip = Seq32.diff d_end seq in
              if skip >= Bytes.length data then l
              else
                (s, d)
                :: insert_seq (Seq32.add seq skip)
                     (Bytes.sub data skip (Bytes.length data - skip))
                     rest
            end
          end
    in
    c.ooo <- insert_seq seq data c.ooo
  end

let process_payload c (tcp : Tcp_header.t) payload ~ce =
  let len = Bytes.length payload in
  if len = 0 then ()
  else begin
    let seq = tcp.Tcp_header.seq in
    if Seq32.leq seq c.rcv_nxt then begin
      (* Possibly partially old data. *)
      let skip = Seq32.diff c.rcv_nxt seq in
      if skip < len then begin
        let fresh = Bytes.sub payload skip (len - skip) in
        let win = c.stack.config.rx_buf in
        let fresh =
          if Bytes.length fresh > win then Bytes.sub fresh 0 win else fresh
        in
        deliver c fresh;
        drain_ooo c
      end;
      send_ack ~ece:ce c
    end
    else begin
      (* Out of order. *)
      (match c.stack.config.recovery with
      | Full_ooo -> store_ooo c seq payload
      | Go_back_n -> ());
      send_ack ~ece:ce c
    end
  end

let process_ack c (tcp : Tcp_header.t) ~payload_len =
  if tcp.Tcp_header.flags.Tcp_header.ack then begin
    let ack = tcp.Tcp_header.ack in
    c.snd_wnd <-
      (if tcp.Tcp_header.flags.Tcp_header.syn then tcp.Tcp_header.window
       else tcp.Tcp_header.window lsl c.peer_wscale);
    if Seq32.gt ack c.snd_una && Seq32.leq ack c.snd_max then begin
      (* After a timeout collapsed snd_nxt, an ACK for data the receiver
         already buffered can exceed snd_nxt: fast-forward. *)
      if Seq32.gt ack c.snd_nxt then c.snd_nxt <- ack;
      let acked = Seq32.diff ack c.snd_una in
      (* Data bytes acked excludes SYN/FIN sequence slots. *)
      let una_off = offset_of_seq c c.snd_una in
      let ack_off = offset_of_seq c ack in
      let data_acked =
        let lo = max 0 una_off and hi = min ack_off (Ring.head c.tx) in
        max 0 (hi - lo)
      in
      if data_acked > 0 && Ring.tail c.tx < Ring.head c.tx then
        Ring.advance_tail c.tx (min data_acked (Ring.used c.tx));
      c.snd_una <- ack;
      c.acked_total <- c.acked_total + data_acked;
      c.dupacks <- 0;
      (* RTT sample from the echoed timestamp. *)
      (match tcp.Tcp_header.options.Tcp_header.timestamp with
      | Some (_, ecr) when ecr > 0 ->
        let rtt_ns = (now_us c.stack - ecr) * 1000 in
        if rtt_ns >= 0 then begin
          Rtt.sample c.rtt rtt_ns;
          Rtt.reset_backoff c.rtt
        end
      | _ -> ());
      if c.in_recovery && Seq32.geq ack c.recover_seq then
        c.in_recovery <- false
      else if c.in_recovery then begin
        (* NewReno partial ACK: the next hole starts at the new snd_una. *)
        let avail = Ring.head c.tx - offset_of_seq c c.snd_una in
        let len = min c.stack.config.mss avail in
        if len > 0 then begin
          send_segment c c.snd_una len;
          c.retransmit_count <- c.retransmit_count + 1;
          c.stack.total_retransmits <- c.stack.total_retransmits + 1
        end
      end;
      if acked > 0 && not c.in_recovery then
        Window_cc.on_ack c.cc ~acked ~ecn:tcp.Tcp_header.flags.Tcp_header.ece;
      if Seq32.lt c.snd_una c.snd_nxt then arm_rto c else cancel_rto c;
      if data_acked > 0 then c.cb.on_sendable c data_acked;
      try_send c
    end
    else if
      ack = c.snd_una && payload_len = 0
      && Seq32.lt c.snd_una c.snd_nxt
      && not tcp.Tcp_header.flags.Tcp_header.syn
      && not tcp.Tcp_header.flags.Tcp_header.fin
    then begin
      c.dupacks <- c.dupacks + 1;
      if c.dupacks = 3 && not c.in_recovery then begin
        (* Fast retransmit. *)
        c.in_recovery <- true;
        c.recover_seq <- c.snd_nxt;
        Window_cc.on_fast_retransmit c.cc;
        c.retransmit_count <- c.retransmit_count + 1;
        c.stack.total_retransmits <- c.stack.total_retransmits + 1;
        let avail = Ring.head c.tx - offset_of_seq c c.snd_una in
        let len = min c.stack.config.mss avail in
        if len > 0 then send_segment c c.snd_una len;
        arm_rto c
      end
    end
  end

(* --- Per-state packet dispatch ----------------------------------------- *)

let handle_established c pkt (tcp : Tcp_header.t) =
  let flags = tcp.Tcp_header.flags in
  let ce = pkt.Packet.ip.Ipv4_header.ecn = Ipv4_header.Ce in
  (match tcp.Tcp_header.options.Tcp_header.timestamp with
  | Some (ts_val, _) -> c.ts_recent <- ts_val
  | None -> ());
  (* A retransmitted SYN-ACK means our handshake ACK was lost: re-ack. *)
  if flags.Tcp_header.syn then send_ack c;
  process_ack c tcp ~payload_len:(Bytes.length pkt.Packet.payload);
  if c.state <> Closed then begin
    process_payload c tcp pkt.Packet.payload ~ce;
    (* FIN processing: only when it is in order. *)
    let fin_seq = Seq32.add tcp.Tcp_header.seq (Bytes.length pkt.Packet.payload) in
    if flags.Tcp_header.fin && fin_seq = c.rcv_nxt then begin
      c.rcv_nxt <- Seq32.add c.rcv_nxt 1;
      send_ack c;
      match c.state with
      | Established ->
        c.state <- Close_wait;
        c.cb.on_closed c
      | Fin_wait_1 ->
        (* Our FIN not yet acked: simultaneous close. *)
        c.state <- Closing
      | Fin_wait_2 -> enter_time_wait c
      | _ -> ()
    end
  end

let handle_fin_ack c =
  (* Called when snd_una advanced; check whether our FIN is acked. *)
  if c.fin_sent && c.snd_una = c.snd_nxt then
    match c.state with
    | Fin_wait_1 -> c.state <- Fin_wait_2
    | Closing -> enter_time_wait c
    | Last_ack -> remove_conn c
    | _ -> ()

let handle_packet t pkt =
  let tcp = pkt.Packet.tcp in
  let tuple = Packet.four_tuple_at_receiver pkt in
  match Tuple_tbl.find_opt t.conns tuple with
  | Some c -> begin
    let flags = tcp.Tcp_header.flags in
    if flags.Tcp_header.rst then begin
      let was_established = c.state = Established || c.state = Close_wait in
      remove_conn c;
      if was_established then c.cb.on_closed c
    end
    else begin
      match c.state with
      | Syn_sent ->
        if flags.Tcp_header.syn && flags.Tcp_header.ack
           && tcp.Tcp_header.ack = Seq32.add c.iss 1 then begin
          c.rcv_nxt <- Seq32.add tcp.Tcp_header.seq 1;
          c.snd_una <- tcp.Tcp_header.ack;
          c.snd_wnd <- tcp.Tcp_header.window;
          (match tcp.Tcp_header.options.Tcp_header.wscale with
          | Some w -> c.peer_wscale <- w
          | None -> c.peer_wscale <- 0);
          (match tcp.Tcp_header.options.Tcp_header.timestamp with
          | Some (ts_val, _) -> c.ts_recent <- ts_val
          | None -> ());
          cancel_rto c;
          c.state <- Established;
          send_ack c;
          c.cb.on_connected c;
          try_send c
        end
      | Syn_received ->
        if flags.Tcp_header.ack && tcp.Tcp_header.ack = Seq32.add c.iss 1 then begin
          c.snd_una <- tcp.Tcp_header.ack;
          c.snd_wnd <- tcp.Tcp_header.window lsl c.peer_wscale;
          cancel_rto c;
          c.state <- Established;
          c.cb.on_connected c;
          (* The handshake ACK may carry data. *)
          handle_established c pkt tcp;
          try_send c
        end
        else if flags.Tcp_header.syn then begin
          (* Duplicate SYN: resend SYN-ACK. *)
          emit c
            ~flags:{ Tcp_header.no_flags with syn = true; ack = true }
            ~seq:c.iss ~mss_opt:t.config.mss ()
        end
      | Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Closing
      | Last_ack ->
        handle_established c pkt tcp;
        if c.state <> Closed then handle_fin_ack c
      | Time_wait ->
        if flags.Tcp_header.fin then send_ack c
      | Closed -> ()
    end
  end
  | None ->
    if tcp.Tcp_header.flags.Tcp_header.syn && not tcp.Tcp_header.flags.Tcp_header.ack
    then begin
      match Hashtbl.find_opt t.listeners tcp.Tcp_header.dst_port with
      | Some accept_fn ->
        let iss = Seq32.of_int (t.next_iss * 64021) in
        t.next_iss <- t.next_iss + 1;
        let c =
          {
            stack = t;
            tuple;
            cb = null_callbacks;
            state = Syn_received;
            iss;
            tx = Ring.create t.config.tx_buf;
            snd_una = iss;
            snd_nxt = Seq32.add iss 1;
            snd_max = Seq32.add iss 1;
            snd_wnd = tcp.Tcp_header.window;
            cc =
              Window_cc.create t.config.algorithm ~mss:t.config.mss
                ~initial_window:t.config.initial_window;
            rtt = Rtt.create ~initial_rto_ns:t.config.initial_rto_ns ();
            rto_event = None;
            dupacks = 0;
            in_recovery = false;
            recover_seq = iss;
            fin_queued = false;
            fin_sent = false;
            rcv_nxt = Seq32.add tcp.Tcp_header.seq 1;
            ooo = [];
            ts_recent =
              (match tcp.Tcp_header.options.Tcp_header.timestamp with
              | Some (v, _) -> v
              | None -> 0);
            peer_wscale =
              (match tcp.Tcp_header.options.Tcp_header.wscale with
              | Some w -> w
              | None -> 0);
            delivered = 0;
            acked_total = 0;
            retransmit_count = 0;
          }
        in
        c.cb <- accept_fn c;
        Tuple_tbl.add t.conns tuple c;
        emit c
          ~flags:{ Tcp_header.no_flags with syn = true; ack = true }
          ~seq:iss ~mss_opt:t.config.mss ();
        arm_rto c
      | None -> () (* No listener: silently drop (no RST storms). *)
    end

let attach t =
  Nic.set_rx_handler t.nic (fun ~queue:_ pkt -> handle_packet t pkt)

let listen t ~port accept_fn = Hashtbl.replace t.listeners port accept_fn

let connect t ?src_port ~dst_ip ~dst_port cb =
  let local_port =
    match src_port with
    | Some p -> p
    | None ->
      let p = t.next_ephemeral in
      t.next_ephemeral <- (if p >= 65535 then 2048 else p + 1);
      p
  in
  let tuple =
    {
      Addr.Four_tuple.local_ip = Nic.ip t.nic;
      local_port;
      peer_ip = dst_ip;
      peer_port = dst_port;
    }
  in
  if Tuple_tbl.mem t.conns tuple then
    invalid_arg "Tcp_engine.connect: 4-tuple already in use";
  let iss = Seq32.of_int (t.next_iss * 64021) in
  t.next_iss <- t.next_iss + 1;
  let c =
    {
      stack = t;
      tuple;
      cb;
      state = Syn_sent;
      iss;
      tx = Ring.create t.config.tx_buf;
      snd_una = iss;
      snd_nxt = Seq32.add iss 1;
      snd_max = Seq32.add iss 1;
      snd_wnd = t.config.mss;
      cc =
        Window_cc.create t.config.algorithm ~mss:t.config.mss
          ~initial_window:t.config.initial_window;
      rtt = Rtt.create ~initial_rto_ns:t.config.initial_rto_ns ();
      rto_event = None;
      dupacks = 0;
      in_recovery = false;
      recover_seq = iss;
      fin_queued = false;
      fin_sent = false;
      rcv_nxt = 0;
      ooo = [];
      ts_recent = 0;
      peer_wscale = 0;
      delivered = 0;
      acked_total = 0;
      retransmit_count = 0;
    }
  in
  Tuple_tbl.add t.conns tuple c;
  emit c
    ~flags:{ Tcp_header.no_flags with syn = true }
    ~seq:iss ~mss_opt:t.config.mss ();
  arm_rto c;
  c

let send c data =
  match c.state with
  | Established | Close_wait ->
    let n = Ring.push c.tx data ~off:0 ~len:(Bytes.length data) in
    if n > 0 then try_send c;
    n
  | Syn_sent | Syn_received ->
    (* Queue ahead of establishment. *)
    Ring.push c.tx data ~off:0 ~len:(Bytes.length data)
  | _ -> 0

let close c =
  match c.state with
  | Established ->
    c.state <- Fin_wait_1;
    c.fin_queued <- true;
    try_send c
  | Close_wait ->
    c.state <- Last_ack;
    c.fin_queued <- true;
    try_send c
  | Syn_sent | Syn_received -> remove_conn c
  | _ -> ()
