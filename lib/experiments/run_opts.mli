(** Process-wide run options shared between the CLI and the experiment
    modules.

    The registry writes [BENCH_<id>.json] artifacts and experiments size
    their trace rings; both consult this module so [tas_run]'s [--bench-dir]
    and [--trace-capacity] flags can override the defaults without
    threading parameters through every experiment entry point. *)

val set_bench_dir : string -> unit

val bench_dir : unit -> string
(** CLI override if set, else [$TAS_BENCH_DIR], else ["."]. *)

val set_trace_capacity : int -> unit

val trace_capacity : default:int -> int
(** CLI override if set, else [default]. *)

val set_jobs : int -> unit
(** Record the batch's [-j]/[--jobs] setting (floored at 1). *)

val jobs : unit -> int
(** The recorded parallelism (default 1). Experiments with internal
    independent sub-runs (chaos schedules, stats batches) fan out over
    their own domain pool of this size; the deterministic merge keeps
    their output byte-identical to a serial run. *)

val set_timeline_interval_ns : int -> unit
(** Record the CLI's [--interval] timeline sampling override (ns). *)

val timeline_interval_ns : default:int -> int
(** CLI override if set, else [default]. Experiments that record timelines
    consult this for their frame cadence. *)
