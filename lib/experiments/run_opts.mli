(** Process-wide run options shared between the CLI and the experiment
    modules.

    The registry writes [BENCH_<id>.json] artifacts and experiments size
    their trace rings; both consult this module so [tas_run]'s [--bench-dir]
    and [--trace-capacity] flags can override the defaults without
    threading parameters through every experiment entry point. *)

val set_bench_dir : string -> unit

val bench_dir : unit -> string
(** CLI override if set, else [$TAS_BENCH_DIR], else ["."]. *)

val set_trace_capacity : int -> unit

val trace_capacity : default:int -> int
(** CLI override if set, else [default]. *)
