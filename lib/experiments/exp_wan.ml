module Sim = Tas_engine.Sim
module Time_ns = Tas_engine.Time_ns
module Rng = Tas_engine.Rng
module Core = Tas_cpu.Core
module Topology = Tas_netsim.Topology
module Nic = Tas_netsim.Nic
module Port = Tas_netsim.Port
module Fault = Tas_netsim.Fault
module Config = Tas_core.Config
module Tas = Tas_core.Tas
module Libtas = Tas_core.Libtas
module Fast_path = Tas_core.Fast_path
module Transport = Tas_apps.Transport
module Pep_relay = Tas_apps.Pep_relay
module Packet = Tas_proto.Packet
module Policy = Tas_recovery.Policy
module J = Tas_telemetry.Json

(* One TAS host on [nic]. Fixed-rate senders isolate loss-recovery
   efficiency from congestion dynamics, as in the Fig. 7 harness. Buffers
   cover the largest grid BDP (94 Mbps x 40 ms RTT ~ 470 KB): a
   window-starved flow leaves spare rate budget that makes go-back-N's
   redundant resends free, measuring buffer starvation instead of
   recovery efficiency. *)
let tas_host ?control_interval_ns ?timeout_intervals sim nic ~policy ~rate_bps
    ~core_base =
  let base =
    {
      Config.default with
      Config.max_fast_path_cores = 2;
      rx_buf_size = 524288;
      tx_buf_size = 524288;
      cc = Tas_tcp.Interval_cc.Fixed_rate;
      initial_rate_bps = rate_bps;
      recovery_policy = policy;
    }
  in
  let config =
    {
      base with
      Config.control_interval_fixed_ns =
        (match control_interval_ns with
        | None -> base.Config.control_interval_fixed_ns
        | some -> some);
      timeout_intervals =
        (match timeout_intervals with
        | None -> base.Config.timeout_intervals
        | Some n -> n);
    }
  in
  let tas = Tas.create sim ~nic ~config () in
  let cores =
    [| Core.create sim ~id:core_base (); Core.create sim ~id:(core_base + 1) () |]
  in
  let lt = Tas.app tas ~app_cores:cores ~api:Libtas.Sockets in
  (tas, Transport.of_libtas lt ~ctx_of_conn:(fun i -> i mod 2))

type shape = Uniform | Bursty

let shape_name = function Uniform -> "uniform" | Bursty -> "bursty"

let fault_of ~shape ~rate =
  match shape with
  | Uniform -> Fault.uniform_loss rate
  | Bursty -> Fault.bursty_of_rate ~rate ~mean_burst_pkts:4.0

(* --- Goodput grid ------------------------------------------------------- *)

(* Bulk goodput of [flows] fixed-rate senders across one lossy link with
   the given one-way delay. Measured over 60..260 ms of virtual time. *)
let goodput ~policy ~delay_ms ~shape ~rate ~flows =
  let sim = Sim.create () in
  let rng = Rng.create 1234 in
  let spec =
    {
      Topology.rate_bps = 10e9;
      delay = Time_ns.ms delay_ms;
      capacity_pkts = 1024;
      ecn_threshold = Some 65;
    }
  in
  let fs = fault_of ~shape ~rate in
  let net =
    Topology.point_to_point sim ~spec ~fault_ab:fs ~fault_ba:fs ~rng
      ~queues_per_nic:8 ()
  in
  let _, sender =
    tas_host sim net.Topology.a.Topology.nic ~policy ~rate_bps:94e6
      ~core_base:500
  in
  let _, receiver =
    tas_host sim net.Topology.b.Topology.nic ~policy ~rate_bps:94e6
      ~core_base:600
  in
  let received = ref 0 in
  Transport.listen receiver ~port:5001 (fun _ ->
      {
        Transport.null_handlers with
        Transport.on_data = (fun _ d -> received := !received + Bytes.length d);
      });
  let chunk = Bytes.create 16384 in
  for _ = 1 to flows do
    let rec push conn = if Transport.send conn chunk > 0 then push conn in
    Transport.connect sender
      ~dst_ip:(Nic.ip net.Topology.b.Topology.nic) ~dst_port:5001
      (fun _ ->
        {
          Transport.null_handlers with
          Transport.on_connected = (fun conn -> push conn);
          Transport.on_sendable = (fun conn -> push conn);
        })
  done;
  Sim.run ~until:(Time_ns.ms 60) sim;
  let before = !received in
  Sim.run ~until:(Time_ns.ms 260) sim;
  float_of_int ((!received - before) * 8) /. 0.2 /. 1e9

(* --- Tail loss ---------------------------------------------------------- *)

(* Deterministically swallow the first copy of the segment carrying the
   final byte of a bounded transfer. With nothing behind it, no dup-ACKs
   ever arrive: repairing the tail is purely a timer race — RACK-TLP's
   probe (~2 x srtt) against the slow path's stall rewind (pinned at
   4 x 50 ms here). Returns (completion_ns, tlp_probes). *)
let tail_completion policy =
  let total = 32768 in
  let sim = Sim.create () in
  let spec =
    {
      Topology.rate_bps = 1e9;
      delay = Time_ns.ms 5;
      capacity_pkts = 1024;
      ecn_threshold = None;
    }
  in
  let net = Topology.point_to_point sim ~spec ~queues_per_nic:8 () in
  let seen = ref 0 and dropped = ref false in
  Port.set_deliver net.Topology.a.Topology.uplink (fun pkt ->
      let len = Bytes.length pkt.Packet.payload in
      if len > 0 && (not !dropped) && !seen + len >= total then dropped := true
      else begin
        if len > 0 then seen := !seen + len;
        Nic.input net.Topology.b.Topology.nic pkt
      end);
  let sender_tas, sender =
    tas_host sim net.Topology.a.Topology.nic ~policy ~rate_bps:1e9
      ~core_base:500 ~control_interval_ns:50_000_000 ~timeout_intervals:4
  in
  let _, receiver =
    tas_host sim net.Topology.b.Topology.nic ~policy ~rate_bps:1e9
      ~core_base:600 ~control_interval_ns:50_000_000 ~timeout_intervals:4
  in
  let got = ref 0 and done_at = ref None in
  Transport.listen receiver ~port:9001 (fun _ ->
      {
        Transport.null_handlers with
        Transport.on_data =
          (fun _ d ->
            got := !got + Bytes.length d;
            if !got >= total && !done_at = None then done_at := Some (Sim.now sim));
      });
  Transport.connect sender
    ~dst_ip:(Nic.ip net.Topology.b.Topology.nic) ~dst_port:9001
    (fun _ ->
      {
        Transport.null_handlers with
        Transport.on_connected =
          (fun conn -> ignore (Transport.send conn (Bytes.create total)));
      });
  Sim.run ~until:(Time_ns.ms 400) sim;
  let probes =
    (Fast_path.rec_stats (Tas.fast_path sender_tas)).Fast_path.rec_tlp_probes
  in
  (!done_at, probes)

(* --- Split-TCP PEP ------------------------------------------------------ *)

type path_result = {
  completed_at : Time_ns.t option;
  delivered : int;
  pep : Pep_relay.stats option;
}

let pep_conns = 8

let pep_bytes_per_conn = 65536

(* Drive [pep_conns] bounded client transfers to the server and close each
   connection once fully sent. [split = true] puts a PEP host in the
   middle: WAN leg client<->PEP (lossy, 10 ms), LAN leg PEP<->server
   (clean, 2 us); otherwise one end-to-end WAN link with the same fault. *)
let transfer_path ~policy ~split =
  let total = pep_conns * pep_bytes_per_conn in
  let sim = Sim.create () in
  let rng = Rng.create 4242 in
  let wan_spec =
    {
      Topology.rate_bps = 1e9;
      delay = Time_ns.ms 10;
      capacity_pkts = 1024;
      ecn_threshold = None;
    }
  in
  let fs = fault_of ~shape:Bursty ~rate:0.02 in
  let delivered = ref 0 and done_at = ref None in
  let serve transport ~port =
    Transport.listen transport ~port (fun _ ->
        {
          Transport.null_handlers with
          Transport.on_data =
            (fun _ d ->
              delivered := !delivered + Bytes.length d;
              if !delivered >= total && !done_at = None then
                done_at := Some (Sim.now sim));
          on_peer_closed = (fun conn -> Transport.close conn);
        })
  in
  let drive_clients transport ~dst_ip ~dst_port =
    for _ = 1 to pep_conns do
      let sent = ref 0 in
      let push conn =
        let rec go () =
          if !sent < pep_bytes_per_conn then begin
            let n =
              Transport.send conn
                (Bytes.create (min 16384 (pep_bytes_per_conn - !sent)))
            in
            if n > 0 then begin
              sent := !sent + n;
              if !sent >= pep_bytes_per_conn then Transport.close conn
              else go ()
            end
          end
        in
        go ()
      in
      Transport.connect transport ~dst_ip ~dst_port
        (fun _ ->
          {
            Transport.null_handlers with
            Transport.on_connected = push;
            Transport.on_sendable = push;
          })
    done
  in
  let pep =
    if split then begin
      let wan =
        Topology.point_to_point sim ~spec:wan_spec ~fault_ab:fs ~fault_ba:fs
          ~rng ~queues_per_nic:8 ()
      in
      let lan = Topology.point_to_point sim ~queues_per_nic:8 () in
      let _, client =
        tas_host sim wan.Topology.a.Topology.nic ~policy ~rate_bps:1e9
          ~core_base:500
      in
      let _, pep_front =
        tas_host sim wan.Topology.b.Topology.nic ~policy ~rate_bps:1e9
          ~core_base:600
      in
      let _, pep_back =
        tas_host sim lan.Topology.a.Topology.nic ~policy ~rate_bps:1e9
          ~core_base:700
      in
      let _, server =
        tas_host sim lan.Topology.b.Topology.nic ~policy ~rate_bps:1e9
          ~core_base:800
      in
      serve server ~port:5002;
      let stats =
        Pep_relay.attach ~front:pep_front ~listen_port:5001 ~back:pep_back
          ~dst_ip:(Nic.ip lan.Topology.b.Topology.nic) ~dst_port:5002 ()
      in
      drive_clients client
        ~dst_ip:(Nic.ip wan.Topology.b.Topology.nic) ~dst_port:5001;
      Some stats
    end
    else begin
      let net =
        Topology.point_to_point sim ~spec:wan_spec ~fault_ab:fs ~fault_ba:fs
          ~rng ~queues_per_nic:8 ()
      in
      let _, client =
        tas_host sim net.Topology.a.Topology.nic ~policy ~rate_bps:1e9
          ~core_base:500
      in
      let _, server =
        tas_host sim net.Topology.b.Topology.nic ~policy ~rate_bps:1e9
          ~core_base:600
      in
      serve server ~port:5002;
      drive_clients client
        ~dst_ip:(Nic.ip net.Topology.b.Topology.nic) ~dst_port:5002;
      None
    end
  in
  Sim.run ~until:(Time_ns.ms 800) sim;
  { completed_at = !done_at; delivered = !delivered; pep }

(* --- Report ------------------------------------------------------------- *)

let policies = [ Policy.Reno; Policy.Sack; Policy.Rack_tlp ]

let ms_of = function
  | Some t -> Printf.sprintf "%.1f" (Time_ns.to_ms_f t)
  | None -> "DNF"

let run ?(quick = false) fmt =
  Report.section fmt
    "WAN: pluggable loss recovery (reno / sack / rack-tlp) across RTT x \
     loss x burstiness";
  Report.note fmt
    "fixed-rate bulk flows on a 10G link; goodput over 200 ms. SACK must \
     never trail go-back-N; RACK-TLP adds timer-based repair";
  let rtts = if quick then [ 2 ] else [ 2; 10 ] in
  let rates = if quick then [ 0.02 ] else [ 0.005; 0.02 ] in
  let shapes = [ Uniform; Bursty ] in
  let flows = if quick then 20 else 30 in
  let grid_ok = ref true in
  let grid_points = ref 0 in
  let grid_json = ref [] in
  let rows =
    List.concat_map
      (fun delay_ms ->
        List.concat_map
          (fun rate ->
            List.map
              (fun shape ->
                let g p = goodput ~policy:p ~delay_ms ~shape ~rate ~flows in
                let reno = g Policy.Reno in
                let sack = g Policy.Sack in
                let rack = g Policy.Rack_tlp in
                let ok = sack >= reno *. 0.99 in
                incr grid_points;
                if not ok then grid_ok := false;
                grid_json :=
                  J.Obj
                    [
                      ("rtt_ms", J.Int (2 * delay_ms));
                      ("loss", J.Float rate);
                      ("shape", J.Str (shape_name shape));
                      ("reno_gbps", J.Float reno);
                      ("sack_gbps", J.Float sack);
                      ("rack_gbps", J.Float rack);
                      ("sack_ge_reno", J.Bool ok);
                    ]
                  :: !grid_json;
                [
                  string_of_int (2 * delay_ms);
                  Printf.sprintf "%.1f%%" (rate *. 100.);
                  shape_name shape;
                  Printf.sprintf "%.3f" reno;
                  Printf.sprintf "%.3f" sack;
                  Printf.sprintf "%.3f" rack;
                  (if ok then "yes" else "NO");
                ])
              shapes)
          rates)
      rtts
  in
  Report.table fmt
    ~header:
      [ "rtt[ms]"; "loss"; "shape"; "reno[Gbps]"; "sack[Gbps]"; "rack[Gbps]";
        "sack>=reno" ]
    ~rows;
  Report.kv fmt "sack >= reno at every grid point"
    (if !grid_ok then "yes" else "NO");

  Report.section fmt "Tail loss: deterministic last-segment drop (RTT 10 ms)";
  Report.note fmt
    "no dup-ACKs can repair a lost tail; RACK-TLP's probe timer must beat \
     the stall rewind (200 ms here) for both sack and reno";
  let tails = List.map (fun p -> (p, tail_completion p)) policies in
  Report.table fmt
    ~header:[ "policy"; "completion[ms]"; "tlp probes" ]
    ~rows:
      (List.map
         (fun (p, (t, probes)) ->
           [ Policy.name p; ms_of t; string_of_int probes ])
         tails);
  let t_of p = fst (List.assoc p tails) in
  let probes = snd (List.assoc Policy.Rack_tlp tails) in
  let rack_tail_ok =
    match (t_of Policy.Reno, t_of Policy.Sack, t_of Policy.Rack_tlp) with
    | Some reno, Some sack, Some rack -> rack < reno && rack < sack
    | _ -> false
  in
  Report.kv fmt "rack-tlp strictly fastest on the tail"
    (if rack_tail_ok && probes > 0 then "yes" else "NO");

  Report.section fmt
    "Split-TCP PEP: client -WAN(10ms, bursty 2%)- pep -LAN- server";
  Report.note fmt
    "the relay terminates WAN connections at the proxy and re-originates \
     them on the LAN leg; gate: byte conservation and clean teardown";
  let e2e = transfer_path ~policy:Policy.Rack_tlp ~split:false in
  let split = transfer_path ~policy:Policy.Rack_tlp ~split:true in
  let pep_stats =
    match split.pep with Some s -> s | None -> assert false
  in
  let total = pep_conns * pep_bytes_per_conn in
  let pep_completed = split.delivered = total in
  let pep_conserved = Pep_relay.conserved pep_stats in
  let pep_clean =
    pep_stats.Pep_relay.active = 0
    && pep_stats.Pep_relay.closed_pairs = pep_stats.Pep_relay.accepted
    && pep_stats.Pep_relay.accepted = pep_conns
  in
  Report.table fmt
    ~header:[ "path"; "completion[ms]"; "delivered[B]" ]
    ~rows:
      [
        [ "end-to-end"; ms_of e2e.completed_at; string_of_int e2e.delivered ];
        [ "pep split"; ms_of split.completed_at; string_of_int split.delivered ];
      ];
  Report.kv fmt "pep: all bytes delivered" (if pep_completed then "yes" else "NO");
  Report.kv fmt "pep: byte conservation (in == out both directions)"
    (if pep_conserved then "yes" else "NO");
  Report.kv fmt "pep: clean teardown (all pairs closed)"
    (if pep_clean then "yes" else "NO");
  Report.kv fmt "pep: peak relay buffering [B]"
    (string_of_int pep_stats.Pep_relay.peak_buffered);

  Report.attach "wan"
    (J.Obj
       [
         ("grid_points", J.Int !grid_points);
         ("sack_ge_reno_everywhere", J.Bool !grid_ok);
         ("grid", J.List (List.rev !grid_json));
         ("rack_tail_improves", J.Bool rack_tail_ok);
         ("tlp_probes", J.Int probes);
         ("pep_completed", J.Bool pep_completed);
         ( "pep_conservation_violations",
           J.Int (if pep_conserved then 0 else 1) );
         ("pep_clean_close", J.Bool pep_clean);
         ( "pep_peak_buffered",
           J.Int pep_stats.Pep_relay.peak_buffered );
       ])
