(** WAN loss-recovery experiment ([wan]): sweeps the pluggable recovery
    policies (Reno go-back-N, SACK scoreboard, RACK-TLP) across an RTT x
    loss-rate x burstiness grid between two TAS hosts, measures tail-loss
    repair with a deterministic last-segment drop, and runs a split-TCP
    performance-enhancing proxy ({!Tas_apps.Pep_relay}) on a WAN+LAN path
    checking byte conservation and clean teardown through the relay.

    The artifact carries a gateable "wan" verdict object: SACK goodput at
    least Reno's at every grid point, RACK-TLP strictly improving tail
    completion under the seeded tail loss, and zero conservation
    violations through the PEP. *)

val run : ?quick:bool -> Format.formatter -> unit
