module Sim = Tas_engine.Sim
module Core = Tas_cpu.Core
module Cost_model = Tas_cpu.Cost_model
module Config = Tas_core.Config
module Tas = Tas_core.Tas
module Libtas = Tas_core.Libtas
module E = Tas_baseline.Tcp_engine
module SM = Tas_baseline.Server_model
module Transport = Tas_apps.Transport
module Topology = Tas_netsim.Topology

type kind = Tas_ll | Tas_so | Linux | Ix | Mtcp

let kind_name = function
  | Tas_ll -> "TAS LL"
  | Tas_so -> "TAS SO"
  | Linux -> "Linux"
  | Ix -> "IX"
  | Mtcp -> "mTCP"

type server = {
  transport : Transport.t;
  ip : Tas_proto.Addr.ipv4;
  kind : kind;
  app_cores : Core.t array;
  stack_cores : Core.t array;
  tas : Tas.t option;
  sm : SM.t option;
}

(* Per-request cycle costs on each side of the app/stack split, from the
   calibrated profiles; used to pick the split that balances capacities
   (reproduces paper Table 6). *)
let split_costs kind ~app_cycles =
  match kind with
  | Tas_so -> Some (Cost_model.tas_sockets_cycles + app_cycles, 900)
  | Tas_ll -> Some (Cost_model.tas_lowlevel_cycles + app_cycles, 900)
  | Mtcp ->
    let p = Cost_model.mtcp in
    Some
      ( p.Cost_model.sockets_cycles + app_cycles,
        (2 * p.Cost_model.driver_cycles)
        + p.Cost_model.ip_cycles + p.Cost_model.tcp_rx_cycles
        + p.Cost_model.tcp_tx_cycles )
  | Linux | Ix -> None

let core_split kind ~total ~app_cycles =
  match split_costs kind ~app_cycles with
  | None -> (total, 0)
  | Some (app_cost, stack_cost) ->
    if total <= 1 then (1, 0)
    else begin
      let frac = float_of_int app_cost /. float_of_int (app_cost + stack_cost) in
      let app = int_of_float (Float.round (float_of_int total *. frac)) in
      let app = max 1 (min (total - 1) app) in
      (app, total - app)
    end

let build_server sim ~nic ~kind ~total_cores ?(app_cycles = 680)
    ?(buf_size = 16384) ?(tas_patch = fun c -> c) ?split ?span
    ?(timeline_ns = 0) () =
  let app_n, stack_n =
    match split with
    | Some s -> s
    | None -> core_split kind ~total:total_cores ~app_cycles
  in
  let app_cores = Array.init app_n (fun i -> Core.create sim ~id:i ()) in
  let stack_cores =
    Array.init stack_n (fun i -> Core.create sim ~id:(100 + i) ())
  in
  match kind with
  | Tas_ll | Tas_so ->
    let config =
      tas_patch
        {
          Config.default with
          Config.max_fast_path_cores = max 1 stack_n;
          rx_buf_size = buf_size;
          tx_buf_size = buf_size;
          timeline_interval_ns = timeline_ns;
        }
    in
    let tas = Tas.create sim ~nic ~config ?span () in
    let api = if kind = Tas_ll then Libtas.Lowlevel else Libtas.Sockets in
    let lt = Tas.app tas ~app_cores ~api in
    let n = Array.length app_cores in
    let transport = Transport.of_libtas lt ~ctx_of_conn:(fun i -> i mod n) in
    {
      transport;
      ip = Tas_netsim.Nic.ip nic;
      kind;
      app_cores;
      stack_cores = Tas.fp_cores tas;
      tas = Some tas;
      sm = None;
    }
  | Linux | Ix | Mtcp ->
    let profile =
      match kind with
      | Linux -> Cost_model.linux
      | Ix -> Cost_model.ix
      | Mtcp -> Cost_model.mtcp
      | Tas_ll | Tas_so -> assert false
    in
    let config =
      {
        E.default_config with
        E.rx_buf = buf_size;
        tx_buf = buf_size;
        recovery = (if kind = Linux then E.Full_ooo else E.Full_ooo);
      }
    in
    let placement =
      if kind = Mtcp then SM.Split { stack_cores } else SM.Inline
    in
    let sm =
      SM.create sim ~nic ~config ~profile ~app_cores ~placement ()
    in
    {
      transport = Transport.of_server_model sm;
      ip = Tas_netsim.Nic.ip nic;
      kind;
      app_cores;
      stack_cores;
      tas = None;
      sm = Some sm;
    }

let client_transport sim endpoint ?(buf_size = 16384) () =
  let config =
    {
      E.default_config with
      E.rx_buf = buf_size;
      tx_buf = buf_size;
      (* Linux client initial RTO (200 ms): an aggressive datacenter RTO
         would flood an intentionally-saturated server with duplicate
         requests while responses queue behind its round time. *)
      initial_rto_ns = 200_000_000;
    }
  in
  let engine = E.create sim endpoint.Topology.nic config in
  E.attach engine;
  Transport.of_engine engine

let measure_rate sim ~warmup ~measure counter =
  Sim.run ~until:(Sim.now sim + warmup) sim;
  let before = counter () in
  Sim.run ~until:(Sim.now sim + measure) sim;
  let delta = counter () - before in
  float_of_int delta /. Tas_engine.Time_ns.to_sec_f measure
