module Sim = Tas_engine.Sim
module Time_ns = Tas_engine.Time_ns
module Stats = Tas_engine.Stats
module Core = Tas_cpu.Core
module Topology = Tas_netsim.Topology
module Config = Tas_core.Config
module Tas = Tas_core.Tas
module Libtas = Tas_core.Libtas
module Transport = Tas_apps.Transport
module Rpc_echo = Tas_apps.Rpc_echo
module Buf_pool = Tas_buffers.Buf_pool
module Packet = Tas_proto.Packet
module Tcp_header = Tas_proto.Tcp_header
module Addr = Tas_proto.Addr
module J = Tas_telemetry.Json

type kind = Throughput | Alloc

type metric = { name : string; value : float; units : string; kind : kind }

let kind_name = function Throughput -> "throughput" | Alloc -> "alloc"
let m name value units kind = { name; value; units; kind }

(* --- Harness pieces ----------------------------------------------------- *)

let tas_host sim endpoint =
  let config =
    {
      Config.default with
      Config.max_fast_path_cores = 2;
      rx_buf_size = 131072;
      tx_buf_size = 131072;
    }
  in
  let t = Tas.create sim ~nic:endpoint.Topology.nic ~config () in
  let cores = Array.init 2 (fun i -> Core.create sim ~id:(500 + i) ()) in
  let lt = Tas.app t ~app_cores:cores ~api:Libtas.Sockets in
  (t, Transport.of_libtas lt ~ctx_of_conn:(fun i -> i mod 2))

let pkt_ops tas =
  let s = Tas.snapshot tas in
  s.Tas.rx_data_packets + s.Tas.rx_ack_packets + s.Tas.tx_data_packets
  + s.Tas.acks_sent

(* Wall-clock + minor-word cost of advancing [sim] by [window] of simulated
   time, normalized per unit returned by [ops]. *)
let timed_window sim ~window ~ops =
  let o0 = ops () in
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  Sim.run ~until:(Sim.now sim + window) sim;
  let wall = Unix.gettimeofday () -. t0 in
  let words = Gc.minor_words () -. w0 in
  let n = max 1 (ops () - o0) in
  (n, wall, words)

let median xs =
  let sorted = List.sort compare xs in
  List.nth sorted (List.length sorted / 2)

(* Three consecutive measurement windows, median throughput: wall-clock on a
   shared machine is noisy, and the median discards the window that caught a
   scheduler hiccup. Allocation counts are deterministic across windows. *)
let median_windows sim ~window ~ops =
  let samples =
    List.init 3 (fun _ ->
        let n, wall, words = timed_window sim ~window ~ops in
        (float_of_int n /. wall, words /. float_of_int n))
  in
  (median (List.map fst samples), median (List.map snd samples))

(* --- Benchmarks --------------------------------------------------------- *)

(* Bulk TAS<->TAS transfer over a 10G link: the fast-path segmentation /
   ACK-processing hot loop. Packet ops = rx data + rx acks + tx data + acks
   sent, summed over both hosts. *)
let bulk ~quick =
  let sim = Sim.create () in
  let spec = Topology.link_10g ~ecn_threshold:65 () in
  let net = Topology.point_to_point sim ~spec ~queues_per_nic:8 () in
  let tas_a, sender = tas_host sim net.Topology.a in
  let tas_b, receiver = tas_host sim net.Topology.b in
  Transport.listen receiver ~port:5001 (fun _ -> Transport.null_handlers);
  let chunk = Bytes.create 16384 in
  for _ = 1 to 16 do
    let rec push conn =
      let n = Transport.send conn chunk in
      if n > 0 then push conn
    in
    Transport.connect sender
      ~dst_ip:(Tas_netsim.Nic.ip net.Topology.b.Topology.nic) ~dst_port:5001
      (fun _ ->
        {
          Transport.null_handlers with
          Transport.on_connected = (fun conn -> push conn);
          Transport.on_sendable = (fun conn -> push conn);
        })
  done;
  Sim.run ~until:(Time_ns.ms 10) sim;
  let rate, words_per =
    median_windows sim
      ~window:(Time_ns.ms (if quick then 4 else 15))
      ~ops:(fun () -> pkt_ops tas_a + pkt_ops tas_b)
  in
  [
    m "bulk_pkt_ops_per_sec" rate "ops/s" Throughput;
    m "bulk_minor_words_per_pkt" words_per "words/op" Alloc;
  ]

(* Pipelined small RPCs TAS<->TAS: per-packet fast-path cost dominated by
   small-segment handling and context notification. *)
let rpc ~quick =
  let sim = Sim.create () in
  let spec = Topology.link_10g ~ecn_threshold:65 () in
  let net = Topology.point_to_point sim ~spec ~queues_per_nic:8 () in
  let _tas_a, clients = tas_host sim net.Topology.a in
  let _tas_b, server = tas_host sim net.Topology.b in
  Rpc_echo.server server ~port:7 ~msg_size:64 ~app_cycles:250;
  let stats = Rpc_echo.make_stats () in
  Rpc_echo.closed_loop_clients sim clients ~n:16
    ~dst_ip:(Tas_netsim.Nic.ip net.Topology.b.Topology.nic) ~dst_port:7
    ~msg_size:64 ~pipeline:8 ~stats ();
  Sim.run ~until:(Time_ns.ms 10) sim;
  let rate, _words_per =
    median_windows sim
      ~window:(Time_ns.ms (if quick then 4 else 15))
      ~ops:(fun () -> Stats.Counter.value stats.Rpc_echo.completed)
  in
  [ m "rpc_ops_per_sec" rate "rpc/s" Throughput ]

(* Wire-format serialize + parse round trip (checksum arithmetic included). *)
let wire ~quick =
  let payload = Bytes.make 512 'x' in
  let tcp =
    {
      Tcp_header.src_port = 1234;
      dst_port = 80;
      seq = 7;
      ack = 9;
      flags = Tcp_header.data_flags;
      window = 1024;
      options =
        { Tcp_header.mss = None; wscale = None; timestamp = Some (1, 2);
          sack = [] };
    }
  in
  let pkt =
    Packet.make ~src_mac:(Addr.host_mac 0) ~dst_mac:(Addr.host_mac 1)
      ~src_ip:0x0a000001 ~dst_ip:0x0a000002 ~tcp ~payload ()
  in
  for _ = 1 to 1000 do
    ignore (Packet.of_wire (Packet.to_wire pkt))
  done;
  let iters = if quick then 20_000 else 60_000 in
  let samples =
    List.init 3 (fun _ ->
        let w0 = Gc.minor_words () in
        let t0 = Unix.gettimeofday () in
        for _ = 1 to iters do
          ignore (Packet.of_wire (Packet.to_wire pkt))
        done;
        let wall = Unix.gettimeofday () -. t0 in
        let words = Gc.minor_words () -. w0 in
        (float_of_int iters /. wall, words /. float_of_int iters))
  in
  [
    m "wire_roundtrips_per_sec" (median (List.map fst samples)) "ops/s"
      Throughput;
    m "wire_minor_words_per_roundtrip"
      (median (List.map snd samples))
      "words/op" Alloc;
  ]

(* Sharded flow-table lookup: the per-packet work of hashing a four-tuple,
   routing through the RSS redirection table to the owning shard, and
   finding the flow record — over a table populated like a busy server
   (4096 flows across 8 shards). Payloads are plain ints so the cost
   measured is the table's, not the record's. *)
let flow_lookup ~quick =
  let module Rss = Tas_shard.Rss_table in
  let module Shards = Tas_shard.Flow_shards in
  let module Four_tuple = Addr.Four_tuple in
  let rss = Rss.create ~num_queues:8 () in
  let shards : int Shards.t = Shards.create ~rss () in
  let n_flows = 4096 in
  let tuples =
    Array.init n_flows (fun i ->
        {
          Four_tuple.local_ip = 0x0a000001;
          local_port = 7;
          peer_ip = 0x0a000100 + (i lsr 12);
          peer_port = 1024 + (i land 0xfff);
        })
  in
  Array.iteri (fun i t -> Shards.add shards t i) tuples;
  let iters = if quick then 200_000 else 600_000 in
  let samples =
    List.init 3 (fun _ ->
        let w0 = Gc.minor_words () in
        let t0 = Unix.gettimeofday () in
        (* Stride coprime with the table size: touches every flow while
           defeating any sequential-bucket locality a linear scan would
           enjoy, like independent per-packet arrivals do. *)
        let j = ref 0 in
        for _ = 1 to iters do
          (match Shards.find shards tuples.(!j) with
          | Some _ -> ()
          | None -> assert false);
          j := (!j + 2049) land (n_flows - 1)
        done;
        let wall = Unix.gettimeofday () -. t0 in
        let words = Gc.minor_words () -. w0 in
        (float_of_int iters /. wall, words /. float_of_int iters))
  in
  [
    m "flow_lookup_per_sec" (median (List.map fst samples)) "ops/s"
      Throughput;
    m "flow_lookup_minor_words"
      (median (List.map snd samples))
      "words/op" Alloc;
  ]

(* Vector receive pass driven directly: 32-packet same-flow bursts through
   [Fast_path.process_burst] — flow lookup (memo-amortized), duplicate
   verdict, ACK emission, and the port drain of the emitted ACKs. Measures
   the per-packet cost and allocation of the burst fast path in isolation
   from connection setup and application layers. *)
let burst ~quick =
  let module Fast_path = Tas_core.Fast_path in
  let module Flow_state = Tas_core.Flow_state in
  let module Rate_bucket = Tas_core.Rate_bucket in
  let module Nic = Tas_netsim.Nic in
  let module Four_tuple = Addr.Four_tuple in
  let sim = Sim.create () in
  let spec = Topology.link_10g () in
  let net = Topology.point_to_point sim ~spec ~queues_per_nic:8 () in
  let nic = net.Topology.a.Topology.nic in
  let cores = [| Core.create sim ~id:0 () |] in
  let fp = Fast_path.create sim ~nic ~cores ~config:Config.default in
  let bucket =
    Rate_bucket.create sim (Rate_bucket.Rate 10e9) ~burst_bytes:65536
  in
  let peer_ip = Addr.host_ip 99 and peer_mac = Addr.host_mac 99 in
  let flow =
    Flow_state.create ~opaque:1 ~context:0 ~bucket ~rx_buf_size:65536
      ~tx_buf_size:65536 ~local_port:5001 ~peer_ip ~peer_port:9000 ~peer_mac
      ~tx_iss:1000 ~rx_next:100_000 ~window:65535 ~peer_wscale:0 ()
  in
  let tuple =
    {
      Four_tuple.local_ip = Nic.ip nic;
      local_port = 5001;
      peer_ip;
      peer_port = 9000;
    }
  in
  Fast_path.install_flow fp ~tuple flow;
  (* Stale segments (entirely below [rx_next]): every packet takes the
     duplicate path and answers with an ACK, so the same burst array can be
     replayed indefinitely with stable per-iteration work. *)
  let burst_len = 32 in
  let pkts =
    Array.init burst_len (fun _ ->
        Packet.make ~src_mac:peer_mac ~dst_mac:(Nic.mac nic) ~src_ip:peer_ip
          ~dst_ip:(Nic.ip nic)
          ~tcp:
            {
              Tcp_header.src_port = 9000;
              dst_port = 5001;
              seq = 1000;
              ack = 1000;
              flags = Tcp_header.data_flags;
              window = 65535;
              options =
                { Tcp_header.mss = None; wscale = None;
                  timestamp = Some (1, 1); sack = [] };
            }
          ~payload:(Bytes.create 1448) ())
  in
  let core = cores.(0) in
  for _ = 1 to 100 do
    Fast_path.process_burst fp pkts ~count:burst_len core;
    Sim.run sim
  done;
  let iters = if quick then 2_000 else 6_000 in
  let samples =
    List.init 3 (fun _ ->
        let w0 = Gc.minor_words () in
        let t0 = Unix.gettimeofday () in
        for _ = 1 to iters do
          Fast_path.process_burst fp pkts ~count:burst_len core;
          Sim.run sim
        done;
        let wall = Unix.gettimeofday () -. t0 in
        let words = Gc.minor_words () -. w0 in
        let n = iters * burst_len in
        (float_of_int n /. wall, words /. float_of_int n))
  in
  [
    m "burst_rx_pkts_per_sec" (median (List.map fst samples)) "pkts/s"
      Throughput;
    m "burst_minor_words_per_pkt"
      (median (List.map snd samples))
      "words/op" Alloc;
  ]

(* Event-queue churn: chains of fire-and-forget [post] events, the shape of
   the simulator's per-packet event storm (serialization, propagation, core
   dispatch, pacing). *)
let events ~quick =
  let n = if quick then 100_000 else 250_000 in
  let one () =
    let sim = Sim.create () in
    let remaining = ref n in
    let rec tick () =
      if !remaining > 0 then begin
        decr remaining;
        Sim.post sim 10 tick
      end
    in
    for i = 1 to 32 do
      Sim.post sim i tick
    done;
    let w0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    Sim.run sim;
    let wall = Unix.gettimeofday () -. t0 in
    let words = Gc.minor_words () -. w0 in
    let fired = max 1 (Sim.events_fired sim) in
    (float_of_int fired /. wall, words /. float_of_int fired)
  in
  let samples = List.init 3 (fun _ -> one ()) in
  [
    m "sim_events_per_sec" (median (List.map fst samples)) "events/s"
      Throughput;
    m "sim_minor_words_per_event"
      (median (List.map snd samples))
      "words/event" Alloc;
  ]

let measure ~quick =
  (* Start each pass from a normalized heap: without this, whichever pass
     runs second inherits the first pass's grown major heap and pending GC
     work and measures a few percent slower across the board. *)
  Gc.compact ();
  List.concat
    [ bulk ~quick; rpc ~quick; wire ~quick; flow_lookup ~quick;
      burst ~quick; events ~quick ]

(* The same suite with buffer pooling disabled: the pre-PR allocation
   behaviour, measured on the same build and machine so the artifact
   carries an honest before/after. *)
let measure_pre ~quick =
  Buf_pool.set_reuse false;
  Fun.protect
    ~finally:(fun () -> Buf_pool.set_reuse true)
    (fun () -> measure ~quick)

(* --- Artifact ----------------------------------------------------------- *)

let metrics_json ms =
  J.Obj
    (List.map
       (fun mt ->
         ( mt.name,
           J.Obj
             [
               ("value", J.Float mt.value);
               ("units", J.Str mt.units);
               ("kind", J.Str (kind_name mt.kind));
             ] ))
       ms)

let artifact_json ~quick ~current ~pre ~wall =
  J.Obj
    [
      ("experiment", J.Str "perf");
      ("title", J.Str "Hot-path microbenchmarks (perf-regression gate)");
      ("quick", J.Bool quick);
      ("metrics", metrics_json current);
      ("pre_pr", metrics_json pre);
      ("timing", J.Obj [ ("run_wall_s", J.Float wall) ]);
    ]

let write_artifact j =
  let path = Filename.concat (Run_opts.bench_dir ()) "BENCH_perf.json" in
  let oc = open_out path in
  output_string oc (J.to_string ~pretty:true j);
  output_char oc '\n';
  close_out oc;
  path

(* --- Regression gate ----------------------------------------------------- *)

type verdict = {
  metric : string;
  baseline : float;
  current : float;
  ratio : float;
  ok : bool;
}

(* Wall-clock throughput varies wildly across machines (laptop vs CI
   runner), so its band only catches order-of-magnitude collapses.
   Allocation counts per operation are machine-independent on a given
   build, so their band is tight. *)
let default_tol_throughput = 0.75
let default_tol_alloc = 0.15

let check ?(tol_throughput = default_tol_throughput)
    ?(tol_alloc = default_tol_alloc) ~baseline current =
  let base_metrics =
    match J.member "metrics" baseline with Some (J.Obj kv) -> kv | _ -> []
  in
  List.filter_map
    (fun mt ->
      match List.assoc_opt mt.name base_metrics with
      | None -> None (* metric absent from the baseline: not gated *)
      | Some bj -> (
        match Option.bind (J.member "value" bj) J.to_float_opt with
        | None -> None
        | Some b ->
          let ratio = if b > 0.0 then mt.value /. b else 1.0 in
          let ok =
            match mt.kind with
            | Throughput -> mt.value >= b *. (1.0 -. tol_throughput)
            | Alloc -> mt.value <= (b *. (1.0 +. tol_alloc)) +. 1e-9
          in
          Some { metric = mt.name; baseline = b; current = mt.value; ratio; ok }))
    current

let load_baseline path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  J.of_string s

(* --- Driver -------------------------------------------------------------- *)

let fnum v =
  if Float.abs v >= 1000.0 then Printf.sprintf "%.3e" v
  else Printf.sprintf "%.2f" v

let run ?(quick = false) ?baseline fmt =
  Report.section fmt "Perf: hot-path microbenchmarks";
  let t0 = Unix.gettimeofday () in
  (* Discarded warmup pass: sizes the GC heap and warms code/data caches so
     neither measured pass pays cold-start costs. *)
  ignore (measure ~quick:true);
  let pre = measure_pre ~quick in
  let current = measure ~quick in
  let wall = Unix.gettimeofday () -. t0 in
  let pre_of name =
    match List.find_opt (fun p -> p.name = name) pre with
    | Some p -> p.value
    | None -> nan
  in
  Report.table fmt
    ~header:[ "metric"; "units"; "pre-PR"; "current"; "change" ]
    ~rows:
      (List.map
         (fun mt ->
           let p = pre_of mt.name in
           let change =
             if Float.is_nan p || p = 0.0 then "-"
             else Printf.sprintf "%+.1f%%" (100.0 *. ((mt.value /. p) -. 1.0))
           in
           [ mt.name; mt.units; fnum p; fnum mt.value; change ])
         current);
  Format.fprintf fmt "  (%.1fs)@." wall;
  (try
     let path = write_artifact (artifact_json ~quick ~current ~pre ~wall) in
     Format.fprintf fmt "  # artifact: %s@." path
   with Sys_error msg ->
     Format.fprintf fmt "  # BENCH_perf.json not written: %s@." msg);
  match baseline with
  | None -> true
  | Some path ->
    let verdicts =
      try check ~baseline:(load_baseline path) current with
      | Sys_error msg ->
        Format.fprintf fmt "  # baseline unreadable (%s): gate skipped@." msg;
        []
      | J.Parse_error msg ->
        Format.fprintf fmt "  # baseline unparsable (%s): gate skipped@." msg;
        []
    in
    Report.section fmt "Perf gate";
    if verdicts = [] then begin
      Format.fprintf fmt "  no gated metrics (empty or missing baseline)@.";
      true
    end
    else begin
      Report.table fmt
        ~header:[ "metric"; "baseline"; "current"; "ratio"; "status" ]
        ~rows:
          (List.map
             (fun v ->
               [
                 v.metric; fnum v.baseline; fnum v.current;
                 Printf.sprintf "%.2fx" v.ratio;
                 (if v.ok then "ok" else "REGRESSION");
               ])
             verdicts);
      let pass = List.for_all (fun v -> v.ok) verdicts in
      Format.fprintf fmt "  perf gate: %s@."
        (if pass then "PASS" else "FAIL");
      pass
    end
