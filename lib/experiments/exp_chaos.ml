module Sim = Tas_engine.Sim
module Time_ns = Tas_engine.Time_ns
module Rng = Tas_engine.Rng
module Core = Tas_cpu.Core
module Json = Tas_telemetry.Json
module Topology = Tas_netsim.Topology
module Fault = Tas_netsim.Fault
module Nic = Tas_netsim.Nic
module Config = Tas_core.Config
module Tas = Tas_core.Tas
module Libtas = Tas_core.Libtas
module Slow_path = Tas_core.Slow_path
module Fast_path = Tas_core.Fast_path
module Transport = Tas_apps.Transport
module Kv_store = Tas_apps.Kv_store

let ms = Time_ns.ms

(* --- Built-in fault schedules --------------------------------------------- *)

type schedule = { name : string; descr : string; spec : Fault.spec }

let schedules =
  [
    {
      name = "bursty-loss";
      descr = "2% Gilbert-Elliott loss, mean burst 4 pkts";
      spec = Fault.bursty_of_rate ~rate:0.02 ~mean_burst_pkts:4.0;
    };
    {
      name = "corruption";
      descr = "1% corruption (30% header-length, 70% payload-bit)";
      spec =
        {
          Fault.passthrough with
          Fault.corrupt_rate = 0.01;
          corrupt_header_fraction = 0.3;
        };
    };
    {
      name = "dup-reorder";
      descr = "1% duplication + 5% reordering (window 4)";
      spec =
        {
          Fault.passthrough with
          Fault.dup_rate = 0.01;
          reorder =
            Some
              {
                Fault.reorder_rate = 0.05;
                reorder_window = 4;
                max_hold_ns = 100_000;
              };
        };
    };
    {
      name = "flaps";
      descr = "3 link blackouts of 5 ms, 25 ms apart";
      spec =
        {
          Fault.passthrough with
          Fault.blackouts =
            Fault.flaps ~first_ns:(ms 40) ~down_ns:(ms 5) ~up_ns:(ms 25)
              ~count:3;
        };
    };
    {
      name = "hellscape";
      descr = "1% burst loss + dup + corruption + reorder + blackout";
      spec =
        {
          (Fault.bursty_of_rate ~rate:0.01 ~mean_burst_pkts:3.0) with
          Fault.dup_rate = 0.005;
          corrupt_rate = 0.005;
          corrupt_header_fraction = 0.5;
          reorder =
            Some
              {
                Fault.reorder_rate = 0.02;
                reorder_window = 4;
                max_hold_ns = 100_000;
              };
          blackouts = [ (ms 60, ms 63) ];
        };
    };
  ]

(* --- One seeded run -------------------------------------------------------- *)

(* Everything the invariants and the determinism check look at. *)
type outcome = {
  completed : int;  (** requests finished across all connections *)
  conns : int;
  conns_finished : int;  (** completed their full request quota *)
  conns_closed : int;  (** observed a terminal close/failure callback *)
  flows_left : int;  (** flow-table entries remaining on both hosts *)
  ab : Fault.counters;
  ba : Fault.counters;
  held_ab : int;
  held_ba : int;
  csum_a : int;  (** NIC checksum-validation drops (payload corruption) *)
  csum_b : int;
  malformed_a : int;  (** fast-path length-validation drops (header corr.) *)
  malformed_b : int;
  rsts : int;
  fin_exhausted : int;
  reaped : int;
}

let copy_counters c =
  { c with Fault.offered = c.Fault.offered }

(* TAS on both hosts: corruption accounting then reconciles exactly (payload
   corruption is dropped by either NIC's checksum validation, header
   corruption by either fast path's length validation). *)
let tas_host sim endpoint ~core_base =
  let config =
    {
      Config.default with
      Config.max_fast_path_cores = 2;
      rx_buf_size = 65536;
      tx_buf_size = 65536;
      dead_flow_timeout_ns = Some (ms 100);
    }
  in
  let t = Tas.create sim ~nic:endpoint.Topology.nic ~config () in
  let cores = Array.init 2 (fun i -> Core.create sim ~id:(core_base + i) ()) in
  let lt = Tas.app t ~app_cores:cores ~api:Libtas.Sockets in
  (t, Transport.of_libtas lt ~ctx_of_conn:(fun i -> i mod 2))

(* Closed-loop SET workload with explicit connection lifecycle: every
   response is exactly 3 bytes (status + zero value length), so request
   completion is a byte count and needs no stream parser. *)
type cstate = {
  mutable reqs_done : int;
  mutable rx_bytes : int;
  mutable closed_seen : bool;
  mutable close_sent : bool;
}

let run_one ~seed ~quick sched =
  let sim = Sim.create () in
  let rng = Rng.create seed in
  let link = Topology.link_10g ~ecn_threshold:65 () in
  let net =
    Topology.point_to_point sim ~spec:link ~fault_ab:sched.spec
      ~fault_ba:sched.spec ~rng ~queues_per_nic:4 ()
  in
  let server_tas, server = tas_host sim net.Topology.a ~core_base:100 in
  let client_tas, client = tas_host sim net.Topology.b ~core_base:200 in
  let _kv = Kv_store.create_server server ~port:11211 ~app_cycles:600 () in
  let n_conns = if quick then 8 else 24 in
  let n_reqs = if quick then 12 else 25 in
  (* Client-side think time stretches the workload across the blackout /
     flap windows (which start at 40 ms); without it the closed loop
     finishes in a few milliseconds and never meets the faults. *)
  let think_ns = if quick then ms 10 else ms 5 in
  let t_cutoff = if quick then ms 160 else ms 250 in
  let t_end = t_cutoff + ms 250 in
  let value = String.make 32 'v' in
  let states = Array.init n_conns (fun _ ->
      { reqs_done = 0; rx_bytes = 0; closed_seen = false; close_sent = false })
  in
  let conns = Array.make n_conns None in
  let completed = ref 0 in
  Array.iteri
    (fun i st ->
      let request =
        Kv_store.encode_request ~op:1
          ~key:(Printf.sprintf "chaos-%04d" i)
          ~value
      in
      let fire conn = ignore (Transport.send conn request) in
      ignore
        (Sim.schedule sim ((i * 50_000) + 1) (fun () ->
             Transport.connect client
               ~dst_ip:(Nic.ip net.Topology.a.Topology.nic) ~dst_port:11211
               (fun c ->
                 conns.(i) <- Some c;
                 {
                   Transport.null_handlers with
                   Transport.on_connected = (fun conn -> fire conn);
                   Transport.on_data =
                     (fun conn data ->
                       st.rx_bytes <- st.rx_bytes + Bytes.length data;
                       while st.rx_bytes >= 3 && st.reqs_done < n_reqs do
                         st.rx_bytes <- st.rx_bytes - 3;
                         st.reqs_done <- st.reqs_done + 1;
                         incr completed;
                         if st.reqs_done < n_reqs then
                           ignore
                             (Sim.schedule sim think_ns (fun () -> fire conn))
                         else if not st.close_sent then begin
                           st.close_sent <- true;
                           Transport.close conn
                         end
                       done);
                   Transport.on_closed = (fun _ -> st.closed_seen <- true);
                 }))))
    states;
  (* Cut off stragglers: anything not already closing is closed here and
     must still tear down cleanly (or be force-reaped) before [t_end]. *)
  ignore
    (Sim.schedule sim t_cutoff (fun () ->
         Array.iteri
           (fun i st ->
             match conns.(i) with
             | Some c when (not st.close_sent) && not st.closed_seen ->
               st.close_sent <- true;
               Transport.close c
             | _ -> ())
           states));
  Sim.run ~until:t_end sim;
  (* Drain reorder holds, then let the released packets (and any RSTs they
     provoke) finish before counters are read. *)
  let fab = Option.get net.Topology.fault_ab in
  let fba = Option.get net.Topology.fault_ba in
  Fault.flush fab;
  Fault.flush fba;
  Sim.run ~until:(t_end + ms 50) sim;
  let nic_a = net.Topology.a.Topology.nic in
  let nic_b = net.Topology.b.Topology.nic in
  let sp_stats t =
    let sp = Tas.slow_path t in
    ( Slow_path.rsts_sent sp,
      Slow_path.fin_retry_exhausted sp,
      Slow_path.flows_reaped sp )
  in
  let rsts_a, fin_a, reap_a = sp_stats server_tas in
  let rsts_b, fin_b, reap_b = sp_stats client_tas in
  {
    completed = !completed;
    conns = n_conns;
    conns_finished =
      Array.fold_left
        (fun n st -> if st.reqs_done >= n_reqs then n + 1 else n)
        0 states;
    conns_closed =
      Array.fold_left
        (fun n st -> if st.closed_seen then n + 1 else n)
        0 states;
    flows_left =
      Slow_path.flow_count (Tas.slow_path server_tas)
      + Slow_path.flow_count (Tas.slow_path client_tas);
    ab = copy_counters (Fault.counters fab);
    ba = copy_counters (Fault.counters fba);
    held_ab = Fault.held fab;
    held_ba = Fault.held fba;
    csum_a = Nic.rx_csum_drops nic_a;
    csum_b = Nic.rx_csum_drops nic_b;
    malformed_a = (Fast_path.stats (Tas.fast_path server_tas)).Fast_path.malformed_drops;
    malformed_b = (Fast_path.stats (Tas.fast_path client_tas)).Fast_path.malformed_drops;
    rsts = rsts_a + rsts_b;
    fin_exhausted = fin_a + fin_b;
    reaped = reap_a + reap_b;
  }

(* --- Invariants ------------------------------------------------------------ *)

let digest o =
  let c (x : Fault.counters) =
    [
      x.Fault.offered; x.Fault.forwarded; x.Fault.uniform_drops;
      x.Fault.burst_drops; x.Fault.blackout_drops; x.Fault.dups;
      x.Fault.payload_corrupts; x.Fault.header_corrupts;
      x.Fault.reorder_holds;
    ]
  in
  [ o.completed; o.conns_finished; o.conns_closed; o.flows_left;
    o.csum_a; o.csum_b; o.malformed_a; o.malformed_b;
    o.rsts; o.fin_exhausted; o.reaped; o.held_ab; o.held_ba ]
  @ c o.ab @ c o.ba

(* Each invariant is (name, holds?). [o2] is the same schedule re-run with
   the same seed, for the determinism check. *)
let invariants o o2 =
  let conserve tag (c : Fault.counters) held =
    ( tag ^ " conservation (fwd = offered - drops + dups - held)",
      c.Fault.forwarded
      = c.Fault.offered - Fault.total_drops c + c.Fault.dups - held )
  in
  [
    conserve "a->b" o.ab o.held_ab;
    conserve "b->a" o.ba o.held_ba;
    ( "payload corruptions all caught by NIC checksum validation",
      o.ab.Fault.payload_corrupts = o.csum_b
      && o.ba.Fault.payload_corrupts = o.csum_a );
    ( "header corruptions all caught by fast-path length validation",
      o.ab.Fault.header_corrupts = o.malformed_b
      && o.ba.Fault.header_corrupts = o.malformed_a );
    ( "every connection completed or failed cleanly",
      o.conns_closed = o.conns );
    ("no flow-table entries leaked", o.flows_left = 0);
    ("same seed, same counters (determinism)", digest o = digest o2);
  ]

(* --- Experiment ------------------------------------------------------------ *)

let json_of_outcome o =
  let c (x : Fault.counters) =
    Json.Obj
      [
        ("offered", Json.Int x.Fault.offered);
        ("forwarded", Json.Int x.Fault.forwarded);
        ("uniform_drops", Json.Int x.Fault.uniform_drops);
        ("burst_drops", Json.Int x.Fault.burst_drops);
        ("blackout_drops", Json.Int x.Fault.blackout_drops);
        ("dups", Json.Int x.Fault.dups);
        ("payload_corrupts", Json.Int x.Fault.payload_corrupts);
        ("header_corrupts", Json.Int x.Fault.header_corrupts);
        ("reorder_holds", Json.Int x.Fault.reorder_holds);
      ]
  in
  Json.Obj
    [
      ("requests_completed", Json.Int o.completed);
      ("conns", Json.Int o.conns);
      ("conns_finished", Json.Int o.conns_finished);
      ("conns_closed", Json.Int o.conns_closed);
      ("flows_left", Json.Int o.flows_left);
      ("fault_ab", c o.ab);
      ("fault_ba", c o.ba);
      ("nic_csum_drops", Json.Int (o.csum_a + o.csum_b));
      ("fp_malformed_drops", Json.Int (o.malformed_a + o.malformed_b));
      ("rsts_sent", Json.Int o.rsts);
      ("fin_retry_exhausted", Json.Int o.fin_exhausted);
      ("flows_reaped", Json.Int o.reaped);
    ]

(* One schedule's evaluation: two same-seed runs plus the invariant check.
   Pure with respect to process-global state (its own sim, its own seeded
   RNG), so a batch of schedules can run on any mix of pool domains. *)
let eval_schedule ~seed ~quick sched =
  match
    let o = run_one ~seed ~quick sched in
    let o2 = run_one ~seed ~quick sched in
    (o, invariants o o2)
  with
  | r -> Ok r
  | exception exn -> Error exn

let run ?(quick = false) ?only fmt =
  Report.section fmt
    "Chaos: KV workload under seeded fault schedules (TAS on both hosts)";
  Report.note fmt
    "each schedule runs twice with the same seed; invariants: fault-stage \
     conservation, corruption drops reconcile, every connection terminates \
     cleanly, no flow leaks, bit-identical counters across the two runs";
  let seed = 0xC0FFEE in
  let schedules =
    match only with
    | None -> schedules
    | Some names -> List.filter (fun s -> List.mem s.name names) schedules
  in
  (* Schedules are independent seeded simulations: fan them out over the
     domain pool when the run was given [-j N]. Results come back in
     submission order, and all reporting below happens serially on this
     domain — output and artifact are byte-identical to a serial run. *)
  let jobs = min (Run_opts.jobs ()) (List.length schedules) in
  let evals =
    let arr = Array.of_list schedules in
    if jobs <= 1 then Array.map (eval_schedule ~seed ~quick) arr
    else
      Tas_parallel.Domain_pool.with_pool ~jobs (fun pool ->
          Tas_parallel.Domain_pool.map pool ~f:(eval_schedule ~seed ~quick)
            arr)
  in
  let violations = ref 0 in
  let details = ref [] in
  let rows =
    List.map2
      (fun sched result ->
        match result with
        | Ok (o, inv) ->
          let failed = List.filter (fun (_, ok) -> not ok) inv in
          violations := !violations + List.length failed;
          List.iter
            (fun (name, _) ->
              Report.note fmt
                (Printf.sprintf "VIOLATION [%s]: %s" sched.name name))
            failed;
          details :=
            ( sched.name,
              Json.Obj
                [
                  ("descr", Json.Str sched.descr);
                  ("outcome", json_of_outcome o);
                  ("violations", Json.Int (List.length failed));
                  ( "failed_invariants",
                    Json.List (List.map (fun (n, _) -> Json.Str n) failed) );
                ] )
            :: !details;
          [
            sched.name;
            Printf.sprintf "%d/%d" o.conns_finished o.conns;
            string_of_int o.completed;
            string_of_int
              (Fault.total_drops o.ab + Fault.total_drops o.ba);
            string_of_int (o.ab.Fault.dups + o.ba.Fault.dups);
            string_of_int
              (Fault.total_corrupts o.ab + Fault.total_corrupts o.ba);
            string_of_int
              (o.ab.Fault.reorder_holds + o.ba.Fault.reorder_holds);
            string_of_int o.rsts;
            string_of_int o.reaped;
            (if List.length failed = 0 then "ok" else "FAIL");
          ]
        | Error exn ->
          incr violations;
          details :=
            ( sched.name,
              Json.Obj
                [
                  ("descr", Json.Str sched.descr);
                  ("exception", Json.Str (Printexc.to_string exn));
                  ("violations", Json.Int 1);
                ] )
            :: !details;
          [ sched.name; "-"; "-"; "-"; "-"; "-"; "-"; "-"; "-";
            "EXCEPTION: " ^ Printexc.to_string exn ])
      schedules (Array.to_list evals)
  in
  Report.table fmt
    ~header:
      [ "schedule"; "conns done"; "reqs"; "drops"; "dups"; "corrupts";
        "holds"; "rsts"; "reaped"; "invariants" ]
    ~rows;
  Report.kv fmt "invariant violations" (string_of_int !violations);
  Report.attach "chaos"
    (Json.Obj
       [
         ("seed", Json.Int seed);
         ("violations", Json.Int !violations);
         ("schedules", Json.Obj (List.rev !details));
       ])
