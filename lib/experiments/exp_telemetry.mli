(** Telemetry showcase experiment ("tm"): RPC echo on TAS with tracing
    enabled; emits throughput/latency, the per-core cycle breakdown, the
    metrics-registry snapshot and a trace summary into the BENCH artifact. *)

val run : ?quick:bool -> Format.formatter -> unit
