(** Fig. 7: throughput penalty under induced packet loss (0.1%–5%), 100 bulk
    flows over one 10G link: Linux (full out-of-order buffering + SACK-like
    recovery) vs. TAS (single out-of-order interval) vs. TAS with simple
    go-back-N receive ("TAS simple recovery"). Runs the sweep twice: uniform
    random loss and bursty Gilbert–Elliott loss at the same stationary
    rates. *)

val run : ?quick:bool -> Format.formatter -> unit

type variant = Linux_full | Tas_ooo | Tas_simple

(** Loss shape applied (symmetrically) to both link directions. *)
type shape = No_loss | Uniform of float | Bursty of float

val goodput_gbps : variant -> shape:shape -> float
