(** "ar": arena differential — the same seeded workloads (bulk echo,
    uniform loss, a chaos-style fault schedule) run with the off-heap flow
    arena enabled and disabled must export byte-identical telemetry and
    flow dumps. Schedule runs fan out over the [-j N] domain pool, so the
    bench-quick job exercises concurrent arena access across domains.
    Mismatches are reported and counted in the artifact, never raised. *)

val run : ?quick:bool -> Format.formatter -> unit
