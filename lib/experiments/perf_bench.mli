(** Hot-path microbenchmarks and the perf-regression gate.

    Four benchmark families measure the simulator's packet hot path on the
    host wall clock: bulk TAS<->TAS transfer (packet ops/sec and minor
    words/packet), pipelined small RPCs (RPCs/sec), wire-format round trips
    (ops/sec and minor words/op), and simulator event churn (events/sec and
    minor words/event).

    Each full run also re-measures with the buffer pool disabled
    ({!Tas_buffers.Buf_pool.set_reuse}) — the pre-PR allocation behaviour
    on the same build — and records both sets in [BENCH_perf.json] under
    ["metrics"] and ["pre_pr"].

    The gate compares a run against a committed baseline artifact
    ([bench/baseline_perf.json], itself a saved [BENCH_perf.json]) with
    per-kind tolerance bands: generous for wall-clock throughput (machine
    dependent), tight for allocations per operation (machine independent). *)

type kind = Throughput | Alloc

type metric = { name : string; value : float; units : string; kind : kind }

val measure : quick:bool -> metric list
(** Run all benchmark families with the optimizations enabled. *)

val measure_pre : quick:bool -> metric list
(** The same suite with buffer-pool reuse disabled; always restores the
    switch. *)

type verdict = {
  metric : string;
  baseline : float;
  current : float;
  ratio : float;  (** current / baseline *)
  ok : bool;
}

val default_tol_throughput : float
(** 0.75: a throughput metric fails only below 25% of baseline. *)

val default_tol_alloc : float
(** 0.15: an allocation metric fails above 115% of baseline. *)

val check :
  ?tol_throughput:float ->
  ?tol_alloc:float ->
  baseline:Tas_telemetry.Json.t ->
  metric list ->
  verdict list
(** Gate [current] metrics against a baseline artifact's ["metrics"]
    object. Metrics absent from the baseline are not gated. *)

val load_baseline : string -> Tas_telemetry.Json.t
(** Read and parse a baseline artifact.
    @raise Sys_error on unreadable files.
    @raise Tas_telemetry.Json.Parse_error on malformed content. *)

val run : ?quick:bool -> ?baseline:string -> Format.formatter -> bool
(** Measure (current + pre-PR), print the comparison table, write
    [BENCH_perf.json] into the bench dir, and — when [baseline] is given —
    print gate verdicts. Returns [false] iff the gate found a regression. *)
