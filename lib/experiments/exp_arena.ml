(* Arena differential experiment ([ar]): every schedule runs the same
   seeded workload twice — once with the off-heap flow arena
   ([Config.flow_arena_enabled]) and once on the boxed reference records —
   and the two runs must produce byte-identical telemetry (metrics JSON,
   Prometheus export, trace stream, cycle breakdown) and flow dumps.

   The schedule runs are independent seeded simulations; with [-j N] they
   fan out over a domain pool, so the bench-quick CI job exercises
   concurrent arena access from multiple domains. Mismatches are reported
   and counted in the artifact (like the chaos invariants), never raised. *)

module Sim = Tas_engine.Sim
module Time_ns = Tas_engine.Time_ns
module Rng = Tas_engine.Rng
module Core = Tas_cpu.Core
module Fault = Tas_netsim.Fault
module Topology = Tas_netsim.Topology
module E = Tas_baseline.Tcp_engine
module Config = Tas_core.Config
module Tas = Tas_core.Tas
module Libtas = Tas_core.Libtas
module Metrics = Tas_telemetry.Metrics
module Trace = Tas_telemetry.Trace
module Json = Tas_telemetry.Json

type sched = {
  name : string;
  descr : string;
  seed : int;
  loss : float option;
  faults : (Fault.spec * Fault.spec) option;  (* toward TAS, from TAS *)
}

let schedules =
  [
    { name = "bulk"; descr = "clean-link echo exchange"; seed = 7;
      loss = None; faults = None };
    { name = "loss"; descr = "2% uniform loss"; seed = 11; loss = Some 0.02;
      faults = None };
    { name = "chaos";
      descr = "bursty loss toward TAS, dup+reorder on the return path";
      seed = 23; loss = None;
      faults =
        Some
          ( { (Fault.bursty_of_rate ~rate:0.03 ~mean_burst_pkts:3.0) with
              Fault.dup_rate = 0.01 },
            { Fault.passthrough with
              Fault.dup_rate = 0.02;
              reorder =
                Some
                  { Fault.reorder_rate = 0.05; reorder_window = 3;
                    max_hold_ns = 200_000 } } ) };
  ]

(* One full run; the digest is every observable export concatenated, so a
   single byte of divergence anywhere fails the comparison. Returns the
   digest plus the trace-event count (a sanity signal for the report). *)
let digest ~quick ~arena sched =
  let sim = Sim.create () in
  let rng = Rng.create sched.seed in
  let fault_ab, fault_ba =
    match sched.faults with
    | Some (ab, ba) -> (Some ab, Some ba)
    | None -> (None, None)
  in
  let net =
    Topology.point_to_point sim ?loss_rate:sched.loss ?fault_ab ?fault_ba
      ~rng ~queues_per_nic:8 ()
  in
  let config =
    {
      Config.default with
      Config.trace_enabled = true;
      trace_capacity = 8192;
      flow_arena_enabled = arena;
    }
  in
  let tas = Tas.create sim ~nic:net.Topology.a.Topology.nic ~config () in
  let app_core = Core.create sim ~id:100 () in
  let lt = Tas.app tas ~app_cores:[| app_core |] ~api:Libtas.Sockets in
  Libtas.listen lt ~port:7 ~ctx_of_tuple:(fun _ -> 0) (fun _sock ->
      {
        Libtas.null_handlers with
        Libtas.on_data = (fun sock data -> ignore (Libtas.send sock data));
      });
  let client = E.create sim net.Topology.b.Topology.nic E.default_config in
  E.attach client;
  let conns = if quick then 6 else 8 in
  for i = 0 to conns - 1 do
    let remaining = ref (16 + i) in
    let cb =
      {
        E.null_callbacks with
        E.on_connected =
          (fun c -> ignore (E.send c (Bytes.make 600 (Char.chr (65 + i)))));
        E.on_receive =
          (fun c d ->
            ignore d;
            decr remaining;
            if !remaining > 0 then
              ignore (E.send c (Bytes.make 600 (Char.chr (65 + i)))));
      }
    in
    ignore
      (E.connect client ~dst_ip:(Tas_netsim.Nic.ip net.Topology.a.Topology.nic)
         ~dst_port:7 cb)
  done;
  Sim.run ~until:(Time_ns.ms (if quick then 40 else 80)) sim;
  let events = Trace.drain (Tas.trace tas) in
  let buf = Buffer.create 65536 in
  Buffer.add_string buf (Metrics.to_json_string ~pretty:true (Tas.metrics tas));
  Buffer.add_string buf (Metrics.to_prometheus (Tas.metrics tas));
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%d:%s:%d:%d;" e.Trace.ts
           (Trace.kind_name e.Trace.kind) e.Trace.core e.Trace.flow))
    events;
  List.iter
    (fun (cat, ns) ->
      Buffer.add_string buf
        (Printf.sprintf "%s=%d;" (Core.category_name cat) ns))
    (Tas.cycle_breakdown tas);
  Buffer.add_string buf (Json.to_string (Tas.flows tas));
  (Buffer.contents buf, List.length events)

let eval ~quick (sched, arena) =
  match digest ~quick ~arena sched with
  | d -> Ok d
  | exception exn -> Error exn

let run ?(quick = false) fmt =
  Report.section fmt
    "Arena differential: off-heap flow arena vs boxed reference records";
  Report.note fmt
    "each schedule runs the same seeded workload with the arena on and \
     off; metrics, prometheus, trace stream, cycle breakdown and flow \
     dump must be byte-identical";
  (* Each (schedule, backing) run is an independent seeded simulation; fan
     the six of them out over the domain pool when given [-j N] so arena
     slabs are exercised from several domains at once. The merge below is
     in submission order — output and artifact match a serial run. *)
  let units =
    Array.of_list
      (List.concat_map (fun s -> [ (s, true); (s, false) ]) schedules)
  in
  let jobs = min (Run_opts.jobs ()) (Array.length units) in
  let results =
    if jobs <= 1 then Array.map (eval ~quick) units
    else
      Tas_parallel.Domain_pool.with_pool ~jobs (fun pool ->
          Tas_parallel.Domain_pool.map pool ~f:(eval ~quick) units)
  in
  let mismatches = ref 0 in
  let details = ref [] in
  let rows =
    List.mapi
      (fun i sched ->
        let outcome =
          match (results.(2 * i), results.((2 * i) + 1)) with
          | Ok (da, ea), Ok (db, _) ->
            if da = db then `Identical ea else `Mismatch ea
          | Error exn, _ | _, Error exn -> `Error (Printexc.to_string exn)
        in
        let verdict, events =
          match outcome with
          | `Identical e -> ("identical", e)
          | `Mismatch e ->
            incr mismatches;
            Report.note fmt
              (Printf.sprintf "MISMATCH [%s]: arena and boxed runs diverge"
                 sched.name);
            ("MISMATCH", e)
          | `Error msg ->
            incr mismatches;
            Report.note fmt (Printf.sprintf "ERROR [%s]: %s" sched.name msg);
            ("ERROR", 0)
        in
        details :=
          ( sched.name,
            Json.Obj
              [
                ("descr", Json.Str sched.descr);
                ("identical", Json.Bool (verdict = "identical"));
                ("trace_events", Json.Int events);
              ] )
          :: !details;
        [ sched.name; sched.descr; string_of_int events; verdict ])
      schedules
  in
  Report.table fmt
    ~header:[ "schedule"; "description"; "trace events"; "arena vs boxed" ]
    ~rows;
  Report.attach "arena_differential"
    (Json.Obj
       [
         ("mismatches", Json.Int !mismatches);
         ("jobs", Json.Int jobs);
         ("schedules", Json.Obj (List.rev !details));
       ]);
  Report.kv fmt "mismatches" (string_of_int !mismatches)
