(* Span tracing showcase ("sp"): run the diagnostics scenario (TAS on both
   hosts of a star, one shared span collector) and decompose sampled
   packets' end-to-end latency into per-hop segments. The breakdown, the
   sampling accounting, and the raw drained events land in BENCH_sp.json;
   `tas_run trace` uses the same scenario to emit Chrome trace JSON. *)

module Time_ns = Tas_engine.Time_ns
module Stats = Tas_engine.Stats
module Span = Tas_telemetry.Span
module J = Tas_telemetry.Json

let hist_json h =
  J.Obj
    [
      ("count", J.Int (Stats.Hist.count h));
      ("mean_ns", J.Float (Stats.Hist.mean h));
      ("p50_ns", J.Float (Stats.Hist.percentile h 50.));
      ("p99_ns", J.Float (Stats.Hist.percentile h 99.));
      ("max_ns", J.Float (Stats.Hist.max_v h));
    ]

let run ?(quick = false) fmt =
  Report.section fmt "Span tracing: per-hop latency decomposition";
  Report.note fmt
    "RPC echo with TAS on both hosts; every 16th packet origin starts a \
     causal span recorded at each hop (libTAS, fast path, NIC, link \
     queues, switch). Per-hop histograms decompose end-to-end latency";
  let d = Diagnostics.build ~sample_every:16 ~n_conns:(if quick then 4 else 8) () in
  Diagnostics.run d ~duration_ns:(if quick then Time_ns.ms 5 else Time_ns.ms 15);
  let events = Span.drain d.Diagnostics.span in
  let b = Span.breakdown events in
  Report.table fmt
    ~header:[ "segment"; "count"; "mean [us]"; "p50 [us]"; "p99 [us]" ]
    ~rows:
      (List.map
         (fun s ->
           let h = s.Span.seg_hist in
           [
             Span.hop_name s.Span.seg_from ^ "->" ^ Span.hop_name s.Span.seg_to;
             string_of_int (Stats.Hist.count h);
             Report.f2 (Stats.Hist.mean h /. 1e3);
             Report.f2 (Stats.Hist.percentile h 50. /. 1e3);
             Report.f2 (Stats.Hist.percentile h 99. /. 1e3);
           ])
         b.Span.segments);
  let e2e = b.Span.end_to_end in
  Report.kv fmt "spans" (string_of_int b.Span.spans);
  Report.kv fmt "complete spans (app-to-app)" (string_of_int b.Span.complete);
  Report.kv fmt "end-to-end mean [us]"
    (Report.f2 (Stats.Hist.mean e2e /. 1e3));
  Report.kv fmt "end-to-end p99 [us]"
    (Report.f2 (Stats.Hist.percentile e2e 99. /. 1e3));
  (* Decomposition check: per-span segment durations sum exactly to that
     span's end-to-end latency, so the totals must agree (histogram means
     are exact sums/counts, so this is exact in practice). *)
  let seg_total =
    List.fold_left
      (fun acc s ->
        acc
        +. (Stats.Hist.mean s.Span.seg_hist
            *. float_of_int (Stats.Hist.count s.Span.seg_hist)))
      0.0 b.Span.segments
  in
  let e2e_total = Stats.Hist.mean e2e *. float_of_int (Stats.Hist.count e2e) in
  Report.kv fmt "hop-sum / end-to-end total"
    (if e2e_total = 0.0 then "-" else Report.f2 (seg_total /. e2e_total));
  Report.kv fmt "origins offered" (string_of_int (Span.offered d.Diagnostics.span));
  Report.kv fmt "spans started" (string_of_int (Span.started d.Diagnostics.span));
  Report.kv fmt "events dropped (ring full)"
    (string_of_int (Span.dropped d.Diagnostics.span));
  Report.attach "span"
    (J.Obj
       [
         ("offered", J.Int (Span.offered d.Diagnostics.span));
         ("started", J.Int (Span.started d.Diagnostics.span));
         ("recorded", J.Int (Span.recorded d.Diagnostics.span));
         ("dropped", J.Int (Span.dropped d.Diagnostics.span));
         ("spans", J.Int b.Span.spans);
         ("complete", J.Int b.Span.complete);
         ("end_to_end", hist_json e2e);
         ( "segments",
           J.List
             (List.map
                (fun s ->
                  J.Obj
                    [
                      ("from", J.Str (Span.hop_name s.Span.seg_from));
                      ("to", J.Str (Span.hop_name s.Span.seg_to));
                      ("hist", hist_json s.Span.seg_hist);
                    ])
                b.Span.segments) );
       ]);
  Report.attach "rpcs"
    (J.Int (Stats.Counter.value d.Diagnostics.stats.Tas_apps.Rpc_echo.completed))
