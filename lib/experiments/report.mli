(** Table/series rendering for experiment output, paper-style: each
    experiment prints the series the paper plots, alongside the paper's
    reported values where it states them, so shape agreement is visible at
    a glance.

    Every printing function also mirrors its content into the currently
    open artifact (see {!Artifact}), so the registry can write a structured
    [BENCH_<id>.json] per experiment without per-experiment changes. *)

(** Structured capture of an experiment's output. The registry opens one
    artifact around each run; nesting is not supported (there is a single
    current artifact). When no artifact is open, printing functions only
    print. *)
module Artifact : sig
  val start : unit -> unit
  val finish : unit -> Tas_telemetry.Json.t
  (** The items mirrored since [start], in print order, as a JSON array. *)

  val attach : string -> Tas_telemetry.Json.t -> unit
  (** Add a raw named JSON item (e.g. a metrics snapshot) to the open
      artifact. No-op when none is open. *)

  val add_timeline : name:string -> Tas_telemetry.Json.t -> unit
  (** Stage a named timeline document ({!Tas_telemetry.Timeline.to_json})
      for the run's [TIMELINE_<id>.json] artifact — kept out of the BENCH
      body because frames can dwarf the rest of the output. Domain-local
      like the artifact itself. *)

  val take_timelines : unit -> (string * Tas_telemetry.Json.t) list
  (** Drain the staged timelines (registration order), clearing the slot. *)
end

val attach : string -> Tas_telemetry.Json.t -> unit
(** Alias for {!Artifact.attach}. *)

val add_timeline : name:string -> Tas_telemetry.Json.t -> unit
(** Alias for {!Artifact.add_timeline}. *)

val section : Format.formatter -> string -> unit
(** Header naming the paper table/figure being reproduced. *)

val table :
  Format.formatter -> header:string list -> rows:string list list -> unit
(** Fixed-width text table. *)

val series :
  Format.formatter -> name:string -> (string * float) list -> unit
(** One named data series: [(x-label, y)] pairs. *)

val kv : Format.formatter -> string -> string -> unit
(** One "key: value" result line. *)

val note : Format.formatter -> string -> unit

val f1 : float -> string
val f2 : float -> string
val mops : float -> string
(** Millions of operations per second, 2 decimals. *)

val pct : float -> string
