(* Telemetry showcase ("tm"): a closed-loop RPC echo workload on a TAS
   server with the trace ring enabled. Emits throughput and latency, the
   per-core cycle breakdown mirroring the paper's per-module accounting
   (Tables 1/2), the full metrics-registry snapshot, and a trace-ring
   summary — all mirrored into BENCH_tm.json by the registry wrapper. *)

module Sim = Tas_engine.Sim
module Time_ns = Tas_engine.Time_ns
module Stats = Tas_engine.Stats
module Topology = Tas_netsim.Topology
module Config = Tas_core.Config
module Tas = Tas_core.Tas
module Core = Tas_cpu.Core
module Rpc_echo = Tas_apps.Rpc_echo
module Metrics = Tas_telemetry.Metrics
module Trace = Tas_telemetry.Trace
module J = Tas_telemetry.Json

let run ?(quick = false) fmt =
  Report.section fmt
    "Telemetry: metrics registry, per-core cycle breakdown, trace ring";
  Report.note fmt
    "RPC echo on TAS (sockets API) with tracing on; the full registry \
     snapshot and trace summary land in BENCH_tm.json";
  let sim = Sim.create () in
  let net = Topology.star sim ~n_clients:2 ~queues_per_nic:8 () in
  let msg_size = 64 and app_cycles = 680 in
  let server =
    Scenario.build_server sim ~nic:net.Topology.server.Topology.nic
      ~kind:Scenario.Tas_so ~total_cores:4 ~app_cycles
      ~tas_patch:(fun c ->
        {
          c with
          Config.trace_enabled = true;
          trace_capacity = Run_opts.trace_capacity ~default:65536;
        })
      ()
  in
  Rpc_echo.server server.Scenario.transport ~port:7 ~msg_size ~app_cycles;
  let stats = Rpc_echo.make_stats () in
  let conns_per_client = if quick then 8 else 32 in
  Array.iter
    (fun client ->
      let transport = Scenario.client_transport sim client () in
      Rpc_echo.closed_loop_clients sim transport ~n:conns_per_client
        ~dst_ip:server.Scenario.ip ~dst_port:7 ~msg_size ~pipeline:4
        ~stagger_ns:5_000 ~stats ())
    net.Topology.clients;
  let warmup = Time_ns.ms 3 in
  let measure = if quick then Time_ns.ms 5 else Time_ns.ms 12 in
  let rate =
    Scenario.measure_rate sim ~warmup ~measure (fun () ->
        Stats.Counter.value stats.Rpc_echo.completed)
  in
  let lat = stats.Rpc_echo.latency_us in
  Report.table fmt
    ~header:[ "metric"; "value" ]
    ~rows:
      [
        [ "throughput [Kreq/s]"; Report.f1 (rate /. 1e3) ];
        [ "latency p50 [us]"; Report.f1 (Stats.Hist.percentile lat 50.) ];
        [ "latency p90 [us]"; Report.f1 (Stats.Hist.percentile lat 90.) ];
        [ "latency p99 [us]"; Report.f1 (Stats.Hist.percentile lat 99.) ];
        [ "rpcs measured"; string_of_int (Stats.Hist.count lat) ];
      ];
  let tas =
    match server.Scenario.tas with
    | Some tas -> tas
    | None -> assert false (* Tas_so servers always carry a TAS instance *)
  in
  (* Per-module cycle breakdown over fast-path + slow-path cores. *)
  let breakdown = Tas.cycle_breakdown tas in
  let total = List.fold_left (fun acc (_, ns) -> acc + ns) 0 breakdown in
  Report.table fmt
    ~header:[ "category"; "busy [ms]"; "share" ]
    ~rows:
      (List.filter_map
         (fun (cat, ns) ->
           if ns = 0 then None
           else
             Some
               [
                 Core.category_name cat;
                 Report.f2 (float_of_int ns /. 1e6);
                 (if total = 0 then "-"
                  else
                    Report.pct (100. *. float_of_int ns /. float_of_int total));
               ])
         breakdown);
  Report.attach "cycle_breakdown"
    (J.Obj
       (List.map
          (fun (cat, ns) -> (Core.category_name cat, J.Int ns))
          breakdown));
  Report.attach "throughput_rps" (J.Float rate);
  Report.attach "latency_us"
    (J.Obj
       [
         ("count", J.Int (Stats.Hist.count lat));
         ("mean", J.Float (Stats.Hist.mean lat));
         ("p50", J.Float (Stats.Hist.percentile lat 50.));
         ("p90", J.Float (Stats.Hist.percentile lat 90.));
         ("p99", J.Float (Stats.Hist.percentile lat 99.));
         ("max", J.Float (Stats.Hist.max_v lat));
       ]);
  (* Full registry snapshot. *)
  Report.attach "metrics" (Metrics.to_json (Tas.metrics tas));
  (* Trace summary: counts per event kind; the raw ring is bounded so the
     retained events cover the tail of the run. *)
  let tr = Tas.trace tas in
  let events = Trace.drain tr in
  let counts = Trace.counts_by_kind events in
  Report.table fmt
    ~header:[ "trace event"; "count" ]
    ~rows:
      (List.map
         (fun (k, n) -> [ Trace.kind_name k; string_of_int n ])
         counts);
  Report.kv fmt "trace events recorded" (string_of_int (Trace.recorded tr));
  Report.kv fmt "trace events dropped (ring full)"
    (string_of_int (Trace.dropped tr));
  Report.attach "trace"
    (J.Obj
       [
         ("recorded", J.Int (Trace.recorded tr));
         ("dropped", J.Int (Trace.dropped tr));
         ( "counts_by_kind",
           J.Obj
             (List.map
                (fun (k, n) -> (Trace.kind_name k, J.Int n))
                counts) );
       ])
