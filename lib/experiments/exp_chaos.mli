(** Chaos experiment ([ch]): drives a closed-loop KV workload between two
    TAS hosts through a set of seeded fault schedules (bursty loss,
    corruption, duplication + reordering, link flaps, and everything at
    once) and asserts hardening invariants — fault-stage packet
    conservation, corruption drops reconciling exactly against NIC/fast-path
    validation counters, every connection completing or failing cleanly, no
    leaked flow-table entries, and bit-identical counters across two
    same-seed runs. Violations are reported (and counted in the artifact),
    never raised. *)

val run : ?quick:bool -> Format.formatter -> unit
