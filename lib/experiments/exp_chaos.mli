(** Chaos experiment ([ch]): drives a closed-loop KV workload between two
    TAS hosts through a set of seeded fault schedules (bursty loss,
    corruption, duplication + reordering, link flaps, and everything at
    once) and asserts hardening invariants — fault-stage packet
    conservation, corruption drops reconciling exactly against NIC/fast-path
    validation counters, every connection completing or failing cleanly, no
    leaked flow-table entries, and bit-identical counters across two
    same-seed runs. Violations are reported (and counted in the artifact),
    never raised.

    Schedules are independent seeded simulations; with
    {!Run_opts.set_jobs}[ N > 1] they run in parallel on a domain pool and
    are merged in submission order, so the report and artifact are
    byte-identical to a serial run. *)

val run : ?quick:bool -> ?only:string list -> Format.formatter -> unit
(** [only] restricts the run to the named schedules (default: all five) —
    used by the parallel-determinism tests to keep runtimes bounded. *)
