(* Elastic core controller (el): a diurnal load schedule — morning ramp,
   flash crowd, overnight trough — run once per autoscaling policy, checking
   the properties the controller subsystem promises:

   1. Tracking — active fast-path cores follow the offered load shape
      (flash window runs more cores than the day plateau, the trough fewer)
      under both damped policies (Hysteresis, Slo).
   2. Bounded disruption — p99 RPC latency through controller-driven
      scale-down migrations blips less under Hysteresis (down-slow damping)
      than under the paper's undamped threshold rule.
   3. Auditability and determinism — every decision lands in the ctl_*
      counters and decision log, the health watchdog (including the new
      core-flap rule) stays silent, and timelines are byte-identical across
      same-seed and serial-vs-parallel runs. *)

module Sim = Tas_engine.Sim
module Time_ns = Tas_engine.Time_ns
module Stats = Tas_engine.Stats
module Topology = Tas_netsim.Topology
module Nic = Tas_netsim.Nic
module Config = Tas_core.Config
module Tas = Tas_core.Tas
module Slow_path = Tas_core.Slow_path
module Policy = Tas_control.Policy
module Controller = Tas_control.Controller
module Timeline = Tas_telemetry.Timeline
module Health = Tas_telemetry.Health
module J = Tas_telemetry.Json
module Rpc_echo = Tas_apps.Rpc_echo

let ms = Time_ns.ms
let msg_size = 64
let echo_app_cycles = 300
let scale_check_ns = 2_000_000
let stack_cores = 6

(* Inflate fast-path per-packet costs so the offered load actually saturates
   cores and the idle-core signal has dynamic range (cf. the tl/sh sweeps,
   pushed harder here because up to 6 fp cores must be distinguishable). *)
let inflate_fp c =
  {
    c with
    Config.fp_driver_cycles = 6 * c.Config.fp_driver_cycles;
    fp_rx_cycles = 6 * c.Config.fp_rx_cycles;
    fp_tx_cycles = 6 * c.Config.fp_tx_cycles;
    fp_ack_rx_cycles = 6 * c.Config.fp_ack_rx_cycles;
  }

let elastic_patch policy c =
  {
    (inflate_fp c) with
    Config.dynamic_scaling = true;
    scale_check_interval_ns = scale_check_ns;
    scale_policy = policy;
  }

(* Diurnal schedule: a small overnight-baseline group runs the whole time,
   a day group joins (the morning ramp), a flash crowd arrives and leaves,
   then the day group departs into the overnight trough. *)
type schedule = {
  t_end : int;
  base_conns : int;  (* overnight baseline, runs the whole schedule *)
  day_conns : int;
  day_start : int;
  flash_conns : int;
  flash_start : int;
  flash_stop : int;
  day_stop : int;
  (* Day-phase load pulses: short bursts separated by equally short gaps.
     The gaps are transient idle dips — shorter than Hysteresis's
     confirmation window but longer than one scale tick — so the undamped
     paper policy sheds a core on every dip and pays a latency blip when
     the next burst lands on the reduced core set (the F15 story), while
     damped policies ride through. *)
  pulse_conns : int;
  pulse_on : int;
  pulse_off : int;
  pulse_start : int;
  pulse_stop : int;
}

let full_schedule =
  {
    t_end = ms 240;
    base_conns = 3;
    day_conns = 10;
    day_start = ms 30;
    flash_conns = 32;
    flash_start = ms 100;
    flash_stop = ms 150;
    day_stop = ms 190;
    pulse_conns = 10;
    pulse_on = ms 4;
    pulse_off = ms 4;
    pulse_start = ms 40;
    pulse_stop = ms 96;
  }

let quick_schedule =
  {
    t_end = ms 130;
    base_conns = 3;
    day_conns = 8;
    day_start = ms 15;
    flash_conns = 24;
    flash_start = ms 50;
    flash_stop = ms 80;
    day_stop = ms 100;
    pulse_conns = 10;
    pulse_on = ms 4;
    pulse_off = ms 4;
    pulse_start = ms 22;
    pulse_stop = ms 46;
  }

(* Windowed p99 from latency-histogram bucket deltas: each call diffs the
   histogram's sparse buckets against the previous call and reconstructs a
   histogram of just that window's samples (lossless up to bucket
   quantization). Returns a negative value when the window saw no samples.
   Each consumer owns its own closure (independent windows). *)
let make_windowed_p99 (stats : Rpc_echo.stats) =
  let last = ref [] in
  fun () ->
    let cur = Stats.Hist.buckets stats.Rpc_echo.latency_us in
    let prev = !last in
    last := cur;
    (* Both lists are sparse and ascending; counts are monotone, so every
       prev index is present in cur. *)
    let rec diff cur prev acc =
      match (cur, prev) with
      | [], _ -> List.rev acc
      | c :: cs, [] -> diff cs [] (c :: acc)
      | ((ci, cc) :: cs as cur'), (pi, pc) :: ps ->
        if ci = pi then
          let d = cc - pc in
          diff cs ps (if d > 0 then (ci, d) :: acc else acc)
        else if ci < pi then diff cs prev ((ci, cc) :: acc)
        else diff cur' ps acc
    in
    match diff cur prev [] with
    | [] -> -1.0
    | window -> Stats.Hist.percentile (Stats.Hist.of_buckets window) 99.0

type outcome = {
  o_frames : Timeline.frame list;
  o_tl_json : J.t;
  o_completed : int;
  o_scale_events : (int * int) list;  (* (ts, new core count), time order *)
  o_decisions : Policy.decision list;
  o_ctl_json : J.t;
  o_p99_series : (int * float) list;  (* (ts, windowed p99 us), time order *)
  o_final_flows : int;
  o_conn_setups : int;
  o_scale_ups : int;
  o_scale_downs : int;
  o_denied : int;
  o_held : int;
}

(* One schedule run under one policy. [conns_extra] perturbs the workload
   (parallel-batch members must be distinguishable). *)
let run_one ~interval_ns ~seed:_ ~policy ?(conns_extra = 0) sched =
  let sim = Sim.create () in
  let link = Topology.link_10g ~ecn_threshold:65 () in
  let net =
    Topology.point_to_point sim ~spec:link ~queues_per_nic:stack_cores ()
  in
  let server =
    Scenario.build_server sim ~nic:net.Topology.a.Topology.nic
      ~kind:Scenario.Tas_ll ~total_cores:(2 + stack_cores)
      ~app_cycles:echo_app_cycles ~split:(2, stack_cores)
      ~timeline_ns:interval_ns
      ~tas_patch:(elastic_patch policy) ()
  in
  Rpc_echo.server server.Scenario.transport ~port:7 ~msg_size
    ~app_cycles:echo_app_cycles;
  let tas = Option.get server.Scenario.tas in
  let sp = Tas.slow_path tas in
  let ctl = Option.get (Slow_path.controller sp) in
  let scale_events = ref [] in
  Slow_path.set_scale_observer sp (fun ts n ->
      scale_events := (ts, n) :: !scale_events);
  let client = Scenario.client_transport sim net.Topology.b () in
  let dst_ip = Nic.ip net.Topology.a.Topology.nic in
  let stats = Rpc_echo.make_stats () in
  (* The SLO policy observes application latency through the controller's
     probe — same windowed-p99 closure the blip analysis uses. *)
  Controller.set_p99_probe ctl (make_windowed_p99 stats);
  let p99_probe = make_windowed_p99 stats in
  let p99_series = ref [] in
  ignore
    (Sim.periodic sim 1_000_000 (fun () ->
         let p = p99_probe () in
         if p >= 0.0 then p99_series := (Sim.now sim, p) :: !p99_series));
  let group ~n ~start_at ~stop_at ~pipeline ~think_ns =
    if n > 0 then
      Rpc_echo.closed_loop_clients sim client ~n ~dst_ip ~dst_port:7 ~msg_size
        ~pipeline ~stagger_ns:50_000 ~start_at ~stop_at ~think_ns ~stats ()
  in
  group
    ~n:(sched.base_conns + conns_extra)
    ~start_at:1 ~stop_at:sched.t_end ~pipeline:2 ~think_ns:20_000;
  group ~n:sched.day_conns ~start_at:sched.day_start ~stop_at:sched.day_stop
    ~pipeline:2 ~think_ns:10_000;
  group ~n:sched.flash_conns ~start_at:sched.flash_start
    ~stop_at:sched.flash_stop ~pipeline:4 ~think_ns:0;
  let rec pulses at =
    if at + sched.pulse_on <= sched.pulse_stop then begin
      group ~n:sched.pulse_conns ~start_at:at ~stop_at:(at + sched.pulse_on)
        ~pipeline:2 ~think_ns:0;
      pulses (at + sched.pulse_on + sched.pulse_off)
    end
  in
  pulses sched.pulse_start;
  Sim.run ~until:sched.t_end sim;
  let tl = Option.get (Tas.timeline tas) in
  {
    o_frames = Timeline.frames tl;
    o_tl_json = Timeline.to_json tl;
    o_completed = Tas_engine.Stats.Counter.value stats.Rpc_echo.completed;
    o_scale_events = List.rev !scale_events;
    o_decisions = Controller.decisions ctl;
    o_ctl_json = Controller.to_json ctl;
    o_p99_series = List.rev !p99_series;
    o_final_flows =
      Tas_core.Flow_table.count (Tas_core.Fast_path.flows (Tas.fast_path tas));
    o_conn_setups = Slow_path.conn_setups sp;
    o_scale_ups = Controller.scale_ups ctl;
    o_scale_downs = Controller.scale_downs ctl;
    o_denied = Controller.denied_cooldown ctl;
    o_held = Controller.held_confirm ctl;
  }

(* --- Series analysis ------------------------------------------------------ *)

let gauge_value (f : Timeline.frame) name =
  List.fold_left
    (fun acc (n, _, v) -> if n = name then acc +. v else acc)
    0.0 f.Timeline.gauges

let mean_cores frames ~from_ts ~to_ts =
  let window =
    List.filter
      (fun (f : Timeline.frame) ->
        f.Timeline.ts > from_ts && f.Timeline.ts <= to_ts)
      frames
  in
  match window with
  | [] -> 0.0
  | _ ->
    List.fold_left
      (fun acc f -> acc +. gauge_value f "fp_active_cores")
      0.0 window
    /. float_of_int (List.length window)

(* p99 of the quiet day plateau: the reference the scale-down blips are
   measured against. Median of the windowed-p99 samples in the window. *)
let median_p99 series ~from_ts ~to_ts =
  let w =
    List.filter_map
      (fun (ts, p) -> if ts > from_ts && ts <= to_ts then Some p else None)
      series
  in
  match List.sort compare w with
  | [] -> 0.0
  | sorted -> List.nth sorted (List.length sorted / 2)

(* Worst windowed p99 in the [follow_ns] after a mid-load scale-down: the
   disruption cost of shedding a core while traffic still needs it. Only
   shrinks under remaining offered load count (the trough's shrinks disturb
   nobody), and a pre-flash window is clipped at the flash-crowd arrival so
   the crowd's own onset latency is never attributed to a shrink. A damped
   policy that never sheds a core mid-load scores zero — ideal. *)
let scale_down_blip sched ~scale_events ~p99_series ~follow_ns =
  let downs =
    let rec collect prev = function
      | [] -> []
      | (ts, n) :: rest ->
        if n < prev then ts :: collect n rest else collect n rest
    in
    collect 1 scale_events
  in
  let eligible = List.filter (fun ts -> ts < sched.day_stop) downs in
  let blip =
    List.fold_left
      (fun acc down_ts ->
        let until =
          if down_ts < sched.flash_start then
            min (down_ts + follow_ns) sched.flash_start
          else down_ts + follow_ns
        in
        List.fold_left
          (fun acc (ts, p) ->
            if ts > down_ts && ts <= until then max acc p else acc)
          acc p99_series)
      0.0 eligible
  in
  (List.length eligible, blip)

let frames_json frames =
  J.to_string (J.List (List.map Timeline.frame_to_json frames))

let every n l = List.filteri (fun i _ -> i mod n = 0) l

let last n l =
  let len = List.length l in
  if len <= n then l else List.filteri (fun i _ -> i >= len - n) l

(* --- The experiment ------------------------------------------------------- *)

type policy_result = {
  r_name : string;
  r_out : outcome;
  r_day : float;
  r_flash : float;
  r_trough : float;
  r_tracks : bool;
  r_downs : int;
  r_blip : float;
  r_blip_ratio : float;
}

let analyze sched name (out : outcome) =
  let day =
    mean_cores out.o_frames
      ~from_ts:(sched.day_start + ms 10)
      ~to_ts:sched.flash_start
  in
  let flash =
    mean_cores out.o_frames
      ~from_ts:(sched.flash_start + ms 5)
      ~to_ts:sched.flash_stop
  in
  let trough =
    mean_cores out.o_frames ~from_ts:(sched.day_stop + ms 10) ~to_ts:sched.t_end
  in
  let tracks = flash > day +. 0.25 && trough < flash -. 0.25 in
  let day_p99 =
    median_p99 out.o_p99_series
      ~from_ts:(sched.day_start + ms 10)
      ~to_ts:sched.flash_start
  in
  let downs, blip =
    scale_down_blip sched ~scale_events:out.o_scale_events
      ~p99_series:out.o_p99_series ~follow_ns:(ms 6)
  in
  let blip_ratio = if day_p99 > 0.0 then blip /. day_p99 else 0.0 in
  {
    r_name = name;
    r_out = out;
    r_day = day;
    r_flash = flash;
    r_trough = trough;
    r_tracks = tracks;
    r_downs = downs;
    r_blip = blip;
    r_blip_ratio = blip_ratio;
  }

let policy_json sched r =
  let cores_series =
    List.map
      (fun (f : Timeline.frame) ->
        J.List
          [
            J.Int (f.Timeline.ts / 1_000_000);
            J.Int (int_of_float (gauge_value f "fp_active_cores"));
          ])
      (every 2 r.r_out.o_frames)
  in
  ignore sched;
  J.Obj
    [
      ("policy", J.Str r.r_name);
      ("completed", J.Int r.r_out.o_completed);
      ("conn_setups", J.Int r.r_out.o_conn_setups);
      ("final_flows", J.Int r.r_out.o_final_flows);
      ("day_cores", J.Float r.r_day);
      ("flash_cores", J.Float r.r_flash);
      ("trough_cores", J.Float r.r_trough);
      ("tracks_load", J.Bool r.r_tracks);
      ("scale_downs_observed", J.Int r.r_downs);
      ("scale_down_blip_p99_us", J.Float r.r_blip);
      ("blip_ratio", J.Float r.r_blip_ratio);
      ("controller", r.r_out.o_ctl_json);
      ("cores_series_ms", J.List cores_series);
      ( "decisions_tail",
        J.List (List.map Policy.decision_to_json (last 64 r.r_out.o_decisions))
      );
    ]

let run ?(quick = false) fmt =
  let sched = if quick then quick_schedule else full_schedule in
  let interval_ns = Run_opts.timeline_interval_ns ~default:1_000_000 in
  let slo_target_us = 60.0 in
  Report.section fmt
    "Elastic controller: diurnal autoscaling under pluggable policies";
  Report.note fmt
    (Printf.sprintf
       "baseline %d conns; day +%d at %dms; flash crowd %d conns %d-%dms; \
        trough after %dms; scale tick %dus, %d stack cores"
       sched.base_conns sched.day_conns
       (sched.day_start / 1_000_000)
       sched.flash_conns
       (sched.flash_start / 1_000_000)
       (sched.flash_stop / 1_000_000)
       (sched.day_stop / 1_000_000)
       (scale_check_ns / 1000) stack_cores);
  let policies =
    [
      ("paper_threshold", Policy.paper_default);
      ("hysteresis", Policy.hysteresis_default);
      ("slo", Policy.slo_default ~p99_target_us:slo_target_us);
    ]
  in
  let member i =
    let name, policy = List.nth policies i in
    (name, run_one ~interval_ns ~seed:(7 + i) ~policy sched)
  in
  let idx = Array.init (List.length policies) (fun i -> i) in
  (* Serial pass (the reference) and a parallel pass over the same members:
     the merged timelines must be byte-identical. *)
  let serial = Array.map member idx in
  let jobs = max 2 (Run_opts.jobs ()) in
  let parallel =
    Tas_parallel.Domain_pool.with_pool ~jobs (fun pool ->
        Tas_parallel.Domain_pool.map pool ~f:member idx)
  in
  let serial_merged =
    Timeline.merge (Array.to_list (Array.map (fun (_, o) -> o.o_frames) serial))
  in
  let par_merged =
    Timeline.merge
      (Array.to_list (Array.map (fun (_, o) -> o.o_frames) parallel))
  in
  let parallel_ok =
    String.equal (frames_json serial_merged) (frames_json par_merged)
  in
  (* Same-seed determinism: the hysteresis member re-run byte-identically. *)
  let _, hyst_again = member 1 in
  let results =
    Array.to_list (Array.map (fun (name, o) -> analyze sched name o) serial)
  in
  let find name = List.find (fun r -> r.r_name = name) results in
  let paper = find "paper_threshold" in
  let hyst = find "hysteresis" in
  let slo = find "slo" in
  let same_seed_ok =
    String.equal
      (J.to_string hyst.r_out.o_tl_json)
      (J.to_string hyst_again.o_tl_json)
  in
  (* Watchdog (with the core-flap rule) on the damped policies. Autoscaled
     operation deliberately concentrates flows on few shards whenever few
     cores are active (max/mean == num_shards at 1 core), so the skew rule
     is inapplicable here — disarm it by raising its bound past the
     max/mean ceiling; every other rule stays at its default. *)
  let el_thresholds =
    {
      Health.default_thresholds with
      Health.shard_imbalance = float_of_int stack_cores +. 1.0;
    }
  in
  let hyst_health = Health.check ~thresholds:el_thresholds hyst.r_out.o_frames in
  let slo_health = Health.check ~thresholds:el_thresholds slo.r_out.o_frames in
  let paper_health =
    Health.check ~thresholds:el_thresholds paper.r_out.o_frames
  in
  let health_violations =
    List.length hyst_health.Health.violations
    + List.length slo_health.Health.violations
  in
  (* Hysteresis may legitimately have zero mid-load shrinks (the damping
     worked); the gate only needs the paper policy to have paid a bigger
     blip than it did. *)
  let blip_smaller = paper.r_downs > 0 && hyst.r_blip < paper.r_blip in
  (* Report. *)
  Report.table fmt
    ~header:
      [
        "policy"; "day cores"; "flash"; "trough"; "tracks"; "downs";
        "blip p99 [us]"; "rpcs";
      ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.r_name;
             Report.f2 r.r_day;
             Report.f2 r.r_flash;
             Report.f2 r.r_trough;
             (if r.r_tracks then "yes" else "NO");
             string_of_int r.r_downs;
             Report.f1 r.r_blip;
             string_of_int r.r_out.o_completed;
           ])
         results);
  List.iter
    (fun r ->
      Report.series fmt
        ~name:(Printf.sprintf "active cores (%s) vs t_ms" r.r_name)
        (List.map
           (fun (f : Timeline.frame) ->
             ( string_of_int (f.Timeline.ts / 1_000_000),
               gauge_value f "fp_active_cores" ))
           (every 10 r.r_out.o_frames)))
    results;
  Report.kv fmt "scale-down p99 blip paper vs hysteresis"
    (Printf.sprintf "%.1f us vs %.1f us (%s)" paper.r_blip hyst.r_blip
       (if blip_smaller then "hysteresis smaller" else "NOT SMALLER"));
  Report.kv fmt "same-seed timeline byte-identical"
    (if same_seed_ok then "yes" else "NO");
  Report.kv fmt
    (Printf.sprintf "serial vs -j%d merged timeline byte-identical" jobs)
    (if parallel_ok then "yes" else "NO");
  let paper_flap =
    match List.assoc_opt Health.Core_flap paper_health.Health.by_rule with
    | Some n -> n
    | None -> 0
  in
  Report.kv fmt "watchdog (hysteresis+slo, incl. core-flap rule)"
    (Printf.sprintf "%d violations" health_violations);
  Report.kv fmt "watchdog core-flap frames (paper_threshold)"
    (string_of_int paper_flap);
  Report.kv fmt "ctl counters (hysteresis)"
    (Printf.sprintf "ups %d downs %d denied %d held %d" hyst.r_out.o_scale_ups
       hyst.r_out.o_scale_downs hyst.r_out.o_denied hyst.r_out.o_held);
  Report.attach "autoscale"
    (J.Obj
       [
         ("interval_ns", J.Int interval_ns);
         ("scale_check_ns", J.Int scale_check_ns);
         ("slo_target_us", J.Float slo_target_us);
         ("same_seed_identical", J.Bool same_seed_ok);
         ("parallel_identical", J.Bool parallel_ok);
         ("parallel_jobs", J.Int jobs);
         ("health_violations", J.Int health_violations);
         ("paper_core_flap_frames", J.Int paper_flap);
         ("hysteresis_health", Health.report_to_json hyst_health);
         ("blip_paper_us", J.Float paper.r_blip);
         ("blip_hysteresis_us", J.Float hyst.r_blip);
         ("blip_smaller_under_hysteresis", J.Bool blip_smaller);
         ("policies", J.List (List.map (policy_json sched) results));
       ]);
  List.iter
    (fun r -> Report.add_timeline ~name:r.r_name r.r_out.o_tl_json)
    results
