module Sim = Tas_engine.Sim
module Time_ns = Tas_engine.Time_ns
module Core = Tas_cpu.Core
module Rng = Tas_engine.Rng
module Topology = Tas_netsim.Topology
module Config = Tas_core.Config
module Tas = Tas_core.Tas
module Libtas = Tas_core.Libtas
module E = Tas_baseline.Tcp_engine
module Transport = Tas_apps.Transport
module Fault = Tas_netsim.Fault

type variant = Linux_full | Tas_ooo | Tas_simple

(* Loss shape applied (symmetrically) to both link directions. *)
type shape = No_loss | Uniform of float | Bursty of float

let fault_of_shape = function
  | No_loss -> None
  | Uniform rate -> Some (Fault.uniform_loss rate)
  | Bursty rate ->
    (* Gilbert–Elliott with mean burst length 4 packets at the same
       stationary loss rate: the hostile-network profile where consecutive
       drops defeat per-gap recovery. *)
    Some (Fault.bursty_of_rate ~rate ~mean_burst_pkts:4.0)

let goodput_gbps variant ~shape =
  let sim = Sim.create () in
  let rng = Rng.create 1234 in
  let spec = Topology.link_10g ~ecn_threshold:65 () in
  let net =
    match fault_of_shape shape with
    | None -> Topology.point_to_point sim ~spec ~queues_per_nic:8 ()
    | Some fs ->
      Topology.point_to_point sim ~spec ~fault_ab:fs ~fault_ba:fs ~rng
        ~queues_per_nic:8 ()
  in
  (* Sender under test on host a; ideal receiver on host b. *)
  let sender =
    match variant with
    | Linux_full ->
      let config =
        { E.default_config with E.rx_buf = 131072; tx_buf = 131072 }
      in
      let engine = E.create sim net.Topology.a.Topology.nic config in
      E.attach engine;
      Transport.of_engine engine
    | Tas_ooo | Tas_simple ->
      (* Senders pinned at fair share (94 Mbps x 100 flows ~ line rate):
         the measurement isolates loss-recovery efficiency from congestion
         dynamics, which induced loss would otherwise perturb. *)
      let config =
        {
          Config.default with
          Config.max_fast_path_cores = 2;
          rx_buf_size = 131072;
          tx_buf_size = 131072;
          rx_ooo_enabled = (variant = Tas_ooo);
          cc = Tas_tcp.Interval_cc.Fixed_rate;
          initial_rate_bps = 94e6;
        }
      in
      let tas = Tas.create sim ~nic:net.Topology.a.Topology.nic ~config () in
      let cores = [| Core.create sim ~id:500 (); Core.create sim ~id:501 () |] in
      let lt = Tas.app tas ~app_cores:cores ~api:Libtas.Sockets in
      Transport.of_libtas lt ~ctx_of_conn:(fun i -> i mod 2)
  in
  (* Receiver matches the sender's receive-side recovery, since loss hits
     both directions: for the TAS variants the receive-side policy under
     test is TAS's, so the receiver is a TAS host too. *)
  let receiver_transport, received =
    let received = ref 0 in
    let t =
      match variant with
      | Linux_full ->
        let config =
          { E.default_config with E.rx_buf = 131072; tx_buf = 131072 }
        in
        let engine = E.create sim net.Topology.b.Topology.nic config in
        E.attach engine;
        Transport.of_engine engine
      | Tas_ooo | Tas_simple ->
        let config =
          {
            Config.default with
            Config.max_fast_path_cores = 2;
            rx_buf_size = 131072;
            tx_buf_size = 131072;
            rx_ooo_enabled = (variant = Tas_ooo);
          }
        in
        let tas = Tas.create sim ~nic:net.Topology.b.Topology.nic ~config () in
        let cores =
          [| Core.create sim ~id:600 (); Core.create sim ~id:601 () |]
        in
        let lt = Tas.app tas ~app_cores:cores ~api:Libtas.Sockets in
        Transport.of_libtas lt ~ctx_of_conn:(fun i -> i mod 2)
    in
    (t, received)
  in
  Transport.listen receiver_transport ~port:5001 (fun _ ->
      {
        Transport.null_handlers with
        Transport.on_data = (fun _ d -> received := !received + Bytes.length d);
      });
  let chunk = Bytes.create 16384 in
  for _ = 1 to 100 do
    let rec push conn = if Transport.send conn chunk > 0 then push conn in
    Transport.connect sender
      ~dst_ip:(Tas_netsim.Nic.ip net.Topology.b.Topology.nic) ~dst_port:5001
      (fun _ ->
        {
          Transport.null_handlers with
          Transport.on_connected = (fun conn -> push conn);
          Transport.on_sendable = (fun conn -> push conn);
        })
  done;
  Sim.run ~until:(Time_ns.ms 40) sim;
  let before = !received in
  Sim.run ~until:(Time_ns.ms 280) sim;
  float_of_int ((!received - before) * 8) /. 0.24 /. 1e9

let variant_name = function
  | Linux_full -> "Linux"
  | Tas_ooo -> "TAS"
  | Tas_simple -> "TAS simple recovery"

let run ?(quick = false) fmt =
  Report.section fmt
    "Figure 7: throughput penalty vs. induced loss (100 bulk flows, 10G)";
  Report.note fmt
    "paper: TAS penalty <=1.5% up to 1% loss, 13% at 5%; ~2x Linux's \
     penalty; simple go-back-N recovery ~3x worse than TAS";
  let rates = if quick then [ 0.01 ] else [ 0.001; 0.002; 0.005; 0.01; 0.02; 0.05 ] in
  let variants = [ Linux_full; Tas_ooo; Tas_simple ] in
  let base =
    List.map (fun v -> (variant_name v, goodput_gbps v ~shape:No_loss)) variants
  in
  let header =
    "loss"
    :: List.map (fun v -> variant_name v ^ " penalty[%]") variants
  in
  (* [ordering_ok]: the paper's Fig. 7 ordering holds at every rate —
     Linux (full SACK) suffers the least penalty, TAS's single out-of-order
     interval about 2x that, and go-back-N recovery the most. Checked with
     a 0.5-point tolerance against measurement noise. *)
  let penalty_table shape_of_rate =
    let ordering_ok = ref true in
    let rows =
      List.map
        (fun loss ->
          let penalties =
            List.map
              (fun v ->
                let g = goodput_gbps v ~shape:(shape_of_rate loss) in
                let b = List.assoc (variant_name v) base in
                100.0 *. (1.0 -. (g /. b)))
              variants
          in
          (match penalties with
          | [ linux; tas; simple ] ->
            if linux > tas +. 0.5 || tas > simple +. 0.5 then
              ordering_ok := false
          | _ -> ());
          Printf.sprintf "%.1f%%" (loss *. 100.)
          :: List.map Report.f1 penalties)
        rates
    in
    (rows, !ordering_ok)
  in
  let uniform_rows, uniform_ok = penalty_table (fun r -> Uniform r) in
  Report.table fmt ~header ~rows:uniform_rows;
  Report.kv fmt "uniform: penalty ordering Linux <= TAS <= TAS-simple"
    (if uniform_ok then "yes" else "NO");
  Report.section fmt
    "Fig. 7 extension: bursty (Gilbert-Elliott) loss, mean burst 4 pkts";
  Report.note fmt
    "same stationary loss rates, but drops arrive in bursts; recovery that \
     tolerates isolated gaps must also survive consecutive losses";
  let bursty_rows, bursty_ok = penalty_table (fun r -> Bursty r) in
  Report.table fmt ~header ~rows:bursty_rows;
  Report.kv fmt "bursty: penalty ordering Linux <= TAS <= TAS-simple"
    (if bursty_ok then "yes" else "NO")
