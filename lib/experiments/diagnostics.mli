(** The diagnostics scenario behind [tas_run flows] / [trace] / [top] and
    the "sp" experiment: an RPC-echo workload with TAS on both the client
    and the server host of a star topology, and one span collector wired
    into every hop (libTAS, fast path, NICs, link ports, switch), so
    sampled packets produce causal spans covering the full
    app-to-app path. *)

type t = {
  sim : Tas_engine.Sim.t;
  span : Tas_telemetry.Span.t;
  net : Tas_netsim.Topology.star;
  server : Tas_core.Tas.t;
  client : Tas_core.Tas.t;
  stats : Tas_apps.Rpc_echo.stats;
}

val build :
  ?sample_every:int ->
  ?capacity:int ->
  ?n_conns:int ->
  ?msg_size:int ->
  ?pipeline:int ->
  ?trace:bool ->
  ?timeline_ns:int ->
  unit ->
  t
(** Defaults: sample 1 packet in 16 per origin, 65536-event ring, 8
    connections of 64-byte pipelined (depth 4) echo RPCs. [trace] enables
    both hosts' structured trace rings (default off); [timeline_ns]
    (default 0 = off) turns on both hosts' timeline flight recorders at
    that frame interval. Deterministic: same parameters, same event
    stream. *)

val run : t -> duration_ns:Tas_engine.Time_ns.t -> unit

val run_with_tick :
  t ->
  duration_ns:Tas_engine.Time_ns.t ->
  every_ns:Tas_engine.Time_ns.t ->
  (unit -> unit) ->
  unit
(** Like {!run} but invokes the callback every [every_ns] of simulated time
    (the refresh driver for [tas_run top]). *)

(** Aggregated telemetry over a batch of independent diagnostics runs — the
    cross-domain view behind [tas_run stats]. *)
type batch_stats = {
  runs : int;
  jobs : int;  (** pool size the batch actually used *)
  completed : int;  (** RPCs finished, summed over runs *)
  metrics : Tas_telemetry.Metrics.sample list;
      (** {!Tas_telemetry.Metrics.merge} over every host registry of every
          run (counters/gauges summed, histograms combined) *)
  trace_events : int;
  trace_counts : (Tas_telemetry.Trace.kind * int) list;
      (** kind histogram of the merged trace streams *)
}

val batch_stats :
  ?runs:int -> duration_ns:Tas_engine.Time_ns.t -> unit -> batch_stats
(** Run [runs] (default 4) independent trace-enabled diagnostics
    simulations of increasing connection count, each for [duration_ns],
    and merge every host's metrics registry and trace ring into one
    report. The batch fans out over a domain pool of {!Run_opts.jobs}
    domains; the merge is in submission order and the merged snapshot is
    sorted, so the result is byte-identical for any jobs setting. *)
