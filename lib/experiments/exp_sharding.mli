(** "sh": sharded fast-path core scaling — throughput at fixed saturating
    load swept over 1..N active fast-path cores (Fig. 4 flavor), with
    per-shard occupancy/imbalance and spinlock-model cycle accounting,
    plus a scale-down migration drill and a sharded-vs-single-table
    equivalence check. *)

val run : ?quick:bool -> Format.formatter -> unit
