(* Timeline flight recorder (tl): drive a ramp + flash-crowd + trough RPC
   schedule against a TAS server, record 1 ms telemetry frames, and check
   the three properties the observability layer promises:

   1. Determinism — the timeline JSON is byte-identical across two
      same-seed runs, and merging per-member timelines from a parallel
      batch ([-j N]) reproduces the serial merge byte-for-byte.
   2. Watchdog — the health rules stay silent on the clean baseline and
      detect an injected retransmit storm (bursty loss + a mid-flash-crowd
      link blackout) on the chaos variant.
   3. Signal — per-core utilization visibly tracks the load shape: the
      flash-crowd window runs hotter than the early ramp. *)

module Sim = Tas_engine.Sim
module Time_ns = Tas_engine.Time_ns
module Rng = Tas_engine.Rng
module Topology = Tas_netsim.Topology
module Fault = Tas_netsim.Fault
module Nic = Tas_netsim.Nic
module Config = Tas_core.Config
module Tas = Tas_core.Tas
module Timeline = Tas_telemetry.Timeline
module Health = Tas_telemetry.Health
module J = Tas_telemetry.Json
module Rpc_echo = Tas_apps.Rpc_echo

let ms = Time_ns.ms
let msg_size = 64
let echo_app_cycles = 300

(* Same trick as the sharding sweep: inflate fast-path per-packet costs so
   the 2 fp cores are the bottleneck and utilization has a visible shape
   (uninflated, this workload would leave them nearly idle). *)
let inflate_fp c =
  {
    c with
    Config.fp_driver_cycles = 4 * c.Config.fp_driver_cycles;
    fp_rx_cycles = 4 * c.Config.fp_rx_cycles;
    fp_tx_cycles = 4 * c.Config.fp_tx_cycles;
    fp_ack_rx_cycles = 4 * c.Config.fp_ack_rx_cycles;
  }

(* Load schedule: ramp group A from the start, group B joining later, a
   large flash crowd that arrives and leaves, then a trough to the end. *)
type schedule = {
  t_end : int;
  a_conns : int;
  b_conns : int;
  b_start : int;
  flash_conns : int;
  flash_start : int;
  flash_stop : int;
  groups_stop : int;
  blackout : int * int;  (* chaos variant: link down window *)
}

let full_schedule =
  {
    t_end = ms 200;
    a_conns = 4;
    b_conns = 8;
    b_start = ms 40;
    flash_conns = 24;
    flash_start = ms 100;
    flash_stop = ms 140;
    groups_stop = ms 180;
    blackout = (ms 110, ms 118);
  }

let quick_schedule =
  {
    t_end = ms 120;
    a_conns = 4;
    b_conns = 6;
    b_start = ms 25;
    flash_conns = 16;
    flash_start = ms 60;
    flash_stop = ms 85;
    groups_stop = ms 105;
    blackout = (ms 66, ms 72);
  }

let chaos_spec sched =
  {
    (Fault.bursty_of_rate ~rate:0.01 ~mean_burst_pkts:4.0) with
    Fault.blackouts = [ sched.blackout ];
  }

type outcome = {
  frames : Timeline.frame list;
  tl_json : J.t;  (* full Timeline.to_json document *)
  completed : int;
}

(* One run of the schedule. [conns_extra] perturbs the workload size (the
   parallel-batch members must be distinguishable); [chaos] adds the seeded
   fault stage on both link directions. *)
let run_one ~interval_ns ~seed ~chaos ?(conns_extra = 0) sched =
  let sim = Sim.create () in
  let link = Topology.link_10g ~ecn_threshold:65 () in
  let net =
    if chaos then
      let rng = Rng.create seed in
      let spec = chaos_spec sched in
      Topology.point_to_point sim ~spec:link ~fault_ab:spec ~fault_ba:spec
        ~rng ~queues_per_nic:2 ()
    else Topology.point_to_point sim ~spec:link ~queues_per_nic:2 ()
  in
  let server =
    Scenario.build_server sim ~nic:net.Topology.a.Topology.nic
      ~kind:Scenario.Tas_ll ~total_cores:4 ~app_cycles:echo_app_cycles
      ~split:(2, 2) ~timeline_ns:interval_ns ~tas_patch:inflate_fp ()
  in
  Rpc_echo.server server.Scenario.transport ~port:7 ~msg_size
    ~app_cycles:echo_app_cycles;
  let tas = Option.get server.Scenario.tas in
  let client = Scenario.client_transport sim net.Topology.b () in
  let dst_ip = Nic.ip net.Topology.a.Topology.nic in
  let stats = Rpc_echo.make_stats () in
  let group ~n ~start_at ~stop_at ~pipeline ~think_ns =
    if n > 0 then
      Rpc_echo.closed_loop_clients sim client ~n ~dst_ip ~dst_port:7 ~msg_size
        ~pipeline ~stagger_ns:50_000 ~start_at ~stop_at ~think_ns ~stats ()
  in
  group ~n:(sched.a_conns + conns_extra) ~start_at:1 ~stop_at:sched.groups_stop
    ~pipeline:2 ~think_ns:20_000;
  group ~n:sched.b_conns ~start_at:sched.b_start ~stop_at:sched.groups_stop
    ~pipeline:2 ~think_ns:20_000;
  group ~n:sched.flash_conns ~start_at:sched.flash_start
    ~stop_at:sched.flash_stop ~pipeline:4 ~think_ns:0;
  Sim.run ~until:sched.t_end sim;
  let tl = Option.get (Tas.timeline tas) in
  {
    frames = Timeline.frames tl;
    tl_json = Timeline.to_json tl;
    completed = Tas_engine.Stats.Counter.value stats.Rpc_echo.completed;
  }

(* --- Frame-series helpers -------------------------------------------------- *)

let fp_util (f : Timeline.frame) =
  List.fold_left
    (fun acc c ->
      if c.Timeline.c_role = "fp" then acc +. c.Timeline.c_util else acc)
    0.0 f.Timeline.cores

let gauge_value (f : Timeline.frame) name =
  List.fold_left
    (fun acc (n, _, v) -> if n = name then acc +. v else acc)
    0.0 f.Timeline.gauges

let mean_util frames ~from_ts ~to_ts =
  let window =
    List.filter
      (fun (f : Timeline.frame) -> f.Timeline.ts > from_ts && f.Timeline.ts <= to_ts)
      frames
  in
  match window with
  | [] -> 0.0
  | _ ->
    List.fold_left (fun acc f -> acc +. fp_util f) 0.0 window
    /. float_of_int (List.length window)

let frames_json frames =
  J.to_string (J.List (List.map Timeline.frame_to_json frames))

(* --- The experiment -------------------------------------------------------- *)

let run ?(quick = false) fmt =
  let sched = if quick then quick_schedule else full_schedule in
  let interval_ns = Run_opts.timeline_interval_ns ~default:1_000_000 in
  Report.section fmt
    "Timeline: flight recorder determinism, load tracking, health watchdog";
  Report.note fmt
    (Printf.sprintf
       "ramp %d conns; +%d at %dms; flash crowd %d conns %d-%dms; trough to \
        %dms; %dus frames"
       sched.a_conns sched.b_conns (sched.b_start / 1_000_000)
       sched.flash_conns
       (sched.flash_start / 1_000_000)
       (sched.flash_stop / 1_000_000)
       (sched.t_end / 1_000_000) (interval_ns / 1000));
  (* Baseline twice with the same seed: byte-identical timelines. *)
  let base = run_one ~interval_ns ~seed:42 ~chaos:false sched in
  let base2 = run_one ~interval_ns ~seed:42 ~chaos:false sched in
  let base_bytes = J.to_string base.tl_json in
  let same_seed_ok = String.equal base_bytes (J.to_string base2.tl_json) in
  (* Chaos variant: seeded bursty loss + a blackout under the flash crowd. *)
  let chaos = run_one ~interval_ns ~seed:42 ~chaos:true sched in
  (* Serial vs parallel member batch, merged in submission order. *)
  let member i =
    (run_one ~interval_ns ~seed:(100 + i) ~chaos:false ~conns_extra:(2 * i)
       quick_schedule)
      .frames
  in
  let idx = Array.init 3 (fun i -> i) in
  let serial_members = Array.map member idx in
  let jobs = max 2 (Run_opts.jobs ()) in
  let par_members =
    Tas_parallel.Domain_pool.with_pool ~jobs (fun pool ->
        Tas_parallel.Domain_pool.map pool ~f:member idx)
  in
  let serial_merged = Timeline.merge (Array.to_list serial_members) in
  let par_merged = Timeline.merge (Array.to_list par_members) in
  let parallel_ok =
    String.equal (frames_json serial_merged) (frames_json par_merged)
  in
  (* Watchdog: silent on baseline, retransmit storm detected under chaos. *)
  let base_health = Health.check base.frames in
  let chaos_health = Health.check chaos.frames in
  let storm_frames =
    match List.assoc_opt Health.Rexmit_storm chaos_health.Health.by_rule with
    | Some n -> n
    | None -> 0
  in
  (* Utilization tracks the load shape: flash-crowd window vs early ramp. *)
  let ramp_util =
    mean_util base.frames ~from_ts:(ms 5) ~to_ts:(min (ms 35) sched.b_start)
  in
  let flash_util =
    mean_util base.frames ~from_ts:(sched.flash_start + ms 5)
      ~to_ts:sched.flash_stop
  in
  let util_tracks = flash_util > ramp_util *. 1.5 in
  (* Per-frame series (downsampled for the BENCH body; the full frames live
     in TIMELINE_tl.json). *)
  let every n l = List.filteri (fun i _ -> i mod n = 0) l in
  Report.series fmt ~name:"fp util (sum of 2 cores) vs t_ms"
    (List.map
       (fun (f : Timeline.frame) ->
         (Printf.sprintf "%d" (f.Timeline.ts / 1_000_000), fp_util f))
       (every 10 base.frames));
  Report.series fmt ~name:"live flows vs t_ms"
    (List.map
       (fun (f : Timeline.frame) ->
         ( Printf.sprintf "%d" (f.Timeline.ts / 1_000_000),
           gauge_value f "fp_flows" ))
       (every 10 base.frames));
  Report.kv fmt "frames captured (baseline)"
    (string_of_int (List.length base.frames));
  Report.kv fmt "rpcs completed (baseline)" (string_of_int base.completed);
  Report.kv fmt "same-seed timeline byte-identical"
    (if same_seed_ok then "yes" else "NO");
  Report.kv fmt
    (Printf.sprintf "serial vs -j%d merged timeline byte-identical" jobs)
    (if parallel_ok then "yes" else "NO");
  Report.kv fmt "baseline watchdog"
    (Printf.sprintf "%s (%d violations in %d frames)"
       (if base_health.Health.passed then "PASS" else "FAIL")
       (List.length base_health.Health.violations)
       base_health.Health.frames);
  Report.kv fmt "chaos watchdog rexmit-storm frames"
    (string_of_int storm_frames);
  Report.kv fmt "chaos watchdog rules fired"
    (String.concat ", "
       (List.map
          (fun (r, n) -> Printf.sprintf "%s:%d" (Health.rule_name r) n)
          chaos_health.Health.by_rule));
  Report.kv fmt "fp util ramp vs flash"
    (Printf.sprintf "%.2f -> %.2f (%s)" ramp_util flash_util
       (if util_tracks then "tracks load" else "FLAT"));
  Report.attach "timeline"
    (J.Obj
       [
         ("interval_ns", J.Int interval_ns);
         ("frames", J.Int (List.length base.frames));
         ("same_seed_identical", J.Bool same_seed_ok);
         ("parallel_identical", J.Bool parallel_ok);
         ("parallel_jobs", J.Int jobs);
         ( "baseline_violations",
           J.Int (List.length base_health.Health.violations) );
         ("chaos_rexmit_storm_frames", J.Int storm_frames);
         ("chaos_health", Health.report_to_json chaos_health);
         ("ramp_util", J.Float ramp_util);
         ("flash_util", J.Float flash_util);
         ("util_tracks_load", J.Bool util_tracks);
       ]);
  Report.add_timeline ~name:"baseline" base.tl_json;
  Report.add_timeline ~name:"chaos" chaos.tl_json
