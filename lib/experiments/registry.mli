(** Experiment registry: every paper table and figure, addressable by id. *)

type entry = {
  id : string;  (** e.g. "f4", "t1" *)
  title : string;
  run : ?quick:bool -> Format.formatter -> unit;
}

val all : entry list
val find : string -> entry option

val run_entry : ?quick:bool -> entry -> Format.formatter -> float
(** Run one experiment with a structured artifact capture around it, write
    [BENCH_<id>.json] (into [$TAS_BENCH_DIR], default the current
    directory), and return the elapsed wall-clock seconds. *)

val run_selection :
  ?quick:bool -> ?jobs:int -> entry list -> Format.formatter -> unit
(** Run a list of experiments, one [BENCH_<id>.json] each. With [jobs > 1]
    the experiments run in parallel on a domain pool; outputs and artifacts
    are merged in submission order, so everything except each artifact's
    trailing ["timing"] object is byte-identical to a serial run. Each
    artifact's ["timing"] records the job's own wall-clock ([elapsed_s]) and
    the batch's [run_wall_s], [serial_estimate_s] (sum of per-job
    wall-clocks) and [speedup]. Default [jobs = 1] (serial). *)

val run_all : ?quick:bool -> ?jobs:int -> Format.formatter -> unit
(** {!run_selection} over {!all}. *)
