(** Experiment registry: every paper table and figure, addressable by id. *)

type entry = {
  id : string;  (** e.g. "f4", "t1" *)
  title : string;
  run : ?quick:bool -> Format.formatter -> unit;
}

val all : entry list
val find : string -> entry option

val run_entry : ?quick:bool -> entry -> Format.formatter -> float
(** Run one experiment with a structured artifact capture around it, write
    [BENCH_<id>.json] (into [$TAS_BENCH_DIR], default the current
    directory), and return the elapsed wall-clock seconds. *)

val run_all : ?quick:bool -> Format.formatter -> unit
(** {!run_entry} over {!all}: one [BENCH_<id>.json] per experiment. *)
