(* A fully-instrumented diagnostic scenario: TAS on BOTH ends of a star
   topology (one client host, one switch, one server host), with a single
   span collector wired into every hop a packet crosses —

     libTAS send -> fast-path TX -> NIC TX -> uplink queue/out
       -> switch forward -> downlink queue/out -> NIC RX
       -> fast-path RX -> context notify -> libTAS deliver

   so one sampled request produces a causal span covering the entire
   end-to-end path. This is what `tas_run trace` / `tas_run flows` /
   `tas_run top` and the "tr" experiment run. *)

module Sim = Tas_engine.Sim
module Time_ns = Tas_engine.Time_ns
module Core = Tas_cpu.Core
module Nic = Tas_netsim.Nic
module Port = Tas_netsim.Port
module Switch = Tas_netsim.Switch
module Topology = Tas_netsim.Topology
module Config = Tas_core.Config
module Tas = Tas_core.Tas
module Libtas = Tas_core.Libtas
module Transport = Tas_apps.Transport
module Rpc_echo = Tas_apps.Rpc_echo
module Span = Tas_telemetry.Span

type t = {
  sim : Sim.t;
  span : Span.t;
  net : Topology.star;
  server : Tas.t;
  client : Tas.t;
  stats : Rpc_echo.stats;
}

let wire_endpoint span (ep : Topology.endpoint) =
  Nic.set_span ep.Topology.nic ~origin:true span;
  Port.set_span ep.Topology.uplink span;
  Port.set_span ep.Topology.downlink span

let client_tas sim ~nic ~span ~trace ~timeline_ns =
  let config =
    {
      Config.default with
      Config.max_fast_path_cores = 2;
      rx_buf_size = 16384;
      tx_buf_size = 16384;
      trace_enabled = trace;
      timeline_interval_ns = timeline_ns;
    }
  in
  let tas = Tas.create sim ~nic ~config ~span () in
  let app_cores = Array.init 2 (fun i -> Core.create sim ~id:(200 + i) ()) in
  let lt = Tas.app tas ~app_cores ~api:Libtas.Sockets in
  let transport =
    Transport.of_libtas lt ~ctx_of_conn:(fun i -> i mod Array.length app_cores)
  in
  (tas, transport)

let build ?(sample_every = 16) ?(capacity = 65536) ?(n_conns = 8)
    ?(msg_size = 64) ?(pipeline = 4) ?(trace = false) ?(timeline_ns = 0) () =
  let sim = Sim.create () in
  let net = Topology.star sim ~n_clients:1 ~queues_per_nic:8 () in
  let span = Span.create ~enabled:true ~sample_every ~capacity () in
  wire_endpoint span net.Topology.server;
  Array.iter (wire_endpoint span) net.Topology.clients;
  Switch.set_span net.Topology.switch span;
  let server =
    Scenario.build_server sim ~nic:net.Topology.server.Topology.nic
      ~kind:Scenario.Tas_so ~total_cores:4 ~span ~timeline_ns
      ~tas_patch:(fun c -> { c with Config.trace_enabled = trace })
      ()
  in
  Rpc_echo.server server.Scenario.transport ~port:7 ~msg_size ~app_cycles:680;
  let server_tas =
    match server.Scenario.tas with
    | Some tas -> tas
    | None -> assert false (* Tas_so servers always carry a TAS instance *)
  in
  let client_tas, client_transport =
    client_tas sim ~nic:net.Topology.clients.(0).Topology.nic ~span ~trace
      ~timeline_ns
  in
  let stats = Rpc_echo.make_stats () in
  Rpc_echo.closed_loop_clients sim client_transport ~n:n_conns
    ~dst_ip:(Nic.ip net.Topology.server.Topology.nic)
    ~dst_port:7 ~msg_size ~pipeline ~stagger_ns:5_000 ~stats ();
  { sim; span; net; server = server_tas; client = client_tas; stats }

let run t ~duration_ns = Sim.run ~until:duration_ns t.sim

let run_with_tick t ~duration_ns ~every_ns f =
  ignore (Sim.periodic t.sim every_ns (fun () -> f ()));
  Sim.run ~until:duration_ns t.sim

(* --- Cross-domain batch statistics ------------------------------------- *)

module Metrics = Tas_telemetry.Metrics
module Trace = Tas_telemetry.Trace

type batch_stats = {
  runs : int;
  jobs : int;
  completed : int;
  metrics : Metrics.sample list;
  trace_events : int;
  trace_counts : (Trace.kind * int) list;
}

(* One batch member: an independent diagnostics simulation (workload size
   varies with the run index so members are distinguishable) returning its
   host-merged telemetry. Runs on any pool domain — each domain builds its
   own sim, registries and trace rings. *)
let batch_member ~duration_ns i =
  let d = build ~n_conns:(4 + (2 * i)) ~trace:true () in
  run d ~duration_ns;
  let samples =
    Metrics.merge
      [ Metrics.snapshot (Tas.metrics d.server);
        Metrics.snapshot (Tas.metrics d.client) ]
  in
  let events =
    Trace.merge
      [ Trace.drain (Tas.trace d.server); Trace.drain (Tas.trace d.client) ]
  in
  let completed = Tas_engine.Stats.Counter.value d.stats.Rpc_echo.completed in
  (samples, events, completed)

let batch_stats ?(runs = 4) ~duration_ns () =
  let jobs = max 1 (min (Run_opts.jobs ()) runs) in
  let results =
    let idx = Array.init runs (fun i -> i) in
    if jobs <= 1 then Array.map (batch_member ~duration_ns) idx
    else
      Tas_parallel.Domain_pool.with_pool ~jobs (fun pool ->
          Tas_parallel.Domain_pool.map pool ~f:(batch_member ~duration_ns)
            idx)
  in
  (* Submission-order merge: [Metrics.merge] output is sorted by
     (name, labels) and [Trace.merge] is a stable sort by timestamp, so the
     aggregate is byte-identical for any [jobs]. *)
  let metrics =
    Metrics.merge (Array.to_list (Array.map (fun (m, _, _) -> m) results))
  in
  let events =
    Trace.merge (Array.to_list (Array.map (fun (_, e, _) -> e) results))
  in
  {
    runs;
    jobs;
    completed = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 results;
    metrics;
    trace_events = List.length events;
    trace_counts = Trace.counts_by_kind events;
  }
