type entry = {
  id : string;
  title : string;
  run : ?quick:bool -> Format.formatter -> unit;
}

let all =
  [
    { id = "t1"; title = "Table 1: cycles/request by module";
      run = Exp_cycles.table1 };
    { id = "t2"; title = "Table 2: per-request app/stack overheads";
      run = Exp_cycles.table2 };
    { id = "t4"; title = "Table 4: Linux/TAS peer compatibility";
      run = Exp_compat.run };
    { id = "f4"; title = "Figure 4: connection scalability";
      run = Exp_conn_scaling.run };
    { id = "f5"; title = "Figure 5: short-lived connections";
      run = Exp_short_lived.run };
    { id = "f6"; title = "Figure 6: pipelined RPC throughput";
      run = Exp_pipelined.run };
    { id = "f7"; title = "Figure 7: packet loss penalty";
      run = Exp_loss.run };
    { id = "f8"; title = "Figure 8: KV-store throughput scalability";
      run = Exp_kv.fig8 };
    { id = "t6"; title = "Table 6: TAS core split";
      run = (fun ?quick fmt -> ignore quick; Exp_kv.table6 fmt) };
    { id = "f9"; title = "Figure 9 / Table 5: KV-store latency";
      run = Exp_kv.fig9_table5 };
    { id = "t7"; title = "Table 7: non-scalable KV workload";
      run = Exp_kv.table7 };
    { id = "f10"; title = "Figure 10 / Table 8: FlexStorm";
      run = Exp_flexstorm.run };
    { id = "f11"; title = "Figure 11: single-link congestion control";
      run = Exp_cc.fig11 };
    { id = "f12"; title = "Figure 12: cluster flow completion times";
      run = Exp_cc.fig12 };
    { id = "f13"; title = "Figure 13: incast fairness";
      run = Exp_incast.run };
    { id = "f14"; title = "Figure 14: workload proportionality";
      run = Exp_proportional.fig14 };
    { id = "f15"; title = "Figure 15: latency across core transition";
      run = Exp_proportional.fig15 };
    { id = "x1"; title = "Ablation: slow-path CC algorithms (TIMELY etc.)";
      run = Exp_ablation.x1_cc_algorithms };
    { id = "x2"; title = "Ablation: rate vs window enforcement under incast";
      run = Exp_ablation.x2_rate_vs_window };
    { id = "x3"; title = "Ablation: sockets emulation vs low-level API cost";
      run = Exp_ablation.x3_api_cost };
    { id = "x4"; title = "Ablation: NIC-offload projection of the fast path";
      run = Exp_ablation.x4_nic_offload };
    { id = "ch"; title = "Chaos: KV workload under seeded fault schedules";
      run = Exp_chaos.run };
    { id = "tm"; title = "Telemetry: metrics registry + cycle breakdown + trace";
      run = Exp_telemetry.run };
    { id = "sp"; title = "Span tracing: per-hop latency decomposition";
      run = Exp_span.run };
  ]

let find id = List.find_opt (fun e -> String.lowercase_ascii id = e.id) all

module J = Tas_telemetry.Json

let bench_dir = Run_opts.bench_dir

let write_artifact e ~quick ~elapsed body =
  let j =
    J.Obj
      [
        ("experiment", J.Str e.id);
        ("title", J.Str e.title);
        ("quick", J.Bool quick);
        ("elapsed_s", J.Float elapsed);
        ("output", body);
      ]
  in
  let path =
    Filename.concat (bench_dir ()) (Printf.sprintf "BENCH_%s.json" e.id)
  in
  let oc = open_out path in
  output_string oc (J.to_string ~pretty:true j);
  output_char oc '\n';
  close_out oc;
  path

let run_entry ?quick e fmt =
  Report.Artifact.start ();
  let t0 = Unix.gettimeofday () in
  e.run ?quick fmt;
  let elapsed = Unix.gettimeofday () -. t0 in
  let body = Report.Artifact.finish () in
  (try
     let path = write_artifact e ~quick:(quick = Some true) ~elapsed body in
     Format.fprintf fmt "  # artifact: %s@." path
   with Sys_error msg ->
     Format.fprintf fmt "  # BENCH_%s.json not written: %s@." e.id msg);
  elapsed

let run_all ?quick fmt =
  List.iter
    (fun e ->
      let elapsed = run_entry ?quick e fmt in
      Format.fprintf fmt "  (%.1fs)@." elapsed)
    all
