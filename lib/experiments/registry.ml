type entry = {
  id : string;
  title : string;
  run : ?quick:bool -> Format.formatter -> unit;
}

let all =
  [
    { id = "t1"; title = "Table 1: cycles/request by module";
      run = Exp_cycles.table1 };
    { id = "t2"; title = "Table 2: per-request app/stack overheads";
      run = Exp_cycles.table2 };
    { id = "t4"; title = "Table 4: Linux/TAS peer compatibility";
      run = Exp_compat.run };
    { id = "f4"; title = "Figure 4: connection scalability";
      run = Exp_conn_scaling.run };
    { id = "f5"; title = "Figure 5: short-lived connections";
      run = Exp_short_lived.run };
    { id = "f6"; title = "Figure 6: pipelined RPC throughput";
      run = Exp_pipelined.run };
    { id = "f7"; title = "Figure 7: packet loss penalty";
      run = Exp_loss.run };
    { id = "f8"; title = "Figure 8: KV-store throughput scalability";
      run = Exp_kv.fig8 };
    { id = "t6"; title = "Table 6: TAS core split";
      run = (fun ?quick fmt -> ignore quick; Exp_kv.table6 fmt) };
    { id = "f9"; title = "Figure 9 / Table 5: KV-store latency";
      run = Exp_kv.fig9_table5 };
    { id = "t7"; title = "Table 7: non-scalable KV workload";
      run = Exp_kv.table7 };
    { id = "f10"; title = "Figure 10 / Table 8: FlexStorm";
      run = Exp_flexstorm.run };
    { id = "f11"; title = "Figure 11: single-link congestion control";
      run = Exp_cc.fig11 };
    { id = "f12"; title = "Figure 12: cluster flow completion times";
      run = Exp_cc.fig12 };
    { id = "f13"; title = "Figure 13: incast fairness";
      run = Exp_incast.run };
    { id = "f14"; title = "Figure 14: workload proportionality";
      run = Exp_proportional.fig14 };
    { id = "f15"; title = "Figure 15: latency across core transition";
      run = Exp_proportional.fig15 };
    { id = "x1"; title = "Ablation: slow-path CC algorithms (TIMELY etc.)";
      run = Exp_ablation.x1_cc_algorithms };
    { id = "x2"; title = "Ablation: rate vs window enforcement under incast";
      run = Exp_ablation.x2_rate_vs_window };
    { id = "x3"; title = "Ablation: sockets emulation vs low-level API cost";
      run = Exp_ablation.x3_api_cost };
    { id = "x4"; title = "Ablation: NIC-offload projection of the fast path";
      run = Exp_ablation.x4_nic_offload };
    { id = "ch"; title = "Chaos: KV workload under seeded fault schedules";
      run = (fun ?quick fmt -> Exp_chaos.run ?quick fmt) };
    { id = "tm"; title = "Telemetry: metrics registry + cycle breakdown + trace";
      run = Exp_telemetry.run };
    { id = "sp"; title = "Span tracing: per-hop latency decomposition";
      run = Exp_span.run };
    { id = "sh"; title = "Sharding: fast-path core scaling with per-queue shards";
      run = Exp_sharding.run };
    { id = "ar"; title = "Arena differential: off-heap flow arena vs boxed records";
      run = (fun ?quick fmt -> Exp_arena.run ?quick fmt) };
    { id = "tl"; title = "Timeline: flight recorder under ramp + flash crowd + chaos";
      run = Exp_timeline.run };
    { id = "el"; title = "Elastic controller: diurnal autoscaling across policies";
      run = Exp_elastic.run };
    { id = "wan"; title = "WAN: recovery policies, tail loss, split-TCP PEP";
      run = Exp_wan.run };
  ]

let find id = List.find_opt (fun e -> String.lowercase_ascii id = e.id) all

module J = Tas_telemetry.Json

let bench_dir = Run_opts.bench_dir

(* Everything before "timing" is covered by the determinism contract:
   byte-identical across serial and parallel runs of the same build. The
   trailing "timing" object isolates the only nondeterministic data
   (wall-clock measurements), so consumers can diff artifacts by cutting
   at the "timing" key. *)
let write_artifact e ~quick ~timing body =
  let j =
    J.Obj
      [
        ("experiment", J.Str e.id);
        ("title", J.Str e.title);
        ("quick", J.Bool quick);
        ("output", body);
        ("timing", timing);
      ]
  in
  let path =
    Filename.concat (bench_dir ()) (Printf.sprintf "BENCH_%s.json" e.id)
  in
  let oc = open_out path in
  output_string oc (J.to_string ~pretty:true j);
  output_char oc '\n';
  close_out oc;
  path

(* Timelines get their own artifact next to BENCH_<id>.json: frames are
   bulky and fully deterministic, so keeping them out of the BENCH body
   leaves the cut-at-"timing" diff contract untouched. *)
let write_timelines e timelines =
  let j =
    J.Obj
      [
        ("experiment", J.Str e.id);
        ( "timelines",
          J.List
            (List.map
               (fun (name, tl) ->
                 J.Obj [ ("name", J.Str name); ("timeline", tl) ])
               timelines) );
      ]
  in
  let path =
    Filename.concat (bench_dir ()) (Printf.sprintf "TIMELINE_%s.json" e.id)
  in
  let oc = open_out path in
  output_string oc (J.to_string ~pretty:true j);
  output_char oc '\n';
  close_out oc;
  path

(* Run one experiment with its text output buffered and its artifact
   captured. Self-contained (no shared mutable state beyond the
   domain-local artifact), so it can run on any pool domain. *)
let run_captured ?quick e =
  let buf = Buffer.create 4096 in
  let bfmt = Format.formatter_of_buffer buf in
  Report.Artifact.start ();
  ignore (Report.Artifact.take_timelines ());
  let t0 = Unix.gettimeofday () in
  e.run ?quick bfmt;
  let elapsed = Unix.gettimeofday () -. t0 in
  Format.pp_print_flush bfmt ();
  let body = Report.Artifact.finish () in
  let timelines = Report.Artifact.take_timelines () in
  (Buffer.contents buf, body, timelines, elapsed)

let timing_json ~elapsed ~jobs ~run_wall ~serial_estimate =
  let speedup = if run_wall > 0.0 then serial_estimate /. run_wall else 1.0 in
  J.Obj
    [
      ("elapsed_s", J.Float elapsed);
      ("jobs", J.Int jobs);
      ("run_wall_s", J.Float run_wall);
      ("serial_estimate_s", J.Float serial_estimate);
      ("speedup", J.Float speedup);
    ]

let emit_result ?quick fmt e ~timing (text, body, timelines, _elapsed) =
  Format.fprintf fmt "%s" text;
  (try
     let path = write_artifact e ~quick:(quick = Some true) ~timing body in
     Format.fprintf fmt "  # artifact: %s@." path
   with Sys_error msg ->
     Format.fprintf fmt "  # BENCH_%s.json not written: %s@." e.id msg);
  if timelines <> [] then
    try
      let path = write_timelines e timelines in
      Format.fprintf fmt "  # timeline: %s@." path
    with Sys_error msg ->
      Format.fprintf fmt "  # TIMELINE_%s.json not written: %s@." e.id msg

let run_entry ?quick e fmt =
  let ((_, _, _, elapsed) as r) = run_captured ?quick e in
  let timing =
    timing_json ~elapsed ~jobs:1 ~run_wall:elapsed ~serial_estimate:elapsed
  in
  emit_result ?quick fmt e ~timing r;
  elapsed

let run_selection ?quick ?(jobs = 1) entries fmt =
  let entries_arr = Array.of_list entries in
  let t0 = Unix.gettimeofday () in
  let results =
    if jobs <= 1 then Array.map (fun e -> run_captured ?quick e) entries_arr
    else
      Tas_parallel.Domain_pool.with_pool ~jobs (fun pool ->
          Tas_parallel.Domain_pool.map pool
            ~f:(fun e -> run_captured ?quick e)
            entries_arr)
  in
  let run_wall = Unix.gettimeofday () -. t0 in
  let serial_estimate =
    Array.fold_left (fun acc (_, _, _, e) -> acc +. e) 0.0 results
  in
  (* Deterministic merge: emit in submission order regardless of which
     domain finished first. *)
  Array.iteri
    (fun i e ->
      let ((_, _, _, elapsed) as r) = results.(i) in
      let timing = timing_json ~elapsed ~jobs ~run_wall ~serial_estimate in
      emit_result ?quick fmt e ~timing r;
      Format.fprintf fmt "  (%.1fs)@." elapsed)
    entries_arr;
  if Array.length entries_arr > 1 then
    Format.fprintf fmt "Ran %d experiments in %.1fs (jobs=%d, serial estimate %.1fs, speedup %.2fx)@."
      (Array.length entries_arr) run_wall jobs serial_estimate
      (if run_wall > 0.0 then serial_estimate /. run_wall else 1.0)

let run_all ?quick ?jobs fmt = run_selection ?quick ?jobs all fmt
