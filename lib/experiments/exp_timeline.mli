(** "tl": timeline flight-recorder validation — a ramp + flash-crowd +
    trough RPC schedule recorded at 1 ms frames, checking same-seed
    byte-identity, serial-vs-parallel merge identity, health-watchdog
    silence on the clean baseline and retransmit-storm detection under
    injected loss + a link blackout, and that per-core utilization tracks
    the load shape. *)

val run : ?quick:bool -> Format.formatter -> unit
