(* "sh": core scaling of the sharded fast path — a Figure-4-shaped sweep
   over the number of active fast-path cores at fixed offered load.

   The workload is a saturating closed-loop pipelined RPC echo from an
   ideal (cost-free) client host, so the server's fast path is the only
   bottleneck; per-packet fast-path costs are inflated (x4 over the
   calibrated Table-1 profile) so neither the app cores nor the link hide
   it. Each point runs a fresh simulation with the RSS redirection table
   rewritten to c active queues before any connection is installed, and
   reports throughput plus per-shard occupancy and spinlock-model cycles.

   Two drills ride along:
   - scale-down migration: rewrite a populated table from N queues to 1
     and check every flow survives exactly once (drain-in-place, §3.4);
   - sharded vs single-table equivalence: the same workload with
     [Config.flow_shards_enabled] on and off must produce byte-identical
     operational counters and flow dumps (the lock model is accounting
     only — it never perturbs the simulated timeline). *)

module Sim = Tas_engine.Sim
module Time_ns = Tas_engine.Time_ns
module Stats = Tas_engine.Stats
module Topology = Tas_netsim.Topology
module Config = Tas_core.Config
module Tas = Tas_core.Tas
module Fast_path = Tas_core.Fast_path
module Flow_table = Tas_core.Flow_table
module Rpc_echo = Tas_apps.Rpc_echo
module J = Tas_telemetry.Json

let msg_size = 64
let echo_app_cycles = 300

(* Inflate the fast path's per-packet costs so it saturates well below the
   app cores, the ideal clients and the 10G link: the sweep then measures
   fast-path core capacity, nothing else. *)
let inflate_fp c =
  {
    c with
    Config.fp_driver_cycles = 4 * c.Config.fp_driver_cycles;
    fp_rx_cycles = 4 * c.Config.fp_rx_cycles;
    fp_tx_cycles = 4 * c.Config.fp_tx_cycles;
    fp_ack_rx_cycles = 4 * c.Config.fp_ack_rx_cycles;
  }

type point = {
  cores : int;
  mops : float;
  shard_flows : int array;  (** occupancy of the active shards *)
  imbalance : float;  (** max/mean occupancy over active shards *)
  lock_cycles : int;
  remote_lock_cycles : int;
  migrated : int;
}

(* One sweep point: [cores] active fast-path queues under the fixed load.
   The table is rewritten while still empty, so any migrations seen here
   would be a bug (asserted in the artifact, not silently dropped). *)
let run_point ~quick ~max_cores ~conns ~sharded cores =
  let sim = Sim.create () in
  let net = Topology.star sim ~n_clients:1 ~queues_per_nic:max_cores () in
  let server =
    Scenario.build_server sim ~nic:net.Topology.server.Topology.nic
      ~kind:Scenario.Tas_ll ~total_cores:(4 + max_cores)
      ~app_cycles:echo_app_cycles ~split:(4, max_cores)
      ~tas_patch:(fun c ->
        { (inflate_fp c) with Config.flow_shards_enabled = sharded })
      ()
  in
  let tas = Option.get server.Scenario.tas in
  Fast_path.set_active_cores (Tas.fast_path tas) cores;
  Rpc_echo.server server.Scenario.transport ~port:7 ~msg_size
    ~app_cycles:echo_app_cycles;
  let stats = Rpc_echo.make_stats () in
  let transport =
    Scenario.client_transport sim net.Topology.clients.(0) ()
  in
  Rpc_echo.closed_loop_clients sim transport ~n:conns
    ~dst_ip:server.Scenario.ip ~dst_port:7 ~msg_size ~pipeline:16
    ~stagger_ns:2_000 ~stats ();
  let warmup, measure =
    if quick then (Time_ns.ms 5, Time_ns.ms 10)
    else (Time_ns.ms 10, Time_ns.ms 20)
  in
  let rate =
    Scenario.measure_rate sim ~warmup ~measure (fun () ->
        Stats.Counter.value stats.Rpc_echo.completed)
  in
  let ft = Fast_path.flows (Tas.fast_path tas) in
  let shard_flows =
    Array.init
      (min cores (Flow_table.num_shards ft))
      (Flow_table.shard_count ft)
  in
  let mean =
    float_of_int (Array.fold_left ( + ) 0 shard_flows)
    /. float_of_int (max 1 (Array.length shard_flows))
  in
  let imbalance =
    if mean > 0.0 then
      float_of_int (Array.fold_left max 0 shard_flows) /. mean
    else 1.0
  in
  ( {
      cores;
      mops = rate /. 1e6;
      shard_flows;
      imbalance;
      lock_cycles = Flow_table.lock_cycles ft;
      remote_lock_cycles = Flow_table.remote_lock_cycles ft;
      migrated = Flow_table.migrated_flows ft;
    },
    tas )

(* Scale-down drill: populate the table at [max_cores] active queues, then
   rewrite to 1 and account for every flow. *)
let migration_drill ~quick ~max_cores ~conns =
  let p, tas = run_point ~quick ~max_cores ~conns ~sharded:true max_cores in
  let ft = Fast_path.flows (Tas.fast_path tas) in
  let before = Flow_table.count ft in
  let dump_before = J.to_string (Flow_table.dump ft) in
  Fast_path.set_active_cores (Tas.fast_path tas) 1;
  let after = Flow_table.count ft in
  let dump_after = J.to_string (Flow_table.dump ft) in
  let moved = Flow_table.migrated_flows ft - p.migrated in
  let landed = Flow_table.shard_count ft 0 in
  (before, after, moved, landed, dump_before = dump_after)

(* Equivalence drill: the non-timing operational counters and the flow dump
   must not depend on whether the table is sharded. *)
let digest_of (s : Tas.snapshot) ft =
  String.concat "|"
    [
      string_of_int s.Tas.flows;
      string_of_int s.Tas.conn_setups;
      string_of_int s.Tas.conn_teardowns;
      string_of_int s.Tas.timeout_retransmits;
      string_of_int s.Tas.rx_data_packets;
      string_of_int s.Tas.rx_ack_packets;
      string_of_int s.Tas.tx_data_packets;
      string_of_int s.Tas.acks_sent;
      string_of_int s.Tas.ooo_stored;
      string_of_int s.Tas.payload_drops;
      string_of_int s.Tas.fast_retransmits;
      string_of_int s.Tas.exceptions_forwarded;
      J.to_string (Flow_table.dump ft);
    ]

let equivalence_drill ~quick ~max_cores ~conns =
  let digest sharded =
    let _, tas = run_point ~quick ~max_cores ~conns ~sharded max_cores in
    digest_of (Tas.snapshot tas) (Fast_path.flows (Tas.fast_path tas))
  in
  digest true = digest false

let point_json p =
  J.Obj
    [
      ("cores", J.Int p.cores);
      ("mops", J.Float p.mops);
      ( "shard_flows",
        J.List (Array.to_list (Array.map (fun n -> J.Int n) p.shard_flows)) );
      ("imbalance", J.Float p.imbalance);
      ("lock_cycles", J.Int p.lock_cycles);
      ("remote_lock_cycles", J.Int p.remote_lock_cycles);
      ("migrated_flows", J.Int p.migrated);
    ]

let run ?(quick = false) fmt =
  Report.section fmt
    "Sharding: fast-path core scaling with per-queue flow shards";
  Report.note fmt
    "fixed saturating load; throughput should rise with each added \
     fast-path core (paper Fig. 4 flavor); lock cycles stay slow-path-only";
  let max_cores = if quick then 4 else 6 in
  let conns = if quick then 64 else 96 in
  let core_counts = List.init max_cores (fun i -> i + 1) in
  let points =
    List.map
      (fun c -> fst (run_point ~quick ~max_cores ~conns ~sharded:true c))
      core_counts
  in
  Report.series fmt ~name:"throughput [mOps] vs active cores"
    (List.map (fun p -> (string_of_int p.cores, p.mops)) points);
  Report.table fmt
    ~header:
      [ "cores"; "mOps"; "flows/shard"; "imbalance"; "lock cyc"; "remote cyc" ]
    ~rows:
      (List.map
         (fun p ->
           [
             string_of_int p.cores;
             Report.f2 p.mops;
             String.concat "/"
               (Array.to_list (Array.map string_of_int p.shard_flows));
             Report.f2 p.imbalance;
             string_of_int p.lock_cycles;
             string_of_int p.remote_lock_cycles;
           ])
         points);
  let monotonic =
    let rec chk = function
      | a :: (b :: _ as rest) -> a.mops < b.mops && chk rest
      | _ -> true
    in
    chk points
  in
  Report.kv fmt "throughput monotonic in active cores"
    (if monotonic then "yes" else "NO");
  let before, after, moved, landed, dump_eq =
    migration_drill ~quick ~max_cores ~conns
  in
  Report.kv fmt "scale-down migration (N->1 queues)"
    (Printf.sprintf
       "%d flows before, %d after, %d moved, %d on shard 0, dump %s" before
       after moved landed
       (if dump_eq then "identical" else "DIFFERS"));
  let equivalent = equivalence_drill ~quick ~max_cores ~conns in
  Report.kv fmt "sharded vs single-table counters + dump"
    (if equivalent then "identical" else "DIFFER");
  Report.attach "sharding"
    (J.Obj
       [
         ("max_cores", J.Int max_cores);
         ("conns", J.Int conns);
         ("points", J.List (List.map point_json points));
         ("monotonic", J.Bool monotonic);
         ( "migration",
           J.Obj
             [
               ("flows_before", J.Int before);
               ("flows_after", J.Int after);
               ("moved", J.Int moved);
               ("landed_on_shard0", J.Int landed);
               ("dump_identical", J.Bool dump_eq);
             ] );
         ("sharded_equals_single_table", J.Bool equivalent);
       ])
