let bench_dir_override = ref None
let set_bench_dir d = bench_dir_override := Some d

let bench_dir () =
  match !bench_dir_override with
  | Some d -> d
  | None -> (
    match Sys.getenv_opt "TAS_BENCH_DIR" with
    | Some d when d <> "" -> d
    | _ -> ".")

let trace_capacity_override = ref None
let set_trace_capacity n = trace_capacity_override := Some n
let trace_capacity ~default = Option.value !trace_capacity_override ~default

let jobs_setting = ref 1
let set_jobs n = jobs_setting := max 1 n
let jobs () = !jobs_setting

let timeline_interval_override = ref None
let set_timeline_interval_ns n = timeline_interval_override := Some n
let timeline_interval_ns ~default =
  Option.value !timeline_interval_override ~default
