(** Shared experiment scaffolding: build a server of a given stack kind on a
    host NIC, choose the TAS/mTCP core split, attach ideal clients, and
    measure steady-state throughput over a warmup + measurement window. *)

type kind = Tas_ll | Tas_so | Linux | Ix | Mtcp

val kind_name : kind -> string

type server = {
  transport : Tas_apps.Transport.t;
  ip : Tas_proto.Addr.ipv4;
  kind : kind;
  app_cores : Tas_cpu.Core.t array;
  stack_cores : Tas_cpu.Core.t array;  (** TAS fast-path / mTCP stack cores *)
  tas : Tas_core.Tas.t option;
  sm : Tas_baseline.Server_model.t option;
}

val core_split : kind -> total:int -> app_cycles:int -> int * int
(** [(app_cores, stack_cores)] for a given total budget: balances per-core
    application capacity against stack capacity from the cost profiles —
    reproducing the paper's Table 6 splits. Inline stacks get
    [(total, 0)]. *)

val build_server :
  Tas_engine.Sim.t ->
  nic:Tas_netsim.Nic.t ->
  kind:kind ->
  total_cores:int ->
  ?app_cycles:int ->
  ?buf_size:int ->
  ?tas_patch:(Tas_core.Config.t -> Tas_core.Config.t) ->
  ?split:int * int ->
  ?span:Tas_telemetry.Span.t ->
  ?timeline_ns:int ->
  unit ->
  server
(** [buf_size] sets both per-connection buffer sizes (default 16 KB; shrink
    for 100 K-connection runs). [app_cycles] (default 680) informs the core
    split. [span] attaches a latency-span collector to TAS-kind servers
    (ignored for baseline stacks). [timeline_ns] (default 0 = off) turns on
    the timeline flight recorder at that frame interval for TAS-kind
    servers. *)

val client_transport :
  Tas_engine.Sim.t -> Tas_netsim.Topology.endpoint -> ?buf_size:int -> unit ->
  Tas_apps.Transport.t
(** Ideal (cost-free) client host. *)

val measure_rate :
  Tas_engine.Sim.t ->
  warmup:Tas_engine.Time_ns.t ->
  measure:Tas_engine.Time_ns.t ->
  (unit -> int) ->
  float
(** Run warmup, snapshot the counter, run the measurement window, and return
    the rate in events/second. *)
