(** The "sp" experiment: span-traced RPC echo with per-hop latency
    decomposition (see {!Diagnostics}). *)

val run : ?quick:bool -> Format.formatter -> unit
