module J = Tas_telemetry.Json

(* Structured mirror of everything an experiment prints. While an artifact
   is open (Registry wraps each run), section/table/series/kv/note append a
   JSON item alongside the text output, so BENCH_<id>.json artifacts need no
   per-experiment changes. *)
module Artifact = struct
  type t = { mutable rev : J.t list }

  (* Domain-local: parallel experiment jobs (Registry with --jobs) each
     capture an independent artifact on their own domain. *)
  let key : t option ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref None)

  let current () = Domain.DLS.get key
  let start () = current () := Some { rev = [] }

  let add j =
    match !(current ()) with None -> () | Some a -> a.rev <- j :: a.rev

  let finish () =
    let c = current () in
    match !c with
    | None -> J.List []
    | Some a ->
      c := None;
      J.List (List.rev a.rev)

  let attach name j = add (J.Obj [ (name, j) ])

  (* Timelines are kept out of the BENCH body: they can be large and have
     their own artifact file (TIMELINE_<id>.json). Same domain-local
     discipline as the main artifact. *)
  let tl_key : (string * J.t) list ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref [])

  let add_timeline ~name j =
    let c = Domain.DLS.get tl_key in
    c := (name, j) :: !c

  let take_timelines () =
    let c = Domain.DLS.get tl_key in
    let tls = List.rev !c in
    c := [];
    tls
end

let attach = Artifact.attach
let add_timeline = Artifact.add_timeline

let section fmt title =
  Artifact.add (J.Obj [ ("section", J.Str title) ]);
  Format.fprintf fmt "@.=== %s ===@." title

let table fmt ~header ~rows =
  Artifact.add
    (J.Obj
       [
         ( "table",
           J.Obj
             [
               ("header", J.List (List.map (fun h -> J.Str h) header));
               ( "rows",
                 J.List
                   (List.map
                      (fun row -> J.List (List.map (fun c -> J.Str c) row))
                      rows) );
             ] );
       ]);
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let print_row row =
    Format.fprintf fmt "  ";
    List.iteri
      (fun i cell ->
        let w = List.nth widths i in
        Format.fprintf fmt "%-*s  " w cell)
      row;
    Format.fprintf fmt "@."
  in
  print_row header;
  Format.fprintf fmt "  %s@."
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter print_row rows

let series fmt ~name points =
  Artifact.add
    (J.Obj
       [
         ( "series",
           J.Obj
             [
               ("name", J.Str name);
               ( "points",
                 J.List
                   (List.map
                      (fun (x, y) ->
                        J.Obj [ ("x", J.Str x); ("y", J.Float y) ])
                      points) );
             ] );
       ]);
  Format.fprintf fmt "  %s:@." name;
  List.iter (fun (x, y) -> Format.fprintf fmt "    %-12s %.4g@." x y) points

let kv fmt k v =
  Artifact.add (J.Obj [ ("kv", J.Obj [ ("key", J.Str k); ("value", J.Str v) ]) ]);
  Format.fprintf fmt "  %s: %s@." k v

let note fmt s =
  Artifact.add (J.Obj [ ("note", J.Str s) ]);
  Format.fprintf fmt "  # %s@." s

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v
let mops v = Printf.sprintf "%.2f" (v /. 1e6)
let pct v = Printf.sprintf "%.1f%%" v
