(** A simulated TCP/IPv4/Ethernet packet.

    Packets travel through the network simulator as structured records (no
    per-hop reserialization — the simulator charges wire size for link
    transit). [to_wire]/[of_wire] produce and parse the real byte-level
    format, including the TCP pseudo-header checksum; they are exercised by
    the test suite and microbenchmarks to keep the structured form honest. *)

type t = {
  eth : Eth_header.t;
  ip : Ipv4_header.t;
  tcp : Tcp_header.t;
  payload : bytes;
  mutable span : int;
      (** span-trace id annotation, -1 when unsampled. Simulator metadata
          (the analogue of a driver mbuf field), not part of the wire
          format: [to_wire] ignores it and [of_wire] yields -1. *)
  mutable corrupt : bool;
      (** payload/checksum damage marker set by fault injection. The
          structured packet form carries no computed checksum, so the flag
          stands in for "the TCP checksum would not verify": NIC receive
          validation drops flagged packets, modelling hardware checksum
          offload. [make]/[of_wire] yield [false]. *)
  mutable refs : int;
      (** reference count for payload-buffer recycling; use {!retain} and
          {!release}. Stages that extend a packet's lifetime past its
          delivery (taps, fault duplication, slow-path reinjection) retain;
          the consuming fast path releases. [make]/[of_wire] yield 1. *)
  mutable pooled : bool;
      (** whether [payload] came from a {e buffer pool} and should be
          recycled when the last reference is released; set via
          {!mark_pooled}. [make]/[of_wire] yield [false]. *)
}

val make :
  src_mac:Addr.mac ->
  dst_mac:Addr.mac ->
  src_ip:Addr.ipv4 ->
  dst_ip:Addr.ipv4 ->
  ?ecn:Ipv4_header.ecn ->
  tcp:Tcp_header.t ->
  payload:bytes ->
  unit ->
  t
(** Builds a packet with a consistent IP total length. Default ECN codepoint
    is ECT(0), as DCTCP senders mark all data packets ECN-capable. *)

val wire_size : t -> int
(** Bytes on the wire including Ethernet header (no FCS/preamble). *)

val payload_len : t -> int

val well_formed : t -> bool
(** Structural consistency: the IP total length matches the actual header
    and payload sizes and the protocol is TCP. Header-corrupting faults
    break exactly this invariant; the fast path validates it and drops
    malformed packets before touching flow state. *)

val flow_hash : t -> int
(** Deterministic hash of the 4-tuple, symmetric per direction as computed by
    receive-side scaling: used by NIC RSS to pick a queue. *)

val four_tuple_at_receiver : t -> Addr.Four_tuple.t
(** The connection key as seen by the host receiving this packet. *)

val to_wire : t -> bytes
(** Serialize to wire format with correct IP and TCP checksums. *)

val of_wire : bytes -> t
(** Parse wire format. @raise Invalid_argument on corrupt input. *)

val tcp_checksum_ok : bytes -> bool
(** Validate the TCP checksum of a wire-format packet. *)

val mark_pooled : t -> unit
(** Mark the payload as pool-owned: the final {!release} will surface it for
    recycling. No-op for empty payloads. *)

val retain : t -> unit
(** Extend the packet's lifetime by one reference. Call when stashing a
    packet beyond the current delivery (tap rings, duplicate deliveries,
    reinjection queues). *)

val release : t -> bytes option
(** Drop one reference. Returns the payload exactly once — when the count
    hits zero and the payload is pool-owned — so the caller can return it to
    its buffer pool. Packets that are never released are simply reclaimed by
    the GC; the pool is an optimisation, not a requirement. *)

val pp : Format.formatter -> t -> unit
