type t = {
  eth : Eth_header.t;
  ip : Ipv4_header.t;
  tcp : Tcp_header.t;
  payload : bytes;
  mutable span : int;
  mutable corrupt : bool;
  mutable refs : int;
  mutable pooled : bool;
}

let make ~src_mac ~dst_mac ~src_ip ~dst_ip ?(ecn = Ipv4_header.Ect0) ~tcp
    ~payload () =
  let tcp_size = Tcp_header.size tcp in
  {
    eth =
      { Eth_header.src = src_mac; dst = dst_mac;
        ethertype = Eth_header.ethertype_ipv4 };
    ip =
      {
        Ipv4_header.src = src_ip;
        dst = dst_ip;
        protocol = Ipv4_header.protocol_tcp;
        ttl = 64;
        ecn;
        dscp = 0;
        ident = 0;
        total_length = Ipv4_header.size + tcp_size + Bytes.length payload;
      };
    tcp;
    payload;
    span = -1;
    corrupt = false;
    refs = 1;
    pooled = false;
  }

let wire_size t = Eth_header.size + t.ip.Ipv4_header.total_length
let payload_len t = Bytes.length t.payload

let well_formed t =
  t.ip.Ipv4_header.total_length
  = Ipv4_header.size + Tcp_header.size t.tcp + Bytes.length t.payload
  && t.ip.Ipv4_header.protocol = Ipv4_header.protocol_tcp

let four_tuple_at_receiver t =
  {
    Addr.Four_tuple.local_ip = t.ip.Ipv4_header.dst;
    local_port = t.tcp.Tcp_header.dst_port;
    peer_ip = t.ip.Ipv4_header.src;
    peer_port = t.tcp.Tcp_header.src_port;
  }

let flow_hash t = Addr.Four_tuple.sym_hash (four_tuple_at_receiver t)

let set16 buf off v =
  Bytes.set buf off (Char.chr ((v lsr 8) land 0xff));
  Bytes.set buf (off + 1) (Char.chr (v land 0xff))

(* Arithmetic sum of the six pseudo-header 16-bit words — equivalent to
   serializing the 12-byte pseudo header and summing it, without the
   scratch buffer (this runs twice per wire packet). *)
let pseudo_header_sum ip tcp_len =
  ((ip.Ipv4_header.src lsr 16) land 0xffff)
  + (ip.Ipv4_header.src land 0xffff)
  + ((ip.Ipv4_header.dst lsr 16) land 0xffff)
  + (ip.Ipv4_header.dst land 0xffff)
  + ip.Ipv4_header.protocol
  + tcp_len

let to_wire t =
  let total = wire_size t in
  let buf = Bytes.make total '\x00' in
  let off = Eth_header.write t.eth buf ~off:0 in
  let ip_off = off in
  let off = ip_off + Ipv4_header.write t.ip buf ~off:ip_off in
  let tcp_off = off in
  let tcp_size = Tcp_header.write t.tcp buf ~off:tcp_off in
  Bytes.blit t.payload 0 buf (tcp_off + tcp_size) (Bytes.length t.payload);
  let tcp_len = tcp_size + Bytes.length t.payload in
  let acc = pseudo_header_sum t.ip tcp_len in
  let acc = Checksum.ones_complement_sum ~acc buf ~off:tcp_off ~len:tcp_len in
  set16 buf (tcp_off + 16) (Checksum.finish acc);
  buf

let of_wire buf =
  let eth = Eth_header.read buf ~off:0 in
  let ip = Ipv4_header.read buf ~off:Eth_header.size in
  let tcp_off = Eth_header.size + Ipv4_header.size in
  let tcp, tcp_size = Tcp_header.read buf ~off:tcp_off in
  let payload_len =
    ip.Ipv4_header.total_length - Ipv4_header.size - tcp_size
  in
  if payload_len < 0 || tcp_off + tcp_size + payload_len > Bytes.length buf
  then invalid_arg "Packet.of_wire: inconsistent lengths";
  let payload = Bytes.sub buf (tcp_off + tcp_size) payload_len in
  { eth; ip; tcp; payload; span = -1; corrupt = false; refs = 1; pooled = false }

let tcp_checksum_ok buf =
  let ip = Ipv4_header.read buf ~off:Eth_header.size in
  let tcp_off = Eth_header.size + Ipv4_header.size in
  let tcp_len = ip.Ipv4_header.total_length - Ipv4_header.size in
  let acc = pseudo_header_sum ip tcp_len in
  let acc = Checksum.ones_complement_sum ~acc buf ~off:tcp_off ~len:tcp_len in
  Checksum.finish acc = 0

(* --- Payload-buffer ownership ------------------------------------------ *)

let mark_pooled t = if Bytes.length t.payload > 0 then t.pooled <- true

let retain t = t.refs <- t.refs + 1

let release t =
  t.refs <- t.refs - 1;
  if t.refs = 0 && t.pooled then begin
    (* Detach so a (buggy) second release can never recycle twice. *)
    t.pooled <- false;
    Some t.payload
  end
  else None

let pp fmt t =
  Format.fprintf fmt "%a | %a | %d bytes payload" Ipv4_header.pp t.ip
    Tcp_header.pp t.tcp (Bytes.length t.payload)
