type flags = {
  syn : bool;
  ack : bool;
  fin : bool;
  rst : bool;
  psh : bool;
  ece : bool;
  cwr : bool;
}

type options = {
  mss : int option;
  wscale : int option;
  timestamp : (int * int) option;
  sack : (Seq32.t * Seq32.t) list;
}

type t = {
  src_port : Addr.port;
  dst_port : Addr.port;
  seq : Seq32.t;
  ack : Seq32.t;
  flags : flags;
  window : int;
  options : options;
}

let no_flags =
  { syn = false; ack = false; fin = false; rst = false; psh = false;
    ece = false; cwr = false }

let no_options = { mss = None; wscale = None; timestamp = None; sack = [] }
let data_flags = { no_flags with ack = true; psh = true }
let ack_flags = { no_flags with ack = true }

let options_size opts =
  let n =
    (match opts.mss with Some _ -> 4 | None -> 0)
    + (match opts.wscale with Some _ -> 3 | None -> 0)
    + (match opts.timestamp with Some _ -> 10 | None -> 0)
    + (match opts.sack with [] -> 0 | bs -> 2 + (8 * List.length bs))
  in
  (* Pad to a 4-byte boundary with NOPs. *)
  (n + 3) / 4 * 4

let size t = 20 + options_size t.options

let set16 buf off v =
  Bytes.set buf off (Char.chr ((v lsr 8) land 0xff));
  Bytes.set buf (off + 1) (Char.chr (v land 0xff))

let get16 buf off =
  (Char.code (Bytes.get buf off) lsl 8) lor Char.code (Bytes.get buf (off + 1))

let set32 buf off v =
  set16 buf off ((v lsr 16) land 0xffff);
  set16 buf (off + 2) (v land 0xffff)

let get32 buf off = (get16 buf off lsl 16) lor get16 buf (off + 2)

let flags_to_bits f =
  (if f.fin then 1 else 0)
  lor (if f.syn then 2 else 0)
  lor (if f.rst then 4 else 0)
  lor (if f.psh then 8 else 0)
  lor (if f.ack then 16 else 0)
  lor (if f.ece then 64 else 0)
  lor if f.cwr then 128 else 0

let flags_of_bits b =
  {
    fin = b land 1 <> 0;
    syn = b land 2 <> 0;
    rst = b land 4 <> 0;
    psh = b land 8 <> 0;
    ack = b land 16 <> 0;
    ece = b land 64 <> 0;
    cwr = b land 128 <> 0;
  }

let write t buf ~off =
  let hdr_size = size t in
  set16 buf off t.src_port;
  set16 buf (off + 2) t.dst_port;
  set32 buf (off + 4) t.seq;
  set32 buf (off + 8) t.ack;
  Bytes.set buf (off + 12) (Char.chr ((hdr_size / 4) lsl 4));
  Bytes.set buf (off + 13) (Char.chr (flags_to_bits t.flags));
  set16 buf (off + 14) t.window;
  set16 buf (off + 16) 0 (* checksum: filled by Packet.to_wire *);
  set16 buf (off + 18) 0 (* urgent pointer unused *);
  let p = ref (off + 20) in
  (match t.options.mss with
  | Some mss ->
    Bytes.set buf !p '\x02';
    Bytes.set buf (!p + 1) '\x04';
    set16 buf (!p + 2) mss;
    p := !p + 4
  | None -> ());
  (match t.options.wscale with
  | Some ws ->
    Bytes.set buf !p '\x03';
    Bytes.set buf (!p + 1) '\x03';
    Bytes.set buf (!p + 2) (Char.chr (ws land 0xff));
    p := !p + 3
  | None -> ());
  (match t.options.timestamp with
  | Some (ts_val, ts_ecr) ->
    Bytes.set buf !p '\x08';
    Bytes.set buf (!p + 1) '\x0a';
    set32 buf (!p + 2) (ts_val land 0xFFFF_FFFF);
    set32 buf (!p + 6) (ts_ecr land 0xFFFF_FFFF);
    p := !p + 10
  | None -> ());
  (match t.options.sack with
  | [] -> ()
  | blocks ->
    Bytes.set buf !p '\x05';
    Bytes.set buf (!p + 1) (Char.chr (2 + (8 * List.length blocks)));
    p := !p + 2;
    List.iter
      (fun (bs, be) ->
        set32 buf !p (bs land 0xFFFF_FFFF);
        set32 buf (!p + 4) (be land 0xFFFF_FFFF);
        p := !p + 8)
      blocks);
  while !p < off + hdr_size do
    Bytes.set buf !p '\x01' (* NOP padding *);
    incr p
  done;
  hdr_size

let read buf ~off =
  if Bytes.length buf - off < 20 then invalid_arg "Tcp_header.read: short buffer";
  let data_off = (Char.code (Bytes.get buf (off + 12)) lsr 4) * 4 in
  if data_off < 20 || Bytes.length buf - off < data_off then
    invalid_arg "Tcp_header.read: bad data offset";
  let opts = ref no_options in
  let p = ref (off + 20) in
  let last = off + data_off in
  (try
     while !p < last do
       match Char.code (Bytes.get buf !p) with
       | 0 -> raise Exit (* end of options *)
       | 1 -> incr p (* NOP *)
       | kind ->
         let len = Char.code (Bytes.get buf (!p + 1)) in
         if len < 2 || !p + len > last then
           invalid_arg "Tcp_header.read: corrupt option";
         (match kind with
         | 2 when len = 4 -> opts := { !opts with mss = Some (get16 buf (!p + 2)) }
         | 3 when len = 3 ->
           opts := { !opts with wscale = Some (Char.code (Bytes.get buf (!p + 2))) }
         | 8 when len = 10 ->
           opts :=
             { !opts with
               timestamp = Some (get32 buf (!p + 2), get32 buf (!p + 6)) }
         | 5 when len >= 10 && (len - 2) mod 8 = 0 ->
           let n = (len - 2) / 8 in
           let blocks =
             List.init n (fun i ->
                 (get32 buf (!p + 2 + (8 * i)), get32 buf (!p + 6 + (8 * i))))
           in
           opts := { !opts with sack = blocks }
         | _ -> () (* unknown option: skipped *));
         p := !p + len
     done
   with Exit -> ());
  ( {
      src_port = get16 buf off;
      dst_port = get16 buf (off + 2);
      seq = get32 buf (off + 4);
      ack = get32 buf (off + 8);
      flags = flags_of_bits (Char.code (Bytes.get buf (off + 13)));
      window = get16 buf (off + 14);
      options = !opts;
    },
    data_off )

let pp fmt t =
  let f = t.flags in
  let flag_str =
    String.concat ""
      [
        (if f.syn then "S" else "");
        (if f.ack then "A" else "");
        (if f.fin then "F" else "");
        (if f.rst then "R" else "");
        (if f.psh then "P" else "");
        (if f.ece then "E" else "");
        (if f.cwr then "C" else "");
      ]
  in
  Format.fprintf fmt "tcp %d->%d seq=%a ack=%a [%s] win=%d" t.src_port
    t.dst_port Seq32.pp t.seq Seq32.pp t.ack flag_str t.window
