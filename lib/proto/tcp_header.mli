(** TCP header with the options TAS uses: MSS (on SYN), window scale (on
    SYN), timestamps (every segment; the fast path uses them for RTT
    estimation feeding congestion control, §3.1), and SACK blocks (on ACKs
    of receivers running a SACK-class recovery policy). *)

type flags = {
  syn : bool;
  ack : bool;
  fin : bool;
  rst : bool;
  psh : bool;
  ece : bool;  (** ECN-echo: receiver feedback of CE marks (DCTCP). *)
  cwr : bool;
}

type options = {
  mss : int option;
  wscale : int option;
  timestamp : (int * int) option;  (** (ts_val, ts_ecr). *)
  sack : (Seq32.t * Seq32.t) list;
      (** RFC 2018 blocks, [(start, end)] half-open in sequence space,
          most recently updated first. At most 3 fit beside the timestamp
          option (the standard 40-byte option budget); [\[\]] adds zero
          wire bytes, so non-SACK stacks are byte-identical. *)
}

type t = {
  src_port : Addr.port;
  dst_port : Addr.port;
  seq : Seq32.t;
  ack : Seq32.t;
  flags : flags;
  window : int;
  options : options;
}

val no_flags : flags
val no_options : options

val data_flags : flags
(** ACK + PSH: the common-case data segment. *)

val ack_flags : flags

val size : t -> int
(** Wire size: 20 bytes plus padded options. *)

val write : t -> bytes -> off:int -> int
(** Serializes (checksum field written as zero; TCP checksums over the
    pseudo-header are applied by {!Packet.to_wire}). Returns bytes written. *)

val read : bytes -> off:int -> t * int
(** [read buf ~off] parses and returns the header and its size in bytes.
    Unknown options are skipped.
    @raise Invalid_argument on short/corrupt input. *)

val pp : Format.formatter -> t -> unit
