(** Chase–Lev work-stealing deque.

    The owner pushes and pops at the bottom (LIFO); any other domain steals
    from the top (FIFO) with a compare-and-set on the top index, so each
    element is handed to exactly one domain.

    Restriction inherited from the domain pool's batch discipline: [push]
    must not run concurrently with [steal] (the pool only pushes while its
    workers are quiescent). [pop] and [steal] may race freely. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [create ()] is an empty deque. [capacity] (default 256, rounded up to a
    power of two) is a hint; the buffer grows on owner pushes. *)

val push : 'a t -> 'a -> unit
(** Owner-only: add an element at the bottom. *)

val pop : 'a t -> 'a option
(** Owner-only: take the most recently pushed element, or [None] if empty. *)

val steal : 'a t -> 'a option
(** Any domain: take the oldest element, or [None] if empty. Each element is
    returned by exactly one [pop] or [steal] across all domains. *)

val size : 'a t -> int
(** Snapshot of the number of elements (racy under concurrency). *)
