(** Fixed-size domain pool with work-stealing and a deterministic merge.

    A pool of [jobs] participants (the calling domain plus [jobs - 1] worker
    domains) executes batches of independent jobs. Jobs are distributed
    round-robin across per-participant {!Work_deque}s and rebalanced by
    stealing; results are collected at each job's submission index, so the
    merged output is in submission order — parallel runs produce the same
    result sequence as serial runs, bit for bit.

    Jobs must be independent (no job may depend on another job of the same
    batch) and must not submit new batches to the same pool. *)

type t

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] starts a pool of [jobs] total participants ([jobs - 1]
    spawned domains). Default {!recommended_jobs}. [jobs = 1] runs every
    batch inline on the calling domain with no worker domains.
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int
(** Total participants, including the calling domain. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()], floored at 1. *)

val map_result : t -> f:('a -> 'b) -> 'a array -> ('b, exn) result array
(** [map_result t ~f inputs] runs [f] on every input, in parallel across the
    pool, and returns per-input results in submission order. A raising job
    yields [Error] at its index and never deadlocks or poisons the pool. *)

val map : t -> f:('a -> 'b) -> 'a array -> 'b array
(** Like {!map_result}, but re-raises the first (by submission order) job
    exception after the whole batch has settled. *)

val shutdown : t -> unit
(** Join all worker domains. The pool must not be used afterwards. *)

val with_pool : ?jobs:int -> (t -> 'b) -> 'b
(** [with_pool f] is [f pool] with {!shutdown} guaranteed on exit. *)
