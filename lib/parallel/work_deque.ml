(* Chase–Lev work-stealing deque (Le et al., "Correct and Efficient
   Work-Stealing for Weak Memory Models"), specialised to the domain pool's
   batch discipline: all elements are pushed by the owner while no thief is
   running (the pool distributes jobs before it wakes the workers), then the
   owner pops from the bottom while thieves race CAS-on-top steals. Because
   pushes never run concurrently with steals, the buffer cells are written
   once per batch and only read during the concurrent phase; the [top]
   compare-and-set remains the single arbiter of element ownership. *)

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  mutable buf : 'a option array;  (* circular; length is a power of two *)
  mutable mask : int;
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 16

let create ?(capacity = 256) () =
  let cap = next_pow2 (max 1 capacity) in
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = Array.make cap None;
    mask = cap - 1;
  }

let size t = max 0 (Atomic.get t.bottom - Atomic.get t.top)

let grow t b top =
  let old = t.buf in
  let cap = 2 * Array.length old in
  let buf = Array.make cap None in
  let mask = cap - 1 in
  for i = top to b - 1 do
    buf.(i land mask) <- old.(i land (Array.length old - 1))
  done;
  t.buf <- buf;
  t.mask <- mask

let push t v =
  let b = Atomic.get t.bottom in
  let top = Atomic.get t.top in
  if b - top >= Array.length t.buf then grow t b top;
  t.buf.(b land t.mask) <- Some v;
  Atomic.set t.bottom (b + 1)

let pop t =
  let b = Atomic.get t.bottom - 1 in
  Atomic.set t.bottom b;
  let top = Atomic.get t.top in
  if b < top then begin
    (* Empty: restore the canonical bottom = top. *)
    Atomic.set t.bottom top;
    None
  end
  else if b > top then t.buf.(b land t.mask)
  else begin
    (* Last element: race the thieves for it. *)
    let won = Atomic.compare_and_set t.top top (top + 1) in
    Atomic.set t.bottom (top + 1);
    if won then t.buf.(b land t.mask) else None
  end

let rec steal t =
  let top = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if top >= b then None
  else
    let v = t.buf.(top land t.mask) in
    if Atomic.compare_and_set t.top top (top + 1) then v
    else begin
      (* Lost the race; another thief or the owner took it. *)
      Domain.cpu_relax ();
      steal t
    end
