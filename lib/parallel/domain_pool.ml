(* Fixed-size pool of OCaml 5 domains executing batches of independent jobs.

   One work-stealing deque per participant (the submitting domain is
   participant 0). A batch is submitted by distributing jobs round-robin
   across the deques while every worker is asleep, then waking the workers:
   each participant drains its own deque bottom-first and steals from the
   others when it runs dry. Jobs never spawn jobs, so a participant whose
   steal sweep comes up empty is done with the batch.

   Results land in a per-batch array at each job's submission index, which
   makes the merge deterministic: [map] returns results in submission order
   no matter which domain ran what, so parallel output can be byte-identical
   to a serial run. Exceptions are captured per job ([map_result]) and never
   kill a worker, so a raising job cannot deadlock the pool. *)

type t = {
  size : int;  (* participants, including the submitting domain *)
  deques : (unit -> unit) Work_deque.t array;
  mutable workers : unit Domain.t array;
  lock : Mutex.t;
  work_available : Condition.t;
  batch_done : Condition.t;
  mutable generation : int;
  mutable busy_workers : int;  (* workers not yet back in [Condition.wait] *)
  unfinished : int Atomic.t;
  mutable stop : bool;
}

let recommended_jobs () = max 1 (Domain.recommended_domain_count ())

let jobs t = t.size

(* Drain own deque, then steal from the others (cyclic sweep starting after
   our own index so thieves spread out). Returns when no work is visible. *)
let participate t idx =
  let rec run_own () =
    match Work_deque.pop t.deques.(idx) with
    | Some job ->
      job ();
      run_own ()
    | None -> sweep 1
  and sweep k =
    if k < t.size then
      match Work_deque.steal t.deques.((idx + k) mod t.size) with
      | Some job ->
        job ();
        run_own ()
      | None -> sweep (k + 1)
  in
  run_own ()

let worker_loop t idx =
  let seen = ref 0 in
  Mutex.lock t.lock;
  while not t.stop do
    if t.generation > !seen then begin
      seen := t.generation;
      Mutex.unlock t.lock;
      participate t idx;
      Mutex.lock t.lock;
      (* Back to quiescence: the submitter may only start the next batch
         (and push into the deques) once every worker has stopped
         stealing, so report in under the lock. *)
      t.busy_workers <- t.busy_workers - 1;
      if t.busy_workers = 0 then Condition.broadcast t.batch_done
    end
    else Condition.wait t.work_available t.lock
  done;
  Mutex.unlock t.lock

let create ?jobs () =
  let size =
    match jobs with
    | None -> recommended_jobs ()
    | Some n when n < 1 -> invalid_arg "Domain_pool.create: jobs < 1"
    | Some n -> n
  in
  let t =
    {
      size;
      deques = Array.init size (fun _ -> Work_deque.create ());
      workers = [||];
      lock = Mutex.create ();
      work_available = Condition.create ();
      batch_done = Condition.create ();
      generation = 0;
      busy_workers = 0;
      unfinished = Atomic.make 0;
      stop = false;
    }
  in
  t.workers <-
    Array.init (size - 1) (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

let shutdown t =
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.lock;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map_result t ~f inputs =
  let n = Array.length inputs in
  let results = Array.make n (Error Not_found) in
  if n = 0 then results
  else begin
    let finish_job () =
      if Atomic.fetch_and_add t.unfinished (-1) = 1 then begin
        Mutex.lock t.lock;
        Condition.broadcast t.batch_done;
        Mutex.unlock t.lock
      end
    in
    (* Distribute while every worker is quiescent (push must not race with
       steal); round-robin gives an even start, stealing rebalances. *)
    Array.iteri
      (fun i x ->
        Work_deque.push
          t.deques.(i mod t.size)
          (fun () ->
            results.(i) <- (try Ok (f x) with e -> Error e);
            finish_job ()))
      inputs;
    Atomic.set t.unfinished n;
    Mutex.lock t.lock;
    t.generation <- t.generation + 1;
    t.busy_workers <- t.size - 1;
    Condition.broadcast t.work_available;
    Mutex.unlock t.lock;
    (* The submitting domain is participant 0. *)
    participate t 0;
    (* Wait for both every job's completion and every worker's return to
       the wait loop, so the next batch's pushes cannot race a straggling
       steal sweep. *)
    Mutex.lock t.lock;
    while Atomic.get t.unfinished > 0 || t.busy_workers > 0 do
      Condition.wait t.batch_done t.lock
    done;
    Mutex.unlock t.lock;
    results
  end

let map t ~f inputs =
  Array.map
    (function Ok v -> v | Error e -> raise e)
    (map_result t ~f inputs)
