type t = {
  local_cycles : int;
  remote_cycles : int;
  mutable acquisitions : int;
  mutable remote_acquisitions : int;
  mutable cycles : int;
  mutable remote_cycles_total : int;
}

let create ?(local_cycles = 24) ?(remote_cycles = 96) () =
  if local_cycles < 0 || remote_cycles < 0 then
    invalid_arg "Spinlock.create: negative cycle cost";
  {
    local_cycles;
    remote_cycles;
    acquisitions = 0;
    remote_acquisitions = 0;
    cycles = 0;
    remote_cycles_total = 0;
  }

let acquire t ~remote =
  t.acquisitions <- t.acquisitions + 1;
  let c = if remote then t.remote_cycles else t.local_cycles in
  t.cycles <- t.cycles + c;
  if remote then begin
    t.remote_acquisitions <- t.remote_acquisitions + 1;
    t.remote_cycles_total <- t.remote_cycles_total + c
  end;
  c

let acquisitions t = t.acquisitions
let remote_acquisitions t = t.remote_acquisitions
let cycles t = t.cycles
let remote_cycles t = t.remote_cycles_total
