(** First-class RSS redirection table: flow group → receive queue.

    The NIC hashes each arriving packet's 4-tuple and reduces it modulo
    [size] to a {e flow group}; the table maps every group to one of
    [num_queues] receive queues (each owned by a fast-path core). Scaling
    the fast path rewrites the table eagerly (paper §3.4): {!set_active}
    respreads all groups over the first [n] queues and reports each
    remapped group through the [on_move] hook — the mechanism per-queue
    flow-table shards use to migrate flow state deterministically
    (drain-in-place: state moves at the rewrite, before the next packet of
    the group arrives on the new queue).

    The default 128-entry table and the [group mod n] spread reproduce the
    seed NIC's steering function exactly. *)

type t

val default_size : int
(** 128 — the redirection-table size of the paper's NICs. *)

val create : ?size:int -> num_queues:int -> unit -> t
(** All [size] groups spread over all [num_queues] queues ([g mod
    num_queues]), all queues active.
    @raise Invalid_argument if [size] or [num_queues] is not positive. *)

val size : t -> int
val num_queues : t -> int

val active : t -> int
(** Queues currently receiving traffic (set by the last {!set_active};
    initially [num_queues]). *)

val group_of_hash : t -> int -> int
(** The flow group of a flow hash ([hash mod size], non-negative). *)

val queue_of_group : t -> int -> int
val queue_for_hash : t -> int -> int

val set_active : t -> int -> unit
(** Rewrite the table to spread all groups over the first [n] queues.
    Remapped groups fire [on_move] in ascending group order; unchanged
    groups fire nothing.
    @raise Invalid_argument if [n] is not within [1, num_queues]. *)

val set_on_move : t -> (group:int -> from_q:int -> to_q:int -> unit) -> unit
(** Hook invoked for every group remapped by {!set_active}, after the table
    entry is updated (a lookup inside the hook already sees the new
    queue). Single consumer: the fast path's flow-shard set. *)

val rewrites : t -> int
(** Table rewrites performed ({!set_active} calls). *)

val groups_moved : t -> int
(** Total groups remapped across all rewrites. *)

val register :
  t -> Tas_telemetry.Metrics.t -> ?labels:Tas_telemetry.Metrics.labels ->
  unit -> unit
(** Register [nic_rss_rewrites] / [nic_rss_groups_moved] counters. *)
