let default_size = 128

type t = {
  size : int;
  num_queues : int;
  table : int array;
  mutable active : int;
  mutable rewrites : int;
  mutable groups_moved : int;
  mutable on_move : group:int -> from_q:int -> to_q:int -> unit;
}

let spread table n =
  for g = 0 to Array.length table - 1 do
    table.(g) <- g mod n
  done

let create ?(size = default_size) ~num_queues () =
  if size <= 0 then invalid_arg "Rss_table.create: need a positive size";
  if num_queues <= 0 then
    invalid_arg "Rss_table.create: need at least one queue";
  let table = Array.make size 0 in
  spread table num_queues;
  {
    size;
    num_queues;
    table;
    active = num_queues;
    rewrites = 0;
    groups_moved = 0;
    on_move = (fun ~group:_ ~from_q:_ ~to_q:_ -> ());
  }

let size t = t.size
let num_queues t = t.num_queues
let active t = t.active
let rewrites t = t.rewrites
let groups_moved t = t.groups_moved
let set_on_move t f = t.on_move <- f

let group_of_hash t h = ((h mod t.size) + t.size) mod t.size
let queue_of_group t g = t.table.(g)
let queue_for_hash t h = t.table.(group_of_hash t h)

let set_active t n =
  if n < 1 || n > t.num_queues then
    invalid_arg "Rss_table.set_active: out of range";
  t.active <- n;
  t.rewrites <- t.rewrites + 1;
  (* Walk groups in ascending order so migration callbacks fire in a
     deterministic sequence regardless of how the caller scales. *)
  for g = 0 to t.size - 1 do
    let to_q = g mod n in
    let from_q = t.table.(g) in
    if from_q <> to_q then begin
      t.table.(g) <- to_q;
      t.groups_moved <- t.groups_moved + 1;
      t.on_move ~group:g ~from_q ~to_q
    end
  done

let register t m ?(labels = []) () =
  let module Metrics = Tas_telemetry.Metrics in
  Metrics.counter_fn m ~labels
    ~help:"RSS redirection-table rewrites (core scaling events)"
    "nic_rss_rewrites"
    (fun () -> t.rewrites);
  Metrics.counter_fn m ~labels
    ~help:"flow groups remapped to a different queue by table rewrites"
    "nic_rss_groups_moved"
    (fun () -> t.groups_moved)
