(** Accounting-only spinlock cost model.

    Hardware TAS protects each flow-table entry with a per-flow spinlock;
    the lock line of paper Table 2 is its per-request cost. The simulator is
    single-threaded per instance, so the lock never blocks — this module
    only {e charges}: every acquisition accumulates a cycle cost into
    counters that experiments and metrics read. The accumulated cycles are
    deliberately never posted to a simulated core, so enabling or tuning the
    lock model cannot perturb the event timeline — sharded and single-table
    runs stay packet-for-packet identical.

    [local] acquisitions model the common case (the owning fast-path core,
    uncontended cache-hot CAS); [remote] acquisitions model the rare
    cross-core touches (slow-path flow install/remove, shard migration),
    which pay a cache-line transfer. *)

type t

val create : ?local_cycles:int -> ?remote_cycles:int -> unit -> t
(** Defaults: 24 cycles local, 96 remote (~Table 2's 0.2 kc/request lock
    line split over the per-packet acquisitions of one request).
    @raise Invalid_argument on a negative cost. *)

val acquire : t -> remote:bool -> int
(** Charge one acquisition; returns the cycles charged. *)

val acquisitions : t -> int
val remote_acquisitions : t -> int

val cycles : t -> int
(** Total cycles charged (local + remote). *)

val remote_cycles : t -> int
(** Cycles charged for remote acquisitions only. *)
