module Four_tuple = Tas_proto.Addr.Four_tuple

module Tbl = Hashtbl.Make (struct
  type t = Four_tuple.t

  let equal = Four_tuple.equal
  let hash = Four_tuple.hash
end)

type 'v shard = {
  tbl : 'v Tbl.t;
  lock : Spinlock.t;
  mutable lookups : int;
  mutable installs : int;
  mutable removes : int;
  mutable migrations_in : int;
  mutable migrations_out : int;
}

type 'v t = {
  rss : Rss_table.t;
  shards : 'v shard array;
  mutable migrated_flows : int;
  mutable on_migrate : group:int -> from_q:int -> to_q:int -> moved:int -> unit;
}

let make_shard ~lock_cycles ~remote_lock_cycles () =
  {
    tbl = Tbl.create 256;
    lock = Spinlock.create ~local_cycles:lock_cycles
        ~remote_cycles:remote_lock_cycles ();
    lookups = 0;
    installs = 0;
    removes = 0;
    migrations_in = 0;
    migrations_out = 0;
  }

(* Drain-in-place on an RSS rewrite: every flow of the remapped group moves
   from the old queue's shard to the new one before [set_active] returns —
   i.e. before any packet steered by the new table can look it up. *)
let migrate_group t ~group ~from_q ~to_q =
  let src = t.shards.(from_q) and dst = t.shards.(to_q) in
  let moving = ref [] in
  Tbl.iter
    (fun tuple v ->
      if Rss_table.group_of_hash t.rss (Four_tuple.sym_hash tuple) = group
      then moving := (tuple, v) :: !moving)
    src.tbl;
  let moved = List.length !moving in
  if moved > 0 then begin
    (* Both shard locks are taken from the migrating (slow-path) core. *)
    ignore (Spinlock.acquire src.lock ~remote:true);
    ignore (Spinlock.acquire dst.lock ~remote:true);
    List.iter
      (fun (tuple, v) ->
        Tbl.remove src.tbl tuple;
        Tbl.replace dst.tbl tuple v)
      !moving;
    src.migrations_out <- src.migrations_out + moved;
    dst.migrations_in <- dst.migrations_in + moved;
    t.migrated_flows <- t.migrated_flows + moved
  end;
  t.on_migrate ~group ~from_q ~to_q ~moved

let create ?(lock_cycles = 24) ?(remote_lock_cycles = 96) ~rss () =
  let t =
    {
      rss;
      shards =
        Array.init (Rss_table.num_queues rss) (fun _ ->
            make_shard ~lock_cycles ~remote_lock_cycles ());
      migrated_flows = 0;
      on_migrate = (fun ~group:_ ~from_q:_ ~to_q:_ ~moved:_ -> ());
    }
  in
  Rss_table.set_on_move rss (fun ~group ~from_q ~to_q ->
      migrate_group t ~group ~from_q ~to_q);
  t

let rss t = t.rss
let num_shards t = Array.length t.shards
let set_on_migrate t f = t.on_migrate <- f

let shard_of t tuple =
  Rss_table.queue_for_hash t.rss (Four_tuple.sym_hash tuple)

let find t tuple =
  let s = t.shards.(shard_of t tuple) in
  s.lookups <- s.lookups + 1;
  (* Owner access: the looking-up core is the one RSS steers the flow to. *)
  ignore (Spinlock.acquire s.lock ~remote:false);
  Tbl.find_opt s.tbl tuple

let add t tuple v =
  let s = t.shards.(shard_of t tuple) in
  s.installs <- s.installs + 1;
  (* Slow-path install: a cross-core touch of the owning shard. *)
  ignore (Spinlock.acquire s.lock ~remote:true);
  Tbl.replace s.tbl tuple v

let remove t tuple =
  let s = t.shards.(shard_of t tuple) in
  s.removes <- s.removes + 1;
  ignore (Spinlock.acquire s.lock ~remote:true);
  Tbl.remove s.tbl tuple

let shard_count t i = Tbl.length t.shards.(i).tbl
let count t = Array.fold_left (fun acc s -> acc + Tbl.length s.tbl) 0 t.shards

let iter t f = Array.iter (fun s -> Tbl.iter f s.tbl) t.shards

let iter_shard t i f = Tbl.iter f t.shards.(i).tbl

let lock_cycles t =
  Array.fold_left (fun acc s -> acc + Spinlock.cycles s.lock) 0 t.shards

let remote_lock_cycles t =
  Array.fold_left (fun acc s -> acc + Spinlock.remote_cycles s.lock) 0 t.shards

let shard_lock_cycles t i = Spinlock.cycles t.shards.(i).lock
let migrated_flows t = t.migrated_flows

type shard_stats = {
  flows : int;
  lookups : int;
  installs : int;
  removes : int;
  migrations_in : int;
  migrations_out : int;
  lock_cycles : int;
  remote_lock_cycles : int;
}

let shard_stats t i =
  let s = t.shards.(i) in
  {
    flows = Tbl.length s.tbl;
    lookups = s.lookups;
    installs = s.installs;
    removes = s.removes;
    migrations_in = s.migrations_in;
    migrations_out = s.migrations_out;
    lock_cycles = Spinlock.cycles s.lock;
    remote_lock_cycles = Spinlock.remote_cycles s.lock;
  }

let register t m ?(labels = []) () =
  let module Metrics = Tas_telemetry.Metrics in
  Array.iteri
    (fun i (s : _ shard) ->
      let labels = ("shard", string_of_int i) :: labels in
      let c name help f = Metrics.counter_fn m ~labels ~help name f in
      c "fp_shard_lookups" "flow lookups served by this shard" (fun () ->
          s.lookups);
      c "fp_shard_installs" "slow-path flow installs into this shard"
        (fun () -> s.installs);
      c "fp_shard_removes" "slow-path flow removals from this shard"
        (fun () -> s.removes);
      c "fp_shard_migrations_in" "flows migrated into this shard" (fun () ->
          s.migrations_in);
      c "fp_shard_migrations_out" "flows migrated out of this shard"
        (fun () -> s.migrations_out);
      c "fp_shard_lock_cycles"
        "spinlock cycles charged against this shard (cost model only)"
        (fun () -> Spinlock.cycles s.lock);
      Metrics.gauge_fn m ~labels ~help:"flows currently owned by this shard"
        "fp_shard_flows" (fun () -> float_of_int (Tbl.length s.tbl)))
    t.shards
