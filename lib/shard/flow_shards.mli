(** Per-queue flow-table shards over an RSS redirection table.

    Hardware TAS partitions TCP state across fast-path cores: the NIC's RSS
    steering decides a flow's owning queue, and that queue's core touches
    the flow's state contention-free in the common case (paper §3.1). This
    module reproduces that partitioning for the simulated stack: one
    hashtable shard per receive queue, with every operation routed to the
    shard the {e current} redirection table assigns the flow's hash — so
    lookups always agree with installs and migrations.

    When the redirection table is rewritten ({!Rss_table.set_active}), the
    shard set migrates each remapped flow group's state drain-in-place:
    flows move between shards inside the rewrite, before the next packet of
    the group can arrive on its new queue, and the [on_migrate] hook reports
    every group movement (for trace events).

    Cross-core touches — slow-path install/remove and migration — charge a
    {e remote} spinlock acquisition; owner-core lookups charge a {e local}
    one ({!Spinlock}, accounting-only: the simulated timeline is never
    perturbed, which keeps sharded and single-table runs packet-for-packet
    identical).

    Polymorphic in the flow-state type: the concrete per-flow record lives
    above this library (in [tas_core]). *)

type 'v t

val create :
  ?lock_cycles:int -> ?remote_lock_cycles:int -> rss:Rss_table.t -> unit ->
  'v t
(** One shard per [rss] queue. Installs itself as the table's [on_move]
    consumer (see {!Rss_table.set_on_move}); create at most one shard set
    per redirection table. Lock-cost defaults match {!Spinlock.create}. *)

val rss : 'v t -> Rss_table.t
val num_shards : 'v t -> int

val shard_of : 'v t -> Tas_proto.Addr.Four_tuple.t -> int
(** The shard (= RSS queue) currently owning a tuple. *)

val find : 'v t -> Tas_proto.Addr.Four_tuple.t -> 'v option
(** Owner-core lookup; charges one local lock acquisition. *)

val add : 'v t -> Tas_proto.Addr.Four_tuple.t -> 'v -> unit
(** Slow-path install; charges one remote lock acquisition. *)

val remove : 'v t -> Tas_proto.Addr.Four_tuple.t -> unit
(** Slow-path removal; charges one remote lock acquisition. *)

val count : 'v t -> int
(** Total flows, summed over shards. *)

val shard_count : 'v t -> int -> int

val iter : 'v t -> (Tas_proto.Addr.Four_tuple.t -> 'v -> unit) -> unit
(** All shards in index order (within a shard, hashtable order — sort
    before emitting anything that must be deterministic). *)

val iter_shard :
  'v t -> int -> (Tas_proto.Addr.Four_tuple.t -> 'v -> unit) -> unit

val set_on_migrate :
  'v t -> (group:int -> from_q:int -> to_q:int -> moved:int -> unit) -> unit
(** Hook fired once per remapped group after its flows (possibly zero)
    moved shards. *)

val migrated_flows : 'v t -> int
(** Total flows moved between shards by RSS rewrites. *)

val lock_cycles : 'v t -> int
(** Spinlock cycles charged across all shards (cost model only). *)

val remote_lock_cycles : 'v t -> int
(** The cross-core (install/remove/migration) share of {!lock_cycles}. *)

val shard_lock_cycles : 'v t -> int -> int

(** Point-in-time per-shard counters (for introspection output). *)
type shard_stats = {
  flows : int;
  lookups : int;
  installs : int;
  removes : int;
  migrations_in : int;
  migrations_out : int;
  lock_cycles : int;
  remote_lock_cycles : int;
}

val shard_stats : 'v t -> int -> shard_stats

val register :
  'v t -> Tas_telemetry.Metrics.t -> ?labels:Tas_telemetry.Metrics.labels ->
  unit -> unit
(** Register per-shard [fp_shard_*] counters and the [fp_shard_flows] gauge,
    one label set per shard ([shard="<i>"] plus [labels]). *)
