(* Tests of the experiment harness itself: registry completeness, report
   rendering, measurement windows, and wire-format fuzzing. *)

module Registry = Tas_experiments.Registry
module Report = Tas_experiments.Report
module Scenario = Tas_experiments.Scenario
module Sim = Tas_engine.Sim
module Packet = Tas_proto.Packet

let test_registry_covers_evaluation () =
  (* Every table and figure of §5 must be present. *)
  let required =
    [ "t1"; "t2"; "t4"; "t6"; "t7"; "f4"; "f5"; "f6"; "f7"; "f8"; "f9";
      "f10"; "f11"; "f12"; "f13"; "f14"; "f15" ]
  in
  List.iter
    (fun id ->
      Alcotest.(check bool) ("registry has " ^ id) true
        (Registry.find id <> None))
    required;
  (* Lookup is case-insensitive and rejects unknowns. *)
  Alcotest.(check bool) "case-insensitive" true (Registry.find "F4" <> None);
  Alcotest.(check bool) "unknown id" true (Registry.find "zz" = None)

let test_registry_ids_unique () =
  let ids = List.map (fun e -> e.Registry.id) Registry.all in
  Alcotest.(check int) "no duplicate ids"
    (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_report_table_renders () =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Report.table fmt ~header:[ "a"; "long-header"; "c" ]
    ~rows:[ [ "1"; "2"; "3" ]; [ "wide-cell"; "x"; "y" ] ];
  Format.pp_print_flush fmt ();
  let out = Buffer.contents buf in
  Alcotest.(check bool) "header present" true
    (String.length out > 0
    &&
    let re = Str.regexp_string "long-header" in
    (try ignore (Str.search_forward re out 0); true with Not_found -> false))

let test_measure_rate () =
  let sim = Sim.create () in
  let count = ref 0 in
  ignore (Sim.periodic sim 1000 (fun () -> incr count));
  (* 1 event per us -> 1e6 events/sec. *)
  let rate =
    Scenario.measure_rate sim ~warmup:100_000 ~measure:1_000_000 (fun () ->
        !count)
  in
  Alcotest.(check bool)
    (Printf.sprintf "rate ~1e6 (got %.0f)" rate)
    true
    (abs_float (rate -. 1e6) < 1e4)

(* Wire-format fuzzing: random byte buffers must either parse or raise
   Invalid_argument — never crash or loop. *)
let prop_of_wire_total =
  QCheck.Test.make ~name:"Packet.of_wire is total on random bytes" ~count:500
    QCheck.(string_of_size QCheck.Gen.(int_range 0 200))
    (fun s ->
      match Packet.of_wire (Bytes.of_string s) with
      | _ -> true
      | exception Invalid_argument _ -> true)

(* Truncations of a valid packet must never parse into a packet that claims
   more payload than the buffer holds. *)
let prop_truncation_safe =
  QCheck.Test.make ~name:"truncated packets rejected or consistent" ~count:200
    QCheck.(int_bound 200)
    (fun cut ->
      let tcp =
        {
          Tas_proto.Tcp_header.src_port = 1;
          dst_port = 2;
          seq = 3;
          ack = 4;
          flags = Tas_proto.Tcp_header.data_flags;
          window = 100;
          options = Tas_proto.Tcp_header.no_options;
        }
      in
      let pkt =
        Packet.make ~src_mac:1 ~dst_mac:2 ~src_ip:(Tas_proto.Addr.host_ip 1)
          ~dst_ip:(Tas_proto.Addr.host_ip 2) ~tcp
          ~payload:(Bytes.create 120) ()
      in
      let wire = Packet.to_wire pkt in
      let cut = min cut (Bytes.length wire - 1) in
      let truncated = Bytes.sub wire 0 (Bytes.length wire - cut - 1) in
      match Packet.of_wire truncated with
      | parsed -> Bytes.length parsed.Packet.payload <= Bytes.length truncated
      | exception Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "registry covers the evaluation" `Quick
      test_registry_covers_evaluation;
    Alcotest.test_case "registry ids unique" `Quick test_registry_ids_unique;
    Alcotest.test_case "report table renders" `Quick test_report_table_renders;
    Alcotest.test_case "measure_rate windows" `Quick test_measure_rate;
    QCheck_alcotest.to_alcotest prop_of_wire_total;
    QCheck_alcotest.to_alcotest prop_truncation_safe;
  ]
