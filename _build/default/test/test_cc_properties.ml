(* Property tests on congestion-control invariants: windows and rates stay
   within legal bounds under arbitrary event sequences. *)

module Window_cc = Tas_tcp.Window_cc
module Interval_cc = Tas_tcp.Interval_cc

type wevent = Ack of int * bool | Frexmit | Timeout

let wevent_gen =
  QCheck.Gen.(
    frequency
      [
        (8, map2 (fun n e -> Ack (n, e)) (int_range 1 30_000) bool);
        (1, return Frexmit);
        (1, return Timeout);
      ])

let print_wevent = function
  | Ack (n, e) -> Printf.sprintf "Ack(%d,%b)" n e
  | Frexmit -> "Frexmit"
  | Timeout -> "Timeout"

let apply_wevent cc = function
  | Ack (n, e) -> Window_cc.on_ack cc ~acked:n ~ecn:e
  | Frexmit -> Window_cc.on_fast_retransmit cc
  | Timeout -> Window_cc.on_timeout cc

let window_invariants algorithm =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "window cc invariants (%s)"
         (match algorithm with
         | Window_cc.Newreno -> "newreno"
         | Window_cc.Dctcp -> "dctcp"))
    ~count:300
    (QCheck.make
       ~print:(fun l -> String.concat ";" (List.map print_wevent l))
       QCheck.Gen.(list_size (int_range 0 200) wevent_gen))
    (fun events ->
      let mss = 1460 in
      let cc = Window_cc.create algorithm ~mss ~initial_window:(10 * mss) in
      List.for_all
        (fun ev ->
          apply_wevent cc ev;
          let w = Window_cc.cwnd cc in
          let a = Window_cc.alpha cc in
          w >= mss && w <= max_int / 2 && a >= 0.0 && a <= 1.0 +. 1e-9)
        events)

type ievent = { acked : int; ecn_frac : float; frexmit : bool; timeout : bool }

let ievent_gen =
  QCheck.Gen.(
    let* acked = oneofl [ 0; 1_000; 100_000; 10_000_000 ] in
    let* ecn_frac = oneofl [ 0.0; 0.1; 0.5; 1.0 ] in
    let* frexmit = bool in
    let* timeout = bool in
    return { acked; ecn_frac; frexmit; timeout })

let rate_invariants algorithm name =
  QCheck.Test.make
    ~name:(Printf.sprintf "interval cc rate bounds (%s)" name)
    ~count:300
    (QCheck.make
       ~print:(fun l ->
         String.concat ";"
           (List.map
              (fun e ->
                Printf.sprintf "a=%d f=%.1f fx=%b to=%b" e.acked e.ecn_frac
                  e.frexmit e.timeout)
              l))
       QCheck.Gen.(list_size (int_range 0 100) ievent_gen))
    (fun events ->
      let t =
        Interval_cc.create algorithm ~initial:(Interval_cc.Rate_bps 1e9)
      in
      List.for_all
        (fun e ->
          let fb =
            {
              Interval_cc.acked_bytes = e.acked;
              ecn_bytes = int_of_float (float_of_int e.acked *. e.ecn_frac);
              fast_retransmits = (if e.frexmit then 1 else 0);
              timeouts = (if e.timeout then 1 else 0);
              rtt_ns = 100_000;
              interval_ns = 200_000;
            }
          in
          match Interval_cc.update t fb with
          | Interval_cc.Rate_bps r ->
            (* Never below the floor; never NaN/inf; bounded growth: at most
               doubling plus cap headroom per iteration. *)
            r >= 1e6 && Float.is_finite r && r < 1e13
          | Interval_cc.Window_bytes _ -> false)
        events)

let suite =
  [
    QCheck_alcotest.to_alcotest (window_invariants Window_cc.Newreno);
    QCheck_alcotest.to_alcotest (window_invariants Window_cc.Dctcp);
    QCheck_alcotest.to_alcotest
      (rate_invariants (Interval_cc.Dctcp_rate { step_bps = 10e6 }) "dctcp-rate");
    QCheck_alcotest.to_alcotest
      (rate_invariants
         (Interval_cc.Timely
            { t_low_ns = 50_000; t_high_ns = 500_000; addstep_bps = 10e6 })
         "timely");
    QCheck_alcotest.to_alcotest
      (rate_invariants Interval_cc.Fixed_rate "fixed");
  ]
