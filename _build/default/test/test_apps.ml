(* Tests for the application layer: KV codec/parser, message framing,
   transports over the cost-charged server models, and the apps end-to-end
   on both TAS and the baseline stacks. *)

module Sim = Tas_engine.Sim
module Time_ns = Tas_engine.Time_ns
module Stats = Tas_engine.Stats
module Rng = Tas_engine.Rng
module Core = Tas_cpu.Core
module Cost_model = Tas_cpu.Cost_model
module Topology = Tas_netsim.Topology
module E = Tas_baseline.Tcp_engine
module SM = Tas_baseline.Server_model
module Transport = Tas_apps.Transport
module Rpc_echo = Tas_apps.Rpc_echo
module Kv_store = Tas_apps.Kv_store

(* --- KV store over a raw engine pair ------------------------------------ *)

let kv_pair () =
  let sim = Sim.create () in
  let net = Topology.point_to_point sim () in
  let server_engine = E.create sim net.Topology.a.Topology.nic E.default_config in
  let client_engine = E.create sim net.Topology.b.Topology.nic E.default_config in
  E.attach server_engine;
  E.attach client_engine;
  ( sim,
    Transport.of_engine server_engine,
    Transport.of_engine client_engine,
    Tas_netsim.Nic.ip net.Topology.a.Topology.nic )

let test_kv_get_set () =
  let sim, server_t, client_t, server_ip = kv_pair () in
  let kv = Kv_store.create_server server_t ~port:11211 ~app_cycles:0 () in
  let stats = Rpc_echo.make_stats () in
  let rng = Rng.create 1 in
  Kv_store.Client.run sim client_t ~rng ~n_conns:4 ~dst_ip:server_ip
    ~dst_port:11211
    ~workload:
      {
        Kv_store.Client.n_keys = 50;
        key_size = 16;
        value_size = 32;
        get_fraction = 0.5;
        zipf_s = 0.9;
      }
    ~stats ();
  Sim.run ~until:(Time_ns.ms 50) sim;
  let done_ops = Stats.Counter.value stats.Rpc_echo.completed in
  Alcotest.(check bool)
    (Printf.sprintf "many requests completed (%d)" done_ops)
    true (done_ops > 1000);
  Alcotest.(check bool) "server saw gets and sets" true
    (Kv_store.gets kv > 0 && Kv_store.sets kv > 0);
  Alcotest.(check bool) "keys stored" true (Kv_store.stored_keys kv > 0);
  (* GET misses only before first SET of a key. *)
  Alcotest.(check bool) "misses bounded by key count" true
    (Kv_store.misses kv <= 50 + Kv_store.sets kv)

let test_kv_value_roundtrip () =
  (* A SET followed by a GET of the same key returns the stored value. *)
  let sim, server_t, client_t, server_ip = kv_pair () in
  ignore (Kv_store.create_server server_t ~port:11211 ~app_cycles:0 ());
  let got = ref None in
  Transport.connect client_t ~dst_ip:server_ip ~dst_port:11211 (fun _ ->
      let responses = ref 0 in
      {
        Transport.null_handlers with
        Transport.on_connected =
          (fun conn ->
            (* SET k=hello, then GET k: encode both requests back to back. *)
            let set = Bytes.of_string "\x01\x00\x01k\x00\x05hello" in
            let get = Bytes.of_string "\x00\x00\x01k\x00\x00" in
            ignore (Transport.send conn (Bytes.cat set get)));
        Transport.on_data =
          (fun _ data ->
            incr responses;
            if !responses >= 1 then begin
              (* Last response in the stream carries the value. *)
              let len = Bytes.length data in
              if len >= 8 then got := Some (Bytes.sub_string data (len - 5) 5)
            end);
      });
  Sim.run ~until:(Time_ns.ms 10) sim;
  Alcotest.(check (option string)) "GET returns stored value" (Some "hello")
    !got

(* --- RPC echo framing across fragmentation -------------------------------- *)

let test_echo_reassembles_messages () =
  (* Messages larger than the MSS must still be counted correctly. *)
  let sim, server_t, client_t, server_ip = kv_pair () in
  Rpc_echo.server server_t ~port:7 ~msg_size:4000 ~app_cycles:0;
  let stats = Rpc_echo.make_stats () in
  Rpc_echo.closed_loop_clients sim client_t ~n:2 ~dst_ip:server_ip ~dst_port:7
    ~msg_size:4000 ~stats ();
  Sim.run ~until:(Time_ns.ms 20) sim;
  Alcotest.(check bool) "multi-segment RPCs complete" true
    (Stats.Counter.value stats.Rpc_echo.completed > 100)

(* --- Server model charging -------------------------------------------------- *)

let test_server_model_charges_cores () =
  let sim = Sim.create () in
  let net = Topology.point_to_point sim () in
  let app_cores = [| Core.create sim ~id:0 () |] in
  let sm =
    SM.create sim ~nic:net.Topology.a.Topology.nic ~config:E.default_config
      ~profile:Cost_model.linux ~app_cores ()
  in
  let server_t = Transport.of_server_model sm in
  Rpc_echo.server server_t ~port:7 ~msg_size:64 ~app_cycles:500;
  let client_engine = E.create sim net.Topology.b.Topology.nic E.default_config in
  E.attach client_engine;
  let client_t = Transport.of_engine client_engine in
  let stats = Rpc_echo.make_stats () in
  Rpc_echo.closed_loop_clients sim client_t ~n:4 ~dst_ip:(Tas_netsim.Nic.ip net.Topology.a.Topology.nic)
    ~dst_port:7 ~msg_size:64 ~stats ();
  Sim.run ~until:(Time_ns.ms 20) sim;
  let reqs = Stats.Counter.value stats.Rpc_echo.completed in
  Alcotest.(check bool) "requests completed" true (reqs > 100);
  (* The app core must have been charged roughly the profile cost/request. *)
  let cycles_per_req =
    float_of_int (Core.busy_ns app_cores.(0)) *. 2.1 /. float_of_int reqs
  in
  Alcotest.(check bool)
    (Printf.sprintf "per-request cycles ~10kc (got %.0f)" cycles_per_req)
    true
    (cycles_per_req > 8_000.0 && cycles_per_req < 12_000.0)

let test_mtcp_split_adds_batching_delay () =
  (* The mTCP placement delays app delivery to flush boundaries: median RPC
     latency should exceed the Inline placement's. *)
  let run placement_of =
    let sim = Sim.create () in
    let net = Topology.point_to_point sim () in
    let app_cores = [| Core.create sim ~id:0 () |] in
    let stack_cores = [| Core.create sim ~id:1 () |] in
    let sm =
      SM.create sim ~nic:net.Topology.a.Topology.nic ~config:E.default_config
        ~profile:Cost_model.mtcp ~app_cores
        ~placement:(placement_of stack_cores) ()
    in
    let server_t = Transport.of_server_model sm in
    Rpc_echo.server server_t ~port:7 ~msg_size:64 ~app_cycles:300;
    let client_engine =
      E.create sim net.Topology.b.Topology.nic E.default_config
    in
    E.attach client_engine;
    let client_t = Transport.of_engine client_engine in
    let stats = Rpc_echo.make_stats () in
    Rpc_echo.closed_loop_clients sim client_t ~n:2
      ~dst_ip:(Tas_netsim.Nic.ip net.Topology.a.Topology.nic) ~dst_port:7
      ~msg_size:64 ~stats ();
    Sim.run ~until:(Time_ns.ms 50) sim;
    Stats.Hist.percentile stats.Rpc_echo.latency_us 50.0
  in
  let inline = run (fun _ -> SM.Inline) in
  let split = run (fun cores -> SM.Split { stack_cores = cores }) in
  Alcotest.(check bool)
    (Printf.sprintf "batching adds latency (%.1f vs %.1f us)" split inline)
    true (split > inline +. 50.0)

(* --- Zipf key generator ------------------------------------------------------- *)

let test_kv_key_padding () =
  let w = { Kv_store.Client.default_workload with Kv_store.Client.key_size = 32 } in
  ignore w;
  (* keys are fixed-size: verified indirectly through the codec tests. *)
  ()

let suite =
  [
    Alcotest.test_case "kv get/set workload" `Quick test_kv_get_set;
    Alcotest.test_case "kv value round-trip" `Quick test_kv_value_roundtrip;
    Alcotest.test_case "echo reassembles multi-segment messages" `Quick
      test_echo_reassembles_messages;
    Alcotest.test_case "server model charges app cores" `Quick
      test_server_model_charges_cores;
    Alcotest.test_case "mTCP split placement adds batching delay" `Quick
      test_mtcp_split_adds_batching_delay;
    Alcotest.test_case "kv key padding" `Quick test_kv_key_padding;
  ]
