(* Unit and property tests for the discrete-event engine. *)

module Sim = Tas_engine.Sim
module Time_ns = Tas_engine.Time_ns
module Rng = Tas_engine.Rng
module Stats = Tas_engine.Stats

let test_event_ordering () =
  let sim = Sim.create () in
  let order = ref [] in
  ignore (Sim.schedule sim 300 (fun () -> order := 3 :: !order));
  ignore (Sim.schedule sim 100 (fun () -> order := 1 :: !order));
  ignore (Sim.schedule sim 200 (fun () -> order := 2 :: !order));
  Sim.run sim;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !order);
  Alcotest.(check int) "clock at last event" 300 (Sim.now sim)

let test_same_time_fifo () =
  let sim = Sim.create () in
  let order = ref [] in
  for i = 1 to 10 do
    ignore (Sim.schedule sim 50 (fun () -> order := i :: !order))
  done;
  Sim.run sim;
  Alcotest.(check (list int))
    "FIFO among simultaneous events"
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
    (List.rev !order)

let test_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let ev = Sim.schedule sim 100 (fun () -> fired := true) in
  Sim.cancel sim ev;
  Sim.run sim;
  Alcotest.(check bool) "cancelled event does not fire" false !fired;
  Alcotest.(check int) "no live events" 0 (Sim.pending sim)

let test_cancel_after_fire_is_noop () =
  let sim = Sim.create () in
  let ev = Sim.schedule sim 10 ignore in
  ignore (Sim.schedule sim 20 ignore);
  Sim.run sim;
  Sim.cancel sim ev;
  Alcotest.(check int) "live count not corrupted" 0 (Sim.pending sim)

let test_run_until () =
  let sim = Sim.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Sim.schedule sim (i * 100) (fun () -> incr count))
  done;
  Sim.run ~until:550 sim;
  Alcotest.(check int) "only events up to the limit" 5 !count;
  Alcotest.(check int) "clock pinned to limit" 550 (Sim.now sim);
  Sim.run sim;
  Alcotest.(check int) "remaining events run" 10 !count

let test_nested_scheduling () =
  let sim = Sim.create () in
  let depth = ref 0 in
  let rec nest n =
    if n > 0 then begin
      incr depth;
      ignore (Sim.schedule sim 10 (fun () -> nest (n - 1)))
    end
  in
  nest 100;
  Sim.run sim;
  Alcotest.(check int) "100 nested events" 100 !depth;
  Alcotest.(check int) "clock advanced 100 steps" 1000 (Sim.now sim)

let test_periodic () =
  let sim = Sim.create () in
  let fires = ref 0 in
  let handle = Sim.periodic sim 100 (fun () -> incr fires) in
  ignore (Sim.schedule sim 1050 (fun () -> Sim.cancel sim !handle));
  Sim.run sim;
  Alcotest.(check int) "10 periodic fires before cancel" 10 !fires

let test_negative_delay_rejected () =
  let sim = Sim.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Sim.schedule: negative delay") (fun () ->
      ignore (Sim.schedule sim (-1) ignore))

let test_many_events_heap () =
  (* Stress the heap with a pseudo-random schedule; verify global order. *)
  let sim = Sim.create () in
  let rng = Rng.create 99 in
  let last = ref (-1) in
  let monotone = ref true in
  for _ = 1 to 10_000 do
    let at = Rng.int rng 1_000_000 in
    ignore
      (Sim.schedule_at sim at (fun () ->
           if Sim.now sim < !last then monotone := false;
           last := Sim.now sim))
  done;
  Sim.run sim;
  Alcotest.(check bool) "events fired in nondecreasing time order" true !monotone

(* --- Rng ---------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  let xs = List.init 100 (fun _ -> Rng.int a 1000) in
  let ys = List.init 100 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let c = Rng.split a in
  let xs = List.init 50 (fun _ -> Rng.int a 1000) in
  let ys = List.init 50 (fun _ -> Rng.int c 1000) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_rng_bounds () =
  let rng = Rng.create 3 in
  let ok = ref true in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then ok := false;
    let f = Rng.float rng 2.5 in
    if f < 0.0 || f >= 2.5 then ok := false
  done;
  Alcotest.(check bool) "int and float draws in range" true !ok

let test_exponential_mean () =
  let rng = Rng.create 11 in
  let n = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng 5.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "exponential mean ~5 (got %.3f)" mean)
    true
    (abs_float (mean -. 5.0) < 0.15)

let test_zipf_skew () =
  let rng = Rng.create 13 in
  let sampler = Rng.Zipf.create ~n:1000 ~s:0.9 in
  let counts = Array.make 1000 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let k = Rng.Zipf.draw rng sampler in
    counts.(k) <- counts.(k) + 1
  done;
  (* Rank-0 frequency should dominate and roughly follow 1/k^0.9. *)
  Alcotest.(check bool) "rank 0 most frequent" true (counts.(0) > counts.(10));
  let ratio = float_of_int counts.(0) /. float_of_int (max 1 counts.(9)) in
  let expected = 10.0 ** 0.9 in
  Alcotest.(check bool)
    (Printf.sprintf "zipf ratio plausible (got %.2f, want ~%.2f)" ratio expected)
    true
    (ratio > expected /. 2.0 && ratio < expected *. 2.0)

let test_pareto_bounds () =
  let rng = Rng.create 17 in
  let ok = ref true in
  for _ = 1 to 10_000 do
    let v = Rng.pareto_bounded rng ~alpha:1.2 ~min_v:1.0 ~max_v:1000.0 in
    if v < 1.0 || v > 1000.0 +. 1e-9 then ok := false
  done;
  Alcotest.(check bool) "bounded pareto stays in bounds" true !ok

(* --- Stats --------------------------------------------------------------- *)

let test_summary () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Stats.Summary.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.Summary.min_v s);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Stats.Summary.max_v s);
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 2.5) (Stats.Summary.stddev s);
  Alcotest.(check int) "count" 5 (Stats.Summary.count s)

let test_hist_percentiles () =
  let h = Stats.Hist.create () in
  for i = 1 to 1000 do
    Stats.Hist.add h (float_of_int i)
  done;
  let p50 = Stats.Hist.percentile h 50.0 in
  let p99 = Stats.Hist.percentile h 99.0 in
  (* Log buckets have ~2% relative error. *)
  Alcotest.(check bool)
    (Printf.sprintf "p50 ~500 (got %.1f)" p50)
    true
    (p50 > 450.0 && p50 < 550.0);
  Alcotest.(check bool)
    (Printf.sprintf "p99 ~990 (got %.1f)" p99)
    true
    (p99 > 930.0 && p99 < 1050.0)

let test_hist_empty () =
  let h = Stats.Hist.create () in
  Alcotest.(check (float 0.0)) "empty percentile" 0.0
    (Stats.Hist.percentile h 99.0)

let test_series_order () =
  let s = Stats.Series.create () in
  Stats.Series.add s 10 1.0;
  Stats.Series.add s 20 2.0;
  Stats.Series.add s 30 3.0;
  Alcotest.(check int) "length" 3 (Stats.Series.length s);
  let times = List.map fst (Stats.Series.points s) in
  Alcotest.(check (list int)) "insertion order" [ 10; 20; 30 ] times

(* --- QCheck properties ---------------------------------------------------- *)

let prop_hist_percentile_monotone =
  QCheck.Test.make ~name:"hist percentiles are monotone in p" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 200) (float_range 0.0 1e6))
    (fun samples ->
      let h = Stats.Hist.create () in
      List.iter (Stats.Hist.add h) samples;
      let ps = [ 1.0; 10.0; 25.0; 50.0; 75.0; 90.0; 99.0 ] in
      let vals = List.map (Stats.Hist.percentile h) ps in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b && mono rest
        | _ -> true
      in
      mono vals)

let prop_summary_mean_bounded =
  QCheck.Test.make ~name:"summary mean within [min,max]" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 100) (float_range (-1e6) 1e6))
    (fun samples ->
      let s = Stats.Summary.create () in
      List.iter (Stats.Summary.add s) samples;
      Stats.Summary.mean s >= Stats.Summary.min_v s -. 1e-6
      && Stats.Summary.mean s <= Stats.Summary.max_v s +. 1e-6)

let test_time_pp () =
  let render t = Format.asprintf "%a" Time_ns.pp t in
  Alcotest.(check string) "ns" "999ns" (render 999);
  Alcotest.(check string) "us" "1.50us" (render 1500);
  Alcotest.(check string) "ms" "2.00ms" (render (Time_ns.ms 2));
  Alcotest.(check string) "s" "3.000s" (render (Time_ns.sec 3))

let suite =
  [
    Alcotest.test_case "event ordering" `Quick test_event_ordering;
    Alcotest.test_case "same-time FIFO" `Quick test_same_time_fifo;
    Alcotest.test_case "cancel" `Quick test_cancel;
    Alcotest.test_case "cancel after fire" `Quick test_cancel_after_fire_is_noop;
    Alcotest.test_case "run ~until" `Quick test_run_until;
    Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
    Alcotest.test_case "periodic" `Quick test_periodic;
    Alcotest.test_case "negative delay rejected" `Quick test_negative_delay_rejected;
    Alcotest.test_case "10k random events stay ordered" `Quick test_many_events_heap;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "bounded pareto bounds" `Quick test_pareto_bounds;
    Alcotest.test_case "summary stats" `Quick test_summary;
    Alcotest.test_case "histogram percentiles" `Quick test_hist_percentiles;
    Alcotest.test_case "empty histogram" `Quick test_hist_empty;
    Alcotest.test_case "series order" `Quick test_series_order;
    Alcotest.test_case "time pretty-printing" `Quick test_time_pp;
    QCheck_alcotest.to_alcotest prop_hist_percentile_monotone;
    QCheck_alcotest.to_alcotest prop_summary_mean_bounded;
  ]
