(* Multiple applications sharing one TAS instance: context isolation,
   independent ports, and slow-path cleanup on application exit. *)

module Sim = Tas_engine.Sim
module Time_ns = Tas_engine.Time_ns
module Core = Tas_cpu.Core
module Topology = Tas_netsim.Topology
module Nic = Tas_netsim.Nic
module Config = Tas_core.Config
module Tas = Tas_core.Tas
module Libtas = Tas_core.Libtas
module Slow_path = Tas_core.Slow_path
module E = Tas_baseline.Tcp_engine

let setup () =
  let sim = Sim.create () in
  let net = Topology.point_to_point sim ~queues_per_nic:4 () in
  let tas =
    Tas.create sim ~nic:net.Topology.a.Topology.nic ~config:Config.default ()
  in
  let peer = E.create sim net.Topology.b.Topology.nic E.default_config in
  E.attach peer;
  (sim, net, tas, peer)

let test_two_apps_one_tas () =
  let sim, net, tas, peer = setup () in
  (* Two applications, each with its own core and context, on one TAS. *)
  let app1 =
    Tas.app tas ~app_cores:[| Core.create sim ~id:101 () |] ~api:Libtas.Sockets
  in
  let app2 =
    Tas.app tas ~app_cores:[| Core.create sim ~id:102 () |] ~api:Libtas.Lowlevel
  in
  let served1 = ref 0 and served2 = ref 0 in
  Libtas.listen app1 ~port:7001 ~ctx_of_tuple:(fun _ -> 0) (fun _ ->
      {
        Libtas.null_handlers with
        Libtas.on_data =
          (fun sock d ->
            incr served1;
            ignore (Libtas.send sock d));
      });
  Libtas.listen app2 ~port:7002 ~ctx_of_tuple:(fun _ -> 0) (fun _ ->
      {
        Libtas.null_handlers with
        Libtas.on_data =
          (fun sock d ->
            incr served2;
            ignore (Libtas.send sock d));
      });
  let echoes = ref 0 in
  List.iter
    (fun port ->
      for _ = 1 to 5 do
        ignore
          (E.connect peer ~dst_ip:(Nic.ip net.Topology.a.Topology.nic)
             ~dst_port:port
             {
               E.null_callbacks with
               E.on_connected =
                 (fun c -> ignore (E.send c (Bytes.make 32 'z')));
               E.on_receive = (fun _ _ -> incr echoes);
             })
      done)
    [ 7001; 7002 ];
  Sim.run ~until:(Time_ns.ms 50) sim;
  Alcotest.(check int) "all echoes returned" 10 !echoes;
  Alcotest.(check int) "app1 served its port" 5 !served1;
  Alcotest.(check int) "app2 served its port" 5 !served2

let test_app_shutdown_cleans_flows () =
  let sim, net, tas, peer = setup () in
  let app =
    Tas.app tas ~app_cores:[| Core.create sim ~id:101 () |] ~api:Libtas.Sockets
  in
  Libtas.listen app ~port:7001 ~ctx_of_tuple:(fun _ -> 0) (fun _ ->
      Libtas.null_handlers);
  let closed_at_peer = ref 0 in
  for _ = 1 to 8 do
    ignore
      (E.connect peer ~dst_ip:(Nic.ip net.Topology.a.Topology.nic)
         ~dst_port:7001
         {
           E.null_callbacks with
           E.on_closed = (fun c -> incr closed_at_peer; E.close c);
         })
  done;
  Sim.run ~until:(Time_ns.ms 50) sim;
  Alcotest.(check int) "8 flows established" 8
    (Slow_path.flow_count (Tas.slow_path tas));
  (* Application exits: the slow path tears everything down. *)
  Libtas.shutdown app;
  Sim.run ~until:(Sim.now sim + Time_ns.ms 200) sim;
  Alcotest.(check int) "flows cleaned up after app exit" 0
    (Slow_path.flow_count (Tas.slow_path tas));
  Alcotest.(check int) "peers saw FINs" 8 !closed_at_peer

let suite =
  [
    Alcotest.test_case "two apps share one TAS" `Quick test_two_apps_one_tas;
    Alcotest.test_case "app shutdown cleans flows" `Quick
      test_app_shutdown_cleans_flows;
  ]
