(* Tests for datagram framing over TAS byte streams (the §6 extension),
   plus window-scaling effectiveness and whole-system determinism. *)

module Sim = Tas_engine.Sim
module Time_ns = Tas_engine.Time_ns
module Core = Tas_cpu.Core
module Topology = Tas_netsim.Topology
module Nic = Tas_netsim.Nic
module Config = Tas_core.Config
module Tas = Tas_core.Tas
module Libtas = Tas_core.Libtas
module Framing = Tas_core.Framing
module E = Tas_baseline.Tcp_engine

let make_tas_pair () =
  let sim = Sim.create () in
  let net = Topology.point_to_point sim ~queues_per_nic:4 () in
  let mk ep id =
    let tas = Tas.create sim ~nic:ep.Topology.nic ~config:Config.default () in
    Tas.app tas ~app_cores:[| Core.create sim ~id () |] ~api:Libtas.Sockets
  in
  (sim, net, mk net.Topology.a 100, mk net.Topology.b 200)

let test_messages_roundtrip () =
  let sim, net, lt_a, lt_b = make_tas_pair () in
  let got = ref [] in
  Libtas.listen lt_b ~port:7 ~ctx_of_tuple:(fun _ -> 0) (fun sock ->
      let _state, handlers =
        Framing.attach sock ~on_message:(fun _ m -> got := Bytes.to_string m :: !got)
      in
      handlers);
  let messages =
    [ "a"; ""; String.make 5000 'x'; "final-message" ]
  in
  let handlers =
    {
      Libtas.null_handlers with
      Libtas.on_connected =
        (fun sock ->
          List.iter
            (fun m ->
              Alcotest.(check bool) "queued" true
                (Framing.send_message sock (Bytes.of_string m)))
            messages);
    }
  in
  ignore
    (Libtas.connect lt_a ~ctx:0
       ~dst_ip:(Nic.ip net.Topology.b.Topology.nic) ~dst_port:7 handlers);
  Sim.run ~until:(Time_ns.ms 100) sim;
  Alcotest.(check (list string))
    "messages delivered whole, in order, exactly once" messages
    (List.rev !got)

let test_oversize_rejected () =
  let _sim, _net, lt_a, _lt_b = make_tas_pair () in
  ignore lt_a;
  Alcotest.check_raises "oversize message"
    (Invalid_argument "Framing.send_message: message too large") (fun () ->
      (* A disconnected socket is fine: the size check fires first. *)
      let sim2 = Sim.create () in
      let net2 = Topology.point_to_point sim2 ~queues_per_nic:2 () in
      let tas = Tas.create sim2 ~nic:net2.Topology.a.Topology.nic ~config:Config.default () in
      let lt = Tas.app tas ~app_cores:[| Core.create sim2 ~id:1 () |] ~api:Libtas.Sockets in
      let sock = Libtas.connect lt ~ctx:0 ~dst_ip:1 ~dst_port:1 Libtas.null_handlers in
      ignore (Framing.send_message sock (Bytes.create (Framing.max_message_size + 1))))

let test_backpressure_returns_false () =
  let sim, net, lt_a, lt_b = make_tas_pair () in
  Libtas.listen lt_b ~port:7 ~ctx_of_tuple:(fun _ -> 0) (fun _ ->
      Libtas.null_handlers);
  let refused = ref false in
  let handlers =
    {
      Libtas.null_handlers with
      Libtas.on_connected =
        (fun sock ->
          (* Fill the 64KB transmit buffer, then one more must refuse. *)
          let big = Bytes.create 30_000 in
          ignore (Framing.send_message sock big);
          ignore (Framing.send_message sock big);
          refused := not (Framing.send_message sock big));
    }
  in
  ignore
    (Libtas.connect lt_a ~ctx:0
       ~dst_ip:(Nic.ip net.Topology.b.Topology.nic) ~dst_port:7 handlers);
  Sim.run ~until:(Time_ns.ms 5) sim;
  Alcotest.(check bool) "third message refused cleanly" true !refused

let test_window_scaling_effective () =
  (* On a 10G link with 1 ms RTT, a 64 KB window caps goodput at ~0.5 Gbps;
     window scaling with 512 KB buffers must beat that decisively. *)
  let sim = Sim.create () in
  let spec =
    { (Topology.link_10g ()) with Topology.delay = Time_ns.us 250 }
  in
  let net = Topology.point_to_point sim ~spec ~queues_per_nic:2 () in
  let config =
    { E.default_config with E.rx_buf = 524_288; tx_buf = 524_288 }
  in
  let a = E.create sim net.Topology.a.Topology.nic config in
  let b = E.create sim net.Topology.b.Topology.nic config in
  E.attach a;
  E.attach b;
  let received = ref 0 in
  E.listen b ~port:9 (fun _ ->
      {
        E.null_callbacks with
        E.on_receive = (fun _ d -> received := !received + Bytes.length d);
      });
  let chunk = Bytes.create 16384 in
  let push c = while E.send c chunk > 0 do () done in
  ignore
    (E.connect a ~dst_ip:(Nic.ip net.Topology.b.Topology.nic) ~dst_port:9
       {
         E.null_callbacks with
         E.on_connected = (fun c -> push c);
         E.on_sendable = (fun c _ -> push c);
       });
  Sim.run ~until:(Time_ns.ms 100) sim;
  let gbps = float_of_int (!received * 8) /. 0.1 /. 1e9 in
  Alcotest.(check bool)
    (Printf.sprintf "goodput %.2f Gbps exceeds the 64KB-window cap" gbps)
    true (gbps > 1.5)

let test_determinism () =
  (* Two identical simulations produce byte-identical outcomes. *)
  let run () =
    let sim, net, lt_a, lt_b = make_tas_pair () in
    let transcript = Buffer.create 256 in
    Libtas.listen lt_b ~port:7 ~ctx_of_tuple:(fun _ -> 0) (fun _ ->
        {
          Libtas.null_handlers with
          Libtas.on_data =
            (fun sock d ->
              Buffer.add_string transcript
                (Printf.sprintf "%d:%d;" (Sim.now sim) (Bytes.length d));
              ignore (Libtas.send sock d));
        });
    let rpcs = ref 0 in
    let handlers =
      {
        Libtas.null_handlers with
        Libtas.on_connected =
          (fun sock -> ignore (Libtas.send sock (Bytes.make 100 'q')));
        Libtas.on_data =
          (fun sock _ ->
            incr rpcs;
            if !rpcs < 50 then ignore (Libtas.send sock (Bytes.make 100 'q')));
      }
    in
    ignore
      (Libtas.connect lt_a ~ctx:0
         ~dst_ip:(Nic.ip net.Topology.b.Topology.nic) ~dst_port:7 handlers);
    Sim.run ~until:(Time_ns.ms 50) sim;
    Buffer.contents transcript
  in
  Alcotest.(check string) "identical transcripts" (run ()) (run ())

let suite =
  [
    Alcotest.test_case "framed messages round-trip" `Quick
      test_messages_roundtrip;
    Alcotest.test_case "oversize message rejected" `Quick test_oversize_rejected;
    Alcotest.test_case "framing backpressure" `Quick
      test_backpressure_returns_false;
    Alcotest.test_case "window scaling effective" `Quick
      test_window_scaling_effective;
    Alcotest.test_case "simulation determinism" `Quick test_determinism;
  ]
