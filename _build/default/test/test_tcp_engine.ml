(* Integration tests of the baseline TCP engine over the network simulator. *)

module Sim = Tas_engine.Sim
module Rng = Tas_engine.Rng
module Topology = Tas_netsim.Topology
module E = Tas_baseline.Tcp_engine

let make_pair ?spec ?loss_rate ?rng ?(config = E.default_config) () =
  let sim = Sim.create () in
  let net = Topology.point_to_point sim ?spec ?loss_rate ?rng () in
  let a = E.create sim net.Topology.a.Topology.nic config in
  let b = E.create sim net.Topology.b.Topology.nic config in
  E.attach a;
  E.attach b;
  (sim, a, b)

(* Echo server on [b]; send [payload] from [a]; expect it echoed back. *)
let run_echo ?spec ?loss_rate ?rng ?config ~payload () =
  let sim, a, b = make_pair ?spec ?loss_rate ?rng ?config () in
  let received_at_b = Buffer.create 64 and received_at_a = Buffer.create 64 in
  E.listen b ~port:7 (fun _conn ->
      {
        E.null_callbacks with
        E.on_receive =
          (fun conn data ->
            Buffer.add_bytes received_at_b data;
            ignore (E.send conn data));
      });
  let sent = ref 0 in
  let conn = ref None in
  let cb =
    {
      E.null_callbacks with
      E.on_connected =
        (fun c ->
          sent := E.send c payload;
          ignore !sent);
      E.on_receive = (fun _ data -> Buffer.add_bytes received_at_a data);
    }
  in
  conn :=
    Some
      (E.connect a ~dst_ip:(Tas_proto.Addr.host_ip 1) ~dst_port:7 cb);
  Sim.run ~until:(Tas_engine.Time_ns.sec 5) sim;
  (Buffer.contents received_at_b, Buffer.contents received_at_a)

let test_handshake_and_echo () =
  let payload = Bytes.of_string "hello, TAS world!" in
  let at_b, at_a = run_echo ~payload () in
  Alcotest.(check string) "server got payload" "hello, TAS world!" at_b;
  Alcotest.(check string) "client got echo" "hello, TAS world!" at_a

let test_bulk_transfer () =
  let n = 500_000 in
  let payload = Bytes.init n (fun i -> Char.chr (i land 0xff)) in
  let sim, a, b = make_pair () in
  let received = Buffer.create n in
  E.listen b ~port:9 (fun _ ->
      {
        E.null_callbacks with
        E.on_receive = (fun _ data -> Buffer.add_bytes received data);
      });
  let pending = ref (Bytes.length payload) in
  let offset = ref 0 in
  let push c =
    if !pending > 0 then begin
      let chunk = Bytes.sub payload !offset (min 16384 !pending) in
      let n = E.send c chunk in
      offset := !offset + n;
      pending := !pending - n
    end
  in
  let cb =
    {
      E.null_callbacks with
      E.on_connected = (fun c -> push c);
      E.on_sendable = (fun c _ -> push c);
    }
  in
  ignore (E.connect a ~dst_ip:(Tas_proto.Addr.host_ip 1) ~dst_port:9 cb);
  Sim.run ~until:(Tas_engine.Time_ns.sec 10) sim;
  Alcotest.(check int) "all bytes delivered" n (Buffer.length received);
  Alcotest.(check string)
    "content is intact" (Bytes.to_string payload) (Buffer.contents received)

let bulk_under_loss recovery loss_rate =
  let n = 200_000 in
  let payload = Bytes.init n (fun i -> Char.chr ((i * 7) land 0xff)) in
  let rng = Rng.create 42 in
  let config = { E.default_config with E.recovery } in
  let sim, a, b = make_pair ~loss_rate ~rng ~config () in
  let received = Buffer.create n in
  E.listen b ~port:9 (fun _ ->
      {
        E.null_callbacks with
        E.on_receive = (fun _ data -> Buffer.add_bytes received data);
      });
  let pending = ref n and offset = ref 0 in
  let push c =
    while
      !pending > 0
      &&
      let chunk = Bytes.sub payload !offset (min 8192 !pending) in
      let accepted = E.send c chunk in
      offset := !offset + accepted;
      pending := !pending - accepted;
      accepted > 0
    do
      ()
    done
  in
  let cb =
    {
      E.null_callbacks with
      E.on_connected = (fun c -> push c);
      E.on_sendable = (fun c _ -> push c);
    }
  in
  ignore (E.connect a ~dst_ip:(Tas_proto.Addr.host_ip 1) ~dst_port:9 cb);
  Sim.run ~until:(Tas_engine.Time_ns.sec 30) sim;
  Alcotest.(check int) "all bytes delivered" n (Buffer.length received);
  Alcotest.(check string)
    "stream intact under loss" (Bytes.to_string payload)
    (Buffer.contents received)

let test_loss_full_ooo () = bulk_under_loss E.Full_ooo 0.02
let test_loss_go_back_n () = bulk_under_loss E.Go_back_n 0.02
let test_heavy_loss () = bulk_under_loss E.Full_ooo 0.10

let test_close_handshake () =
  let sim, a, b = make_pair () in
  let b_closed = ref false and a_closed = ref false in
  E.listen b ~port:5 (fun _ ->
      {
        E.null_callbacks with
        E.on_closed =
          (fun c ->
            b_closed := true;
            E.close c);
      });
  let cb =
    {
      E.null_callbacks with
      E.on_connected = (fun c -> E.close c);
      E.on_closed = (fun _ -> a_closed := true);
    }
  in
  ignore (E.connect a ~dst_ip:(Tas_proto.Addr.host_ip 1) ~dst_port:5 cb);
  Sim.run ~until:(Tas_engine.Time_ns.sec 2) sim;
  Alcotest.(check bool) "server saw close" true !b_closed;
  Alcotest.(check int) "client table drained" 0 (E.connection_count a);
  Alcotest.(check int) "server table drained" 0 (E.connection_count b)

let test_many_connections () =
  let sim, a, b = make_pair () in
  let established = ref 0 and echoed = ref 0 in
  E.listen b ~port:80 (fun _ ->
      {
        E.null_callbacks with
        E.on_receive = (fun c data -> ignore (E.send c data));
      });
  for _ = 1 to 200 do
    let cb =
      {
        E.null_callbacks with
        E.on_connected =
          (fun c ->
            incr established;
            ignore (E.send c (Bytes.make 64 'x')));
        E.on_receive = (fun _ data -> echoed := !echoed + Bytes.length data);
      }
    in
    ignore (E.connect a ~dst_ip:(Tas_proto.Addr.host_ip 1) ~dst_port:80 cb)
  done;
  Sim.run ~until:(Tas_engine.Time_ns.sec 5) sim;
  Alcotest.(check int) "all connections established" 200 !established;
  Alcotest.(check int) "all echoes returned" (200 * 64) !echoed

let test_rpc_round_trips () =
  (* Closed-loop RPCs on one connection: checks latency plausibility. *)
  let sim, a, b = make_pair () in
  let completed = ref 0 in
  E.listen b ~port:7 (fun _ ->
      {
        E.null_callbacks with
        E.on_receive = (fun c data -> ignore (E.send c data));
      });
  let cb_receive count c data =
    ignore data;
    incr completed;
    if !completed < count then ignore (E.send c (Bytes.make 64 'r'))
  in
  let cb =
    {
      E.null_callbacks with
      E.on_connected = (fun c -> ignore (E.send c (Bytes.make 64 'r')));
      E.on_receive = (fun c d -> cb_receive 100 c d);
    }
  in
  ignore (E.connect a ~dst_ip:(Tas_proto.Addr.host_ip 1) ~dst_port:7 cb);
  Sim.run ~until:(Tas_engine.Time_ns.sec 1) sim;
  Alcotest.(check int) "100 RPCs completed" 100 !completed

let suite =
  [
    Alcotest.test_case "handshake and echo" `Quick test_handshake_and_echo;
    Alcotest.test_case "bulk transfer 500KB" `Quick test_bulk_transfer;
    Alcotest.test_case "2% loss, full OOO recovery" `Quick test_loss_full_ooo;
    Alcotest.test_case "2% loss, go-back-N recovery" `Quick test_loss_go_back_n;
    Alcotest.test_case "10% loss survives" `Quick test_heavy_loss;
    Alcotest.test_case "FIN close handshake" `Quick test_close_handshake;
    Alcotest.test_case "200 concurrent connections" `Quick test_many_connections;
    Alcotest.test_case "closed-loop RPC round trips" `Quick test_rpc_round_trips;
  ]
