test/test_cpu_cc.ml: Alcotest List Printf Tas_core Tas_cpu Tas_engine Tas_tcp
