test/test_framing.ml: Alcotest Buffer Bytes List Printf String Tas_baseline Tas_core Tas_cpu Tas_engine Tas_netsim
