test/test_buffers.ml: Alcotest Bytes Char List QCheck QCheck_alcotest Queue Tas_buffers Tas_proto
