test/test_netsim.ml: Alcotest Array Bytes List Printf Tas_engine Tas_netsim Tas_proto
