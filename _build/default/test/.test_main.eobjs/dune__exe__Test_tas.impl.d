test/test_tas.ml: Alcotest Array Buffer Bytes Char Tas_baseline Tas_core Tas_cpu Tas_engine Tas_netsim Tas_proto
