test/test_cc_properties.ml: Float List Printf QCheck QCheck_alcotest String Tas_tcp
