test/test_tcp_engine.ml: Alcotest Buffer Bytes Char Tas_baseline Tas_engine Tas_netsim Tas_proto
