test/test_engine.ml: Alcotest Array Format Gen List Printf QCheck QCheck_alcotest Tas_engine
