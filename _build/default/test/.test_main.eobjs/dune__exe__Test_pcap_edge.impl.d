test/test_pcap_edge.ml: Alcotest Array Buffer Bytes Filename List Printf Sys Tas_baseline Tas_core Tas_cpu Tas_engine Tas_netsim Tas_proto
