test/test_apps.ml: Alcotest Array Bytes Printf Tas_apps Tas_baseline Tas_cpu Tas_engine Tas_netsim
