test/test_fault_injection.ml: Alcotest Buffer Bytes Char Format List Tas_baseline Tas_core Tas_cpu Tas_engine Tas_netsim Tas_proto
