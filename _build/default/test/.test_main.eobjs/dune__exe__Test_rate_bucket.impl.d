test/test_rate_bucket.ml: Alcotest Bytes Printf Tas_buffers Tas_core Tas_engine Tas_proto Tas_tcp
