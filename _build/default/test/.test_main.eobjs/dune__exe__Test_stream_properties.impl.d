test/test_stream_properties.ml: Buffer Bytes Char Printf QCheck QCheck_alcotest Tas_baseline Tas_core Tas_cpu Tas_engine Tas_netsim
