test/test_tas_behavior.ml: Alcotest Buffer Bytes Char List Printf Tas_baseline Tas_core Tas_cpu Tas_engine Tas_experiments Tas_netsim Tas_proto
