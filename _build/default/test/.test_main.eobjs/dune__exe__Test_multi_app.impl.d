test/test_multi_app.ml: Alcotest Bytes List Tas_baseline Tas_core Tas_cpu Tas_engine Tas_netsim
