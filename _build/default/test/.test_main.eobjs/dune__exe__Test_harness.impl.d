test/test_harness.ml: Alcotest Buffer Bytes Format List Printf QCheck QCheck_alcotest Str String Tas_engine Tas_experiments Tas_proto
