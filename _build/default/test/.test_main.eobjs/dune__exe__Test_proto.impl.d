test/test_proto.ml: Alcotest Bytes Char Gen List QCheck QCheck_alcotest Tas_proto
