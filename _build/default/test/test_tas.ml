(* End-to-end tests of the TAS stack: TAS host as server, the baseline TCP
   engine as an ideal client peer — exercising interoperability with
   "legacy" TCP endpoints at the same time (paper Table 4). *)

module Sim = Tas_engine.Sim
module Time_ns = Tas_engine.Time_ns
module Rng = Tas_engine.Rng
module Core = Tas_cpu.Core
module Topology = Tas_netsim.Topology
module E = Tas_baseline.Tcp_engine
module Tas = Tas_core.Tas
module Libtas = Tas_core.Libtas
module Config = Tas_core.Config

type setup = {
  sim : Sim.t;
  tas : Tas.t;
  lt : Libtas.t;
  client : E.t;
  client_ip : Tas_proto.Addr.ipv4;
  server_ip : Tas_proto.Addr.ipv4;
}

let make ?(config = Config.default) ?(api = Libtas.Sockets) ?loss_rate ?rng
    ?(app_cores = 1) () =
  let sim = Sim.create () in
  let net = Topology.point_to_point sim ?loss_rate ?rng ~queues_per_nic:8 () in
  let tas = Tas.create sim ~nic:net.Topology.a.Topology.nic ~config () in
  let cores = Array.init app_cores (fun i -> Core.create sim ~id:(100 + i) ()) in
  let lt = Tas.app tas ~app_cores:cores ~api in
  let client = E.create sim net.Topology.b.Topology.nic E.default_config in
  E.attach client;
  {
    sim;
    tas;
    lt;
    client;
    client_ip = Tas_netsim.Nic.ip net.Topology.b.Topology.nic;
    server_ip = Tas_netsim.Nic.ip net.Topology.a.Topology.nic;
  }

(* TAS echo server on port 7. *)
let tas_echo_server s =
  Libtas.listen s.lt ~port:7 ~ctx_of_tuple:(fun _ -> 0) (fun _sock ->
      {
        Libtas.null_handlers with
        Libtas.on_data = (fun sock data -> ignore (Libtas.send sock data));
      })

let test_client_to_tas_echo () =
  let s = make () in
  tas_echo_server s;
  let got = Buffer.create 64 in
  let cb =
    {
      E.null_callbacks with
      E.on_connected = (fun c -> ignore (E.send c (Bytes.of_string "ping-tas")));
      E.on_receive = (fun _ d -> Buffer.add_bytes got d);
    }
  in
  ignore (E.connect s.client ~dst_ip:s.server_ip ~dst_port:7 cb);
  Sim.run ~until:(Time_ns.sec 2) s.sim;
  Alcotest.(check string) "echo through TAS" "ping-tas" (Buffer.contents got)

let test_tas_connect_out () =
  (* TAS as the client: connect to an engine server and exchange data. *)
  let s = make () in
  let got_at_server = Buffer.create 64 and got_at_tas = Buffer.create 64 in
  E.listen s.client ~port:9 (fun _ ->
      {
        E.null_callbacks with
        E.on_receive =
          (fun c d ->
            Buffer.add_bytes got_at_server d;
            ignore (E.send c d));
      });
  let handlers =
    {
      Libtas.null_handlers with
      Libtas.on_connected =
        (fun sock -> ignore (Libtas.send sock (Bytes.of_string "hello-from-tas")));
      Libtas.on_data = (fun _ d -> Buffer.add_bytes got_at_tas d);
    }
  in
  ignore (Libtas.connect s.lt ~ctx:0 ~dst_ip:s.client_ip ~dst_port:9 handlers);
  Sim.run ~until:(Time_ns.sec 2) s.sim;
  Alcotest.(check string) "server received" "hello-from-tas"
    (Buffer.contents got_at_server);
  Alcotest.(check string) "tas received echo" "hello-from-tas"
    (Buffer.contents got_at_tas)

let test_many_rpcs () =
  let s = make () in
  tas_echo_server s;
  let completed = ref 0 in
  let n_rpcs = 500 in
  let cb =
    {
      E.null_callbacks with
      E.on_connected = (fun c -> ignore (E.send c (Bytes.make 64 'q')));
      E.on_receive =
        (fun c d ->
          assert (Bytes.length d > 0);
          incr completed;
          if !completed < n_rpcs then ignore (E.send c (Bytes.make 64 'q')));
    }
  in
  ignore (E.connect s.client ~dst_ip:s.server_ip ~dst_port:7 cb);
  Sim.run ~until:(Time_ns.sec 5) s.sim;
  Alcotest.(check int) "all RPCs completed" n_rpcs !completed

let test_bulk_to_tas () =
  (* Bulk transfer into TAS exercises flow control against the fixed-size
     per-flow receive buffer. *)
  let n = 1_000_000 in
  let s = make () in
  let received = Buffer.create n in
  Libtas.listen s.lt ~port:7 ~ctx_of_tuple:(fun _ -> 0) (fun _ ->
      {
        Libtas.null_handlers with
        Libtas.on_data = (fun _ d -> Buffer.add_bytes received d);
      });
  let payload = Bytes.init n (fun i -> Char.chr ((i * 13) land 0xff)) in
  let sent = ref 0 in
  let push c =
    while
      !sent < n
      &&
      let chunk = Bytes.sub payload !sent (min 8192 (n - !sent)) in
      let accepted = E.send c chunk in
      sent := !sent + accepted;
      accepted > 0
    do
      ()
    done
  in
  let cb =
    {
      E.null_callbacks with
      E.on_connected = (fun c -> push c);
      E.on_sendable = (fun c _ -> push c);
    }
  in
  ignore (E.connect s.client ~dst_ip:s.server_ip ~dst_port:7 cb);
  Sim.run ~until:(Time_ns.sec 10) s.sim;
  Alcotest.(check int) "all bytes delivered" n (Buffer.length received);
  Alcotest.(check string)
    "stream intact" (Bytes.to_string payload) (Buffer.contents received)

let test_bulk_from_tas () =
  (* Bulk transfer out of TAS: rate-based pacing + slow-start must still
     reach full delivery. *)
  let n = 1_000_000 in
  let s = make () in
  let received = Buffer.create n in
  E.listen s.client ~port:9 (fun _ ->
      {
        E.null_callbacks with
        E.on_receive = (fun _ d -> Buffer.add_bytes received d);
      });
  let payload = Bytes.init n (fun i -> Char.chr ((i * 31) land 0xff)) in
  let sent = ref 0 in
  let push sock =
    while
      !sent < n
      &&
      let chunk = Bytes.sub payload !sent (min 8192 (n - !sent)) in
      let accepted = Libtas.send sock chunk in
      sent := !sent + accepted;
      accepted > 0
    do
      ()
    done
  in
  let handlers =
    {
      Libtas.null_handlers with
      Libtas.on_connected = (fun sock -> push sock);
      Libtas.on_sendable = (fun sock -> push sock);
    }
  in
  ignore (Libtas.connect s.lt ~ctx:0 ~dst_ip:s.client_ip ~dst_port:9 handlers);
  Sim.run ~until:(Time_ns.sec 10) s.sim;
  Alcotest.(check int) "all bytes delivered" n (Buffer.length received);
  Alcotest.(check string)
    "stream intact" (Bytes.to_string payload) (Buffer.contents received)

let test_loss_recovery () =
  (* TAS sender under 2% loss: slow-path timeouts + fast-path dup-ACK
     recovery must still deliver the whole stream. *)
  let n = 300_000 in
  let rng = Rng.create 7 in
  let s = make ~loss_rate:0.02 ~rng () in
  let received = Buffer.create n in
  E.listen s.client ~port:9 (fun _ ->
      {
        E.null_callbacks with
        E.on_receive = (fun _ d -> Buffer.add_bytes received d);
      });
  let payload = Bytes.init n (fun i -> Char.chr ((i * 3) land 0xff)) in
  let sent = ref 0 in
  let push sock =
    while
      !sent < n
      &&
      let chunk = Bytes.sub payload !sent (min 8192 (n - !sent)) in
      let accepted = Libtas.send sock chunk in
      sent := !sent + accepted;
      accepted > 0
    do
      ()
    done
  in
  let handlers =
    {
      Libtas.null_handlers with
      Libtas.on_connected = (fun sock -> push sock);
      Libtas.on_sendable = (fun sock -> push sock);
    }
  in
  ignore (Libtas.connect s.lt ~ctx:0 ~dst_ip:s.client_ip ~dst_port:9 handlers);
  Sim.run ~until:(Time_ns.sec 30) s.sim;
  Alcotest.(check int) "all bytes delivered" n (Buffer.length received);
  Alcotest.(check string)
    "stream intact under loss" (Bytes.to_string payload)
    (Buffer.contents received)

let test_close_from_client () =
  let s = make () in
  let eof_seen = ref false in
  Libtas.listen s.lt ~port:7 ~ctx_of_tuple:(fun _ -> 0) (fun _ ->
      {
        Libtas.null_handlers with
        Libtas.on_peer_closed =
          (fun sock ->
            eof_seen := true;
            Libtas.close sock);
      });
  let closed = ref false in
  let cb =
    {
      E.null_callbacks with
      E.on_connected = (fun c -> E.close c);
      E.on_closed = (fun _ -> closed := true);
    }
  in
  ignore (E.connect s.client ~dst_ip:s.server_ip ~dst_port:7 cb);
  Sim.run ~until:(Time_ns.sec 2) s.sim;
  Alcotest.(check bool) "TAS app saw EOF" true !eof_seen;
  Alcotest.(check int) "TAS flow table drained" 0
    (Tas_core.Slow_path.flow_count (Tas.slow_path s.tas));
  Alcotest.(check int) "client table drained" 0 (E.connection_count s.client)

let test_tas_to_tas () =
  (* Two TAS hosts talking to each other. *)
  let sim = Sim.create () in
  let net = Topology.point_to_point sim ~queues_per_nic:8 () in
  let config = Config.default in
  let tas_a = Tas.create sim ~nic:net.Topology.a.Topology.nic ~config () in
  let tas_b = Tas.create sim ~nic:net.Topology.b.Topology.nic ~config () in
  let core_a = [| Core.create sim ~id:100 () |] in
  let core_b = [| Core.create sim ~id:200 () |] in
  let lt_a = Tas.app tas_a ~app_cores:core_a ~api:Libtas.Sockets in
  let lt_b = Tas.app tas_b ~app_cores:core_b ~api:Libtas.Sockets in
  let got = Buffer.create 64 in
  Libtas.listen lt_b ~port:7 ~ctx_of_tuple:(fun _ -> 0) (fun _ ->
      {
        Libtas.null_handlers with
        Libtas.on_data = (fun sock d -> ignore (Libtas.send sock d));
      });
  let handlers =
    {
      Libtas.null_handlers with
      Libtas.on_connected =
        (fun sock -> ignore (Libtas.send sock (Bytes.of_string "tas-to-tas")));
      Libtas.on_data = (fun _ d -> Buffer.add_bytes got d);
    }
  in
  ignore
    (Libtas.connect lt_a ~ctx:0
       ~dst_ip:(Tas_netsim.Nic.ip net.Topology.b.Topology.nic)
       ~dst_port:7 handlers);
  Sim.run ~until:(Time_ns.sec 2) sim;
  Alcotest.(check string) "echo between two TAS hosts" "tas-to-tas"
    (Buffer.contents got)

let suite =
  [
    Alcotest.test_case "engine client -> TAS echo" `Quick test_client_to_tas_echo;
    Alcotest.test_case "TAS connects out" `Quick test_tas_connect_out;
    Alcotest.test_case "500 closed-loop RPCs" `Quick test_many_rpcs;
    Alcotest.test_case "bulk 1MB into TAS" `Quick test_bulk_to_tas;
    Alcotest.test_case "bulk 1MB out of TAS" `Quick test_bulk_from_tas;
    Alcotest.test_case "TAS sender under 2% loss" `Quick test_loss_recovery;
    Alcotest.test_case "client-initiated close" `Quick test_close_from_client;
    Alcotest.test_case "TAS to TAS" `Quick test_tas_to_tas;
  ]
