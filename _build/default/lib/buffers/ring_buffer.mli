(** Per-flow circular payload buffer (the [rx_start|size] / [tx_start|size]
    buffers of paper Table 3).

    The buffer is addressed by monotonically increasing *stream offsets*: the
    producer's high-water mark is [head], the consumer's is [tail], and any
    offset in [\[tail, tail + capacity)] maps to a physical slot. Addressing
    by stream offset (rather than physical index) lets the TAS fast path
    deposit out-of-order segments at their final position and lets the
    transmit path re-read unacknowledged data for retransmission. *)

type t

val create : int -> t
(** [create capacity] is an empty buffer. [capacity] must be positive. *)

val capacity : t -> int

val head : t -> int
(** Stream offset one past the last contiguous produced byte. *)

val tail : t -> int
(** Stream offset of the first unconsumed byte. *)

val used : t -> int
(** [head - tail]. *)

val free : t -> int
(** [capacity - used]. *)

val push : t -> bytes -> off:int -> len:int -> int
(** [push t b ~off ~len] copies at most [len] bytes at [head], advances
    [head], and returns the number of bytes accepted (possibly 0 when
    full). *)

val write_at : t -> pos:int -> bytes -> off:int -> len:int -> unit
(** [write_at t ~pos b ~off ~len] deposits bytes at stream offset [pos]
    without moving [head] — out-of-order deposit. The full range must lie
    within [\[tail, tail + capacity)].
    @raise Invalid_argument otherwise. *)

val advance_head : t -> int -> unit
(** Mark [n] more bytes (already deposited via [write_at]) as contiguous.
    @raise Invalid_argument if this would exceed [tail + capacity]. *)

val read_at : t -> pos:int -> dst:bytes -> dst_off:int -> len:int -> unit
(** Copy out of the buffer without consuming. The range must lie within
    [\[tail, head)] ∪ stored out-of-order region, i.e. within
    [\[tail, tail+capacity)].
    @raise Invalid_argument otherwise. *)

val pop : t -> dst:bytes -> dst_off:int -> len:int -> int
(** [pop t ~dst ~dst_off ~len] copies up to [len] contiguous bytes from
    [tail], advances [tail], and returns the count. *)

val advance_tail : t -> int -> unit
(** Discard [n] bytes from the tail (transmit-buffer reclamation on ACK,
    §3.1). @raise Invalid_argument if [n > used]. *)
