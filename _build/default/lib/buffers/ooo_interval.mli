(** Single-interval out-of-order receive tracking (paper §3.1, Exceptions).

    The TAS fast path keeps exactly one interval of out-of-order data per
    flow ([ooo_start|len] in Table 3). A new out-of-order segment is accepted
    only if it fits the receive window and touches (overlaps or abuts) the
    tracked interval — or if no interval exists yet. Anything else is
    dropped, and the sender recovers via duplicate ACKs / retransmission.
    When the in-order stream reaches the interval, the entire run is
    delivered as one big segment and the interval resets. *)

type t

(** What the fast path should do with an arriving segment. Ranges are given
    in sequence space, already trimmed to the acceptable window. *)
type verdict =
  | Deliver of { write_at : Tas_proto.Seq32.t; write_len : int; advance : int }
      (** In-order (possibly after trimming a duplicated prefix): deposit
          [write_len] bytes at [write_at] and advance the contiguous stream
          by [advance] bytes — [advance >= write_len] when the segment
          bridges the gap to the stored interval. *)
  | Store of { write_at : Tas_proto.Seq32.t; write_len : int }
      (** Out-of-order but buffered: deposit without advancing the stream. *)
  | Duplicate  (** Entirely old data: just (re-)acknowledge. *)
  | Drop  (** Unbufferable out-of-order data: drop, triggering dup-ACKs. *)

val create : unit -> t

val is_empty : t -> bool

val interval : t -> (Tas_proto.Seq32.t * int) option
(** The tracked [(start, length)] interval, if any. *)

val handle :
  t ->
  exp:Tas_proto.Seq32.t ->
  window:int ->
  seg_start:Tas_proto.Seq32.t ->
  seg_len:int ->
  verdict
(** [handle t ~exp ~window ~seg_start ~seg_len] decides the fate of a
    segment given the next expected sequence number [exp] and [window] free
    receive-buffer bytes starting at [exp]. Updates the interval state. *)

val reset : t -> unit
(** Forget any stored interval (connection reset / reassignment). *)
