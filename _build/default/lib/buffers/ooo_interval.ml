module Seq32 = Tas_proto.Seq32

type t = { mutable start : Seq32.t; mutable len : int }

type verdict =
  | Deliver of { write_at : Seq32.t; write_len : int; advance : int }
  | Store of { write_at : Seq32.t; write_len : int }
  | Duplicate
  | Drop

let create () = { start = 0; len = 0 }
let is_empty t = t.len = 0
let interval t = if t.len = 0 then None else Some (t.start, t.len)
let reset t = t.len <- 0

let handle t ~exp ~window ~seg_start ~seg_len =
  (* Trim any prefix that duplicates already-delivered data. *)
  let s, l =
    if Seq32.lt seg_start exp then begin
      let dup = Seq32.diff exp seg_start in
      if dup >= seg_len then (exp, 0) else (exp, seg_len - dup)
    end
    else (seg_start, seg_len)
  in
  if l = 0 then Duplicate
  else if s = exp then begin
    (* In-order: clip to the receive window. *)
    let l = min l window in
    if l = 0 then Drop
    else begin
      let new_exp = Seq32.add exp l in
      if t.len > 0 && Seq32.geq new_exp t.start then begin
        (* The gap closed: deliver through the end of the stored interval. *)
        let int_end = Seq32.add t.start t.len in
        let advance =
          if Seq32.gt int_end new_exp then Seq32.diff int_end exp
          else l
        in
        t.len <- 0;
        Deliver { write_at = s; write_len = l; advance }
      end
      else Deliver { write_at = s; write_len = l; advance = l }
    end
  end
  else begin
    (* Out-of-order: s is beyond exp. Must fit within the window. *)
    let offset = Seq32.diff s exp in
    if offset >= window then Drop
    else begin
      let l = min l (window - offset) in
      if t.len = 0 then begin
        t.start <- s;
        t.len <- l;
        Store { write_at = s; write_len = l }
      end
      else begin
        let int_end = Seq32.add t.start t.len in
        let seg_end = Seq32.add s l in
        (* Accept only segments of the same interval: overlapping or
           adjacent (paper: "accepts out-of-order segments of the same
           interval if they fit in the receive buffer"). *)
        if Seq32.gt s int_end || Seq32.gt t.start seg_end then Drop
        else begin
          let new_start = if Seq32.lt s t.start then s else t.start in
          let new_end = if Seq32.gt seg_end int_end then seg_end else int_end in
          t.start <- new_start;
          t.len <- Seq32.diff new_end new_start;
          Store { write_at = s; write_len = l }
        end
      end
    end
  end
